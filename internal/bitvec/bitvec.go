// Package bitvec implements the row-mask bit vectors used throughout
// AQUOMAN. A mask marks which rows of a table (or intermediate table) have
// been selected for processing. AQUOMAN groups rows into Row Vectors of
// VecSize consecutive rows (Sec. IV of the paper); the Row Selector and Row
// Transformer exchange masks at Row-Vector granularity so that fully-masked
// flash pages can be skipped by the Table Reader.
package bitvec

import "math/bits"

// VecSize is the number of consecutive rows in one Row Vector. The paper
// fixes this at 32: a flash controller producing 32 bytes per beat yields
// eight 32-bit values per cycle, and masks are managed as 32-row units.
const VecSize = 32

// Mask is a dense bit vector over the rows of a table. The zero value is an
// empty mask over zero rows.
type Mask struct {
	words []uint64
	n     int
}

// New returns a mask over n rows with every bit clear.
func New(n int) *Mask {
	return &Mask{words: make([]uint64, (n+63)/64), n: n}
}

// NewFull returns a mask over n rows with every bit set.
func NewFull(n int) *Mask {
	m := New(n)
	for i := range m.words {
		m.words[i] = ^uint64(0)
	}
	m.trim()
	return m
}

// trim clears any bits beyond n in the final word so that population counts
// and whole-word operations stay exact.
func (m *Mask) trim() {
	if rem := m.n % 64; rem != 0 && len(m.words) > 0 {
		m.words[len(m.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Len returns the number of rows the mask covers.
func (m *Mask) Len() int { return m.n }

// Set sets the bit for row i.
func (m *Mask) Set(i int) { m.words[i/64] |= 1 << uint(i%64) }

// Clear clears the bit for row i.
func (m *Mask) Clear(i int) { m.words[i/64] &^= 1 << uint(i%64) }

// Get reports whether row i is selected.
func (m *Mask) Get(i int) bool { return m.words[i/64]&(1<<uint(i%64)) != 0 }

// SetTo sets row i to v.
func (m *Mask) SetTo(i int, v bool) {
	if v {
		m.Set(i)
	} else {
		m.Clear(i)
	}
}

// Count returns the number of selected rows.
func (m *Mask) Count() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects m with o in place. Panics if lengths differ.
func (m *Mask) And(o *Mask) {
	m.check(o)
	for i := range m.words {
		m.words[i] &= o.words[i]
	}
}

// Or unions m with o in place. Panics if lengths differ.
func (m *Mask) Or(o *Mask) {
	m.check(o)
	for i := range m.words {
		m.words[i] |= o.words[i]
	}
}

// AndNot removes o's rows from m in place. Panics if lengths differ.
func (m *Mask) AndNot(o *Mask) {
	m.check(o)
	for i := range m.words {
		m.words[i] &^= o.words[i]
	}
}

// Not flips every row of m in place.
func (m *Mask) Not() {
	for i := range m.words {
		m.words[i] = ^m.words[i]
	}
	m.trim()
}

func (m *Mask) check(o *Mask) {
	if m.n != o.n {
		panic("bitvec: mask length mismatch")
	}
}

// Clone returns a copy of m.
func (m *Mask) Clone() *Mask {
	c := New(m.n)
	copy(c.words, m.words)
	return c
}

// NumVecs returns the number of Row Vectors needed to cover the mask.
func (m *Mask) NumVecs() int { return (m.n + VecSize - 1) / VecSize }

// VecAllZero reports whether Row Vector vec (rows [vec*32, vec*32+32)) has
// no selected rows. The Table Reader uses this to skip flash reads
// ({RowVecID, MaskAllZero} in Fig. 6).
func (m *Mask) VecAllZero(vec int) bool {
	lo := vec * VecSize
	hi := lo + VecSize
	if hi > m.n {
		hi = m.n
	}
	w := m.words[lo/64]
	shift := uint(lo % 64)
	bitsIn := uint(hi - lo)
	return (w>>shift)&((1<<bitsIn)-1) == 0
}

// VecBits returns the 32 mask bits of Row Vector vec as a uint32; rows past
// the end of the mask read as zero.
func (m *Mask) VecBits(vec int) uint32 {
	lo := vec * VecSize
	if lo >= m.n {
		return 0
	}
	w := m.words[lo/64]
	v := uint32(w >> uint(lo%64))
	hi := lo + VecSize
	if hi > m.n {
		v &= (1 << uint(m.n-lo)) - 1
	}
	return v
}

// ForEach calls fn for every selected row in ascending order.
func (m *Mask) ForEach(fn func(row int)) {
	for wi, w := range m.words {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(base + b)
			w &= w - 1
		}
	}
}

// Rows returns the selected row indices in ascending order.
func (m *Mask) Rows() []int {
	out := make([]int, 0, m.Count())
	m.ForEach(func(r int) { out = append(out, r) })
	return out
}

// FromRows builds a mask over n rows with exactly the given rows selected.
func FromRows(n int, rows []int) *Mask {
	m := New(n)
	for _, r := range rows {
		m.Set(r)
	}
	return m
}
