package bitvec

import (
	"testing"
)

// refBit reads bit i of a byte pattern, treating missing bytes as zero.
func refBit(pat []byte, i int) bool {
	if i/8 >= len(pat) {
		return false
	}
	return pat[i/8]>>(uint(i)%8)&1 == 1
}

// FuzzBitvec cross-checks Mask against a plain []bool model: round-trip
// Set/Get, population counts, the logic ops, Not's trim behaviour at the
// ragged final word, Rows/FromRows round-trips, and the Row-Vector views
// the Table Reader uses for page skipping.
func FuzzBitvec(f *testing.F) {
	f.Add(5, []byte{0x0f}, []byte{0xf0})
	f.Add(0, []byte{}, []byte{})
	f.Add(64, []byte{0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(97, []byte{0xaa, 0x55, 0xaa, 0x55}, []byte{0xff, 0xff, 0xff})
	f.Add(33, []byte{0x80}, []byte{0x01})
	f.Fuzz(func(t *testing.T, n int, pa, pb []byte) {
		if n < 0 {
			n = -n
		}
		n %= 2048
		refA := make([]bool, n)
		refB := make([]bool, n)
		ma, mb := New(n), New(n)
		for i := 0; i < n; i++ {
			refA[i], refB[i] = refBit(pa, i), refBit(pb, i)
			ma.SetTo(i, refA[i])
			if refB[i] {
				mb.Set(i)
			}
		}
		if ma.Len() != n {
			t.Fatalf("Len = %d, want %d", ma.Len(), n)
		}
		wantCount := 0
		for i := 0; i < n; i++ {
			if ma.Get(i) != refA[i] {
				t.Fatalf("Get(%d) = %v, want %v", i, ma.Get(i), refA[i])
			}
			if refA[i] {
				wantCount++
			}
		}
		if ma.Count() != wantCount {
			t.Fatalf("Count = %d, want %d", ma.Count(), wantCount)
		}

		check := func(op string, m *Mask, want func(i int) bool) {
			t.Helper()
			cnt := 0
			for i := 0; i < n; i++ {
				w := want(i)
				if m.Get(i) != w {
					t.Fatalf("%s bit %d = %v, want %v", op, i, m.Get(i), w)
				}
				if w {
					cnt++
				}
			}
			if m.Count() != cnt {
				t.Fatalf("%s Count = %d, want %d", op, m.Count(), cnt)
			}
		}
		and := ma.Clone()
		and.And(mb)
		check("and", and, func(i int) bool { return refA[i] && refB[i] })
		or := ma.Clone()
		or.Or(mb)
		check("or", or, func(i int) bool { return refA[i] || refB[i] })
		andNot := ma.Clone()
		andNot.AndNot(mb)
		check("andnot", andNot, func(i int) bool { return refA[i] && !refB[i] })
		not := ma.Clone()
		not.Not()
		check("not", not, func(i int) bool { return !refA[i] })
		// Double negation restores the original (trim must not lose bits).
		not.Not()
		check("notnot", not, func(i int) bool { return refA[i] })
		// Clone independence: mutating the clone never touches the parent.
		cl := ma.Clone()
		for i := 0; i < n; i++ {
			cl.SetTo(i, !refA[i])
		}
		check("orig-after-clone", ma, func(i int) bool { return refA[i] })

		// Rows/FromRows round-trip.
		rows := ma.Rows()
		if len(rows) != wantCount {
			t.Fatalf("Rows len = %d, want %d", len(rows), wantCount)
		}
		prev := -1
		for _, r := range rows {
			if r <= prev || !refA[r] {
				t.Fatalf("Rows out of order or wrong at %d", r)
			}
			prev = r
		}
		rt := FromRows(n, rows)
		check("fromrows", rt, func(i int) bool { return refA[i] })

		// Row-Vector views agree with the bits.
		if nv := ma.NumVecs(); nv != (n+VecSize-1)/VecSize {
			t.Fatalf("NumVecs = %d", nv)
		}
		for v := 0; v < ma.NumVecs(); v++ {
			bits := ma.VecBits(v)
			allZero := true
			for j := 0; j < VecSize; j++ {
				i := v*VecSize + j
				want := i < n && refA[i]
				got := bits>>uint(j)&1 == 1
				if got != want {
					t.Fatalf("VecBits(%d) bit %d = %v, want %v", v, j, got, want)
				}
				if want {
					allZero = false
				}
			}
			if ma.VecAllZero(v) != allZero {
				t.Fatalf("VecAllZero(%d) = %v, want %v", v, ma.VecAllZero(v), allZero)
			}
		}

		// ForEach visits exactly the selected rows in order.
		var visited []int
		ma.ForEach(func(r int) { visited = append(visited, r) })
		if len(visited) != len(rows) {
			t.Fatalf("ForEach visited %d rows, want %d", len(visited), len(rows))
		}
		for i := range rows {
			if visited[i] != rows[i] {
				t.Fatalf("ForEach order differs at %d: %d vs %d", i, visited[i], rows[i])
			}
		}
	})
}
