package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	m := New(100)
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
	for i := 0; i < 100; i += 3 {
		m.Set(i)
	}
	for i := 0; i < 100; i++ {
		if got, want := m.Get(i), i%3 == 0; got != want {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want)
		}
	}
	m.Clear(0)
	if m.Get(0) {
		t.Fatal("Clear(0) did not clear")
	}
	if got, want := m.Count(), 33; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		m := NewFull(n)
		if m.Count() != n {
			t.Fatalf("NewFull(%d).Count = %d", n, m.Count())
		}
	}
}

func TestNotRespectsLength(t *testing.T) {
	m := New(70)
	m.Set(3)
	m.Not()
	if got := m.Count(); got != 69 {
		t.Fatalf("Not: Count = %d, want 69", got)
	}
	if m.Get(3) {
		t.Fatal("Not: bit 3 still set")
	}
}

func TestBooleanAlgebra(t *testing.T) {
	const n = 200
	a, b := New(n), New(n)
	for i := 0; i < n; i += 2 {
		a.Set(i)
	}
	for i := 0; i < n; i += 3 {
		b.Set(i)
	}
	and := a.Clone()
	and.And(b)
	or := a.Clone()
	or.Or(b)
	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < n; i++ {
		ai, bi := i%2 == 0, i%3 == 0
		if and.Get(i) != (ai && bi) {
			t.Fatalf("And bit %d wrong", i)
		}
		if or.Get(i) != (ai || bi) {
			t.Fatalf("Or bit %d wrong", i)
		}
		if diff.Get(i) != (ai && !bi) {
			t.Fatalf("AndNot bit %d wrong", i)
		}
	}
}

func TestVecAllZeroAndBits(t *testing.T) {
	m := New(100) // 4 row vectors: [0,32) [32,64) [64,96) [96,100)
	m.Set(33)
	m.Set(97)
	if !m.VecAllZero(0) || m.VecAllZero(1) || !m.VecAllZero(2) || m.VecAllZero(3) {
		t.Fatalf("VecAllZero pattern wrong: %v %v %v %v",
			m.VecAllZero(0), m.VecAllZero(1), m.VecAllZero(2), m.VecAllZero(3))
	}
	if got := m.VecBits(1); got != 1<<1 {
		t.Fatalf("VecBits(1) = %#x, want %#x", got, 1<<1)
	}
	if got := m.VecBits(3); got != 1<<1 {
		t.Fatalf("VecBits(3) = %#x, want %#x", got, 1<<1)
	}
	if m.NumVecs() != 4 {
		t.Fatalf("NumVecs = %d, want 4", m.NumVecs())
	}
}

func TestForEachAndRows(t *testing.T) {
	rows := []int{0, 5, 63, 64, 65, 99}
	m := FromRows(100, rows)
	got := m.Rows()
	if len(got) != len(rows) {
		t.Fatalf("Rows len = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("Rows[%d] = %d, want %d", i, got[i], rows[i])
		}
	}
}

// Property: Count equals the number of set rows under random operations,
// and VecBits round-trips Get.
func TestQuickMaskConsistency(t *testing.T) {
	f := func(seed int64, nSmall uint8) bool {
		n := int(nSmall)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		m := New(n)
		ref := make([]bool, n)
		for k := 0; k < 300; k++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				m.Set(i)
				ref[i] = true
			} else {
				m.Clear(i)
				ref[i] = false
			}
		}
		count := 0
		for i, v := range ref {
			if v {
				count++
			}
			if m.Get(i) != v {
				return false
			}
			vec, off := i/VecSize, uint(i%VecSize)
			if (m.VecBits(vec)>>off)&1 == 1 != v {
				return false
			}
		}
		return m.Count() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — NOT(a AND b) == NOT a OR NOT b.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		const n = 257
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		lhs := a.Clone()
		lhs.And(b)
		lhs.Not()
		rhs := a.Clone()
		rhs.Not()
		nb := b.Clone()
		nb.Not()
		rhs.Or(nb)
		for i := 0; i < n; i++ {
			if lhs.Get(i) != rhs.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
