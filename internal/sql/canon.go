package sql

import (
	"sort"
	"strings"
)

// Canonicalize returns a canonical rendering of a SQL statement, used as
// the result-cache key: statements that differ only in whitespace,
// comments, keyword/identifier case, trailing semicolons, or the order
// of the WHERE clause's top-level AND conjuncts all render identically,
// while statements with different token content never collide (tokens
// are re-rendered space-separated, so distinct token streams yield
// distinct strings). Canonicalize is idempotent. A statement the lexer
// rejects canonicalizes to its trimmed self — such statements fail to
// compile anyway, so they only need a stable key.
func Canonicalize(src string) string {
	toks, err := lex(src)
	if err != nil {
		return strings.TrimSpace(src)
	}
	toks = toks[:len(toks)-1] // drop EOF
	for len(toks) > 0 && toks[len(toks)-1].kind == tokSymbol && toks[len(toks)-1].text == ";" {
		toks = toks[:len(toks)-1]
	}
	out := ""
	if start, end, ok := whereSpan(toks); ok {
		if conj, ok := splitConjuncts(toks[start:end]); ok && len(conj) > 1 {
			parts := make([]string, len(conj))
			for i, c := range conj {
				parts[i] = renderTokens(c)
			}
			sort.Strings(parts)
			out = renderTokens(toks[:start]) + " " + strings.Join(parts, " AND ")
			if end < len(toks) {
				out += " " + renderTokens(toks[end:])
			}
		}
	}
	if out == "" {
		out = renderTokens(toks)
	}
	// The render must re-lex to itself or canonicalization is not a
	// stable key (non-ASCII bytes can shift under the lexer's case
	// folding). Fall back to exact-text keying, which never collides.
	if !stableRender(out) {
		return strings.TrimSpace(src)
	}
	return out
}

// stableRender reports whether rendering out's own token stream
// reproduces out exactly.
func stableRender(out string) bool {
	toks, err := lex(out)
	if err != nil {
		return false
	}
	return renderTokens(toks[:len(toks)-1]) == out
}

// renderTokens renders a token slice space-separated, re-quoting string
// literals so the output lexes back to the same token stream.
func renderTokens(toks []token) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if t.kind == tokString {
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
			continue
		}
		sb.WriteString(t.text)
	}
	return sb.String()
}

// whereSpan locates the WHERE clause's predicate tokens: the half-open
// range after the top-level WHERE keyword up to the next top-level
// clause keyword (GROUP/HAVING/ORDER/LIMIT) or the end.
func whereSpan(toks []token) (start, end int, ok bool) {
	depth := 0
	start = -1
	for i, t := range toks {
		switch {
		case t.kind == tokSymbol && t.text == "(":
			depth++
		case t.kind == tokSymbol && t.text == ")":
			depth--
		case t.kind == tokKeyword && depth == 0:
			if start < 0 {
				if t.text == "WHERE" {
					start = i + 1
				}
				continue
			}
			switch t.text {
			case "GROUP", "HAVING", "ORDER", "LIMIT":
				return start, i, start < i
			}
		}
	}
	if start < 0 {
		return 0, 0, false
	}
	return start, len(toks), start < len(toks)
}

// splitConjuncts splits a predicate token stream on its top-level AND
// boundaries, reporting ok=false when reordering would be unsafe: a
// top-level OR makes AND non-commutative over the rendered conjuncts, so
// the caller keeps source order. ANDs inside parentheses, BETWEEN ... AND
// ..., and CASE ... END never split.
func splitConjuncts(toks []token) ([][]token, bool) {
	var out [][]token
	paren, between, caseDepth := 0, 0, 0
	begin := 0
	for i, t := range toks {
		switch t.kind {
		case tokSymbol:
			switch t.text {
			case "(":
				paren++
			case ")":
				paren--
				if paren < 0 {
					return nil, false // unbalanced: reordering is unstable
				}
			}
		case tokKeyword:
			if paren > 0 {
				continue
			}
			switch t.text {
			case "BETWEEN":
				between++
			case "CASE":
				caseDepth++
			case "END":
				if caseDepth > 0 {
					caseDepth--
				}
			case "OR":
				if between == 0 && caseDepth == 0 {
					return nil, false
				}
			case "AND":
				if between > 0 {
					between--
					continue
				}
				if caseDepth > 0 {
					continue
				}
				if i == begin {
					return nil, false // malformed: empty conjunct
				}
				out = append(out, toks[begin:i])
				begin = i + 1
			}
		}
	}
	if paren != 0 {
		return nil, false // unbalanced: reordering is unstable
	}
	if begin >= len(toks) {
		if begin == 0 {
			return nil, true
		}
		return nil, false // trailing AND: keep source order
	}
	out = append(out, toks[begin:])
	return out, true
}
