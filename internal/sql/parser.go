package sql

import (
	"fmt"
	"strconv"
	"strings"

	"aquoman/internal/col"
)

// ---- AST ----

type astExpr interface{ ast() }

type aCol struct{ qual, name string }
type aNum struct {
	text string
}
type aStr struct{ s string }
type aDate struct{ days int64 }
type aBin struct {
	op   string // + - * / = <> < <= > >= AND OR
	l, r astExpr
}
type aNot struct{ e astExpr }
type aIn struct {
	e      astExpr
	list   []astExpr
	negate bool
}
type aBetween struct{ e, lo, hi astExpr }
type aLike struct {
	e      astExpr
	pat    string
	negate bool
}
type aCase struct{ cond, then, els astExpr }
type aCall struct {
	fn       string // SUM AVG MIN MAX COUNT
	distinct bool
	arg      astExpr // nil for COUNT(*)
}
type aYear struct{ e astExpr }
type aSubstr struct {
	e          astExpr
	start, len int
}

func (aCol) ast()     {}
func (aNum) ast()     {}
func (aStr) ast()     {}
func (aDate) ast()    {}
func (aBin) ast()     {}
func (aNot) ast()     {}
func (aIn) ast()      {}
func (aBetween) ast() {}
func (aLike) ast()    {}
func (aCase) ast()    {}
func (aCall) ast()    {}
func (aYear) ast()    {}
func (aSubstr) ast()  {}

type selectItem struct {
	expr  astExpr
	alias string
}

type fromItem struct {
	table, alias string
}

type orderItem struct {
	expr astExpr
	desc bool
}

type stmt struct {
	selects []selectItem
	from    []fromItem
	where   astExpr
	groupBy []astExpr
	having  astExpr
	orderBy []orderItem
	limit   int
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement.
func Parse(src string) (*stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input")
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*stmt, error) {
	st := &stmt{limit: -1}
	if err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := selectItem{expr: e}
		if p.accept(tokKeyword, "AS") {
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected alias")
			}
			item.alias = p.next().text
		} else if p.at(tokIdent, "") {
			item.alias = p.next().text
		}
		st.selects = append(st.selects, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		if !p.at(tokIdent, "") {
			return nil, p.errf("expected table name")
		}
		fi := fromItem{table: p.next().text}
		if p.accept(tokKeyword, "AS") {
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected table alias")
			}
			fi.alias = p.next().text
		} else if p.at(tokIdent, "") {
			fi.alias = p.next().text
		}
		st.from = append(st.from, fi)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := orderItem{expr: e}
			if p.accept(tokKeyword, "DESC") {
				oi.desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.orderBy = append(st.orderBy, oi)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		if !p.at(tokNumber, "") {
			return nil, p.errf("expected limit count")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errf("bad limit")
		}
		st.limit = n
	}
	return st, nil
}

// Expression grammar (loosest first):
//
//	expr     := orTerm (OR orTerm)*
//	orTerm   := andTerm (AND andTerm)*
//	andTerm  := NOT andTerm | predicate
//	predicate:= additive [cmp additive | BETWEEN a AND b | [NOT] IN (...) | [NOT] LIKE '...']
//	additive := mult ((+|-) mult)*
//	mult     := unary ((*|/) unary)*
//	unary    := primary
//	primary  := literal | funcCall | column | '(' expr ')' | CASE ...
func (p *parser) parseExpr() (astExpr, error) {
	l, err := p.parseOrTerm()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseOrTerm()
		if err != nil {
			return nil, err
		}
		l = aBin{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseOrTerm() (astExpr, error) {
	l, err := p.parseAndTerm()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseAndTerm()
		if err != nil {
			return nil, err
		}
		l = aBin{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAndTerm() (astExpr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseAndTerm()
		if err != nil {
			return nil, err
		}
		return aNot{e: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (astExpr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negate := p.accept(tokKeyword, "NOT")
	switch {
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e astExpr = aBetween{e: l, lo: lo, hi: hi}
		if negate {
			e = aNot{e: e}
		}
		return e, nil
	case p.accept(tokKeyword, "IN"):
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []astExpr
		for {
			item, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return aIn{e: l, list: list, negate: negate}, nil
	case p.accept(tokKeyword, "LIKE"):
		if !p.at(tokString, "") {
			return nil, p.errf("expected pattern string")
		}
		return aLike{e: l, pat: p.next().text, negate: negate}, nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	for _, op := range []string{"<>", "!=", "<=", ">=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return aBin{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (astExpr, error) {
	l, err := p.parseMult()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		// date +/- INTERVAL 'n' UNIT folds at parse time.
		if p.accept(tokKeyword, "INTERVAL") {
			d, err := p.parseInterval(l, op)
			if err != nil {
				return nil, err
			}
			l = d
			continue
		}
		r, err := p.parseMult()
		if err != nil {
			return nil, err
		}
		l = aBin{op: op, l: l, r: r}
	}
}

func (p *parser) parseInterval(base astExpr, op string) (astExpr, error) {
	d, ok := base.(aDate)
	if !ok {
		return nil, p.errf("INTERVAL arithmetic needs a date literal on the left")
	}
	if !p.at(tokString, "") {
		return nil, p.errf("expected interval quantity")
	}
	n, err := strconv.Atoi(p.next().text)
	if err != nil {
		return nil, p.errf("bad interval quantity")
	}
	if op == "-" {
		n = -n
	}
	unit := strings.ToUpper(p.next().text)
	y, m, day := dateParts(d.days)
	switch unit {
	case "YEAR":
		y += n
	case "MONTH":
		m += n
		for m > 12 {
			m -= 12
			y++
		}
		for m < 1 {
			m += 12
			y--
		}
	case "DAY":
		return aDate{days: d.days + int64(n)}, nil
	default:
		return nil, p.errf("unsupported interval unit %q", unit)
	}
	return aDate{days: col.DateValue(y, m, day)}, nil
}

func dateParts(days int64) (y, m, d int) {
	s := col.DateString(days)
	fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d)
	return
}

func (p *parser) parseMult() (astExpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = aBin{op: op, l: l, r: r}
	}
}

func (p *parser) parseUnary() (astExpr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return aBin{op: "-", l: aNum{text: "0"}, r: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (astExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return aNum{text: t.text}, nil
	case t.kind == tokString:
		p.next()
		return aStr{s: t.text}, nil
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept(tokKeyword, "DATE"):
		if !p.at(tokString, "") {
			return nil, p.errf("expected date string")
		}
		s := p.next().text
		days, err := col.ParseDate(s)
		if err != nil {
			return nil, p.errf("bad date literal %q", s)
		}
		return aDate{days: days}, nil
	case p.accept(tokKeyword, "CASE"):
		if err := p.expect(tokKeyword, "WHEN"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var els astExpr = aNum{text: "0"}
		if p.accept(tokKeyword, "ELSE") {
			els, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokKeyword, "END"); err != nil {
			return nil, err
		}
		return aCase{cond: cond, then: then, els: els}, nil
	case p.accept(tokKeyword, "EXTRACT"):
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "YEAR"); err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "FROM"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return aYear{e: e}, nil
	case p.accept(tokKeyword, "SUBSTRING"):
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ","); err != nil {
			return nil, err
		}
		start, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ","); err != nil {
			return nil, err
		}
		length, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return aSubstr{e: e, start: start, len: length}, nil
	case t.kind == tokKeyword && isAggKeyword(t.text):
		p.next()
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		call := aCall{fn: t.text}
		if t.text == "COUNT" && p.accept(tokSymbol, "*") {
			// COUNT(*)
		} else {
			if p.accept(tokKeyword, "DISTINCT") {
				call.distinct = true
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.arg = arg
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected column after %q.", t.text)
			}
			return aCol{qual: t.text, name: p.next().text}, nil
		}
		return aCol{name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func (p *parser) parseIntLit() (int, error) {
	if !p.at(tokNumber, "") {
		return 0, p.errf("expected integer")
	}
	return strconv.Atoi(p.next().text)
}

func isAggKeyword(s string) bool {
	switch s {
	case "SUM", "AVG", "MIN", "MAX", "COUNT":
		return true
	}
	return false
}
