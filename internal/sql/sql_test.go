package sql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

var (
	onceStore sync.Once
	store     *col.Store
)

func testStore(t *testing.T) *col.Store {
	t.Helper()
	onceStore.Do(func() {
		store = col.NewStore(flash.NewDevice())
		if err := tpch.Gen(store, tpch.Config{SF: 0.005, Seed: 3}); err != nil {
			t.Fatalf("Gen: %v", err)
		}
	})
	return store
}

func runSQL(t *testing.T, src string) *engine.Batch {
	t.Helper()
	s := testStore(t)
	n, err := Plan(src, s)
	if err != nil {
		t.Fatalf("Plan(%q): %v", src, err)
	}
	b, err := engine.New(s).Run(n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return b
}

func runPlan(t *testing.T, n plan.Node) *engine.Batch {
	t.Helper()
	s := testStore(t)
	if err := plan.Bind(n, s); err != nil {
		t.Fatal(err)
	}
	b, err := engine.New(s).Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func canon(b *engine.Batch) []string {
	rows := make([]string, b.NumRows())
	for r := range rows {
		var sb strings.Builder
		for c := range b.Cols {
			fmt.Fprintf(&sb, "%d|", b.Cols[c][r])
		}
		rows[r] = sb.String()
	}
	sort.Strings(rows)
	return rows
}

// assertSame compares batches as multisets of rows, matching columns by
// name where both sides share names and by position otherwise (SQL select
// order may differ from the hand-built plan's output order).
func assertSame(t *testing.T, got, want *engine.Batch) {
	t.Helper()
	if got.NumRows() != want.NumRows() || len(got.Cols) != len(want.Cols) {
		t.Fatalf("shape: %dx%d vs %dx%d", got.NumRows(), len(got.Cols),
			want.NumRows(), len(want.Cols))
	}
	// Reorder got's columns to want's order by name when possible.
	perm := make([]int, len(want.Cols))
	for i, wf := range want.Schema {
		perm[i] = -1
		for j, gf := range got.Schema {
			if gf.Name == wf.Name {
				perm[i] = j
			}
		}
		if perm[i] < 0 {
			perm[i] = i // positional fallback
		}
	}
	re := &engine.Batch{Schema: want.Schema, Cols: make([][]int64, len(want.Cols))}
	for i, j := range perm {
		re.Cols[i] = got.Cols[j]
	}
	gc, wc := canon(re), canon(want)
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("row %d differs:\n got  %s\n want %s", i, gc[i], wc[i])
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a, 1.5 FROM t WHERE x <> 'it''s' -- comment\n AND y >= 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.text)
	}
	want := []string{"SELECT", "a", ",", "1.5", "FROM", "t", "WHERE", "x", "<>",
		"it's", "AND", "y", ">=", "2", ""}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("SELECT a ~ b"); err == nil {
		t.Fatal("bad symbol accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t extra garbage at end $$",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed: %q", src)
		}
	}
}

// The SQL form of TPC-H q6 must match the hand-built plan exactly.
func TestQ6SQLMatchesHandPlan(t *testing.T) {
	got := runSQL(t, `
		SELECT sum(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate >= date '1994-01-01'
		  AND l_shipdate < date '1994-01-01' + interval '1' year
		  AND l_discount BETWEEN 0.05 AND 0.07
		  AND l_quantity < 24`)
	want := runPlan(t, tpch.Q6())
	assertSame(t, got, want)
}

// TPC-H q1 in SQL: group-by, six aggregates with shared inputs, order by.
func TestQ1SQLMatchesHandPlan(t *testing.T) {
	got := runSQL(t, `
		SELECT l_returnflag, l_linestatus,
		       sum(l_quantity) AS sum_qty,
		       sum(l_extendedprice) AS sum_base_price,
		       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
		       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
		       avg(l_quantity) AS avg_qty,
		       avg(l_extendedprice) AS avg_price,
		       avg(l_discount) AS avg_disc,
		       count(*) AS count_order
		FROM lineitem
		WHERE l_shipdate <= date '1998-12-01' - interval '90' day
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`)
	want := runPlan(t, tpch.Q1())
	assertSame(t, got, want)
}

// TPC-H q3 in SQL: three-way join, filters, group by, order by, limit.
func TestQ3SQLMatchesHandPlan(t *testing.T) {
	got := runSQL(t, `
		SELECT l_orderkey,
		       sum(l_extendedprice * (1 - l_discount)) AS revenue,
		       o_orderdate, o_shippriority
		FROM customer, orders, lineitem
		WHERE c_mktsegment = 'BUILDING'
		  AND c_custkey = o_custkey
		  AND l_orderkey = o_orderkey
		  AND o_orderdate < date '1995-03-15'
		  AND l_shipdate > date '1995-03-15'
		GROUP BY l_orderkey, o_orderdate, o_shippriority
		ORDER BY revenue DESC, o_orderdate
		LIMIT 10`)
	want := runPlan(t, tpch.Q3())
	assertSame(t, got, want)
}

// TPC-H q5 in SQL: six-way join including the residual
// c_nationkey = s_nationkey condition.
func TestQ5SQLMatchesHandPlan(t *testing.T) {
	got := runSQL(t, `
		SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
		FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey
		  AND l_orderkey = o_orderkey
		  AND l_suppkey = s_suppkey
		  AND c_nationkey = s_nationkey
		  AND s_nationkey = n_nationkey
		  AND n_regionkey = r_regionkey
		  AND r_name = 'ASIA'
		  AND o_orderdate >= date '1994-01-01'
		  AND o_orderdate < date '1994-01-01' + interval '1' year
		GROUP BY n_name
		ORDER BY revenue DESC`)
	want := runPlan(t, tpch.Q5())
	assertSame(t, got, want)
}

// TPC-H q14 in SQL: CASE + LIKE + post-aggregate arithmetic.
func TestQ14SQLMatchesHandPlan(t *testing.T) {
	got := runSQL(t, `
		SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
		                    THEN l_extendedprice * (1 - l_discount)
		                    ELSE 0 END)
		       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
		FROM lineitem, part
		WHERE l_partkey = p_partkey
		  AND l_shipdate >= date '1995-09-01'
		  AND l_shipdate < date '1995-09-01' + interval '1' month`)
	want := runPlan(t, tpch.Q14())
	assertSame(t, got, want)
}

// TPC-H q12 in SQL: IN list + CASE counting + multi-column predicates.
func TestQ12SQLMatchesHandPlan(t *testing.T) {
	got := runSQL(t, `
		SELECT l_shipmode,
		       sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS high_line_count,
		       sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 0 ELSE 1 END) AS low_line_count
		FROM orders, lineitem
		WHERE o_orderkey = l_orderkey
		  AND l_shipmode IN ('MAIL', 'SHIP')
		  AND l_commitdate < l_receiptdate
		  AND l_shipdate < l_commitdate
		  AND l_receiptdate >= date '1994-01-01'
		  AND l_receiptdate < date '1994-01-01' + interval '1' year
		GROUP BY l_shipmode
		ORDER BY l_shipmode`)
	want := runPlan(t, tpch.Q12())
	assertSame(t, got, want)
}

// Computed group keys (EXTRACT YEAR) pre-project.
func TestComputedGroupKey(t *testing.T) {
	b := runSQL(t, `
		SELECT extract(year from o_orderdate) AS y, count(*) AS n
		FROM orders
		GROUP BY extract(year from o_orderdate)
		ORDER BY y`)
	if b.NumRows() != 7 { // 1992..1998
		t.Fatalf("years = %d", b.NumRows())
	}
	ys, _ := b.Col("y")
	if ys[0] != 1992 || ys[len(ys)-1] != 1998 {
		t.Fatalf("year range = %d..%d", ys[0], ys[len(ys)-1])
	}
}

// Aliased self-join.
func TestSelfJoinAliases(t *testing.T) {
	b := runSQL(t, `
		SELECT n1.n_name AS a, n2.n_name AS b
		FROM nation n1, nation n2
		WHERE n1.n_regionkey = n2.n_nationkey AND n1.n_nationkey < 3
		ORDER BY a`)
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d", b.NumRows())
	}
}

// HAVING over aggregates.
func TestHaving(t *testing.T) {
	b := runSQL(t, `
		SELECT o_custkey, count(*) AS n
		FROM orders
		GROUP BY o_custkey
		HAVING count(*) > 20
		ORDER BY n DESC`)
	ns, _ := b.Col("n")
	for _, v := range ns {
		if v <= 20 {
			t.Fatalf("having leaked %d", v)
		}
	}
}

// Pure projection without aggregation.
func TestPureProjection(t *testing.T) {
	b := runSQL(t, `
		SELECT r_name, r_regionkey * 10 AS tens
		FROM region
		ORDER BY r_regionkey DESC
		LIMIT 3`)
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	tens, _ := b.Col("tens")
	if tens[0] != 40 {
		t.Fatalf("tens[0] = %d", tens[0])
	}
}

// SUBSTRING ... IN packs strings (q22's cntrycode shape).
func TestSubstringIn(t *testing.T) {
	b := runSQL(t, `
		SELECT count(*) AS n
		FROM customer
		WHERE substring(c_phone, 1, 2) IN ('13', '31')`)
	n, _ := b.Col("n")
	if n[0] <= 0 {
		t.Fatalf("n = %d", n[0])
	}
}

// Decimal literal scaling: 24 compares against a ×100 decimal column.
func TestDecimalCoercion(t *testing.T) {
	a := runSQL(t, `SELECT count(*) AS n FROM lineitem WHERE l_quantity < 24`)
	bq := runSQL(t, `SELECT count(*) AS n FROM lineitem WHERE l_quantity < 24.00`)
	av, _ := a.Col("n")
	bv, _ := bq.Col("n")
	if av[0] != bv[0] || av[0] == 0 {
		t.Fatalf("coercion mismatch: %d vs %d", av[0], bv[0])
	}
}

// Planner error cases.
func TestPlannerErrors(t *testing.T) {
	s := testStore(t)
	bad := []string{
		"SELECT x FROM lineitem",                   // unknown column
		"SELECT l_orderkey FROM lineitem, missing", // unknown table
		"SELECT n_name FROM nation, region",        // cross join
		"SELECT o_custkey FROM orders, customer WHERE o_custkey = c_custkey GROUP BY o_clerk",                             // non-key select
		"SELECT c_custkey FROM customer, orders WHERE c_custkey = o_custkey AND c_custkey = 1 ORDER BY sum(o_totalprice)", // expr order by
	}
	for _, src := range bad {
		if _, err := Plan(src, s); err == nil {
			t.Errorf("planned: %q", src)
		}
	}
}

// SQL-planned queries must offload like hand-built ones: run one through
// the public offload path via the compiler-visible structure.
func TestSQLPlanOffloads(t *testing.T) {
	s := testStore(t)
	n, err := Plan(`SELECT l_returnflag, sum(l_quantity) AS q
		FROM lineitem GROUP BY l_returnflag`, s)
	if err != nil {
		t.Fatal(err)
	}
	// The plan is already bound; check the structure is a group-by over a
	// scan, which the offload compiler accepts.
	ob, ok := n.(*plan.Project)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	if _, ok := ob.Input.(*plan.GroupBy); !ok {
		t.Fatalf("input = %T", ob.Input)
	}
}
