package sql

import (
	"fmt"
	"strconv"
	"strings"

	"aquoman/internal/col"
	"aquoman/internal/plan"
)

// CompileError marks a failure to turn SQL text into a bound plan —
// parse errors, unknown tables/columns, type mismatches. It lets callers
// (e.g. the HTTP server) distinguish a bad statement (the client's fault,
// 400) from an execution failure (the system's fault, 500). Error()
// returns the underlying message unchanged; use errors.As to detect it.
type CompileError struct {
	// Src is the offending SQL statement.
	Src string
	// Err is the underlying parse/plan/bind failure.
	Err error
}

func (e *CompileError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CompileError) Unwrap() error { return e.Err }

// Plan compiles a SQL statement against the store's catalog into a bound
// plan tree ready for the engine or the AQUOMAN offload path. All
// failures are reported as *CompileError.
func Plan(src string, store *col.Store) (plan.Node, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, &CompileError{Src: src, Err: err}
	}
	pl := &planner{store: store, st: st}
	root, err := pl.plan()
	if err != nil {
		return nil, &CompileError{Src: src, Err: err}
	}
	if err := plan.Bind(root, store); err != nil {
		return nil, &CompileError{Src: src, Err: err}
	}
	return root, nil
}

// binding is one FROM entry resolved against the catalog.
type binding struct {
	item fromItem
	tab  *col.Table
	// ref(colName) is how the rest of the plan refers to this table's
	// column (bare when globally unique, "alias.col" otherwise).
	refName map[string]string
	// used collects the storage columns the query touches.
	used map[string]bool
}

func (b *binding) aliasOrTable() string {
	if b.item.alias != "" {
		return b.item.alias
	}
	return b.item.table
}

// typed pairs a plan expression with its inferred type; literal marks
// unscaled integer literals awaiting decimal coercion.
type typed struct {
	e       plan.Expr
	typ     col.Type
	literal bool
}

type planner struct {
	store *col.Store
	st    *stmt

	binds []*binding
	// aggs are the extracted aggregate calls, deduplicated.
	aggs     []plan.AggSpec
	aggNames map[string]string // call signature -> output column name
	aggTypes map[string]col.Type
	// keySigs maps group-by expression signatures to key column names so
	// that SELECT/ORDER BY occurrences of the same expression resolve to
	// the key.
	keySigs map[string]string
}

func (p *planner) plan() (plan.Node, error) {
	if len(p.st.from) == 0 {
		return nil, fmt.Errorf("sql: no FROM tables")
	}
	// Resolve FROM bindings and column visibility.
	colOwners := map[string][]*binding{}
	for _, fi := range p.st.from {
		tab, err := p.store.Table(fi.table)
		if err != nil {
			return nil, err
		}
		b := &binding{item: fi, tab: tab, refName: map[string]string{}, used: map[string]bool{}}
		p.binds = append(p.binds, b)
		for _, cd := range tab.Cols {
			colOwners[cd.Name] = append(colOwners[cd.Name], b)
		}
	}
	for _, b := range p.binds {
		for _, cd := range b.tab.Cols {
			if len(colOwners[cd.Name]) == 1 && b.item.alias == "" {
				b.refName[cd.Name] = cd.Name
			} else {
				b.refName[cd.Name] = b.aliasOrTable() + "." + cd.Name
			}
		}
	}

	// Split WHERE into equi-join edges and filter conjuncts, marking
	// used columns along the way.
	var joinConds []aBin
	var filters []astExpr
	if p.st.where != nil {
		for _, conj := range astConjuncts(p.st.where) {
			if jb, ok := p.joinCond(conj); ok {
				joinConds = append(joinConds, jb)
				continue
			}
			filters = append(filters, conj)
		}
	}
	// Mark usage from every expression in the statement.
	exprs := []astExpr{}
	for _, s := range p.st.selects {
		exprs = append(exprs, s.expr)
	}
	exprs = append(exprs, p.st.groupBy...)
	if p.st.having != nil {
		exprs = append(exprs, p.st.having)
	}
	for _, o := range p.st.orderBy {
		exprs = append(exprs, o.expr)
	}
	exprs = append(exprs, filters...)
	for _, jc := range joinConds {
		exprs = append(exprs, jc.l, jc.r)
	}
	for _, e := range exprs {
		if err := p.markUsed(e); err != nil {
			return nil, err
		}
	}

	// Build the left-deep join tree in FROM order.
	root, err := p.joinTree(joinConds)
	if err != nil {
		return nil, err
	}
	if len(filters) > 0 {
		pred, err := p.boolExpr(astAndAll(filters))
		if err != nil {
			return nil, err
		}
		root = &plan.Filter{Input: root, Pred: pred}
	}
	return p.projectAndAggregate(root)
}

// boolExpr translates a row-level boolean predicate.
func (p *planner) boolExpr(e astExpr) (plan.Expr, error) {
	t, err := p.scalarExpr(e)
	if err != nil {
		return nil, err
	}
	return t.e, nil
}

// joinCond recognizes col = col across two different tables.
func (p *planner) joinCond(e astExpr) (aBin, bool) {
	b, ok := e.(aBin)
	if !ok || b.op != "=" {
		return aBin{}, false
	}
	lc, lok := b.l.(aCol)
	rc, rok := b.r.(aCol)
	if !lok || !rok {
		return aBin{}, false
	}
	lb, _, err1 := p.resolve(lc)
	rb, _, err2 := p.resolve(rc)
	if err1 != nil || err2 != nil || lb == rb {
		return aBin{}, false
	}
	return b, true
}

// resolve finds a column reference's owning binding and storage column.
func (p *planner) resolve(c aCol) (*binding, string, error) {
	if c.qual != "" {
		for _, b := range p.binds {
			if b.aliasOrTable() == c.qual {
				if !b.tab.HasColumn(c.name) && c.name != "@rowid" {
					return nil, "", fmt.Errorf("sql: table %q has no column %q", c.qual, c.name)
				}
				return b, c.name, nil
			}
		}
		return nil, "", fmt.Errorf("sql: unknown table alias %q", c.qual)
	}
	var found *binding
	for _, b := range p.binds {
		if b.tab.HasColumn(c.name) {
			if found != nil {
				return nil, "", fmt.Errorf("sql: ambiguous column %q (qualify it)", c.name)
			}
			found = b
		}
	}
	if found == nil {
		return nil, "", fmt.Errorf("sql: unknown column %q", c.name)
	}
	return found, c.name, nil
}

func (p *planner) markUsed(e astExpr) error {
	switch n := e.(type) {
	case aCol:
		b, sc, err := p.resolve(n)
		if err != nil {
			// Unresolvable names may be SELECT aliases (handled later in
			// HAVING/ORDER BY); ignore here.
			return nil
		}
		b.used[sc] = true
	case aBin:
		if err := p.markUsed(n.l); err != nil {
			return err
		}
		return p.markUsed(n.r)
	case aNot:
		return p.markUsed(n.e)
	case aIn:
		if err := p.markUsed(n.e); err != nil {
			return err
		}
		for _, it := range n.list {
			if err := p.markUsed(it); err != nil {
				return err
			}
		}
	case aBetween:
		if err := p.markUsed(n.e); err != nil {
			return err
		}
		if err := p.markUsed(n.lo); err != nil {
			return err
		}
		return p.markUsed(n.hi)
	case aLike:
		return p.markUsed(n.e)
	case aCase:
		if err := p.markUsed(n.cond); err != nil {
			return err
		}
		if err := p.markUsed(n.then); err != nil {
			return err
		}
		return p.markUsed(n.els)
	case aCall:
		if n.arg != nil {
			return p.markUsed(n.arg)
		}
	case aYear:
		return p.markUsed(n.e)
	case aSubstr:
		return p.markUsed(n.e)
	}
	return nil
}

// scanFor builds the (possibly renamed) scan of one binding.
func (p *planner) scanFor(b *binding) plan.Node {
	var cols []string
	for _, cd := range b.tab.Cols {
		if b.used[cd.Name] {
			cols = append(cols, cd.Name)
		}
	}
	if len(cols) == 0 {
		// A table joined purely for existence still needs its key; the
		// join conditions marked it used, so this means the table is
		// entirely unused — keep one column to stay well-formed.
		cols = []string{b.tab.Cols[0].Name}
	}
	scan := &plan.Scan{Table: b.item.table, Cols: cols}
	needRename := false
	for _, c := range cols {
		if b.refName[c] != c {
			needRename = true
		}
	}
	if !needRename {
		return scan
	}
	var exprs []plan.NamedExpr
	for _, c := range cols {
		exprs = append(exprs, plan.NamedExpr{Name: b.refName[c], E: plan.C(c)})
	}
	return &plan.Project{Input: scan, Exprs: exprs}
}

// joinTree connects the FROM tables left-deep using the equi-join edges.
func (p *planner) joinTree(conds []aBin) (plan.Node, error) {
	joined := map[*binding]bool{p.binds[0]: true}
	root := p.scanFor(p.binds[0])
	remaining := append([]aBin(nil), conds...)
	for _, b := range p.binds[1:] {
		var lkey, rkey string
		found := -1
		for i, jc := range remaining {
			lb, lc, _ := p.resolve(jc.l.(aCol))
			rb, rc, _ := p.resolve(jc.r.(aCol))
			switch {
			case joined[lb] && rb == b:
				lkey, rkey = lb.refName[lc], rb.refName[rc]
				found = i
			case joined[rb] && lb == b:
				lkey, rkey = rb.refName[rc], lb.refName[lc]
				found = i
			}
			if found >= 0 {
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("sql: no join condition connects table %q (cross joins unsupported)",
				b.aliasOrTable())
		}
		remaining = append(remaining[:found], remaining[found+1:]...)
		root = &plan.Join{Kind: plan.InnerJoin, L: root, R: p.scanFor(b),
			LKeys: []string{lkey}, RKeys: []string{rkey}}
		joined[b] = true
	}
	// Leftover join conditions between already-joined tables become
	// filters (e.g. q5's c_nationkey = s_nationkey).
	var extras []astExpr
	for _, jc := range remaining {
		extras = append(extras, jc)
	}
	if len(extras) > 0 {
		pred, err := p.boolExpr(astAndAll(extras))
		if err != nil {
			return nil, err
		}
		root = &plan.Filter{Input: root, Pred: pred}
	}
	return root, nil
}

// projectAndAggregate finishes the plan: group-by, having, select
// projection, order-by, limit.
func (p *planner) projectAndAggregate(root plan.Node) (plan.Node, error) {
	p.aggNames = map[string]string{}
	p.aggTypes = map[string]col.Type{}
	hasAgg := false
	for _, s := range p.st.selects {
		if containsAgg(s.expr) {
			hasAgg = true
		}
	}
	if p.st.having != nil && containsAgg(p.st.having) {
		hasAgg = true
	}

	if !hasAgg && len(p.st.groupBy) == 0 {
		// Pure projection. ORDER BY may reference either output aliases
		// (sort above the projection) or base columns dropped by it
		// (sort below).
		proj, err := p.selectProjection(nil)
		if err != nil {
			return nil, err
		}
		outNames := map[string]bool{}
		for _, ne := range proj {
			outNames[ne.Name] = true
		}
		allOut := true
		for _, o := range p.st.orderBy {
			name, err := p.orderRef(o.expr)
			if err != nil || !outNames[name] {
				allOut = false
			}
		}
		if allOut {
			root = &plan.Project{Input: root, Exprs: proj}
			return p.orderAndLimit(root, nil)
		}
		var err2 error
		root, err2 = p.orderAndLimit(root, nil)
		if err2 != nil {
			return nil, err2
		}
		return &plan.Project{Input: root, Exprs: proj}, nil
	}

	// Group keys: plain columns stay; computed keys go through a
	// pre-projection together with pass-through base columns.
	type key struct {
		name string
		expr astExpr
	}
	var keys []key
	p.keySigs = map[string]string{}
	needPre := false
	for i, g := range p.st.groupBy {
		if c, ok := g.(aCol); ok {
			b, sc, err := p.resolve(c)
			if err != nil {
				return nil, err
			}
			keys = append(keys, key{name: b.refName[sc], expr: g})
			p.keySigs[fmt.Sprintf("%#v", g)] = b.refName[sc]
			continue
		}
		needPre = true
		name := fmt.Sprintf("@key%d", i)
		keys = append(keys, key{name: name, expr: g})
		p.keySigs[fmt.Sprintf("%#v", g)] = name
	}
	if needPre {
		var exprs []plan.NamedExpr
		seen := map[string]bool{}
		for _, k := range keys {
			te, err := p.scalarExpr(k.expr)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, plan.NamedExpr{Name: k.name, E: te.e, Typ: te.typ})
			seen[k.name] = true
		}
		// Pass through every base column the aggregates reference.
		for _, b := range p.binds {
			for sc := range b.used {
				ref := b.refName[sc]
				if !seen[ref] {
					exprs = append(exprs, plan.NamedExpr{Name: ref, E: plan.C(ref)})
					seen[ref] = true
				}
			}
		}
		root = &plan.Project{Input: root, Exprs: exprs}
	}

	// Extract aggregates from SELECT and HAVING.
	for _, s := range p.st.selects {
		if err := p.extractAggs(s.expr); err != nil {
			return nil, err
		}
	}
	if p.st.having != nil {
		if err := p.extractAggs(p.st.having); err != nil {
			return nil, err
		}
	}
	keyNames := make([]string, len(keys))
	for i, k := range keys {
		keyNames[i] = k.name
	}
	root = &plan.GroupBy{Input: root, Keys: keyNames, Aggs: p.aggs}

	if p.st.having != nil {
		pred, err := p.postAggExpr(p.st.having, keyNames)
		if err != nil {
			return nil, err
		}
		root = &plan.Filter{Input: root, Pred: pred.e}
	}

	proj, err := p.selectProjection(keyNames)
	if err != nil {
		return nil, err
	}
	root = &plan.Project{Input: root, Exprs: proj}
	return p.orderAndLimit(root, keyNames)
}

// selectProjection builds the final output columns. keyNames is non-nil
// in the aggregated case.
func (p *planner) selectProjection(keyNames []string) ([]plan.NamedExpr, error) {
	var out []plan.NamedExpr
	for i, s := range p.st.selects {
		name := s.alias
		var te typed
		var err error
		if keyNames != nil {
			te, err = p.postAggExpr(s.expr, keyNames)
		} else {
			te, err = p.scalarExpr(s.expr)
		}
		if err != nil {
			return nil, err
		}
		if name == "" {
			if c, ok := te.e.(plan.Col); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out = append(out, plan.NamedExpr{Name: name, E: te.e, Typ: te.typ})
	}
	return out, nil
}

func (p *planner) orderAndLimit(root plan.Node, keyNames []string) (plan.Node, error) {
	if len(p.st.orderBy) > 0 {
		var oks []plan.OrderKey
		for _, o := range p.st.orderBy {
			name, err := p.orderRef(o.expr)
			if err != nil {
				return nil, err
			}
			oks = append(oks, plan.OrderKey{Name: name, Desc: o.desc})
		}
		root = &plan.OrderBy{Input: root, Keys: oks}
	}
	if p.st.limit >= 0 {
		root = &plan.Limit{Input: root, N: p.st.limit}
	}
	return root, nil
}

// orderRef resolves an ORDER BY item to an output column name: a SELECT
// alias, an output column, or a positional index.
func (p *planner) orderRef(e astExpr) (string, error) {
	if n, ok := e.(aNum); ok {
		idx, err := strconv.Atoi(n.text)
		if err != nil || idx < 1 || idx > len(p.st.selects) {
			return "", fmt.Errorf("sql: bad ORDER BY position %q", n.text)
		}
		s := p.st.selects[idx-1]
		if s.alias != "" {
			return s.alias, nil
		}
		if c, ok := s.expr.(aCol); ok {
			return p.outputNameFor(c)
		}
		return fmt.Sprintf("col%d", idx), nil
	}
	if c, ok := e.(aCol); ok {
		// Prefer a SELECT alias of the same name; otherwise the column.
		for _, s := range p.st.selects {
			if s.alias == c.name && c.qual == "" {
				return c.name, nil
			}
		}
		return p.outputNameFor(c)
	}
	return "", fmt.Errorf("sql: ORDER BY expressions must be output columns, aliases, or positions")
}

func (p *planner) outputNameFor(c aCol) (string, error) {
	b, sc, err := p.resolve(c)
	if err != nil {
		return "", err
	}
	return b.refName[sc], nil
}

func containsAgg(e astExpr) bool {
	found := false
	walkAst(e, func(x astExpr) {
		if _, ok := x.(aCall); ok {
			found = true
		}
	})
	return found
}

func walkAst(e astExpr, fn func(astExpr)) {
	fn(e)
	switch n := e.(type) {
	case aBin:
		walkAst(n.l, fn)
		walkAst(n.r, fn)
	case aNot:
		walkAst(n.e, fn)
	case aIn:
		walkAst(n.e, fn)
		for _, it := range n.list {
			walkAst(it, fn)
		}
	case aBetween:
		walkAst(n.e, fn)
		walkAst(n.lo, fn)
		walkAst(n.hi, fn)
	case aLike:
		walkAst(n.e, fn)
	case aCase:
		walkAst(n.cond, fn)
		walkAst(n.then, fn)
		walkAst(n.els, fn)
	case aCall:
		if n.arg != nil {
			walkAst(n.arg, fn)
		}
	case aYear:
		walkAst(n.e, fn)
	case aSubstr:
		walkAst(n.e, fn)
	}
}

func astConjuncts(e astExpr) []astExpr {
	if b, ok := e.(aBin); ok && b.op == "AND" {
		return append(astConjuncts(b.l), astConjuncts(b.r)...)
	}
	return []astExpr{e}
}

func astAndAll(es []astExpr) astExpr {
	e := es[0]
	for _, n := range es[1:] {
		e = aBin{op: "AND", l: e, r: n}
	}
	return e
}

func aggSig(c aCall) string {
	var sb strings.Builder
	sb.WriteString(c.fn)
	if c.distinct {
		sb.WriteString("#d")
	}
	if c.arg != nil {
		fmt.Fprintf(&sb, "|%#v", c.arg)
	}
	return sb.String()
}

// extractAggs registers every aggregate call in e as an AggSpec.
func (p *planner) extractAggs(e astExpr) error {
	var outer error
	walkAst(e, func(x astExpr) {
		c, ok := x.(aCall)
		if !ok || outer != nil {
			return
		}
		sig := aggSig(c)
		if _, done := p.aggNames[sig]; done {
			return
		}
		name := fmt.Sprintf("@agg%d", len(p.aggs))
		spec := plan.AggSpec{Name: name}
		var argT typed
		if c.arg != nil {
			var err error
			argT, err = p.scalarExpr(c.arg)
			if err != nil {
				outer = err
				return
			}
			spec.E = argT.e
		}
		switch c.fn {
		case "SUM":
			spec.Func = plan.AggSum
			spec.Typ = argT.typ
		case "AVG":
			spec.Func = plan.AggAvg
			spec.Typ = argT.typ
		case "MIN":
			spec.Func = plan.AggMin
			spec.Typ = argT.typ
		case "MAX":
			spec.Func = plan.AggMax
			spec.Typ = argT.typ
		case "COUNT":
			if c.distinct {
				spec.Func = plan.AggCountDistinct
			} else {
				spec.Func = plan.AggCount
			}
			spec.Typ = col.Int64
		}
		if spec.Typ == 0 {
			spec.Typ = col.Int64
		}
		p.aggs = append(p.aggs, spec)
		p.aggNames[sig] = name
		p.aggTypes[sig] = spec.Typ
	})
	return outer
}

// postAggExpr translates an expression evaluated above the GroupBy:
// aggregate calls become references to their output columns, and group
// keys stay as columns.
func (p *planner) postAggExpr(e astExpr, keyNames []string) (typed, error) {
	// A SELECT/ORDER BY expression that textually matches a GROUP BY
	// expression resolves to that key column.
	if name, ok := p.keySigs[fmt.Sprintf("%#v", e)]; ok {
		return typed{e: plan.C(name), typ: col.Int64}, nil
	}
	if c, ok := e.(aCall); ok {
		sig := aggSig(c)
		name, ok := p.aggNames[sig]
		if !ok {
			return typed{}, fmt.Errorf("sql: aggregate not extracted")
		}
		return typed{e: plan.C(name), typ: p.aggTypes[sig]}, nil
	}
	if c, ok := e.(aCol); ok {
		// A group key or a SELECT alias of an aggregate.
		if c.qual == "" {
			for _, s := range p.st.selects {
				if s.alias == c.name {
					return p.postAggExpr(s.expr, keyNames)
				}
			}
		}
		ref, err := p.outputNameFor(c)
		if err != nil {
			return typed{}, err
		}
		for _, k := range keyNames {
			if k == ref {
				return typed{e: plan.C(ref), typ: p.refType(c)}, nil
			}
		}
		return typed{}, fmt.Errorf("sql: column %q is neither a group key nor an aggregate", c.name)
	}
	return p.combine(e, func(sub astExpr) (typed, error) {
		return p.postAggExpr(sub, keyNames)
	})
}

// scalarExpr translates a pre-aggregation (row-level) expression.
func (p *planner) scalarExpr(e astExpr) (typed, error) {
	if c, ok := e.(aCol); ok {
		b, sc, err := p.resolve(c)
		if err != nil {
			return typed{}, err
		}
		return typed{e: plan.C(b.refName[sc]), typ: p.colType(b, sc)}, nil
	}
	if _, ok := e.(aCall); ok {
		return typed{}, fmt.Errorf("sql: nested aggregate in a row-level expression")
	}
	return p.combine(e, p.scalarExpr)
}

func (p *planner) colType(b *binding, sc string) col.Type {
	if ci, err := b.tab.Column(sc); err == nil {
		return ci.Def.Typ
	}
	return col.Int64
}

func (p *planner) refType(c aCol) col.Type {
	b, sc, err := p.resolve(c)
	if err != nil {
		return col.Int64
	}
	return p.colType(b, sc)
}

// combine handles the structural cases shared by scalar and post-agg
// translation; sub translates child expressions.
func (p *planner) combine(e astExpr, sub func(astExpr) (typed, error)) (typed, error) {
	switch n := e.(type) {
	case aNum:
		if strings.Contains(n.text, ".") {
			return typed{e: plan.Dec(n.text), typ: col.Decimal}, nil
		}
		v, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return typed{}, fmt.Errorf("sql: bad number %q", n.text)
		}
		return typed{e: plan.I(v), typ: col.Int64, literal: true}, nil
	case aStr:
		return typed{e: plan.S(n.s), typ: col.Dict}, nil
	case aDate:
		return typed{e: plan.I(n.days), typ: col.Date}, nil
	case aBin:
		return p.binExpr(n, sub)
	case aNot:
		inner, err := sub(n.e)
		if err != nil {
			return typed{}, err
		}
		return typed{e: plan.Not{E: inner.e}, typ: col.Bool}, nil
	case aBetween:
		v, err := sub(n.e)
		if err != nil {
			return typed{}, err
		}
		lo, err := sub(n.lo)
		if err != nil {
			return typed{}, err
		}
		hi, err := sub(n.hi)
		if err != nil {
			return typed{}, err
		}
		lo = coerce(lo, v.typ)
		hi = coerce(hi, v.typ)
		return typed{e: plan.Between(v.e, lo.e, hi.e), typ: col.Bool}, nil
	case aIn:
		return p.inExpr(n, sub)
	case aLike:
		c, ok := n.e.(aCol)
		if !ok {
			return typed{}, fmt.Errorf("sql: LIKE needs a column")
		}
		name, err := p.outputNameFor(c)
		if err != nil {
			return typed{}, err
		}
		return typed{e: plan.Like{Col: name, Pattern: n.pat, Negate: n.negate}, typ: col.Bool}, nil
	case aCase:
		cond, err := sub(n.cond)
		if err != nil {
			return typed{}, err
		}
		then, err := sub(n.then)
		if err != nil {
			return typed{}, err
		}
		els, err := sub(n.els)
		if err != nil {
			return typed{}, err
		}
		t := then.typ
		if then.literal && !els.literal {
			t = els.typ
			then = coerce(then, t)
		} else {
			els = coerce(els, t)
		}
		return typed{e: plan.Case{Cond: cond.e, Then: then.e, Else: els.e}, typ: t}, nil
	case aYear:
		inner, err := sub(n.e)
		if err != nil {
			return typed{}, err
		}
		return typed{e: plan.YearOf{E: inner.e}, typ: col.Int64}, nil
	case aSubstr:
		c, ok := n.e.(aCol)
		if !ok {
			return typed{}, fmt.Errorf("sql: SUBSTRING needs a column")
		}
		name, err := p.outputNameFor(c)
		if err != nil {
			return typed{}, err
		}
		return typed{e: plan.SubstrCode{Col: name, Start: n.start, Len: n.len}, typ: col.Int64}, nil
	default:
		return typed{}, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

// coerce rescales an unscaled integer literal to decimal context.
func coerce(t typed, want col.Type) typed {
	if want == col.Decimal && t.literal {
		if iv, ok := t.e.(plan.Int); ok {
			return typed{e: plan.I(iv.V * col.DecimalScale), typ: col.Decimal}
		}
	}
	return t
}

func (p *planner) binExpr(n aBin, sub func(astExpr) (typed, error)) (typed, error) {
	l, err := sub(n.l)
	if err != nil {
		return typed{}, err
	}
	r, err := sub(n.r)
	if err != nil {
		return typed{}, err
	}
	// Decimal coercion of untyped integer literals.
	if l.typ == col.Decimal {
		r = coerce(r, col.Decimal)
	}
	if r.typ == col.Decimal {
		l = coerce(l, col.Decimal)
	}
	bothDec := l.typ == col.Decimal && r.typ == col.Decimal
	switch n.op {
	case "AND":
		return typed{e: plan.And(l.e, r.e), typ: col.Bool}, nil
	case "OR":
		return typed{e: plan.Or(l.e, r.e), typ: col.Bool}, nil
	case "=":
		return typed{e: plan.EQ(l.e, r.e), typ: col.Bool}, nil
	case "<>":
		return typed{e: plan.NE(l.e, r.e), typ: col.Bool}, nil
	case "<":
		return typed{e: plan.LT(l.e, r.e), typ: col.Bool}, nil
	case "<=":
		return typed{e: plan.LE(l.e, r.e), typ: col.Bool}, nil
	case ">":
		return typed{e: plan.GT(l.e, r.e), typ: col.Bool}, nil
	case ">=":
		return typed{e: plan.GE(l.e, r.e), typ: col.Bool}, nil
	case "+":
		return typed{e: plan.Add(l.e, r.e), typ: resultType(l, r)}, nil
	case "-":
		return typed{e: plan.Sub(l.e, r.e), typ: resultType(l, r)}, nil
	case "*":
		if bothDec {
			return typed{e: plan.DecMul(l.e, r.e), typ: col.Decimal}, nil
		}
		return typed{e: plan.Mul(l.e, r.e), typ: resultType(l, r)}, nil
	case "/":
		if bothDec {
			// (a/b) at ×100 scale: a*100/b.
			return typed{e: plan.DivE(plan.Mul(l.e, plan.I(col.DecimalScale)), r.e),
				typ: col.Decimal}, nil
		}
		return typed{e: plan.DivE(l.e, r.e), typ: resultType(l, r)}, nil
	}
	return typed{}, fmt.Errorf("sql: unsupported operator %q", n.op)
}

func resultType(l, r typed) col.Type {
	if l.typ == col.Decimal || r.typ == col.Decimal {
		return col.Decimal
	}
	if l.literal {
		return r.typ
	}
	return l.typ
}

func (p *planner) inExpr(n aIn, sub func(astExpr) (typed, error)) (typed, error) {
	// String lists become InStrs over a column; integer lists InInts.
	if len(n.list) > 0 {
		if _, isStr := n.list[0].(aStr); isStr {
			c, ok := n.e.(aCol)
			if !ok {
				// SUBSTRING(...) IN ('..','..') packs the strings.
				if ss, isSub := n.e.(aSubstr); isSub {
					inner, err := sub(ss)
					if err != nil {
						return typed{}, err
					}
					var vs []int64
					for _, it := range n.list {
						vs = append(vs, plan.PackString(it.(aStr).s))
					}
					var e plan.Expr = plan.InInts{E: inner.e, Vs: vs}
					if n.negate {
						e = plan.Not{E: e}
					}
					return typed{e: e, typ: col.Bool}, nil
				}
				return typed{}, fmt.Errorf("sql: IN over strings needs a column")
			}
			name, err := p.outputNameFor(c)
			if err != nil {
				return typed{}, err
			}
			var vs []string
			for _, it := range n.list {
				s, ok := it.(aStr)
				if !ok {
					return typed{}, fmt.Errorf("sql: mixed IN list")
				}
				vs = append(vs, s.s)
			}
			var e plan.Expr = plan.InStrs{Col: name, Vs: vs}
			if n.negate {
				e = plan.Not{E: e}
			}
			return typed{e: e, typ: col.Bool}, nil
		}
	}
	inner, err := sub(n.e)
	if err != nil {
		return typed{}, err
	}
	var vs []int64
	for _, it := range n.list {
		t, err := sub(it)
		if err != nil {
			return typed{}, err
		}
		t = coerce(t, inner.typ)
		iv, ok := t.e.(plan.Int)
		if !ok {
			return typed{}, fmt.Errorf("sql: IN list items must be literals")
		}
		vs = append(vs, iv.V)
	}
	var e plan.Expr = plan.InInts{E: inner.e, Vs: vs}
	if n.negate {
		e = plan.Not{E: e}
	}
	return typed{e: e, typ: col.Bool}, nil
}
