package sql

// DML and DDL: CREATE TABLE / INSERT / UPDATE / DELETE.
//
// The write path reuses the SELECT machinery wherever a row-level
// expression appears: UPDATE ... SET and WHERE clauses compile through
// the same planner expression translator as query predicates, so every
// literal convention (DATE 'yyyy-mm-dd', ×100 decimals, dictionary
// strings) means the same thing on both sides of the engine. The
// compiled forms below are storage-neutral descriptions — the façade
// executes them against the catalog, keeping this package free of any
// catalog dependency.

import (
	"fmt"
	"strconv"
	"strings"

	"aquoman/internal/col"
	"aquoman/internal/plan"
)

// ---- parse-level AST ----

type colDefAST struct {
	name, typ string
}

type createStmt struct {
	table string
	cols  []colDefAST
}

type insertStmt struct {
	table string
	cols  []string // empty: full schema order (sans RowID companions)
	rows  [][]astExpr
}

type setItem struct {
	col  string
	expr astExpr
}

type updateStmt struct {
	table string
	sets  []setItem
	where astExpr
}

type deleteStmt struct {
	table string
	where astExpr
}

// ---- compiled forms ----

// CompiledCreate is a parsed CREATE TABLE ready for the catalog.
type CompiledCreate struct {
	Schema col.Schema
}

// CompiledInsert carries fully evaluated literal rows, split the way
// the catalog wants them: integer-family values by column, and string
// values (Text content, Dict members) by column.
type CompiledInsert struct {
	Table string
	N     int
	Ints  map[string][]col.Value
	Strs  map[string][]string
}

// CompiledDelete selects victim rows. Plan emits a single field, the
// table's @rowid, one row per victim at the executing snapshot.
type CompiledDelete struct {
	Table string
	Plan  plan.Node
}

// UpdateCol names one plan output field of a CompiledUpdate and the
// storage type its values carry.
type UpdateCol struct {
	Name string
	Typ  col.Type
}

// CompiledUpdate selects victim rows and computes their replacements.
// Plan emits @rowid first, then one field per entry of Cols: the SET
// expression for assigned columns and the old value for the rest
// (for Text columns the old value is its heap offset). Text columns
// assigned a string literal are carried in TextSets instead — their
// content is constant across victims and never flows through the plan.
type CompiledUpdate struct {
	Table    string
	Plan     plan.Node
	Cols     []UpdateCol
	TextSets map[string]string
}

// Exec is the compiled form of one write statement; exactly one field
// is set.
type Exec struct {
	Create *CompiledCreate
	Insert *CompiledInsert
	Update *CompiledUpdate
	Delete *CompiledDelete
}

// CompileExec parses and compiles one DML/DDL statement. SELECTs are
// rejected — queries go through Plan and the read path.
func CompileExec(src string, store *col.Store) (*Exec, error) {
	ex, err := compileExec(src, store)
	if err != nil {
		return nil, &CompileError{Src: src, Err: err}
	}
	return ex, nil
}

func compileExec(src string, store *col.Store) (*Exec, error) {
	st, err := parseDML(src)
	if err != nil {
		return nil, err
	}
	switch n := st.(type) {
	case *createStmt:
		c, err := compileCreate(n)
		if err != nil {
			return nil, err
		}
		return &Exec{Create: c}, nil
	case *insertStmt:
		c, err := compileInsert(n, store)
		if err != nil {
			return nil, err
		}
		return &Exec{Insert: c}, nil
	case *updateStmt:
		c, err := compileUpdate(n, store)
		if err != nil {
			return nil, err
		}
		return &Exec{Update: c}, nil
	case *deleteStmt:
		c, err := compileDelete(n, store)
		if err != nil {
			return nil, err
		}
		return &Exec{Delete: c}, nil
	default:
		return nil, fmt.Errorf("sql: internal: unknown statement %T", st)
	}
}

// ---- parsing ----

// parseDML parses one non-SELECT statement.
func parseDML(src string) (any, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st any
	switch {
	case p.at(tokKeyword, "CREATE"):
		st, err = p.parseCreate()
	case p.at(tokKeyword, "INSERT"):
		st, err = p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		st, err = p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		st, err = p.parseDelete()
	case p.at(tokKeyword, "SELECT"):
		return nil, p.errf("SELECT is a query, not a write — use the query path")
	default:
		return nil, p.errf("expected CREATE, INSERT, UPDATE or DELETE")
	}
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input")
	}
	return st, nil
}

func (p *parser) ident(what string) (string, error) {
	if !p.at(tokIdent, "") {
		return "", p.errf("expected %s", what)
	}
	return p.next().text, nil
}

func (p *parser) parseCreate() (*createStmt, error) {
	p.next() // CREATE
	if err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &createStmt{}
	var err error
	if st.table, err = p.ident("table name"); err != nil {
		return nil, err
	}
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		var cd colDefAST
		if cd.name, err = p.ident("column name"); err != nil {
			return nil, err
		}
		// Type names are plain identifiers except DATE, which the
		// lexer already claims as a keyword.
		if p.at(tokKeyword, "DATE") {
			p.next()
			cd.typ = "date"
		} else if cd.typ, err = p.ident("column type"); err != nil {
			return nil, err
		}
		st.cols = append(st.cols, cd)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseInsert() (*insertStmt, error) {
	p.next() // INSERT
	if err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	st := &insertStmt{}
	var err error
	if st.table, err = p.ident("table name"); err != nil {
		return nil, err
	}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			st.cols = append(st.cols, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []astExpr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.rows = append(st.rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (*updateStmt, error) {
	p.next() // UPDATE
	st := &updateStmt{}
	var err error
	if st.table, err = p.ident("table name"); err != nil {
		return nil, err
	}
	if err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		var it setItem
		if it.col, err = p.ident("column name"); err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		if it.expr, err = p.parseExpr(); err != nil {
			return nil, err
		}
		st.sets = append(st.sets, it)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		if st.where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (*deleteStmt, error) {
	p.next() // DELETE
	if err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	st := &deleteStmt{}
	var err error
	if st.table, err = p.ident("table name"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "WHERE") {
		if st.where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ---- CREATE TABLE ----

var typeNames = map[string]col.Type{
	"int":     col.Int32,
	"int32":   col.Int32,
	"int64":   col.Int64,
	"bigint":  col.Int64,
	"date":    col.Date,
	"decimal": col.Decimal,
	"bool":    col.Bool,
	"boolean": col.Bool,
	"text":    col.Text,
	"varchar": col.Text,
	"string":  col.Text,
}

func compileCreate(st *createStmt) (*CompiledCreate, error) {
	sc := col.Schema{Name: st.table}
	for _, cd := range st.cols {
		typ, ok := typeNames[cd.typ]
		if !ok {
			return nil, fmt.Errorf("sql: unknown column type %q (want int, bigint, date, decimal, bool or text)", cd.typ)
		}
		sc.Cols = append(sc.Cols, col.ColDef{Name: cd.name, Typ: typ})
	}
	return &CompiledCreate{Schema: sc}, nil
}

// ---- INSERT ----

func compileInsert(st *insertStmt, store *col.Store) (*CompiledInsert, error) {
	tab, err := store.Table(st.table)
	if err != nil {
		return nil, err
	}
	cols := st.cols
	if len(cols) == 0 {
		// Unlisted columns default to schema order, skipping the
		// materialized RowID companions the merge re-derives.
		for _, cd := range tab.Cols {
			if cd.Typ != col.RowID {
				cols = append(cols, cd.Name)
			}
		}
	}
	defs := make([]col.ColDef, len(cols))
	seen := map[string]bool{}
	for i, name := range cols {
		def, ok := tab.Col(name)
		if !ok {
			return nil, fmt.Errorf("sql: table %q has no column %q", st.table, name)
		}
		if def.Typ == col.RowID {
			return nil, fmt.Errorf("sql: column %q is a materialized companion and cannot be inserted", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("sql: column %q listed twice", name)
		}
		seen[name] = true
		defs[i] = def
	}
	out := &CompiledInsert{
		Table: st.table,
		N:     len(st.rows),
		Ints:  map[string][]col.Value{},
		Strs:  map[string][]string{},
	}
	for _, def := range defs {
		if def.Typ.IsString() {
			out.Strs[def.Name] = make([]string, 0, out.N)
		} else {
			out.Ints[def.Name] = make([]col.Value, 0, out.N)
		}
	}
	for _, row := range st.rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("sql: row has %d values, want %d", len(row), len(cols))
		}
		for i, e := range row {
			def := defs[i]
			if def.Typ.IsString() {
				s, ok := constStr(e)
				if !ok {
					return nil, fmt.Errorf("sql: column %q wants a string literal", def.Name)
				}
				out.Strs[def.Name] = append(out.Strs[def.Name], s)
				continue
			}
			v, err := constValue(e, def.Typ)
			if err != nil {
				return nil, fmt.Errorf("sql: column %q: %w", def.Name, err)
			}
			out.Ints[def.Name] = append(out.Ints[def.Name], v)
		}
	}
	return out, nil
}

// constStr unwraps a string literal.
func constStr(e astExpr) (string, bool) {
	s, ok := e.(aStr)
	return s.s, ok
}

// constValue folds a literal expression to a stored value of the given
// type: plain and negated integers, DATE literals, and decimal text
// scaled to ×100 fixed point. Anything non-constant is rejected —
// INSERT rows are literals, not computations.
func constValue(e astExpr, typ col.Type) (col.Value, error) {
	switch n := e.(type) {
	case aDate:
		if typ != col.Date {
			return 0, fmt.Errorf("date literal for %s column", typ)
		}
		return n.days, nil
	case aNum:
		return parseNum(n.text, typ)
	case aBin:
		// The parser encodes unary minus as 0 - x.
		if n.op == "-" {
			if z, ok := n.l.(aNum); ok && z.text == "0" {
				v, err := constValue(n.r, typ)
				if err != nil {
					return 0, err
				}
				return -v, nil
			}
		}
	}
	return 0, fmt.Errorf("value must be a literal")
}

func parseNum(text string, typ col.Type) (col.Value, error) {
	if typ == col.Decimal {
		whole, frac, _ := strings.Cut(text, ".")
		for len(frac) < 2 {
			frac += "0"
		}
		if len(frac) > 2 {
			return 0, fmt.Errorf("decimal %q has more than two fractional digits", text)
		}
		w, err := strconv.ParseInt(whole, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", text)
		}
		f, err := strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", text)
		}
		return w*col.DecimalScale + f, nil
	}
	if strings.Contains(text, ".") {
		return 0, fmt.Errorf("fractional value for %s column", typ)
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", text)
	}
	if !col.ValueInRange(typ, v) {
		return 0, fmt.Errorf("value %d out of range for %s", v, typ)
	}
	return v, nil
}

// ---- WHERE / UPDATE plans ----

// singleBind sets up a one-table planner so WHERE and SET expressions
// compile through the exact same translator as query predicates.
func singleBind(store *col.Store, table string) (*planner, *binding, error) {
	tab, err := store.Table(table)
	if err != nil {
		return nil, nil, err
	}
	b := &binding{
		item:    fromItem{table: table},
		tab:     tab,
		refName: map[string]string{},
		used:    map[string]bool{},
	}
	for _, cd := range tab.Cols {
		b.refName[cd.Name] = cd.Name
	}
	pl := &planner{store: store, binds: []*binding{b}}
	return pl, b, nil
}

// victimScan builds Scan→Filter over the binding's used columns plus
// the @rowid pseudo-column.
func victimScan(b *binding, pred plan.Expr, extra map[string]bool) plan.Node {
	var cols []string
	for _, cd := range b.tab.Cols {
		if b.used[cd.Name] || extra[cd.Name] {
			cols = append(cols, cd.Name)
		}
	}
	cols = append(cols, plan.RowIDCol)
	var node plan.Node = &plan.Scan{Table: b.item.table, Cols: cols}
	if pred != nil {
		node = &plan.Filter{Input: node, Pred: pred}
	}
	return node
}

func compileDelete(st *deleteStmt, store *col.Store) (*CompiledDelete, error) {
	pl, b, err := singleBind(store, st.table)
	if err != nil {
		return nil, err
	}
	var pred plan.Expr
	if st.where != nil {
		if err := pl.markUsed(st.where); err != nil {
			return nil, err
		}
		if pred, err = pl.boolExpr(st.where); err != nil {
			return nil, err
		}
	}
	root := &plan.Project{
		Input: victimScan(b, pred, nil),
		Exprs: []plan.NamedExpr{{Name: plan.RowIDCol, E: plan.C(plan.RowIDCol)}},
	}
	if err := plan.Bind(root, store); err != nil {
		return nil, err
	}
	return &CompiledDelete{Table: st.table, Plan: root}, nil
}

func compileUpdate(st *updateStmt, store *col.Store) (*CompiledUpdate, error) {
	pl, b, err := singleBind(store, st.table)
	if err != nil {
		return nil, err
	}
	// Classify the assignments.
	sets := map[string]typed{}
	textSets := map[string]string{}
	for _, it := range st.sets {
		def, ok := b.tab.Col(it.col)
		if !ok {
			return nil, fmt.Errorf("sql: table %q has no column %q", st.table, it.col)
		}
		if def.Typ == col.RowID {
			return nil, fmt.Errorf("sql: column %q is a materialized companion and cannot be assigned", it.col)
		}
		if _, dup := sets[it.col]; dup {
			return nil, fmt.Errorf("sql: column %q assigned twice", it.col)
		}
		if _, dup := textSets[it.col]; dup {
			return nil, fmt.Errorf("sql: column %q assigned twice", it.col)
		}
		switch def.Typ {
		case col.Text:
			s, ok := constStr(it.expr)
			if !ok {
				return nil, fmt.Errorf("sql: text column %q wants a string literal", it.col)
			}
			textSets[it.col] = s
		case col.Dict:
			// Dictionaries are fixed between loads: resolve the member
			// to its code now so an unknown value fails at compile time.
			s, ok := constStr(it.expr)
			if !ok {
				return nil, fmt.Errorf("sql: dictionary column %q wants a string literal", it.col)
			}
			ci := b.tab.MustColumn(it.col)
			code, ok := ci.Code(s)
			if !ok {
				return nil, fmt.Errorf("sql: %s.%s: value %q is not in the dictionary", st.table, it.col, s)
			}
			sets[it.col] = typed{e: plan.I(code), typ: col.Dict}
		default:
			if err := pl.markUsed(it.expr); err != nil {
				return nil, err
			}
			t, err := pl.scalarExpr(it.expr)
			if err != nil {
				return nil, err
			}
			t = coerce(t, def.Typ)
			if t.typ.IsString() {
				return nil, fmt.Errorf("sql: string value for %s column %q", def.Typ, it.col)
			}
			sets[it.col] = t
		}
	}
	var pred plan.Expr
	if st.where != nil {
		if err := pl.markUsed(st.where); err != nil {
			return nil, err
		}
		if pred, err = pl.boolExpr(st.where); err != nil {
			return nil, err
		}
	}
	// Plan output: @rowid, then the replacement value of every stored
	// column — assigned columns get their SET expression, the rest pass
	// the old value through (a heap offset for Text; RowID companions
	// are re-derived by the merge and skipped entirely).
	exprs := []plan.NamedExpr{{Name: plan.RowIDCol, E: plan.C(plan.RowIDCol)}}
	var outCols []UpdateCol
	passthrough := map[string]bool{}
	for _, cd := range b.tab.Cols {
		if cd.Typ == col.RowID {
			continue
		}
		if _, isText := textSets[cd.Name]; isText {
			continue
		}
		e, assigned := sets[cd.Name]
		if !assigned {
			e = typed{e: plan.C(cd.Name), typ: cd.Typ}
			passthrough[cd.Name] = true
		}
		exprs = append(exprs, plan.NamedExpr{Name: cd.Name, E: e.e})
		outCols = append(outCols, UpdateCol{Name: cd.Name, Typ: cd.Typ})
	}
	root := &plan.Project{Input: victimScan(b, pred, passthrough), Exprs: exprs}
	if err := plan.Bind(root, store); err != nil {
		return nil, err
	}
	return &CompiledUpdate{Table: st.table, Plan: root, Cols: outCols, TextSets: textSets}, nil
}
