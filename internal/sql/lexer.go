// Package sql is a textual frontend for the query library: a lexer,
// recursive-descent parser and planner translating an analytics-oriented
// SQL dialect into the plan algebra that both the host engine and the
// AQUOMAN offload compiler execute.
//
// Supported dialect (everything TPC-H-shaped except subqueries, which the
// plan algebra expresses directly):
//
//	SELECT expr [AS name], ...
//	FROM table [alias], table [alias], ...
//	[WHERE predicate]              -- equi-join conditions live here
//	[GROUP BY col, ...]
//	[HAVING predicate]
//	[ORDER BY expr [DESC], ...]
//	[LIMIT n]
//
// with arithmetic, comparisons, AND/OR/NOT, BETWEEN, IN (...), LIKE,
// CASE WHEN, EXTRACT(YEAR FROM x), DATE 'yyyy-mm-dd' literals, decimal
// literals (×100 fixed point), and the aggregates SUM/AVG/MIN/MAX/COUNT.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // '...'
	tokSymbol // punctuation / operators
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "COUNT": true,
	"DISTINCT": true, "ASC": true, "DESC": true, "DATE": true,
	"EXTRACT": true, "YEAR": true, "SUBSTRING": true, "INTERVAL": true,
	"CREATE": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '@'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '@'
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	w := l.src[start:l.pos]
	up := strings.ToUpper(w)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(w), pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

var twoCharSymbols = []string{"<>", "<=", ">=", "!="}

func (l *lexer) lexSymbol() error {
	start := l.pos
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, s := range twoCharSymbols {
			if two == s {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
				return nil
			}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '+', '-', '*', '/', '<', '>', '=', '.', ';':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, start)
}
