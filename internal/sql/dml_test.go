package sql

import (
	"strings"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
)

func compileOK(t *testing.T, src string) *Exec {
	t.Helper()
	ex, err := CompileExec(src, testStore(t))
	if err != nil {
		t.Fatalf("CompileExec(%q): %v", src, err)
	}
	return ex
}

func compileErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := CompileExec(src, testStore(t))
	if err == nil {
		t.Fatalf("CompileExec(%q) accepted", src)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("CompileExec(%q) error = %v, want substring %q", src, err, want)
	}
}

func TestCompileCreate(t *testing.T) {
	ex := compileOK(t, "CREATE TABLE events (e_id bigint, e_day date, e_amt decimal, e_msg text)")
	sc := ex.Create.Schema
	if sc.Name != "events" || len(sc.Cols) != 4 {
		t.Fatalf("schema = %+v", sc)
	}
	want := []col.Type{col.Int64, col.Date, col.Decimal, col.Text}
	for i, typ := range want {
		if sc.Cols[i].Typ != typ {
			t.Errorf("col %d type = %v, want %v", i, sc.Cols[i].Typ, typ)
		}
	}
	compileErr(t, "CREATE TABLE bad (x blob)", "unknown column type")
}

func TestCompileInsertLiterals(t *testing.T) {
	// region: r_regionkey int32, r_name dict, r_comment text.
	ex := compileOK(t, "INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (7, 'ASIA', 'new row'), (8, 'EUROPE', 'another')")
	ins := ex.Insert
	if ins.N != 2 || ins.Table != "region" {
		t.Fatalf("insert = %+v", ins)
	}
	if got := ins.Ints["r_regionkey"]; got[0] != 7 || got[1] != 8 {
		t.Fatalf("r_regionkey = %v", got)
	}
	if got := ins.Strs["r_comment"]; got[1] != "another" {
		t.Fatalf("r_comment = %v", got)
	}

	// Decimal scaling, dates, negatives through the lineitem schema.
	ex = compileOK(t, "INSERT INTO orders (o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate, o_orderpriority, o_shippriority) "+
		"VALUES (99, 1, 'O', 12.5, DATE '1995-06-17', '1-URGENT', -3)")
	ins = ex.Insert
	if got := ins.Ints["o_totalprice"][0]; got != 1250 {
		t.Fatalf("decimal literal = %d, want 1250", got)
	}
	if got := ins.Ints["o_shippriority"][0]; got != -3 {
		t.Fatalf("negative literal = %d", got)
	}
	if got := ins.Ints["o_orderdate"][0]; got <= 0 {
		t.Fatalf("date literal = %d", got)
	}

	compileErr(t, "INSERT INTO region (r_regionkey) VALUES (1, 2)", "row has 2 values")
	compileErr(t, "INSERT INTO region (bogus) VALUES (1)", "no column")
	compileErr(t, "INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (r_name, 'x', 'y')", "literal")
	compileErr(t, "INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (1.5, 'x', 'y')", "fractional")
}

func TestCompileDeleteVictims(t *testing.T) {
	ex := compileOK(t, "DELETE FROM region WHERE r_name = 'ASIA'")
	b, err := engine.New(testStore(t)).Run(ex.Delete.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 1 || b.Schema[0].Name != plan.RowIDCol {
		t.Fatalf("victims = %v rows, schema %v", b.NumRows(), b.Schema)
	}
	rowid := b.Cols[0][0]
	names := testStore(t).MustTable("region").MustColumn("r_name")
	if got := names.MustStr(names.MustReadAll(flash.Host)[rowid], flash.Host); got != "ASIA" {
		t.Fatalf("victim rowid %d is %q", rowid, got)
	}

	// No WHERE selects every row.
	ex = compileOK(t, "DELETE FROM region")
	b, err = engine.New(testStore(t)).Run(ex.Delete.Plan)
	if err != nil || b.NumRows() != 5 {
		t.Fatalf("unfiltered victims = %d, %v", b.NumRows(), err)
	}
}

func TestCompileUpdatePlan(t *testing.T) {
	ex := compileOK(t, "UPDATE nation SET n_regionkey = n_regionkey + 1, n_comment = 'moved' WHERE n_nationkey < 3")
	up := ex.Update
	if up.TextSets["n_comment"] != "moved" {
		t.Fatalf("text sets = %v", up.TextSets)
	}
	for _, c := range up.Cols {
		if c.Name == "n_comment" {
			t.Fatal("text-set column leaked into the plan outputs")
		}
	}
	st := testStore(t)
	b, err := engine.New(st).Run(up.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 {
		t.Fatalf("victims = %d, want 3", b.NumRows())
	}
	if b.Schema[0].Name != plan.RowIDCol {
		t.Fatalf("first field = %v", b.Schema[0])
	}
	oldRegion := st.MustTable("nation").MustColumn("n_regionkey").MustReadAll(flash.Host)
	rowids, _ := b.Col(plan.RowIDCol)
	newRegion, _ := b.Col("n_regionkey")
	keys, _ := b.Col("n_nationkey")
	for i, r := range rowids {
		if keys[i] != r {
			// nation is keyed 0..24 in rowid order in TPC-H.
			t.Fatalf("victim %d: key %d at rowid %d", i, keys[i], r)
		}
		if newRegion[i] != oldRegion[r]+1 {
			t.Fatalf("victim %d: new region %d, old %d", i, newRegion[i], oldRegion[r])
		}
	}

	compileErr(t, "UPDATE nation SET n_regionkey = 'x'", "string value")
	compileErr(t, "UPDATE nation SET bogus = 1", "no column")
	compileErr(t, "UPDATE nation SET n_regionkey = 1, n_regionkey = 2", "assigned twice")
	compileErr(t, "UPDATE nation SET n_name = 'NOT A NATION'", "not in the dictionary")
	compileErr(t, "UPDATE nation SET n_regionkey@rowid = 1", "companion")
}

func TestParseDMLErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT 1 FROM region",
		"DROP TABLE region",
		"INSERT region VALUES (1)",
		"UPDATE nation WHERE n_nationkey = 1",
		"DELETE FROM region WHERE",
		"INSERT INTO region VALUES (1,)",
		"CREATE TABLE t ()",
	} {
		if _, err := CompileExec(src, testStore(t)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
