package sql

import (
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/flash"
)

var (
	fuzzOnce  sync.Once
	fuzzStore *col.Store
)

// fuzzDMLStore is a tiny fixed store covering every column type the
// compiler dispatches on, so CompileExec exercises literal evaluation
// and plan construction, not just the parser.
func fuzzDMLStore() *col.Store {
	fuzzOnce.Do(func() {
		s := col.NewStore(flash.NewDevice())
		tb := s.NewTable(col.Schema{Name: "t", Cols: []col.ColDef{
			{Name: "a", Typ: col.Int32},
			{Name: "b", Typ: col.Int64},
			{Name: "d", Typ: col.Date},
			{Name: "m", Typ: col.Decimal},
			{Name: "s", Typ: col.Dict},
			{Name: "x", Typ: col.Text},
		}})
		tb.Append(1, int64(10), 100, 1250, "alpha", "hello")
		tb.Append(2, int64(20), 200, 2500, "beta", "world")
		if _, err := tb.Finalize(); err != nil {
			panic(err)
		}
		fuzzStore = s
	})
	return fuzzStore
}

// FuzzDMLParse feeds arbitrary statement text through the DML parser
// and compiler: they must reject garbage with an error, never panic.
func FuzzDMLParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE events (e_id bigint, e_day date, e_msg text)",
		"INSERT INTO t (a, b, d, m, s, x) VALUES (1, 2, DATE '1997-01-01', 3.25, 'alpha', 'hi')",
		"INSERT INTO t (a) VALUES (-5), (6), (7)",
		"UPDATE t SET b = b + 1, x = 'patched' WHERE a BETWEEN 1 AND 2",
		"UPDATE t SET m = 9.99 WHERE s = 'beta' AND NOT (b > 15)",
		"DELETE FROM t WHERE x LIKE '%or%' OR d >= DATE '1995-06-17'",
		"DELETE FROM t",
		"INSERT INTO t VALUES (1, 2, 3, 4, 'alpha', 'x'); -- trailing",
		"UPDATE t SET a = 1 WHERE s IN ('alpha', 'beta')",
		"create table x (y int); select",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		ex, err := CompileExec(src, fuzzDMLStore())
		if err == nil && ex.Create == nil && ex.Insert == nil && ex.Update == nil && ex.Delete == nil {
			t.Fatalf("CompileExec(%q) returned an empty Exec", src)
		}
	})
}
