package sql

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCanonicalizeVariantsCollide(t *testing.T) {
	groups := [][]string{
		{
			"select sum(l_extendedprice) as rev from lineitem where l_discount > 5 and l_quantity < 24",
			"SELECT SUM(l_extendedprice) AS rev FROM lineitem WHERE l_quantity < 24 AND l_discount > 5",
			"select\tsum( l_extendedprice ) as rev\nfrom lineitem -- note\nwhere l_discount > 5 and l_quantity < 24;",
		},
		{
			"select count(*) from t where a = 1 and b = 2 and c = 3",
			"select count ( * ) from t where c=3 and a=1 and b=2",
		},
		{
			// BETWEEN's AND must not split; the two conjuncts still commute.
			"select x from t where a between 1 and 5 and b = 2",
			"select x from t where b = 2 and a between 1 and 5",
		},
		{
			"select case when a and b then 1 else 2 end from t where c = 1 and d = 2",
			"select case when a and b then 1 else 2 end from t where d = 2 and c = 1",
		},
	}
	for _, g := range groups {
		want := Canonicalize(g[0])
		for _, src := range g[1:] {
			if got := Canonicalize(src); got != want {
				t.Errorf("Canonicalize(%q) = %q, want %q (from %q)", src, got, want, g[0])
			}
		}
	}
}

func TestCanonicalizeDistinctQueriesDiffer(t *testing.T) {
	pairs := [][2]string{
		{"select a from t where x = 1", "select a from t where x = 2"},
		{"select a from t where x = 1 and y = 2", "select a from t where x = 2 and y = 1"},
		{"select a from t where s = 'abc'", "select a from t where s = 'ABC'"},
		{"select a from t where x = 1 or y = 2", "select a from t where y = 2 or x = 1"},
		{"select a from t limit 1", "select a from t limit 10"},
		{"select a from t where x between 1 and 5", "select a from t where x between 5 and 1"},
	}
	for _, p := range pairs {
		if Canonicalize(p[0]) == Canonicalize(p[1]) {
			t.Errorf("Canonicalize(%q) == Canonicalize(%q); semantically different queries must not collide", p[0], p[1])
		}
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	srcs := []string{
		"select sum(x) from t where a > 1 and b < 2 group by c order by d limit 3",
		"not even sql $$$",
		"",
		"select x from t where a between 1 and 5 and b = 2",
	}
	for _, src := range srcs {
		once := Canonicalize(src)
		if twice := Canonicalize(once); twice != once {
			t.Errorf("Canonicalize not idempotent on %q: %q -> %q", src, once, twice)
		}
	}
}

// renderVariant re-renders toks with randomized inter-token whitespace
// (including comments) and randomized keyword/identifier casing — all
// changes Canonicalize must erase.
func renderVariant(toks []token, rng *rand.Rand) string {
	gaps := []string{" ", "  ", "\t", "\n", " -- noise\n ", "\n\t "}
	var sb strings.Builder
	for i, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		if i > 0 {
			sb.WriteString(gaps[rng.Intn(len(gaps))])
		}
		switch tk.kind {
		case tokString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(tk.text, "'", "''"))
			sb.WriteByte('\'')
		case tokKeyword, tokIdent:
			for _, r := range tk.text {
				if rng.Intn(2) == 0 {
					sb.WriteString(strings.ToUpper(string(r)))
				} else {
					sb.WriteString(strings.ToLower(string(r)))
				}
			}
		default:
			sb.WriteString(tk.text)
		}
	}
	return sb.String()
}

// FuzzResultCacheKey fuzzes the canonicalization used as the result-cache
// key: whitespace/case/comment variants and top-level AND-conjunct
// permutations must collide; mutating a literal must not.
func FuzzResultCacheKey(f *testing.F) {
	f.Add("select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date '1994-01-01' and l_discount between 5 and 7 and l_quantity < 24", uint64(1))
	f.Add("select count(*) from t where a = 1 and b = 'x' and c = 3", uint64(2))
	f.Add("select x from t where a = 1 or b = 2", uint64(3))
	f.Add("select case when a and b then 1 else 2 end from t where c = 1 and d = 2 group by e limit 5", uint64(4))
	f.Fuzz(func(t *testing.T, src string, seed uint64) {
		canon := Canonicalize(src)
		if again := Canonicalize(canon); again != canon {
			t.Fatalf("not idempotent: %q -> %q -> %q", src, canon, again)
		}
		toks, err := lex(src)
		if err != nil {
			return
		}
		// The dialect is ASCII; non-ASCII bytes shift under the lexer's
		// case folding, so Canonicalize falls back to exact-text keying
		// there and the collision properties below don't apply.
		for i := 0; i < len(src); i++ {
			if src[i] >= 0x80 {
				return
			}
		}
		rng := rand.New(rand.NewSource(int64(seed)))

		// Whitespace/case/comment variants must collide.
		variant := renderVariant(toks, rng)
		if got := Canonicalize(variant); got != canon {
			t.Fatalf("variant diverged:\n src    %q\n variant %q\n canon  %q\n got    %q", src, variant, canon, got)
		}

		// Top-level AND-conjunct permutations must collide.
		body := toks[:len(toks)-1]
		if start, end, ok := whereSpan(body); ok {
			if conj, ok := splitConjuncts(body[start:end]); ok && len(conj) > 1 {
				parts := make([]string, len(conj))
				for i, c := range conj {
					parts[i] = renderTokens(c)
				}
				rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
				shuffled := renderTokens(body[:start]) + " " + strings.Join(parts, " AND ")
				if end < len(body) {
					shuffled += " " + renderTokens(body[end:])
				}
				if got := Canonicalize(shuffled); got != canon {
					t.Fatalf("shuffle diverged:\n src     %q\n shuffled %q\n canon   %q\n got     %q", src, shuffled, canon, got)
				}
			}
		}

		// Mutating one literal token must produce a different key: a
		// changed number or string literal changes the answer, so a
		// collision would serve a wrong cached result.
		mut := make([]token, len(body))
		copy(mut, body)
		for i := range mut {
			switch mut[i].kind {
			case tokNumber:
				mut[i].text += "0"
			case tokString:
				mut[i].text += "x"
			default:
				continue
			}
			if got := Canonicalize(renderTokens(mut)); got == canon {
				t.Fatalf("literal mutation collided:\n src %q\n mut %q\n key %q", src, renderTokens(mut), canon)
			}
			break
		}
	})
}
