package tpch

import (
	"fmt"
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/core"
	"aquoman/internal/enc"
	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/plan"
)

var (
	encOnce sync.Once
	encErr  error
	encTPCH *col.Store
)

// encStore builds the same TPC-H instance as sharedStore but with
// auto-selected column encodings, then forces a handful of re-encodes so
// the differential provably covers all three codecs (auto may not pick
// every codec on every column shape).
func encStore(t *testing.T) *col.Store {
	t.Helper()
	encOnce.Do(func() {
		s := col.NewStore(flash.NewDevice())
		s.DefaultEncoding = enc.SelAuto
		if err := Gen(s, Config{SF: 0.01, Seed: 42}); err != nil {
			encErr = err
			return
		}
		forced := []struct {
			table, column string
			sel           enc.Selection
		}{
			{"lineitem", "l_quantity", enc.SelDict},
			{"lineitem", "l_shipdate", enc.SelFOR},
			{"orders", "o_shippriority", enc.SelRLE},
		}
		for _, f := range forced {
			tab, err := s.Table(f.table)
			if err != nil {
				encErr = err
				return
			}
			if err := tab.ReEncodeColumn(f.column, f.sel); err != nil {
				encErr = fmt.Errorf("force %s on %s.%s: %w", f.sel, f.table, f.column, err)
				return
			}
		}
		encTPCH = s
	})
	if encErr != nil {
		t.Fatalf("encoded store: %v", encErr)
	}
	return encTPCH
}

// encPipelineRun executes query q over the encoded store through the full
// offload pipeline.
func encPipelineRun(t *testing.T, s *col.Store, q int) (*engine.Batch, *core.Report) {
	t.Helper()
	def, err := Get(q)
	if err != nil {
		t.Fatal(err)
	}
	n := def.Build()
	if err := plan.Bind(n, s); err != nil {
		t.Fatalf("q%d bind: %v", q, err)
	}
	dev := core.New(s, core.Config{DRAMBytes: mem.DefaultCapacity, Compiler: compiler.Config{HeapScale: 1}})
	b, rep, err := dev.RunQuery(n)
	if err != nil {
		t.Fatalf("q%d encoded pipeline: %v", q, err)
	}
	return b, rep
}

// The encoded store must actually be encoded, with all three codecs in
// play — otherwise the differential below proves nothing.
func TestEncodedStoreCoversAllCodecs(t *testing.T) {
	s := encStore(t)
	seen := map[enc.Codec]string{}
	for _, name := range s.Tables() {
		tab, err := s.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cn := range tab.ColumnNames() {
			ci := tab.MustColumn(cn)
			if ci.Enc != nil {
				if _, ok := seen[ci.Enc.Codec]; !ok {
					seen[ci.Enc.Codec] = name + "." + cn
				}
			}
		}
	}
	for _, c := range []enc.Codec{enc.Dict, enc.RLE, enc.FOR} {
		if _, ok := seen[c]; !ok {
			t.Errorf("no column stored under codec %s", c)
		}
	}
	if testing.Verbose() {
		for c, where := range seen {
			t.Logf("%s: e.g. %s", c, where)
		}
	}
}

// All 22 TPC-H queries over the dictionary+RLE+FOR-encoded store must be
// cell-identical to the oracle evaluated on the raw store: encoding is a
// pure storage-layer change.
func TestDifferentialEncodedAllQueries(t *testing.T) {
	want := oracleResults(t)
	s := encStore(t)
	for _, q := range Queries() {
		b, _ := encPipelineRun(t, s, q.Num)
		diffBatches(t, fmt.Sprintf("q%d encoded", q.Num), b, want[q.Num])
	}
}

// Encoded scans under a seeded transient-fault schedule must still agree
// exactly: retried encoded page reads decode to the same rows.
func TestDifferentialEncodedUnderFaults(t *testing.T) {
	want := oracleResults(t)
	s := encStore(t)
	// The encoded store reads far fewer pages than raw, so the transient
	// probability is higher than the raw schedule's to keep the expected
	// injection count comparable.
	inj := faults.New(faults.Config{Seed: 11, PTransient: 0.01, TransientRepeat: 2})
	s.Dev.SetFaults(inj)
	defer s.Dev.SetFaults(nil)
	before := s.Dev.Stats()
	for _, q := range Queries() {
		b, _ := encPipelineRun(t, s, q.Num)
		diffBatches(t, fmt.Sprintf("q%d encoded faulted", q.Num), b, want[q.Num])
	}
	if inj.Counts().TotalInjected() == 0 {
		t.Fatal("schedule injected no faults")
	}
	delta := s.Dev.Stats().Sub(before)
	if delta.TotalReadRetries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	if n := delta.ReadsFailed[flash.Host] + delta.ReadsFailed[flash.Aquoman]; n != 0 {
		t.Fatalf("%d reads failed outright", n)
	}
}
