package tpch

import (
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
)

var (
	storeOnce sync.Once
	testStore *col.Store
)

// sharedStore generates one small SF dataset for the whole test package.
func sharedStore(t *testing.T) *col.Store {
	t.Helper()
	storeOnce.Do(func() {
		s := col.NewStore(flash.NewDevice())
		if err := Gen(s, Config{SF: 0.01, Seed: 42}); err != nil {
			t.Fatalf("Gen: %v", err)
		}
		testStore = s
	})
	return testStore
}

func TestGenCardinalities(t *testing.T) {
	s := sharedStore(t)
	want := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"part":     2000,
		"partsupp": 8000,
		"customer": 1500,
		"orders":   15000,
	}
	for name, n := range want {
		tab, err := s.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tab.NumRows != n {
			t.Errorf("%s rows = %d, want %d", name, tab.NumRows, n)
		}
	}
	li, _ := s.Table("lineitem")
	// 1..7 lines per order, expect about 4x orders.
	if li.NumRows < 3*15000 || li.NumRows > 5*15000 {
		t.Errorf("lineitem rows = %d, outside [45000, 75000]", li.NumRows)
	}
}

func TestGenDeterministic(t *testing.T) {
	s1 := col.NewStore(flash.NewDevice())
	s2 := col.NewStore(flash.NewDevice())
	if err := Gen(s1, Config{SF: 0.01, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := Gen(s2, Config{SF: 0.01, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	for _, tab := range []string{"orders", "lineitem"} {
		t1, t2 := s1.MustTable(tab), s2.MustTable(tab)
		if t1.NumRows != t2.NumRows {
			t.Fatalf("%s row counts differ", tab)
		}
		c1 := t1.MustColumn(t1.Cols[0].Name).MustReadAll(flash.Host)
		c2 := t2.MustColumn(t2.Cols[0].Name).MustReadAll(flash.Host)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("%s col0 row %d differs", tab, i)
			}
		}
	}
}

func TestGenKeyRelationships(t *testing.T) {
	s := sharedStore(t)
	li := s.MustTable("lineitem")
	orders := s.MustTable("orders")
	// Materialized rowid columns exist and point at matching keys.
	rid := li.MustColumn(col.RowIDColumnName("l_orderkey")).MustReadAll(flash.Host)
	lok := li.MustColumn("l_orderkey").MustReadAll(flash.Host)
	ook := orders.MustColumn("o_orderkey").MustReadAll(flash.Host)
	for i := 0; i < len(rid); i += 997 {
		if ook[rid[i]] != lok[i] {
			t.Fatalf("lineitem row %d: rowid %d points at order %d, want %d",
				i, rid[i], ook[rid[i]], lok[i])
		}
	}
	// Composite partsupp join index.
	psrid := li.MustColumn(PartSuppRowIDCol).MustReadAll(flash.Host)
	ps := s.MustTable("partsupp")
	pspk := ps.MustColumn("ps_partkey").MustReadAll(flash.Host)
	pssk := ps.MustColumn("ps_suppkey").MustReadAll(flash.Host)
	lpk := li.MustColumn("l_partkey").MustReadAll(flash.Host)
	lsk := li.MustColumn("l_suppkey").MustReadAll(flash.Host)
	for i := 0; i < len(psrid); i += 997 {
		r := psrid[i]
		if pspk[r] != lpk[i] || pssk[r] != lsk[i] {
			t.Fatalf("lineitem row %d: partsupp rowid mismatch", i)
		}
	}
	// Customers with custkey %3 == 0 have no orders.
	ock := orders.MustColumn("o_custkey").MustReadAll(flash.Host)
	for i, ck := range ock {
		if ck%3 == 0 {
			t.Fatalf("order %d has custkey %d (multiple of 3)", i, ck)
		}
	}
}

func TestGenValueDomains(t *testing.T) {
	s := sharedStore(t)
	li := s.MustTable("lineitem")
	qty := li.MustColumn("l_quantity").MustReadAll(flash.Host)
	disc := li.MustColumn("l_discount").MustReadAll(flash.Host)
	tax := li.MustColumn("l_tax").MustReadAll(flash.Host)
	ship := li.MustColumn("l_shipdate").MustReadAll(flash.Host)
	rcpt := li.MustColumn("l_receiptdate").MustReadAll(flash.Host)
	lo, hi := col.MustParseDate("1992-01-02"), col.MustParseDate("1998-12-31")
	for i := range qty {
		if qty[i] < 100 || qty[i] > 5000 {
			t.Fatalf("quantity out of range: %d", qty[i])
		}
		if disc[i] < 0 || disc[i] > 10 {
			t.Fatalf("discount out of range: %d", disc[i])
		}
		if tax[i] < 0 || tax[i] > 8 {
			t.Fatalf("tax out of range: %d", tax[i])
		}
		if ship[i] < lo || ship[i] > hi || rcpt[i] <= ship[i] {
			t.Fatalf("dates out of range at %d", i)
		}
	}
	// Returnflag consistency with receiptdate.
	rf := li.MustColumn("l_returnflag")
	rfv := rf.MustReadAll(flash.Host)
	for i := range rfv {
		isN := rf.MustStr(rfv[i], flash.Host) == "N"
		if (rcpt[i] > CurrentDate) != isN {
			t.Fatalf("returnflag inconsistent at row %d", i)
		}
	}
}

func TestGenPhonePrefixMatchesNation(t *testing.T) {
	s := sharedStore(t)
	c := s.MustTable("customer")
	phones := c.MustColumn("c_phone")
	offs := phones.MustReadAll(flash.Host)
	nats := c.MustColumn("c_nationkey").MustReadAll(flash.Host)
	for i := 0; i < len(offs); i += 101 {
		ph := phones.MustStr(offs[i], flash.Host)
		w0 := byte('0' + (nats[i]+10)/10)
		w1 := byte('0' + (nats[i]+10)%10)
		if ph[0] != w0 || ph[1] != w1 {
			t.Fatalf("phone %q does not encode nation %d", ph, nats[i])
		}
	}
}

// runQuery binds and executes query q on the shared store.
func runQuery(t *testing.T, q int) *engine.Batch {
	t.Helper()
	s := sharedStore(t)
	def, err := Get(q)
	if err != nil {
		t.Fatal(err)
	}
	n := def.Build()
	if err := plan.Bind(n, s); err != nil {
		t.Fatalf("q%d bind: %v", q, err)
	}
	b, err := engine.New(s).Run(n)
	if err != nil {
		t.Fatalf("q%d run: %v", q, err)
	}
	return b
}

// All 22 queries must execute and produce plausible shapes.
func TestAllQueriesExecute(t *testing.T) {
	expectRows := map[int]func(n int) bool{
		1:  func(n int) bool { return n == 4 },           // 4 rf/ls combos
		4:  func(n int) bool { return n == 5 },           // 5 priorities
		6:  func(n int) bool { return n == 1 },           // scalar
		12: func(n int) bool { return n == 2 },           // MAIL, SHIP
		14: func(n int) bool { return n == 1 },           // scalar
		17: func(n int) bool { return n == 1 },           // scalar
		19: func(n int) bool { return n == 1 },           // scalar
		22: func(n int) bool { return n >= 1 && n <= 7 }, // country codes
	}
	for _, q := range Queries() {
		b := runQuery(t, q.Num)
		if b == nil {
			t.Fatalf("q%d returned nil", q.Num)
		}
		if chk, ok := expectRows[q.Num]; ok && !chk(b.NumRows()) {
			t.Errorf("q%d rows = %d, unexpected", q.Num, b.NumRows())
		}
		t.Logf("q%02d (%s): %d rows", q.Num, q.Name, b.NumRows())
	}
}

// Q1 aggregates must satisfy internal consistency: sum_disc_price <=
// sum_base_price, charge >= disc_price, counts positive.
func TestQ1Consistency(t *testing.T) {
	b := runQuery(t, 1)
	base, _ := b.Col("sum_base_price")
	dp, _ := b.Col("sum_disc_price")
	ch, _ := b.Col("sum_charge")
	cnt, _ := b.Col("count_order")
	for i := 0; i < b.NumRows(); i++ {
		if dp[i] > base[i] || ch[i] < dp[i] || cnt[i] <= 0 {
			t.Fatalf("row %d inconsistent: base=%d dp=%d ch=%d cnt=%d",
				i, base[i], dp[i], ch[i], cnt[i])
		}
	}
}

// Q6 equals a hand-rolled reference computation over the raw table.
func TestQ6Reference(t *testing.T) {
	s := sharedStore(t)
	li := s.MustTable("lineitem")
	ship := li.MustColumn("l_shipdate").MustReadAll(flash.Host)
	disc := li.MustColumn("l_discount").MustReadAll(flash.Host)
	qty := li.MustColumn("l_quantity").MustReadAll(flash.Host)
	price := li.MustColumn("l_extendedprice").MustReadAll(flash.Host)
	lo, hi := col.MustParseDate("1994-01-01"), col.MustParseDate("1995-01-01")
	var want int64
	for i := range ship {
		if ship[i] >= lo && ship[i] < hi && disc[i] >= 5 && disc[i] <= 7 && qty[i] < 2400 {
			want += price[i] * disc[i] / 100
		}
	}
	b := runQuery(t, 6)
	got, _ := b.Col("revenue")
	if got[0] != want {
		t.Fatalf("q6 revenue = %d, want %d", got[0], want)
	}
	if want == 0 {
		t.Fatal("q6 selected no rows; generator distributions broken")
	}
}

// Q13's distribution must cover all customers.
func TestQ13CoversAllCustomers(t *testing.T) {
	s := sharedStore(t)
	b := runQuery(t, 13)
	dist, _ := b.Col("custdist")
	var total int64
	for _, v := range dist {
		total += v
	}
	if total != int64(s.MustTable("customer").NumRows) {
		t.Fatalf("custdist total = %d, want %d", total, s.MustTable("customer").NumRows)
	}
}

// Q15's best supplier revenue matches the max over the revenue view.
func TestQ15MaxConsistency(t *testing.T) {
	b := runQuery(t, 15)
	if b.NumRows() < 1 {
		t.Fatal("q15 empty")
	}
	rev, _ := b.Col("total_revenue")
	for i := 1; i < b.NumRows(); i++ {
		if rev[i] != rev[0] {
			t.Fatal("q15 returned rows with differing revenue")
		}
	}
}

// Q22 country codes are within the filter set.
func TestQ22Codes(t *testing.T) {
	b := runQuery(t, 22)
	codes, _ := b.Col("cntrycode")
	allowed := map[int64]bool{}
	for _, c := range q22Codes {
		allowed[plan.PackString(c)] = true
	}
	for _, v := range codes {
		if !allowed[v] {
			t.Fatalf("unexpected cntrycode %q", plan.UnpackString(v, 2))
		}
	}
	if b.NumRows() == 0 {
		t.Fatal("q22 empty; generator phone distribution broken")
	}
}
