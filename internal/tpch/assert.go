package tpch

import (
	"fmt"
	"sort"
	"strings"

	"aquoman/internal/engine"
)

// TB is the subset of testing.TB the differential assertions need.
// Declaring it structurally keeps the testing package out of production
// binaries while letting any *testing.T/*testing.B satisfy it.
type TB interface {
	Helper()
	Fatalf(format string, args ...interface{})
}

// AssertEqual fails tb unless got matches the oracle batch cell-exactly:
// same column names, same row count, and identical stored values in the
// same order. It is the one comparison every differential harness —
// pipeline, encoded-store, distrib, and cluster — shares, so a
// disagreement anywhere reports through identical wording.
func AssertEqual(tb TB, label string, got *engine.Batch, want *OraBatch) {
	tb.Helper()
	if len(got.Schema) != len(want.Schema) {
		tb.Fatalf("%s: %d output columns, oracle has %d", label, len(got.Schema), len(want.Schema))
	}
	for i := range got.Schema {
		if got.Schema[i].Name != want.Schema[i].Name {
			tb.Fatalf("%s: column %d named %q, oracle %q", label, i, got.Schema[i].Name, want.Schema[i].Name)
		}
	}
	if got.NumRows() != want.NumRows() {
		tb.Fatalf("%s: %d rows, oracle has %d", label, got.NumRows(), want.NumRows())
	}
	for c := range got.Cols {
		for r := range got.Cols[c] {
			if got.Cols[c][r] != want.Cols[c][r] {
				tb.Fatalf("%s: row %d col %q = %d, oracle %d",
					label, r, got.Schema[c].Name, got.Cols[c][r], want.Cols[c][r])
			}
		}
	}
}

// AssertBatchesEqual fails tb unless two engine batches agree cell-exactly
// in row order (shape first, then values).
func AssertBatchesEqual(tb TB, label string, got, want *engine.Batch) {
	tb.Helper()
	if got.NumRows() != want.NumRows() || len(got.Cols) != len(want.Cols) {
		tb.Fatalf("%s: shape %dx%d, want %dx%d",
			label, got.NumRows(), len(got.Cols), want.NumRows(), len(want.Cols))
	}
	for c := range want.Cols {
		for r := range want.Cols[c] {
			if got.Cols[c][r] != want.Cols[c][r] {
				tb.Fatalf("%s: row %d col %d = %d, want %d",
					label, r, c, got.Cols[c][r], want.Cols[c][r])
			}
		}
	}
}

// AssertBatchesEquivalent fails tb unless two engine batches hold the same
// multiset of rows, ignoring row order (for results without a total
// ORDER BY, where per-shard interleaving may legally differ).
func AssertBatchesEquivalent(tb TB, label string, got, want *engine.Batch) {
	tb.Helper()
	gc, wc := CanonicalRows(got), CanonicalRows(want)
	if len(gc) != len(wc) {
		tb.Fatalf("%s: %d rows, want %d", label, len(gc), len(wc))
	}
	for i := range wc {
		if gc[i] != wc[i] {
			tb.Fatalf("%s: canonical row %d differs:\n got  %s\n want %s", label, i, gc[i], wc[i])
		}
	}
}

// CanonicalRows renders every row as a stable "v|v|...|" string and sorts
// them, the canonical form behind AssertBatchesEquivalent.
func CanonicalRows(b *engine.Batch) []string {
	rows := make([]string, b.NumRows())
	for r := range rows {
		var sb strings.Builder
		for c := range b.Cols {
			fmt.Fprintf(&sb, "%d|", b.Cols[c][r])
		}
		rows[r] = sb.String()
	}
	sort.Strings(rows)
	return rows
}
