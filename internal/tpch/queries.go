package tpch

import (
	"fmt"

	"aquoman/internal/col"
	p "aquoman/internal/plan"
)

// Query is one TPC-H benchmark query: a number, a short description, and
// a builder producing a fresh (unbound) plan tree with the specification's
// validation parameters.
type Query struct {
	Num   int
	Name  string
	Build func() p.Node
}

// Queries returns all 22 queries in order.
func Queries() []Query {
	return []Query{
		{1, "pricing summary report", Q1},
		{2, "minimum cost supplier", Q2},
		{3, "shipping priority", Q3},
		{4, "order priority checking", Q4},
		{5, "local supplier volume", Q5},
		{6, "forecasting revenue change", Q6},
		{7, "volume shipping", Q7},
		{8, "national market share", Q8},
		{9, "product type profit measure", Q9},
		{10, "returned item reporting", Q10},
		{11, "important stock identification", Q11},
		{12, "shipping modes and order priority", Q12},
		{13, "customer distribution", Q13},
		{14, "promotion effect", Q14},
		{15, "top supplier", Q15},
		{16, "parts/supplier relationship", Q16},
		{17, "small-quantity-order revenue", Q17},
		{18, "large volume customer", Q18},
		{19, "discounted revenue", Q19},
		{20, "potential part promotion", Q20},
		{21, "suppliers who kept orders waiting", Q21},
		{22, "global sales opportunity", Q22},
	}
}

// Get returns query q (1-based).
func Get(q int) (Query, error) {
	all := Queries()
	if q < 1 || q > len(all) {
		return Query{}, fmt.Errorf("tpch: no query %d", q)
	}
	return all[q-1], nil
}

func scan(table string, cols ...string) *p.Scan {
	return &p.Scan{Table: table, Cols: cols}
}

// discPrice is l_extendedprice * (1 - l_discount) at ×100 scale.
func discPrice() p.Expr {
	return p.DecMul(p.C("l_extendedprice"), p.Sub(p.I(100), p.C("l_discount")))
}

// rename projects columns under new names (for self-joins and output
// collision avoidance).
func rename(in p.Node, pairs ...string) *p.Project {
	var exprs []p.NamedExpr
	for i := 0; i+1 < len(pairs); i += 2 {
		exprs = append(exprs, p.NamedExpr{Name: pairs[i+1], E: p.C(pairs[i])})
	}
	return &p.Project{Input: in, Exprs: exprs}
}

// Q1 — Pricing Summary Report.
func Q1() p.Node {
	charge := p.DecMul(discPrice(), p.Add(p.I(100), p.C("l_tax")))
	return &p.OrderBy{
		Keys: []p.OrderKey{{Name: "l_returnflag"}, {Name: "l_linestatus"}},
		Input: &p.GroupBy{
			Input: &p.Filter{
				Input: scan("lineitem", "l_returnflag", "l_linestatus", "l_quantity",
					"l_extendedprice", "l_discount", "l_tax", "l_shipdate"),
				Pred: p.LE(p.C("l_shipdate"), p.Date("1998-09-02")),
			},
			Keys: []string{"l_returnflag", "l_linestatus"},
			Aggs: []p.AggSpec{
				{Func: p.AggSum, Name: "sum_qty", E: p.C("l_quantity"), Typ: col.Decimal},
				{Func: p.AggSum, Name: "sum_base_price", E: p.C("l_extendedprice"), Typ: col.Decimal},
				{Func: p.AggSum, Name: "sum_disc_price", E: discPrice(), Typ: col.Decimal},
				{Func: p.AggSum, Name: "sum_charge", E: charge, Typ: col.Decimal},
				{Func: p.AggAvg, Name: "avg_qty", E: p.C("l_quantity"), Typ: col.Decimal},
				{Func: p.AggAvg, Name: "avg_price", E: p.C("l_extendedprice"), Typ: col.Decimal},
				{Func: p.AggAvg, Name: "avg_disc", E: p.C("l_discount"), Typ: col.Decimal},
				{Func: p.AggCount, Name: "count_order"},
			},
		},
	}
}

// euroPartsupp joins partsupp through supplier/nation to a region filter —
// the shared subtree of Q2's outer query and its MIN subquery.
func euroPartsupp(region string) p.Node {
	nations := &p.Join{Kind: p.InnerJoin,
		L:     scan("nation", "n_nationkey", "n_name", "n_regionkey"),
		R:     &p.Filter{Input: scan("region", "r_regionkey", "r_name"), Pred: p.EQ(p.C("r_name"), p.S(region))},
		LKeys: []string{"n_regionkey"}, RKeys: []string{"r_regionkey"},
	}
	supp := &p.Join{Kind: p.InnerJoin,
		L: scan("supplier", "s_suppkey", "s_name", "s_address", "s_phone",
			"s_acctbal", "s_comment", "s_nationkey"),
		R:     nations,
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n_nationkey"},
	}
	return &p.Join{Kind: p.InnerJoin,
		L:     scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"),
		R:     supp,
		LKeys: []string{"ps_suppkey"}, RKeys: []string{"s_suppkey"},
	}
}

// Q2 — Minimum Cost Supplier (correlated MIN decorrelated to a group-by).
func Q2() p.Node {
	minCost := rename(&p.GroupBy{
		Input: euroPartsupp("EUROPE"),
		Keys:  []string{"ps_partkey"},
		Aggs: []p.AggSpec{{Func: p.AggMin, Name: "min_cost",
			E: p.C("ps_supplycost"), Typ: col.Decimal}},
	}, "ps_partkey", "mc_partkey", "min_cost", "mc_cost")
	part := &p.Filter{
		Input: scan("part", "p_partkey", "p_mfgr", "p_type", "p_size"),
		Pred: p.And(
			p.EQ(p.C("p_size"), p.I(15)),
			p.Like{Col: "p_type", Pattern: "%BRASS"},
		),
	}
	joined := &p.Join{Kind: p.InnerJoin,
		L:     euroPartsupp("EUROPE"),
		R:     part,
		LKeys: []string{"ps_partkey"}, RKeys: []string{"p_partkey"},
	}
	withMin := &p.Join{Kind: p.InnerJoin,
		L:     joined,
		R:     minCost,
		LKeys: []string{"ps_partkey", "ps_supplycost"},
		RKeys: []string{"mc_partkey", "mc_cost"},
	}
	out := &p.Project{Input: withMin, Exprs: []p.NamedExpr{
		{Name: "s_acctbal", E: p.C("s_acctbal")},
		{Name: "s_name", E: p.C("s_name")},
		{Name: "n_name", E: p.C("n_name")},
		{Name: "p_partkey", E: p.C("p_partkey")},
		{Name: "p_mfgr", E: p.C("p_mfgr")},
		{Name: "s_address", E: p.C("s_address")},
		{Name: "s_phone", E: p.C("s_phone")},
		{Name: "s_comment", E: p.C("s_comment")},
	}}
	return &p.Limit{N: 100, Input: &p.OrderBy{Input: out, Keys: []p.OrderKey{
		{Name: "s_acctbal", Desc: true}, {Name: "n_name"}, {Name: "s_name"}, {Name: "p_partkey"},
	}}}
}

// Q3 — Shipping Priority.
func Q3() p.Node {
	cust := &p.Filter{
		Input: scan("customer", "c_custkey", "c_mktsegment"),
		Pred:  p.EQ(p.C("c_mktsegment"), p.S("BUILDING")),
	}
	ord := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"),
		Pred:  p.LT(p.C("o_orderdate"), p.Date("1995-03-15")),
	}
	co := &p.Join{Kind: p.InnerJoin, L: ord, R: cust,
		LKeys: []string{"o_custkey"}, RKeys: []string{"c_custkey"}}
	li := &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"),
		Pred:  p.GT(p.C("l_shipdate"), p.Date("1995-03-15")),
	}
	j := &p.Join{Kind: p.InnerJoin, L: li, R: co,
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	g := &p.GroupBy{Input: j,
		Keys: []string{"l_orderkey", "o_orderdate", "o_shippriority"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "revenue", E: discPrice(), Typ: col.Decimal}},
	}
	return &p.Limit{N: 10, Input: &p.OrderBy{Input: g, Keys: []p.OrderKey{
		{Name: "revenue", Desc: true}, {Name: "o_orderdate"},
	}}}
}

// Q4 — Order Priority Checking.
func Q4() p.Node {
	late := &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_commitdate", "l_receiptdate"),
		Pred:  p.LT(p.C("l_commitdate"), p.C("l_receiptdate")),
	}
	ord := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_orderdate", "o_orderpriority"),
		Pred: p.And(
			p.GE(p.C("o_orderdate"), p.Date("1993-07-01")),
			p.LT(p.C("o_orderdate"), p.Date("1993-10-01")),
		),
	}
	semi := &p.Join{Kind: p.SemiJoin, L: ord, R: late,
		LKeys: []string{"o_orderkey"}, RKeys: []string{"l_orderkey"}}
	return &p.OrderBy{
		Keys: []p.OrderKey{{Name: "o_orderpriority"}},
		Input: &p.GroupBy{Input: semi, Keys: []string{"o_orderpriority"},
			Aggs: []p.AggSpec{{Func: p.AggCount, Name: "order_count"}}},
	}
}

// Q5 — Local Supplier Volume.
func Q5() p.Node {
	nations := &p.Join{Kind: p.InnerJoin,
		L: scan("nation", "n_nationkey", "n_name", "n_regionkey"),
		R: &p.Filter{Input: scan("region", "r_regionkey", "r_name"),
			Pred: p.EQ(p.C("r_name"), p.S("ASIA"))},
		LKeys: []string{"n_regionkey"}, RKeys: []string{"r_regionkey"},
	}
	supp := &p.Join{Kind: p.InnerJoin,
		L:     scan("supplier", "s_suppkey", "s_nationkey"),
		R:     nations,
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n_nationkey"},
	}
	ord := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		Pred: p.And(
			p.GE(p.C("o_orderdate"), p.Date("1994-01-01")),
			p.LT(p.C("o_orderdate"), p.Date("1995-01-01")),
		),
	}
	oc := &p.Join{Kind: p.InnerJoin, L: ord,
		R:     scan("customer", "c_custkey", "c_nationkey"),
		LKeys: []string{"o_custkey"}, RKeys: []string{"c_custkey"}}
	li := &p.Join{Kind: p.InnerJoin,
		L:     scan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
		R:     oc,
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	// Local suppliers only: the customer and supplier share a nation.
	j := &p.Join{Kind: p.InnerJoin, L: li, R: supp,
		LKeys: []string{"l_suppkey"}, RKeys: []string{"s_suppkey"},
		Extra: p.EQ(p.C("c_nationkey"), p.C("s_nationkey"))}
	g := &p.GroupBy{Input: j, Keys: []string{"n_name"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "revenue", E: discPrice(), Typ: col.Decimal}}}
	return &p.OrderBy{Input: g, Keys: []p.OrderKey{{Name: "revenue", Desc: true}}}
}

// Q6 — Forecasting Revenue Change.
func Q6() p.Node {
	return &p.GroupBy{
		Input: &p.Filter{
			Input: scan("lineitem", "l_extendedprice", "l_discount", "l_shipdate", "l_quantity"),
			Pred: p.And(
				p.GE(p.C("l_shipdate"), p.Date("1994-01-01")),
				p.LT(p.C("l_shipdate"), p.Date("1995-01-01")),
				p.Between(p.C("l_discount"), p.Dec("0.05"), p.Dec("0.07")),
				p.LT(p.C("l_quantity"), p.Dec("24")),
			),
		},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "revenue",
			E: p.DecMul(p.C("l_extendedprice"), p.C("l_discount")), Typ: col.Decimal}},
	}
}

// Q7 — Volume Shipping (nation self-join via renames).
func Q7() p.Node {
	suppNation := rename(scan("nation", "n_nationkey", "n_name"),
		"n_nationkey", "n1_key", "n_name", "supp_nation")
	custNation := rename(scan("nation", "n_nationkey", "n_name"),
		"n_nationkey", "n2_key", "n_name", "cust_nation")
	supp := &p.Join{Kind: p.InnerJoin,
		L:     scan("supplier", "s_suppkey", "s_nationkey"),
		R:     suppNation,
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n1_key"}}
	cust := &p.Join{Kind: p.InnerJoin,
		L:     scan("customer", "c_custkey", "c_nationkey"),
		R:     custNation,
		LKeys: []string{"c_nationkey"}, RKeys: []string{"n2_key"}}
	ord := &p.Join{Kind: p.InnerJoin,
		L:     scan("orders", "o_orderkey", "o_custkey"),
		R:     cust,
		LKeys: []string{"o_custkey"}, RKeys: []string{"c_custkey"}}
	li := &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_suppkey", "l_extendedprice",
			"l_discount", "l_shipdate"),
		Pred: p.Between(p.C("l_shipdate"), p.Date("1995-01-01"), p.Date("1996-12-31")),
	}
	lo := &p.Join{Kind: p.InnerJoin, L: li, R: ord,
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	j := &p.Join{Kind: p.InnerJoin, L: lo, R: supp,
		LKeys: []string{"l_suppkey"}, RKeys: []string{"s_suppkey"},
		Extra: p.Or(
			p.And(p.EQ(p.C("supp_nation"), p.S("FRANCE")), p.EQ(p.C("cust_nation"), p.S("GERMANY"))),
			p.And(p.EQ(p.C("supp_nation"), p.S("GERMANY")), p.EQ(p.C("cust_nation"), p.S("FRANCE"))),
		)}
	proj := &p.Project{Input: j, Exprs: []p.NamedExpr{
		{Name: "supp_nation", E: p.C("supp_nation")},
		{Name: "cust_nation", E: p.C("cust_nation")},
		{Name: "l_year", E: p.YearOf{E: p.C("l_shipdate")}},
		{Name: "volume", E: discPrice(), Typ: col.Decimal},
	}}
	g := &p.GroupBy{Input: proj,
		Keys: []string{"supp_nation", "cust_nation", "l_year"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "revenue", E: p.C("volume"), Typ: col.Decimal}}}
	return &p.OrderBy{Input: g, Keys: []p.OrderKey{
		{Name: "supp_nation"}, {Name: "cust_nation"}, {Name: "l_year"}}}
}

// Q8 — National Market Share.
func Q8() p.Node {
	custNation := &p.Join{Kind: p.InnerJoin,
		L: rename(scan("nation", "n_nationkey", "n_regionkey"),
			"n_nationkey", "n1_key", "n_regionkey", "n1_region"),
		R: &p.Filter{Input: scan("region", "r_regionkey", "r_name"),
			Pred: p.EQ(p.C("r_name"), p.S("AMERICA"))},
		LKeys: []string{"n1_region"}, RKeys: []string{"r_regionkey"},
	}
	cust := &p.Join{Kind: p.InnerJoin,
		L:     scan("customer", "c_custkey", "c_nationkey"),
		R:     custNation,
		LKeys: []string{"c_nationkey"}, RKeys: []string{"n1_key"}}
	ord := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		Pred:  p.Between(p.C("o_orderdate"), p.Date("1995-01-01"), p.Date("1996-12-31")),
	}
	oc := &p.Join{Kind: p.InnerJoin, L: ord, R: cust,
		LKeys: []string{"o_custkey"}, RKeys: []string{"c_custkey"}}
	part := &p.Filter{
		Input: scan("part", "p_partkey", "p_type"),
		Pred:  p.EQ(p.C("p_type"), p.S("ECONOMY ANODIZED STEEL")),
	}
	li := &p.Join{Kind: p.InnerJoin,
		L:     scan("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"),
		R:     part,
		LKeys: []string{"l_partkey"}, RKeys: []string{"p_partkey"}}
	lo := &p.Join{Kind: p.InnerJoin, L: li, R: oc,
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	suppNation := rename(scan("nation", "n_nationkey", "n_name"),
		"n_nationkey", "n2_key", "n_name", "supp_nation")
	supp := &p.Join{Kind: p.InnerJoin,
		L:     scan("supplier", "s_suppkey", "s_nationkey"),
		R:     suppNation,
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n2_key"}}
	j := &p.Join{Kind: p.InnerJoin, L: lo, R: supp,
		LKeys: []string{"l_suppkey"}, RKeys: []string{"s_suppkey"}}
	proj := &p.Project{Input: j, Exprs: []p.NamedExpr{
		{Name: "o_year", E: p.YearOf{E: p.C("o_orderdate")}},
		{Name: "volume", E: discPrice(), Typ: col.Decimal},
		{Name: "brazil_volume", Typ: col.Decimal,
			E: p.Case{Cond: p.EQ(p.C("supp_nation"), p.S("BRAZIL")),
				Then: discPrice(), Else: p.I(0)}},
	}}
	g := &p.GroupBy{Input: proj, Keys: []string{"o_year"},
		Aggs: []p.AggSpec{
			{Func: p.AggSum, Name: "sum_brazil", E: p.C("brazil_volume"), Typ: col.Decimal},
			{Func: p.AggSum, Name: "sum_volume", E: p.C("volume"), Typ: col.Decimal},
		}}
	share := &p.Project{Input: g, Exprs: []p.NamedExpr{
		{Name: "o_year", E: p.C("o_year")},
		{Name: "mkt_share", Typ: col.Decimal,
			E: p.DivE(p.Mul(p.C("sum_brazil"), p.I(100)), p.C("sum_volume"))},
	}}
	return &p.OrderBy{Input: share, Keys: []p.OrderKey{{Name: "o_year"}}}
}

// Q9 — Product Type Profit Measure.
func Q9() p.Node {
	part := &p.Filter{
		Input: scan("part", "p_partkey", "p_name"),
		Pred:  p.Like{Col: "p_name", Pattern: "%green%"},
	}
	li := &p.Join{Kind: p.InnerJoin,
		L: scan("lineitem", "l_orderkey", "l_partkey", "l_suppkey",
			"l_quantity", "l_extendedprice", "l_discount"),
		R:     part,
		LKeys: []string{"l_partkey"}, RKeys: []string{"p_partkey"}}
	ps := rename(scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost"),
		"ps_partkey", "psj_partkey", "ps_suppkey", "psj_suppkey", "ps_supplycost", "ps_supplycost")
	lps := &p.Join{Kind: p.InnerJoin, L: li, R: ps,
		LKeys: []string{"l_partkey", "l_suppkey"},
		RKeys: []string{"psj_partkey", "psj_suppkey"}}
	supp := &p.Join{Kind: p.InnerJoin,
		L:     scan("supplier", "s_suppkey", "s_nationkey"),
		R:     scan("nation", "n_nationkey", "n_name"),
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n_nationkey"}}
	lsup := &p.Join{Kind: p.InnerJoin, L: lps, R: supp,
		LKeys: []string{"l_suppkey"}, RKeys: []string{"s_suppkey"}}
	lord := &p.Join{Kind: p.InnerJoin, L: lsup,
		R:     scan("orders", "o_orderkey", "o_orderdate"),
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	proj := &p.Project{Input: lord, Exprs: []p.NamedExpr{
		{Name: "nation", E: p.C("n_name")},
		{Name: "o_year", E: p.YearOf{E: p.C("o_orderdate")}},
		{Name: "amount", Typ: col.Decimal,
			E: p.Sub(discPrice(), p.DecMul(p.C("ps_supplycost"), p.C("l_quantity")))},
	}}
	g := &p.GroupBy{Input: proj, Keys: []string{"nation", "o_year"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "sum_profit", E: p.C("amount"), Typ: col.Decimal}}}
	return &p.OrderBy{Input: g, Keys: []p.OrderKey{
		{Name: "nation"}, {Name: "o_year", Desc: true}}}
}

// Q10 — Returned Item Reporting.
func Q10() p.Node {
	ord := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_custkey", "o_orderdate"),
		Pred: p.And(
			p.GE(p.C("o_orderdate"), p.Date("1993-10-01")),
			p.LT(p.C("o_orderdate"), p.Date("1994-01-01")),
		),
	}
	li := &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"),
		Pred:  p.EQ(p.C("l_returnflag"), p.S("R")),
	}
	lo := &p.Join{Kind: p.InnerJoin, L: li, R: ord,
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	cust := &p.Join{Kind: p.InnerJoin,
		L: scan("customer", "c_custkey", "c_name", "c_acctbal", "c_address",
			"c_phone", "c_comment", "c_nationkey"),
		R:     scan("nation", "n_nationkey", "n_name"),
		LKeys: []string{"c_nationkey"}, RKeys: []string{"n_nationkey"}}
	j := &p.Join{Kind: p.InnerJoin, L: lo, R: cust,
		LKeys: []string{"o_custkey"}, RKeys: []string{"c_custkey"}}
	g := &p.GroupBy{Input: j,
		Keys: []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
			"c_address", "c_comment"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "revenue", E: discPrice(), Typ: col.Decimal}}}
	return &p.Limit{N: 20, Input: &p.OrderBy{Input: g,
		Keys: []p.OrderKey{{Name: "revenue", Desc: true}}}}
}

// germanPartsupp is Q11's shared join.
func germanPartsupp() p.Node {
	supp := &p.Join{Kind: p.InnerJoin,
		L: scan("supplier", "s_suppkey", "s_nationkey"),
		R: &p.Filter{Input: scan("nation", "n_nationkey", "n_name"),
			Pred: p.EQ(p.C("n_name"), p.S("GERMANY"))},
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n_nationkey"}}
	return &p.Join{Kind: p.InnerJoin,
		L:     scan("partsupp", "ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"),
		R:     supp,
		LKeys: []string{"ps_suppkey"}, RKeys: []string{"s_suppkey"}}
}

// Q11 — Important Stock Identification.
func Q11() p.Node {
	value := p.DecMul(p.C("ps_supplycost"), p.Mul(p.C("ps_availqty"), p.I(100)))
	byPart := &p.GroupBy{Input: germanPartsupp(), Keys: []string{"ps_partkey"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "value", E: value, Typ: col.Decimal}}}
	total := &p.GroupBy{Input: germanPartsupp(),
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "total", E: value, Typ: col.Decimal}}}
	having := &p.Filter{
		Input: &p.ScalarJoin{Input: byPart, Sub: total, Name: "total"},
		// value > total * 0.0001  <=>  value * 10000 > total
		Pred: p.GT(p.Mul(p.C("value"), p.I(10_000)), p.C("total")),
	}
	out := rename(having, "ps_partkey", "ps_partkey", "value", "value")
	return &p.OrderBy{Input: out, Keys: []p.OrderKey{{Name: "value", Desc: true}}}
}

// Q12 — Shipping Modes and Order Priority.
func Q12() p.Node {
	li := &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_shipmode", "l_commitdate",
			"l_receiptdate", "l_shipdate"),
		Pred: p.And(
			p.InStrs{Col: "l_shipmode", Vs: []string{"MAIL", "SHIP"}},
			p.LT(p.C("l_commitdate"), p.C("l_receiptdate")),
			p.LT(p.C("l_shipdate"), p.C("l_commitdate")),
			p.GE(p.C("l_receiptdate"), p.Date("1994-01-01")),
			p.LT(p.C("l_receiptdate"), p.Date("1995-01-01")),
		),
	}
	j := &p.Join{Kind: p.InnerJoin, L: li,
		R:     scan("orders", "o_orderkey", "o_orderpriority"),
		LKeys: []string{"l_orderkey"}, RKeys: []string{"o_orderkey"}}
	high := p.InStrs{Col: "o_orderpriority", Vs: []string{"1-URGENT", "2-HIGH"}}
	g := &p.GroupBy{Input: j, Keys: []string{"l_shipmode"},
		Aggs: []p.AggSpec{
			{Func: p.AggSum, Name: "high_line_count",
				E: p.Case{Cond: high, Then: p.I(1), Else: p.I(0)}},
			{Func: p.AggSum, Name: "low_line_count",
				E: p.Case{Cond: high, Then: p.I(0), Else: p.I(1)}},
		}}
	return &p.OrderBy{Input: g, Keys: []p.OrderKey{{Name: "l_shipmode"}}}
}

// Q13 — Customer Distribution.
func Q13() p.Node {
	ord := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_custkey", "o_comment"),
		Pred:  p.Like{Col: "o_comment", Pattern: "%special%requests%", Negate: true},
	}
	j := &p.Join{Kind: p.LeftMarkJoin,
		L:     scan("customer", "c_custkey"),
		R:     ord,
		LKeys: []string{"c_custkey"}, RKeys: []string{"o_custkey"}}
	perCust := &p.GroupBy{Input: j, Keys: []string{"c_custkey"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "c_count", E: p.C(p.MatchedCol)}}}
	dist := &p.GroupBy{Input: perCust, Keys: []string{"c_count"},
		Aggs: []p.AggSpec{{Func: p.AggCount, Name: "custdist"}}}
	return &p.OrderBy{Input: dist, Keys: []p.OrderKey{
		{Name: "custdist", Desc: true}, {Name: "c_count", Desc: true}}}
}

// Q14 — Promotion Effect.
func Q14() p.Node {
	li := &p.Filter{
		Input: scan("lineitem", "l_partkey", "l_extendedprice", "l_discount", "l_shipdate"),
		Pred: p.And(
			p.GE(p.C("l_shipdate"), p.Date("1995-09-01")),
			p.LT(p.C("l_shipdate"), p.Date("1995-10-01")),
		),
	}
	j := &p.Join{Kind: p.InnerJoin, L: li,
		R:     scan("part", "p_partkey", "p_type"),
		LKeys: []string{"l_partkey"}, RKeys: []string{"p_partkey"}}
	g := &p.GroupBy{Input: j, Aggs: []p.AggSpec{
		{Func: p.AggSum, Name: "promo", Typ: col.Decimal,
			E: p.Case{Cond: p.Like{Col: "p_type", Pattern: "PROMO%"},
				Then: discPrice(), Else: p.I(0)}},
		{Func: p.AggSum, Name: "total", E: discPrice(), Typ: col.Decimal},
	}}
	return &p.Project{Input: g, Exprs: []p.NamedExpr{
		{Name: "promo_revenue", Typ: col.Decimal,
			E: p.DivE(p.Mul(p.C("promo"), p.I(10_000)), p.C("total"))},
	}}
}

// revenueView is Q15's revenue0 view.
func revenueView() p.Node {
	li := &p.Filter{
		Input: scan("lineitem", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
		Pred: p.And(
			p.GE(p.C("l_shipdate"), p.Date("1996-01-01")),
			p.LT(p.C("l_shipdate"), p.Date("1996-04-01")),
		),
	}
	return &p.GroupBy{Input: li, Keys: []string{"l_suppkey"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "total_revenue", E: discPrice(), Typ: col.Decimal}}}
}

// Q15 — Top Supplier.
func Q15() p.Node {
	maxRev := &p.GroupBy{Input: revenueView(),
		Aggs: []p.AggSpec{{Func: p.AggMax, Name: "max_revenue",
			E: p.C("total_revenue"), Typ: col.Decimal}}}
	best := &p.Filter{
		Input: &p.ScalarJoin{Input: revenueView(), Sub: maxRev, Name: "max_revenue"},
		Pred:  p.EQ(p.C("total_revenue"), p.C("max_revenue")),
	}
	j := &p.Join{Kind: p.InnerJoin,
		L:     scan("supplier", "s_suppkey", "s_name", "s_address", "s_phone"),
		R:     best,
		LKeys: []string{"s_suppkey"}, RKeys: []string{"l_suppkey"}}
	out := rename(j, "s_suppkey", "s_suppkey", "s_name", "s_name",
		"s_address", "s_address", "s_phone", "s_phone", "total_revenue", "total_revenue")
	return &p.OrderBy{Input: out, Keys: []p.OrderKey{{Name: "s_suppkey"}}}
}

// Q16 — Parts/Supplier Relationship.
func Q16() p.Node {
	part := &p.Filter{
		Input: scan("part", "p_partkey", "p_brand", "p_type", "p_size"),
		Pred: p.And(
			p.NE(p.C("p_brand"), p.S("Brand#45")),
			p.Like{Col: "p_type", Pattern: "MEDIUM POLISHED%", Negate: true},
			p.InInts{E: p.C("p_size"), Vs: []int64{49, 14, 23, 45, 19, 3, 36, 9}},
		),
	}
	complaining := &p.Filter{
		Input: scan("supplier", "s_suppkey", "s_comment"),
		Pred:  p.Like{Col: "s_comment", Pattern: "%Customer%Complaints%"},
	}
	ps := &p.Join{Kind: p.AntiJoin,
		L:     scan("partsupp", "ps_partkey", "ps_suppkey"),
		R:     complaining,
		LKeys: []string{"ps_suppkey"}, RKeys: []string{"s_suppkey"}}
	j := &p.Join{Kind: p.InnerJoin, L: ps, R: part,
		LKeys: []string{"ps_partkey"}, RKeys: []string{"p_partkey"}}
	g := &p.GroupBy{Input: j, Keys: []string{"p_brand", "p_type", "p_size"},
		Aggs: []p.AggSpec{{Func: p.AggCountDistinct, Name: "supplier_cnt", E: p.C("ps_suppkey")}}}
	return &p.OrderBy{Input: g, Keys: []p.OrderKey{
		{Name: "supplier_cnt", Desc: true}, {Name: "p_brand"}, {Name: "p_type"}, {Name: "p_size"}}}
}

// Q17 — Small-Quantity-Order Revenue.
func Q17() p.Node {
	avgQty := rename(&p.GroupBy{
		Input: scan("lineitem", "l_partkey", "l_quantity"),
		Keys:  []string{"l_partkey"},
		Aggs:  []p.AggSpec{{Func: p.AggAvg, Name: "aq", E: p.C("l_quantity"), Typ: col.Decimal}},
	}, "l_partkey", "aq_partkey", "aq", "avg_qty")
	part := &p.Filter{
		Input: scan("part", "p_partkey", "p_brand", "p_container"),
		Pred: p.And(
			p.EQ(p.C("p_brand"), p.S("Brand#23")),
			p.EQ(p.C("p_container"), p.S("MED BOX")),
		),
	}
	li := &p.Join{Kind: p.InnerJoin,
		L:     scan("lineitem", "l_partkey", "l_quantity", "l_extendedprice"),
		R:     part,
		LKeys: []string{"l_partkey"}, RKeys: []string{"p_partkey"}}
	j := &p.Join{Kind: p.InnerJoin, L: li, R: avgQty,
		LKeys: []string{"l_partkey"}, RKeys: []string{"aq_partkey"},
		Extra: p.LT(p.Mul(p.C("l_quantity"), p.I(10)), p.Mul(p.C("avg_qty"), p.I(2)))}
	g := &p.GroupBy{Input: j, Aggs: []p.AggSpec{
		{Func: p.AggSum, Name: "sum_price", E: p.C("l_extendedprice"), Typ: col.Decimal}}}
	return &p.Project{Input: g, Exprs: []p.NamedExpr{
		{Name: "avg_yearly", Typ: col.Decimal, E: p.DivE(p.C("sum_price"), p.I(7))}}}
}

// Q18 — Large Volume Customer.
func Q18() p.Node {
	big := &p.Filter{
		Input: &p.GroupBy{
			Input: scan("lineitem", "l_orderkey", "l_quantity"),
			Keys:  []string{"l_orderkey"},
			Aggs:  []p.AggSpec{{Func: p.AggSum, Name: "sum_qty", E: p.C("l_quantity"), Typ: col.Decimal}},
		},
		Pred: p.GT(p.C("sum_qty"), p.Dec("300")),
	}
	bigKeys := rename(big, "l_orderkey", "big_orderkey")
	ord := &p.Join{Kind: p.SemiJoin,
		L:     scan("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"),
		R:     bigKeys,
		LKeys: []string{"o_orderkey"}, RKeys: []string{"big_orderkey"}}
	oc := &p.Join{Kind: p.InnerJoin, L: ord,
		R:     scan("customer", "c_custkey", "c_name"),
		LKeys: []string{"o_custkey"}, RKeys: []string{"c_custkey"}}
	li := rename(scan("lineitem", "l_orderkey", "l_quantity"),
		"l_orderkey", "li_orderkey", "l_quantity", "li_quantity")
	j := &p.Join{Kind: p.InnerJoin, L: oc, R: li,
		LKeys: []string{"o_orderkey"}, RKeys: []string{"li_orderkey"}}
	g := &p.GroupBy{Input: j,
		Keys: []string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "sum_qty", E: p.C("li_quantity"), Typ: col.Decimal}}}
	return &p.Limit{N: 100, Input: &p.OrderBy{Input: g, Keys: []p.OrderKey{
		{Name: "o_totalprice", Desc: true}, {Name: "o_orderdate"}}}}
}

// Q19 — Discounted Revenue (disjunctive multi-column predicate).
func Q19() p.Node {
	li := &p.Filter{
		Input: scan("lineitem", "l_partkey", "l_quantity", "l_extendedprice",
			"l_discount", "l_shipinstruct", "l_shipmode"),
		Pred: p.And(
			p.InStrs{Col: "l_shipmode", Vs: []string{"AIR", "REG AIR"}},
			p.EQ(p.C("l_shipinstruct"), p.S("DELIVER IN PERSON")),
		),
	}
	j := &p.Join{Kind: p.InnerJoin, L: li,
		R:     scan("part", "p_partkey", "p_brand", "p_container", "p_size"),
		LKeys: []string{"l_partkey"}, RKeys: []string{"p_partkey"}}
	branch := func(brand string, containers []string, qlo, qhi int64, smax int64) p.Expr {
		return p.And(
			p.EQ(p.C("p_brand"), p.S(brand)),
			p.InStrs{Col: "p_container", Vs: containers},
			p.Between(p.C("l_quantity"), p.I(qlo*100), p.I(qhi*100)),
			p.Between(p.C("p_size"), p.I(1), p.I(smax)),
		)
	}
	f := &p.Filter{Input: j, Pred: p.Or(
		branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
		branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
		branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15),
	)}
	return &p.GroupBy{Input: f, Aggs: []p.AggSpec{
		{Func: p.AggSum, Name: "revenue", E: discPrice(), Typ: col.Decimal}}}
}

// Q20 — Potential Part Promotion.
func Q20() p.Node {
	forest := &p.Filter{
		Input: scan("part", "p_partkey", "p_name"),
		Pred:  p.Like{Col: "p_name", Pattern: "forest%"},
	}
	shipped := &p.GroupBy{
		Input: &p.Filter{
			Input: scan("lineitem", "l_partkey", "l_suppkey", "l_quantity", "l_shipdate"),
			Pred: p.And(
				p.GE(p.C("l_shipdate"), p.Date("1994-01-01")),
				p.LT(p.C("l_shipdate"), p.Date("1995-01-01")),
			),
		},
		Keys: []string{"l_partkey", "l_suppkey"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "sum_qty", E: p.C("l_quantity"), Typ: col.Decimal}},
	}
	ps := &p.Join{Kind: p.SemiJoin,
		L:     scan("partsupp", "ps_partkey", "ps_suppkey", "ps_availqty"),
		R:     forest,
		LKeys: []string{"ps_partkey"}, RKeys: []string{"p_partkey"}}
	withQty := &p.Join{Kind: p.InnerJoin, L: ps, R: shipped,
		LKeys: []string{"ps_partkey", "ps_suppkey"},
		RKeys: []string{"l_partkey", "l_suppkey"},
		// ps_availqty > 0.5 * sum(qty): availqty*200 > sum_qty (×100).
		Extra: p.GT(p.Mul(p.C("ps_availqty"), p.I(200)), p.C("sum_qty"))}
	suppKeys := rename(withQty, "ps_suppkey", "q_suppkey")
	supp := &p.Join{Kind: p.InnerJoin,
		L: scan("supplier", "s_suppkey", "s_name", "s_address", "s_nationkey"),
		R: &p.Filter{Input: scan("nation", "n_nationkey", "n_name"),
			Pred: p.EQ(p.C("n_name"), p.S("CANADA"))},
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n_nationkey"}}
	j := &p.Join{Kind: p.SemiJoin, L: supp, R: suppKeys,
		LKeys: []string{"s_suppkey"}, RKeys: []string{"q_suppkey"}}
	out := rename(j, "s_name", "s_name", "s_address", "s_address")
	return &p.OrderBy{Input: out, Keys: []p.OrderKey{{Name: "s_name"}}}
}

// Q21 — Suppliers Who Kept Orders Waiting.
func Q21() p.Node {
	l1 := &p.Project{Input: &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
		Pred:  p.GT(p.C("l_receiptdate"), p.C("l_commitdate")),
	}, Exprs: []p.NamedExpr{
		{Name: "l1_orderkey", E: p.C("l_orderkey")},
		{Name: "l1_suppkey", E: p.C("l_suppkey")},
	}}
	l2 := rename(scan("lineitem", "l_orderkey", "l_suppkey"),
		"l_orderkey", "l2_orderkey", "l_suppkey", "l2_suppkey")
	l3 := &p.Project{Input: &p.Filter{
		Input: scan("lineitem", "l_orderkey", "l_suppkey", "l_commitdate", "l_receiptdate"),
		Pred:  p.GT(p.C("l_receiptdate"), p.C("l_commitdate")),
	}, Exprs: []p.NamedExpr{
		{Name: "l3_orderkey", E: p.C("l_orderkey")},
		{Name: "l3_suppkey", E: p.C("l_suppkey")},
	}}
	withOther := &p.Join{Kind: p.SemiJoin, L: l1, R: l2,
		LKeys: []string{"l1_orderkey"}, RKeys: []string{"l2_orderkey"},
		Extra: p.NE(p.C("l1_suppkey"), p.C("l2_suppkey"))}
	onlyLate := &p.Join{Kind: p.AntiJoin, L: withOther, R: l3,
		LKeys: []string{"l1_orderkey"}, RKeys: []string{"l3_orderkey"},
		Extra: p.NE(p.C("l1_suppkey"), p.C("l3_suppkey"))}
	ordF := &p.Filter{
		Input: scan("orders", "o_orderkey", "o_orderstatus"),
		Pred:  p.EQ(p.C("o_orderstatus"), p.S("F")),
	}
	lo := &p.Join{Kind: p.InnerJoin, L: onlyLate, R: ordF,
		LKeys: []string{"l1_orderkey"}, RKeys: []string{"o_orderkey"}}
	supp := &p.Join{Kind: p.InnerJoin,
		L: scan("supplier", "s_suppkey", "s_name", "s_nationkey"),
		R: &p.Filter{Input: scan("nation", "n_nationkey", "n_name"),
			Pred: p.EQ(p.C("n_name"), p.S("SAUDI ARABIA"))},
		LKeys: []string{"s_nationkey"}, RKeys: []string{"n_nationkey"}}
	j := &p.Join{Kind: p.InnerJoin, L: lo, R: supp,
		LKeys: []string{"l1_suppkey"}, RKeys: []string{"s_suppkey"}}
	g := &p.GroupBy{Input: j, Keys: []string{"s_name"},
		Aggs: []p.AggSpec{{Func: p.AggCount, Name: "numwait"}}}
	return &p.Limit{N: 100, Input: &p.OrderBy{Input: g, Keys: []p.OrderKey{
		{Name: "numwait", Desc: true}, {Name: "s_name"}}}}
}

// Q22 — Global Sales Opportunity.
var q22Codes = []string{"13", "31", "23", "29", "30", "18", "17"}

func Q22() p.Node {
	inCodes := func() p.Expr {
		var vs []int64
		for _, c := range q22Codes {
			vs = append(vs, p.PackString(c))
		}
		return p.InInts{E: p.SubstrCode{Col: "c_phone", Start: 1, Len: 2}, Vs: vs}
	}
	avgBal := &p.GroupBy{
		Input: &p.Filter{
			Input: scan("customer", "c_acctbal", "c_phone"),
			Pred:  p.And(p.GT(p.C("c_acctbal"), p.I(0)), inCodes()),
		},
		Aggs: []p.AggSpec{{Func: p.AggAvg, Name: "avg_bal", E: p.C("c_acctbal"), Typ: col.Decimal}},
	}
	cust := &p.Filter{
		Input: &p.ScalarJoin{
			Input: &p.Filter{
				Input: scan("customer", "c_custkey", "c_acctbal", "c_phone"),
				Pred:  inCodes(),
			},
			Sub: avgBal, Name: "avg_bal",
		},
		Pred: p.GT(p.C("c_acctbal"), p.C("avg_bal")),
	}
	noOrders := &p.Join{Kind: p.AntiJoin, L: cust,
		R:     scan("orders", "o_custkey"),
		LKeys: []string{"c_custkey"}, RKeys: []string{"o_custkey"}}
	proj := &p.Project{Input: noOrders, Exprs: []p.NamedExpr{
		{Name: "cntrycode", E: p.SubstrCode{Col: "c_phone", Start: 1, Len: 2}},
		{Name: "c_acctbal", E: p.C("c_acctbal")},
	}}
	g := &p.GroupBy{Input: proj, Keys: []string{"cntrycode"},
		Aggs: []p.AggSpec{
			{Func: p.AggCount, Name: "numcust"},
			{Func: p.AggSum, Name: "totacctbal", E: p.C("c_acctbal"), Typ: col.Decimal},
		}}
	return &p.OrderBy{Input: g, Keys: []p.OrderKey{{Name: "cntrycode"}}}
}
