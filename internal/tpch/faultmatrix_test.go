//go:build faultmatrix

package tpch

import (
	"fmt"
	"testing"
	"time"

	"aquoman/internal/faults"
	"aquoman/internal/flash"
)

// TestFaultMatrix sweeps a grid of seeded fault profiles × seeds, running
// all 22 TPC-H queries under each schedule and diffing every result
// against the fault-free oracle. Light profiles must be absorbed entirely
// by flash-level page-read retries (no read ever fails outright); heavy
// profiles may occasionally stack a fresh transient onto a clearing one
// and exhaust the page budget, in which case the next recovery layer (the
// host-resume path in core) must still deliver a byte-identical result.
//
// The sweep is behind the faultmatrix build tag because it executes
// 22 queries × |profiles| × |seeds| pipeline runs; CI runs it in a
// dedicated job rather than on every `go test ./...`.
func TestFaultMatrix(t *testing.T) {
	want := oracleResults(t)
	s := sharedStore(t)

	profiles := []struct {
		name string
		cfg  func(seed int64) faults.Config
		// strict asserts no page read exhausts its retry budget; heavier
		// profiles can stack transients past the budget, which the
		// host-resume layer absorbs instead.
		strict bool
	}{
		{"transient-light", func(seed int64) faults.Config {
			return faults.Config{Seed: seed, PTransient: 0.0005, TransientRepeat: 1}
		}, true},
		{"transient-heavy", func(seed int64) faults.Config {
			return faults.Config{Seed: seed, PTransient: 0.005, TransientRepeat: 3}
		}, false},
		{"transient-budget-edge", func(seed int64) faults.Config {
			// Fails every attempt but the last one the budget allows.
			return faults.Config{Seed: seed, PTransient: 0.002,
				TransientRepeat: flash.DefaultRetryPolicy().Budget}
		}, false},
		{"slow", func(seed int64) faults.Config {
			return faults.Config{Seed: seed, PSlow: 0.01, Stall: 100 * time.Microsecond}
		}, true},
		{"mixed", func(seed int64) faults.Config {
			return faults.Config{Seed: seed, PTransient: 0.002, TransientRepeat: 2,
				PSlow: 0.005, Stall: 50 * time.Microsecond}
		}, false},
	}
	seeds := []int64{1, 2, 17, 99}

	for _, p := range profiles {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", p.name, seed), func(t *testing.T) {
				inj := faults.New(p.cfg(seed))
				s.Dev.SetFaults(inj)
				defer s.Dev.SetFaults(nil)
				before := s.Dev.Stats()
				for _, q := range Queries() {
					b, _ := pipelineRun(t, q.Num)
					diffBatches(t, fmt.Sprintf("q%d", q.Num), b, want[q.Num])
				}
				delta := s.Dev.Stats().Sub(before)
				if n := delta.ReadsFailed[flash.Host] + delta.ReadsFailed[flash.Aquoman]; p.strict && n != 0 {
					t.Fatalf("%d reads failed outright under an absorbable schedule", n)
				}
				if inj.Counts().TotalInjected() == 0 {
					t.Fatal("schedule injected no faults; the cell tested nothing")
				}
			})
		}
	}
}
