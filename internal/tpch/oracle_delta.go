package tpch

// MVCC support for the differential oracle: Clone gives each concurrent
// query its own mutable snapshot, ApplyOverlay folds a delta overlay in
// the naive way (filter a slice, append a slice) so agreement with the
// engine's scan-time overlay application stays evidence, not shared code.

import (
	"fmt"

	"aquoman/internal/col"
	"aquoman/internal/delta"
	"aquoman/internal/flash"
)

// Clone returns an independently mutable copy of the snapshot. Column
// vectors are shared until ApplyOverlay replaces them wholesale (they
// are never mutated in place); dictionaries are immutable and shared;
// text maps are copied because overlays add tail offsets to them.
func (o *Oracle) Clone() *Oracle {
	c := &Oracle{
		tables: make(map[string]*oraTable, len(o.tables)),
		dicts:  o.dicts,
		texts:  make(map[*col.ColumnInfo]map[int64]string, len(o.texts)),
	}
	for ci, m := range o.texts {
		mm := make(map[int64]string, len(m))
		for k, v := range m {
			mm[k] = v
		}
		c.texts[ci] = mm
	}
	for name, t := range o.tables {
		ct := &oraTable{rows: t.rows, cols: make(map[string][]int64, len(t.cols))}
		for cn, vals := range t.cols {
			ct.cols[cn] = vals
		}
		c.tables[name] = ct
	}
	return c
}

// ApplyOverlay rewrites one table of the snapshot to an overlay's view:
// deleted base rows drop out, visible tail rows append. Tail Text
// offsets are resolved through the store's heap (they were appended at
// ingest and never move), extending the snapshot's decode map.
func (o *Oracle) ApplyOverlay(s *col.Store, ov *delta.Overlay) error {
	t, ok := o.tables[ov.Table]
	if !ok {
		return fmt.Errorf("oracle: overlay for unknown table %q", ov.Table)
	}
	if t.rows != ov.BaseRows {
		return fmt.Errorf("oracle: overlay for %s is against %d rows, snapshot has %d",
			ov.Table, ov.BaseRows, t.rows)
	}
	tab, err := s.Table(ov.Table)
	if err != nil {
		return err
	}
	// Materialized RowID companions have no tail values until the merge
	// re-derives them; the reference executor joins by value, so the
	// overlaid snapshot simply drops them.
	companion := make(map[string]bool)
	for _, def := range tab.Cols {
		if def.Typ == col.RowID {
			companion[def.Name] = true
		}
	}
	var keep []int
	if ov.NumDeleted() > 0 {
		keep = make([]int, 0, t.rows-ov.NumDeleted())
		for r := 0; r < t.rows; r++ {
			if !ov.BaseDeleted(r) {
				keep = append(keep, r)
			}
		}
	}
	for name, base := range t.cols {
		var tail []int64
		if len(ov.TailRowIDs) > 0 {
			if tail, ok = ov.TailCols[name]; !ok {
				if companion[name] {
					delete(t.cols, name)
					continue
				}
				return fmt.Errorf("oracle: overlay for %s has no column %q", ov.Table, name)
			}
		}
		out := make([]int64, 0, len(base)+len(tail))
		if keep != nil {
			for _, r := range keep {
				out = append(out, base[r])
			}
		} else {
			out = append(out, base...)
		}
		t.cols[name] = append(out, tail...)
	}
	if keep != nil {
		t.rows = len(keep) + len(ov.TailRowIDs)
	} else {
		t.rows += len(ov.TailRowIDs)
	}
	// Tail rows of Text columns may carry offsets the snapshot has not
	// seen; resolve them once through the real heap.
	for _, def := range tab.Cols {
		if def.Typ != col.Text || len(ov.TailRowIDs) == 0 {
			continue
		}
		ci, err := tab.Column(def.Name)
		if err != nil {
			return err
		}
		m := o.texts[ci]
		if m == nil {
			m = make(map[int64]string)
			o.texts[ci] = m
		}
		for _, off := range ov.TailCols[def.Name] {
			if _, ok := m[off]; ok {
				continue
			}
			str, err := ci.Str(off, flash.Host)
			if err != nil {
				return fmt.Errorf("oracle: overlay heap read %s.%s: %w", ov.Table, def.Name, err)
			}
			m[off] = str
		}
	}
	return nil
}
