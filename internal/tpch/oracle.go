// Oracle is a deliberately naive in-memory reference executor used by the
// differential test harness. It snapshots every table (including decoded
// string content) into plain Go maps before any fault injection starts,
// then evaluates bound plan trees with straightforward tree-walking
// semantics: real string comparisons instead of dictionary-code
// arithmetic, a recursive LIKE matcher instead of the regex accelerator,
// calendar math via the time package instead of the systolic year
// polynomial. Agreement with the pipeline is therefore evidence, not
// construction: the two executors share only the plan algebra.
package tpch

import (
	"fmt"
	"sort"
	"strconv"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
)

// Oracle holds a fault-immune snapshot of a store.
type Oracle struct {
	tables map[string]*oraTable
	// dicts/texts decode Dict codes and Text heap offsets per source
	// column without touching flash again.
	dicts map[*col.ColumnInfo][]string
	texts map[*col.ColumnInfo]map[int64]string
}

type oraTable struct {
	rows int
	cols map[string][]int64
}

// OraBatch is the oracle's result: a schema plus column vectors.
type OraBatch struct {
	Schema plan.Schema
	Cols   [][]int64
}

// NumRows returns the row count.
func (b *OraBatch) NumRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// NewOracle snapshots every table of the store into memory. Call it
// before attaching a fault injector: the snapshot reads flash normally.
func NewOracle(s *col.Store) (*Oracle, error) {
	o := &Oracle{
		tables: make(map[string]*oraTable),
		dicts:  make(map[*col.ColumnInfo][]string),
		texts:  make(map[*col.ColumnInfo]map[int64]string),
	}
	for _, name := range s.Tables() {
		tab, err := s.Table(name)
		if err != nil {
			return nil, err
		}
		ot := &oraTable{rows: tab.NumRows, cols: make(map[string][]int64)}
		for _, def := range tab.Cols {
			ci, err := tab.Column(def.Name)
			if err != nil {
				return nil, err
			}
			vals, err := ci.ReadAll(flash.Host)
			if err != nil {
				return nil, fmt.Errorf("oracle snapshot %s.%s: %w", name, def.Name, err)
			}
			ot.cols[def.Name] = vals
			switch def.Typ {
			case col.Dict:
				o.dicts[ci] = ci.Dict()
			case col.Text:
				m := make(map[int64]string)
				for _, v := range vals {
					if _, ok := m[v]; ok {
						continue
					}
					str, err := ci.Str(v, flash.Host)
					if err != nil {
						return nil, fmt.Errorf("oracle snapshot %s.%s heap: %w", name, def.Name, err)
					}
					m[v] = str
				}
				o.texts[ci] = m
			}
		}
		o.tables[name] = ot
	}
	return o, nil
}

// decode turns a stored value of a string column into its content using
// only the snapshot.
func (o *Oracle) decode(src *col.ColumnInfo, v int64) (string, error) {
	if d, ok := o.dicts[src]; ok {
		if v < 0 || int(v) >= len(d) {
			return "", fmt.Errorf("oracle: dict code %d out of range", v)
		}
		return d[v], nil
	}
	if m, ok := o.texts[src]; ok {
		s, ok := m[v]
		if !ok {
			return "", fmt.Errorf("oracle: heap offset %d not in snapshot", v)
		}
		return s, nil
	}
	return "", fmt.Errorf("oracle: column not snapshotted")
}

// Run evaluates a bound plan tree against the snapshot.
func (o *Oracle) Run(n plan.Node) (*OraBatch, error) { return o.exec(n) }

func (o *Oracle) exec(n plan.Node) (*OraBatch, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return o.execScan(t)
	case *plan.Filter:
		in, err := o.exec(t.Input)
		if err != nil {
			return nil, err
		}
		out := &OraBatch{Schema: in.Schema, Cols: make([][]int64, len(in.Cols))}
		for r := 0; r < in.NumRows(); r++ {
			v, err := o.eval(in, r, t.Pred)
			if err != nil {
				return nil, err
			}
			if v != 0 {
				for c := range in.Cols {
					out.Cols[c] = append(out.Cols[c], in.Cols[c][r])
				}
			}
		}
		return out, nil
	case *plan.Project:
		in, err := o.exec(t.Input)
		if err != nil {
			return nil, err
		}
		out := &OraBatch{Schema: t.Schema(), Cols: make([][]int64, len(t.Exprs))}
		for i, ne := range t.Exprs {
			vals := make([]int64, in.NumRows())
			for r := range vals {
				v, err := o.eval(in, r, ne.E)
				if err != nil {
					return nil, err
				}
				vals[r] = v
			}
			out.Cols[i] = vals
		}
		return out, nil
	case *plan.Join:
		return o.execJoin(t)
	case *plan.GroupBy:
		return o.execGroupBy(t)
	case *plan.OrderBy:
		return o.execOrderBy(t)
	case *plan.Limit:
		in, err := o.exec(t.Input)
		if err != nil {
			return nil, err
		}
		if in.NumRows() <= t.N {
			return in, nil
		}
		out := &OraBatch{Schema: in.Schema, Cols: make([][]int64, len(in.Cols))}
		for c := range in.Cols {
			out.Cols[c] = in.Cols[c][:t.N]
		}
		return out, nil
	case *plan.ScalarJoin:
		sub, err := o.exec(t.Sub)
		if err != nil {
			return nil, err
		}
		if sub.NumRows() != 1 || len(sub.Cols) != 1 {
			return nil, fmt.Errorf("oracle: scalar subquery yields %dx%d", sub.NumRows(), len(sub.Cols))
		}
		in, err := o.exec(t.Input)
		if err != nil {
			return nil, err
		}
		out := &OraBatch{Schema: t.Schema(), Cols: make([][]int64, len(in.Cols)+1)}
		copy(out.Cols, in.Cols)
		bc := make([]int64, in.NumRows())
		for i := range bc {
			bc[i] = sub.Cols[0][0]
		}
		out.Cols[len(in.Cols)] = bc
		return out, nil
	case *plan.Materialized:
		if t.Cols == nil {
			return nil, fmt.Errorf("oracle: materialized node %q has no data", t.Label)
		}
		return &OraBatch{Schema: t.S, Cols: t.Cols}, nil
	default:
		return nil, fmt.Errorf("oracle: unknown node %T", n)
	}
}

func (o *Oracle) execScan(t *plan.Scan) (*OraBatch, error) {
	ot, ok := o.tables[t.Table]
	if !ok {
		return nil, fmt.Errorf("oracle: table %q not snapshotted", t.Table)
	}
	out := &OraBatch{Schema: t.Schema(), Cols: make([][]int64, len(t.Cols))}
	for i, name := range t.Cols {
		if name == plan.RowIDCol {
			ids := make([]int64, ot.rows)
			for r := range ids {
				ids[r] = int64(r)
			}
			out.Cols[i] = ids
			continue
		}
		vals, ok := ot.cols[name]
		if !ok {
			return nil, fmt.Errorf("oracle: no column %s.%s", t.Table, name)
		}
		out.Cols[i] = vals
	}
	return out, nil
}

// tupleKey serializes a key tuple for hash maps.
func tupleKey(cols [][]int64, idx []int, row int) string {
	k := ""
	for _, c := range idx {
		k += strconv.FormatInt(cols[c][row], 10) + "|"
	}
	return k
}

func (o *Oracle) execJoin(t *plan.Join) (*OraBatch, error) {
	left, err := o.exec(t.L)
	if err != nil {
		return nil, err
	}
	right, err := o.exec(t.R)
	if err != nil {
		return nil, err
	}
	lIdx := make([]int, len(t.LKeys))
	for i, k := range t.LKeys {
		lIdx[i] = left.Schema.Index(k)
	}
	rIdx := make([]int, len(t.RKeys))
	for i, k := range t.RKeys {
		rIdx[i] = right.Schema.Index(k)
	}
	ht := make(map[string][]int)
	for r := 0; r < right.NumRows(); r++ {
		k := tupleKey(right.Cols, rIdx, r)
		ht[k] = append(ht[k], r)
	}
	combined := append(append(plan.Schema{}, left.Schema...), right.Schema...)
	wide := &OraBatch{Schema: combined, Cols: make([][]int64, len(combined))}
	match := func(lr, rr int) (bool, error) {
		if t.Extra == nil {
			return true, nil
		}
		// Evaluate the extra predicate on a one-row concatenated batch.
		for c := range left.Cols {
			wide.Cols[c] = left.Cols[c][lr : lr+1]
		}
		for c := range right.Cols {
			wide.Cols[len(left.Cols)+c] = right.Cols[c][rr : rr+1]
		}
		v, err := o.eval(wide, 0, t.Extra)
		return v != 0, err
	}
	out := &OraBatch{Schema: t.Schema(), Cols: make([][]int64, len(t.Schema()))}
	emit := func(lr, rr int, matched int64) {
		c := 0
		for ; c < len(left.Cols); c++ {
			out.Cols[c] = append(out.Cols[c], left.Cols[c][lr])
		}
		if t.Kind == plan.InnerJoin || t.Kind == plan.LeftMarkJoin {
			for rc := range right.Cols {
				var v int64
				if rr >= 0 {
					v = right.Cols[rc][rr]
				}
				out.Cols[c] = append(out.Cols[c], v)
				c++
			}
		}
		if t.Kind == plan.LeftMarkJoin {
			out.Cols[c] = append(out.Cols[c], matched)
		}
	}
	for lr := 0; lr < left.NumRows(); lr++ {
		cands := ht[tupleKey(left.Cols, lIdx, lr)]
		any := false
		for _, rr := range cands {
			ok, err := match(lr, rr)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			any = true
			switch t.Kind {
			case plan.InnerJoin, plan.LeftMarkJoin:
				emit(lr, rr, 1)
			case plan.SemiJoin:
				emit(lr, -1, 1)
			}
			if t.Kind == plan.SemiJoin || t.Kind == plan.AntiJoin {
				break
			}
		}
		if !any && (t.Kind == plan.AntiJoin || t.Kind == plan.LeftMarkJoin) {
			emit(lr, -1, 0)
		}
	}
	return out, nil
}

// oraGroup is one group's accumulators.
type oraGroup struct {
	keys   []int64
	sums   []int64
	mins   []int64
	maxs   []int64
	counts []int64
	seen   []map[int64]struct{}
}

func (o *Oracle) execGroupBy(t *plan.GroupBy) (*OraBatch, error) {
	in, err := o.exec(t.Input)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(t.Keys))
	for i, k := range t.Keys {
		keyIdx[i] = in.Schema.Index(k)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("oracle: group key %q missing", k)
		}
	}
	groups := make(map[string]*oraGroup)
	var order []string
	const maxInt64 = int64(^uint64(0) >> 1)
	for r := 0; r < in.NumRows(); r++ {
		key := tupleKey(in.Cols, keyIdx, r)
		g, ok := groups[key]
		if !ok {
			g = &oraGroup{
				keys:   make([]int64, len(keyIdx)),
				sums:   make([]int64, len(t.Aggs)),
				mins:   make([]int64, len(t.Aggs)),
				maxs:   make([]int64, len(t.Aggs)),
				counts: make([]int64, len(t.Aggs)),
				seen:   make([]map[int64]struct{}, len(t.Aggs)),
			}
			for i := range g.mins {
				g.mins[i], g.maxs[i] = maxInt64, -maxInt64-1
			}
			for i := range t.Aggs {
				g.seen[i] = make(map[int64]struct{})
			}
			for i, c := range keyIdx {
				g.keys[i] = in.Cols[c][r]
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, a := range t.Aggs {
			var v int64
			if a.E != nil {
				v, err = o.eval(in, r, a.E)
				if err != nil {
					return nil, err
				}
			}
			switch a.Func {
			case plan.AggSum, plan.AggAvg:
				g.sums[i] += v
				g.counts[i]++
			case plan.AggMin:
				if v < g.mins[i] {
					g.mins[i] = v
				}
			case plan.AggMax:
				if v > g.maxs[i] {
					g.maxs[i] = v
				}
			case plan.AggCount:
				g.counts[i]++
			case plan.AggCountDistinct:
				g.seen[i][v] = struct{}{}
			}
		}
	}
	out := &OraBatch{Schema: t.Schema(), Cols: make([][]int64, len(t.Schema()))}
	nk := len(t.Keys)
	if len(order) == 0 && nk == 0 {
		// Scalar aggregation over zero rows yields one row of zeros.
		for c := range out.Cols {
			out.Cols[c] = []int64{0}
		}
		return out, nil
	}
	for _, key := range order {
		g := groups[key]
		for i := 0; i < nk; i++ {
			out.Cols[i] = append(out.Cols[i], g.keys[i])
		}
		for i, a := range t.Aggs {
			var v int64
			switch a.Func {
			case plan.AggSum:
				v = g.sums[i]
			case plan.AggAvg:
				if g.counts[i] > 0 {
					v = g.sums[i] / g.counts[i]
				}
			case plan.AggMin:
				v = g.mins[i]
			case plan.AggMax:
				v = g.maxs[i]
			case plan.AggCount:
				v = g.counts[i]
			case plan.AggCountDistinct:
				v = int64(len(g.seen[i]))
			}
			out.Cols[nk+i] = append(out.Cols[nk+i], v)
		}
	}
	return out, nil
}

func (o *Oracle) execOrderBy(t *plan.OrderBy) (*OraBatch, error) {
	in, err := o.exec(t.Input)
	if err != nil {
		return nil, err
	}
	n := in.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	type keyInfo struct {
		col  []int64
		desc bool
		text *col.ColumnInfo
	}
	keys := make([]keyInfo, len(t.Keys))
	for i, k := range t.Keys {
		ci := in.Schema.Index(k.Name)
		if ci < 0 {
			return nil, fmt.Errorf("oracle: sort key %q missing", k.Name)
		}
		f := in.Schema[ci]
		keys[i] = keyInfo{col: in.Cols[ci], desc: k.Desc}
		if f.Typ == col.Text && f.Src != nil {
			keys[i].text = f.Src
		}
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for _, k := range keys {
			va, vb := k.col[ra], k.col[rb]
			if k.text != nil {
				sa, errA := o.decode(k.text, va)
				sb, errB := o.decode(k.text, vb)
				if sortErr == nil {
					if errA != nil {
						sortErr = errA
					} else if errB != nil {
						sortErr = errB
					}
				}
				if sa == sb {
					continue
				}
				if k.desc {
					return sa > sb
				}
				return sa < sb
			}
			if va == vb {
				continue
			}
			if k.desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := &OraBatch{Schema: in.Schema, Cols: make([][]int64, len(in.Cols))}
	for c := range in.Cols {
		dst := make([]int64, n)
		for i, r := range idx {
			dst[i] = in.Cols[c][r]
		}
		out.Cols[c] = dst
	}
	return out, nil
}

// eval computes an expression for row r of batch b.
func (o *Oracle) eval(b *OraBatch, r int, e plan.Expr) (int64, error) {
	switch n := e.(type) {
	case plan.Col:
		i := b.Schema.Index(n.Name)
		if i < 0 {
			return 0, fmt.Errorf("oracle: unknown column %q", n.Name)
		}
		return b.Cols[i][r], nil
	case plan.Int:
		return n.V, nil
	case plan.Str:
		return 0, fmt.Errorf("oracle: bare string literal %q", n.V)
	case plan.Bin:
		return o.evalBin(b, r, n)
	case plan.Not:
		v, err := o.eval(b, r, n.E)
		if err != nil {
			return 0, err
		}
		return b01(v == 0), nil
	case plan.InInts:
		v, err := o.eval(b, r, n.E)
		if err != nil {
			return 0, err
		}
		for _, w := range n.Vs {
			if v == w {
				return 1, nil
			}
		}
		return 0, nil
	case plan.InStrs:
		s, err := o.colStr(b, r, n.Col)
		if err != nil {
			return 0, err
		}
		for _, w := range n.Vs {
			if s == w {
				return 1, nil
			}
		}
		return 0, nil
	case plan.Like:
		s, err := o.colStr(b, r, n.Col)
		if err != nil {
			return 0, err
		}
		return b01(likeMatch(s, n.Pattern) != n.Negate), nil
	case plan.SubstrCode:
		s, err := o.colStr(b, r, n.Col)
		if err != nil {
			return 0, err
		}
		start := n.Start - 1
		end := start + n.Len
		if start < 0 || end > len(s) {
			return 0, nil
		}
		var v int64
		for i := start; i < end; i++ {
			v = v<<8 | int64(s[i])
		}
		return v, nil
	case plan.YearOf:
		d, err := o.eval(b, r, n.E)
		if err != nil {
			return 0, err
		}
		return int64(col.DateYear(d)), nil
	case plan.Case:
		c, err := o.eval(b, r, n.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return o.eval(b, r, n.Then)
		}
		return o.eval(b, r, n.Else)
	default:
		return 0, fmt.Errorf("oracle: unknown expr %T", e)
	}
}

func (o *Oracle) evalBin(b *OraBatch, r int, n plan.Bin) (int64, error) {
	// String comparisons: compare decoded content, not codes.
	if s, ok := n.R.(plan.Str); ok {
		c, okc := n.L.(plan.Col)
		if !okc {
			return 0, fmt.Errorf("oracle: string comparison needs a column: %s", n)
		}
		v, err := o.colStr(b, r, c.Name)
		if err != nil {
			return 0, err
		}
		return strCmp(n.Op, v, s.V)
	}
	if s, ok := n.L.(plan.Str); ok {
		c, okc := n.R.(plan.Col)
		if !okc {
			return 0, fmt.Errorf("oracle: string comparison needs a column: %s", n)
		}
		v, err := o.colStr(b, r, c.Name)
		if err != nil {
			return 0, err
		}
		return strCmp(flipOp(n.Op), v, s.V)
	}
	l, err := o.eval(b, r, n.L)
	if err != nil {
		return 0, err
	}
	rv, err := o.eval(b, r, n.R)
	if err != nil {
		return 0, err
	}
	switch n.Op {
	case plan.OpAdd:
		return l + rv, nil
	case plan.OpSub:
		return l - rv, nil
	case plan.OpMul:
		return l * rv, nil
	case plan.OpDiv:
		if rv == 0 {
			return 0, nil
		}
		return l / rv, nil
	case plan.OpDecMul:
		return l * rv / col.DecimalScale, nil
	case plan.OpAnd:
		return b01(l != 0 && rv != 0), nil
	case plan.OpOr:
		return b01(l != 0 || rv != 0), nil
	case plan.OpEQ:
		return b01(l == rv), nil
	case plan.OpNE:
		return b01(l != rv), nil
	case plan.OpLT:
		return b01(l < rv), nil
	case plan.OpLE:
		return b01(l <= rv), nil
	case plan.OpGT:
		return b01(l > rv), nil
	case plan.OpGE:
		return b01(l >= rv), nil
	default:
		return 0, fmt.Errorf("oracle: unknown op %v", n.Op)
	}
}

// colStr resolves a string column's content for one row.
func (o *Oracle) colStr(b *OraBatch, r int, name string) (string, error) {
	i := b.Schema.Index(name)
	if i < 0 {
		return "", fmt.Errorf("oracle: unknown string column %q", name)
	}
	f := b.Schema[i]
	if f.Src == nil {
		return "", fmt.Errorf("oracle: column %q has no string source", name)
	}
	return o.decode(f.Src, b.Cols[i][r])
}

func strCmp(op plan.BinOp, a, b string) (int64, error) {
	switch op {
	case plan.OpEQ:
		return b01(a == b), nil
	case plan.OpNE:
		return b01(a != b), nil
	case plan.OpLT:
		return b01(a < b), nil
	case plan.OpLE:
		return b01(a <= b), nil
	case plan.OpGT:
		return b01(a > b), nil
	case plan.OpGE:
		return b01(a >= b), nil
	default:
		return 0, fmt.Errorf("oracle: bad string comparison %v", op)
	}
}

func flipOp(op plan.BinOp) plan.BinOp {
	switch op {
	case plan.OpLT:
		return plan.OpGT
	case plan.OpGT:
		return plan.OpLT
	case plan.OpLE:
		return plan.OpGE
	case plan.OpGE:
		return plan.OpLE
	default:
		return op
	}
}

func b01(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// likeMatch is a from-scratch SQL LIKE matcher ('%' any run, '_' one
// byte), recursive on purpose — it shares nothing with regexcc.
func likeMatch(s, pat string) bool {
	var m func(si, pi int) bool
	m = func(si, pi int) bool {
		if pi == len(pat) {
			return si == len(s)
		}
		switch pat[pi] {
		case '%':
			for k := si; k <= len(s); k++ {
				if m(k, pi+1) {
					return true
				}
			}
			return false
		case '_':
			return si < len(s) && m(si+1, pi+1)
		default:
			return si < len(s) && s[si] == pat[pi] && m(si+1, pi+1)
		}
	}
	return m(0, 0)
}
