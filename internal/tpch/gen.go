// Package tpch implements the TPC-H substrate: a from-scratch dbgen
// producing all eight tables at a configurable scale factor with the
// spec's value distributions and key relationships, plus the 22 benchmark
// queries expressed as plan trees (queries.go).
//
// The paper evaluates AQUOMAN on SF-1000 (1 TB); this box generates small
// scale factors functionally and the timing model extrapolates traces —
// TPC-H selectivities and cardinality ratios are scale-invariant, the same
// property the paper's own trace-based simulator relies on.
package tpch

import (
	"fmt"
	"math/rand"
	"strings"

	"aquoman/internal/col"
)

// Scale-factor-1 base cardinalities from the TPC-H specification.
const (
	SuppliersPerSF  = 10_000
	PartsPerSF      = 200_000
	CustomersPerSF  = 150_000
	OrdersPerSF     = 1_500_000
	PartSuppPerPart = 4
)

// Config controls generation.
type Config struct {
	// SF is the scale factor (1.0 = ~1 GB of raw data, 1000 in the paper).
	SF float64
	// Seed makes generation deterministic.
	Seed int64
}

// Gen generates all eight tables into the store, including the
// MonetDB-style materialized foreign-key RowID columns AQUOMAN exploits.
func Gen(store *col.Store, cfg Config) error {
	if cfg.SF <= 0 {
		cfg.SF = 0.01
	}
	g := &gen{
		store: store,
		cfg:   cfg,
		nSupp: scaled(SuppliersPerSF, cfg.SF),
		nPart: scaled(PartsPerSF, cfg.SF),
		nCust: scaled(CustomersPerSF, cfg.SF),
		nOrd:  scaled(OrdersPerSF, cfg.SF),
	}
	steps := []func() error{
		g.genRegion, g.genNation, g.genSupplier, g.genPart, g.genPartSupp,
		g.genCustomer, g.genOrdersAndLineitem, g.materialize,
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	return nil
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 8 {
		n = 8
	}
	return n
}

type gen struct {
	store *col.Store
	cfg   Config

	nSupp, nPart, nCust, nOrd int

	region, nation, supplier, part, partsupp *col.Table
	customer, orders, lineitem               *col.Table

	retailPrice []int64 // per part, for extendedprice
}

func (g *gen) rng(table string) *rand.Rand {
	h := int64(0)
	for _, c := range table {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + h))
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations with their region indices, from the spec.
var nationDefs = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var words = strings.Fields(`the of quick furious slow ironic bold even
regular unusual express silent final pending daring brave careful
deposits requests accounts packages theodolites pinto beans foxes
instructions dependencies platelets excuses realms dolphins sauternes
warhorses sheaves hockey players sentiments asymptotes courts ideas
dugouts waters packages sleep nag haggle boost engage wake cajole
detect integrate use maintain believe doze hang impress print among
across above against along beside beneath alongside quickly carefully
blithely furiously slyly quietly ruthlessly special requests customer
complaints`)

func (g *gen) comment(rng *rand.Rand, minWords, maxWords int) string {
	n := minWords + rng.Intn(maxWords-minWords+1)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[rng.Intn(len(words))]
	}
	return strings.Join(parts, " ")
}

// specialComment injects the q13 "%special%requests%" pattern with the
// spec's rough frequency when inject is true.
func (g *gen) orderComment(rng *rand.Rand) string {
	c := g.comment(rng, 4, 10)
	if rng.Intn(100) == 0 {
		c = c + " special pending requests " + g.comment(rng, 1, 3)
	}
	return c
}

// supplierComment injects q16's "%Customer%Complaints%" pattern (~0.05%).
func (g *gen) supplierComment(rng *rand.Rand) string {
	c := g.comment(rng, 4, 10)
	if rng.Intn(2000) == 0 {
		c = c + " Customer even Complaints"
	}
	return c
}

var colors = strings.Fields(`almond antique aquamarine azure beige bisque
black blanched blue blush brown burlywood burnished chartreuse chiffon
chocolate coral cornflower cornsilk cream cyan dark deep dim dodger drab
firebrick floral forest frosted gainsboro ghost goldenrod green grey
honeydew hot indian ivory khaki lace lavender lawn lemon light lime
linen magenta maroon medium metallic midnight mint misty moccasin navajo
navy olive orange orchid pale papaya peach peru pink plum powder puff
purple red rose rosy royal saddle salmon sandy seashell sienna sky slate
smoke snow spring steel tan thistle tomato turquoise violet wheat white
yellow`)

var (
	typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containerSyl1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containerSyl2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs     = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
)

// Date window from the spec.
var (
	startDate = col.MustParseDate("1992-01-01")
	endDate   = col.MustParseDate("1998-12-01")
	// currentDate is the spec's reference date (used by query predicates).
	CurrentDate = col.MustParseDate("1995-06-17")
)

func (g *gen) genRegion() error {
	b := g.store.NewTable(col.Schema{Name: "region", Cols: []col.ColDef{
		{Name: "r_regionkey", Typ: col.Int32},
		{Name: "r_name", Typ: col.Dict},
		{Name: "r_comment", Typ: col.Text},
	}})
	rng := g.rng("region")
	for i, n := range regionNames {
		b.Append(i, n, g.comment(rng, 4, 10))
	}
	var err error
	g.region, err = b.Finalize()
	return err
}

func (g *gen) genNation() error {
	b := g.store.NewTable(col.Schema{Name: "nation", Cols: []col.ColDef{
		{Name: "n_nationkey", Typ: col.Int32},
		{Name: "n_name", Typ: col.Dict},
		{Name: "n_regionkey", Typ: col.Int32},
		{Name: "n_comment", Typ: col.Text},
	}})
	rng := g.rng("nation")
	for i, n := range nationDefs {
		b.Append(i, n.name, n.region, g.comment(rng, 4, 10))
	}
	var err error
	g.nation, err = b.Finalize()
	return err
}

func (g *gen) genSupplier() error {
	b := g.store.NewTable(col.Schema{Name: "supplier", Cols: []col.ColDef{
		{Name: "s_suppkey", Typ: col.Int32},
		{Name: "s_name", Typ: col.Text},
		{Name: "s_address", Typ: col.Text},
		{Name: "s_nationkey", Typ: col.Int32},
		{Name: "s_phone", Typ: col.Text},
		{Name: "s_acctbal", Typ: col.Decimal},
		{Name: "s_comment", Typ: col.Text},
	}})
	rng := g.rng("supplier")
	for i := 1; i <= g.nSupp; i++ {
		nat := rng.Intn(len(nationDefs))
		b.Append(i,
			fmt.Sprintf("Supplier#%09d", i),
			g.comment(rng, 2, 4),
			nat,
			phone(nat, rng),
			int64(rng.Intn(1_099_999))-100_000, // -1000.00 .. 9999.99
			g.supplierComment(rng),
		)
	}
	var err error
	g.supplier, err = b.Finalize()
	return err
}

func phone(nationkey int, rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", nationkey+10,
		100+rng.Intn(900), 100+rng.Intn(900), 1000+rng.Intn(9000))
}

// partRetailPrice is the spec formula, in cents.
func partRetailPrice(partkey int64) int64 {
	return 90_000 + (partkey/10)%20_001 + 100*(partkey%1_000)
}

func (g *gen) genPart() error {
	b := g.store.NewTable(col.Schema{Name: "part", Cols: []col.ColDef{
		{Name: "p_partkey", Typ: col.Int32},
		{Name: "p_name", Typ: col.Text},
		{Name: "p_mfgr", Typ: col.Dict},
		{Name: "p_brand", Typ: col.Dict},
		{Name: "p_type", Typ: col.Dict},
		{Name: "p_size", Typ: col.Int32},
		{Name: "p_container", Typ: col.Dict},
		{Name: "p_retailprice", Typ: col.Decimal},
		{Name: "p_comment", Typ: col.Text},
	}})
	rng := g.rng("part")
	g.retailPrice = make([]int64, g.nPart+1)
	for i := 1; i <= g.nPart; i++ {
		mfgr := 1 + rng.Intn(5)
		brand := mfgr*10 + 1 + rng.Intn(5)
		nameWords := make([]string, 5)
		for j := range nameWords {
			nameWords[j] = colors[rng.Intn(len(colors))]
		}
		price := partRetailPrice(int64(i))
		g.retailPrice[i] = price
		b.Append(i,
			strings.Join(nameWords, " "),
			fmt.Sprintf("Manufacturer#%d", mfgr),
			fmt.Sprintf("Brand#%d", brand),
			typeSyllable1[rng.Intn(6)]+" "+typeSyllable2[rng.Intn(5)]+" "+typeSyllable3[rng.Intn(5)],
			1+rng.Intn(50),
			containerSyl1[rng.Intn(5)]+" "+containerSyl2[rng.Intn(8)],
			price,
			g.comment(rng, 2, 5),
		)
	}
	var err error
	g.part, err = b.Finalize()
	return err
}

// suppForPart returns the s-th (0..3) supplier of a part, per the spec's
// distribution formula.
func (g *gen) suppForPart(partkey int64, s int) int64 {
	S := int64(g.nSupp)
	return (partkey+int64(s)*(S/4+(partkey-1)/S))%S + 1
}

func (g *gen) genPartSupp() error {
	b := g.store.NewTable(col.Schema{Name: "partsupp", Cols: []col.ColDef{
		{Name: "ps_partkey", Typ: col.Int32},
		{Name: "ps_suppkey", Typ: col.Int32},
		{Name: "ps_availqty", Typ: col.Int32},
		{Name: "ps_supplycost", Typ: col.Decimal},
		{Name: "ps_comment", Typ: col.Text},
	}})
	rng := g.rng("partsupp")
	for p := 1; p <= g.nPart; p++ {
		for s := 0; s < PartSuppPerPart; s++ {
			b.Append(p, g.suppForPart(int64(p), s),
				1+rng.Intn(9999),
				int64(100+rng.Intn(99_901)), // 1.00 .. 1000.00
				g.comment(rng, 4, 10))
		}
	}
	var err error
	g.partsupp, err = b.Finalize()
	return err
}

func (g *gen) genCustomer() error {
	b := g.store.NewTable(col.Schema{Name: "customer", Cols: []col.ColDef{
		{Name: "c_custkey", Typ: col.Int32},
		{Name: "c_name", Typ: col.Text},
		{Name: "c_address", Typ: col.Text},
		{Name: "c_nationkey", Typ: col.Int32},
		{Name: "c_phone", Typ: col.Text},
		{Name: "c_acctbal", Typ: col.Decimal},
		{Name: "c_mktsegment", Typ: col.Dict},
		{Name: "c_comment", Typ: col.Text},
	}})
	rng := g.rng("customer")
	for i := 1; i <= g.nCust; i++ {
		nat := rng.Intn(len(nationDefs))
		b.Append(i,
			fmt.Sprintf("Customer#%09d", i),
			g.comment(rng, 2, 4),
			nat,
			phone(nat, rng),
			int64(rng.Intn(1_099_999))-100_000,
			segments[rng.Intn(len(segments))],
			g.comment(rng, 4, 10),
		)
	}
	var err error
	g.customer, err = b.Finalize()
	return err
}

// orderKey produces the spec's sparse order keys: 8 used keys per 32.
func orderKey(i int64) int64 {
	return (i/8)*32 + i%8 + 1
}

func (g *gen) genOrdersAndLineitem() error {
	ob := g.store.NewTable(col.Schema{Name: "orders", Cols: []col.ColDef{
		{Name: "o_orderkey", Typ: col.Int32},
		{Name: "o_custkey", Typ: col.Int32},
		{Name: "o_orderstatus", Typ: col.Dict},
		{Name: "o_totalprice", Typ: col.Decimal},
		{Name: "o_orderdate", Typ: col.Date},
		{Name: "o_orderpriority", Typ: col.Dict},
		{Name: "o_clerk", Typ: col.Text},
		{Name: "o_shippriority", Typ: col.Int32},
		{Name: "o_comment", Typ: col.Text},
	}})
	lb := g.store.NewTable(col.Schema{Name: "lineitem", Cols: []col.ColDef{
		{Name: "l_orderkey", Typ: col.Int32},
		{Name: "l_partkey", Typ: col.Int32},
		{Name: "l_suppkey", Typ: col.Int32},
		{Name: "l_linenumber", Typ: col.Int32},
		{Name: "l_quantity", Typ: col.Decimal},
		{Name: "l_extendedprice", Typ: col.Decimal},
		{Name: "l_discount", Typ: col.Decimal},
		{Name: "l_tax", Typ: col.Decimal},
		{Name: "l_returnflag", Typ: col.Dict},
		{Name: "l_linestatus", Typ: col.Dict},
		{Name: "l_shipdate", Typ: col.Date},
		{Name: "l_commitdate", Typ: col.Date},
		{Name: "l_receiptdate", Typ: col.Date},
		{Name: "l_shipinstruct", Typ: col.Dict},
		{Name: "l_shipmode", Typ: col.Dict},
		{Name: "l_comment", Typ: col.Text},
	}})
	rng := g.rng("orders")
	maxOrderDate := endDate - 151 // so receiptdate stays inside the window
	for i := int64(0); i < int64(g.nOrd); i++ {
		okey := orderKey(i)
		// Customers with custkey % 3 == 0 have no orders (spec).
		ckey := int64(1 + rng.Intn(g.nCust))
		for ckey%3 == 0 {
			ckey = int64(1 + rng.Intn(g.nCust))
		}
		odate := startDate + int64(rng.Intn(int(maxOrderDate-startDate+1)))
		nLines := 1 + rng.Intn(7)
		var total int64
		allF, allO := true, true
		for ln := 1; ln <= nLines; ln++ {
			pkey := int64(1 + rng.Intn(g.nPart))
			skey := g.suppForPart(pkey, rng.Intn(4))
			qty := int64(1 + rng.Intn(50))
			eprice := qty * g.retailPrice[pkey]
			disc := int64(rng.Intn(11))
			tax := int64(rng.Intn(9))
			ship := odate + 1 + int64(rng.Intn(121))
			commit := odate + 30 + int64(rng.Intn(61))
			receipt := ship + 1 + int64(rng.Intn(30))
			rf := "N"
			if receipt <= CurrentDate {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= CurrentDate {
				ls = "F"
				allO = false
			} else {
				allF = false
			}
			lb.Append(okey, pkey, skey, ln, qty*100, eprice, disc, tax,
				rf, ls, ship, commit, receipt,
				instructs[rng.Intn(4)], shipmodes[rng.Intn(7)],
				g.comment(rng, 2, 6))
			total += eprice * (100 - disc) / 100 * (100 + tax) / 100
		}
		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		ob.Append(okey, ckey, status, total, odate,
			priorities[rng.Intn(5)],
			fmt.Sprintf("Clerk#%09d", 1+rng.Intn(g.nOrd/100+1)),
			0,
			g.orderComment(rng))
	}
	var err error
	if g.orders, err = ob.Finalize(); err != nil {
		return err
	}
	g.lineitem, err = lb.Finalize()
	return err
}

// FKEdge names one foreign-key edge of the TPC-H schema by table and
// column names.
type FKEdge struct {
	Fact, FKCol, Dim, PKCol string
}

// FKEdges is the TPC-H foreign-key graph — the single source of truth
// shared by generation-time companion materialization (below) and the
// write-path catalog, whose merge re-derives companions and enforces
// referential integrity along exactly these edges.
var FKEdges = []FKEdge{
	{Fact: "nation", FKCol: "n_regionkey", Dim: "region", PKCol: "r_regionkey"},
	{Fact: "supplier", FKCol: "s_nationkey", Dim: "nation", PKCol: "n_nationkey"},
	{Fact: "customer", FKCol: "c_nationkey", Dim: "nation", PKCol: "n_nationkey"},
	{Fact: "partsupp", FKCol: "ps_partkey", Dim: "part", PKCol: "p_partkey"},
	{Fact: "partsupp", FKCol: "ps_suppkey", Dim: "supplier", PKCol: "s_suppkey"},
	{Fact: "orders", FKCol: "o_custkey", Dim: "customer", PKCol: "c_custkey"},
	{Fact: "lineitem", FKCol: "l_orderkey", Dim: "orders", PKCol: "o_orderkey"},
	{Fact: "lineitem", FKCol: "l_partkey", Dim: "part", PKCol: "p_partkey"},
	{Fact: "lineitem", FKCol: "l_suppkey", Dim: "supplier", PKCol: "s_suppkey"},
}

// materialize builds the MonetDB-style FK RowID companion columns.
func (g *gen) materialize() error {
	for _, e := range FKEdges {
		fact, err := g.store.Table(e.Fact)
		if err != nil {
			return err
		}
		dim, err := g.store.Table(e.Dim)
		if err != nil {
			return err
		}
		if err := col.MaterializeFK(fact, e.FKCol, dim, e.PKCol); err != nil {
			return err
		}
	}
	// Composite FK lineitem(partkey, suppkey) -> partsupp for q9.
	return MaterializePartSuppIndex(g.lineitem, g.partsupp)
}

// RefreshPartSuppIndex is the catalog merge hook for TPC-H stores: a
// merge drops every materialized RowID companion on changed tables and
// re-derives the FK-edge companions itself, but the composite
// lineitem(partkey,suppkey)->partsupp index is schema-specific, so this
// hook rebuilds it whenever either side changed.
func RefreshPartSuppIndex(s *col.Store, changed map[string]bool) error {
	if !changed["lineitem"] && !changed["partsupp"] {
		return nil
	}
	lineitem, err := s.Table("lineitem")
	if err != nil {
		return nil // partial store (e.g. a partition without lineitem)
	}
	partsupp, err := s.Table("partsupp")
	if err != nil {
		return nil
	}
	if lineitem.HasColumn(PartSuppRowIDCol) {
		if err := lineitem.DropColumn(PartSuppRowIDCol); err != nil {
			return err
		}
	}
	return MaterializePartSuppIndex(lineitem, partsupp)
}

// PartSuppRowIDCol is the composite join-index column name on lineitem.
const PartSuppRowIDCol = "l_partsupp@rowid"

// MaterializePartSuppIndex builds the composite join index; exported for
// repartitioning (internal/distrib).
func MaterializePartSuppIndex(lineitem, partsupp *col.Table) error {
	pk := partsupp.MustColumn("ps_partkey").MustReadAll(0)
	sk := partsupp.MustColumn("ps_suppkey").MustReadAll(0)
	idx := make(map[[2]int64]int64, len(pk))
	for i := range pk {
		idx[[2]int64{pk[i], sk[i]}] = int64(i)
	}
	lp := lineitem.MustColumn("l_partkey").MustReadAll(0)
	ls := lineitem.MustColumn("l_suppkey").MustReadAll(0)
	rowids := make([]int64, len(lp))
	for i := range lp {
		r, ok := idx[[2]int64{lp[i], ls[i]}]
		if !ok {
			return fmt.Errorf("tpch: lineitem row %d references missing partsupp (%d,%d)",
				i, lp[i], ls[i])
		}
		rowids[i] = r
	}
	return lineitem.AddRowIDColumn(PartSuppRowIDCol, rowids)
}
