package tpch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aquoman/internal/compiler"
	"aquoman/internal/core"
	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/plan"
)

var (
	oraOnce sync.Once
	oraErr  error
	oraRes  map[int]*OraBatch
)

// oracleResults snapshots the shared store and evaluates all 22 queries
// through the naive reference executor exactly once. The snapshot is
// taken while the device is fault-free, so later fault schedules cannot
// perturb the expected values.
func oracleResults(t *testing.T) map[int]*OraBatch {
	t.Helper()
	s := sharedStore(t)
	oraOnce.Do(func() {
		ora, err := NewOracle(s)
		if err != nil {
			oraErr = err
			return
		}
		oraRes = make(map[int]*OraBatch)
		for _, q := range Queries() {
			n := q.Build()
			if err := plan.Bind(n, s); err != nil {
				oraErr = fmt.Errorf("q%d bind: %w", q.Num, err)
				return
			}
			b, err := ora.Run(n)
			if err != nil {
				oraErr = fmt.Errorf("q%d oracle: %w", q.Num, err)
				return
			}
			oraRes[q.Num] = b
		}
	})
	if oraErr != nil {
		t.Fatalf("oracle: %v", oraErr)
	}
	return oraRes
}

// pipelineRun executes query q through the full offload pipeline
// (compiler -> Table Tasks -> host residual plan).
func pipelineRun(t *testing.T, q int) (*engine.Batch, *core.Report) {
	t.Helper()
	s := sharedStore(t)
	def, err := Get(q)
	if err != nil {
		t.Fatal(err)
	}
	n := def.Build()
	if err := plan.Bind(n, s); err != nil {
		t.Fatalf("q%d bind: %v", q, err)
	}
	dev := core.New(s, core.Config{DRAMBytes: mem.DefaultCapacity, Compiler: compiler.Config{HeapScale: 1}})
	b, rep, err := dev.RunQuery(n)
	if err != nil {
		t.Fatalf("q%d pipeline: %v", q, err)
	}
	return b, rep
}

// diffBatches is the shared cell-exact assertion, kept as a local alias
// for the many existing call sites.
func diffBatches(t *testing.T, label string, got *engine.Batch, want *OraBatch) {
	t.Helper()
	AssertEqual(t, label, got, want)
}

// Every TPC-H query through the full offload pipeline must agree exactly
// with the naive reference executor.
func TestDifferentialAllQueries(t *testing.T) {
	want := oracleResults(t)
	for _, q := range Queries() {
		b, _ := pipelineRun(t, q.Num)
		diffBatches(t, fmt.Sprintf("q%d", q.Num), b, want[q.Num])
	}
}

// The host-only engine must agree with the oracle too: it shares only the
// plan algebra with the reference executor.
func TestDifferentialHostEngine(t *testing.T) {
	want := oracleResults(t)
	for _, q := range Queries() {
		b := runQuery(t, q.Num)
		diffBatches(t, fmt.Sprintf("q%d host", q.Num), b, want[q.Num])
	}
}

// Under each seeded fault schedule every query's result must stay
// byte-identical to the fault-free oracle: transients are absorbed by
// page-read retries and slow reads only cost simulated time.
func TestDifferentialUnderFaultSchedules(t *testing.T) {
	want := oracleResults(t)
	s := sharedStore(t)
	schedules := []struct {
		name string
		inj  func() *faults.Injector
		// wantRetries asserts the schedule visibly exercised the retry
		// machinery (slow reads never trigger retries).
		wantRetries bool
	}{
		{"seeded-transient", func() *faults.Injector {
			return faults.New(faults.Config{Seed: 11, PTransient: 0.001, TransientRepeat: 2})
		}, true},
		{"scripted-hook", func() *faults.Injector {
			inj := faults.New(faults.Config{})
			inj.Hook = func(file string, page int64, who flash.Requester, attempt int) (faults.Kind, bool) {
				if attempt == 0 && page%13 == 0 {
					return faults.Transient, true
				}
				return 0, false
			}
			return inj
		}, true},
		{"slow-reads", func() *faults.Injector {
			return faults.New(faults.Config{Seed: 13, PSlow: 0.02, Stall: 200 * time.Microsecond})
		}, false},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			inj := sched.inj()
			s.Dev.SetFaults(inj)
			defer s.Dev.SetFaults(nil)
			before := s.Dev.Stats()
			for _, q := range Queries() {
				b, _ := pipelineRun(t, q.Num)
				diffBatches(t, fmt.Sprintf("q%d %s", q.Num, sched.name), b, want[q.Num])
			}
			if inj.Counts().TotalInjected() == 0 {
				t.Fatal("schedule injected no faults")
			}
			delta := s.Dev.Stats().Sub(before)
			if sched.wantRetries && delta.TotalReadRetries() == 0 {
				t.Fatal("no retries recorded despite injected faults")
			}
			if !sched.wantRetries && delta.SlowReads[flash.Host]+delta.SlowReads[flash.Aquoman] == 0 {
				t.Fatal("no slow reads recorded")
			}
			if n := delta.ReadsFailed[flash.Host] + delta.ReadsFailed[flash.Aquoman]; n != 0 {
				// All three schedules are absorbable; a failed read means a
				// transient outlived the retry budget.
				t.Fatalf("%d reads failed outright", n)
			}
		})
	}
}
