package obs

import "net/http"

// Handler serves the registry over HTTP: /metrics in Prometheus text
// format and /debug/vars as expvar-style JSON. Mount it with
// http.ListenAndServe(addr, reg.Handler()).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Snapshot().Prometheus()))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write([]byte(r.Snapshot().Expvar()))
	})
	return mux
}
