package obs

import "net/http"

// Handler serves the registry over HTTP: /metrics in Prometheus text
// format, /debug/vars as expvar-style JSON, and an index page on / that
// lists the mounted endpoints. Mount it with
// http.ListenAndServe(addr, reg.Handler()).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Snapshot().Prometheus()))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write([]byte(r.Snapshot().Expvar()))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(`<html><head><title>aquoman metrics</title></head><body>
<h1>aquoman metrics</h1>
<ul>
<li><a href="/metrics">/metrics</a> &mdash; Prometheus text format</li>
<li><a href="/debug/vars">/debug/vars</a> &mdash; expvar-style JSON</li>
</ul>
</body></html>
`))
	})
	return mux
}
