package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLifecycleAddAndBreakdown(t *testing.T) {
	lc := NewLifecycle("q1")
	lc.Add(StateQueueWait, 3*time.Millisecond)
	lc.Add(StateDeviceRead, 5*time.Millisecond)
	lc.Add(StateDeviceRead, 2*time.Millisecond)
	lc.Add(StateRowSel, -1) // negative durations are dropped
	lc.Add(State(-1), time.Second)
	lc.Add(NumStates, time.Second)

	if got := lc.State(StateDeviceRead); got != 7*time.Millisecond {
		t.Fatalf("device_read = %v, want 7ms", got)
	}
	if got := lc.Attributed(); got != 10*time.Millisecond {
		t.Fatalf("attributed = %v, want 10ms", got)
	}
	b := lc.Breakdown()
	if len(b) != int(NumStates) {
		t.Fatalf("breakdown has %d keys, want %d (zero states must be present)", len(b), NumStates)
	}
	if b["queue_wait"] != int64(3*time.Millisecond) || b["rowsel"] != 0 {
		t.Fatalf("breakdown = %v", b)
	}
	for _, name := range StateNames() {
		if _, ok := b[name]; !ok {
			t.Fatalf("breakdown missing state %q", name)
		}
	}
}

// An exclusive region must not double-count time already attributed to a
// nested state inside its window: attributing 10ms of device_read inside
// a ~0ms exclusive host window leaves host at ~0. The 10ms exceeds the
// window's real elapsed time (the shape a concurrent cross-goroutine Add
// produces), so the excess is banked as debt and Attributed() tracks the
// real elapsed time, not the inflated state total.
func TestLifecycleExclusiveTimerExcludesNested(t *testing.T) {
	lc := NewLifecycle("q")
	end := lc.ExclusiveTimer(StateHost)
	lc.Add(StateDeviceRead, 10*time.Millisecond)
	end()
	if got := lc.State(StateDeviceRead); got != 10*time.Millisecond {
		t.Fatalf("device_read = %v, want 10ms before settle", got)
	}
	if host := lc.State(StateHost); host > time.Millisecond {
		t.Fatalf("host = %v, want ~0 (nested device_read must be excluded)", host)
	}
	if att := lc.Attributed(); att > time.Millisecond {
		t.Fatalf("attributed = %v, want ~0 (overcount inside the window is debt, not attribution)", att)
	}
}

func TestLifecycleInclusiveTimer(t *testing.T) {
	lc := NewLifecycle("q")
	end := lc.Timer(StateEmit)
	time.Sleep(2 * time.Millisecond)
	end()
	if got := lc.State(StateEmit); got < 2*time.Millisecond {
		t.Fatalf("emit = %v, want >= 2ms", got)
	}
}

func TestCursorMarkExcludesNestedAndSkips(t *testing.T) {
	lc := NewLifecycle("q")
	cu := lc.Cursor()
	lc.Add(StateCacheHit, 8*time.Millisecond)
	cu.Mark(StateRowSel)
	// The rowsel region is (real elapsed - 8ms), which is negative here:
	// rowsel stays 0 and the ~8ms of cache_hit that exceeds the region's
	// real elapsed time becomes debt, so Attributed() stays ~elapsed.
	if rs := lc.State(StateRowSel); rs > time.Millisecond {
		t.Fatalf("rowsel = %v, want ~0", rs)
	}
	if att := lc.Attributed(); att > time.Millisecond {
		t.Fatalf("attributed = %v, want ~0 (overcount inside the region is debt)", att)
	}

	// Mark re-anchors: a second region attributes only its own time.
	time.Sleep(2 * time.Millisecond)
	cu.Mark(StateRead)
	if rd := lc.State(StateRead); rd < 2*time.Millisecond {
		t.Fatalf("read = %v, want >= 2ms", rd)
	}

	// Skip advances without attributing.
	before := lc.Attributed()
	time.Sleep(2 * time.Millisecond)
	cu.Skip()
	if att := lc.Attributed(); att != before {
		t.Fatalf("Skip attributed %v", att-before)
	}
}

// A concurrent Add landing inside an exclusive window (a coalesced cache
// fill completing between Mark regions, a cluster worker attributing
// flash time while the coordinator holds a scatter-wait window) claims
// nanoseconds the window's own state would also claim. The window's
// negative remainder banks the overcount as debt instead of silently
// dropping it with nested left inflated, and Finish settles the debt by
// scaling states down — so the per-state breakdown never sums past wall.
func TestLifecycleConcurrentOverlapSettlesToWall(t *testing.T) {
	lc := NewLifecycle("q")
	end := lc.ExclusiveTimer(StateHost)
	time.Sleep(2 * time.Millisecond)
	// Simulate a cross-goroutine attribution far exceeding the window's
	// real elapsed time.
	lc.Add(StateCoalesceWait, 50*time.Millisecond)
	end()
	wall := lc.Finish()

	var sum time.Duration
	for _, ns := range lc.Breakdown() {
		sum += time.Duration(ns)
	}
	if sum > wall {
		t.Fatalf("Σstates = %v > wall %v after settle", sum, wall)
	}
	if cw := lc.State(StateCoalesceWait); cw >= 50*time.Millisecond {
		t.Fatalf("coalesce_wait = %v, want scaled below the raw 50ms", cw)
	}
	if att := lc.Attributed(); time.Duration(sum) > att {
		t.Fatalf("Σstates = %v > attributed %v after settle", sum, att)
	}
	if cov := lc.Coverage(); cov > 1.01 {
		t.Fatalf("coverage = %v, want <= ~1", cov)
	}
}

func TestLifecycleFinishAndCoverage(t *testing.T) {
	lc := NewLifecycle("q")
	time.Sleep(2 * time.Millisecond)
	lc.Add(StateHost, lc.Wall()) // attribute everything so far
	w1 := lc.Finish()
	time.Sleep(2 * time.Millisecond)
	if w2 := lc.Finish(); w2 != w1 {
		t.Fatalf("second Finish = %v, first = %v (wall must freeze)", w2, w1)
	}
	if lc.Wall() != w1 {
		t.Fatalf("Wall after Finish = %v, want %v", lc.Wall(), w1)
	}
	if cov := lc.Coverage(); cov <= 0.5 || cov > 1.1 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestLifecycleNilSafety(t *testing.T) {
	var lc *Lifecycle
	lc.Add(StateHost, time.Second)
	lc.Timer(StateEmit)()
	lc.ExclusiveTimer(StateHost)()
	cu := lc.Cursor()
	cu.Mark(StateRowSel)
	cu.Skip()
	if lc.State(StateHost) != 0 || lc.Attributed() != 0 || lc.Finish() != 0 ||
		lc.Wall() != 0 || lc.Coverage() != 0 || lc.Breakdown() != nil {
		t.Fatal("nil lifecycle returned nonzero values")
	}
	lc.ObserveInto(NewRegistry())
}

func TestLifecycleContextRoundTrip(t *testing.T) {
	if LifecycleFrom(nil) != nil || LifecycleFrom(context.Background()) != nil {
		t.Fatal("LifecycleFrom invented a lifecycle")
	}
	lc := NewLifecycle("q")
	ctx := WithLifecycle(nil, lc)
	if LifecycleFrom(ctx) != lc {
		t.Fatal("round trip through nil parent failed")
	}
	ctx = WithLifecycle(context.Background(), lc)
	if LifecycleFrom(ctx) != lc {
		t.Fatal("round trip failed")
	}
	if got := WithLifecycle(ctx, nil); LifecycleFrom(got) != lc {
		t.Fatal("attaching nil lifecycle should keep the parent's")
	}
}

func TestLifecycleObserveInto(t *testing.T) {
	r := NewRegistry()
	lc := NewLifecycle("q")
	lc.Add(StateDeviceRead, 4*time.Millisecond)
	lc.ObserveInto(r)
	s := r.Snapshot()
	if p, ok := s.Get("query_latency_ns"); !ok || p.Count != 1 {
		t.Fatalf("query_latency_ns = %+v, %v", p, ok)
	}
	p, ok := s.Get("query_state_ns", "state", "device_read")
	if !ok || p.Sum != int64(4*time.Millisecond) {
		t.Fatalf("query_state_ns{state=device_read} = %+v, %v", p, ok)
	}
	if _, ok := s.Get("query_state_ns", "state", "rowsel"); ok {
		t.Fatal("zero state must not create a series")
	}
	if p, _ := s.Get("query_attributed_ns_total"); p.Value != int64(4*time.Millisecond) {
		t.Fatalf("query_attributed_ns_total = %d", p.Value)
	}
	if p, _ := s.Get("query_wall_ns_total"); p.Value <= 0 {
		t.Fatalf("query_wall_ns_total = %d", p.Value)
	}
}

// Sixteen goroutines hammering one lifecycle (the shape the flash layer
// produces when a query's pages are read by parallel stages) must lose
// nothing: run with -race this is the lifecycle's concurrency proof.
func TestLifecycleConcurrentAdds(t *testing.T) {
	lc := NewLifecycle("q")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := State(w % int(NumStates))
			for i := 0; i < perWorker; i++ {
				lc.Add(s, time.Microsecond)
				if i%100 == 0 {
					lc.Breakdown() // concurrent reads must be safe
					lc.Coverage()
				}
			}
		}(w)
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Microsecond
	if got := lc.Attributed(); got != want {
		t.Fatalf("attributed = %v, want %v", got, want)
	}
	var sum int64
	for _, ns := range lc.Breakdown() {
		sum += ns
	}
	if time.Duration(sum) != want {
		t.Fatalf("breakdown sum = %v, want %v", time.Duration(sum), want)
	}
}

// Sixteen concurrent observers: the per-bucket counts must sum exactly
// to the total count, and a merge of per-goroutine histograms must equal
// the single shared histogram.
func TestHistogramConcurrentAndMerge(t *testing.T) {
	shared := NewRegistry()
	merged := NewRegistry()
	h := shared.Histogram("lat")
	parts := make([]*Registry, 16)
	var wg sync.WaitGroup
	for w := range parts {
		parts[w] = NewRegistry()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hw := parts[w].Histogram("lat")
			for i := 0; i < 2000; i++ {
				v := int64(w*2000 + i)
				h.Observe(v)
				hw.Observe(v)
			}
		}(w)
	}
	wg.Wait()

	m := merged.Histogram("lat")
	for _, r := range parts {
		m.Merge(r.Histogram("lat"))
	}

	for _, name := range []string{"shared", "merged"} {
		s := shared.Snapshot()
		if name == "merged" {
			s = merged.Snapshot()
		}
		p, _ := s.Get("lat")
		if p.Count != 32000 {
			t.Fatalf("%s count = %d, want 32000", name, p.Count)
		}
		var sum int64
		for _, b := range p.Buckets {
			sum += b.Count
		}
		if sum != p.Count {
			t.Fatalf("%s buckets sum to %d, count is %d", name, sum, p.Count)
		}
	}
	sp, _ := shared.Snapshot().Get("lat")
	mp, _ := merged.Snapshot().Get("lat")
	if sp.Sum != mp.Sum || len(sp.Buckets) != len(mp.Buckets) {
		t.Fatalf("merged != serial: sum %d/%d, buckets %d/%d", sp.Sum, mp.Sum, len(sp.Buckets), len(mp.Buckets))
	}
	for i := range sp.Buckets {
		if sp.Buckets[i] != mp.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v != serial %+v", i, mp.Buckets[i], sp.Buckets[i])
		}
	}
}

func TestQuantileEstimates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	p, _ := r.Snapshot().Get("lat")
	p50, p95, p99 := p.Quantile(0.5), p.Quantile(0.95), p.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: %g %g %g", p50, p95, p99)
	}
	// Uniform 1..1000: p50 lands in the (255, 511] bucket, p95/p99 in
	// (511, 1023]. Power-of-two buckets are coarse; just require the
	// interpolation to stay inside the right bucket.
	if p50 <= 255 || p50 > 511 {
		t.Fatalf("p50 = %g, want in (255, 511]", p50)
	}
	if p99 <= 511 || p99 > 1023 {
		t.Fatalf("p99 = %g, want in (511, 1023]", p99)
	}
	if (Point{}).Quantile(0.5) != 0 {
		t.Fatal("empty point quantile != 0")
	}
}

func TestEscapeLabelValue(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:        `plain`,
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"\\\"\n":       `\\\"\n`,
		`utf8 – fine™`: `utf8 – fine™`,
	} {
		if got := EscapeLabelValue(in); got != want {
			t.Fatalf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	r := NewRegistry()
	r.Counter("m", "q", "select \"x\"\nfrom t\\u").Inc()
	out := r.Snapshot().Prometheus()
	want := `m{q="select \"x\"\nfrom t\\u"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("prometheus output missing %q:\n%s", want, out)
	}
	if strings.Count(out, "\n") != strings.Count(out, "} 1\n")+strings.Count(out, "# TYPE m counter\n") {
		t.Fatalf("raw newline leaked into exposition:\n%q", out)
	}
}

// Every histogram family gets a derived summary sibling with quantile
// lines; duration-suffixed names export in seconds.
func TestPrometheusQuantileFamilies(t *testing.T) {
	r := NewRegistry()
	r.Histogram("query_latency_ns").Observe(int64(2 * time.Second))
	r.Histogram("resp_ms").Observe(1000)
	r.Histogram("batch_rows").Observe(64)
	out := r.Snapshot().Prometheus()
	for _, line := range []string{
		"# TYPE query_latency_ns histogram",
		"# TYPE query_latency_seconds summary",
		`query_latency_seconds{quantile="0.5"} `,
		`query_latency_seconds{quantile="0.95"} `,
		`query_latency_seconds{quantile="0.99"} `,
		"query_latency_seconds_count 1",
		"# TYPE resp_seconds summary",
		"resp_seconds_sum 1",
		"# TYPE batch_rows_quantiles summary",
		`batch_rows_quantiles{quantile="0.99"} `,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("prometheus output missing %q:\n%s", line, out)
		}
	}
	// The seconds values really are scaled: p50 of one 2s observation
	// must land within its power-of-two bucket, i.e. seconds not ns.
	var p50 float64
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, `query_latency_seconds{quantile="0.5"} `) {
			if _, err := fmt.Sscanf(l, `query_latency_seconds{quantile="0.5"} %g`, &p50); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p50 <= 0 || p50 > 4.3 {
		t.Fatalf("p50 = %g seconds, want in (0, 4.3]", p50)
	}
}
