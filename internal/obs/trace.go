package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records spans. All span operations lock the tracer, so spans
// may be started and ended from any goroutine (distrib shards, engine
// workers).
type Tracer struct {
	mu     sync.Mutex
	base   time.Time
	now    func() time.Duration
	spans  []*Span
	nextID int64
}

// NewTracer returns a tracer whose clock is the wall time since creation
// (monotonic).
func NewTracer() *Tracer {
	t := &Tracer{base: time.Now()}
	t.now = func() time.Duration { return time.Since(t.base) }
	return t
}

// SetNow replaces the clock — tests install a deterministic step clock.
func (t *Tracer) SetNow(f func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = f
	t.mu.Unlock()
}

// Attr is one integer annotation on a span (row counts, bytes, pages).
type Attr struct {
	K string
	V int64
}

// Span is one timed pipeline stage. A nil *Span no-ops on every method,
// so instrumented code never branches on "is tracing on?".
type Span struct {
	tr       *Tracer
	ID       int64
	ParentID int64 // 0 for roots
	Name     string
	Stage    string
	Tid      int // Chrome trace lane; distrib devices get their own
	Start    time.Duration
	end      time.Duration
	ended    bool
	Attrs    []Attr
}

// Start opens a root span.
func (t *Tracer) Start(name, stage string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(name, stage, 0, 1)
}

func (t *Tracer) startLocked(name, stage string, parent int64, tid int) *Span {
	t.nextID++
	s := &Span{tr: t, ID: t.nextID, ParentID: parent, Name: name, Stage: stage,
		Tid: tid, Start: t.now()}
	t.spans = append(t.spans, s)
	return s
}

// Child opens a span nested under s (inheriting its trace lane).
func (s *Span) Child(name, stage string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.startLocked(name, stage, s.ID, s.Tid)
}

// SetTid moves the span to a different Chrome trace lane (one lane per
// distrib device).
func (s *Span) SetTid(tid int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Tid = tid
	s.tr.mu.Unlock()
}

// SetInt sets (replacing any previous value of) an integer attribute.
func (s *Span) SetInt(k string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].K == k {
			s.Attrs[i].V = v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{K: k, V: v})
}

// AddInt accumulates into an integer attribute.
func (s *Span) AddInt(k string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].K == k {
			s.Attrs[i].V += v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{K: k, V: v})
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.tr.now()
		if s.end < s.Start {
			s.end = s.Start
		}
	}
	s.tr.mu.Unlock()
}

// SpanData is an exported, immutable copy of a finished span.
type SpanData struct {
	ID       int64
	ParentID int64
	Name     string
	Stage    string
	Tid      int
	Start    time.Duration
	Dur      time.Duration
	Attrs    []Attr
}

// Spans returns copies of all spans in start order. Unfinished spans get
// their duration up to now.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]SpanData, 0, len(t.spans))
	for _, s := range t.spans {
		end := s.end
		if !s.ended {
			end = now
		}
		if end < s.Start {
			end = s.Start
		}
		out = append(out, SpanData{ID: s.ID, ParentID: s.ParentID, Name: s.Name,
			Stage: s.Stage, Tid: s.Tid, Start: s.Start, Dur: end - s.Start,
			Attrs: append([]Attr(nil), s.Attrs...)})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// chromeEvent is one trace_event entry ("X" complete events only).
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`  // microseconds
	Dur  int64            `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders every span as a Chrome trace_event JSON document.
// Events are sorted by ts (monotonic) and all durations are non-negative.
func (t *Tracer) ChromeTrace() []byte {
	spans := t.Spans()
	doc := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		ev := chromeEvent{Name: s.Name, Cat: s.Stage, Ph: "X",
			Ts: s.Start.Microseconds(), Dur: s.Dur.Microseconds(), Pid: 1, Tid: s.Tid}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]int64, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.K] = a.V
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	out, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return []byte(`{"traceEvents":[]}`)
	}
	return out
}

// Tree renders the span forest as an indented human-readable listing:
//
//	query q6 [query] 12.4ms
//	  compile [compile] 0.2ms
//	  unit u0 [unit] 9.1ms rows_in=60175
func (t *Tracer) Tree() string {
	spans := t.Spans()
	children := make(map[int64][]SpanData, len(spans))
	for _, s := range spans {
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	var sb strings.Builder
	var walk func(parent int64, depth int)
	walk = func(parent int64, depth int) {
		for _, s := range children[parent] {
			sb.WriteString(strings.Repeat("  ", depth))
			fmt.Fprintf(&sb, "%s [%s] %s", s.Name, s.Stage, s.Dur.Round(time.Microsecond))
			for _, a := range s.Attrs {
				fmt.Fprintf(&sb, " %s=%d", a.K, a.V)
			}
			sb.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}
