package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total", "dev", "0")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	// Same name+labels resolves to the same series regardless of label order.
	c2 := r.Counter("reads_total", "dev", "0")
	if c2 != c {
		t.Fatal("second resolution returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	g.SetMax(5) // below current: no-op
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(100)
	if g.Value() != 100 {
		t.Fatalf("gauge = %d, want 100", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	if s := r.Snapshot(); len(s.Points) != 0 {
		t.Fatalf("nil registry snapshot has %d points", len(s.Points))
	}
	var o *Observer
	o.Counter("x").Inc()
	sp := o.StartSpan("q", StageQuery)
	sp.SetInt("k", 1)
	sp.Child("c", StageTask).End()
	sp.End()
	o.SpanUnder(nil, "q", StageQuery).End()
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "b", "2", "a", "1")
	b := r.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	s := r.Snapshot()
	p, ok := s.Get("m", "a", "1", "b", "2")
	if !ok || p.Value != 1 {
		t.Fatalf("Get = %+v, %v", p, ok)
	}
	if p.Labels != `{a="1",b="2"}` {
		t.Fatalf("labels rendered %q", p.Labels)
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	p, ok := s.Get("lat")
	if !ok || p.Kind != KindHistogram {
		t.Fatalf("Get = %+v, %v", p, ok)
	}
	if p.Count != 6 || p.Sum != 1010 {
		t.Fatalf("count/sum = %d/%d", p.Count, p.Sum)
	}
	// v=0 -> le 0; v=1 -> le 1; v=2,3 -> le 3; v=4 -> le 7; v=1000 -> le 1023.
	want := []Bucket{{0, 1}, {1, 1}, {3, 2}, {7, 1}, {1023, 1}}
	if len(p.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", p.Buckets)
	}
	for i, b := range want {
		if p.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, p.Buckets[i], b)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(10)
	g.Set(5)
	h.Observe(1)
	before := r.Snapshot()

	c.Add(7)
	g.Set(9)
	h.Observe(1)
	h.Observe(100)
	d := r.Snapshot().Delta(before)

	if p, _ := d.Get("n"); p.Value != 7 {
		t.Fatalf("counter delta = %d, want 7", p.Value)
	}
	if p, _ := d.Get("g"); p.Value != 9 {
		t.Fatalf("gauge in delta = %d, want current 9", p.Value)
	}
	p, _ := d.Get("h")
	if p.Count != 2 || p.Sum != 101 {
		t.Fatalf("hist delta count/sum = %d/%d", p.Count, p.Sum)
	}
	// le=1 gained one observation, le=127 is new; the pre-existing count
	// at le=1 must not reappear.
	want := []Bucket{{1, 1}, {127, 1}}
	for i, b := range want {
		if p.Buckets[i] != b {
			t.Fatalf("delta bucket %d = %+v, want %+v", i, p.Buckets[i], b)
		}
	}

	// New series after `before` pass through whole.
	r.Counter("late").Add(3)
	d = r.Snapshot().Delta(before)
	if p, _ := d.Get("late"); p.Value != 3 {
		t.Fatalf("new-series delta = %d, want 3", p.Value)
	}
}

func TestPrometheusRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads_total", "dev", "0").Add(2)
	r.Counter("reads_total", "dev", "1").Add(5)
	r.Gauge("depth").Set(-3)
	h := r.Histogram("lat")
	h.Observe(1)
	h.Observe(2)
	out := r.Snapshot().Prometheus()

	for _, line := range []string{
		"# TYPE depth gauge",
		"depth -3",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="3"} 2`, // cumulative
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 3",
		"lat_count 2",
		"# TYPE reads_total counter",
		`reads_total{dev="0"} 2`,
		`reads_total{dev="1"} 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("prometheus output missing %q:\n%s", line, out)
		}
	}
	// One TYPE line per family, not per series.
	if strings.Count(out, "# TYPE reads_total") != 1 {
		t.Fatalf("duplicated TYPE line:\n%s", out)
	}
}

func TestExpvarRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "v").Add(4)
	r.Histogram("h").Observe(9)
	out := r.Snapshot().Expvar()
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, out)
	}
	if m[`c{k="v"}`] != float64(4) {
		t.Fatalf("expvar = %v", m)
	}
	hh, ok := m["h"].(map[string]any)
	if !ok || hh["count"] != float64(1) || hh["sum"] != float64(9) {
		t.Fatalf("expvar histogram = %v", m["h"])
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				if i%100 == 0 {
					r.Snapshot() // concurrent reads must be safe
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if p, _ := s.Get("c"); p.Value != 8000 {
		t.Fatalf("counter = %d, want 8000", p.Value)
	}
	if p, _ := s.Get("h"); p.Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", p.Count)
	}
}
