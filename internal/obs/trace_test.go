package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stepClock returns a deterministic clock advancing 1ms per call.
func stepClock() func() time.Duration {
	var ticks time.Duration
	return func() time.Duration {
		ticks += time.Millisecond
		return ticks
	}
}

// buildFixture records a small representative trace: a query with a
// compile stage and a task whose children cover the pipeline stages.
func buildFixture() *Tracer {
	tr := NewTracer()
	tr.SetNow(stepClock())
	q := tr.Start("query q6", StageQuery)
	c := q.Child("compile", StageCompile)
	c.SetInt("units", 1)
	c.End()
	u := q.Child("unit u1", StageUnit)
	task := u.Child("task u1:final", StageTask)
	sel := task.Child("row-select", StageRowSel)
	sel.SetInt("rows_in", 60175)
	sel.SetInt("rows_selected", 1176)
	sel.End()
	rd := task.Child("table-read", StageFlash)
	rd.AddInt("pages_read", 100)
	rd.AddInt("pages_read", 28)
	rd.End()
	task.Child("transform", StageTransform).End()
	sk := task.Child("swissknife AGGREGATE", StageSwissknife)
	sk.SetInt("rows_in", 1176)
	sk.End()
	task.End()
	u.End()
	q.Child("host-plan", StageHost).End()
	q.End()
	return tr
}

func TestTreeRender(t *testing.T) {
	tree := buildFixture().Tree()
	want := `query q6 [query] 17ms
  compile [compile] 1ms units=1
  unit u1 [unit] 11ms
    task u1:final [task] 9ms
      row-select [rowsel] 1ms rows_in=60175 rows_selected=1176
      table-read [flash] 1ms pages_read=128
      transform [transform] 1ms
      swissknife AGGREGATE [swissknife] 1ms rows_in=1176
  host-plan [host] 1ms
`
	if tree != want {
		t.Fatalf("tree render:\n%s\nwant:\n%s", tree, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	got := buildFixture().ChromeTrace()
	golden := filepath.Join("testdata", "chrome_trace.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("chrome trace diverged from golden:\n%s", got)
	}
}

func TestChromeTraceValidity(t *testing.T) {
	out := buildFixture().ChromeTrace()
	if !json.Valid(out) {
		t.Fatalf("ChromeTrace is not valid JSON:\n%s", out)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("events = %d, want 9", len(doc.TraceEvents))
	}
	lastTs := int64(-1)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < lastTs {
			t.Fatalf("events not sorted by ts: %d after %d", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		if ev.Dur < 0 {
			t.Fatalf("event %q has negative duration %d", ev.Name, ev.Dur)
		}
		if ev.Pid != 1 || ev.Tid < 1 {
			t.Fatalf("event %q pid/tid = %d/%d", ev.Name, ev.Pid, ev.Tid)
		}
	}
}

func TestUnfinishedSpanAndDoubleEnd(t *testing.T) {
	tr := NewTracer()
	tr.SetNow(stepClock())
	a := tr.Start("a", StageQuery) // never ended
	b := a.Child("b", StageTask)
	b.End()
	b.End() // second End keeps the first end time
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Fatalf("span %q negative duration %v", s.Name, s.Dur)
		}
	}
	if spans[1].Name != "b" || spans[1].Dur != time.Millisecond {
		t.Fatalf("b = %+v, want 1ms", spans[1])
	}
}

func TestSpanTidInheritance(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("distrib", StageQuery)
	shard := root.Child("shard 3", StageShard)
	shard.SetTid(5)
	child := shard.Child("query", StageQuery)
	sub := child.Child("task", StageTask)
	for _, s := range []*Span{child, sub} {
		if s.Tid != 5 {
			t.Fatalf("span %q tid = %d, want inherited 5", s.Name, s.Tid)
		}
	}
	if root.Tid != 1 {
		t.Fatalf("root tid = %d, want 1", root.Tid)
	}
}
