// Package obs is AQUOMAN's zero-dependency observability layer: a
// metrics registry (counters, gauges, power-of-two histograms — all
// atomic, safe under engine.SetParallelism and distrib workers) and a
// span-based query tracer that records one span per pipeline stage per
// Table Task.
//
// The registry renders snapshots as Prometheus text or expvar-style JSON
// and can serve both over HTTP; the tracer exports Chrome trace_event
// JSON (load it in chrome://tracing or https://ui.perfetto.dev) and a
// human-readable tree.
//
// Everything is nil-safe: a nil *Observer, *Registry, *Tracer or *Span
// turns every call into a no-op, so instrumented code needs no "is
// observability on?" branches.
package obs

// Pipeline stage names used as span stages (and Chrome trace categories).
// One query produces at least one span per stage it exercises: flash
// issue, Row Selector, Row Transformer, SQL Swissknife, host
// post-processing, and — for clustered runs — distrib shard/merge.
const (
	StageQuery      = "query"
	StageCompile    = "compile"
	StageUnit       = "unit"
	StageTask       = "task"
	StageFlash      = "flash"
	StageRowSel     = "rowsel"
	StageTransform  = "transform"
	StageSwissknife = "swissknife"
	StageSorter     = "sorter"
	StageHost       = "host"
	StageShard      = "shard"
	StageMerge      = "merge"
)

// Observer bundles a metrics registry and a tracer; it is the single
// handle threaded through the stack (flash device, Table-Task executor,
// host engine, distrib cluster).
type Observer struct {
	Reg    *Registry
	Tracer *Tracer
}

// New returns an Observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{Reg: NewRegistry(), Tracer: NewTracer()}
}

// Counter resolves a counter in the registry (nil-safe).
func (o *Observer) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name, labels...)
}

// Gauge resolves a gauge in the registry (nil-safe).
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name, labels...)
}

// Histogram resolves a histogram in the registry (nil-safe).
func (o *Observer) Histogram(name string, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, labels...)
}

// StartSpan opens a root span (nil-safe).
func (o *Observer) StartSpan(name, stage string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Start(name, stage)
}

// SpanUnder opens a span as a child of parent when parent is non-nil,
// and as a root span otherwise. Useful for components that may or may
// not be handed an enclosing span.
func (o *Observer) SpanUnder(parent *Span, name, stage string) *Span {
	if parent != nil {
		return parent.Child(name, stage)
	}
	return o.StartSpan(name, stage)
}
