package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter no-ops, which lets hot paths increment
// unconditionally whether or not observability is enabled.
type Counter struct {
	v atomic.Int64
	_ [7]int64 // pad to a cache line: counters often live in arrays
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value (DRAM footprint, queue occupancy).
type Gauge struct {
	v atomic.Int64
	_ [7]int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the histogram resolution: bucket i counts observations v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 takes v <= 0).
const histBuckets = 65

// Histogram accumulates int64 observations into power-of-two buckets.
// All updates are atomic; concurrent Observe calls never lock.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Merge folds o's observations into h (both sides may keep observing
// concurrently; the merge is per-field atomic). Nil receivers and nil
// arguments no-op.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := 0; i < histBuckets; i++ {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// MetricKind distinguishes snapshot points.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	return [...]string{"counter", "gauge", "histogram"}[k]
}

// Registry holds named metrics. Metric resolution (Counter/Gauge/
// Histogram) takes a lock; the returned handles update lock-free, so
// callers on hot paths resolve once and increment many times.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]MetricKind // family name -> kind (consistency check)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]MetricKind),
	}
}

// Label is one name/value pair of a metric series.
type Label struct{ K, V string }

// labelEscaper escapes label values per the Prometheus text exposition
// format 0.0.4: backslash, double quote, and line feed. Everything else
// (including tabs and non-ASCII UTF-8) passes through verbatim — Go's
// %q would escape those too, which exposition parsers read literally.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// EscapeLabelValue escapes v for use inside a quoted label value.
func EscapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// labelKey renders sorted labels as `{k="v",...}` ("" when empty).
func labelKey(labels []string) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	ls := make([]Label, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		ls = append(ls, Label{K: labels[i], V: labels[i+1]})
	}
	sort.Slice(ls, func(a, b int) bool { return ls[a].K < ls[b].K })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.K, EscapeLabelValue(l.V))
	}
	sb.WriteByte('}')
	return sb.String(), ls
}

func (r *Registry) checkKind(name string, k MetricKind) {
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, prev, k))
	}
	r.kinds[name] = k
}

// Counter returns (creating on first use) the counter series name{labels}.
// labels are alternating key, value strings. Nil registries return nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	lk, _ := labelKey(labels)
	key := name + lk
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, KindCounter)
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge series name{labels}.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	lk, _ := labelKey(labels)
	key := name + lk
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, KindGauge)
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram series
// name{labels}.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	lk, _ := labelKey(labels)
	key := name + lk
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, KindHistogram)
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{}
		r.hists[key] = h
	}
	return h
}

// splitKey recovers (family, rendered labels) from a series key.
func splitKey(key string) (string, string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}
