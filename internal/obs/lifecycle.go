package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// State names one phase of a query's lifecycle. Every nanosecond of a
// query's wall time should be attributable to exactly one state: the
// scheduler attributes queue wait, the table-task executor attributes
// per-stage CPU, the flash layer attributes device reads vs. page-cache
// hits vs. single-flight coalesce waits, and the server attributes
// result emission. The per-stage CPU states are *exclusive*: time a
// stage spends inside the flash layer is recorded as a flash state and
// subtracted from the enclosing stage, so the per-query sum of states
// approximates wall time instead of double counting.
type State int

const (
	StateQueueWait      State = iota // sched: admitted but waiting for an in-flight slot
	StateCompile                     // core: SQL/plan compilation
	StateRowSel                      // table task: row-selector predicate evaluation (CPU)
	StateRead                        // table task: column stream + gather decode (CPU)
	StateSystolic                    // table task: systolic row-transformer (CPU)
	StateSwissknife                  // table task: SQL Swissknife operator (CPU)
	StateSorter                      // table task: streaming sort/merge (CPU)
	StateHost                        // core: host-side engine execution (CPU)
	StateDeviceRead                  // flash: simulated NAND page reads (includes tR latency)
	StateCacheHit                    // flash: page served from the shared cache
	StateCoalesceWait                // flash: waiting on another query's in-flight read
	StateEmit                        // server: streaming the result to the client
	StateScatterWait                 // cluster: coordinator waiting on worker partials
	StateMerge                       // cluster: coordinator-side partial-result merge
	StateResultCacheHit              // server: whole result served from the query result cache
	NumStates                        // count sentinel, not a state
)

var stateNames = [NumStates]string{
	"queue_wait", "compile", "rowsel", "read", "systolic", "swissknife",
	"sorter", "host", "device_read", "cache_hit", "coalesce_wait", "emit",
	"scatter_wait", "merge", "result_cache_hit",
}

// String returns the snake_case state name used in metric labels, the
// slow-query log, and BENCH_prof.json.
func (s State) String() string {
	if s < 0 || s >= NumStates {
		return "unknown"
	}
	return stateNames[s]
}

// StateNames lists every state name in State order.
func StateNames() []string {
	out := make([]string, NumStates)
	copy(out, stateNames[:])
	return out
}

// Lifecycle accumulates per-state time for one query. All updates are
// atomic and a nil *Lifecycle no-ops on every method, so instrumented
// paths record unconditionally whether or not telemetry is attached.
//
// The nested counter tracks the total time attributed to *any* state;
// exclusive regions (Cursor.Mark, ExclusiveTimer) subtract the nested
// attribution that occurred inside their window, which is what keeps a
// page-cache coalesce wait from also counting as rowsel CPU.
type Lifecycle struct {
	ID     string
	start  time.Time
	wall   atomic.Int64 // frozen wall time in ns; 0 until Finish
	nested atomic.Int64 // total ns attributed across all states, minus debt
	debt   atomic.Int64 // ns double-attributed by concurrent adds (see below)
	states [NumStates]atomic.Int64
}

// NewLifecycle starts a recorder; wall time is measured from this call.
func NewLifecycle(id string) *Lifecycle {
	return &Lifecycle{ID: id, start: time.Now()}
}

// Add attributes d to state s (no-op for nil receivers or d <= 0).
func (lc *Lifecycle) Add(s State, d time.Duration) {
	if lc == nil || d <= 0 || s < 0 || s >= NumStates {
		return
	}
	lc.states[s].Add(int64(d))
	lc.nested.Add(int64(d))
}

// addExclusive closes an exclusive region whose remainder is r. A
// positive remainder is a normal Add. A negative remainder means an Add
// from outside this goroutine's call stack landed inside the window —
// a coalesced cache fill completing between Mark regions, a cluster
// worker attributing flash time while the coordinator holds a
// scatter-wait window — so the same nanoseconds were attributed twice.
// The overcount is banked as debt and subtracted from nested so the
// enclosing window is not charged for it a second time; Finish settles
// the debt by scaling states back down, keeping Σstates ≤ wall.
func (lc *Lifecycle) addExclusive(s State, r time.Duration) {
	if r >= 0 {
		lc.Add(s, r)
		return
	}
	lc.debt.Add(int64(-r))
	lc.nested.Add(int64(r))
}

// Timer starts an inclusive region: the returned func attributes the
// elapsed time to s. Use for leaf states that contain no instrumented
// sub-states (emit, device reads).
func (lc *Lifecycle) Timer(s State) func() {
	if lc == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { lc.Add(s, time.Since(t0)) }
}

// ExclusiveTimer starts an exclusive region: the returned func
// attributes the elapsed time minus whatever was attributed to other
// states during the window. Use for stages that call into instrumented
// layers (a host scan that reads flash, a swissknife op that sorts).
func (lc *Lifecycle) ExclusiveTimer(s State) func() {
	if lc == nil {
		return func() {}
	}
	t0 := time.Now()
	n0 := lc.nested.Load()
	return func() {
		lc.addExclusive(s, time.Since(t0)-time.Duration(lc.nested.Load()-n0))
	}
}

// Cursor walks one goroutine's timeline, attributing contiguous regions
// between Mark calls. Like ExclusiveTimer, each region excludes time
// already attributed to nested states inside it. A nil Lifecycle yields
// a nil Cursor whose methods no-op.
type Cursor struct {
	lc     *Lifecycle
	last   time.Time
	nested int64
}

// Cursor starts a timeline cursor at now.
func (lc *Lifecycle) Cursor() *Cursor {
	if lc == nil {
		return nil
	}
	return &Cursor{lc: lc, last: time.Now(), nested: lc.nested.Load()}
}

// Mark attributes the time since the previous Mark (or Cursor creation)
// to s, excluding nested attribution, and advances the cursor.
func (cu *Cursor) Mark(s State) {
	if cu == nil {
		return
	}
	now := time.Now()
	cu.lc.addExclusive(s, now.Sub(cu.last)-time.Duration(cu.lc.nested.Load()-cu.nested))
	cu.last = now
	cu.nested = cu.lc.nested.Load()
}

// Skip advances the cursor without attributing the elapsed region.
func (cu *Cursor) Skip() {
	if cu == nil {
		return
	}
	cu.last = time.Now()
	cu.nested = cu.lc.nested.Load()
}

// State returns the time attributed to s so far.
func (lc *Lifecycle) State(s State) time.Duration {
	if lc == nil || s < 0 || s >= NumStates {
		return 0
	}
	return time.Duration(lc.states[s].Load())
}

// Attributed returns the total time attributed across all states.
func (lc *Lifecycle) Attributed() time.Duration {
	if lc == nil {
		return 0
	}
	return time.Duration(lc.nested.Load())
}

// Finish freezes the wall clock (first call wins) and returns it. The
// first call also settles any attribution debt: when concurrent adds
// landed inside exclusive windows, the per-state totals overcount the
// attributed total by exactly the banked debt, so each state is scaled
// down proportionally until Σstates equals Attributed() again. This is
// what keeps the per-query breakdown summing to ≤ wall time even when
// cache fills or cluster workers attribute from other goroutines.
func (lc *Lifecycle) Finish() time.Duration {
	if lc == nil {
		return 0
	}
	if lc.wall.CompareAndSwap(0, int64(time.Since(lc.start))) {
		lc.settle()
	}
	return time.Duration(lc.wall.Load())
}

// settle reconciles Σstates with the attributed total (see Finish).
func (lc *Lifecycle) settle() {
	debt := lc.debt.Load()
	if debt <= 0 {
		return
	}
	attributed := lc.nested.Load()
	gross := attributed + debt
	if gross <= 0 || attributed < 0 {
		attributed = 0
	}
	for s := range lc.states {
		v := lc.states[s].Load()
		if v <= 0 {
			continue
		}
		keep := int64(0)
		if attributed > 0 {
			keep = int64(float64(v) * float64(attributed) / float64(gross))
		}
		lc.states[s].Add(keep - v)
	}
}

// Wall returns the frozen wall time, or time since start before Finish.
func (lc *Lifecycle) Wall() time.Duration {
	if lc == nil {
		return 0
	}
	if w := lc.wall.Load(); w != 0 {
		return time.Duration(w)
	}
	return time.Since(lc.start)
}

// Coverage is Attributed/Wall in [0, ~1]: the fraction of wall time
// explained by named states (0 when wall is 0).
func (lc *Lifecycle) Coverage() float64 {
	if lc == nil {
		return 0
	}
	w := lc.Wall()
	if w <= 0 {
		return 0
	}
	return float64(lc.Attributed()) / float64(w)
}

// Breakdown returns state name -> attributed nanoseconds for every
// state (zero-valued states included, so consumers see a stable key
// set). Nil receivers return nil.
func (lc *Lifecycle) Breakdown() map[string]int64 {
	if lc == nil {
		return nil
	}
	m := make(map[string]int64, NumStates)
	for s := State(0); s < NumStates; s++ {
		m[s.String()] = lc.states[s].Load()
	}
	return m
}

// ObserveInto records the finished lifecycle into reg: wall time into
// the query_latency_ns histogram, each nonzero state into
// query_state_ns{state=...}, and attributed/wall totals into counters
// so aggregate coverage is derivable from /metrics alone.
func (lc *Lifecycle) ObserveInto(reg *Registry) {
	if lc == nil || reg == nil {
		return
	}
	wall := lc.Finish()
	reg.Histogram("query_latency_ns").Observe(int64(wall))
	for s := State(0); s < NumStates; s++ {
		if v := lc.states[s].Load(); v > 0 {
			reg.Histogram("query_state_ns", "state", s.String()).Observe(v)
		}
	}
	reg.Counter("query_wall_ns_total").Add(int64(wall))
	reg.Counter("query_attributed_ns_total").Add(lc.nested.Load())
}

// lifecycleKey carries a *Lifecycle through a context.
type lifecycleKey struct{}

// WithLifecycle attaches lc to ctx (Background when ctx is nil) so the
// scheduler, flash layer, and executor can attribute into it.
func WithLifecycle(ctx context.Context, lc *Lifecycle) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if lc == nil {
		return ctx
	}
	return context.WithValue(ctx, lifecycleKey{}, lc)
}

// LifecycleFrom returns the lifecycle attached to ctx, or nil. A nil
// ctx is fine.
func LifecycleFrom(ctx context.Context) *Lifecycle {
	if ctx == nil {
		return nil
	}
	lc, _ := ctx.Value(lifecycleKey{}).(*Lifecycle)
	return lc
}
