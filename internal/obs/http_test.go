package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "path", "/").Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, `hits_total{path="/"} 7`) {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, ct = get("/debug/vars")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/debug/vars content-type %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
}

// TestHandlerIndex covers the / index page (it lists the mounted
// endpoints) and the 404 for unknown paths.
func TestHandlerIndex(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET / = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "/metrics") || !strings.Contains(string(body), "/debug/vars") {
		t.Fatalf("index does not list mounted endpoints:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}
