package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Bucket is one histogram bucket in a snapshot: Count observations with
// value <= Le and > the previous bucket's Le (non-cumulative).
type Bucket struct {
	Le    int64 // inclusive upper bound (2^i - 1); bucket 0 has Le 0
	Count int64
}

// Point is one metric series frozen at snapshot time.
type Point struct {
	Name   string // family name, without labels
	Labels string // rendered `{k="v",...}`, "" when unlabeled
	Kind   MetricKind
	Value  int64 // counter / gauge value
	// Histogram fields (Kind == KindHistogram):
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Key returns the full series identity (name plus labels).
func (p Point) Key() string { return p.Name + p.Labels }

// Snapshot is a point-in-time copy of a registry, sorted by series key.
type Snapshot struct {
	Points []Point
}

// Snapshot freezes every series. Safe to call concurrently with updates;
// each series is read atomically (histogram fields may be mutually
// slightly torn under concurrent writes, as with any lock-free sampling).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	pts := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for key, c := range r.counters {
		name, labels := splitKey(key)
		pts = append(pts, Point{Name: name, Labels: labels, Kind: KindCounter, Value: c.Value()})
	}
	for key, g := range r.gauges {
		name, labels := splitKey(key)
		pts = append(pts, Point{Name: name, Labels: labels, Kind: KindGauge, Value: g.Value()})
	}
	for key, h := range r.hists {
		name, labels := splitKey(key)
		p := Point{Name: name, Labels: labels, Kind: KindHistogram,
			Count: h.count.Load(), Sum: h.sum.Load()}
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			le := int64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			p.Buckets = append(p.Buckets, Bucket{Le: le, Count: n})
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].Key() < pts[b].Key() })
	return Snapshot{Points: pts}
}

// Get looks up one series by family name and alternating label key/value
// pairs.
func (s Snapshot) Get(name string, labels ...string) (Point, bool) {
	lk, _ := labelKey(labels)
	key := name + lk
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].Key() >= key })
	if i < len(s.Points) && s.Points[i].Key() == key {
		return s.Points[i], true
	}
	return Point{}, false
}

// Delta returns s minus prev: counters and histograms subtract the
// matching series in prev (series absent from prev pass through whole);
// gauges keep their current value. Use it to scope a long-lived
// registry's counters to one query.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	old := make(map[string]Point, len(prev.Points))
	for _, p := range prev.Points {
		old[p.Key()] = p
	}
	out := Snapshot{Points: make([]Point, 0, len(s.Points))}
	for _, p := range s.Points {
		q, ok := old[p.Key()]
		if ok {
			switch p.Kind {
			case KindCounter:
				p.Value -= q.Value
			case KindHistogram:
				p.Count -= q.Count
				p.Sum -= q.Sum
				p.Buckets = subBuckets(p.Buckets, q.Buckets)
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}

func subBuckets(cur, prev []Bucket) []Bucket {
	old := make(map[int64]int64, len(prev))
	for _, b := range prev {
		old[b.Le] = b.Count
	}
	var out []Bucket
	for _, b := range cur {
		b.Count -= old[b.Le]
		if b.Count != 0 {
			out = append(out, b)
		}
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q <= 1) of a histogram
// point by linear interpolation inside the power-of-two bucket that
// holds the target rank. Returns 0 for empty or non-histogram points.
func (p Point) Quantile(q float64) float64 {
	if p.Count <= 0 || len(p.Buckets) == 0 {
		return 0
	}
	rank := q * float64(p.Count)
	cum := float64(0)
	lo := float64(0) // exclusive lower bound of the current bucket
	for _, b := range p.Buckets {
		prev := cum
		cum += float64(b.Count)
		if cum >= rank {
			hi := float64(b.Le)
			frac := (rank - prev) / float64(b.Count)
			return lo + (hi-lo)*frac
		}
		lo = float64(b.Le)
	}
	return lo
}

// exportQuantiles are the quantile lines emitted for every histogram.
var exportQuantiles = []float64{0.5, 0.95, 0.99}

// quantileFamily names the sibling summary family for a histogram and
// the factor its values are scaled by: unit-suffixed duration families
// export in seconds (query_latency_ns -> query_latency_seconds), so
// dashboards and the serve smoke test get standard units; anything else
// exports unscaled under <name>_quantiles.
func quantileFamily(name string) (string, float64) {
	switch {
	case strings.HasSuffix(name, "_ns"):
		return strings.TrimSuffix(name, "_ns") + "_seconds", 1e-9
	case strings.HasSuffix(name, "_ms"):
		return strings.TrimSuffix(name, "_ms") + "_seconds", 1e-3
	default:
		return name + "_quantiles", 1
	}
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # TYPE comments for every family (counters,
// gauges, histograms), cumulative histogram buckets ending in
// le="+Inf", and — after each histogram family — a derived summary
// family with p50/p95/p99 quantile lines estimated from the buckets.
func (s Snapshot) Prometheus() string {
	var sb strings.Builder
	var pending []string // quantile lines for the current histogram family
	pendingName := ""
	flush := func() {
		if len(pending) == 0 {
			return
		}
		fmt.Fprintf(&sb, "# TYPE %s summary\n", pendingName)
		for _, l := range pending {
			sb.WriteString(l)
		}
		pending = pending[:0]
	}
	lastFamily := ""
	for _, p := range s.Points {
		if p.Name != lastFamily {
			flush()
			fmt.Fprintf(&sb, "# TYPE %s %s\n", p.Name, p.Kind)
			lastFamily = p.Name
		}
		switch p.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(&sb, "%s%s %d\n", p.Name, p.Labels, p.Value)
		case KindHistogram:
			cum := int64(0)
			for _, b := range p.Buckets {
				cum += b.Count
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", p.Name, withLabel(p.Labels, "le", fmt.Sprint(b.Le)), cum)
			}
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", p.Name, withLabel(p.Labels, "le", "+Inf"), p.Count)
			fmt.Fprintf(&sb, "%s_sum%s %d\n", p.Name, p.Labels, p.Sum)
			fmt.Fprintf(&sb, "%s_count%s %d\n", p.Name, p.Labels, p.Count)
			qname, scale := quantileFamily(p.Name)
			pendingName = qname
			for _, q := range exportQuantiles {
				pending = append(pending, fmt.Sprintf("%s%s %g\n",
					qname, withLabel(p.Labels, "quantile", fmt.Sprint(q)), p.Quantile(q)*scale))
			}
			pending = append(pending,
				fmt.Sprintf("%s_sum%s %g\n", qname, p.Labels, float64(p.Sum)*scale),
				fmt.Sprintf("%s_count%s %d\n", qname, p.Labels, p.Count))
		}
	}
	flush()
	return sb.String()
}

// withLabel inserts one extra label into an already-rendered label set.
func withLabel(labels, k, v string) string {
	extra := fmt.Sprintf(`%s="%s"`, k, EscapeLabelValue(v))
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Expvar renders the snapshot as an expvar-style JSON object keyed by
// series (histograms become {count, sum, buckets} objects). Keys are
// sorted, so output is deterministic.
func (s Snapshot) Expvar() string {
	m := make(map[string]any, len(s.Points))
	for _, p := range s.Points {
		switch p.Kind {
		case KindCounter, KindGauge:
			m[p.Key()] = p.Value
		case KindHistogram:
			bm := make(map[string]int64, len(p.Buckets))
			for _, b := range p.Buckets {
				bm[fmt.Sprint(b.Le)] = b.Count
			}
			m[p.Key()] = map[string]any{"count": p.Count, "sum": p.Sum, "buckets": bm}
		}
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(out)
}
