package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aquoman/internal/obs"
)

// ErrQueueFull is returned by Submit when the pending queue is at its
// configured depth; the caller should back off or shed load.
var ErrQueueFull = errors.New("sched: queue full")

// ErrClosed is returned by Submit after Close has been called.
var ErrClosed = errors.New("sched: scheduler closed")

// Config sizes the scheduler's admission control.
type Config struct {
	// MaxInFlight is the number of queries executed concurrently
	// (worker goroutines). Values < 1 default to 4.
	MaxInFlight int
	// QueueDepth is the capacity of the pending queue behind the
	// in-flight slots. Values < 1 default to 64.
	QueueDepth int
	// Tenants, when non-nil, switches the scheduler from the single
	// FIFO queue to per-tenant weighted-fair scheduling with two
	// priority lanes and per-tenant admission quotas (see TenantConfig,
	// SubmitOpts). Tenants not listed here are created on first
	// submission with the DefaultTenant configuration. An empty non-nil
	// map enables fair scheduling with every tenant on DefaultTenant.
	Tenants map[string]TenantConfig
	// DefaultTenant configures tenants absent from Tenants. The zero
	// value means weight 1 with no quotas.
	DefaultTenant TenantConfig

	// AdmitHook, when set, runs as a job leaves the queue for an
	// in-flight slot and may derive the context its work receives. The
	// write path uses it to stamp every query with the catalog epoch at
	// admission, pinning the snapshot the whole execution reads.
	AdmitHook func(ctx context.Context) context.Context
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	return c
}

// Job is one unit of admitted work: typically a full query, executed on a
// worker goroutine. The returned value is handed to Ticket.Wait verbatim.
type Job func() (interface{}, error)

// JobCtx is a Job that receives the submission's context so the work can
// honour cancellation cooperatively. The scheduler itself also uses the
// context: a job whose context dies while still queued is skipped (its
// ticket fails with the context error) without ever occupying an
// in-flight slot.
type JobCtx func(ctx context.Context) (interface{}, error)

// Ticket tracks one submitted job through the scheduler.
type Ticket struct {
	done   chan struct{}
	result interface{}
	err    error
	round  atomic.Int64
}

// Wait blocks until the job has run (or the scheduler rejected it) and
// returns its result. Wait may be called from multiple goroutines.
func (t *Ticket) Wait() (interface{}, error) {
	<-t.done
	return t.result, t.err
}

// Done returns a channel closed when the job has completed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Round reports the scheduling round (global grant sequence number,
// starting at 1) at which the job began executing; 0 while it is still
// queued. Fairness tests assert that short queries' rounds stay bounded
// even while long queries occupy in-flight slots.
func (t *Ticket) Round() int64 { return t.round.Load() }

// Scheduler is an admission-controlled concurrent executor: at most
// MaxInFlight jobs run at once, at most QueueDepth wait behind them, and
// anything beyond that is rejected with ErrQueueFull.
type Scheduler struct {
	cfg   Config
	queue chan *submission
	fq    *fairQueue // non-nil when Config.Tenants enables fair scheduling
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	rounds atomic.Int64

	inflight   *obs.Gauge
	queued     *obs.Gauge
	queueDepth *obs.Gauge // same occupancy as queued, canonical telemetry name
	queueCap   *obs.Gauge
	queueWait  *obs.Histogram
	submitted  *obs.Counter
	rejected   *obs.Counter
	completed  *obs.Counter
	panicked   *obs.Counter
	canceled   *obs.Counter
}

type submission struct {
	job      Job
	jobCtx   JobCtx
	ctx      context.Context // nil = never cancels
	ticket   *Ticket
	enqueued time.Time
}

// NewScheduler starts cfg.MaxInFlight worker goroutines and returns the
// scheduler. Call Close to drain and stop them.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg}
	worker := s.worker
	if cfg.Tenants != nil {
		s.fq = newFairQueue(cfg)
		worker = s.fairWorker
	} else {
		s.queue = make(chan *submission, cfg.QueueDepth)
	}
	s.wg.Add(cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		go worker()
	}
	return s
}

// Config reports the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Observe binds queue/in-flight gauges and admission counters into reg.
func (s *Scheduler) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight = reg.Gauge("sched_inflight")
	s.queued = reg.Gauge("sched_queued")
	s.queueDepth = reg.Gauge("sched_queue_depth")
	s.queueCap = reg.Gauge("sched_queue_capacity")
	s.queueCap.Set(int64(s.cfg.QueueDepth))
	s.queueWait = reg.Histogram("sched_queue_wait_ns")
	s.submitted = reg.Counter("sched_submitted_total")
	s.rejected = reg.Counter("sched_rejected_total")
	s.completed = reg.Counter("sched_completed_total")
	s.panicked = reg.Counter("sched_panics_total")
	s.canceled = reg.Counter("sched_canceled_total")
	if s.fq != nil {
		s.fq.observe(reg)
	}
}

// Submit enqueues job without blocking. It returns ErrQueueFull when the
// pending queue is at capacity and ErrClosed after Close.
func (s *Scheduler) Submit(job Job) (*Ticket, error) {
	sub := &submission{job: job, ticket: &Ticket{done: make(chan struct{})}}
	if s.fq != nil {
		return s.fairEnqueue(sub, SubmitOpts{})
	}
	return s.enqueue(sub)
}

// SubmitCtx is Submit with a context: the job receives ctx when it runs,
// and if ctx dies while the job is still queued the worker skips it (the
// ticket fails with the context error, and no in-flight slot is spent).
// A nil ctx never cancels. Admission itself does not block, so ctx only
// gates queue-wait and execution, not the Submit call.
func (s *Scheduler) SubmitCtx(ctx context.Context, job JobCtx) (*Ticket, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sub := &submission{jobCtx: job, ctx: ctx, ticket: &Ticket{done: make(chan struct{})}}
	if s.fq != nil {
		return s.fairEnqueue(sub, SubmitOpts{})
	}
	return s.enqueue(sub)
}

func (s *Scheduler) enqueue(sub *submission) (*Ticket, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sub.enqueued = time.Now()
	select {
	case s.queue <- sub:
		s.submitted.Inc()
		s.queued.Add(1)
		s.queueDepth.Add(1)
		return sub.ticket, nil
	default:
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
}

// SubmitWait enqueues job, blocking while the queue is full. It only
// fails with ErrClosed. Used by convenience paths (DB.RunConcurrent)
// where backpressure should stall the producer rather than shed load.
func (s *Scheduler) SubmitWait(job Job) (*Ticket, error) {
	sub := &submission{job: job, ticket: &Ticket{done: make(chan struct{})}}
	if s.fq != nil {
		return s.fairEnqueue(sub, SubmitOpts{Wait: true})
	}
	return s.enqueueWait(sub)
}

// SubmitWaitCtx is SubmitWait with a context: a caller stalled on a full
// queue unblocks with ctx's error when ctx dies, and a job still queued
// when ctx dies is skipped by the workers. A nil ctx never cancels.
func (s *Scheduler) SubmitWaitCtx(ctx context.Context, job JobCtx) (*Ticket, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sub := &submission{jobCtx: job, ctx: ctx, ticket: &Ticket{done: make(chan struct{})}}
	if s.fq != nil {
		return s.fairEnqueue(sub, SubmitOpts{Wait: true})
	}
	return s.enqueueWait(sub)
}

func (s *Scheduler) enqueueWait(sub *submission) (*Ticket, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	// A blocking send is safe here: Close needs the write lock to close the
	// channel, so the channel cannot close under us, and workers keep
	// draining (they take no locks), so the send eventually completes.
	// A nil submission context leaves done nil, and a receive from a nil
	// channel blocks forever — exactly the "never cancels" semantics.
	var done <-chan struct{}
	if sub.ctx != nil {
		done = sub.ctx.Done()
	}
	sub.enqueued = time.Now()
	select {
	case s.queue <- sub:
		s.submitted.Inc()
		s.queued.Add(1)
		s.queueDepth.Add(1)
		return sub.ticket, nil
	case <-done:
		s.rejected.Inc()
		return nil, sub.ctx.Err()
	}
}

// Rounds reports the global grant sequence: the number of jobs that have
// begun executing.
func (s *Scheduler) Rounds() int64 { return s.rounds.Load() }

// Close stops admission, drains already-queued jobs, and waits for all
// workers to exit. Safe to call once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.fq == nil {
		close(s.queue)
	}
	s.mu.Unlock()
	if s.fq != nil {
		s.fq.close()
	}
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for sub := range s.queue {
		s.queued.Add(-1)
		s.queueDepth.Add(-1)
		wait := time.Since(sub.enqueued)
		s.queueWait.Observe(int64(wait))
		obs.LifecycleFrom(sub.ctx).Add(obs.StateQueueWait, wait)
		// A job whose context died while queued never runs: it would only
		// burn an in-flight slot (and simulated flash bandwidth) producing
		// a result nobody is waiting on.
		if sub.ctx != nil {
			if err := sub.ctx.Err(); err != nil {
				sub.ticket.err = err
				s.canceled.Inc()
				close(sub.ticket.done)
				continue
			}
		}
		s.inflight.Add(1)
		sub.ticket.round.Store(s.rounds.Add(1))
		// Dispatch glue around the job (facade config setup, panic guard)
		// is host-side work no inner timer claims; the exclusive window
		// attributes only that remainder.
		endHost := obs.LifecycleFrom(sub.ctx).ExclusiveTimer(obs.StateHost)
		s.run(sub)
		endHost()
		s.inflight.Add(-1)
		s.completed.Inc()
		close(sub.ticket.done)
	}
}

// run executes one job, converting a panic into an error on the ticket so
// a misbehaving query cannot take down the scheduler's worker pool.
func (s *Scheduler) run(sub *submission) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked.Inc()
			sub.ticket.err = fmt.Errorf("sched: query panicked: %v", r)
		}
	}()
	// Admission stamp: the hook sees the context exactly once, as the
	// job takes its in-flight slot (both worker loops land here).
	if s.cfg.AdmitHook != nil {
		ctx := sub.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		sub.ctx = s.cfg.AdmitHook(ctx)
	}
	if sub.jobCtx != nil {
		sub.ticket.result, sub.ticket.err = sub.jobCtx(sub.ctx)
		return
	}
	sub.ticket.result, sub.ticket.err = sub.job()
}
