package sched

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

const testPage = 8192

// mirror is the oracle backing store for cache property tests: a plain
// map the tests mutate directly, standing in for the flash device.
type mirror struct {
	mu    sync.Mutex
	pages map[string][]byte // key: file#page
	reads atomic.Int64
}

func newMirror() *mirror { return &mirror{pages: make(map[string][]byte)} }

func (m *mirror) key(file string, page int64) string {
	return fmt.Sprintf("%s#%d", file, page)
}

func (m *mirror) set(file string, page int64, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages[m.key(file, page)] = data
}

func (m *mirror) read(file string, page int64) func() ([]byte, error) {
	return func() ([]byte, error) {
		m.reads.Add(1)
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.pages[m.key(file, page)], nil
	}
}

// The cache must never hold more bytes than its budget, across a
// randomized trace of reads over a working set much larger than the
// budget, and every eviction must be accounted.
func TestCacheBudgetNeverExceeded(t *testing.T) {
	const budget = 10 * testPage
	c := NewPageCache(budget)
	m := newMirror()
	rng := rand.New(rand.NewSource(7))
	for file := 0; file < 4; file++ {
		for page := int64(0); page < 32; page++ {
			data := make([]byte, testPage)
			rng.Read(data)
			m.set(fmt.Sprintf("f%d", file), page, data)
		}
	}
	for i := 0; i < 5000; i++ {
		file := fmt.Sprintf("f%d", rng.Intn(4))
		page := int64(rng.Intn(32))
		if _, err := c.getPage(nil, "", file, page, m.read(file, page)); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("op %d: resident %d bytes exceeds budget %d", i, st.Bytes, budget)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("working set 8x the budget produced no evictions")
	}
	if st.Entries*testPage != st.Bytes {
		t.Fatalf("entries %d inconsistent with bytes %d", st.Entries, st.Bytes)
	}
}

// For a randomized trace of reads interleaved with writes (mutate the
// backing store, then invalidate — the flash ordering), every cached read
// must return exactly the bytes an uncached read would.
func TestCacheReadEquivalence(t *testing.T) {
	c := NewPageCache(6 * testPage)
	m := newMirror()
	rng := rand.New(rand.NewSource(42))
	const files, pages = 3, 16
	fill := func(file string, page int64) {
		data := make([]byte, testPage)
		rng.Read(data)
		m.set(file, page, data)
	}
	for f := 0; f < files; f++ {
		for p := int64(0); p < pages; p++ {
			fill(fmt.Sprintf("f%d", f), p)
		}
	}
	for i := 0; i < 8000; i++ {
		file := fmt.Sprintf("f%d", rng.Intn(files))
		page := int64(rng.Intn(pages))
		switch rng.Intn(10) {
		case 0: // overwrite one page
			fill(file, page)
			c.invalidatePages("", file, page, page)
		case 1: // rewrite a whole file
			for p := int64(0); p < pages; p++ {
				fill(file, p)
			}
			c.invalidateFile("", file)
		default:
			got, err := c.getPage(nil, "", file, page, m.read(file, page))
			if err != nil {
				t.Fatal(err)
			}
			want, _ := m.read(file, page)()
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: %s page %d: cached bytes diverge from backing store", i, file, page)
			}
		}
	}
	if st := c.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("trace exercised no cache activity: %+v", st)
	}
}

// Concurrent misses on one page must coalesce into exactly one backing
// read (single-flight), with every waiter receiving the same bytes.
func TestCacheSingleFlight(t *testing.T) {
	c := NewPageCache(4 * testPage)
	want := bytes.Repeat([]byte{0xab}, testPage)
	gate := make(chan struct{})
	var reads atomic.Int64
	read := func() ([]byte, error) {
		reads.Add(1)
		<-gate // hold the flight open until all goroutines have piled in
		return want, nil
	}
	const workers = 16
	var ready, done sync.WaitGroup
	ready.Add(workers)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			ready.Done()
			got, err := c.getPage(nil, "", "f", 3, read)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Error("waiter got wrong bytes")
			}
		}()
	}
	ready.Wait()
	close(gate)
	done.Wait()
	if n := reads.Load(); n != 1 {
		t.Fatalf("%d backing reads for one page, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", st.Hits, st.Misses, workers-1)
	}
}

// A failed read must propagate its error to every flight waiter and must
// not populate the cache: the next read retries the device.
func TestCacheFailedReadNotCached(t *testing.T) {
	c := NewPageCache(4 * testPage)
	boom := errors.New("injected")
	var reads atomic.Int64
	fail := func() ([]byte, error) { reads.Add(1); return nil, boom }
	if _, err := c.getPage(nil, "", "f", 0, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed read left %d entries resident", st.Entries)
	}
	// The page is readable once the device recovers.
	want := bytes.Repeat([]byte{1}, testPage)
	got, err := c.getPage(nil, "", "f", 0, func() ([]byte, error) { return want, nil })
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("recovered read: %v", err)
	}
	if reads.Load() != 1 {
		t.Fatalf("fail path read %d times, want 1", reads.Load())
	}
	// And now it is cached.
	if _, err := c.getPage(nil, "", "f", 0, fail); err != nil {
		t.Fatalf("cached read consulted the failing device: %v", err)
	}
}

// An invalidation that lands while a read is in flight must win: the
// flight's data is returned to its waiters but not inserted (it may
// predate the write that triggered the invalidation).
func TestCacheStaleFillDiscarded(t *testing.T) {
	c := NewPageCache(4 * testPage)
	stale := bytes.Repeat([]byte{0xde}, testPage)
	inFlight := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan []byte, 1)
	go func() {
		got, _ := c.getPage(nil, "", "f", 0, func() ([]byte, error) {
			close(inFlight)
			<-gate
			return stale, nil
		})
		done <- got
	}()
	<-inFlight
	c.invalidatePages("", "f", 0, 0) // a write races with the read
	close(gate)
	if got := <-done; !bytes.Equal(got, stale) {
		t.Fatal("flight waiter must still see the read's bytes")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatal("stale fill was inserted despite invalidation")
	}
	// The next read must go to the device (and may cache the fresh copy).
	fresh := bytes.Repeat([]byte{0xf0}, testPage)
	var reads atomic.Int64
	got, err := c.getPage(nil, "", "f", 0, func() ([]byte, error) { reads.Add(1); return fresh, nil })
	if err != nil || !bytes.Equal(got, fresh) || reads.Load() != 1 {
		t.Fatalf("post-invalidation read: err=%v reads=%d", err, reads.Load())
	}
}

// Partitions share the budget but never alias: the same file/page name in
// two partitions holds independent data.
func TestCachePartitionIsolation(t *testing.T) {
	c := NewPageCache(8 * testPage)
	a, b := c.Partition("dev0"), c.Partition("dev1")
	da := bytes.Repeat([]byte{0xaa}, testPage)
	db := bytes.Repeat([]byte{0xbb}, testPage)
	if got, _ := a.GetPage(nil, "lineitem/l_qty.dat", 0, func() ([]byte, error) { return da, nil }); !bytes.Equal(got, da) {
		t.Fatal("partition dev0 read wrong bytes")
	}
	if got, _ := b.GetPage(nil, "lineitem/l_qty.dat", 0, func() ([]byte, error) { return db, nil }); !bytes.Equal(got, db) {
		t.Fatal("partition dev1 aliased dev0's page")
	}
	// Both reside under one budget.
	if st := c.Stats(); st.Entries != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 2 entries / 2 misses", st)
	}
	// Invalidating dev0's file must not touch dev1's.
	a.InvalidateFile("lineitem/l_qty.dat")
	if got, _ := b.GetPage(nil, "lineitem/l_qty.dat", 0, func() ([]byte, error) { t.Fatal("dev1 page was invalidated"); return nil, nil }); !bytes.Equal(got, db) {
		t.Fatal("dev1 lost its page")
	}
}

// LRU order: the least recently used page is evicted first.
func TestCacheLRUEviction(t *testing.T) {
	c := NewPageCache(2 * testPage)
	read := func(b byte) func() ([]byte, error) {
		return func() ([]byte, error) { return bytes.Repeat([]byte{b}, testPage), nil }
	}
	mustGet := func(file string, fn func() ([]byte, error)) {
		t.Helper()
		if _, err := c.getPage(nil, "", file, 0, fn); err != nil {
			t.Fatal(err)
		}
	}
	mustGet("a", read(1))
	mustGet("b", read(2))
	mustGet("a", read(1)) // touch a: b becomes LRU
	mustGet("c", read(3)) // evicts b
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	mustGet("a", read(1)) // still resident
	if got := c.Stats(); got.Hits != st.Hits+1 {
		t.Fatal("a was evicted instead of b")
	}
	mustGet("b", read(2)) // must miss
	if got := c.Stats(); got.Misses != st.Misses+1 {
		t.Fatal("b survived eviction")
	}
}

// A cache with a zero budget still deduplicates concurrent reads but
// keeps nothing resident.
func TestCacheZeroBudget(t *testing.T) {
	c := NewPageCache(0)
	data := bytes.Repeat([]byte{9}, testPage)
	for i := 0; i < 3; i++ {
		got, err := c.getPage(nil, "", "f", 0, func() ([]byte, error) { return data, nil })
		if err != nil || !bytes.Equal(got, data) {
			t.Fatal("read through zero-budget cache failed")
		}
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Misses != 3 {
		t.Fatalf("zero-budget cache retained state: %+v", st)
	}
}
