package sched_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"aquoman/internal/faults"
	"aquoman/internal/flash"
	"aquoman/internal/sched"
)

func fillFile(t *testing.T, dev *flash.Device, name string, size int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(name))))
	data := make([]byte, size)
	rng.Read(data)
	f := dev.Create(name)
	f.Append(data, flash.Host)
	return data
}

// Single-flight through the real device: N goroutines reading the same
// page region concurrently must cost exactly one device page read (the
// flash per-requester stats are the witness, per the issue).
func TestSingleFlightDeviceStats(t *testing.T) {
	dev := flash.NewDevice()
	want := fillFile(t, dev, "tab/c.dat", flash.PageSize)
	dev.SetPageCache(sched.NewPageCache(16 * flash.PageSize))
	before := dev.Stats()

	f, err := dev.Open("tab/c.dat")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, flash.PageSize)
			n, err := f.ReadAt(buf, 0, flash.Aquoman)
			if err != nil || n != flash.PageSize {
				t.Errorf("read: n=%d err=%v", n, err)
				return
			}
			if !bytes.Equal(buf, want) {
				t.Error("reader got wrong bytes")
			}
		}()
	}
	wg.Wait()
	delta := dev.Stats().Sub(before)
	if got := delta.PagesRead[flash.Aquoman]; got != 1 {
		t.Fatalf("device served %d page reads for %d concurrent readers, want 1", got, workers)
	}
}

// Randomized reads and writes through a cached device must be
// byte-identical to an uncached shadow copy: WriteAt/Append invalidation
// keeps the cache coherent.
func TestCachedDeviceReadEquivalence(t *testing.T) {
	dev := flash.NewDevice()
	shadow := fillFile(t, dev, "tab/c.dat", 10*flash.PageSize+123)
	dev.SetPageCache(sched.NewPageCache(4 * flash.PageSize))
	f, err := dev.Open("tab/c.dat")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		off := int64(rng.Intn(len(shadow)))
		n := 1 + rng.Intn(3*flash.PageSize)
		if off+int64(n) > int64(len(shadow)) {
			n = len(shadow) - int(off)
		}
		if rng.Intn(8) == 0 {
			patch := make([]byte, n)
			rng.Read(patch)
			f.WriteAt(patch, off, flash.Host)
			copy(shadow[off:], patch)
			continue
		}
		buf := make([]byte, n)
		got, err := f.ReadAt(buf, off, flash.Host)
		if err != nil {
			t.Fatal(err)
		}
		if got != n || !bytes.Equal(buf[:got], shadow[off:off+int64(got)]) {
			t.Fatalf("op %d: read [%d,+%d) diverged from shadow", i, off, n)
		}
	}
}

// Fault interaction, both directions:
//   - a faulted read must NOT populate the cache (the error reaches the
//     caller and the next read retries the device);
//   - a read served from cache must NOT consume an injected fault (the
//     injector never sees it).
func TestCacheFaultInteraction(t *testing.T) {
	dev := flash.NewDevice()
	want := fillFile(t, dev, "tab/c.dat", flash.PageSize)
	dev.SetPageCache(sched.NewPageCache(16 * flash.PageSize))
	dev.SetRetryPolicy(flash.RetryPolicy{Budget: 0})

	inj := faults.New(faults.Config{})
	failing := true
	inj.Hook = func(file string, page int64, who flash.Requester, attempt int) (faults.Kind, bool) {
		if failing && strings.HasPrefix(file, "tab/") {
			return faults.Permanent, true
		}
		return 0, false
	}
	dev.SetFaults(inj)

	f, err := dev.Open("tab/c.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, flash.PageSize)
	var fe *faults.Error
	if _, err := f.ReadAt(buf, 0, flash.Host); !errors.As(err, &fe) {
		t.Fatalf("faulted read returned %v, want *faults.Error", err)
	}
	// The failure must not be resident: with faults cleared the same read
	// must hit the device (one more page read) and succeed.
	failing = false
	before := dev.Stats()
	if _, err := f.ReadAt(buf, 0, flash.Host); err != nil || !bytes.Equal(buf, want) {
		t.Fatalf("post-fault read: %v", err)
	}
	if got := dev.Stats().Sub(before).PagesRead[flash.Host]; got != 1 {
		t.Fatalf("post-fault read cost %d device reads, want 1 (fault was cached?)", got)
	}

	// Now the page is cached. Re-arm the injector: a cache hit must not
	// consume (or even consult) an injected fault.
	failing = true
	injBefore := inj.Counts().TotalInjected()
	if _, err := f.ReadAt(buf, 0, flash.Host); err != nil {
		t.Fatalf("cached read consulted the faulty device: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("cached read returned wrong bytes")
	}
	if d := inj.Counts().TotalInjected() - injBefore; d != 0 {
		t.Fatalf("cache hit consumed %d injected faults, want 0", d)
	}
}

// Regression: a reader that starts AFTER a file invalidation (e.g. a
// column re-encode replacing the file) must never coalesce onto a read
// that was in flight BEFORE the invalidation — the follower would be
// handed the pre-invalidation bytes. The generation baked into the page
// key at lookup time forces post-invalidation readers onto a fresh read.
func TestNoStaleFlightServeAcrossInvalidation(t *testing.T) {
	cache := sched.NewPageCache(16 * flash.PageSize)
	stale := bytes.Repeat([]byte{0xAA}, 64) // old raw layout
	fresh := bytes.Repeat([]byte{0xEC}, 64) // re-encoded layout

	entered := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan struct{})
	var oldData []byte
	go func() {
		defer close(oldDone)
		oldData, _ = cache.GetPage(nil, "tab/c.dat", 0, func() ([]byte, error) {
			close(entered)
			<-release
			return stale, nil
		})
	}()
	<-entered
	// The file is rewritten while the read is in flight.
	cache.InvalidateFile("tab/c.dat")

	// A reader starting now must perform its own device read and complete
	// without waiting for the blocked pre-invalidation flight.
	newDone := make(chan struct{})
	var newData []byte
	go func() {
		defer close(newDone)
		newData, _ = cache.GetPage(nil, "tab/c.dat", 0, func() ([]byte, error) {
			return fresh, nil
		})
	}()
	select {
	case <-newDone:
	case <-time.After(5 * time.Second):
		close(release)
		t.Fatal("post-invalidation reader coalesced onto the stale in-flight read")
	}
	if !bytes.Equal(newData, fresh) {
		t.Fatalf("post-invalidation reader got stale bytes %x", newData[:4])
	}
	close(release)
	<-oldDone
	if !bytes.Equal(oldData, stale) {
		t.Fatalf("pre-invalidation reader got %x, want its own read's bytes", oldData[:4])
	}
	// The fresh fill must be resident under the current generation; the
	// stale fill must not have displaced it.
	served, err := cache.GetPage(nil, "tab/c.dat", 0, func() ([]byte, error) {
		t.Fatal("fresh page was not resident after invalidation")
		return nil, nil
	})
	if err != nil || !bytes.Equal(served, fresh) {
		t.Fatalf("resident page = %x, err %v, want fresh bytes", served[:4], err)
	}
}

// The read-latency throttle only charges device reads: cache hits are
// free, which is the mechanism the concurrency benchmark leans on.
func TestReadLatencyOnlyOnMisses(t *testing.T) {
	dev := flash.NewDevice()
	fillFile(t, dev, "tab/c.dat", 4*flash.PageSize)
	dev.SetPageCache(sched.NewPageCache(16 * flash.PageSize))
	dev.SetReadLatency(0) // explicit default: disabled
	if got := dev.ReadLatency(); got != 0 {
		t.Fatalf("latency = %v, want 0", got)
	}
	f, err := dev.Open("tab/c.dat")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*flash.PageSize)
	if _, err := f.ReadAt(buf, 0, flash.Host); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats()
	if _, err := f.ReadAt(buf, 0, flash.Host); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().Sub(before).TotalPagesRead(); got != 0 {
		t.Fatalf("warm re-read cost %d device reads, want 0", got)
	}
}
