package sched

import (
	"container/list"
	"context"
	"sync"

	"aquoman/internal/obs"
)

// ResultCache is a single-flight, size-bounded cache of whole query
// results, sitting above the page cache. Entries are keyed on the
// canonicalized query text plus a fingerprint of the backing files'
// generation counters captured at lookup time — the same hazard fix the
// page cache applies per page: a store mutation bumps generations, so
// every entry keyed under the old fingerprint is simply unreachable, and
// an execution that raced a mutation is re-validated before insert
// rather than cached with mixed content.
//
// Keys are not tenant-scoped: all tenants query the same store, so a
// result computed for one tenant is valid for all. The per-tenant byte
// quota is a space-fairness bound (one tenant's churn cannot evict the
// whole cache), not an isolation boundary.
type ResultCache struct {
	mu          sync.Mutex
	maxBytes    int64
	tenantMax   int64 // per-tenant resident-byte quota, 0 = none
	bytes       int64
	tenantBytes map[string]int64
	entries     map[resultKey]*list.Element
	lru         *list.List // front = most recent; values are *resultEntry
	flights     map[resultKey]*resultFlight

	hits, misses, coalesced, evictions int64

	cHits      *obs.Counter
	cMisses    *obs.Counter
	cCoalesced *obs.Counter
	cEvicted   *obs.Counter
	gBytes     *obs.Gauge
	gEntries   *obs.Gauge
}

type resultKey struct {
	query       string
	fingerprint string
}

type resultEntry struct {
	key    resultKey
	tenant string
	val    interface{}
	size   int64
}

type resultFlight struct {
	done chan struct{}
	val  interface{}
	err  error
}

// ResultCacheStats is a point-in-time counter snapshot. Hits includes
// coalesced waits (a follower that reuses a leader's execution saw the
// cache work).
type ResultCacheStats struct {
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
	Bytes     int64
	Entries   int64
}

// HitRate returns Hits/(Hits+Misses), 0 when idle.
func (s ResultCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewResultCache returns a cache bounded to maxBytes total, with an
// optional per-tenant resident quota (0 = unlimited per tenant).
func NewResultCache(maxBytes, perTenantBytes int64) *ResultCache {
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	return &ResultCache{
		maxBytes:    maxBytes,
		tenantMax:   perTenantBytes,
		tenantBytes: make(map[string]int64),
		entries:     make(map[resultKey]*list.Element),
		lru:         list.New(),
		flights:     make(map[resultKey]*resultFlight),
	}
}

// Observe binds the cache's counters and gauges into reg under the
// sched_result_cache_* families.
func (c *ResultCache) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cHits = reg.Counter("sched_result_cache_hits_total")
	c.cMisses = reg.Counter("sched_result_cache_misses_total")
	c.cCoalesced = reg.Counter("sched_result_cache_coalesced_total")
	c.cEvicted = reg.Counter("sched_result_cache_evictions_total")
	c.gBytes = reg.Gauge("sched_result_cache_bytes")
	c.gEntries = reg.Gauge("sched_result_cache_entries")
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   int64(c.lru.Len()),
	}
}

// Do serves one query through the cache. fingerprint must be captured by
// the caller *before* Do (at lookup time); it keys both the entry and
// the single-flight, so two lookups spanning a store mutation can never
// share an execution. exec computes the result and its resident size on
// a miss; fresh (optional) re-checks the fingerprint after exec so a
// result that raced a mutation is returned to its caller but not
// inserted. The bool reports whether the result came from the cache (a
// coalesced follower counts as a hit). Errors are never cached; a
// follower whose leader failed retries the lookup, because the leader's
// error may be private to it (a canceled client context).
func (c *ResultCache) Do(ctx context.Context, tenant, query, fingerprint string,
	exec func() (interface{}, int64, error), fresh func() bool) (interface{}, bool, error) {
	key := resultKey{query: query, fingerprint: fingerprint}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			val := el.Value.(*resultEntry).val
			c.mu.Unlock()
			c.cHits.Inc()
			return val, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.hits++
			c.coalesced++
			c.mu.Unlock()
			c.cHits.Inc()
			c.cCoalesced.Inc()
			var done <-chan struct{}
			if ctx != nil {
				done = ctx.Done()
			}
			select {
			case <-f.done:
			case <-done:
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.val, true, nil
			}
			if ctx != nil && ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			continue
		}
		f := &resultFlight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()
		c.cMisses.Inc()

		val, size, err := exec()
		f.val, f.err = val, err
		ok := err == nil && (fresh == nil || fresh())
		c.mu.Lock()
		delete(c.flights, key)
		if ok {
			c.insertLocked(key, tenant, val, size)
		}
		c.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// insertLocked adds an entry, evicting LRU entries (the inserting
// tenant's own first when it is over quota, then globally) to fit.
func (c *ResultCache) insertLocked(key resultKey, tenant string, val interface{}, size int64) {
	if size <= 0 || size > c.maxBytes || (c.tenantMax > 0 && size > c.tenantMax) {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	if c.tenantMax > 0 {
		for c.tenantBytes[tenant]+size > c.tenantMax {
			if !c.evictTenantLocked(tenant) {
				return
			}
		}
	}
	for c.bytes+size > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil {
			return
		}
		c.removeLocked(tail)
		c.evictions++
		c.cEvicted.Inc()
	}
	e := &resultEntry{key: key, tenant: tenant, val: val, size: size}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += size
	c.tenantBytes[tenant] += size
	c.gBytes.Set(c.bytes)
	c.gEntries.Set(int64(c.lru.Len()))
}

// evictTenantLocked drops the least-recently-used entry belonging to
// tenant, reporting whether one existed.
func (c *ResultCache) evictTenantLocked(tenant string) bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if el.Value.(*resultEntry).tenant == tenant {
			c.removeLocked(el)
			c.evictions++
			c.cEvicted.Inc()
			return true
		}
	}
	return false
}

func (c *ResultCache) removeLocked(el *list.Element) {
	e := el.Value.(*resultEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.tenantBytes[e.tenant] -= e.size
	if c.tenantBytes[e.tenant] <= 0 {
		delete(c.tenantBytes, e.tenant)
	}
	c.gBytes.Set(c.bytes)
	c.gEntries.Set(int64(c.lru.Len()))
}
