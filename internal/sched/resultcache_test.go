package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func mustDo(t *testing.T, c *ResultCache, tenant, query, fp string, val interface{}, size int64) (interface{}, bool) {
	t.Helper()
	got, hit, err := c.Do(nil, tenant, query, fp, func() (interface{}, int64, error) {
		return val, size, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return got, hit
}

func TestResultCacheHitMiss(t *testing.T) {
	c := NewResultCache(1<<20, 0)
	v1, hit := mustDo(t, c, "t1", "q", "fp1", "result-a", 100)
	if hit || v1 != "result-a" {
		t.Fatalf("first Do: got (%v, hit=%v), want miss returning result-a", v1, hit)
	}
	v2, hit := mustDo(t, c, "t2", "q", "fp1", "never-computed", 100)
	if !hit || v2 != "result-a" {
		t.Fatalf("second Do: got (%v, hit=%v), want cached result-a (keys are not tenant-scoped)", v2, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResultCacheSingleFlight(t *testing.T) {
	c := NewResultCache(1<<20, 0)
	const followers = 5
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var execs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, hit, err := c.Do(nil, "t", "q", "fp", func() (interface{}, int64, error) {
			execs.Add(1)
			close(leaderIn)
			<-gate
			return "v", 10, nil
		}, nil)
		if err != nil || hit || v != "v" {
			t.Errorf("leader: v=%v hit=%v err=%v", v, hit, err)
		}
	}()
	<-leaderIn
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Do(nil, "t", "q", "fp", func() (interface{}, int64, error) {
				execs.Add(1)
				return "v", 10, nil
			}, nil)
			if err != nil || !hit || v != "v" {
				t.Errorf("follower: v=%v hit=%v err=%v", v, hit, err)
			}
		}()
	}
	// Followers must be registered on the flight before releasing the
	// leader; poll the coalesced counter.
	for c.Stats().Coalesced < followers {
		if t.Failed() {
			break
		}
	}
	close(gate)
	wg.Wait()
	if execs.Load() != 1 {
		t.Errorf("execs = %d, want 1 (single flight)", execs.Load())
	}
}

// TestResultCacheFingerprintIsolatesFlights is the PR-5 coalescing
// hazard at the result level: a lookup whose fingerprint postdates a
// store mutation must not join an in-flight execution keyed under the
// old fingerprint, or it could be handed a result computed from stale
// bytes.
func TestResultCacheFingerprintIsolatesFlights(t *testing.T) {
	c := NewResultCache(1<<20, 0)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.Do(nil, "t", "q", "gen1", func() (interface{}, int64, error) {
			close(leaderIn)
			<-gate
			return "old", 10, nil
		}, nil)
		if err != nil || v != "old" {
			t.Errorf("old-generation leader: v=%v err=%v", v, err)
		}
	}()
	<-leaderIn
	// The store mutated; a new lookup captures fingerprint gen2 and must
	// execute fresh, not wait on the gen1 flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, err := c.Do(nil, "t", "q", "gen2", func() (interface{}, int64, error) {
			return "new", 10, nil
		}, nil)
		if err != nil || hit || v != "new" {
			t.Errorf("post-mutation lookup: v=%v hit=%v err=%v", v, hit, err)
		}
	}()
	<-done // completes while the gen1 flight is still blocked
	close(gate)
	wg.Wait()
	// Both entries resident, each under its own generation key.
	if v, hit := mustDo(t, c, "t", "q", "gen2", nil, 0); !hit || v != "new" {
		t.Errorf("gen2 lookup after settle: v=%v hit=%v", v, hit)
	}
}

// TestResultCacheFreshGuardsInsert: an execution that raced a mutation
// (fresh() reports the fingerprint is no longer current) returns its
// result but must not populate the cache.
func TestResultCacheFreshGuardsInsert(t *testing.T) {
	c := NewResultCache(1<<20, 0)
	v, hit, err := c.Do(nil, "t", "q", "fp", func() (interface{}, int64, error) {
		return "racy", 10, nil
	}, func() bool { return false })
	if err != nil || hit || v != "racy" {
		t.Fatalf("racy exec: v=%v hit=%v err=%v", v, hit, err)
	}
	if _, hit := mustDo(t, c, "t", "q", "fp", "fresh", 10); hit {
		t.Error("stale-raced result was cached; want miss")
	}
}

func TestResultCacheEviction(t *testing.T) {
	c := NewResultCache(100, 0)
	mustDo(t, c, "t", "a", "fp", "va", 60)
	mustDo(t, c, "t", "b", "fp", "vb", 60) // evicts a
	if _, hit := mustDo(t, c, "t", "b", "fp", nil, 0); !hit {
		t.Error("most recent entry evicted")
	}
	if _, hit := mustDo(t, c, "t", "a", "fp", "va", 60); hit {
		t.Error("LRU entry not evicted")
	}
	if st := c.Stats(); st.Evictions < 1 || st.Bytes > 100 {
		t.Errorf("stats = %+v", st)
	}
	// Oversized results are returned but never cached.
	if v, hit := mustDo(t, c, "t", "huge", "fp", "vh", 1000); hit || v != "vh" {
		t.Errorf("oversized: v=%v hit=%v", v, hit)
	}
	if _, hit := mustDo(t, c, "t", "huge", "fp", "vh", 1000); hit {
		t.Error("oversized entry was cached")
	}
}

// TestResultCacheTenantQuota: one tenant's churn evicts its own entries,
// not the whole cache.
func TestResultCacheTenantQuota(t *testing.T) {
	c := NewResultCache(1000, 100)
	mustDo(t, c, "noisy", "n1", "fp", "v", 60)
	mustDo(t, c, "quiet", "q1", "fp", "v", 60)
	mustDo(t, c, "noisy", "n2", "fp", "v", 60) // noisy over quota: evicts n1
	if _, hit := mustDo(t, c, "x", "n1", "fp", "v", 60); hit {
		t.Error("noisy tenant's oldest entry should have been evicted by its own quota")
	}
	if _, hit := mustDo(t, c, "x", "q1", "fp", nil, 0); !hit {
		t.Error("quiet tenant's entry must survive the noisy tenant's churn")
	}
}

// TestResultCacheLeaderErrorRetried: errors are never cached, and a
// follower whose leader failed re-runs the lookup itself (the leader's
// error may be private to its own request, e.g. a canceled client).
func TestResultCacheLeaderErrorRetried(t *testing.T) {
	c := NewResultCache(1<<20, 0)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(nil, "t", "q", "fp", func() (interface{}, int64, error) {
			close(leaderIn)
			<-gate
			return nil, 0, context.Canceled
		}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-leaderIn
	var execs atomic.Int64
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		v, _, err := c.Do(nil, "t", "q", "fp", func() (interface{}, int64, error) {
			execs.Add(1)
			return "good", 10, nil
		}, nil)
		if err != nil || v != "good" {
			t.Errorf("follower after failed leader: v=%v err=%v", v, err)
		}
	}()
	for c.Stats().Coalesced < 1 {
		if t.Failed() {
			break
		}
	}
	close(gate)
	<-followerDone
	wg.Wait()
	if execs.Load() != 1 {
		t.Errorf("follower execs = %d, want 1 (became leader on retry)", execs.Load())
	}
	if v, hit := mustDo(t, c, "t", "q", "fp", nil, 0); !hit || v != "good" {
		t.Errorf("retried result not cached: v=%v hit=%v", v, hit)
	}
}

// TestResultCacheCtxAwareFollower: a follower whose own context dies
// while coalesced unblocks with its context error.
func TestResultCacheCtxAwareFollower(t *testing.T) {
	c := NewResultCache(1<<20, 0)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(nil, "t", "q", "fp", func() (interface{}, int64, error) {
			close(leaderIn)
			<-gate
			return "v", 10, nil
		}, nil)
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "t", "q", "fp", func() (interface{}, int64, error) {
		t.Error("canceled follower must not execute")
		return nil, 0, nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled follower err = %v", err)
	}
	close(gate)
	wg.Wait()
}
