package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aquoman/internal/obs"
)

// Lane selects one of the scheduler's two priority lanes. At dequeue
// time every queued interactive submission is granted before any queued
// batch submission, so dashboard point-queries preempt SF-scale scans
// that are still waiting for a slot (running scans are never stopped).
type Lane int

const (
	// LaneInteractive is the point-query lane (the default).
	LaneInteractive Lane = iota
	// LaneBatch is the scan lane for long, SF-scale queries.
	LaneBatch
	numLanes
)

// String returns "interactive" or "batch".
func (l Lane) String() string {
	if l == LaneBatch {
		return "batch"
	}
	return "interactive"
}

// ParseLane parses a lane name as used in URLs and flags.
func ParseLane(s string) (Lane, error) {
	switch s {
	case "interactive":
		return LaneInteractive, nil
	case "batch":
		return LaneBatch, nil
	}
	return LaneInteractive, fmt.Errorf("sched: unknown lane %q (want interactive or batch)", s)
}

// TenantConfig sizes one tenant's share of the scheduler.
type TenantConfig struct {
	// Weight is the tenant's share of grant rounds under contention
	// (stride scheduling: a weight-4 tenant receives 4x the grants of a
	// weight-1 tenant while both are backlogged). Values < 1 default to 1.
	Weight int
	// MaxQueued caps this tenant's queued submissions; exceeding it
	// rejects with a *QuotaError (mapped to HTTP 429 upstream) while
	// other tenants keep being admitted. 0 = bounded only by the
	// scheduler's global QueueDepth.
	MaxQueued int
	// MaxInFlight caps the tenant's concurrently executing queries; its
	// surplus queued work stays queued while other tenants' work is
	// granted past it. 0 = no per-tenant cap.
	MaxInFlight int
}

// DefaultTenantName is the tenant that un-attributed submissions (no
// tenant header, legacy Submit entry points) are accounted under.
const DefaultTenantName = "default"

// QuotaError reports a submission rejected because its tenant's own
// admission quota (TenantConfig.MaxQueued) was exhausted, as opposed to
// the scheduler-wide queue being full. errors.Is(err, ErrTenantQuota)
// matches it.
type QuotaError struct{ Tenant string }

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: tenant %q over admission quota", e.Tenant)
}

// Is makes QuotaError match ErrTenantQuota.
func (e *QuotaError) Is(target error) bool { return target == ErrTenantQuota }

// ErrTenantQuota is the errors.Is target for per-tenant admission
// rejections. The server maps it to 429 Too Many Requests (the tenant
// should back off) where a scheduler-wide ErrQueueFull maps to 503.
var ErrTenantQuota = errors.New("sched: tenant quota exceeded")

// SubmitOpts attributes one submission for multi-tenant scheduling.
type SubmitOpts struct {
	// Tenant is the submitting tenant; "" maps to DefaultTenantName.
	// Tenants absent from Config.Tenants use Config.DefaultTenant.
	Tenant string
	// Lane is the priority lane (zero value: LaneInteractive).
	Lane Lane
	// Wait blocks admission on a full queue or exhausted quota instead
	// of rejecting, unblocking with the context error if ctx dies first.
	Wait bool
}

// tenantState is one tenant's queues and accounting inside fairQueue.
// All fields except the obs handles are guarded by fairQueue.mu.
type tenantState struct {
	name        string
	weight      int
	maxQueued   int
	maxInFlight int

	lanes    [numLanes][]*submission
	queued   int
	inflight int
	grants   int64
	// pass is the tenant's stride-scheduling virtual time: advanced by
	// 1/weight per grant, so under contention grant counts converge to
	// the weight ratio. A tenant rejoining after idling is forwarded to
	// the queue's virtual time instead of burning its idle credit.
	pass float64

	gInflight  *obs.Gauge
	gQueued    *obs.Gauge
	cGrants    *obs.Counter
	cSubmitted *obs.Counter
	cRejected  *obs.Counter
}

func (ts *tenantState) bind(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ts.gInflight = reg.Gauge("sched_tenant_inflight", "tenant", ts.name)
	ts.gQueued = reg.Gauge("sched_tenant_queued", "tenant", ts.name)
	ts.cGrants = reg.Counter("sched_tenant_grants_total", "tenant", ts.name)
	ts.cSubmitted = reg.Counter("sched_tenant_submitted_total", "tenant", ts.name)
	ts.cRejected = reg.Counter("sched_tenant_rejected_total", "tenant", ts.name)
}

// fairQueue replaces the scheduler's FIFO channel when Config.Tenants is
// set: a per-tenant, per-lane multi-queue with weighted-fair grants,
// admission quotas, and interactive-over-batch lane preemption. One
// mutex+cond guards it all — enqueueing producers, granting workers, and
// quota-waiters share the condition and re-check their predicates.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cfg    Config
	reg    *obs.Registry
	closed bool

	tenants map[string]*tenantState
	// order fixes the tie-break iteration order over tenants (map
	// iteration is randomized; grant decisions should not be).
	order  []*tenantState
	queued int
	// vtime tracks the pass of the most recent grant, used to forward
	// idle tenants when they rejoin.
	vtime float64
}

func newFairQueue(cfg Config) *fairQueue {
	fq := &fairQueue{cfg: cfg, tenants: make(map[string]*tenantState)}
	fq.cond = sync.NewCond(&fq.mu)
	// Materialize configured tenants eagerly so their metric series exist
	// (at zero) before the first submission arrives.
	for name := range cfg.Tenants {
		fq.tenantLocked(name)
	}
	return fq
}

// tenantLocked returns (creating if needed) the tenant's state.
func (fq *fairQueue) tenantLocked(name string) *tenantState {
	if name == "" {
		name = DefaultTenantName
	}
	if ts, ok := fq.tenants[name]; ok {
		return ts
	}
	tc, ok := fq.cfg.Tenants[name]
	if !ok {
		tc = fq.cfg.DefaultTenant
	}
	if tc.Weight < 1 {
		tc.Weight = 1
	}
	ts := &tenantState{
		name:        name,
		weight:      tc.Weight,
		maxQueued:   tc.MaxQueued,
		maxInFlight: tc.MaxInFlight,
		pass:        fq.vtime,
	}
	ts.bind(fq.reg)
	fq.tenants[name] = ts
	fq.order = append(fq.order, ts)
	return ts
}

// observe binds (or rebinds) every tenant's metric handles.
func (fq *fairQueue) observe(reg *obs.Registry) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	fq.reg = reg
	for _, ts := range fq.order {
		ts.bind(reg)
	}
}

// enqueue admits one submission under quota+capacity control. Called by
// the Scheduler submit paths when the fair queue is active.
func (s *Scheduler) fairEnqueue(sub *submission, opts SubmitOpts) (*Ticket, error) {
	if opts.Lane < 0 || opts.Lane >= numLanes {
		opts.Lane = LaneInteractive
	}
	fq := s.fq
	fq.mu.Lock()
	ts := fq.tenantLocked(opts.Tenant)
	for {
		if fq.closed {
			fq.mu.Unlock()
			return nil, ErrClosed
		}
		if sub.ctx != nil {
			if err := sub.ctx.Err(); err != nil {
				fq.mu.Unlock()
				s.rejected.Inc()
				ts.cRejected.Inc()
				return nil, err
			}
		}
		overQuota := ts.maxQueued > 0 && ts.queued >= ts.maxQueued
		overGlobal := fq.queued >= fq.cfg.QueueDepth
		if !overQuota && !overGlobal {
			break
		}
		if !opts.Wait {
			fq.mu.Unlock()
			s.rejected.Inc()
			ts.cRejected.Inc()
			if overQuota {
				return nil, &QuotaError{Tenant: ts.name}
			}
			return nil, ErrQueueFull
		}
		fq.waitLocked(sub.ctx)
	}
	sub.enqueued = time.Now()
	// A tenant rejoining after an idle spell starts at the current
	// virtual time: idle periods earn no credit, or a returning tenant
	// would monopolize grants until its stale pass caught up.
	if ts.queued == 0 && ts.inflight == 0 && ts.pass < fq.vtime {
		ts.pass = fq.vtime
	}
	ts.lanes[opts.Lane] = append(ts.lanes[opts.Lane], sub)
	ts.queued++
	fq.queued++
	fq.mu.Unlock()
	s.submitted.Inc()
	ts.cSubmitted.Inc()
	s.queued.Add(1)
	s.queueDepth.Add(1)
	ts.gQueued.Add(1)
	fq.cond.Broadcast()
	return sub.ticket, nil
}

// waitLocked blocks on the queue condition until woken. A non-nil ctx
// installs a watcher that broadcasts when the context dies, so the
// caller's re-check loop observes the error. Called (and returns) with
// fq.mu held.
func (fq *fairQueue) waitLocked(ctx context.Context) {
	if ctx == nil {
		fq.cond.Wait()
		return
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Lock before broadcasting: the caller holds fq.mu from its
			// predicate check until it is inside Wait, so a locked
			// broadcast cannot land in that gap and be missed.
			fq.mu.Lock()
			fq.cond.Broadcast()
			fq.mu.Unlock()
		case <-stop:
		}
	}()
	fq.cond.Wait()
	close(stop)
}

// dequeue blocks for the next grant, returning the chosen submission and
// its tenant (inflight already incremented), or (nil, nil) when the
// queue is closed and fully drained.
func (fq *fairQueue) dequeue() (*submission, *tenantState) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		if sub, ts := fq.pickLocked(); sub != nil {
			return sub, ts
		}
		if fq.closed && fq.queued == 0 {
			return nil, nil
		}
		fq.cond.Wait()
	}
}

// pickLocked implements the grant policy: the interactive lane is
// scanned before the batch lane; within a lane the eligible tenant with
// the minimum stride pass wins (ties broken by tenant creation order).
// Tenants at their per-tenant in-flight cap are skipped — their queued
// work waits while others are granted past it.
func (fq *fairQueue) pickLocked() (*submission, *tenantState) {
	for lane := LaneInteractive; lane < numLanes; lane++ {
		var best *tenantState
		for _, ts := range fq.order {
			if len(ts.lanes[lane]) == 0 {
				continue
			}
			if ts.maxInFlight > 0 && ts.inflight >= ts.maxInFlight {
				continue
			}
			if best == nil || ts.pass < best.pass {
				best = ts
			}
		}
		if best == nil {
			continue
		}
		q := best.lanes[lane]
		sub := q[0]
		q[0] = nil // drop the backing-array reference for GC
		best.lanes[lane] = q[1:]
		best.queued--
		fq.queued--
		best.inflight++
		best.grants++
		best.cGrants.Inc()
		if best.pass > fq.vtime {
			fq.vtime = best.pass
		}
		best.pass += 1 / float64(best.weight)
		// A queue slot freed: quota- and capacity-waiters may now admit.
		fq.cond.Broadcast()
		return sub, best
	}
	return nil, nil
}

// release returns a tenant's in-flight slot, waking workers whose grants
// were blocked on the tenant's MaxInFlight cap.
func (fq *fairQueue) release(ts *tenantState) {
	fq.mu.Lock()
	ts.inflight--
	fq.mu.Unlock()
	fq.cond.Broadcast()
}

func (fq *fairQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.mu.Unlock()
	fq.cond.Broadcast()
}

// SubmitTenant enqueues a job attributed to a tenant and lane. With
// opts.Wait it blocks on backpressure like SubmitWaitCtx; otherwise it
// rejects with *QuotaError (tenant quota) or ErrQueueFull (global
// capacity). On a scheduler without tenants configured the tenant and
// lane are ignored and the legacy FIFO path runs.
func (s *Scheduler) SubmitTenant(ctx context.Context, opts SubmitOpts, job JobCtx) (*Ticket, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sub := &submission{jobCtx: job, ctx: ctx, ticket: &Ticket{done: make(chan struct{})}}
	if s.fq != nil {
		return s.fairEnqueue(sub, opts)
	}
	if opts.Wait {
		return s.enqueueWait(sub)
	}
	return s.enqueue(sub)
}

// Tenants reports whether multi-tenant fair scheduling is active.
func (s *Scheduler) Tenants() bool { return s.fq != nil }

// TenantGrants returns the cumulative grant count per tenant (nil when
// multi-tenant scheduling is off). Fairness harnesses compare these
// against the configured weights.
func (s *Scheduler) TenantGrants() map[string]int64 {
	if s.fq == nil {
		return nil
	}
	s.fq.mu.Lock()
	defer s.fq.mu.Unlock()
	m := make(map[string]int64, len(s.fq.tenants))
	for name, ts := range s.fq.tenants {
		m[name] = ts.grants
	}
	return m
}

// fairWorker is the worker loop when the fair queue is active: identical
// accounting to the legacy loop, plus per-tenant gauges and in-flight
// slot release.
func (s *Scheduler) fairWorker() {
	defer s.wg.Done()
	for {
		sub, ts := s.fq.dequeue()
		if sub == nil {
			return
		}
		s.queued.Add(-1)
		s.queueDepth.Add(-1)
		ts.gQueued.Add(-1)
		wait := time.Since(sub.enqueued)
		s.queueWait.Observe(int64(wait))
		obs.LifecycleFrom(sub.ctx).Add(obs.StateQueueWait, wait)
		if sub.ctx != nil {
			if err := sub.ctx.Err(); err != nil {
				sub.ticket.err = err
				s.canceled.Inc()
				close(sub.ticket.done)
				s.fq.release(ts)
				continue
			}
		}
		s.inflight.Add(1)
		ts.gInflight.Add(1)
		sub.ticket.round.Store(s.rounds.Add(1))
		endHost := obs.LifecycleFrom(sub.ctx).ExclusiveTimer(obs.StateHost)
		s.run(sub)
		endHost()
		s.inflight.Add(-1)
		ts.gInflight.Add(-1)
		s.completed.Inc()
		close(sub.ticket.done)
		s.fq.release(ts)
	}
}
