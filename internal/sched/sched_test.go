package sched

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedJob returns a job that signals started and then blocks until
// release is closed.
func gatedJob(started chan<- struct{}, release <-chan struct{}) Job {
	return func() (interface{}, error) {
		if started != nil {
			started <- struct{}{}
		}
		<-release
		return "done", nil
	}
}

// With one in-flight slot occupied and the queue at capacity, Submit must
// reject deterministically with ErrQueueFull; SubmitWait must block and
// then get through once the slot frees.
func TestSubmitQueueFull(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 1})
	defer s.Close()
	started := make(chan struct{}, 1)
	release := make(chan struct{})

	t1, err := s.Submit(gatedJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker is now blocked inside job 1: the queue is empty
	t2, err := s.Submit(gatedJob(nil, release))
	if err != nil {
		t.Fatal(err) // fills the queue's single slot
	}
	if _, err := s.Submit(gatedJob(nil, release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}

	// SubmitWait blocks instead of shedding; let everything drain.
	waited := make(chan *Ticket)
	go func() {
		ticket, err := s.SubmitWait(gatedJob(nil, release))
		if err != nil {
			t.Error(err)
		}
		waited <- ticket
	}()
	select {
	case <-waited:
		t.Fatal("SubmitWait returned while the queue was full")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	t3 := <-waited
	for _, ticket := range []*Ticket{t1, t2, t3} {
		if v, err := ticket.Wait(); err != nil || v != "done" {
			t.Fatalf("ticket: %v %v", v, err)
		}
	}
}

// Close must drain already-admitted jobs before the workers exit, and
// reject new submissions afterwards.
func TestCloseDrains(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 8})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var tickets []*Ticket
	t0, err := s.Submit(gatedJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 5; i++ {
		ticket, err := s.Submit(func() (interface{}, error) { return "queued", nil })
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, ticket)
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with a job still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if _, err := t0.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, ticket := range tickets {
		if v, err := ticket.Wait(); err != nil || v != "queued" {
			t.Fatalf("queued job %d was not drained: %v %v", i, v, err)
		}
	}
	if _, err := s.Submit(func() (interface{}, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := s.SubmitWait(func() (interface{}, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submitwait after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// A panicking job surfaces as a ticket error and must not kill the
// worker: subsequent jobs still run.
func TestPanicRecovered(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 4})
	defer s.Close()
	bad, err := s.Submit(func() (interface{}, error) { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	good, err := s.Submit(func() (interface{}, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, err := good.Wait(); err != nil || v != 7 {
		t.Fatalf("worker died after panic: %v %v", v, err)
	}
}

// Fairness: with two in-flight slots and one hog pinned in the first,
// short jobs flow through the second slot — each short job's grant round
// stays within the number of jobs admitted before it, so nothing starves
// behind the hog.
func TestFairnessBoundedRounds(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 2, QueueDepth: 64})
	defer s.Close()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	hog, err := s.Submit(gatedJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	const shorts = 20
	var tickets []*Ticket
	for i := 0; i < shorts; i++ {
		ticket, err := s.Submit(func() (interface{}, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, ticket)
	}
	for i, ticket := range tickets {
		if _, err := ticket.Wait(); err != nil {
			t.Fatal(err)
		}
		// The hog is round 1; short i can be granted at most after the
		// shorts admitted before it.
		if r := ticket.Round(); r < 2 || r > int64(i)+2 {
			t.Fatalf("short %d granted at round %d, want within [2, %d]", i, r, i+2)
		}
	}
	if r := hog.Round(); r != 1 {
		t.Fatalf("hog round = %d, want 1", r)
	}
	if got := s.Rounds(); got != shorts+1 {
		t.Fatalf("rounds = %d, want %d", got, shorts+1)
	}
	close(release)
	if _, err := hog.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Hammer the scheduler from many producers under -race.
func TestSchedulerConcurrentSubmitters(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 4, QueueDepth: 8})
	var wg sync.WaitGroup
	var mu sync.Mutex
	sum := 0
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ticket, err := s.SubmitWait(func() (interface{}, error) {
					mu.Lock()
					sum++
					mu.Unlock()
					return nil, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := ticket.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	s.Close()
	if sum != 8*50 {
		t.Fatalf("ran %d jobs, want %d", sum, 8*50)
	}
	if s.Rounds() != 8*50 {
		t.Fatalf("rounds = %d, want %d", s.Rounds(), 8*50)
	}
}
