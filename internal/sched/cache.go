// Package sched layers concurrent query execution on top of the single-query
// core: an admission-controlled scheduler (sched.go) and a shared,
// size-bounded LRU flash-page cache (this file). The cache sits in front of
// flash.Device via the flash.PageCacher seam, so every byte a query reads can
// be served to the next query without touching the simulated NAND again.
package sched

import (
	"container/list"
	"context"
	"sync"
	"time"

	"aquoman/internal/obs"
)

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64 // page requests served from memory
	Misses    int64 // page requests that performed a device read
	Evictions int64 // pages dropped to stay within the byte budget
	Bytes     int64 // bytes currently resident
	Entries   int64 // pages currently resident
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// pageKey identifies one cached page. Partition isolates devices that reuse
// file names (distrib shards all store "lineitem/l_qty.dat"). The file
// generation — bumped by every write or invalidation, including a column
// re-encode replacing the file — is part of the key: a reader that starts
// after an invalidation can never be served bytes fetched before it, not
// even by coalescing onto an older in-flight read.
type pageKey struct {
	part string
	file string
	page int64
	gen  uint64
}

type fileKey struct {
	part string
	file string
}

// entry is one resident page; it lives in both the lookup map and the LRU
// list (front = most recently used).
type entry struct {
	key  pageKey
	data []byte
	elem *list.Element
}

// flight is an in-progress device read. Concurrent misses on the same page
// find the flight and wait on done instead of issuing duplicate reads.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// PageCache is a shared, size-bounded, single-flight LRU cache of flash
// pages. It is safe for concurrent use. It implements flash.PageCacher
// (for the default partition ""); per-device views come from Partition.
//
// Correctness properties (asserted by cache_test.go):
//   - resident bytes never exceed MaxBytes;
//   - a faulted read never populates the cache (and the error is returned
//     to every waiter of that flight);
//   - a write or invalidation that races with an in-flight read wins: the
//     stale fill is discarded, and readers arriving after the invalidation
//     do not join the doomed flight (generation counters per file, baked
//     into the page key at lookup time).
type PageCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[pageKey]*entry
	lru     *list.List
	flights map[pageKey]*flight
	gens    map[fileKey]uint64

	hits, misses, evictions int64

	// Optional observability handles; nil-safe.
	cHits, cMisses, cEvictions *obs.Counter
	gBytes, gEntries           *obs.Gauge
	hDeviceRead, hCoalesce     *obs.Histogram
}

// NewPageCache returns a cache bounded to maxBytes of page data.
// maxBytes <= 0 disables residency entirely (every read is a miss), but
// single-flight deduplication still applies.
func NewPageCache(maxBytes int64) *PageCache {
	return &PageCache{
		max:     maxBytes,
		entries: make(map[pageKey]*entry),
		lru:     list.New(),
		flights: make(map[pageKey]*flight),
		gens:    make(map[fileKey]uint64),
	}
}

// Observe binds hit/miss/eviction counters and residency gauges into reg.
func (c *PageCache) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cHits = reg.Counter("sched_cache_hits_total")
	c.cMisses = reg.Counter("sched_cache_misses_total")
	c.cEvictions = reg.Counter("sched_cache_evictions_total")
	c.gBytes = reg.Gauge("sched_cache_bytes")
	c.gEntries = reg.Gauge("sched_cache_entries")
	c.hDeviceRead = reg.Histogram("flash_device_read_ns")
	c.hCoalesce = reg.Histogram("sched_cache_coalesce_wait_ns")
}

// Stats snapshots the cache counters.
func (c *PageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   int64(len(c.entries)),
	}
}

// MaxBytes reports the configured byte budget.
func (c *PageCache) MaxBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// GetPage implements flash.PageCacher for the default partition. The
// context is not used for cancellation (cache fills always complete so
// other waiters are served); it only carries the requesting query's
// obs.Lifecycle for wait-state attribution.
func (c *PageCache) GetPage(ctx context.Context, file string, page int64, read func() ([]byte, error)) ([]byte, error) {
	return c.getPage(ctx, "", file, page, read)
}

// InvalidatePages implements flash.PageCacher for the default partition.
func (c *PageCache) InvalidatePages(file string, first, last int64) {
	c.invalidatePages("", file, first, last)
}

// InvalidateFile implements flash.PageCacher for the default partition.
func (c *PageCache) InvalidateFile(file string) {
	c.invalidateFile("", file)
}

// Partition returns a view of the cache whose keys are isolated under name.
// All partitions share one byte budget and one LRU. The returned view
// implements flash.PageCacher.
func (c *PageCache) Partition(name string) *Partition {
	return &Partition{c: c, name: name}
}

// Partition is a named view of a shared PageCache (see PageCache.Partition).
type Partition struct {
	c    *PageCache
	name string
}

// GetPage implements flash.PageCacher.
func (p *Partition) GetPage(ctx context.Context, file string, page int64, read func() ([]byte, error)) ([]byte, error) {
	return p.c.getPage(ctx, p.name, file, page, read)
}

// InvalidatePages implements flash.PageCacher.
func (p *Partition) InvalidatePages(file string, first, last int64) {
	p.c.invalidatePages(p.name, file, first, last)
}

// InvalidateFile implements flash.PageCacher.
func (p *Partition) InvalidateFile(file string) {
	p.c.invalidateFile(p.name, file)
}

// getPage serves one page, coalescing concurrent misses into a single
// device read. Callers must treat the returned slice as read-only.
// When ctx carries a query lifecycle, the elapsed time is attributed to
// cache_hit, coalesce_wait, or device_read depending on which path
// served the page; the timing calls are skipped entirely otherwise.
func (c *PageCache) getPage(ctx context.Context, part, file string, page int64, read func() ([]byte, error)) ([]byte, error) {
	lc := obs.LifecycleFrom(ctx)
	var t0 time.Time
	if lc != nil {
		t0 = time.Now()
	}
	c.mu.Lock()
	gen := c.gens[fileKey{part, file}]
	key := pageKey{part, file, page, gen}
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		c.cHits.Inc()
		if lc != nil {
			lc.Add(obs.StateCacheHit, time.Since(t0))
		}
		return e.data, nil
	}
	if f, ok := c.flights[key]; ok {
		// Another goroutine is already reading this page: wait for it.
		// Followers count as hits — they cost no device I/O — but the
		// wait is attributed separately so coalescing convoys show up.
		c.hits++
		c.mu.Unlock()
		c.cHits.Inc()
		<-f.done
		if lc != nil {
			d := time.Since(t0)
			lc.Add(obs.StateCoalesceWait, d)
			c.hCoalesce.Observe(int64(d))
		}
		return f.data, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()
	c.cMisses.Inc()

	if lc != nil || c.hDeviceRead != nil {
		r0 := time.Now()
		f.data, f.err = read()
		d := time.Since(r0)
		lc.Add(obs.StateDeviceRead, d)
		c.hDeviceRead.Observe(int64(d))
	} else {
		f.data, f.err = read()
	}

	c.mu.Lock()
	delete(c.flights, key)
	// Insert only if the read succeeded and no write/invalidation landed on
	// the file while the read was in flight (the fill would be stale — and,
	// keyed under the old generation, unreachable yet budget-consuming).
	if f.err == nil && f.data != nil && gen == c.gens[fileKey{part, file}] {
		c.insertLocked(key, f.data)
	}
	c.mu.Unlock()
	close(f.done)
	return f.data, f.err
}

// insertLocked adds a page and evicts from the LRU tail until the budget
// holds. Pages larger than the whole budget are not cached.
func (c *PageCache) insertLocked(key pageKey, data []byte) {
	size := int64(len(data))
	if size == 0 || size > c.max {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.bytes -= int64(len(old.data))
		c.lru.Remove(old.elem)
		delete(c.entries, key)
	}
	for c.bytes+size > c.max {
		tail := c.lru.Back()
		if tail == nil {
			return
		}
		c.removeLocked(tail.Value.(*entry), true)
	}
	e := &entry{key: key, data: data}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	c.gBytes.Set(c.bytes)
	c.gEntries.Set(int64(len(c.entries)))
}

func (c *PageCache) removeLocked(e *entry, evicted bool) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.data))
	if evicted {
		c.evictions++
		c.cEvictions.Inc()
	}
	c.gBytes.Set(c.bytes)
	c.gEntries.Set(int64(len(c.entries)))
}

func (c *PageCache) invalidatePages(part, file string, first, last int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[fileKey{part, file}]++
	for key, e := range c.entries {
		if key.part == part && key.file == file && key.page >= first && key.page <= last {
			c.removeLocked(e, false)
		}
	}
}

func (c *PageCache) invalidateFile(part, file string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[fileKey{part, file}]++
	for key, e := range c.entries {
		if key.part == part && key.file == file {
			c.removeLocked(e, false)
		}
	}
}
