package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// block returns a job that parks until release is closed, plus the
// release function.
func block() (Job, func()) {
	ch := make(chan struct{})
	var once atomic.Bool
	return func() (interface{}, error) {
			<-ch
			return nil, nil
		}, func() {
			if once.CompareAndSwap(false, true) {
				close(ch)
			}
		}
}

// TestQueueWaitCancelSkipsJob cancels a job while it waits in the queue
// and asserts the worker never runs it: the ticket fails with the context
// error and no in-flight slot is spent on it.
func TestQueueWaitCancelSkipsJob(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 4})
	defer s.Close()

	blocker, release := block()
	bt, err := s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	qt, err := s.SubmitCtx(ctx, func(context.Context) (interface{}, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cancel() // while queued behind the blocker
	release()

	if _, err := qt.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() {
		t.Fatal("cancelled queued job still ran")
	}
	if qt.Round() != 0 {
		t.Fatalf("skipped job got a scheduling round: %d", qt.Round())
	}
	if _, err := bt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitCtxRunsWithContext verifies the job receives the submission's
// context and its result flows through the ticket.
func TestSubmitCtxRunsWithContext(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 1})
	defer s.Close()

	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	tk, err := s.SubmitCtx(ctx, func(got context.Context) (interface{}, error) {
		return got.Value(key{}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v" {
		t.Fatalf("job did not receive submission context: got %v", v)
	}
}

// TestSubmitCtxPreCancelled rejects a dead context at submission time.
func TestSubmitCtxPreCancelled(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SubmitCtx(ctx, func(context.Context) (interface{}, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSubmitWaitCtxUnblocksOnCancel stalls a blocking submission on a
// full queue and asserts cancellation unblocks it with the context error.
func TestSubmitWaitCtxUnblocksOnCancel(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 1})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit(func() (interface{}, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds the in-flight slot; the queue is empty
	b2, r2 := block()
	if _, err := s.Submit(b2); err != nil { // fills the queue
		t.Fatal(err)
	}
	defer r2()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.SubmitWaitCtx(ctx, func(context.Context) (interface{}, error) { return nil, nil })
		errc <- err
	}()

	select {
	case err := <-errc:
		t.Fatalf("SubmitWaitCtx returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SubmitWaitCtx did not unblock on cancel")
	}
}

// TestNilCtxNeverCancels keeps the legacy semantics: a nil context runs
// the job normally.
func TestNilCtxNeverCancels(t *testing.T) {
	s := NewScheduler(Config{})
	defer s.Close()
	tk, err := s.SubmitCtx(nil, func(ctx context.Context) (interface{}, error) {
		if ctx != nil {
			t.Error("nil submission context was replaced")
		}
		return 7, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := tk.Wait()
	if err != nil || v != 7 {
		t.Fatalf("got (%v, %v), want (7, nil)", v, err)
	}
}
