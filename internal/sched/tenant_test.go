package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitGranted(t *testing.T, tk *Ticket) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tk.Round() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticket never granted")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestTenantWeightedFairShare floods the scheduler with two backlogged
// tenants at 32 streams and asserts the grant shares converge to the
// configured 3:1 weights, with no starvation of the lighter tenant.
func TestTenantWeightedFairShare(t *testing.T) {
	const (
		workers  = 32
		perTen   = 600
		window   = 400 // grants measured while both tenants are provably backlogged
		jobSleep = 200 * time.Microsecond
	)
	s := NewScheduler(Config{
		MaxInFlight: workers,
		QueueDepth:  4096,
		Tenants: map[string]TenantConfig{
			"heavy": {Weight: 1},
			"light": {Weight: 3},
		},
	})
	defer s.Close()

	// Plug all worker slots with a warm-up tenant so both measured
	// tenants build their full backlog before the first measured grant.
	release := make(chan struct{})
	warm := make([]*Ticket, workers)
	for i := range warm {
		tk, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "warm"}, func(context.Context) (interface{}, error) {
			<-release
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		warm[i] = tk
	}
	for _, tk := range warm {
		waitGranted(t, tk)
	}

	job := func(context.Context) (interface{}, error) {
		time.Sleep(jobSleep)
		return nil, nil
	}
	var heavy, light []*Ticket
	for i := 0; i < perTen; i++ {
		tk, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "heavy", Lane: LaneBatch}, job)
		if err != nil {
			t.Fatal(err)
		}
		heavy = append(heavy, tk)
		tk, err = s.SubmitTenant(nil, SubmitOpts{Tenant: "light", Lane: LaneBatch}, job)
		if err != nil {
			t.Fatal(err)
		}
		light = append(light, tk)
	}
	close(release)
	for _, tk := range append(append([]*Ticket{}, heavy...), light...) {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	// Rounds 1..workers were the warm-up; the measurement window starts
	// at the first contended grant. Both tenants stay backlogged for well
	// over `window` grants (light exhausts its 600 only after ~800).
	lo := int64(workers + 1)
	hi := lo + window
	var lightN, heavyN int
	var heavyRounds []int64
	for _, tk := range light {
		if r := tk.Round(); r >= lo && r < hi {
			lightN++
		}
	}
	for _, tk := range heavy {
		if r := tk.Round(); r >= lo && r < hi {
			heavyN++
			heavyRounds = append(heavyRounds, r)
		}
	}
	if lightN+heavyN != window {
		t.Fatalf("window accounting: light %d + heavy %d != %d", lightN, heavyN, window)
	}
	share := float64(lightN) / float64(window)
	if share < 0.70 || share > 0.80 {
		t.Errorf("light tenant grant share = %.3f in %d-grant window, want ~0.75 (weight 3 of 4)", share, window)
	}
	// Starvation bound: the weight-1 tenant is due every 4th grant; a gap
	// beyond 32 grants means it was starved, not just deprioritized.
	sort.Slice(heavyRounds, func(i, j int) bool { return heavyRounds[i] < heavyRounds[j] })
	prev := lo - 1
	for _, r := range heavyRounds {
		if gap := r - prev; gap > 32 {
			t.Errorf("heavy tenant starved: %d-grant gap before round %d", gap, r)
		}
		prev = r
	}
	grants := s.TenantGrants()
	if grants["heavy"] != perTen || grants["light"] != perTen {
		t.Errorf("TenantGrants = %v, want %d each for heavy/light", grants, perTen)
	}
}

// TestTenantQuotaRejects asserts a tenant over its own MaxQueued gets a
// QuotaError while other tenants and the global queue stay open.
func TestTenantQuotaRejects(t *testing.T) {
	s := NewScheduler(Config{
		MaxInFlight: 1,
		QueueDepth:  8,
		Tenants:     map[string]TenantConfig{"a": {MaxQueued: 1}},
	})
	defer s.Close()

	gate := make(chan struct{})
	blocker := func(context.Context) (interface{}, error) {
		<-gate
		return nil, nil
	}
	tk1, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "a"}, blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitGranted(t, tk1) // in flight, not queued: doesn't count against MaxQueued
	tk2, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "a"}, blocker)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SubmitTenant(nil, SubmitOpts{Tenant: "a"}, blocker)
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third tenant-a submit: got %v, want ErrTenantQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "a" {
		t.Fatalf("quota error should name the tenant: %v", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("tenant quota rejection must not match ErrQueueFull (429 vs 503)")
	}
	// Another tenant is still admitted.
	tk3, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "b"}, blocker)
	if err != nil {
		t.Fatalf("tenant b should still be admitted: %v", err)
	}
	close(gate)
	for _, tk := range []*Ticket{tk1, tk2, tk3} {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInteractiveLanePreemptsBatch queues batch scans behind an occupied
// slot, then a late interactive point-query, and asserts the interactive
// one is granted first.
func TestInteractiveLanePreemptsBatch(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 16, Tenants: map[string]TenantConfig{}})
	defer s.Close()

	gate := make(chan struct{})
	first, err := s.SubmitTenant(nil, SubmitOpts{Lane: LaneBatch}, func(context.Context) (interface{}, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitGranted(t, first)
	noop := func(context.Context) (interface{}, error) { return nil, nil }
	var batch []*Ticket
	for i := 0; i < 5; i++ {
		tk, err := s.SubmitTenant(nil, SubmitOpts{Lane: LaneBatch}, noop)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, tk)
	}
	inter, err := s.SubmitTenant(nil, SubmitOpts{Lane: LaneInteractive}, noop)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	if _, err := inter.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := inter.Round(); got != 2 {
		t.Errorf("interactive query granted at round %d, want 2 (before all queued batch work)", got)
	}
	for _, tk := range batch {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantMaxInFlightCap asserts a capped tenant never runs more than
// its MaxInFlight concurrently even with free global slots.
func TestTenantMaxInFlightCap(t *testing.T) {
	s := NewScheduler(Config{
		MaxInFlight: 4,
		QueueDepth:  64,
		Tenants:     map[string]TenantConfig{"capped": {MaxInFlight: 1}},
	})
	defer s.Close()

	var cur, peak atomic.Int64
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "capped"}, func(context.Context) (interface{}, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if peak.Load() != 1 {
		t.Errorf("capped tenant peaked at %d concurrent queries, want 1", peak.Load())
	}
}

// TestFairCloseDrains mirrors TestCloseDrains on the fair path.
func TestFairCloseDrains(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 2, QueueDepth: 64, Tenants: map[string]TenantConfig{}})
	var ran atomic.Int64
	var tickets []*Ticket
	for i := 0; i < 16; i++ {
		tk, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "t"}, func(context.Context) (interface{}, error) {
			time.Sleep(200 * time.Microsecond)
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	s.Close()
	if ran.Load() != 16 {
		t.Fatalf("Close drained %d of 16 queued jobs", ran.Load())
	}
	for _, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatal("ticket not completed after Close")
		}
	}
	if _, err := s.SubmitTenant(nil, SubmitOpts{}, func(context.Context) (interface{}, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: got %v, want ErrClosed", err)
	}
}

// TestFairCanceledQueuedSkipped asserts a queued job whose context dies
// is skipped without occupying a slot, like the legacy path.
func TestFairCanceledQueuedSkipped(t *testing.T) {
	s := NewScheduler(Config{MaxInFlight: 1, QueueDepth: 8, Tenants: map[string]TenantConfig{}})
	defer s.Close()
	gate := make(chan struct{})
	first, err := s.SubmitTenant(nil, SubmitOpts{}, func(context.Context) (interface{}, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitGranted(t, first)
	ctx, cancel := context.WithCancel(context.Background())
	victim, err := s.SubmitTenant(ctx, SubmitOpts{}, func(context.Context) (interface{}, error) {
		t.Error("canceled job must not run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)
	if _, err := victim.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim: got %v, want context.Canceled", err)
	}
	if victim.Round() != 0 {
		t.Error("canceled queued job consumed a grant round")
	}
}

// TestSubmitTenantWaitBlocksOnQuota asserts Wait-mode admission blocks on
// an exhausted quota and resumes when the backlog drains.
func TestSubmitTenantWaitBlocksOnQuota(t *testing.T) {
	s := NewScheduler(Config{
		MaxInFlight: 1,
		QueueDepth:  8,
		Tenants:     map[string]TenantConfig{"a": {MaxQueued: 1}},
	})
	defer s.Close()
	gate := make(chan struct{})
	first, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "a"}, func(context.Context) (interface{}, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitGranted(t, first)
	noop := func(context.Context) (interface{}, error) { return nil, nil }
	if _, err := s.SubmitTenant(nil, SubmitOpts{Tenant: "a"}, noop); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	var waited *Ticket
	var waitErr error
	go func() {
		defer wg.Done()
		close(started)
		waited, waitErr = s.SubmitTenant(nil, SubmitOpts{Tenant: "a", Wait: true}, noop)
	}()
	<-started
	time.Sleep(2 * time.Millisecond) // the waiter is (very likely) blocked on quota now
	close(gate)
	wg.Wait()
	if waitErr != nil {
		t.Fatal(waitErr)
	}
	if _, err := waited.Wait(); err != nil {
		t.Fatal(err)
	}
}
