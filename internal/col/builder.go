package col

import (
	"fmt"
	"sort"

	"aquoman/internal/enc"
	"aquoman/internal/flash"
)

// TableBuilder accumulates rows column-wise and writes them to flash on
// Finalize. Dict columns are dictionary-encoded with codes assigned in
// lexicographic order of the distinct strings (so code order == string
// order); Text columns append to a string heap.
type TableBuilder struct {
	store  *Store
	schema Schema
	num    int

	ints   [][]Value  // per Non-string column: buffered values
	strs   [][]string // per string column: buffered strings
	strIdx []int      // schema index -> strs index (or -1)
	intIdx []int      // schema index -> ints index (or -1)
	// dictSeeds pre-interns dictionary values (SeedDictionary).
	dictSeeds map[string][]string
	// encSel is the table-wide encoding selection (seeded from the
	// store's default); colEnc holds per-column overrides.
	encSel enc.Selection
	colEnc map[string]enc.Selection
	done   bool
}

// NewTable starts building a table with the given schema. The table
// replaces any existing table of the same name when finalized.
func (s *Store) NewTable(schema Schema) *TableBuilder {
	b := &TableBuilder{store: s, schema: schema, encSel: s.DefaultEncoding}
	b.strIdx = make([]int, len(schema.Cols))
	b.intIdx = make([]int, len(schema.Cols))
	for i, c := range schema.Cols {
		if c.Typ.IsString() {
			b.strIdx[i] = len(b.strs)
			b.intIdx[i] = -1
			b.strs = append(b.strs, nil)
		} else {
			b.intIdx[i] = len(b.ints)
			b.strIdx[i] = -1
			b.ints = append(b.ints, nil)
		}
	}
	return b
}

// Append adds one row. vals must match the schema positionally: string
// columns take string, everything else takes an int64-compatible Value.
func (b *TableBuilder) Append(vals ...any) {
	if len(vals) != len(b.schema.Cols) {
		panic(fmt.Sprintf("col: Append got %d values for %d columns of %s",
			len(vals), len(b.schema.Cols), b.schema.Name))
	}
	for i, v := range vals {
		if si := b.strIdx[i]; si >= 0 {
			s, ok := v.(string)
			if !ok {
				panic(fmt.Sprintf("col: column %s wants string, got %T",
					b.schema.Cols[i].Name, v))
			}
			b.strs[si] = append(b.strs[si], s)
			continue
		}
		var x Value
		switch n := v.(type) {
		case int64:
			x = n
		case int:
			x = int64(n)
		case int32:
			x = int64(n)
		case bool:
			if n {
				x = 1
			}
		default:
			panic(fmt.Sprintf("col: column %s wants integer value, got %T",
				b.schema.Cols[i].Name, v))
		}
		b.ints[b.intIdx[i]] = append(b.ints[b.intIdx[i]], x)
	}
	b.num++
}

// AppendColumnValues bulk-appends an entire integer column; all integer
// columns must be given the same length and string columns must use
// AppendColumnStrings. It is the fast path for generators.
func (b *TableBuilder) AppendColumnValues(name string, vals []Value) {
	i := b.colIndex(name)
	if b.intIdx[i] < 0 {
		panic(fmt.Sprintf("col: %s is a string column", name))
	}
	b.ints[b.intIdx[i]] = append(b.ints[b.intIdx[i]], vals...)
}

// AppendColumnStrings bulk-appends an entire string column.
func (b *TableBuilder) AppendColumnStrings(name string, vals []string) {
	i := b.colIndex(name)
	if b.strIdx[i] < 0 {
		panic(fmt.Sprintf("col: %s is not a string column", name))
	}
	b.strs[b.strIdx[i]] = append(b.strs[b.strIdx[i]], vals...)
}

// SetNumRows fixes the row count after bulk appends.
func (b *TableBuilder) SetNumRows(n int) { b.num = n }

// SetEncoding overrides the store-default encoding selection for every
// column of this table.
func (b *TableBuilder) SetEncoding(sel enc.Selection) { b.encSel = sel }

// SetColumnEncoding overrides the encoding selection for one column.
func (b *TableBuilder) SetColumnEncoding(name string, sel enc.Selection) {
	b.colIndex(name) // validate
	if b.colEnc == nil {
		b.colEnc = make(map[string]enc.Selection)
	}
	b.colEnc[name] = sel
}

// SeedDictionary pre-interns values into a Dict column's dictionary so
// that stores holding different subsets of a domain (e.g. horizontal
// partitions) still assign identical codes. The final dictionary is the
// sorted union of the seed and the appended values.
func (b *TableBuilder) SeedDictionary(name string, values []string) {
	i := b.colIndex(name)
	if b.schema.Cols[i].Typ != Dict {
		panic(fmt.Sprintf("col: SeedDictionary on non-dict column %q", name))
	}
	if b.dictSeeds == nil {
		b.dictSeeds = make(map[string][]string)
	}
	b.dictSeeds[name] = append(b.dictSeeds[name], values...)
}

func (b *TableBuilder) colIndex(name string) int {
	for i, c := range b.schema.Cols {
		if c.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("col: schema %s has no column %q", b.schema.Name, name))
}

// Finalize writes all column files to flash and registers the table.
func (b *TableBuilder) Finalize() (*Table, error) {
	if b.done {
		return nil, fmt.Errorf("col: table %s already finalized", b.schema.Name)
	}
	b.done = true
	t := &Table{
		Schema:  b.schema,
		NumRows: b.num,
		store:   b.store,
		cols:    make(map[string]*ColumnInfo),
	}
	for i, def := range b.schema.Cols {
		ci := &ColumnInfo{Def: def, numRows: b.num}
		base := b.schema.Name + "/" + def.Name
		ci.File = b.store.Dev.Create(base + ".dat")
		var vals []Value
		switch {
		case b.strIdx[i] >= 0 && def.Typ == Dict:
			strs := b.strs[b.strIdx[i]]
			if len(strs) != b.num {
				return nil, colLenErr(b.schema.Name, def.Name, len(strs), b.num)
			}
			dict, codes := dictEncode(strs, b.dictSeeds[def.Name])
			ci.dict = dict
			ci.Heap = b.store.Dev.Create(base + ".heap")
			writeHeap(ci.Heap, dict)
			vals = codes
		case b.strIdx[i] >= 0: // Text
			strs := b.strs[b.strIdx[i]]
			if len(strs) != b.num {
				return nil, colLenErr(b.schema.Name, def.Name, len(strs), b.num)
			}
			ci.Heap = b.store.Dev.Create(base + ".heap")
			vals = writeHeap(ci.Heap, strs)
		default:
			vals = b.ints[b.intIdx[i]]
			if len(vals) != b.num {
				return nil, colLenErr(b.schema.Name, def.Name, len(vals), b.num)
			}
		}
		ci.Sorted, ci.Unique = orderFlags(vals)
		sel := b.encSel
		if o, ok := b.colEnc[def.Name]; ok {
			sel = o
		}
		if err := writeColumnData(ci, vals, sel); err != nil {
			return nil, fmt.Errorf("col: table %s column %s: %w", b.schema.Name, def.Name, err)
		}
		t.cols[def.Name] = ci
	}
	b.store.mu.Lock()
	b.store.tables[t.Name] = t
	b.store.mu.Unlock()
	// Release builder buffers.
	b.ints, b.strs = nil, nil
	return t, nil
}

func colLenErr(table, col string, got, want int) error {
	return fmt.Errorf("col: table %s column %s has %d values, want %d", table, col, got, want)
}

// writeColumnData appends the column's values to its (fresh) flash file
// under the selected encoding and records the page directory on ci. The
// raw selection keeps the legacy fixed-width layout byte-identical.
func writeColumnData(ci *ColumnInfo, vals []Value, sel enc.Selection) error {
	codec := sel.Pick(vals, ci.Def.Typ.Width())
	if codec == enc.Raw {
		ci.Enc = nil
		ci.File.Append(encode(ci.Def.Typ, vals), flash.Host)
		return nil
	}
	data, meta, err := enc.EncodeColumn(vals, codec)
	if err != nil {
		return err
	}
	ci.Enc = meta
	ci.File.Append(data, flash.Host)
	return nil
}

// orderFlags reports whether vals are non-decreasing / strictly
// increasing.
func orderFlags(vals []Value) (sorted, unique bool) {
	sorted, unique = true, true
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return false, false
		}
		if vals[i] == vals[i-1] {
			unique = false
		}
	}
	return sorted, unique
}

// dictEncode returns the sorted distinct strings (including any seeded
// values) and the per-row codes.
func dictEncode(strs, seed []string) ([]string, []Value) {
	set := make(map[string]struct{}, 64)
	for _, s := range seed {
		set[s] = struct{}{}
	}
	for _, s := range strs {
		set[s] = struct{}{}
	}
	dict := make([]string, 0, len(set))
	for s := range set {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	code := make(map[string]Value, len(dict))
	for i, s := range dict {
		code[s] = Value(i)
	}
	out := make([]Value, len(strs))
	for i, s := range strs {
		out[i] = code[s]
	}
	return dict, out
}

// writeHeap appends length-prefixed strings to heap and returns each
// string's starting offset (the Text column's stored values). For Dict
// columns the returned offsets are unused; the heap just persists the
// dictionary.
func writeHeap(heap *flash.File, strs []string) []Value {
	offs := make([]Value, len(strs))
	var buf []byte
	var off int64
	for i, s := range strs {
		offs[i] = off
		var l [4]byte
		l[0] = byte(len(s))
		l[1] = byte(len(s) >> 8)
		l[2] = byte(len(s) >> 16)
		l[3] = byte(len(s) >> 24)
		buf = append(buf, l[:]...)
		buf = append(buf, s...)
		off += int64(4 + len(s))
		if len(buf) >= 1<<20 {
			heap.Append(buf, flash.Host)
			buf = buf[:0]
		}
	}
	heap.Append(buf, flash.Host)
	return offs
}

// AddRowIDColumn attaches a materialized RowID column (MonetDB's join
// index for a foreign key) to table t under the given name. vals[i] must
// be the referenced table's row index for row i.
func (t *Table) AddRowIDColumn(name string, vals []Value) error {
	if len(vals) != t.NumRows {
		return colLenErr(t.Name, name, len(vals), t.NumRows)
	}
	if t.HasColumn(name) {
		return fmt.Errorf("col: table %s already has column %q", t.Name, name)
	}
	def := ColDef{Name: name, Typ: RowID}
	ci := &ColumnInfo{Def: def, numRows: t.NumRows}
	ci.Sorted, ci.Unique = orderFlags(vals)
	ci.File = t.store.Dev.Create(t.Name + "/" + name + ".dat")
	if err := writeColumnData(ci, vals, t.store.DefaultEncoding); err != nil {
		return fmt.Errorf("col: table %s column %s: %w", t.Name, name, err)
	}
	t.cols[name] = ci
	t.Cols = append(t.Cols, def)
	return nil
}

// ReEncodeColumn rewrites one column's flash file under a (possibly
// different) encoding selection. The file is re-created in place, which
// bumps the device's file generation and invalidates any page cache in
// front of it — stale raw pages can never be served for the re-encoded
// layout.
func (t *Table) ReEncodeColumn(name string, sel enc.Selection) error {
	ci, err := t.Column(name)
	if err != nil {
		return err
	}
	vals, err := ci.ReadAll(flash.Host)
	if err != nil {
		return err
	}
	ci.File = t.store.Dev.Create(t.Name + "/" + name + ".dat")
	if err := writeColumnData(ci, vals, sel); err != nil {
		return fmt.Errorf("col: table %s column %s: %w", t.Name, name, err)
	}
	return nil
}

// ReEncodeTable rewrites every column of the table under sel.
func (t *Table) ReEncodeTable(sel enc.Selection) error {
	for _, name := range t.ColumnNames() {
		if err := t.ReEncodeColumn(name, sel); err != nil {
			return err
		}
	}
	return nil
}

// RowIDColumnName is the naming convention for a foreign-key column's
// materialized RowID companion.
func RowIDColumnName(fkCol string) string { return fkCol + "@rowid" }

// MaterializeFK builds and attaches the RowID companion column for
// fact.fkCol referencing dim.pkCol. Every foreign key must find its
// primary key (TPC-H guarantees referential integrity).
func MaterializeFK(fact *Table, fkCol string, dim *Table, pkCol string) error {
	fk, err := fact.Column(fkCol)
	if err != nil {
		return err
	}
	pk, err := dim.Column(pkCol)
	if err != nil {
		return err
	}
	pkVals, err := pk.ReadAll(flash.Host)
	if err != nil {
		return err
	}
	idx := make(map[Value]Value, len(pkVals))
	for i, v := range pkVals {
		idx[v] = Value(i)
	}
	fkVals, err := fk.ReadAll(flash.Host)
	if err != nil {
		return err
	}
	rowids := make([]Value, len(fkVals))
	for i, v := range fkVals {
		r, ok := idx[v]
		if !ok {
			return fmt.Errorf("col: %s.%s=%d has no match in %s.%s",
				fact.Name, fkCol, v, dim.Name, pkCol)
		}
		rowids[i] = r
	}
	return fact.AddRowIDColumn(RowIDColumnName(fkCol), rowids)
}
