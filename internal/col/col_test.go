package col

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aquoman/internal/flash"
)

func testStore() *Store { return NewStore(flash.NewDevice()) }

func TestTypeWidths(t *testing.T) {
	want := map[Type]int{
		Int64: 8, Int32: 4, Date: 4, Decimal: 4, Dict: 4, Text: 4, Bool: 1, RowID: 8,
	}
	for typ, w := range want {
		if typ.Width() != w {
			t.Errorf("%s.Width = %d, want %d", typ, typ.Width(), w)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	v := MustParseDate("1998-09-01")
	if DateString(v) != "1998-09-01" {
		t.Fatalf("DateString = %q", DateString(v))
	}
	if DateYear(v) != 1998 {
		t.Fatalf("DateYear = %d", DateYear(v))
	}
	if DateValue(1998, 9, 1) != v {
		t.Fatal("DateValue mismatch")
	}
	if MustParseDate("1992-01-01") >= MustParseDate("1998-12-31") {
		t.Fatal("date ordering broken")
	}
}

func TestDecimalString(t *testing.T) {
	cases := map[Value]string{
		0:      "0.00",
		5:      "0.05",
		123:    "1.23",
		-10001: "-100.01",
	}
	for v, want := range cases {
		if got := DecimalString(v); got != want {
			t.Errorf("DecimalString(%d) = %q, want %q", v, got, want)
		}
	}
	if DecimalValue(12, 34) != 1234 {
		t.Fatal("DecimalValue")
	}
}

func buildSample(t *testing.T, s *Store) *Table {
	t.Helper()
	b := s.NewTable(Schema{
		Name: "sales",
		Cols: []ColDef{
			{Name: "id", Typ: Int64},
			{Name: "dept", Typ: Dict},
			{Name: "price", Typ: Decimal},
			{Name: "day", Typ: Date},
			{Name: "note", Typ: Text},
		},
	})
	depts := []string{"shoes", "books", "toys"}
	for i := 0; i < 100; i++ {
		b.Append(int64(i), depts[i%3], Value(i*100+50), DateValue(2018, 1, 1+i%28),
			"note-"+depts[i%3])
	}
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestBuildAndReadBack(t *testing.T) {
	s := testStore()
	tab := buildSample(t, s)
	if tab.NumRows != 100 {
		t.Fatalf("NumRows = %d", tab.NumRows)
	}
	if tab.NumVecs() != 4 {
		t.Fatalf("NumVecs = %d, want 4", tab.NumVecs())
	}
	ids := tab.MustColumn("id").MustReadAll(flash.Host)
	for i, v := range ids {
		if v != Value(i) {
			t.Fatalf("id[%d] = %d", i, v)
		}
	}
	prices := tab.MustColumn("price").MustReadAll(flash.Host)
	if prices[3] != 350 {
		t.Fatalf("price[3] = %d", prices[3])
	}
}

func TestDictCodesSorted(t *testing.T) {
	s := testStore()
	tab := buildSample(t, s)
	dept := tab.MustColumn("dept")
	dict := dept.Dict()
	// books < shoes < toys lexicographically.
	if len(dict) != 3 || dict[0] != "books" || dict[1] != "shoes" || dict[2] != "toys" {
		t.Fatalf("dict = %v", dict)
	}
	code, ok := dept.Code("shoes")
	if !ok || code != 1 {
		t.Fatalf("Code(shoes) = %d, %v", code, ok)
	}
	if _, ok := dept.Code("absent"); ok {
		t.Fatal("Code(absent) found")
	}
	vals := dept.MustReadAll(flash.Host)
	if dept.MustStr(vals[0], flash.Host) != "shoes" { // row 0 is dept shoes (i%3==0)
		t.Fatalf("row0 dept = %q", dept.MustStr(vals[0], flash.Host))
	}
}

func TestCodeRangeForPrefix(t *testing.T) {
	s := testStore()
	b := s.NewTable(Schema{Name: "p", Cols: []ColDef{{Name: "ty", Typ: Dict}}})
	for _, v := range []string{"ECONOMY BRASS", "ECONOMY TIN", "LARGE BRASS", "MEDIUM TIN", "STANDARD BRASS"} {
		b.Append(v)
	}
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	c := tab.MustColumn("ty")
	lo, hi := c.CodeRangeForPrefix("ECONOMY")
	if lo != 0 || hi != 2 {
		t.Fatalf("prefix range = [%d,%d), want [0,2)", lo, hi)
	}
	lo, hi = c.CodeRangeForPrefix("MEDIUM")
	if hi-lo != 1 {
		t.Fatalf("MEDIUM range = [%d,%d)", lo, hi)
	}
	lo, hi = c.CodeRangeForPrefix("ZZZ")
	if lo != hi {
		t.Fatalf("ZZZ range = [%d,%d), want empty", lo, hi)
	}
}

func TestTextHeap(t *testing.T) {
	s := testStore()
	tab := buildSample(t, s)
	note := tab.MustColumn("note")
	offs := note.MustReadAll(flash.Host)
	if got := note.MustStr(offs[1], flash.Host); got != "note-books" {
		t.Fatalf("note[1] = %q", got)
	}
	if note.HeapBytes() == 0 {
		t.Fatal("HeapBytes = 0")
	}
}

func TestReadVecAndRange(t *testing.T) {
	s := testStore()
	tab := buildSample(t, s)
	id := tab.MustColumn("id")
	var out [32]Value
	if n, _ := id.ReadVec(3, flash.Host, out[:]); n != 4 { // rows 96..99
		t.Fatalf("ReadVec(3) = %d rows, want 4", n)
	}
	if out[0] != 96 || out[3] != 99 {
		t.Fatalf("vec3 = %v", out[:4])
	}
	if n, _ := id.ReadVec(4, flash.Host, out[:]); n != 0 {
		t.Fatalf("ReadVec(4) = %d, want 0", n)
	}
	buf := make([]Value, 10)
	if n, _ := id.ReadRange(95, 10, flash.Host, buf); n != 5 {
		t.Fatalf("ReadRange = %d, want 5", n)
	}
}

func TestGather(t *testing.T) {
	s := testStore()
	tab := buildSample(t, s)
	id := tab.MustColumn("id")
	got, _ := id.Gather([]Value{5, 50, 99, 0}, flash.Aquoman)
	want := []Value{5, 50, 99, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Gather = %v", got)
		}
	}
}

func TestMaterializeFK(t *testing.T) {
	s := testStore()
	db := s.NewTable(Schema{Name: "dim", Cols: []ColDef{{Name: "k", Typ: Int64}, {Name: "v", Typ: Int64}}})
	// Sparse keys, shuffled order.
	keys := []Value{40, 10, 30, 20}
	for i, k := range keys {
		db.Append(k, int64(i*100))
	}
	dim, err := db.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	fb := s.NewTable(Schema{Name: "fact", Cols: []ColDef{{Name: "fk", Typ: Int64}}})
	for _, k := range []Value{10, 10, 20, 40, 30} {
		fb.Append(k)
	}
	fact, err := fb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := MaterializeFK(fact, "fk", dim, "k"); err != nil {
		t.Fatal(err)
	}
	rid := fact.MustColumn(RowIDColumnName("fk")).MustReadAll(flash.Host)
	want := []Value{1, 1, 3, 0, 2}
	for i := range want {
		if rid[i] != want[i] {
			t.Fatalf("rowids = %v, want %v", rid, want)
		}
	}
	// Dangling FK is an error.
	fb2 := s.NewTable(Schema{Name: "bad", Cols: []ColDef{{Name: "fk", Typ: Int64}}})
	fb2.Append(int64(999))
	bad, _ := fb2.Finalize()
	if err := MaterializeFK(bad, "fk", dim, "k"); err == nil {
		t.Fatal("dangling FK not detected")
	}
}

func TestFinalizeLengthMismatch(t *testing.T) {
	s := testStore()
	b := s.NewTable(Schema{Name: "x", Cols: []ColDef{{Name: "a", Typ: Int64}}})
	b.AppendColumnValues("a", []Value{1, 2, 3})
	b.SetNumRows(5)
	if _, err := b.Finalize(); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestInt32Overflow(t *testing.T) {
	s := testStore()
	b := s.NewTable(Schema{Name: "x", Cols: []ColDef{{Name: "a", Typ: Int32}}})
	b.Append(int64(1) << 40)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on 32-bit overflow")
		}
	}()
	b.Finalize()
}

// Property: every stored integer value round-trips through flash encoding.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = rng.Int63n(1<<31) - 1<<30
		}
		s := testStore()
		b := s.NewTable(Schema{Name: "q", Cols: []ColDef{{Name: "a", Typ: Int32}}})
		b.AppendColumnValues("a", vals)
		b.SetNumRows(n)
		tab, err := b.Finalize()
		if err != nil {
			return false
		}
		got := tab.MustColumn("a").MustReadAll(flash.Host)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: dict encoding preserves string order on codes.
func TestQuickDictOrder(t *testing.T) {
	f := func(words []string) bool {
		if len(words) == 0 {
			return true
		}
		s := testStore()
		b := s.NewTable(Schema{Name: "q", Cols: []ColDef{{Name: "w", Typ: Dict}}})
		for _, w := range words {
			b.Append(w)
		}
		tab, err := b.Finalize()
		if err != nil {
			return false
		}
		c := tab.MustColumn("w")
		codes := c.MustReadAll(flash.Host)
		for i := range words {
			for j := range words {
				if (words[i] < words[j]) != (codes[i] < codes[j]) {
					return false
				}
			}
			if c.MustStr(codes[i], flash.Host) != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
