package col

import (
	"sync"
	"testing"

	"aquoman/internal/bitvec"
	"aquoman/internal/flash"
	"aquoman/internal/sched"
)

// Concurrent readers — PagedReader streams, random ReadRange windows and
// Gathers — over one column store, with the shared page cache in front of
// the device, must all see identical data. Run with -race this pins down
// the col/flash/cache read path used by concurrent queries.
func TestConcurrentReadersSharedCache(t *testing.T) {
	dev := flash.NewDevice()
	s := NewStore(dev)
	b := s.NewTable(Schema{Name: "t", Cols: []ColDef{{Name: "v", Typ: Int64}}})
	const rows = 40000
	for i := 0; i < rows; i++ {
		b.Append(int64(i) * 3)
	}
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	dev.SetPageCache(sched.NewPageCache(16 * flash.PageSize))
	ci := tab.MustColumn("v")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // sequential paged stream
				r := NewPagedReader(ci, flash.Aquoman)
				out := make([]Value, bitvec.VecSize)
				row := 0
				for vec := 0; vec*bitvec.VecSize < rows; vec++ {
					n, err := r.ReadVec(vec, out)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < n; i++ {
						if out[i] != int64(row)*3 {
							t.Errorf("vec %d row %d = %d", vec, row, out[i])
							return
						}
						row++
					}
				}
			case 1: // strided range windows
				out := make([]Value, 100)
				for start := g; start+100 < rows; start += 997 {
					n, err := ci.ReadRange(start, 100, flash.Host, out)
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < n; i++ {
						if out[i] != int64(start+i)*3 {
							t.Errorf("range[%d+%d] = %d", start, i, out[i])
							return
						}
					}
				}
			default: // random gathers
				rowids := make([]Value, 0, 64)
				for i := 0; i < 64; i++ {
					rowids = append(rowids, int64((i*2654435761+g)%rows))
				}
				for rep := 0; rep < 20; rep++ {
					got, err := ci.Gather(rowids, flash.Aquoman)
					if err != nil {
						t.Error(err)
						return
					}
					for i, id := range rowids {
						if got[i] != id*3 {
							t.Errorf("gather[%d] = %d, want %d", i, got[i], id*3)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
