package col

import (
	"os"
	"path/filepath"
	"testing"

	"aquoman/internal/flash"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testStore()
	tab := buildSample(t, s)
	if err := MaterializeFK(tab, "id", tab, "id"); err != nil {
		t.Fatal(err) // self-FK: every id maps to its own row
	}
	dir := t.TempDir()
	if err := SaveStore(s, dir); err != nil {
		t.Fatal(err)
	}
	// The manifest and column files exist on disk.
	if _, err := os.Stat(filepath.Join(dir, "catalog.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sales", "dept.heap")); err != nil {
		t.Fatal(err)
	}

	dev := flash.NewDevice()
	loaded, err := LoadStore(dir, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Loading traffic must not pollute experiment stats.
	if dev.Stats().TotalPagesRead() != 0 || dev.Stats().PagesWritten[flash.Host] != 0 {
		t.Fatal("load left stats behind")
	}
	lt, err := loaded.Table("sales")
	if err != nil {
		t.Fatal(err)
	}
	if lt.NumRows != tab.NumRows || len(lt.Cols) != len(tab.Cols) {
		t.Fatalf("shape: %d/%d vs %d/%d", lt.NumRows, len(lt.Cols), tab.NumRows, len(tab.Cols))
	}
	// Values, dictionary, heap content, and order flags survive.
	for _, def := range tab.Cols {
		a := tab.MustColumn(def.Name).MustReadAll(flash.Host)
		b := lt.MustColumn(def.Name).MustReadAll(flash.Host)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("column %s row %d: %d vs %d", def.Name, i, a[i], b[i])
			}
		}
	}
	od := tab.MustColumn("dept")
	ld := lt.MustColumn("dept")
	if len(od.Dict()) != len(ld.Dict()) {
		t.Fatalf("dict sizes differ")
	}
	for i := range od.Dict() {
		if od.Dict()[i] != ld.Dict()[i] {
			t.Fatalf("dict[%d] = %q vs %q", i, od.Dict()[i], ld.Dict()[i])
		}
	}
	if got := ld.MustStr(1, flash.Host); got != "shoes" {
		t.Fatalf("dict decode = %q", got)
	}
	ln := lt.MustColumn("note")
	offs := ln.MustReadAll(flash.Host)
	if got := ln.MustStr(offs[0], flash.Host); got != "note-shoes" {
		t.Fatalf("heap decode = %q", got)
	}
	if !lt.MustColumn("id").Sorted || !lt.MustColumn("id").Unique {
		t.Fatal("order flags lost")
	}
	if !lt.MustColumn(RowIDColumnName("id")).Sorted {
		t.Fatal("rowid column flags lost")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadStore(t.TempDir(), flash.NewDevice()); err == nil {
		t.Fatal("missing catalog accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{bad"), 0o644)
	if _, err := LoadStore(dir, flash.NewDevice()); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte(`{"version":9}`), 0o644)
	if _, err := LoadStore(dir, flash.NewDevice()); err == nil {
		t.Fatal("future version accepted")
	}
}
