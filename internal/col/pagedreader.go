package col

import (
	"context"

	"aquoman/internal/bitvec"
	"aquoman/internal/flash"
)

// PagedReader streams a column through a one-page buffer, the way
// AQUOMAN's Column Reader and Table Reader consume flash (the prototype's
// 1 MB Flash Page Buffer): each flash page is read at most once per
// sequential pass, and pages whose Row Vectors are all masked out are
// skipped entirely.
type PagedReader struct {
	ci  *ColumnInfo
	who flash.Requester
	ctx context.Context // nil = never cancelled

	curPage int64 // -1 = empty
	buf     []byte

	// PagesRead / PagesSkipped count this pass's page traffic.
	PagesRead    int64
	PagesSkipped int64
	lastSkipped  int64
}

// NewPagedReader starts a sequential pass over the column.
func NewPagedReader(ci *ColumnInfo, who flash.Requester) *PagedReader {
	return &PagedReader{ci: ci, who: who, curPage: -1, lastSkipped: -1}
}

// SetContext attaches a cancellation context to the pass: every page load
// checks ctx first, so a cancelled query stops issuing flash page reads
// at the next page boundary. A nil ctx (the default) never cancels.
func (r *PagedReader) SetContext(ctx context.Context) { r.ctx = ctx }

// RowsPerPage returns how many rows one flash page of this column holds.
func (r *PagedReader) RowsPerPage() int {
	return flash.PageSize / r.ci.Def.Typ.Width()
}

// VecsPerPage returns how many 32-row vectors one page holds.
func (r *PagedReader) VecsPerPage() int { return r.RowsPerPage() / bitvec.VecSize }

// ReadVec fills out with Row Vector vec and returns the number of valid
// rows (0 past the end). Page loads are accounted once per page; a page
// read failing (fault injection, budget exhausted) fails the vector.
func (r *PagedReader) ReadVec(vec int, out []Value) (int, error) {
	w := r.ci.Def.Typ.Width()
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, nil
	}
	page := int64(start) * int64(w) / flash.PageSize
	if page != r.curPage {
		wasSkipped := page == r.lastSkipped
		buf, err := r.ci.File.ReadPageCtx(r.ctx, page, r.who)
		if err != nil {
			return 0, err
		}
		if wasSkipped {
			// An earlier vector of this page was masked; the page is
			// being read after all.
			r.PagesSkipped--
			r.lastSkipped = -1
		}
		r.buf = buf
		r.curPage = page
		r.PagesRead++
	}
	count := bitvec.VecSize
	if start+count > r.ci.numRows {
		count = r.ci.numRows - start
	}
	off := start*w - int(page)*flash.PageSize
	decode(r.ci.Def.Typ, r.buf[off:off+count*w], out[:count])
	return count, nil
}

// SkipVec notes that Row Vector vec was masked out. When every vector of
// a page is skipped the whole page read is avoided (the Table Reader's
// {RowVecID, MaskAllZero} path).
func (r *PagedReader) SkipVec(vec int) {
	w := r.ci.Def.Typ.Width()
	page := int64(vec*bitvec.VecSize) * int64(w) / flash.PageSize
	if page != r.curPage && page != r.lastSkipped {
		r.PagesSkipped++
		r.lastSkipped = page
	}
}
