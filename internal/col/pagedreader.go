package col

import (
	"context"
	"fmt"

	"aquoman/internal/bitvec"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
)

// ReaderStats counts one sequential pass's page traffic, including the
// encoding-aware accounting: pages avoided by zone-map pruning, flash
// bytes saved relative to the raw fixed-width layout, and decoded page
// counts per codec.
type ReaderStats struct {
	// PagesRead / PagesSkipped count this pass's page traffic.
	PagesRead    int64
	PagesSkipped int64
	// PagesPruned counts pages never read because the predicate's
	// interval over the page's zone map was provably zero.
	PagesPruned int64
	// EncBytesSaved accumulates, per decoded page, how many fewer flash
	// bytes the encoded page cost than its rows would have cost raw.
	EncBytesSaved int64
	// EncDecoded counts decoded pages per codec (Raw stays zero).
	EncDecoded [enc.NumCodecs]int64
}

// Add accumulates another pass's counters into s.
func (s *ReaderStats) Add(o ReaderStats) {
	s.PagesRead += o.PagesRead
	s.PagesSkipped += o.PagesSkipped
	s.PagesPruned += o.PagesPruned
	s.EncBytesSaved += o.EncBytesSaved
	for i := range s.EncDecoded {
		s.EncDecoded[i] += o.EncDecoded[i]
	}
}

// PagedReader streams a column through a one-page buffer, the way
// AQUOMAN's Column Reader and Table Reader consume flash (the prototype's
// 1 MB Flash Page Buffer): each flash page is read at most once per
// sequential pass, and pages whose Row Vectors are all masked out are
// skipped entirely. On encoded columns the buffer holds one decoded page
// and the reader exposes the encoded representation (dictionary codes,
// frame-of-reference deltas) so callers can evaluate on it directly.
type PagedReader struct {
	ci  *ColumnInfo
	who flash.Requester
	ctx context.Context // nil = never cancelled

	curPage int64 // -1 = empty
	buf     []byte
	page    *enc.Page // decoded page for encoded columns

	ReaderStats
	lastSkipped int64
	pruned      map[int]bool
}

// NewPagedReader starts a sequential pass over the column.
func NewPagedReader(ci *ColumnInfo, who flash.Requester) *PagedReader {
	return &PagedReader{ci: ci, who: who, curPage: -1, lastSkipped: -1}
}

// SetContext attaches a cancellation context to the pass: every page load
// checks ctx first, so a cancelled query stops issuing flash page reads
// at the next page boundary. A nil ctx (the default) never cancels.
func (r *PagedReader) SetContext(ctx context.Context) { r.ctx = ctx }

// Codec reports the column's storage codec (Raw for the legacy layout).
func (r *PagedReader) Codec() enc.Codec { return r.ci.Codec() }

// Meta returns the encoded column's page directory, or nil for raw.
func (r *PagedReader) Meta() *enc.ColumnMeta { return r.ci.Enc }

// RowsPerPage returns how many rows one flash page of this column holds.
// Only meaningful for raw columns; encoded pages carry variable counts.
func (r *PagedReader) RowsPerPage() int {
	return flash.PageSize / r.ci.Def.Typ.Width()
}

// VecsPerPage returns how many 32-row vectors one page holds.
func (r *PagedReader) VecsPerPage() int { return r.RowsPerPage() / bitvec.VecSize }

// MarkPruned records that page pi was eliminated by zone-map pruning
// before the scan. SkipVec calls landing on a pruned page are not double
// counted as mask skips; if the page ends up read after all (it can't be,
// when pruning is sound, but the accounting stays honest) the prune is
// revoked.
func (r *PagedReader) MarkPruned(pi int) {
	if r.pruned == nil {
		r.pruned = make(map[int]bool)
	}
	if !r.pruned[pi] {
		r.pruned[pi] = true
		r.PagesPruned++
	}
}

// vecPage maps a Row Vector to its flash page index.
func (r *PagedReader) vecPage(vec int) int64 {
	start := vec * bitvec.VecSize
	if r.ci.Enc != nil {
		return int64(r.ci.Enc.PageFor(start))
	}
	return int64(start) * int64(r.ci.Def.Typ.Width()) / flash.PageSize
}

// loadEncPage reads and decodes encoded page pi, buffering one page.
func (r *PagedReader) loadEncPage(pi int) (*enc.Page, error) {
	if int64(pi) == r.curPage {
		return r.page, nil
	}
	wasSkipped := int64(pi) == r.lastSkipped
	buf, err := r.ci.File.ReadPageCtx(r.ctx, int64(pi), r.who)
	if err != nil {
		return nil, err
	}
	p, err := enc.DecodePage(buf, r.ci.Enc.Dict)
	if err != nil {
		return nil, fmt.Errorf("col: column %s page %d: %w", r.ci.Def.Name, pi, err)
	}
	if wasSkipped {
		// An earlier vector of this page was masked; the page is being
		// read after all.
		r.PagesSkipped--
		r.lastSkipped = -1
	}
	if r.pruned[pi] {
		delete(r.pruned, pi)
		r.PagesPruned--
	}
	r.page = p
	r.curPage = int64(pi)
	r.PagesRead++
	r.EncDecoded[p.Codec]++
	if saved := int64(p.Count)*int64(r.ci.Def.Typ.Width()) - flash.PageSize; saved > 0 {
		r.EncBytesSaved += saved
	}
	return p, nil
}

// encVecSpan locates Row Vector vec inside its encoded page. Interior
// pages hold a multiple of 32 rows, so a vector never straddles pages.
func (r *PagedReader) encVecSpan(vec int) (pi, off, count int) {
	start := vec * bitvec.VecSize
	pi = r.ci.Enc.PageFor(start)
	pm := r.ci.Enc.Pages[pi]
	off = start - pm.StartRow
	count = bitvec.VecSize
	if start+count > r.ci.numRows {
		count = r.ci.numRows - start
	}
	return pi, off, count
}

// ReadVec fills out with Row Vector vec and returns the number of valid
// rows (0 past the end). Page loads are accounted once per page; a page
// read failing (fault injection, budget exhausted) fails the vector. On
// encoded columns the values are materialized from the decoded page.
func (r *PagedReader) ReadVec(vec int, out []Value) (int, error) {
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, nil
	}
	if r.ci.Enc != nil {
		pi, off, count := r.encVecSpan(vec)
		p, err := r.loadEncPage(pi)
		if err != nil {
			return 0, err
		}
		copy(out[:count], p.Values()[off:off+count])
		return count, nil
	}
	w := r.ci.Def.Typ.Width()
	page := int64(start) * int64(w) / flash.PageSize
	if page != r.curPage {
		wasSkipped := page == r.lastSkipped
		buf, err := r.ci.File.ReadPageCtx(r.ctx, page, r.who)
		if err != nil {
			return 0, err
		}
		if wasSkipped {
			// An earlier vector of this page was masked; the page is
			// being read after all.
			r.PagesSkipped--
			r.lastSkipped = -1
		}
		r.buf = buf
		r.curPage = page
		r.PagesRead++
	}
	count := bitvec.VecSize
	if start+count > r.ci.numRows {
		count = r.ci.numRows - start
	}
	off := start*w - int(page)*flash.PageSize
	decode(r.ci.Def.Typ, r.buf[off:off+count*w], out[:count])
	return count, nil
}

// ReadVecCodes fills out with the vector's dictionary codes without
// materializing values. ok is false when the column is not
// dictionary-encoded; the caller falls back to ReadVec.
func (r *PagedReader) ReadVecCodes(vec int, out []int64) (n int, ok bool, err error) {
	if r.ci.Enc == nil || r.ci.Enc.Codec != enc.Dict {
		return 0, false, nil
	}
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, true, nil
	}
	pi, off, count := r.encVecSpan(vec)
	p, err := r.loadEncPage(pi)
	if err != nil {
		return 0, true, err
	}
	copy(out[:count], p.Native[off:off+count])
	return count, true, nil
}

// ReadVecDeltas fills out with the vector's frame-of-reference deltas and
// returns the page base. ok is false when the column is not FOR-encoded
// or the page's domain is too wide for shifted-constant evaluation; the
// caller falls back to ReadVec.
func (r *PagedReader) ReadVecDeltas(vec int, out []int64) (n int, base int64, ok bool, err error) {
	if r.ci.Enc == nil || r.ci.Enc.Codec != enc.FOR {
		return 0, 0, false, nil
	}
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, 0, true, nil
	}
	pi, off, count := r.encVecSpan(vec)
	p, err := r.loadEncPage(pi)
	if err != nil {
		return 0, 0, true, err
	}
	if !p.DeltaSafe() {
		return 0, 0, false, nil
	}
	copy(out[:count], p.Native[off:off+count])
	return count, p.Base, true, nil
}

// SkipVec notes that Row Vector vec was masked out. When every vector of
// a page is skipped the whole page read is avoided (the Table Reader's
// {RowVecID, MaskAllZero} path). Vectors of zone-map-pruned pages are
// already accounted under PagesPruned and are not counted again.
func (r *PagedReader) SkipVec(vec int) {
	page := r.vecPage(vec)
	if r.pruned[int(page)] {
		return
	}
	if page != r.curPage && page != r.lastSkipped {
		r.PagesSkipped++
		r.lastSkipped = page
	}
}
