package col

import (
	"context"
	"fmt"

	"aquoman/internal/bitvec"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
	"aquoman/internal/pool"
)

// The process-wide pool hands out flash-page-sized buffers; these
// zero-length arrays fail to compile if the two constants ever diverge.
var (
	_ [pool.PageSize - flash.PageSize]struct{}
	_ [flash.PageSize - pool.PageSize]struct{}
)

// ReaderStats counts one sequential pass's page traffic, including the
// encoding-aware accounting: pages avoided by zone-map pruning, flash
// bytes saved relative to the raw fixed-width layout, and decoded page
// counts per codec.
type ReaderStats struct {
	// PagesRead / PagesSkipped count this pass's page traffic.
	PagesRead    int64
	PagesSkipped int64
	// PagesPruned counts pages never read because the predicate's
	// interval over the page's zone map was provably zero.
	PagesPruned int64
	// EncBytesSaved accumulates, per decoded page, how many fewer flash
	// bytes the encoded page cost than its rows would have cost raw.
	EncBytesSaved int64
	// EncDecoded counts decoded pages per codec (Raw stays zero). Pages
	// consumed whole by the encoded-aggregation kernel count here too:
	// the kernel is a decode that never materializes.
	EncDecoded [enc.NumCodecs]int64
}

// Add accumulates another pass's counters into s.
func (s *ReaderStats) Add(o ReaderStats) {
	s.PagesRead += o.PagesRead
	s.PagesSkipped += o.PagesSkipped
	s.PagesPruned += o.PagesPruned
	s.EncBytesSaved += o.EncBytesSaved
	for i := range s.EncDecoded {
		s.EncDecoded[i] += o.EncDecoded[i]
	}
}

// PagedReader streams a column through a one-page buffer, the way
// AQUOMAN's Column Reader and Table Reader consume flash (the prototype's
// 1 MB Flash Page Buffer): each flash page is read at most once per
// sequential pass, and pages whose Row Vectors are all masked out are
// skipped entirely. On encoded columns the buffer holds one decoded page
// and the reader exposes the encoded representation (dictionary codes,
// frame-of-reference deltas) so callers can evaluate on it directly.
//
// The page buffer is checked out of the process-wide pool on first use and
// returned by Close; the decoded-page scratch is reused across pages. A
// reader that has warmed up performs no heap allocation per page.
type PagedReader struct {
	ci  *ColumnInfo
	who flash.Requester
	ctx context.Context // nil = never cancelled

	bytesPage int64  // flash page currently in buf; -1 = empty
	bufN      int    // valid bytes of that page (the last page may be short)
	buf       []byte // pooled page image, acquired lazily, released by Close

	decPage int64    // encoded page currently decoded into page; -1 = none
	page    enc.Page // reusable decoded-page scratch

	encAccounted int64 // last page charged to EncDecoded/EncBytesSaved

	ReaderStats
	lastSkipped int64
	pruned      map[int]bool
}

// NewPagedReader starts a sequential pass over the column. Callers must
// Close the reader when the pass ends to return its pooled page buffer.
func NewPagedReader(ci *ColumnInfo, who flash.Requester) *PagedReader {
	return &PagedReader{
		ci: ci, who: who,
		bytesPage: -1, decPage: -1, encAccounted: -1, lastSkipped: -1,
	}
}

// Close ends the pass and returns the pooled page buffer. Idempotent; the
// reader must not read again afterwards (stats remain available).
func (r *PagedReader) Close() {
	if r.buf != nil {
		pool.Pages.Put(r.buf)
		r.buf = nil
	}
	r.bytesPage = -1
	r.bufN = 0
	r.decPage = -1
}

// SetContext attaches a cancellation context to the pass: every page load
// checks ctx first, so a cancelled query stops issuing flash page reads
// at the next page boundary. A nil ctx (the default) never cancels.
func (r *PagedReader) SetContext(ctx context.Context) { r.ctx = ctx }

// Codec reports the column's storage codec (Raw for the legacy layout).
func (r *PagedReader) Codec() enc.Codec { return r.ci.Codec() }

// Meta returns the encoded column's page directory, or nil for raw.
func (r *PagedReader) Meta() *enc.ColumnMeta { return r.ci.Enc }

// RowsPerPage returns how many rows one flash page of this column holds.
// Only meaningful for raw columns; encoded pages carry variable counts.
func (r *PagedReader) RowsPerPage() int {
	return flash.PageSize / r.ci.Def.Typ.Width()
}

// VecsPerPage returns how many 32-row vectors one page holds.
func (r *PagedReader) VecsPerPage() int { return r.RowsPerPage() / bitvec.VecSize }

// MarkPruned records that page pi was eliminated by zone-map pruning
// before the scan. SkipVec calls landing on a pruned page are not double
// counted as mask skips; if the page ends up read after all (it can't be,
// when pruning is sound, but the accounting stays honest) the prune is
// revoked.
func (r *PagedReader) MarkPruned(pi int) {
	if r.pruned == nil {
		r.pruned = make(map[int]bool)
	}
	if !r.pruned[pi] {
		r.pruned[pi] = true
		r.PagesPruned++
	}
}

// vecPage maps a Row Vector to its flash page index.
func (r *PagedReader) vecPage(vec int) int64 {
	start := vec * bitvec.VecSize
	if r.ci.Enc != nil {
		return int64(r.ci.Enc.PageFor(start))
	}
	return int64(start) * int64(r.ci.Def.Typ.Width()) / flash.PageSize
}

// loadPageBytes brings flash page pi into the pooled buffer and accounts
// the read (revoking a provisional skip or prune on the same page). The
// returned slice is valid until the next load on this reader.
func (r *PagedReader) loadPageBytes(pi int64) ([]byte, error) {
	if pi == r.bytesPage {
		return r.buf[:r.bufN], nil
	}
	if r.buf == nil {
		r.buf = pool.Pages.Get()
	}
	// Invalidate first: a failed read leaves the buffer clobbered, so the
	// cursor must not keep claiming the previous page's bytes.
	r.bytesPage = -1
	n, err := r.ci.File.ReadAtCtx(r.ctx, r.buf, pi*flash.PageSize, r.who)
	if err != nil {
		return nil, err
	}
	if pi == r.lastSkipped {
		// An earlier vector of this page was masked; the page is being
		// read after all.
		r.PagesSkipped--
		r.lastSkipped = -1
	}
	if r.pruned[int(pi)] {
		delete(r.pruned, int(pi))
		r.PagesPruned--
	}
	r.bytesPage = pi
	r.bufN = n
	r.PagesRead++
	return r.buf[:n], nil
}

// accountEnc charges one encoded page to the codec counters exactly once,
// whether it was materialized by decode or consumed whole by the
// aggregation kernel.
func (r *PagedReader) accountEnc(pi int64, count int) {
	if pi == r.encAccounted {
		return
	}
	r.encAccounted = pi
	r.EncDecoded[r.ci.Enc.Codec]++
	if saved := int64(count)*int64(r.ci.Def.Typ.Width()) - flash.PageSize; saved > 0 {
		r.EncBytesSaved += saved
	}
}

// loadEncPage reads and decodes encoded page pi into the reusable scratch.
func (r *PagedReader) loadEncPage(pi int) (*enc.Page, error) {
	if int64(pi) == r.decPage {
		return &r.page, nil
	}
	buf, err := r.loadPageBytes(int64(pi))
	if err != nil {
		return nil, err
	}
	r.decPage = -1
	if err := enc.DecodePageInto(&r.page, buf, r.ci.Enc.Dict); err != nil {
		return nil, fmt.Errorf("col: column %s page %d: %w", r.ci.Def.Name, pi, err)
	}
	r.decPage = int64(pi)
	r.accountEnc(int64(pi), r.page.Count)
	return &r.page, nil
}

// PageAggregate computes COUNT/SUM/MIN/MAX over encoded page pi straight
// from its flash image, without decoding (enc.AggregatePage). ok is false
// when the column's codec has no encoded-aggregation kernel (raw, Dict);
// the caller falls back to the materializing path, which reuses the page
// bytes already buffered. A kernel-consumed page is accounted exactly
// like a decoded one (PagesRead, EncDecoded, EncBytesSaved), so fused and
// unfused passes report identical stats.
func (r *PagedReader) PageAggregate(pi int) (enc.PageAgg, bool, error) {
	if r.ci.Enc == nil || (r.ci.Enc.Codec != enc.RLE && r.ci.Enc.Codec != enc.FOR) {
		return enc.PageAgg{}, false, nil
	}
	buf, err := r.loadPageBytes(int64(pi))
	if err != nil {
		return enc.PageAgg{}, false, err
	}
	agg, ok, err := enc.AggregatePage(buf)
	if err != nil {
		return enc.PageAgg{}, false, fmt.Errorf("col: column %s page %d: %w", r.ci.Def.Name, pi, err)
	}
	if !ok {
		return agg, false, nil
	}
	r.accountEnc(int64(pi), agg.Count)
	return agg, true, nil
}

// encVecSpan locates Row Vector vec inside its encoded page. Interior
// pages hold a multiple of 32 rows, so a vector never straddles pages.
func (r *PagedReader) encVecSpan(vec int) (pi, off, count int) {
	start := vec * bitvec.VecSize
	pi = r.ci.Enc.PageFor(start)
	pm := r.ci.Enc.Pages[pi]
	off = start - pm.StartRow
	count = bitvec.VecSize
	if start+count > r.ci.numRows {
		count = r.ci.numRows - start
	}
	return pi, off, count
}

// ReadVec fills out with Row Vector vec and returns the number of valid
// rows (0 past the end). Page loads are accounted once per page; a page
// read failing (fault injection, budget exhausted) fails the vector. On
// encoded columns the values are materialized from the decoded page.
func (r *PagedReader) ReadVec(vec int, out []Value) (int, error) {
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, nil
	}
	if r.ci.Enc != nil {
		pi, off, count := r.encVecSpan(vec)
		p, err := r.loadEncPage(pi)
		if err != nil {
			return 0, err
		}
		copy(out[:count], p.Values()[off:off+count])
		return count, nil
	}
	w := r.ci.Def.Typ.Width()
	page := int64(start) * int64(w) / flash.PageSize
	buf, err := r.loadPageBytes(page)
	if err != nil {
		return 0, err
	}
	count := bitvec.VecSize
	if start+count > r.ci.numRows {
		count = r.ci.numRows - start
	}
	off := start*w - int(page)*flash.PageSize
	decode(r.ci.Def.Typ, buf[off:off+count*w], out[:count])
	return count, nil
}

// ReadVecCodes fills out with the vector's dictionary codes without
// materializing values. ok is false when the column is not
// dictionary-encoded; the caller falls back to ReadVec.
func (r *PagedReader) ReadVecCodes(vec int, out []int64) (n int, ok bool, err error) {
	if r.ci.Enc == nil || r.ci.Enc.Codec != enc.Dict {
		return 0, false, nil
	}
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, true, nil
	}
	pi, off, count := r.encVecSpan(vec)
	p, err := r.loadEncPage(pi)
	if err != nil {
		return 0, true, err
	}
	copy(out[:count], p.Native[off:off+count])
	return count, true, nil
}

// ReadVecDeltas fills out with the vector's frame-of-reference deltas and
// returns the page base. ok is false when the column is not FOR-encoded
// or the page's domain is too wide for shifted-constant evaluation; the
// caller falls back to ReadVec.
func (r *PagedReader) ReadVecDeltas(vec int, out []int64) (n int, base int64, ok bool, err error) {
	if r.ci.Enc == nil || r.ci.Enc.Codec != enc.FOR {
		return 0, 0, false, nil
	}
	start := vec * bitvec.VecSize
	if start >= r.ci.numRows {
		return 0, 0, true, nil
	}
	pi, off, count := r.encVecSpan(vec)
	p, err := r.loadEncPage(pi)
	if err != nil {
		return 0, 0, true, err
	}
	if !p.DeltaSafe() {
		return 0, 0, false, nil
	}
	copy(out[:count], p.Native[off:off+count])
	return count, p.Base, true, nil
}

// SkipVec notes that Row Vector vec was masked out. When every vector of
// a page is skipped the whole page read is avoided (the Table Reader's
// {RowVecID, MaskAllZero} path). Vectors of zone-map-pruned pages are
// already accounted under PagesPruned and are not counted again.
func (r *PagedReader) SkipVec(vec int) {
	page := r.vecPage(vec)
	if r.pruned[int(page)] {
		return
	}
	if page != r.bytesPage && page != r.lastSkipped {
		r.PagesSkipped++
		r.lastSkipped = page
	}
}
