package col

import (
	"testing"

	"aquoman/internal/bitvec"
	"aquoman/internal/flash"
)

func buildWide(t *testing.T, n int) (*Store, *ColumnInfo) {
	t.Helper()
	s := testStore()
	b := s.NewTable(Schema{Name: "w", Cols: []ColDef{{Name: "v", Typ: Int32}}})
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = Value(i)
	}
	b.AppendColumnValues("v", vals)
	b.SetNumRows(n)
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return s, tab.MustColumn("v")
}

func TestPagedReaderSequential(t *testing.T) {
	s, ci := buildWide(t, 1<<13) // 4 pages of int32
	s.Dev.ResetStats()
	r := NewPagedReader(ci, flash.Aquoman)
	if r.RowsPerPage() != flash.PageSize/4 {
		t.Fatalf("RowsPerPage = %d", r.RowsPerPage())
	}
	var out [bitvec.VecSize]Value
	total := 0
	for vec := 0; ; vec++ {
		n, _ := r.ReadVec(vec, out[:])
		if n == 0 {
			break
		}
		if out[0] != Value(vec*bitvec.VecSize) {
			t.Fatalf("vec %d starts with %d", vec, out[0])
		}
		total += n
	}
	if total != 1<<13 {
		t.Fatalf("rows = %d", total)
	}
	if r.PagesRead != 4 {
		t.Fatalf("PagesRead = %d, want 4 (one per page, buffered)", r.PagesRead)
	}
	if s.Dev.Stats().PagesRead[flash.Aquoman] != 4 {
		t.Fatalf("device pages = %d", s.Dev.Stats().PagesRead[flash.Aquoman])
	}
}

func TestPagedReaderSkipWholePages(t *testing.T) {
	_, ci := buildWide(t, 1<<13)
	r := NewPagedReader(ci, flash.Aquoman)
	vecsPerPage := r.VecsPerPage()
	var out [bitvec.VecSize]Value
	// Read the first page, skip the second entirely, read the third.
	for vec := 0; vec < vecsPerPage; vec++ {
		r.ReadVec(vec, out[:])
	}
	for vec := vecsPerPage; vec < 2*vecsPerPage; vec++ {
		r.SkipVec(vec)
	}
	for vec := 2 * vecsPerPage; vec < 3*vecsPerPage; vec++ {
		r.ReadVec(vec, out[:])
	}
	if r.PagesRead != 2 || r.PagesSkipped != 1 {
		t.Fatalf("read %d skipped %d, want 2/1", r.PagesRead, r.PagesSkipped)
	}
}

func TestPagedReaderSkipThenReadSamePage(t *testing.T) {
	_, ci := buildWide(t, 1<<13)
	r := NewPagedReader(ci, flash.Aquoman)
	var out [bitvec.VecSize]Value
	// Skip an early vector of page 0, then read a later vector of page 0:
	// the page must count as read, not skipped.
	r.SkipVec(0)
	r.ReadVec(1, out[:])
	if r.PagesRead != 1 || r.PagesSkipped != 0 {
		t.Fatalf("read %d skipped %d, want 1/0", r.PagesRead, r.PagesSkipped)
	}
}

func TestPagedReaderPastEnd(t *testing.T) {
	_, ci := buildWide(t, 100)
	r := NewPagedReader(ci, flash.Aquoman)
	var out [bitvec.VecSize]Value
	if n, _ := r.ReadVec(3, out[:]); n != 4 { // rows 96..99
		t.Fatalf("tail vec rows = %d, want 4", n)
	}
	if n, _ := r.ReadVec(4, out[:]); n != 0 {
		t.Fatalf("past-end rows = %d", n)
	}
}

func TestGatherPageBuffered(t *testing.T) {
	s, ci := buildWide(t, 1<<13)
	s.Dev.ResetStats()
	// Clustered rowids spanning two pages: page reads must equal the
	// pages touched, not the element count.
	rowids := make([]Value, 3000)
	for i := range rowids {
		rowids[i] = Value(i)
	}
	got, _ := ci.Gather(rowids, flash.Aquoman)
	for i := range rowids {
		if got[i] != rowids[i] {
			t.Fatalf("gather[%d] = %d", i, got[i])
		}
	}
	if pages := s.Dev.Stats().PagesRead[flash.Aquoman]; pages != 2 {
		t.Fatalf("pages = %d, want 2 (clustered gather is sequential)", pages)
	}
	// Strided rowids hit a new page each time.
	s.Dev.ResetStats()
	stride := Value(flash.PageSize / 4)
	ci.Gather([]Value{0, stride, 2 * stride, 3 * stride}, flash.Aquoman)
	if pages := s.Dev.Stats().PagesRead[flash.Aquoman]; pages != 4 {
		t.Fatalf("strided pages = %d, want 4", pages)
	}
}

func TestOrderFlags(t *testing.T) {
	s := testStore()
	b := s.NewTable(Schema{Name: "o", Cols: []ColDef{
		{Name: "asc", Typ: Int64},
		{Name: "dup", Typ: Int64},
		{Name: "rnd", Typ: Int64},
	}})
	b.Append(int64(1), int64(1), int64(5))
	b.Append(int64(2), int64(1), int64(3))
	b.Append(int64(5), int64(2), int64(9))
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	a := tab.MustColumn("asc")
	if !a.Sorted || !a.Unique {
		t.Fatalf("asc flags = %v/%v", a.Sorted, a.Unique)
	}
	d := tab.MustColumn("dup")
	if !d.Sorted || d.Unique {
		t.Fatalf("dup flags = %v/%v", d.Sorted, d.Unique)
	}
	r := tab.MustColumn("rnd")
	if r.Sorted || r.Unique {
		t.Fatalf("rnd flags = %v/%v", r.Sorted, r.Unique)
	}
}

func TestHeapReader(t *testing.T) {
	s := testStore()
	b := s.NewTable(Schema{Name: "h", Cols: []ColDef{{Name: "t", Typ: Text}}})
	words := []string{"alpha", "", "gamma gamma", "d"}
	for _, w := range words {
		b.Append(w)
	}
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ci := tab.MustColumn("t")
	offs := ci.MustReadAll(flash.Host)
	s.Dev.ResetStats()
	hr, _ := ci.NewHeapReader(flash.Host)
	for i, w := range words {
		if got := hr.Str(offs[i]); got != w {
			t.Fatalf("Str(%d) = %q, want %q", offs[i], got, w)
		}
	}
	// One sequential pass, regardless of lookups.
	if pages := s.Dev.Stats().PagesRead[flash.Host]; pages != 1 {
		t.Fatalf("heap pages = %d, want 1", pages)
	}
	if hr.Str(-1) != "" || hr.Str(1<<20) != "" {
		t.Fatal("out-of-range offsets must return empty")
	}
}
