package col

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aquoman/internal/bitvec"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
)

// buildEnc builds a one-column table under the given encoding selection.
func buildEnc(t *testing.T, sel enc.Selection, vals []Value) (*Store, *Table) {
	t.Helper()
	s := testStore()
	s.DefaultEncoding = sel
	b := s.NewTable(Schema{Name: "e", Cols: []ColDef{{Name: "v", Typ: Int32}}})
	b.AppendColumnValues("v", vals)
	b.SetNumRows(len(vals))
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return s, tab
}

func encTestVals(n int) []Value {
	rng := rand.New(rand.NewSource(17))
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = Value(1+rng.Intn(50)) * 100 // l_quantity shape
	}
	return vals
}

// Every read path must return identical data for raw and encoded columns.
func TestEncodedReadEquality(t *testing.T) {
	vals := encTestVals(40000)
	_, rawTab := buildEnc(t, enc.SelRaw, vals)
	for _, sel := range []enc.Selection{enc.SelAuto, enc.SelDict, enc.SelRLE, enc.SelFOR} {
		t.Run(sel.String(), func(t *testing.T) {
			_, tab := buildEnc(t, sel, vals)
			ci := tab.MustColumn("v")
			if sel != enc.SelAuto && ci.Codec().String() != sel.String() {
				t.Fatalf("codec = %s, want %s", ci.Codec(), sel)
			}
			raw := rawTab.MustColumn("v")

			// ReadAll / ReadRange with odd offsets.
			got, err := ci.ReadAll(flash.Host)
			if err != nil {
				t.Fatal(err)
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("ReadAll[%d] = %d, want %d", i, got[i], vals[i])
				}
			}
			for _, span := range [][2]int{{0, 7}, {31, 64}, {1000, 2500}, {39990, 10}, {39999, 1}} {
				buf := make([]Value, span[1])
				ref := make([]Value, span[1])
				n1, err1 := ci.ReadRange(span[0], span[1], flash.Host, buf)
				n2, err2 := raw.ReadRange(span[0], span[1], flash.Host, ref)
				if err1 != nil || err2 != nil || n1 != n2 {
					t.Fatalf("ReadRange(%v): n=%d/%d err=%v/%v", span, n1, n2, err1, err2)
				}
				for i := 0; i < n1; i++ {
					if buf[i] != ref[i] {
						t.Fatalf("ReadRange(%v)[%d] = %d, want %d", span, i, buf[i], ref[i])
					}
				}
			}

			// Gather random rowids, including out-of-range.
			rng := rand.New(rand.NewSource(5))
			ids := make([]int64, 500)
			for i := range ids {
				ids[i] = int64(rng.Intn(len(vals) + 100))
			}
			g1, err1 := ci.Gather(ids, flash.Host)
			g2, err2 := raw.Gather(ids, flash.Host)
			if err1 != nil || err2 != nil {
				t.Fatalf("Gather: %v / %v", err1, err2)
			}
			for i := range ids {
				if g1[i] != g2[i] {
					t.Fatalf("Gather[%d] (rowid %d) = %d, want %d", i, ids[i], g1[i], g2[i])
				}
			}

			// PagedReader vector pass.
			r := NewPagedReader(ci, flash.Aquoman)
			var out [bitvec.VecSize]Value
			row := 0
			for vec := 0; ; vec++ {
				n, err := r.ReadVec(vec, out[:])
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					if out[j] != vals[row+j] {
						t.Fatalf("vec %d row %d = %d, want %d", vec, row+j, out[j], vals[row+j])
					}
				}
				row += n
			}
			if row != len(vals) {
				t.Fatalf("reader covered %d rows, want %d", row, len(vals))
			}
		})
	}
}

// An encoded column must occupy fewer flash pages and the paged reader
// must read fewer pages for a full pass than the raw layout.
func TestEncodedFewerPages(t *testing.T) {
	vals := encTestVals(200000)
	_, rawTab := buildEnc(t, enc.SelRaw, vals)
	_, encTab := buildEnc(t, enc.SelAuto, vals)
	rawPages := (rawTab.MustColumn("v").File.Size() + flash.PageSize - 1) / flash.PageSize
	ci := encTab.MustColumn("v")
	encPages := int64(len(ci.Enc.Pages))
	if encPages*2 > rawPages {
		t.Fatalf("auto encoding: %d pages vs %d raw — expected at least 2x fewer", encPages, rawPages)
	}
	r := NewPagedReader(ci, flash.Aquoman)
	var out [bitvec.VecSize]Value
	for vec := 0; ; vec++ {
		n, err := r.ReadVec(vec, out[:])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if r.PagesRead != encPages {
		t.Fatalf("full pass read %d pages, want %d", r.PagesRead, encPages)
	}
	if r.EncBytesSaved == 0 {
		t.Fatal("EncBytesSaved = 0 on a compressed pass")
	}
}

// Persisted encoded stores round-trip through the v2 manifest; all-raw
// stores keep writing v1.
func TestPersistEncodedRoundTrip(t *testing.T) {
	vals := encTestVals(30000)
	s, _ := buildEnc(t, enc.SelAuto, vals)
	dir := t.TempDir()
	if err := SaveStore(s, dir); err != nil {
		t.Fatal(err)
	}
	dev := flash.NewDevice()
	s2, err := LoadStore(dir, dev)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := s2.Table("e")
	if err != nil {
		t.Fatal(err)
	}
	ci := tab.MustColumn("v")
	if ci.Enc == nil {
		t.Fatal("encoding metadata lost across persist")
	}
	got, err := ci.ReadAll(flash.Host)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], vals[i])
		}
	}

	// All-raw stores must keep the v1 manifest (older readers stay able
	// to open them).
	sRaw, _ := buildEnc(t, enc.SelRaw, vals[:100])
	rawDir := t.TempDir()
	if err := SaveStore(sRaw, rawDir); err != nil {
		t.Fatal(err)
	}
	for dirp, want := range map[string]string{dir: `"version": 2`, rawDir: `"version": 1`} {
		buf, err := os.ReadFile(filepath.Join(dirp, "catalog.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(buf), want) {
			t.Fatalf("catalog at %s missing %q", dirp, want)
		}
	}
}

// ReEncodeColumn rewrites in place and every read path sees the new
// layout immediately (the flash file generation bump invalidates caches).
func TestReEncodeColumn(t *testing.T) {
	vals := encTestVals(30000)
	s, tab := buildEnc(t, enc.SelRaw, vals)
	ci := tab.MustColumn("v")
	if ci.Enc != nil {
		t.Fatal("raw build has encoding metadata")
	}
	rawSize := ci.File.Size()
	if err := tab.ReEncodeColumn("v", enc.SelDict); err != nil {
		t.Fatal(err)
	}
	ci = tab.MustColumn("v")
	if ci.Codec() != enc.Dict {
		t.Fatalf("codec = %s after re-encode, want dict", ci.Codec())
	}
	if ci.File.Size() >= rawSize {
		t.Fatalf("dict re-encode grew the file: %d >= %d", ci.File.Size(), rawSize)
	}
	got, err := ci.ReadAll(flash.Host)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("row %d = %d after re-encode, want %d", i, got[i], vals[i])
		}
	}
	// And back to raw.
	if err := tab.ReEncodeColumn("v", enc.SelRaw); err != nil {
		t.Fatal(err)
	}
	ci = tab.MustColumn("v")
	if ci.Enc != nil || ci.File.Size() != rawSize {
		t.Fatal("round-trip back to raw did not restore the legacy layout")
	}
	_ = s
}
