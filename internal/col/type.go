// Package col implements the column-oriented storage substrate that
// AQUOMAN targets (Sec. IV of the paper). Like MonetDB, a relational table
// is stored as a collection of column files, each holding a sequence of
// fixed-width column values in ascending row order; variable-sized string
// columns are split into a fixed-width offset column plus a string heap
// file. Row identity is the implicit RowID (MonetDB's oid), and foreign-key
// columns may carry a materialized companion column of RowIDs referring to
// the referenced table's rows — the optimization AQUOMAN exploits to skip
// join work (Sec. VI-D).
package col

import (
	"fmt"
	"time"
)

// Value is the universal in-memory carrier for a single column value.
// Integers are themselves; dates are days since the Unix epoch; decimals
// are ×100 fixed point; Dict values are dictionary codes; Text values are
// string-heap offsets; booleans are 0/1; RowIDs are row indices.
type Value = int64

// DecimalScale is the fixed-point scale for Decimal values (two fractional
// digits, as used by every TPC-H money/percentage column).
const DecimalScale = 100

// Type enumerates the storable column types.
type Type uint8

const (
	// Int64 is a 64-bit signed integer (8 bytes on flash).
	Int64 Type = iota
	// Int32 is a 32-bit signed integer (4 bytes on flash).
	Int32
	// Date is a day number since 1970-01-01 (4 bytes on flash).
	Date
	// Decimal is a ×100 fixed-point number (4 bytes on flash; every
	// TPC-H decimal fits 32 bits at this scale).
	Decimal
	// Dict is a dictionary-encoded string: the column file stores 4-byte
	// codes and the dictionary lives in the heap file. Codes are assigned
	// in lexicographic order of the distinct strings, so integer
	// comparisons on codes agree with string comparisons.
	Dict
	// Text is a raw string: the column file stores 4-byte heap offsets
	// and the heap file stores length-prefixed bytes. Text predicates
	// need the regular-expression accelerator.
	Text
	// Bool is a 0/1 byte (the output of the regex accelerator's
	// pre-processing of string columns into one-bit columns).
	Bool
	// RowID is a row index into another table (8 bytes on flash),
	// MonetDB's materialized oid join column.
	RowID
)

// Width returns the on-flash width of one value in bytes.
func (t Type) Width() int {
	switch t {
	case Int64, RowID:
		return 8
	case Int32, Date, Decimal, Dict, Text:
		return 4
	case Bool:
		return 1
	default:
		panic(fmt.Sprintf("col: unknown type %d", t))
	}
}

// IsString reports whether the type carries string content.
func (t Type) IsString() bool { return t == Dict || t == Text }

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Date:
		return "date"
	case Decimal:
		return "decimal"
	case Dict:
		return "dict"
	case Text:
		return "text"
	case Bool:
		return "bool"
	case RowID:
		return "rowid"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// DateValue converts a civil date to its Value encoding.
func DateValue(year, month, day int) Value {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// ParseDate parses "YYYY-MM-DD" into a Value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("col: bad date %q: %v", s, err)
	}
	return t.Unix() / 86400, nil
}

// MustParseDate parses "YYYY-MM-DD" into a Value, panicking on bad input
// (used for literals in query definitions).
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err.Error())
	}
	return v
}

// DateString renders a date Value as "YYYY-MM-DD".
func DateString(v Value) string {
	return time.Unix(v*86400, 0).UTC().Format("2006-01-02")
}

// DateYear returns the calendar year of a date Value (EXTRACT(YEAR ...)).
func DateYear(v Value) int {
	return time.Unix(v*86400, 0).UTC().Year()
}

// DecimalValue converts an integer+cents pair into a Decimal Value.
func DecimalValue(units int64, cents int64) Value { return units*DecimalScale + cents }

// DecimalString renders a Decimal value with two fractional digits.
func DecimalString(v Value) string {
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%02d", sign, v/DecimalScale, v%DecimalScale)
}

// FormatValue renders a value of the given type for result display. Dict
// and Text values require the column's lookup function; use
// ColumnInfo.Str for those.
func FormatValue(t Type, v Value) string {
	switch t {
	case Date:
		return DateString(v)
	case Decimal:
		return DecimalString(v)
	case Bool:
		if v != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%d", v)
	}
}
