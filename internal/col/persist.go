package col

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aquoman/internal/enc"
	"aquoman/internal/flash"
)

// manifest is the on-disk catalog.
type manifest struct {
	Version int             `json:"version"`
	Tables  []manifestTable `json:"tables"`
}

type manifestTable struct {
	Name    string        `json:"name"`
	NumRows int           `json:"num_rows"`
	Cols    []manifestCol `json:"cols"`
}

type manifestCol struct {
	Name    string       `json:"name"`
	Typ     uint8        `json:"typ"`
	HasHeap bool         `json:"has_heap"`
	Sorted  bool         `json:"sorted"`
	Unique  bool         `json:"unique"`
	Enc     *manifestEnc `json:"enc,omitempty"`
}

// manifestEnc is the encoded-column directory: codec, the value
// dictionary (dictionary codec only), and the per-page zone maps.
type manifestEnc struct {
	Codec uint8          `json:"codec"`
	Dict  []int64        `json:"dict,omitempty"`
	Pages []manifestPage `json:"pages"`
}

type manifestPage struct {
	Start int   `json:"start"`
	Count int   `json:"count"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

const manifestName = "catalog.json"

// SaveStore persists the catalog and every column/heap file under dir,
// creating it if needed. The layout mirrors the flash namespace:
// dir/<table>/<column>.dat and .heap, plus dir/catalog.json.
func SaveStore(s *Store, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var m manifest
	m.Version = 1 // bumped to 2 below if any column is encoded
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.Unlock()
	sortStringsInPlace(names)
	for _, name := range names {
		t, err := s.Table(name)
		if err != nil {
			return err
		}
		mt := manifestTable{Name: t.Name, NumRows: t.NumRows}
		for _, def := range t.Cols {
			ci := t.cols[def.Name]
			mc := manifestCol{Name: def.Name, Typ: uint8(def.Typ),
				HasHeap: ci.Heap != nil, Sorted: ci.Sorted, Unique: ci.Unique}
			if ci.Enc != nil {
				me := &manifestEnc{Codec: uint8(ci.Enc.Codec), Dict: ci.Enc.Dict}
				for _, pm := range ci.Enc.Pages {
					me.Pages = append(me.Pages,
						manifestPage{Start: pm.StartRow, Count: pm.Count, Min: pm.Min, Max: pm.Max})
				}
				mc.Enc = me
				m.Version = 2 // v1 readers must not misread encoded pages as raw
			}
			mt.Cols = append(mt.Cols, mc)
			if err := dumpFile(ci.File, filepath.Join(dir, t.Name, def.Name+".dat")); err != nil {
				return err
			}
			if ci.Heap != nil {
				if err := dumpFile(ci.Heap, filepath.Join(dir, t.Name, def.Name+".heap")); err != nil {
					return err
				}
			}
		}
		m.Tables = append(m.Tables, mt)
	}
	buf, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), buf, 0o644)
}

func dumpFile(f *flash.File, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0, flash.Host); err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// LoadStore reads a persisted store into a fresh flash device.
func LoadStore(dir string, dev *flash.Device) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("col: load store: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("col: corrupt catalog: %w", err)
	}
	if m.Version != 1 && m.Version != 2 {
		return nil, fmt.Errorf("col: unsupported catalog version %d", m.Version)
	}
	s := NewStore(dev)
	for _, mt := range m.Tables {
		t := &Table{
			Schema:  Schema{Name: mt.Name},
			NumRows: mt.NumRows,
			store:   s,
			cols:    make(map[string]*ColumnInfo),
		}
		for _, mc := range mt.Cols {
			def := ColDef{Name: mc.Name, Typ: Type(mc.Typ)}
			t.Cols = append(t.Cols, def)
			ci := &ColumnInfo{Def: def, numRows: mt.NumRows,
				Sorted: mc.Sorted, Unique: mc.Unique}
			if mc.Enc != nil {
				em := &enc.ColumnMeta{Codec: enc.Codec(mc.Enc.Codec), Dict: mc.Enc.Dict}
				for _, mp := range mc.Enc.Pages {
					em.Pages = append(em.Pages,
						enc.PageMeta{StartRow: mp.Start, Count: mp.Count, Min: mp.Min, Max: mp.Max})
				}
				if em.NumRows() != mt.NumRows {
					return nil, fmt.Errorf("col: table %s column %s: encoding covers %d rows, table has %d",
						mt.Name, mc.Name, em.NumRows(), mt.NumRows)
				}
				ci.Enc = em
			}
			base := mt.Name + "/" + mc.Name
			ci.File = dev.Create(base + ".dat")
			if err := slurpFile(ci.File, filepath.Join(dir, mt.Name, mc.Name+".dat")); err != nil {
				return nil, err
			}
			if mc.HasHeap {
				ci.Heap = dev.Create(base + ".heap")
				if err := slurpFile(ci.Heap, filepath.Join(dir, mt.Name, mc.Name+".heap")); err != nil {
					return nil, err
				}
				if def.Typ == Dict {
					dict, err := readDict(ci)
					if err != nil {
						return nil, fmt.Errorf("col: table %s column %s: %w", mt.Name, mc.Name, err)
					}
					ci.dict = dict
				}
			}
			t.cols[def.Name] = ci
		}
		s.mu.Lock()
		s.tables[t.Name] = t
		s.mu.Unlock()
	}
	dev.ResetStats() // loading traffic is not part of any experiment
	return s, nil
}

func slurpFile(f *flash.File, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	f.Append(buf, flash.Host)
	return nil
}

// readDict decodes the length-prefixed dictionary strings from the heap.
func readDict(ci *ColumnInfo) ([]string, error) {
	size := ci.Heap.Size()
	buf := make([]byte, size)
	if _, err := ci.Heap.ReadAt(buf, 0, flash.Host); err != nil {
		return nil, err
	}
	var dict []string
	for off := 0; off+4 <= len(buf); {
		l := int(uint32(buf[off]) | uint32(buf[off+1])<<8 |
			uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24)
		off += 4
		if off+l > len(buf) {
			return nil, fmt.Errorf("truncated dictionary heap")
		}
		dict = append(dict, string(buf[off:off+l]))
		off += l
	}
	return dict, nil
}

func sortStringsInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
