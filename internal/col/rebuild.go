package col

// Merge-support helpers for the write path (internal/catalog). They
// live in this package because a rebuild must touch the unexported
// column map and row counts; the catalog drives *what* to rebuild, this
// file does the storage mutation.

import (
	"fmt"

	"aquoman/internal/enc"
	"aquoman/internal/flash"
)

// selectionFor maps a column's current on-flash codec back to the
// encoding selection that reproduces it, so a merge rewrite preserves
// each column's layout (and its zone maps) instead of resetting
// everything to the store default.
func selectionFor(ci *ColumnInfo) enc.Selection {
	if ci.Enc == nil {
		return enc.SelRaw
	}
	switch ci.Enc.Codec {
	case enc.Dict:
		return enc.SelDict
	case enc.RLE:
		return enc.SelRLE
	case enc.FOR:
		return enc.SelFOR
	default:
		return enc.SelRaw
	}
}

// DropColumn removes a column from the table and deletes its data file
// from the device. It is how a merge discards stale materialized RowID
// companions before re-deriving them over the compacted row set; the
// string heap (if any) is left in place because other state may still
// reference it, and companions never have one.
func (t *Table) DropColumn(name string) error {
	ci, err := t.Column(name)
	if err != nil {
		return err
	}
	t.store.Dev.Remove(ci.File.Name())
	delete(t.cols, name)
	for i, def := range t.Cols {
		if def.Name == name {
			t.Cols = append(t.Cols[:i], t.Cols[i+1:]...)
			break
		}
	}
	return nil
}

// RowIDColumns returns the names of the table's materialized RowID
// companion columns (the merge drops and re-derives these).
func (t *Table) RowIDColumns() []string {
	var names []string
	for _, def := range t.Cols {
		if def.Typ == RowID {
			names = append(names, def.Name)
		}
	}
	return names
}

// RebuildRows rewrites every stored column of the table with the given
// values (one slice per remaining column, all of length n) and sets the
// row count to n. Each column keeps its current codec; re-creating the
// data file bumps the device's file generation, so page caches and
// result-cache fingerprints in front of the store invalidate on their
// existing seams. String heaps are not rewritten: Dict and Text values
// are codes/offsets into the existing heaps, which only ever grow.
func (t *Table) RebuildRows(n int, vals map[string][]Value) error {
	for _, def := range t.Cols {
		v, ok := vals[def.Name]
		if !ok {
			return fmt.Errorf("col: rebuild of %s is missing column %s", t.Name, def.Name)
		}
		if len(v) != n {
			return colLenErr(t.Name, def.Name, len(v), n)
		}
	}
	for _, def := range t.Cols {
		ci := t.cols[def.Name]
		v := vals[def.Name]
		sel := selectionFor(ci)
		ci.File = t.store.Dev.Create(t.Name + "/" + def.Name + ".dat")
		ci.Sorted, ci.Unique = orderFlags(v)
		ci.numRows = n
		if err := writeColumnData(ci, v, sel); err != nil {
			return fmt.Errorf("col: rebuild %s.%s: %w", t.Name, def.Name, err)
		}
	}
	t.NumRows = n
	return nil
}

// AppendHeapStrings appends strings to a Text column's heap in the
// standard length-prefixed layout and returns each string's offset —
// the stored values for freshly ingested rows. The heap append bumps
// the file's generation like any other write.
func AppendHeapStrings(ci *ColumnInfo, strs []string) ([]Value, error) {
	if ci.Def.Typ != Text || ci.Heap == nil {
		return nil, fmt.Errorf("col: AppendHeapStrings on non-text column %q", ci.Def.Name)
	}
	off := ci.Heap.Size()
	offs := make([]Value, len(strs))
	var buf []byte
	for i, s := range strs {
		offs[i] = Value(off)
		var l [4]byte
		l[0] = byte(len(s))
		l[1] = byte(len(s) >> 8)
		l[2] = byte(len(s) >> 16)
		l[3] = byte(len(s) >> 24)
		buf = append(buf, l[:]...)
		buf = append(buf, s...)
		off += int64(4 + len(s))
	}
	ci.Heap.Append(buf, flash.Host)
	return offs, nil
}

// ValueInRange reports whether v fits the on-flash width of typ (the
// write path validates user input before committing, because the raw
// encoder treats overflow as a programming error and panics).
func ValueInRange(typ Type, v Value) bool {
	switch typ.Width() {
	case 8:
		return true
	case 4:
		return v <= (1<<31)-1 && v >= -(1<<31)
	default: // Bool
		return v == 0 || v == 1
	}
}
