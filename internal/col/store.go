package col

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"aquoman/internal/bitvec"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
)

// ColDef describes one column of a schema.
type ColDef struct {
	Name string
	Typ  Type
}

// Schema is an ordered list of column definitions for a named table.
type Schema struct {
	Name string
	Cols []ColDef
}

// Col returns the definition of the named column and whether it exists.
func (s Schema) Col(name string) (ColDef, bool) {
	for _, c := range s.Cols {
		if c.Name == name {
			return c, true
		}
	}
	return ColDef{}, false
}

// Store is a catalog of tables backed by a simulated flash device.
type Store struct {
	Dev *flash.Device

	// DefaultEncoding is the column encoding applied by subsequent table
	// builds (NewTable, AddRowIDColumn). The zero value keeps the legacy
	// raw layout; set it before generating or loading data.
	DefaultEncoding enc.Selection

	mu     sync.Mutex
	tables map[string]*Table
}

// NewStore returns an empty store on the given device.
func NewStore(dev *flash.Device) *Store {
	return &Store{Dev: dev, tables: make(map[string]*Table)}
}

// Table returns the named table, or an error if absent.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("col: no table %q", name)
	}
	return t, nil
}

// MustTable is Table for callers that know the table exists.
func (s *Store) MustTable(name string) *Table {
	t, err := s.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Tables returns all table names in deterministic order.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table is a loaded table: a schema plus per-column flash files.
type Table struct {
	Schema
	NumRows int

	store *Store
	cols  map[string]*ColumnInfo
}

// Column returns the named column's storage info.
func (t *Table) Column(name string) (*ColumnInfo, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("col: table %q has no column %q", t.Name, name)
	}
	return c, nil
}

// MustColumn is Column for callers that know the column exists.
func (t *Table) MustColumn(name string) *ColumnInfo {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// HasColumn reports whether the table stores the named column.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.cols[name]
	return ok
}

// ColumnNames returns the column names in schema order (materialized RowID
// companions included, after the declared columns).
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	return names
}

// NumVecs returns the number of 32-row Row Vectors covering the table.
func (t *Table) NumVecs() int {
	return (t.NumRows + bitvec.VecSize - 1) / bitvec.VecSize
}

// BytesOnFlash returns the summed size of the table's column and heap files.
func (t *Table) BytesOnFlash() int64 {
	var n int64
	for _, c := range t.cols {
		n += c.File.Size()
		if c.Heap != nil {
			n += c.Heap.Size()
		}
	}
	return n
}

// ColumnInfo is the storage handle for one column: its data file, optional
// string heap, and (for Dict columns) the in-memory dictionary.
type ColumnInfo struct {
	Def  ColDef
	File *flash.File
	// Heap holds string content for Dict and Text columns.
	Heap *flash.File
	// dict maps code -> string for Dict columns (codes are assigned in
	// lexicographic order, so code comparisons agree with string order).
	dict []string
	// numRows mirrors the owning table's row count.
	numRows int
	// Sorted reports non-decreasing stored order; Unique reports strictly
	// increasing order (TPC-H primary keys are both). Computed at build
	// time, these drive the offload compiler's MERGE-vs-SORT_MERGE and
	// join-cardinality decisions.
	Sorted bool
	Unique bool
	// Enc describes the column's on-flash encoding and page directory;
	// nil means the legacy raw fixed-width layout.
	Enc *enc.ColumnMeta
}

// Codec returns the column's on-flash codec (enc.Raw for the legacy
// layout).
func (c *ColumnInfo) Codec() enc.Codec {
	if c.Enc == nil {
		return enc.Raw
	}
	return c.Enc.Codec
}

// NumRows returns the number of values stored.
func (c *ColumnInfo) NumRows() int { return c.numRows }

// Dict returns the dictionary of a Dict column (code -> string).
func (c *ColumnInfo) Dict() []string { return c.dict }

// Code returns the dictionary code for s in a Dict column, or (-1, false).
func (c *ColumnInfo) Code(s string) (Value, bool) {
	i := sort.SearchStrings(c.dict, s)
	if i < len(c.dict) && c.dict[i] == s {
		return Value(i), true
	}
	return -1, false
}

// CodeRangeForPrefix returns the half-open code interval [lo, hi) of
// dictionary entries with the given prefix (used to compile LIKE 'x%' on a
// Dict column into an integer range predicate).
func (c *ColumnInfo) CodeRangeForPrefix(prefix string) (lo, hi Value) {
	lo = Value(sort.SearchStrings(c.dict, prefix))
	hi = Value(sort.Search(len(c.dict), func(i int) bool {
		s := c.dict[i]
		if len(s) >= len(prefix) {
			return s[:len(prefix)] > prefix
		}
		return s > prefix
	}))
	return lo, hi
}

// Str decodes a stored value into its string content. For Dict columns it
// is a dictionary lookup; for Text columns it reads the heap through the
// given requester (flash traffic is accounted, and a failed heap page read
// fails the lookup).
func (c *ColumnInfo) Str(v Value, who flash.Requester) (string, error) {
	switch c.Def.Typ {
	case Dict:
		if v < 0 || int(v) >= len(c.dict) {
			return "", nil
		}
		return c.dict[v], nil
	case Text:
		var lenBuf [4]byte
		n, err := c.Heap.ReadAt(lenBuf[:], v, who)
		if err != nil {
			return "", err
		}
		if n < 4 {
			return "", nil
		}
		l := binary.LittleEndian.Uint32(lenBuf[:])
		buf := make([]byte, l)
		if _, err := c.Heap.ReadAt(buf, v+4, who); err != nil {
			return "", err
		}
		return string(buf), nil
	default:
		panic(fmt.Sprintf("col: Str on %s column %q", c.Def.Typ, c.Def.Name))
	}
}

// MustStr is Str for fault-free contexts (build/test helpers); it panics
// on a read error.
func (c *ColumnInfo) MustStr(v Value, who flash.Requester) string {
	s, err := c.Str(v, who)
	if err != nil {
		panic(err)
	}
	return s
}

// HeapReader reads the whole string heap sequentially once and serves
// per-offset lookups from memory — how a scan-oriented engine consumes a
// string column through the page cache (one sequential pass instead of a
// page-granular random read per row).
type HeapReader struct {
	data []byte
}

// NewHeapReader loads the column's heap, accounting one sequential read.
func (c *ColumnInfo) NewHeapReader(who flash.Requester) (*HeapReader, error) {
	return c.NewHeapReaderCtx(nil, who)
}

// NewHeapReaderCtx is NewHeapReader with cooperative cancellation: the
// heap stream checks ctx at page-aligned chunk boundaries.
func (c *ColumnInfo) NewHeapReaderCtx(ctx context.Context, who flash.Requester) (*HeapReader, error) {
	if c.Heap == nil {
		return &HeapReader{}, nil
	}
	buf := make([]byte, c.Heap.Size())
	if _, err := c.Heap.ReadAtCtx(ctx, buf, 0, who); err != nil {
		return nil, err
	}
	return &HeapReader{data: buf}, nil
}

// Str decodes the length-prefixed string at offset off.
func (h *HeapReader) Str(off Value) string {
	if off < 0 || int(off)+4 > len(h.data) {
		return ""
	}
	l := int(binary.LittleEndian.Uint32(h.data[off:]))
	end := int(off) + 4 + l
	if end > len(h.data) {
		end = len(h.data)
	}
	return string(h.data[off+4 : end])
}

// HeapBytes returns the string-heap size (0 for non-string columns). The
// compiler compares this against the regex accelerator's 1 MB cache to
// decide whether string filtering must be suspended to the host
// (Sec. VI-E condition 2).
func (c *ColumnInfo) HeapBytes() int64 {
	if c.Heap == nil {
		return 0
	}
	return c.Heap.Size()
}

// ReadRange reads count values starting at row start into out, accounting
// flash traffic to who. It returns the number of values read.
func (c *ColumnInfo) ReadRange(start, count int, who flash.Requester, out []Value) (int, error) {
	return c.ReadRangeCtx(nil, start, count, who, out)
}

// ReadRangeCtx is ReadRange with cooperative cancellation: the underlying
// bulk read checks ctx at page-aligned chunk boundaries, so a cancelled
// query stops issuing flash page reads mid-column. A nil ctx never
// cancels.
func (c *ColumnInfo) ReadRangeCtx(ctx context.Context, start, count int, who flash.Requester, out []Value) (int, error) {
	if start >= c.numRows {
		return 0, nil
	}
	if start+count > c.numRows {
		count = c.numRows - start
	}
	if c.Enc != nil {
		return c.readRangeEnc(ctx, start, count, who, out)
	}
	w := c.Def.Typ.Width()
	buf := make([]byte, count*w)
	n, err := c.File.ReadAtCtx(ctx, buf, int64(start)*int64(w), who)
	if err != nil {
		return 0, err
	}
	count = n / w
	decode(c.Def.Typ, buf[:count*w], out[:count])
	return count, nil
}

// ReadVec reads Row Vector vec (32 rows) into out and returns how many
// rows it held (the final vector may be short).
func (c *ColumnInfo) ReadVec(vec int, who flash.Requester, out []Value) (int, error) {
	return c.ReadRange(vec*bitvec.VecSize, bitvec.VecSize, who, out)
}

// ReadAll reads the entire column sequentially.
func (c *ColumnInfo) ReadAll(who flash.Requester) ([]Value, error) {
	return c.ReadAllCtx(nil, who)
}

// ReadAllCtx is ReadAll with cooperative cancellation (see ReadRangeCtx).
func (c *ColumnInfo) ReadAllCtx(ctx context.Context, who flash.Requester) ([]Value, error) {
	out := make([]Value, c.numRows)
	if _, err := c.ReadRangeCtx(ctx, 0, c.numRows, who, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MustReadAll is ReadAll for fault-free contexts (build/test helpers); it
// panics on a read error.
func (c *ColumnInfo) MustReadAll(who flash.Requester) []Value {
	out, err := c.ReadAll(who)
	if err != nil {
		panic(err)
	}
	return out
}

// readRangeEnc serves ReadRange over an encoded column: every page
// overlapping [start, start+count) is read and decoded once, and the
// requested rows are copied out of the materialized values. count is
// already clamped to the column's row range.
func (c *ColumnInfo) readRangeEnc(ctx context.Context, start, count int, who flash.Requester, out []Value) (int, error) {
	end := start + count
	total := 0
	for pi := c.Enc.PageFor(start); pi < len(c.Enc.Pages); pi++ {
		pm := c.Enc.Pages[pi]
		if pm.StartRow >= end {
			break
		}
		buf, err := c.File.ReadPageCtx(ctx, int64(pi), who)
		if err != nil {
			return 0, err
		}
		p, err := enc.DecodePage(buf, c.Enc.Dict)
		if err != nil {
			return 0, fmt.Errorf("col: column %s page %d: %w", c.Def.Name, pi, err)
		}
		vals := p.Values()
		lo, hi := start, end
		if pm.StartRow > lo {
			lo = pm.StartRow
		}
		if pe := pm.StartRow + pm.Count; pe < hi {
			hi = pe
		}
		copy(out[lo-start:hi-start], vals[lo-pm.StartRow:hi-pm.StartRow])
		total = hi - start
	}
	return total, nil
}

// Gather reads the values at the given row ids through a one-page buffer:
// consecutive rowids on the same flash page cost a single page read, so
// clustered gathers (sorted RowID columns) approach sequential cost while
// scattered ones pay a page per element.
func (c *ColumnInfo) Gather(rowids []Value, who flash.Requester) ([]Value, error) {
	if c.Enc != nil {
		return c.gatherEnc(rowids, who)
	}
	out := make([]Value, len(rowids))
	w := int64(c.Def.Typ.Width())
	curPage := int64(-1)
	var page []byte
	for i, r := range rowids {
		off := r * w
		p := off / flash.PageSize
		if p != curPage {
			var err error
			page, err = c.File.ReadPage(p, who)
			if err != nil {
				return nil, err
			}
			curPage = p
		}
		rel := off - p*flash.PageSize
		if int(rel+w) > len(page) {
			out[i] = 0
			continue
		}
		out[i] = decodeOne(c.Def.Typ, page[rel:rel+w])
	}
	return out, nil
}

// gatherEnc is Gather over an encoded column: the page directory maps
// each rowid to its page, and the last decoded page is kept so clustered
// gathers still cost one read+decode per page.
func (c *ColumnInfo) gatherEnc(rowids []Value, who flash.Requester) ([]Value, error) {
	out := make([]Value, len(rowids))
	curIdx := -1
	var vals []Value
	for i, r := range rowids {
		if r < 0 || int(r) >= c.numRows {
			out[i] = 0
			continue
		}
		pi := c.Enc.PageFor(int(r))
		if pi != curIdx {
			buf, err := c.File.ReadPage(int64(pi), who)
			if err != nil {
				return nil, err
			}
			p, err := enc.DecodePage(buf, c.Enc.Dict)
			if err != nil {
				return nil, fmt.Errorf("col: column %s page %d: %w", c.Def.Name, pi, err)
			}
			vals = p.Values()
			curIdx = pi
		}
		out[i] = vals[int(r)-c.Enc.Pages[pi].StartRow]
	}
	return out, nil
}

func decode(t Type, buf []byte, out []Value) {
	w := t.Width()
	switch w {
	case 8:
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	case 4:
		for i := range out {
			out[i] = int64(int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	case 1:
		for i := range out {
			out[i] = int64(buf[i])
		}
	}
}

func decodeOne(t Type, buf []byte) Value {
	switch t.Width() {
	case 8:
		return int64(binary.LittleEndian.Uint64(buf))
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(buf)))
	default:
		return int64(buf[0])
	}
}

func encode(t Type, vals []Value) []byte {
	w := t.Width()
	buf := make([]byte, len(vals)*w)
	switch w {
	case 8:
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
	case 4:
		for i, v := range vals {
			if v > (1<<31)-1 || v < -(1<<31) {
				panic(fmt.Sprintf("col: value %d overflows 32-bit %s column", v, t))
			}
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(int32(v)))
		}
	case 1:
		for i, v := range vals {
			buf[i] = byte(v & 1)
		}
	}
	return buf
}
