//go:build faultmatrix

package distrib

import (
	"fmt"
	"testing"

	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/tpch"
)

// TestClusterFaultMatrix rotates a dead device around a 4-device cluster
// while the remaining devices run under seeded background transients, and
// checks that q1/q3/q6 stay byte-identical to the fault-free baseline in
// every cell — the dead shard recovering through its host-side mirror,
// the noisy shards through page-read retries. Gated behind the
// faultmatrix tag: each cell re-runs three full distributed queries.
func TestClusterFaultMatrix(t *testing.T) {
	c := newFaultCluster(t)

	queries := []int{1, 3, 6}
	clean := make(map[int]*engine.Batch)
	for _, q := range queries {
		def, err := tpch.Get(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("fault-free q%d: %v", q, err)
		}
		clean[q] = b
	}

	for _, seed := range []int64{3, 21} {
		for dead := 1; dead < len(c.Devices); dead++ {
			t.Run(fmt.Sprintf("seed%d/dead%d", seed, dead), func(t *testing.T) {
				for d := 1; d < len(c.Devices); d++ {
					inj := faults.New(faults.Config{
						Seed: seed + int64(d), PTransient: 0.02, TransientRepeat: 1,
					})
					if d == dead {
						inj = faults.New(faults.Config{})
						inj.KillDevice()
					}
					c.Devices[d].SetFaults(inj)
				}
				defer func() {
					for _, d := range c.Devices {
						d.SetFaults(nil)
					}
				}()
				for _, q := range queries {
					def, _ := tpch.Get(q)
					b, rep, err := c.RunQuery(def.Build)
					if err != nil {
						t.Fatalf("q%d: %v", q, err)
					}
					sameBatch(t, fmt.Sprintf("q%d", q), b, clean[q])
					if !rep.Degraded(dead) {
						t.Fatalf("q%d: dead device %d did not degrade", q, dead)
					}
					for d := 1; d < len(c.Devices); d++ {
						if d != dead && rep.Degraded(d) {
							t.Fatalf("q%d: noisy device %d degraded instead of retrying", q, d)
						}
					}
				}
			})
		}
	}
}
