package distrib

import (
	"strconv"
	"sync"
	"testing"

	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/tpch"
)

// Mirror degradation must be safe under concurrent queries: several
// goroutines scatter over the same cluster while device 2 is dead, every
// query degrades that shard to its host-side mirror, and every result
// stays cell-exact. Run under -race this is the regression test for the
// retry→degradation machinery's shared state (per-device mirrors, report
// wiring, obs counters).
func TestConcurrentMirrorDegradationRace(t *testing.T) {
	c := NewCluster(3)
	c.HeapScale = 1000 / 0.005
	if err := c.LoadTPCH(0.005, 21); err != nil {
		t.Fatalf("LoadTPCH: %v", err)
	}
	o := c.EnableObservability()

	queries := []int{1, 3, 6}
	clean := make(map[int]*engine.Batch)
	for _, q := range queries {
		def, err := tpch.Get(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("fault-free q%d: %v", q, err)
		}
		clean[q] = b
	}

	inj := faults.New(faults.Config{})
	inj.KillDevice()
	c.Devices[2].SetFaults(inj)
	defer c.Devices[2].SetFaults(nil)

	const rounds = 4
	var wg sync.WaitGroup
	for _, q := range queries {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(q, r int) {
				defer wg.Done()
				def, _ := tpch.Get(q)
				b, rep, err := c.RunQuery(def.Build)
				if err != nil {
					t.Errorf("round %d q%d: %v", r, q, err)
					return
				}
				tpch.AssertBatchesEqual(errTB{t, "round " + strconv.Itoa(r) + " q" + strconv.Itoa(q)},
					"", b, clean[q])
				if !rep.Degraded(2) {
					t.Errorf("round %d q%d: dead device 2 not degraded", r, q)
				}
			}(q, r)
		}
	}
	wg.Wait()

	want := int64(len(queries) * rounds)
	if v := o.Counter("distrib_shard_degradations_total", "device", "2").Value(); v != want {
		t.Fatalf("degradation counter = %d, want %d", v, want)
	}
}

// errTB adapts concurrent assertion failures to t.Errorf: goroutines must
// not call t.Fatalf (it exits the wrong goroutine), so batch mismatches
// are reported as non-fatal errors with a per-query prefix instead.
type errTB struct {
	t      *testing.T
	prefix string
}

func (e errTB) Helper() {}
func (e errTB) Fatalf(format string, args ...interface{}) {
	e.t.Errorf(e.prefix+": "+format, args...)
}
