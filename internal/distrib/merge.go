package distrib

import (
	"context"
	"fmt"

	"aquoman/internal/col"
	"aquoman/internal/core"
	"aquoman/internal/engine"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
)

// Strategy is how a query distributes across partitions. The same
// classification drives the in-process multi-SSD cluster here and the
// networked coordinator in internal/cluster, so both sides of the wire
// derive identical per-shard plans from the same query.
type Strategy int

const (
	// StratSingle runs on one device (replicated tables only).
	StratSingle Strategy = iota
	// StratConcat concatenates per-device rows.
	StratConcat
	// StratMergeAgg re-aggregates per-device partial aggregates.
	StratMergeAgg
)

func (k Strategy) String() string {
	return [...]string{"replicated-only", "concat", "merge-aggregate"}[k]
}

// Peel walks the post-processing chain (OrderBy/Limit/Project) above the
// distributable core, returning the chain outermost-first and the core.
func Peel(n plan.Node) (chain []plan.Node, core plan.Node) {
	for {
		switch t := n.(type) {
		case *plan.OrderBy:
			chain = append(chain, t)
			n = t.Input
		case *plan.Limit:
			chain = append(chain, t)
			n = t.Input
		case *plan.Project:
			chain = append(chain, t)
			n = t.Input
		default:
			return chain, n
		}
	}
}

func touchesPartitioned(n plan.Node) bool {
	found := false
	plan.Walk(n, func(m plan.Node) {
		if s, ok := m.(*plan.Scan); ok && PartitionedTables[s.Table] {
			found = true
		}
	})
	return found
}

// Classify decides the distribution strategy for a plan. Trees that would
// need a second shuffle (nested aggregation, scalar subqueries or
// replicated-outer existence tests over partitioned tables) are rejected
// with a reasoned error; callers with a full local replica may fall back
// to single-node execution instead.
func Classify(root plan.Node) (Strategy, error) {
	if !touchesPartitioned(root) {
		return StratSingle, nil
	}
	_, coreNode := Peel(root)

	// Distribution-breaking constructs over partitioned data: nested
	// aggregation / scalar subqueries (they would need a second shuffle)
	// and existence tests whose outer side is replicated (per-device
	// existence would duplicate or drop rows).
	var reason error
	check := func(m plan.Node, isRoot bool) {
		switch t := m.(type) {
		case *plan.GroupBy:
			if !isRoot && touchesPartitioned(t) {
				reason = fmt.Errorf("distrib: nested aggregation over a partitioned table")
			}
		case *plan.ScalarJoin:
			if touchesPartitioned(t.Sub) {
				reason = fmt.Errorf("distrib: scalar subquery over a partitioned table")
			}
		case *plan.Join:
			switch t.Kind {
			case plan.SemiJoin, plan.AntiJoin, plan.LeftMarkJoin:
				if touchesPartitioned(t.R) && !touchesPartitioned(t.L) {
					reason = fmt.Errorf("distrib: %s join with a replicated outer and partitioned inner", t.Kind)
				}
			}
		}
	}
	plan.Walk(coreNode, func(m plan.Node) { check(m, m == coreNode) })
	if reason != nil {
		return 0, reason
	}

	if g, ok := coreNode.(*plan.GroupBy); ok {
		for _, a := range g.Aggs {
			if a.Func == plan.AggCountDistinct {
				return 0, fmt.Errorf("distrib: COUNT(DISTINCT) does not merge across devices")
			}
		}
		return StratMergeAgg, nil
	}
	return StratConcat, nil
}

// PartialAggs rewrites a group-by's aggregates into mergeable partials:
// AVG becomes SUM + COUNT columns.
func PartialAggs(g *plan.GroupBy) []plan.AggSpec {
	var out []plan.AggSpec
	for _, a := range g.Aggs {
		switch a.Func {
		case plan.AggAvg:
			out = append(out,
				plan.AggSpec{Func: plan.AggSum, Name: a.Name + "@sum", E: a.E, Typ: a.Typ},
				plan.AggSpec{Func: plan.AggCount, Name: a.Name + "@cnt", E: nil})
		default:
			out = append(out, a)
		}
	}
	return out
}

// PartialPlan rewrites a fresh (unbound) query tree into the per-shard
// partial plan for the given strategy: the full tree for StratSingle, the
// peeled core for StratConcat, and the core with mergeable partial
// aggregates for StratMergeAgg. Both the in-process cluster and the
// networked workers derive their shard plans through this one function,
// which is what lets a coordinator trust that a worker given only a query
// number computed the same partial.
func PartialPlan(root plan.Node, strat Strategy) (plan.Node, error) {
	if strat == StratSingle {
		return root, nil
	}
	_, coreNode := Peel(root)
	if strat == StratConcat {
		return coreNode, nil
	}
	g, ok := coreNode.(*plan.GroupBy)
	if !ok {
		return nil, fmt.Errorf("distrib: merge strategy on non-group-by core %T", coreNode)
	}
	return &plan.GroupBy{Input: g.Input, Keys: g.Keys, Aggs: PartialAggs(g)}, nil
}

// MergePlan builds the coordinator-side re-aggregation over the
// concatenated partials, restoring the original output schema.
func MergePlan(g *plan.GroupBy, partial *plan.Materialized) plan.Node {
	var aggs []plan.AggSpec
	needsProject := false
	for _, a := range g.Aggs {
		switch a.Func {
		case plan.AggSum:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggSum, Name: a.Name, E: plan.C(a.Name), Typ: a.Typ})
		case plan.AggCount:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggSum, Name: a.Name, E: plan.C(a.Name), Typ: a.Typ})
		case plan.AggMin:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggMin, Name: a.Name, E: plan.C(a.Name), Typ: a.Typ})
		case plan.AggMax:
			aggs = append(aggs, plan.AggSpec{Func: plan.AggMax, Name: a.Name, E: plan.C(a.Name), Typ: a.Typ})
		case plan.AggAvg:
			needsProject = true
			aggs = append(aggs,
				plan.AggSpec{Func: plan.AggSum, Name: a.Name + "@sum", E: plan.C(a.Name + "@sum"), Typ: a.Typ},
				plan.AggSpec{Func: plan.AggSum, Name: a.Name + "@cnt", E: plan.C(a.Name + "@cnt")})
		}
	}
	merged := &plan.GroupBy{Input: partial, Keys: g.Keys, Aggs: aggs}
	if !needsProject {
		return merged
	}
	// Restore the declared schema: divide AVG sums by counts and drop the
	// helper columns.
	var exprs []plan.NamedExpr
	for _, k := range g.Keys {
		exprs = append(exprs, plan.NamedExpr{Name: k, E: plan.C(k)})
	}
	for _, a := range g.Aggs {
		if a.Func == plan.AggAvg {
			exprs = append(exprs, plan.NamedExpr{Name: a.Name, Typ: a.Typ,
				E: plan.DivE(plan.C(a.Name+"@sum"), plan.C(a.Name+"@cnt"))})
		} else {
			exprs = append(exprs, plan.NamedExpr{Name: a.Name, E: plan.C(a.Name), Typ: a.Typ})
		}
	}
	return &plan.Project{Input: merged, Exprs: exprs}
}

// ReapplyChain re-applies a peeled post-processing chain (outermost first,
// as returned by Peel) on top of the merged node, rebuilding fresh nodes
// so the chain can be bound against a different store.
func ReapplyChain(merged plan.Node, chain []plan.Node) plan.Node {
	for i := len(chain) - 1; i >= 0; i-- {
		switch t := chain[i].(type) {
		case *plan.OrderBy:
			merged = &plan.OrderBy{Input: merged, Keys: t.Keys}
		case *plan.Limit:
			merged = &plan.Limit{Input: merged, N: t.N}
		case *plan.Project:
			merged = &plan.Project{Input: merged, Exprs: t.Exprs}
		}
	}
	return merged
}

// scatterGather runs the per-device core plans (each through the shard
// retry/degradation path) and merges.
func (c *Cluster) scatterGather(ctx context.Context, build func() plan.Node, strat Strategy, root *obs.Span) (*engine.Batch, *Report, error) {
	rep := &Report{
		PerDevice:    make([]*core.Report, c.NumDevices()),
		ShardRetries: make([]int, c.NumDevices()),
		Strategy:     strat.String(),
	}

	var parts []*engine.Batch
	var partialSchema plan.Schema
	var probeChain []plan.Node
	var probeGroup *plan.GroupBy

	for d := 0; d < c.NumDevices(); d++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		d := d
		var chain []plan.Node
		mk := func(s *col.Store) (plan.Node, error) {
			tree := build()
			if err := plan.Bind(tree, s); err != nil {
				return nil, err
			}
			var coreNode plan.Node
			chain, coreNode = Peel(tree)
			if strat == StratConcat {
				return coreNode, nil
			}
			g, ok := coreNode.(*plan.GroupBy)
			if !ok {
				return nil, fmt.Errorf("distrib: merge strategy on non-group-by core %T", coreNode)
			}
			if d == 0 {
				probeGroup = g
			}
			devicePlan := &plan.GroupBy{Input: g.Input, Keys: g.Keys, Aggs: PartialAggs(g)}
			if err := plan.Bind(devicePlan, s); err != nil {
				return nil, err
			}
			return devicePlan, nil
		}
		b, r, err := c.runShard(ctx, d, mk, root, rep)
		if err != nil {
			return nil, nil, err
		}
		rep.PerDevice[d] = r
		parts = append(parts, b)
		if d == 0 {
			partialSchema = b.Schema
			probeChain = chain
		}
	}

	// Concatenate partials into a Materialized leaf.
	concat := &plan.Materialized{S: partialSchema, Label: "distrib-gather"}
	concat.Cols = make([][]int64, len(partialSchema))
	for _, b := range parts {
		for ci := range b.Cols {
			concat.Cols[ci] = append(concat.Cols[ci], b.Cols[ci]...)
		}
	}

	var merged plan.Node = concat
	if strat == StratMergeAgg {
		merged = MergePlan(probeGroup, concat)
	}
	merged = ReapplyChain(merged, probeChain)
	if err := plan.Bind(merged, c.Stores[0]); err != nil {
		return nil, nil, err
	}
	mSpan := root.Child("merge", obs.StageMerge)
	coord := engine.New(c.Stores[0])
	coord.SetObserver(c.Obs, mSpan)
	out, err := coord.Run(merged)
	mSpan.End()
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}
