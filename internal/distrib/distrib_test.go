package distrib

import (
	"strings"
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

var (
	setupOnce sync.Once
	srcStore  *col.Store
	cluster3  *Cluster
)

func setup(t *testing.T) (*col.Store, *Cluster) {
	t.Helper()
	setupOnce.Do(func() {
		srcStore = col.NewStore(flash.NewDevice())
		if err := tpch.Gen(srcStore, tpch.Config{SF: 0.005, Seed: 9}); err != nil {
			t.Fatalf("Gen: %v", err)
		}
		cluster3 = NewCluster(3)
		cluster3.HeapScale = 1000 / 0.005
		if err := cluster3.Partition(srcStore); err != nil {
			t.Fatalf("Partition: %v", err)
		}
	})
	return srcStore, cluster3
}

func TestPartitionCardinalities(t *testing.T) {
	src, c := setup(t)
	var orders, lineitem int
	for d := 0; d < c.NumDevices(); d++ {
		o := c.Stores[d].MustTable("orders")
		l := c.Stores[d].MustTable("lineitem")
		orders += o.NumRows
		lineitem += l.NumRows
		// Partitions should be roughly balanced.
		if o.NumRows < src.MustTable("orders").NumRows/4 {
			t.Fatalf("device %d underfull: %d orders", d, o.NumRows)
		}
		// Replicated dimensions are complete copies.
		for _, dim := range []string{"customer", "part", "supplier", "partsupp", "nation", "region"} {
			if c.Stores[d].MustTable(dim).NumRows != src.MustTable(dim).NumRows {
				t.Fatalf("device %d: %s not fully replicated", d, dim)
			}
		}
	}
	if orders != src.MustTable("orders").NumRows {
		t.Fatalf("orders total %d, want %d", orders, src.MustTable("orders").NumRows)
	}
	if lineitem != src.MustTable("lineitem").NumRows {
		t.Fatalf("lineitem total %d, want %d", lineitem, src.MustTable("lineitem").NumRows)
	}
}

func TestCoPartitioning(t *testing.T) {
	_, c := setup(t)
	// Every lineitem row's order must exist on the same device.
	for d := 0; d < c.NumDevices(); d++ {
		s := c.Stores[d]
		li := s.MustTable("lineitem")
		orders := s.MustTable("orders")
		rid := li.MustColumn(col.RowIDColumnName("l_orderkey")).MustReadAll(flash.Host)
		lok := li.MustColumn("l_orderkey").MustReadAll(flash.Host)
		ook := orders.MustColumn("o_orderkey").MustReadAll(flash.Host)
		for i := 0; i < len(rid); i += 53 {
			if ook[rid[i]] != lok[i] {
				t.Fatalf("device %d row %d: local rowid broken", d, i)
			}
		}
	}
}

func canonical(b *engine.Batch) []string { return tpch.CanonicalRows(b) }

// reference runs the query on the unpartitioned source store.
func reference(t *testing.T, src *col.Store, q int) *engine.Batch {
	t.Helper()
	def, err := tpch.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	n := def.Build()
	if err := plan.Bind(n, src); err != nil {
		t.Fatal(err)
	}
	b, err := engine.New(src).Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Distributable queries must match single-store execution exactly.
func TestDistributedMatchesSingleStore(t *testing.T) {
	src, c := setup(t)
	distributable := []int{1, 3, 4, 5, 6, 7, 8, 10, 12, 14, 19}
	for _, q := range distributable {
		def, _ := tpch.Get(q)
		got, rep, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("q%d: %v", q, err)
		}
		want := reference(t, src, q)
		gc, wc := canonical(got), canonical(want)
		if len(gc) != len(wc) {
			t.Fatalf("q%d rows: %d vs %d (strategy %s)", q, len(gc), len(wc), rep.Strategy)
		}
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("q%d row %d differs (strategy %s):\n got  %s\n want %s",
					q, i, rep.Strategy, gc[i], wc[i])
			}
		}
		if rep.Strategy != "merge-aggregate" {
			t.Fatalf("q%d strategy = %s", q, rep.Strategy)
		}
		if rep.OffloadFraction() < 0.5 {
			t.Errorf("q%d cluster offload = %.2f", q, rep.OffloadFraction())
		}
	}
}

// Ordering-sensitive results (ORDER BY + LIMIT) must also match exactly,
// not just as multisets.
func TestDistributedOrderingPreserved(t *testing.T) {
	src, c := setup(t)
	def, _ := tpch.Get(3) // order by revenue desc limit 10
	got, _, err := c.RunQuery(def.Build)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, src, 3)
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows %d vs %d", got.NumRows(), want.NumRows())
	}
	for ci := range want.Cols {
		for r := range want.Cols[ci] {
			if got.Cols[ci][r] != want.Cols[ci][r] {
				t.Fatalf("ordered row %d col %d differs", r, ci)
			}
		}
	}
}

// Queries over replicated tables only run on a single device.
func TestReplicatedOnlyQuery(t *testing.T) {
	_, c := setup(t)
	build := func() plan.Node {
		return &plan.GroupBy{
			Input: &plan.Scan{Table: "supplier", Cols: []string{"s_nationkey"}},
			Keys:  []string{"s_nationkey"},
			Aggs:  []plan.AggSpec{{Func: plan.AggCount, Name: "n"}},
		}
	}
	_, rep, err := c.RunQuery(build)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Strategy, "replicated-only") {
		t.Fatalf("strategy = %s", rep.Strategy)
	}
	active := 0
	for _, r := range rep.PerDevice {
		if r != nil {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("active devices = %d", active)
	}
}

// Non-distributable shapes are rejected with clear reasons.
func TestRejectionReasons(t *testing.T) {
	_, c := setup(t)
	cases := []struct {
		q    int
		want string
	}{
		{17, "nested aggregation"},
		{18, "nested aggregation"},
		{22, "partitioned inner"},  // anti join hits first; the scalar subquery would also block
		{13, "nested aggregation"}, // per-customer counting: the outer-join and
		// nested-aggregation conditions both block; walk order reports the latter
	}
	for _, tc := range cases {
		def, _ := tpch.Get(tc.q)
		_, _, err := c.RunQuery(def.Build)
		if err == nil {
			t.Fatalf("q%d distributed", tc.q)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("q%d reason = %v, want %q", tc.q, err, tc.want)
		}
	}
}

// AVG must merge through SUM+COUNT partials, not averaged averages.
func TestAvgMergesExactly(t *testing.T) {
	src, c := setup(t)
	build := func() plan.Node {
		return &plan.GroupBy{
			Input: &plan.Scan{Table: "lineitem", Cols: []string{"l_returnflag", "l_quantity"}},
			Keys:  []string{"l_returnflag"},
			Aggs: []plan.AggSpec{
				{Func: plan.AggAvg, Name: "avg_qty", E: plan.C("l_quantity"), Typ: col.Decimal},
				{Func: plan.AggCount, Name: "n"},
			},
		}
	}
	got, _, err := c.RunQuery(build)
	if err != nil {
		t.Fatal(err)
	}
	ref := build()
	if err := plan.Bind(ref, src); err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(src).Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	gc, wc := canonical(got), canonical(want)
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("avg merge differs: %s vs %s", gc[i], wc[i])
		}
	}
}

func TestClusterSizes(t *testing.T) {
	src, _ := setup(t)
	for _, n := range []int{1, 2, 5} {
		c := NewCluster(n)
		c.HeapScale = 1000 / 0.005
		if err := c.Partition(src); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		def, _ := tpch.Get(6)
		got, _, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := reference(t, src, 6)
		if got.Cols[0][0] != want.Cols[0][0] {
			t.Fatalf("n=%d: q6 = %d, want %d", n, got.Cols[0][0], want.Cols[0][0])
		}
	}
}

// With many devices, small partitions can miss dictionary values; seeded
// dictionaries must keep codes globally consistent so merged aggregates
// stay exact.
func TestSkewedPartitionsDictConsistency(t *testing.T) {
	src, _ := setup(t)
	c := NewCluster(17) // tiny partitions
	c.HeapScale = 1000 / 0.005
	if err := c.Partition(src); err != nil {
		t.Fatal(err)
	}
	build := func() plan.Node {
		return &plan.GroupBy{
			Input: &plan.Scan{Table: "lineitem",
				Cols: []string{"l_returnflag", "l_linestatus", "l_quantity"}},
			Keys: []string{"l_returnflag", "l_linestatus"},
			Aggs: []plan.AggSpec{{Func: plan.AggSum, Name: "q", E: plan.C("l_quantity")}},
		}
	}
	got, _, err := c.RunQuery(build)
	if err != nil {
		t.Fatal(err)
	}
	ref := build()
	if err := plan.Bind(ref, src); err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(src).Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	gc, wc := canonical(got), canonical(want)
	if len(gc) != len(wc) {
		t.Fatalf("groups: %d vs %d", len(gc), len(wc))
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("dict codes diverged across partitions: %s vs %s", gc[i], wc[i])
		}
	}
	// Decoded strings must agree too.
	f := got.Schema[0]
	if f.Src == nil {
		t.Fatal("dict source lost")
	}
}
