package distrib

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/flash"
	"aquoman/internal/tpch"
)

// newFaultCluster builds a fresh 4-device cluster, separate from the
// shared fixture so injected faults cannot leak into other tests.
func newFaultCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(4)
	c.HeapScale = 1000 / 0.005
	if err := c.LoadTPCH(0.005, 42); err != nil {
		t.Fatalf("LoadTPCH: %v", err)
	}
	return c
}

func sameBatch(t *testing.T, label string, got, want *engine.Batch) {
	t.Helper()
	tpch.AssertBatchesEqual(t, label, got, want)
}

// The acceptance scenario: a seeded fault schedule across a 4-device
// cluster — a budget-exhausting transient burst on device 1, a dead
// device 2, and background absorbable transients on device 3 — must
// produce byte-identical q1/q3/q6 results, with the retries and the
// mirror degradation visible in the Report and the obs metrics.
func TestClusterFaultRecoveryByteIdentical(t *testing.T) {
	c := newFaultCluster(t)
	o := c.EnableObservability()

	queries := []int{1, 3, 6}
	clean := make(map[int]*engine.Batch)
	for _, q := range queries {
		def, err := tpch.Get(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("fault-free q%d: %v", q, err)
		}
		clean[q] = b
	}

	// Device 1: fail the first 12 read attempts transiently. The first
	// shard execution exhausts the page-read budget (5 attempts) and the
	// host resume fails the same way (5 more); the shard-level re-run
	// then sees the tail of the burst absorbed by flash-level retries.
	inj1 := faults.New(faults.Config{})
	var burst int
	inj1.Hook = func(file string, page int64, who flash.Requester, attempt int) (faults.Kind, bool) {
		if burst < 12 {
			burst++
			return faults.Transient, true
		}
		return 0, false
	}
	c.Devices[1].SetFaults(inj1)
	// Device 2: dead for the duration — every shard degrades to its
	// host-side mirror.
	inj2 := faults.New(faults.Config{})
	inj2.KillDevice()
	c.Devices[2].SetFaults(inj2)
	// Device 3: background transients, all absorbed below the budget.
	inj3 := faults.New(faults.Config{Seed: 5, PTransient: 0.05, TransientRepeat: 1})
	c.Devices[3].SetFaults(inj3)
	defer func() {
		for _, d := range c.Devices {
			d.SetFaults(nil)
		}
	}()

	for i, q := range queries {
		def, _ := tpch.Get(q)
		b, rep, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("faulted q%d: %v", q, err)
		}
		sameBatch(t, "q"+strconv.Itoa(q), b, clean[q])
		if !rep.Degraded(2) {
			t.Fatalf("q%d: dead device 2 did not degrade: %+v", q, rep.DegradedShards)
		}
		if rep.ShardRetries[2] == 0 {
			t.Fatalf("q%d: shard 2 degraded without a same-device retry", q)
		}
		if i == 0 && rep.ShardRetries[1] == 0 {
			t.Fatalf("q%d: transient burst on device 1 did not trigger a shard retry", q)
		}
		if rep.Degraded(1) || rep.Degraded(3) {
			t.Fatalf("q%d: absorbable devices degraded: %+v", q, rep.DegradedShards)
		}
		found := false
		for _, note := range rep.PerDevice[2].Notes {
			if strings.Contains(note, "degraded to host-side mirror") {
				found = true
			}
		}
		if !found {
			t.Fatalf("q%d: device 2 report lacks degradation note: %q", q, rep.PerDevice[2].Notes)
		}
	}

	// Recovery must be visible in the metrics registry and flash stats.
	if v := o.Counter("distrib_shard_degradations_total", "device", "2").Value(); v != int64(len(queries)) {
		t.Fatalf("degradation counter = %d, want %d", v, len(queries))
	}
	if v := o.Counter("distrib_shard_retries_total", "device", "1").Value(); v == 0 {
		t.Fatal("retry counter for device 1 is zero")
	}
	if c.Devices[3].Stats().TotalReadRetries() == 0 {
		t.Fatal("device 3 absorbed no transients despite the seeded schedule")
	}
	if inj2.Counts().Total(faults.DeviceStuck) == 0 {
		t.Fatal("dead device injected no stuck faults")
	}
}

// Without a host-side mirror a permanently dead device is a typed,
// attributable failure.
func TestClusterDeadDeviceWithoutMirror(t *testing.T) {
	c := NewCluster(2)
	c.DisableHostMirror = true
	c.HeapScale = 1000 / 0.002
	if err := c.LoadTPCH(0.002, 7); err != nil {
		t.Fatalf("LoadTPCH: %v", err)
	}
	inj := faults.New(faults.Config{})
	inj.KillDevice()
	c.Devices[1].SetFaults(inj)
	defer c.Devices[1].SetFaults(nil)

	def, err := tpch.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.RunQuery(def.Build)
	if err == nil {
		t.Fatal("query over a dead unmirrored shard succeeded")
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Device != 1 {
		t.Fatalf("err = %v, want *ShardError on device 1", err)
	}
	var fe *faults.Error
	if !errors.As(err, &fe) || fe.Kind != faults.DeviceStuck {
		t.Fatalf("err = %v, want wrapped DeviceStuck fault", err)
	}
}
