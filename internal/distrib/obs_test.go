package distrib

import (
	"strconv"
	"testing"

	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

// TestClusterObservability runs a scatter-gather query on an observed
// cluster and checks the shard/merge spans and per-device flash metrics.
func TestClusterObservability(t *testing.T) {
	src, _ := setup(t)
	c := NewCluster(2)
	c.HeapScale = 1000 / 0.005
	if err := c.Partition(src); err != nil {
		t.Fatal(err)
	}
	o := c.EnableObservability()

	def, err := tpch.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunQuery(func() plan.Node { return def.Build() }); err != nil {
		t.Fatal(err)
	}

	spans := o.Tracer.Spans()
	shardTids := make(map[int]bool)
	var merges, queries int
	for _, s := range spans {
		switch s.Stage {
		case obs.StageShard:
			shardTids[s.Tid] = true
		case obs.StageMerge:
			merges++
		case obs.StageQuery:
			queries++
		}
	}
	if len(shardTids) != 2 {
		t.Fatalf("shard lanes = %v, want one per device", shardTids)
	}
	if merges != 1 {
		t.Fatalf("merge spans = %d, want 1", merges)
	}
	if queries < 3 { // distrib root + one core query per device
		t.Fatalf("query spans = %d, want >= 3", queries)
	}

	// Flash traffic is labeled per device.
	snap := o.Reg.Snapshot()
	for d := 0; d < 2; d++ {
		p, ok := snap.Get("flash_pages_read_total",
			"device", strconv.Itoa(d), "requester", "aquoman")
		if !ok || p.Value <= 0 {
			t.Fatalf("device %d aquoman pages = %+v, %v", d, p, ok)
		}
	}
	if p, ok := snap.Get("distrib_queries_total", "strategy", "merge-aggregate"); !ok || p.Value != 1 {
		t.Fatalf("distrib_queries_total = %+v, %v", p, ok)
	}
}
