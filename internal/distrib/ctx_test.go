package distrib

import (
	"context"
	"errors"
	"testing"

	"aquoman/internal/tpch"
)

// TestRunQueryCtxPreCancelled verifies a dead context stops a distributed
// query before any shard runs, and that the context error is not treated
// as a device fault (no retries, no mirror degradation).
func TestRunQueryCtxPreCancelled(t *testing.T) {
	_, c := setup(t)
	def, err := tpch.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int64, c.NumDevices())
	for d := 0; d < c.NumDevices(); d++ {
		st := c.Devices[d].Stats()
		before[d] = st.PagesRead[0] + st.PagesRead[1]
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = c.RunQueryCtx(ctx, def.Build)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for d := 0; d < c.NumDevices(); d++ {
		st := c.Devices[d].Stats()
		if got := st.PagesRead[0] + st.PagesRead[1]; got != before[d] {
			t.Fatalf("device %d read %d pages for a pre-cancelled query", d, got-before[d])
		}
	}
}

// TestRunQueryCtxNilMatchesRunQuery keeps the legacy path intact: a nil
// context runs identically to RunQuery.
func TestRunQueryCtxNilMatchesRunQuery(t *testing.T) {
	_, c := setup(t)
	def, err := tpch.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := c.RunQuery(def.Build)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.RunQueryCtx(nil, def.Build)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() || got.Cols[0][0] != want.Cols[0][0] {
		t.Fatalf("nil-ctx result differs: %v vs %v", got.Cols[0][0], want.Cols[0][0])
	}
}
