package distrib

import (
	"testing"

	"aquoman/internal/tpch"
)

// One shared cache across all shard devices: every shard stores
// identically named column files with different rows, so any partition
// aliasing in the cache would silently corrupt results. Cached cluster
// runs must match uncached runs cell-exactly, with the budget honored
// and repeat runs hitting.
func TestClusterSharedCachePartitionIsolation(t *testing.T) {
	_, c := setup(t)
	def, err := tpch.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := c.RunQuery(def.Build)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 4 << 20
	cache := c.EnableCache(budget)
	defer c.DisableCache()
	for run := 0; run < 2; run++ {
		got, _, err := c.RunQuery(def.Build)
		if err != nil {
			t.Fatalf("cached run %d: %v", run, err)
		}
		if got.NumRows() != want.NumRows() || len(got.Cols) != len(want.Cols) {
			t.Fatalf("cached run %d shape: %dx%d vs %dx%d",
				run, got.NumRows(), len(got.Cols), want.NumRows(), len(want.Cols))
		}
		for ci := range want.Cols {
			for r := range want.Cols[ci] {
				if got.Cols[ci][r] != want.Cols[ci][r] {
					t.Fatalf("cached run %d: col %d row %d = %d, want %d (partition aliasing?)",
						run, ci, r, got.Cols[ci][r], want.Cols[ci][r])
				}
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatal("second cluster run never hit the shared cache")
	}
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds shared budget %d", st.Bytes, budget)
	}
	if st.Misses == 0 {
		t.Fatal("no misses recorded — cache was bypassed?")
	}
}
