// Package distrib implements the paper's stated future work (Sec. IX):
// distributed execution of queries whose data is spread over multiple
// AQUOMAN SSDs.
//
// A Cluster holds N devices. Fact tables (orders and lineitem, which are
// co-clustered on the order key) are horizontally partitioned round-robin
// by order; dimension tables are replicated, the standard star-schema
// layout. Each device rematerializes its local FK RowID indices, so the
// per-device stores are fully self-contained AQUOMAN disks.
//
// Queries distribute by scatter-gather: every device runs the plan over
// its partition (offloading to its own AQUOMAN pipeline), and the
// coordinator merges the partial results. Root aggregations merge by
// aggregate-specific combination (SUM/COUNT re-sum, MIN/MAX re-min/max,
// AVG is decomposed into SUM+COUNT partials); row-returning plans
// concatenate. Plans with nested aggregation or scalar subqueries over a
// partitioned table are rejected (they would need a second shuffle), and
// plans touching only replicated tables run on one device.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/core"
	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/sched"
	"aquoman/internal/tpch"
)

// PartitionedTables lists the co-clustered fact tables split across
// devices; everything else is replicated.
var PartitionedTables = map[string]bool{"orders": true, "lineitem": true}

// Cluster is a set of AQUOMAN SSDs holding one distributed data set.
type Cluster struct {
	Stores  []*col.Store
	Devices []*flash.Device

	// Mirrors holds per-shard host-side copies of the partitioned data on
	// separate fault-free devices (built by Partition unless
	// DisableHostMirror). A shard whose SSD fails permanently re-runs its
	// work from the mirror — the graceful-degradation path.
	Mirrors       []*col.Store
	MirrorDevices []*flash.Device
	// DisableHostMirror skips mirror construction (halves load cost and
	// memory; permanent shard faults then fail with a ShardError).
	DisableHostMirror bool

	// ShardRetryBudget is how many times a fault-failed shard is re-run on
	// the same device before degrading to the mirror (default 1).
	ShardRetryBudget int

	// DRAMBytes per device; HeapScale as in the single-device runtime.
	DRAMBytes int64
	HeapScale float64

	// Obs (optional) collects cluster-wide spans and metrics; shard spans
	// carry one trace lane (tid) per device.
	Obs *obs.Observer

	// cache (optional, see EnableCache) is shared by every shard device
	// through per-device partitions of one byte budget.
	cache *sched.PageCache
}

// NewCluster returns an empty cluster of n devices.
func NewCluster(n int) *Cluster {
	c := &Cluster{DRAMBytes: mem.DefaultCapacity, HeapScale: 1, ShardRetryBudget: 1}
	for i := 0; i < n; i++ {
		dev := flash.NewDevice()
		c.Devices = append(c.Devices, dev)
		c.Stores = append(c.Stores, col.NewStore(dev))
	}
	return c
}

// NumDevices returns the cluster size.
func (c *Cluster) NumDevices() int { return len(c.Stores) }

// EnableObservability attaches a fresh Observer to the cluster and binds
// every device's flash counters into its registry under a device label.
func (c *Cluster) EnableObservability() *obs.Observer {
	o := obs.New()
	c.Obs = o
	for i, dev := range c.Devices {
		dev.Observe(o.Reg, "device", strconv.Itoa(i))
	}
	return o
}

// EnableCache installs one shared single-flight LRU page cache of
// maxBytes across all shard devices (and host mirrors). Every device gets
// its own partition of the shared budget, so identically named column
// files on different shards cannot alias each other's pages. Mirrors
// created by a later Partition call join the same cache automatically.
func (c *Cluster) EnableCache(maxBytes int64) *sched.PageCache {
	c.cache = sched.NewPageCache(maxBytes)
	if c.Obs != nil {
		c.cache.Observe(c.Obs.Reg)
	}
	c.applyCache()
	return c.cache
}

// DisableCache detaches the shared page cache from every device.
func (c *Cluster) DisableCache() {
	c.cache = nil
	for _, dev := range c.Devices {
		dev.SetPageCache(nil)
	}
	for _, dev := range c.MirrorDevices {
		if dev != nil {
			dev.SetPageCache(nil)
		}
	}
}

// CacheStats snapshots the shared cache (zero value when none installed).
func (c *Cluster) CacheStats() sched.CacheStats {
	if c.cache == nil {
		return sched.CacheStats{}
	}
	return c.cache.Stats()
}

func (c *Cluster) applyCache() {
	if c.cache == nil {
		return
	}
	for i, dev := range c.Devices {
		dev.SetPageCache(c.cache.Partition("dev" + strconv.Itoa(i)))
	}
	for i, dev := range c.MirrorDevices {
		if dev != nil {
			dev.SetPageCache(c.cache.Partition("mirror" + strconv.Itoa(i)))
		}
	}
}

// LoadTPCH generates a TPC-H data set and partitions it across the
// cluster: orders row r goes to device r % N, lineitem follows its order,
// and the six dimension tables are replicated.
func (c *Cluster) LoadTPCH(sf float64, seed int64) error {
	src := col.NewStore(flash.NewDevice())
	if err := tpch.Gen(src, tpch.Config{SF: sf, Seed: seed}); err != nil {
		return err
	}
	return c.Partition(src)
}

// Partition distributes an existing TPC-H store across the cluster.
func (c *Cluster) Partition(src *col.Store) error {
	n := c.NumDevices()
	if !c.DisableHostMirror {
		c.Mirrors = make([]*col.Store, n)
		c.MirrorDevices = make([]*flash.Device, n)
		for d := 0; d < n; d++ {
			c.MirrorDevices[d] = flash.NewDevice()
			c.Mirrors[d] = col.NewStore(c.MirrorDevices[d])
		}
	}

	for d := 0; d < n; d++ {
		targets := []*col.Store{c.Stores[d]}
		if c.Mirrors != nil {
			targets = append(targets, c.Mirrors[d])
		}
		for _, dst := range targets {
			if err := ExtractShard(dst, src, d, n); err != nil {
				return err
			}
		}
	}
	// Mirror devices created above join the shared cache (no-op when no
	// cache is installed).
	c.applyCache()
	return nil
}

// ExtractShard copies shard d of an n-way partitioning of src into dst:
// orders row r goes to shard r % n, lineitem follows its order via the
// materialized order RowID, dimension tables are replicated in full, and
// the shard's FK RowID indices are rematerialized locally so dst is a
// fully self-contained AQUOMAN store. The same function feeds the
// in-process cluster's devices, the networked workers started with
// `aquoman-serve -partition d/n`, and the coordinator's host-fallback
// shards, which is what keeps all three byte-identical.
func ExtractShard(dst, src *col.Store, d, n int) error {
	if n < 1 || d < 0 || d >= n {
		return fmt.Errorf("distrib: shard %d/%d out of range", d, n)
	}
	// Device of each orders row, and of each lineitem row via its
	// materialized order RowID.
	li, err := src.Table("lineitem")
	if err != nil {
		return err
	}
	liOrderRow, err := li.MustColumn(col.RowIDColumnName("l_orderkey")).ReadAll(flash.Host)
	if err != nil {
		return err
	}
	for _, name := range src.Tables() {
		tab := src.MustTable(name)
		var keep []int
		switch name {
		case "orders":
			for r := 0; r < tab.NumRows; r++ {
				if r%n == d {
					keep = append(keep, r)
				}
			}
		case "lineitem":
			for r := 0; r < tab.NumRows; r++ {
				if int(liOrderRow[r])%n == d {
					keep = append(keep, r)
				}
			}
		default:
			keep = nil // replicate all rows
		}
		if err := copyTable(dst, tab, keep); err != nil {
			return fmt.Errorf("distrib: shard %d table %s: %w", d, name, err)
		}
	}
	if err := rematerialize(dst); err != nil {
		return fmt.Errorf("distrib: shard %d: %w", d, err)
	}
	return nil
}

// copyTable copies the declared (non-RowID-index) columns of tab into
// dst, keeping only the given rows (nil = all rows).
func copyTable(dst *col.Store, tab *col.Table, keep []int) error {
	var defs []col.ColDef
	for _, cd := range tab.Cols {
		if cd.Typ == col.RowID {
			continue // rematerialized locally
		}
		defs = append(defs, cd)
	}
	b := dst.NewTable(col.Schema{Name: tab.Name, Cols: defs})
	nRows := tab.NumRows
	if keep != nil {
		nRows = len(keep)
	}
	// Seed dictionaries with the source's full domain so that every
	// partition assigns identical codes even when it lacks some values —
	// merged partial aggregates compare codes directly.
	for _, cd := range defs {
		if cd.Typ == col.Dict {
			b.SeedDictionary(cd.Name, tab.MustColumn(cd.Name).Dict())
		}
	}
	for _, cd := range defs {
		ci := tab.MustColumn(cd.Name)
		if cd.Typ.IsString() {
			offs, err := ci.ReadAll(flash.Host)
			if err != nil {
				return err
			}
			var heap *col.HeapReader
			var dict []string
			if cd.Typ == col.Text {
				heap, err = ci.NewHeapReader(flash.Host)
				if err != nil {
					return err
				}
			} else {
				dict = ci.Dict()
			}
			strs := make([]string, 0, nRows)
			emit := func(r int) {
				if cd.Typ == col.Text {
					strs = append(strs, heap.Str(offs[r]))
				} else {
					strs = append(strs, dict[offs[r]])
				}
			}
			if keep == nil {
				for r := 0; r < tab.NumRows; r++ {
					emit(r)
				}
			} else {
				for _, r := range keep {
					emit(r)
				}
			}
			b.AppendColumnStrings(cd.Name, strs)
			continue
		}
		vals, err := ci.ReadAll(flash.Host)
		if err != nil {
			return err
		}
		if keep == nil {
			b.AppendColumnValues(cd.Name, vals)
		} else {
			sel := make([]int64, len(keep))
			for i, r := range keep {
				sel[i] = vals[r]
			}
			b.AppendColumnValues(cd.Name, sel)
		}
	}
	b.SetNumRows(nRows)
	_, err := b.Finalize()
	return err
}

// rematerialize rebuilds the local FK RowID indices of a partitioned
// TPC-H store.
func rematerialize(s *col.Store) error {
	type fk struct{ fact, col, dim, pk string }
	fks := []fk{
		{"nation", "n_regionkey", "region", "r_regionkey"},
		{"supplier", "s_nationkey", "nation", "n_nationkey"},
		{"customer", "c_nationkey", "nation", "n_nationkey"},
		{"partsupp", "ps_partkey", "part", "p_partkey"},
		{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
		{"orders", "o_custkey", "customer", "c_custkey"},
		{"lineitem", "l_orderkey", "orders", "o_orderkey"},
		{"lineitem", "l_partkey", "part", "p_partkey"},
		{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
	}
	for _, f := range fks {
		fact, err := s.Table(f.fact)
		if err != nil {
			return err
		}
		dim, err := s.Table(f.dim)
		if err != nil {
			return err
		}
		if err := col.MaterializeFK(fact, f.col, dim, f.pk); err != nil {
			return err
		}
	}
	li, err := s.Table("lineitem")
	if err != nil {
		return err
	}
	ps, err := s.Table("partsupp")
	if err != nil {
		return err
	}
	return tpch.MaterializePartSuppIndex(li, ps)
}

// Report aggregates the per-device execution reports.
type Report struct {
	// PerDevice holds each device's report (nil for devices that did not
	// participate).
	PerDevice []*core.Report
	// Strategy describes how the query was distributed.
	Strategy string
	// ShardRetries counts fault-triggered same-device re-runs per shard.
	ShardRetries []int
	// DegradedShards lists shards whose work was re-run from the host-side
	// mirror after the device kept failing.
	DegradedShards []int
}

// Degraded reports whether shard d completed via the host-side mirror.
func (r *Report) Degraded(d int) bool {
	for _, s := range r.DegradedShards {
		if s == d {
			return true
		}
	}
	return false
}

// ShardError is the typed failure of one shard after retry and (if
// available) mirror degradation were exhausted.
type ShardError struct {
	Device int
	Err    error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("distrib: shard %d failed: %v", e.Device, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// isFault reports whether err stems from an injected device fault (the
// recoverable class; plan/compile errors are not retried).
func isFault(err error) bool {
	var fe *faults.Error
	return errors.As(err, &fe)
}

func (c *Cluster) shardCounter(name string, d int) {
	if c.Obs != nil && c.Obs.Reg != nil {
		c.Obs.Counter(name, "device", strconv.Itoa(d)).Inc()
	}
}

// OffloadFraction returns the cluster-wide in-storage traffic share.
func (r *Report) OffloadFraction() float64 {
	var host, aq int64
	for _, rep := range r.PerDevice {
		if rep == nil {
			continue
		}
		host += rep.Flash.BytesRead(flash.Host)
		aq += rep.Flash.BytesRead(flash.Aquoman)
	}
	if host+aq == 0 {
		return 0
	}
	return float64(aq) / float64(host+aq)
}

// RunQuery executes the plan produced by build across the cluster. build
// must return a fresh tree per call (each device binds its own copy).
func (c *Cluster) RunQuery(build func() plan.Node) (*engine.Batch, *Report, error) {
	return c.RunQueryCtx(nil, build)
}

// RunQueryCtx is RunQuery with cooperative cancellation: ctx is threaded
// into every shard's execution (page-read and morsel checkpoints), and is
// checked between shards, so a cancelled distributed query stops issuing
// flash page reads on every device. A context error propagates as-is —
// it is not a device fault, so it triggers neither shard retries nor
// mirror degradation. A nil ctx never cancels.
func (c *Cluster) RunQueryCtx(ctx context.Context, build func() plan.Node) (*engine.Batch, *Report, error) {
	probe := build()
	if err := plan.Bind(probe, c.Stores[0]); err != nil {
		return nil, nil, err
	}
	strat, err := Classify(probe)
	if err != nil {
		return nil, nil, err
	}
	root := c.Obs.StartSpan("distrib "+strat.String(), obs.StageQuery)
	defer root.End()
	if o := c.Obs; o != nil && o.Reg != nil {
		o.Counter("distrib_queries_total", "strategy", strat.String()).Inc()
	}
	switch strat {
	case StratSingle:
		rep := &Report{
			PerDevice:    make([]*core.Report, 1),
			ShardRetries: make([]int, 1),
			Strategy:     "replicated-only (device 0)",
		}
		mk := func(s *col.Store) (plan.Node, error) {
			p := build()
			if err := plan.Bind(p, s); err != nil {
				return nil, err
			}
			return p, nil
		}
		b, r, err := c.runShard(ctx, 0, mk, root, rep)
		if err != nil {
			return nil, nil, err
		}
		rep.PerDevice[0] = r
		return b, rep, nil
	case StratConcat, StratMergeAgg:
		return c.scatterGather(ctx, build, strat, root)
	default:
		return nil, nil, fmt.Errorf("distrib: unreachable")
	}
}

// runShard executes the plan produced by mkPlan (which must build and bind
// a fresh tree against the given store on every call) on shard d, with
// fault recovery: fault-typed failures re-run on the same device up to
// ShardRetryBudget times, then the shard degrades to its host-side mirror
// (recorded in rep.DegradedShards and the device report's Notes). A
// non-fault error propagates untouched; an unrecoverable fault returns a
// typed *ShardError.
func (c *Cluster) runShard(ctx context.Context, d int, mkPlan func(s *col.Store) (plan.Node, error), parent *obs.Span, rep *Report) (*engine.Batch, *core.Report, error) {
	run := func(s *col.Store, label string) (*engine.Batch, *core.Report, error) {
		p, err := mkPlan(s)
		if err != nil {
			return nil, nil, err
		}
		shard := parent.Child(label, obs.StageShard)
		shard.SetTid(d + 2)
		defer shard.End()
		dev := core.New(s, core.Config{
			DRAMBytes: c.DRAMBytes,
			Compiler:  compiler.Config{HeapScale: c.HeapScale},
			Obs:       c.Obs,
			ObsParent: shard,
			Ctx:       ctx,
		})
		return dev.RunQuery(p)
	}

	budget := c.ShardRetryBudget
	if budget < 0 {
		budget = 0
	}
	var lastErr error
	for try := 0; try <= budget; try++ {
		// A dead context ends the shard immediately — fault retries must
		// not keep a cancelled query's device busy.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		label := "shard " + strconv.Itoa(d)
		if try > 0 {
			label += " retry " + strconv.Itoa(try)
			rep.ShardRetries[d]++
			c.shardCounter("distrib_shard_retries_total", d)
		}
		b, r, err := run(c.Stores[d], label)
		if err == nil {
			return b, r, nil
		}
		if !isFault(err) {
			return nil, nil, err
		}
		lastErr = err
	}

	if c.Mirrors != nil && c.Mirrors[d] != nil {
		rep.DegradedShards = append(rep.DegradedShards, d)
		c.shardCounter("distrib_shard_degradations_total", d)
		b, r, err := run(c.Mirrors[d], "shard "+strconv.Itoa(d)+" (host mirror)")
		if err != nil {
			return nil, nil, &ShardError{Device: d, Err: err}
		}
		if r != nil {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"shard %d degraded to host-side mirror after device fault: %v", d, lastErr))
		}
		return b, r, nil
	}
	return nil, nil, &ShardError{Device: d, Err: lastErr}
}
