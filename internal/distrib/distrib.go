// Package distrib implements the paper's stated future work (Sec. IX):
// distributed execution of queries whose data is spread over multiple
// AQUOMAN SSDs.
//
// A Cluster holds N devices. Fact tables (orders and lineitem, which are
// co-clustered on the order key) are horizontally partitioned round-robin
// by order; dimension tables are replicated, the standard star-schema
// layout. Each device rematerializes its local FK RowID indices, so the
// per-device stores are fully self-contained AQUOMAN disks.
//
// Queries distribute by scatter-gather: every device runs the plan over
// its partition (offloading to its own AQUOMAN pipeline), and the
// coordinator merges the partial results. Root aggregations merge by
// aggregate-specific combination (SUM/COUNT re-sum, MIN/MAX re-min/max,
// AVG is decomposed into SUM+COUNT partials); row-returning plans
// concatenate. Plans with nested aggregation or scalar subqueries over a
// partitioned table are rejected (they would need a second shuffle), and
// plans touching only replicated tables run on one device.
package distrib

import (
	"fmt"
	"strconv"

	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/core"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

// PartitionedTables lists the co-clustered fact tables split across
// devices; everything else is replicated.
var PartitionedTables = map[string]bool{"orders": true, "lineitem": true}

// Cluster is a set of AQUOMAN SSDs holding one distributed data set.
type Cluster struct {
	Stores  []*col.Store
	Devices []*flash.Device

	// DRAMBytes per device; HeapScale as in the single-device runtime.
	DRAMBytes int64
	HeapScale float64

	// Obs (optional) collects cluster-wide spans and metrics; shard spans
	// carry one trace lane (tid) per device.
	Obs *obs.Observer
}

// NewCluster returns an empty cluster of n devices.
func NewCluster(n int) *Cluster {
	c := &Cluster{DRAMBytes: mem.DefaultCapacity, HeapScale: 1}
	for i := 0; i < n; i++ {
		dev := flash.NewDevice()
		c.Devices = append(c.Devices, dev)
		c.Stores = append(c.Stores, col.NewStore(dev))
	}
	return c
}

// NumDevices returns the cluster size.
func (c *Cluster) NumDevices() int { return len(c.Stores) }

// EnableObservability attaches a fresh Observer to the cluster and binds
// every device's flash counters into its registry under a device label.
func (c *Cluster) EnableObservability() *obs.Observer {
	o := obs.New()
	c.Obs = o
	for i, dev := range c.Devices {
		dev.Observe(o.Reg, "device", strconv.Itoa(i))
	}
	return o
}

// LoadTPCH generates a TPC-H data set and partitions it across the
// cluster: orders row r goes to device r % N, lineitem follows its order,
// and the six dimension tables are replicated.
func (c *Cluster) LoadTPCH(sf float64, seed int64) error {
	src := col.NewStore(flash.NewDevice())
	if err := tpch.Gen(src, tpch.Config{SF: sf, Seed: seed}); err != nil {
		return err
	}
	return c.Partition(src)
}

// Partition distributes an existing TPC-H store across the cluster.
func (c *Cluster) Partition(src *col.Store) error {
	n := c.NumDevices()
	orders, err := src.Table("orders")
	if err != nil {
		return err
	}
	// Device of each orders row, and of each lineitem row via its
	// materialized order RowID.
	orderDev := func(row int) int { return row % n }
	li, err := src.Table("lineitem")
	if err != nil {
		return err
	}
	liOrderRow := li.MustColumn(col.RowIDColumnName("l_orderkey")).ReadAll(flash.Host)

	for d := 0; d < n; d++ {
		for _, name := range src.Tables() {
			tab := src.MustTable(name)
			var keep []int
			switch name {
			case "orders":
				for r := 0; r < tab.NumRows; r++ {
					if orderDev(r) == d {
						keep = append(keep, r)
					}
				}
			case "lineitem":
				for r := 0; r < tab.NumRows; r++ {
					if orderDev(int(liOrderRow[r])) == d {
						keep = append(keep, r)
					}
				}
			default:
				keep = nil // replicate all rows
			}
			if err := copyTable(c.Stores[d], tab, keep); err != nil {
				return fmt.Errorf("distrib: device %d table %s: %w", d, name, err)
			}
		}
		if err := rematerialize(c.Stores[d]); err != nil {
			return fmt.Errorf("distrib: device %d: %w", d, err)
		}
	}
	_ = orders
	return nil
}

// copyTable copies the declared (non-RowID-index) columns of tab into
// dst, keeping only the given rows (nil = all rows).
func copyTable(dst *col.Store, tab *col.Table, keep []int) error {
	var defs []col.ColDef
	for _, cd := range tab.Cols {
		if cd.Typ == col.RowID {
			continue // rematerialized locally
		}
		defs = append(defs, cd)
	}
	b := dst.NewTable(col.Schema{Name: tab.Name, Cols: defs})
	nRows := tab.NumRows
	if keep != nil {
		nRows = len(keep)
	}
	// Seed dictionaries with the source's full domain so that every
	// partition assigns identical codes even when it lacks some values —
	// merged partial aggregates compare codes directly.
	for _, cd := range defs {
		if cd.Typ == col.Dict {
			b.SeedDictionary(cd.Name, tab.MustColumn(cd.Name).Dict())
		}
	}
	for _, cd := range defs {
		ci := tab.MustColumn(cd.Name)
		if cd.Typ.IsString() {
			offs := ci.ReadAll(flash.Host)
			var heap *col.HeapReader
			var dict []string
			if cd.Typ == col.Text {
				heap = ci.NewHeapReader(flash.Host)
			} else {
				dict = ci.Dict()
			}
			strs := make([]string, 0, nRows)
			emit := func(r int) {
				if cd.Typ == col.Text {
					strs = append(strs, heap.Str(offs[r]))
				} else {
					strs = append(strs, dict[offs[r]])
				}
			}
			if keep == nil {
				for r := 0; r < tab.NumRows; r++ {
					emit(r)
				}
			} else {
				for _, r := range keep {
					emit(r)
				}
			}
			b.AppendColumnStrings(cd.Name, strs)
			continue
		}
		vals := ci.ReadAll(flash.Host)
		if keep == nil {
			b.AppendColumnValues(cd.Name, vals)
		} else {
			sel := make([]int64, len(keep))
			for i, r := range keep {
				sel[i] = vals[r]
			}
			b.AppendColumnValues(cd.Name, sel)
		}
	}
	b.SetNumRows(nRows)
	_, err := b.Finalize()
	return err
}

// rematerialize rebuilds the local FK RowID indices of a partitioned
// TPC-H store.
func rematerialize(s *col.Store) error {
	type fk struct{ fact, col, dim, pk string }
	fks := []fk{
		{"nation", "n_regionkey", "region", "r_regionkey"},
		{"supplier", "s_nationkey", "nation", "n_nationkey"},
		{"customer", "c_nationkey", "nation", "n_nationkey"},
		{"partsupp", "ps_partkey", "part", "p_partkey"},
		{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
		{"orders", "o_custkey", "customer", "c_custkey"},
		{"lineitem", "l_orderkey", "orders", "o_orderkey"},
		{"lineitem", "l_partkey", "part", "p_partkey"},
		{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
	}
	for _, f := range fks {
		fact, err := s.Table(f.fact)
		if err != nil {
			return err
		}
		dim, err := s.Table(f.dim)
		if err != nil {
			return err
		}
		if err := col.MaterializeFK(fact, f.col, dim, f.pk); err != nil {
			return err
		}
	}
	li, err := s.Table("lineitem")
	if err != nil {
		return err
	}
	ps, err := s.Table("partsupp")
	if err != nil {
		return err
	}
	return tpch.MaterializePartSuppIndex(li, ps)
}

// Report aggregates the per-device execution reports.
type Report struct {
	// PerDevice holds each device's report (nil for devices that did not
	// participate).
	PerDevice []*core.Report
	// Strategy describes how the query was distributed.
	Strategy string
}

// OffloadFraction returns the cluster-wide in-storage traffic share.
func (r *Report) OffloadFraction() float64 {
	var host, aq int64
	for _, rep := range r.PerDevice {
		if rep == nil {
			continue
		}
		host += rep.Flash.BytesRead(flash.Host)
		aq += rep.Flash.BytesRead(flash.Aquoman)
	}
	if host+aq == 0 {
		return 0
	}
	return float64(aq) / float64(host+aq)
}

// RunQuery executes the plan produced by build across the cluster. build
// must return a fresh tree per call (each device binds its own copy).
func (c *Cluster) RunQuery(build func() plan.Node) (*engine.Batch, *Report, error) {
	probe := build()
	if err := plan.Bind(probe, c.Stores[0]); err != nil {
		return nil, nil, err
	}
	strat, err := classify(probe)
	if err != nil {
		return nil, nil, err
	}
	root := c.Obs.StartSpan("distrib "+strat.kind.String(), obs.StageQuery)
	defer root.End()
	if o := c.Obs; o != nil && o.Reg != nil {
		o.Counter("distrib_queries_total", "strategy", strat.kind.String()).Inc()
	}
	switch strat.kind {
	case stratSingle:
		b, rep, err := c.runOn(0, build(), root)
		if err != nil {
			return nil, nil, err
		}
		return b, &Report{PerDevice: []*core.Report{rep}, Strategy: "replicated-only (device 0)"}, nil
	case stratConcat:
		return c.scatterGather(build, nil, root)
	case stratMergeAgg:
		return c.scatterGather(build, strat, root)
	default:
		return nil, nil, fmt.Errorf("distrib: unreachable")
	}
}

func (c *Cluster) runOn(d int, p plan.Node, parent *obs.Span) (*engine.Batch, *core.Report, error) {
	if err := plan.Bind(p, c.Stores[d]); err != nil {
		return nil, nil, err
	}
	shard := parent.Child("shard "+strconv.Itoa(d), obs.StageShard)
	shard.SetTid(d + 2)
	defer shard.End()
	dev := core.New(c.Stores[d], core.Config{
		DRAMBytes: c.DRAMBytes,
		Compiler:  compiler.Config{HeapScale: c.HeapScale},
		Obs:       c.Obs,
		ObsParent: shard,
	})
	return dev.RunQuery(p)
}
