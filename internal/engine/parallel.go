package engine

import (
	"runtime"
	"sync"
)

// Threads controls the engine's intra-query parallelism (the baseline
// machines of Table VI have 4 and 32 hardware threads). The default of 1
// keeps execution single-threaded; SetParallelism turns on morsel-style
// row-range parallelism for scans, filters, expression evaluation, join
// probes, and group-by partial aggregation. Results are bit- and
// order-identical to sequential execution: per-range outputs are
// reassembled in range order and group emission order is restored by
// first-seen row.
func (e *Engine) SetParallelism(threads int) {
	if threads < 1 {
		threads = 1
	}
	if threads > 4*runtime.NumCPU() {
		threads = 4 * runtime.NumCPU()
	}
	e.threads = threads
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn(worker, lo, hi) concurrently. With one thread it runs inline.
// A cancelled engine context skips ranges not yet started (workers
// already inside fn run their morsel to completion — the caller's next
// exec() checkpoint surfaces the cancellation).
func (e *Engine) parallelRanges(n int, fn func(worker, lo, hi int)) int {
	threads := e.threads
	if threads <= 1 || n < 4096 {
		fn(0, 0, n)
		return 1
	}
	if threads > n {
		threads = n
	}
	var wg sync.WaitGroup
	per := (n + threads - 1) / threads
	workers := 0
	for lo := 0; lo < n; lo += per {
		if e.ctxErr() != nil {
			break
		}
		hi := lo + per
		if hi > n {
			hi = n
		}
		w := workers
		workers++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return workers
}
