package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"aquoman/internal/col"
	"aquoman/internal/plan"
	"aquoman/internal/regexcc"
	"aquoman/internal/systolic"
)

// evalExpr evaluates a plan expression over every row of the batch. The
// normal path lowers through plan.Lower — the same semantics the offload
// path executes on the PE array — and only Text (string-heap) predicates
// take the host-only path, which materializes them into temporary integer
// columns first.
func (e *Engine) evalExpr(b *Batch, ex plan.Expr) ([]int64, error) {
	lowered, err := plan.Lower(ex, b.Schema)
	if err != nil {
		if _, ok := err.(*plan.TextError); !ok {
			return nil, err
		}
		b2, ex2, merr := e.materializeText(b, ex)
		if merr != nil {
			return nil, merr
		}
		lowered, err = plan.Lower(ex2, b2.Schema)
		if err != nil {
			return nil, err
		}
		b = b2
	}
	n := b.NumRows()
	out := make([]int64, n)
	e.parallelRanges(n, func(_, lo, hi int) {
		row := make([]int64, len(b.Cols))
		for r := lo; r < hi; r++ {
			for c := range b.Cols {
				row[c] = b.Cols[c][r]
			}
			out[r] = systolic.EvalExpr(lowered, row)
		}
	})
	return out, nil
}

// textWork evaluates a string-heap loop over [0, n) rows in parallel
// morsels. Each worker accumulates its row count privately; the partials
// merge into a single synchronized Stats.work("text") call after the
// barrier, so workers never contend on (or race over) the shared map.
func (e *Engine) textWork(n int, fn func(lo, hi int)) {
	nWorkers := e.threads
	if nWorkers < 1 {
		nWorkers = 1
	}
	counts := make([]int64, nWorkers+1)
	e.parallelRanges(n, func(w, lo, hi int) {
		fn(lo, hi)
		counts[w] += int64(hi - lo)
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	e.Stats.work("text", total)
}

// materializeText rewrites Text-dependent subexpressions into references
// to freshly computed integer columns (appended to a widened copy of the
// batch), accounting the string-heap reads as "text" work. The per-row
// heap lookups run in parallel morsels (the HeapReader is immutable
// after construction and regexcc patterns are stateless).
func (e *Engine) materializeText(b *Batch, ex plan.Expr) (*Batch, plan.Expr, error) {
	wide := &Batch{Schema: append(plan.Schema{}, b.Schema...), Cols: append([][]int64(nil), b.Cols...)}
	tmp := 0
	addCol := func(name string, vals []int64) string {
		full := fmt.Sprintf("@text%d_%s", tmp, name)
		tmp++
		wide.Schema = append(wide.Schema, plan.Field{Name: full, Typ: col.Int64})
		wide.Cols = append(wide.Cols, vals)
		return full
	}
	textField := func(name string) (*col.ColumnInfo, []int64, error) {
		f, err := wide.Schema.Field(name)
		if err != nil {
			return nil, nil, err
		}
		if f.Src == nil {
			return nil, nil, fmt.Errorf("engine: column %q has no string source", name)
		}
		vals, err := wide.Col(name)
		if err != nil {
			return nil, nil, err
		}
		return f.Src, vals, nil
	}

	var rewrite func(plan.Expr) (plan.Expr, error)
	rewrite = func(x plan.Expr) (plan.Expr, error) {
		switch n := x.(type) {
		case plan.Like:
			f, err := wide.Schema.Field(n.Col)
			if err != nil {
				return nil, err
			}
			if f.Typ == col.Dict {
				return x, nil // dictionary LIKE lowers directly
			}
			src, offs, err := textField(n.Col)
			if err != nil {
				return nil, err
			}
			heap, err := src.NewHeapReader(hostRequester)
			if err != nil {
				return nil, err
			}
			pat := regexcc.Compile(n.Pattern)
			vals := make([]int64, len(offs))
			e.textWork(len(offs), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if pat.Match(heap.Str(offs[i])) != n.Negate {
						vals[i] = 1
					}
				}
			})
			return plan.C(addCol(n.Col, vals)), nil
		case plan.SubstrCode:
			src, offs, err := textField(n.Col)
			if err != nil {
				return nil, err
			}
			heap, err := src.NewHeapReader(hostRequester)
			if err != nil {
				return nil, err
			}
			vals := make([]int64, len(offs))
			e.textWork(len(offs), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s := heap.Str(offs[i])
					start := n.Start - 1
					end := start + n.Len
					if start < 0 || end > len(s) {
						continue
					}
					vals[i] = plan.PackString(s[start:end])
				}
			})
			return plan.C(addCol(n.Col, vals)), nil
		case plan.Bin:
			// Equality of a Text column against a literal.
			if c, okc := n.L.(plan.Col); okc {
				if f, err := wide.Schema.Field(c.Name); err == nil && f.Typ == col.Text {
					if s, oks := n.R.(plan.Str); oks {
						src, offs, err := textField(c.Name)
						if err != nil {
							return nil, err
						}
						heap, err := src.NewHeapReader(hostRequester)
						if err != nil {
							return nil, err
						}
						vals := make([]int64, len(offs))
						e.textWork(len(offs), func(lo, hi int) {
							for i := lo; i < hi; i++ {
								if heap.Str(offs[i]) == s.V {
									vals[i] = 1
								}
							}
						})
						eqCol := plan.C(addCol(c.Name, vals))
						if n.Op == plan.OpNE {
							return plan.Not{E: eqCol}, nil
						}
						return eqCol, nil
					}
				}
			}
			l, err := rewrite(n.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(n.R)
			if err != nil {
				return nil, err
			}
			return plan.Bin{Op: n.Op, L: l, R: r}, nil
		case plan.Not:
			inner, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return plan.Not{E: inner}, nil
		case plan.InInts:
			inner, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return plan.InInts{E: inner, Vs: n.Vs}, nil
		case plan.YearOf:
			inner, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return plan.YearOf{E: inner}, nil
		case plan.Case:
			cond, err := rewrite(n.Cond)
			if err != nil {
				return nil, err
			}
			th, err := rewrite(n.Then)
			if err != nil {
				return nil, err
			}
			el, err := rewrite(n.Else)
			if err != nil {
				return nil, err
			}
			return plan.Case{Cond: cond, Then: th, Else: el}, nil
		default:
			return x, nil
		}
	}
	ex2, err := rewrite(ex)
	if err != nil {
		return nil, nil, err
	}
	return wide, ex2, nil
}

// aggState is one group's accumulators.
type aggState struct {
	keys     []int64
	sums     []int64
	mins     []int64
	maxs     []int64
	counts   []int64
	distinct []map[int64]struct{}
	firstRow int
}

func newAggState(nKeys int, aggs []plan.AggSpec) *aggState {
	g := &aggState{
		keys:     make([]int64, nKeys),
		sums:     make([]int64, len(aggs)),
		mins:     make([]int64, len(aggs)),
		maxs:     make([]int64, len(aggs)),
		counts:   make([]int64, len(aggs)),
		distinct: make([]map[int64]struct{}, len(aggs)),
	}
	for i := range g.mins {
		g.mins[i] = int64(^uint64(0) >> 1)
		g.maxs[i] = -g.mins[i] - 1
	}
	for i, a := range aggs {
		if a.Func == plan.AggCountDistinct {
			g.distinct[i] = make(map[int64]struct{})
		}
	}
	return g
}

// update folds one value into accumulator i.
func (g *aggState) update(i int, fn plan.AggFunc, v int64) {
	switch fn {
	case plan.AggSum, plan.AggAvg:
		g.sums[i] += v
		g.counts[i]++
	case plan.AggMin:
		if v < g.mins[i] {
			g.mins[i] = v
		}
		g.counts[i]++
	case plan.AggMax:
		if v > g.maxs[i] {
			g.maxs[i] = v
		}
		g.counts[i]++
	case plan.AggCount:
		g.counts[i]++
	case plan.AggCountDistinct:
		g.distinct[i][v] = struct{}{}
	}
}

// merge folds another partial into g.
func (g *aggState) merge(o *aggState, aggs []plan.AggSpec) {
	if o.firstRow < g.firstRow {
		g.firstRow = o.firstRow
	}
	for i, a := range aggs {
		switch a.Func {
		case plan.AggSum, plan.AggAvg, plan.AggCount:
			g.sums[i] += o.sums[i]
			g.counts[i] += o.counts[i]
		case plan.AggMin:
			if o.mins[i] < g.mins[i] {
				g.mins[i] = o.mins[i]
			}
			g.counts[i] += o.counts[i]
		case plan.AggMax:
			if o.maxs[i] > g.maxs[i] {
				g.maxs[i] = o.maxs[i]
			}
			g.counts[i] += o.counts[i]
		case plan.AggCountDistinct:
			for v := range o.distinct[i] {
				g.distinct[i][v] = struct{}{}
			}
		}
	}
}

// sortGroupsByFirstRow restores the sequential first-seen emission order.
func sortGroupsByFirstRow(order []string, groups map[string]*aggState) {
	sort.SliceStable(order, func(a, b int) bool {
		return groups[order[a]].firstRow < groups[order[b]].firstRow
	})
}

func (e *Engine) execGroupBy(t *plan.GroupBy) (*Batch, error) {
	in, err := e.exec(t.Input)
	if err != nil {
		return nil, err
	}
	n := in.NumRows()
	keyIdx := make([]int, len(t.Keys))
	for i, k := range t.Keys {
		keyIdx[i] = in.Schema.Index(k)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("engine: group key %q missing", k)
		}
	}
	// Evaluate aggregate input expressions once, column-wise.
	argCols := make([][]int64, len(t.Aggs))
	for i, a := range t.Aggs {
		if a.E == nil {
			continue
		}
		vals, err := e.evalExpr(in, a.E)
		if err != nil {
			return nil, err
		}
		argCols[i] = vals
	}
	// Morsel-parallel partial aggregation: each worker owns a range and a
	// private group table; partials merge afterwards, and the output is
	// re-ordered by first-seen row so the result is identical to the
	// sequential scan.
	nWorkers := e.threads
	if nWorkers < 1 {
		nWorkers = 1
	}
	partGroups := make([]map[string]*aggState, nWorkers+1)
	partOrder := make([][]string, nWorkers+1)
	e.parallelRanges(n, func(w, lo, hi int) {
		groups := make(map[string]*aggState)
		var order []string
		var kb []byte
		for r := lo; r < hi; r++ {
			kb = kb[:0]
			for _, c := range keyIdx {
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], uint64(in.Cols[c][r]))
				kb = append(kb, tmp[:]...)
			}
			g, ok := groups[string(kb)]
			if !ok {
				g = newAggState(len(keyIdx), t.Aggs)
				g.firstRow = r
				for i, c := range keyIdx {
					g.keys[i] = in.Cols[c][r]
				}
				groups[string(kb)] = g
				order = append(order, string(kb))
			}
			for i, a := range t.Aggs {
				var v int64
				if argCols[i] != nil {
					v = argCols[i][r]
				}
				g.update(i, a.Func, v)
			}
		}
		partGroups[w] = groups
		partOrder[w] = order
	})
	groups := make(map[string]*aggState)
	var order []string
	for w := 0; w < len(partGroups); w++ {
		if partGroups[w] == nil {
			continue
		}
		for _, key := range partOrder[w] {
			pg := partGroups[w][key]
			g, ok := groups[key]
			if !ok {
				groups[key] = pg
				order = append(order, key)
				continue
			}
			g.merge(pg, t.Aggs)
		}
	}
	sortGroupsByFirstRow(order, groups)
	e.Stats.work("agg", int64(n)*int64(len(t.Aggs)+1))

	out := NewBatch(t.Schema())
	nk := len(t.Keys)
	for c := range out.Cols {
		out.Cols[c] = make([]int64, 0, len(order))
	}
	// Scalar aggregation over zero rows still yields one row of zeros
	// (SQL: COUNT()=0; SUM() is NULL, rendered 0 here).
	if len(order) == 0 && nk == 0 {
		for c := range out.Cols {
			out.Cols[c] = append(out.Cols[c], 0)
		}
	}
	for _, key := range order {
		g := groups[key]
		for i := 0; i < nk; i++ {
			out.Cols[i] = append(out.Cols[i], g.keys[i])
		}
		for i, a := range t.Aggs {
			var v int64
			switch a.Func {
			case plan.AggSum:
				v = g.sums[i]
			case plan.AggAvg:
				if g.counts[i] > 0 {
					v = g.sums[i] / g.counts[i]
				}
			case plan.AggMin:
				v = g.mins[i]
			case plan.AggMax:
				v = g.maxs[i]
			case plan.AggCount:
				v = g.counts[i]
			case plan.AggCountDistinct:
				v = int64(len(g.distinct[i]))
			}
			out.Cols[nk+i] = append(out.Cols[nk+i], v)
		}
	}
	e.Stats.alloc(out)
	e.Stats.free(in)
	return out, nil
}
