package engine_test

import (
	"testing"

	"aquoman/internal/engine"
	"aquoman/internal/plan"
)

// textPlan builds a query whose predicate forces the parallel string-heap
// materialization path (plan.Like over lineitem's Text comment column,
// 60k+ rows at SF 0.01 — well past the parallelRanges fan-out threshold).
func textPlan() plan.Node {
	return &plan.GroupBy{
		Input: &plan.Filter{
			Input: &plan.Scan{Table: "lineitem", Cols: []string{"l_comment", "l_quantity"}},
			Pred:  plan.Like{Col: "l_comment", Pattern: "%quick%"},
		},
		Aggs: []plan.AggSpec{
			{Func: plan.AggCount, Name: "matches"},
			{Func: plan.AggSum, Name: "qty", E: plan.C("l_quantity")},
		},
	}
}

// TestParallelTextPredicateRace runs a text-predicate query with 8
// workers sharing one heap reader. Under -race this is the regression
// test for the engine.Stats "text" counter: per-worker tallies merge into
// a single synchronized Stats.work call, so concurrent text
// materialization must neither race nor change results.
func TestParallelTextPredicateRace(t *testing.T) {
	s := parallelStore(t)

	seqPlan := textPlan()
	if err := plan.Bind(seqPlan, s); err != nil {
		t.Fatal(err)
	}
	seq := engine.New(s)
	seqB, err := seq.Run(seqPlan)
	if err != nil {
		t.Fatal(err)
	}

	parPlan := textPlan()
	if err := plan.Bind(parPlan, s); err != nil {
		t.Fatal(err)
	}
	par := engine.New(s)
	par.SetParallelism(8)
	parB, err := par.Run(parPlan)
	if err != nil {
		t.Fatal(err)
	}

	if seqB.NumRows() != 1 || parB.NumRows() != 1 {
		t.Fatalf("rows = %d/%d, want 1", seqB.NumRows(), parB.NumRows())
	}
	for c := range seqB.Cols {
		if seqB.Cols[c][0] != parB.Cols[c][0] {
			t.Fatalf("col %d: sequential %d vs parallel %d", c, seqB.Cols[c][0], parB.Cols[c][0])
		}
	}
	if seqB.Cols[0][0] == 0 {
		t.Fatal("predicate matched nothing; pattern no longer exercises the text path")
	}

	// Both executions must account identical text work (every selected
	// row's comment is read exactly once, regardless of worker count).
	seqWork := seq.Stats.Work["text"]
	parWork := par.Stats.Work["text"]
	if seqWork == 0 || seqWork != parWork {
		t.Fatalf("text work: sequential %d vs parallel %d", seqWork, parWork)
	}
}
