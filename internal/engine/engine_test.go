package engine

import (
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
)

// retailStore builds the paper's Sec. III example: an inventory dimension
// and a sales_transactions fact with a materialized FK RowID column.
func retailStore(t *testing.T) *col.Store {
	t.Helper()
	s := col.NewStore(flash.NewDevice())

	ib := s.NewTable(col.Schema{Name: "inventory", Cols: []col.ColDef{
		{Name: "invtID", Typ: col.Int64},
		{Name: "category", Typ: col.Dict},
		{Name: "productname", Typ: col.Text},
	}})
	cats := []string{"Shoes", "Books", "Toys", "Shoes", "Games"}
	for i, c := range cats {
		ib.Append(int64(100+i), c, "product-"+c)
	}
	inv, err := ib.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	sb := s.NewTable(col.Schema{Name: "sales", Cols: []col.ColDef{
		{Name: "txID", Typ: col.Int64},
		{Name: "invtID", Typ: col.Int64},
		{Name: "dept", Typ: col.Dict},
		{Name: "saledate", Typ: col.Date},
		{Name: "price", Typ: col.Decimal},
		{Name: "discount", Typ: col.Decimal},
		{Name: "tax", Typ: col.Decimal},
	}})
	type sale struct {
		invt  int64
		dept  string
		date  string
		price int64
		disc  int64
		tax   int64
	}
	sales := []sale{
		{100, "east", "2018-01-05", 1000, 10, 5},
		{101, "east", "2018-03-20", 2000, 0, 5},
		{103, "west", "2018-04-01", 1500, 20, 8},
		{100, "west", "2018-02-14", 500, 0, 0},
		{104, "east", "2018-05-05", 3000, 5, 10},
		{103, "east", "2017-12-31", 800, 0, 5},
	}
	for i, x := range sales {
		sb.Append(int64(i), x.invt, x.dept, col.MustParseDate(x.date), x.price, x.disc, x.tax)
	}
	fact, err := sb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := col.MaterializeFK(fact, "invtID", inv, "invtID"); err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *col.Store, n plan.Node) *Batch {
	t.Helper()
	if err := plan.Bind(n, s); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	b, err := New(s).Run(n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return b
}

func TestScanAndRowID(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.Scan{Table: "inventory", Cols: []string{"invtID", plan.RowIDCol}})
	if b.NumRows() != 5 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	ids, _ := b.Col(plan.RowIDCol)
	for i, v := range ids {
		if v != int64(i) {
			t.Fatalf("rowid[%d] = %d", i, v)
		}
	}
}

func TestFilterDictEquality(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.Filter{
		Input: &plan.Scan{Table: "inventory", Cols: []string{"invtID", "category"}},
		Pred:  plan.EQ(plan.C("category"), plan.S("Shoes")),
	})
	if b.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", b.NumRows())
	}
	ids, _ := b.Col("invtID")
	if ids[0] != 100 || ids[1] != 103 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestFilterDateAndArith(t *testing.T) {
	s := retailStore(t)
	// Sales after 2018-03-15 (paper Fig. 4 predicate).
	b := run(t, s, &plan.Filter{
		Input: &plan.Scan{Table: "sales", Cols: []string{"txID", "saledate"}},
		Pred:  plan.GT(plan.C("saledate"), plan.Date("2018-03-15")),
	})
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", b.NumRows())
	}
}

func TestProjectDecimalArithmetic(t *testing.T) {
	s := retailStore(t)
	// netsale = price*(1-discount), revenue = netsale*(1+tax) (Fig. 1).
	b := run(t, s, &plan.Project{
		Input: &plan.Scan{Table: "sales", Cols: []string{"price", "discount", "tax"}},
		Exprs: []plan.NamedExpr{
			{Name: "netsale", Typ: col.Decimal,
				E: plan.DecMul(plan.C("price"), plan.Sub(plan.I(100), plan.C("discount")))},
		},
	})
	vals, _ := b.Col("netsale")
	// row 0: 1000 * (100-10) / 100 = 900
	if vals[0] != 900 {
		t.Fatalf("netsale[0] = %d, want 900", vals[0])
	}
	if vals[1] != 2000 {
		t.Fatalf("netsale[1] = %d, want 2000", vals[1])
	}
}

func TestAggregateGroupBy(t *testing.T) {
	s := retailStore(t)
	// Fig. 1: net sale per department before a date.
	b := run(t, s, &plan.GroupBy{
		Input: &plan.Filter{
			Input: &plan.Scan{Table: "sales", Cols: []string{"dept", "saledate", "price", "discount"}},
			Pred:  plan.LE(plan.C("saledate"), plan.Date("2018-12-01")),
		},
		Keys: []string{"dept"},
		Aggs: []plan.AggSpec{
			{Func: plan.AggSum, Name: "netsale", Typ: col.Decimal,
				E: plan.DecMul(plan.C("price"), plan.Sub(plan.I(100), plan.C("discount")))},
			{Func: plan.AggCount, Name: "cnt"},
		},
	})
	if b.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", b.NumRows())
	}
	// east: rows 0,1,4,5 => 900+2000+2850+800 = 6550; west: 1200+500 = 1700
	got := map[string]int64{}
	depts, _ := b.Col("dept")
	nets, _ := b.Col("netsale")
	f, _ := b.Schema.Field("dept")
	for i := range depts {
		got[f.Src.MustStr(depts[i], flash.Host)] = nets[i]
	}
	if got["east"] != 6550 || got["west"] != 1700 {
		t.Fatalf("sums = %v", got)
	}
}

func TestScalarAggregateEmptyInput(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.GroupBy{
		Input: &plan.Filter{
			Input: &plan.Scan{Table: "sales", Cols: []string{"price"}},
			Pred:  plan.GT(plan.C("price"), plan.I(1<<40)),
		},
		Aggs: []plan.AggSpec{{Func: plan.AggSum, Name: "s", E: plan.C("price")},
			{Func: plan.AggCount, Name: "n"}},
	})
	if b.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", b.NumRows())
	}
	sv, _ := b.Col("s")
	nv, _ := b.Col("n")
	if sv[0] != 0 || nv[0] != 0 {
		t.Fatalf("scalar agg = %d, %d", sv[0], nv[0])
	}
}

// The paper's Fig. 4 join: total shoe sales after 2018-03-15.
func TestInnerJoinFig4(t *testing.T) {
	s := retailStore(t)
	inv := &plan.Filter{
		Input: &plan.Scan{Table: "inventory", Cols: []string{"invtID", "category"}},
		Pred:  plan.EQ(plan.C("category"), plan.S("Shoes")),
	}
	sales := &plan.Filter{
		Input: &plan.Scan{Table: "sales", Cols: []string{"invtID", "saledate", "price"}},
		Pred:  plan.GT(plan.C("saledate"), plan.Date("2018-03-15")),
	}
	// Rename the sales join key to avoid output collision.
	salesP := &plan.Project{Input: sales, Exprs: []plan.NamedExpr{
		{Name: "s_invtID", E: plan.C("invtID")},
		{Name: "price", E: plan.C("price")},
	}}
	j := &plan.Join{Kind: plan.InnerJoin, L: salesP, R: inv,
		LKeys: []string{"s_invtID"}, RKeys: []string{"invtID"}}
	b := run(t, s, &plan.GroupBy{Input: j, Aggs: []plan.AggSpec{
		{Func: plan.AggSum, Name: "shoe_sales", E: plan.C("price"), Typ: col.Decimal},
	}})
	v, _ := b.Col("shoe_sales")
	// After 2018-03-15: row2 (invt 103 shoes, 1500), row4 (invt 104 games).
	if v[0] != 1500 {
		t.Fatalf("shoe_sales = %d, want 1500", v[0])
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	s := retailStore(t)
	scanInv := &plan.Scan{Table: "inventory", Cols: []string{"invtID", "category"}}
	sales := &plan.Project{
		Input: &plan.Scan{Table: "sales", Cols: []string{"invtID"}},
		Exprs: []plan.NamedExpr{{Name: "s_invtID", E: plan.C("invtID")}},
	}
	semi := run(t, s, &plan.Join{Kind: plan.SemiJoin, L: scanInv, R: sales,
		LKeys: []string{"invtID"}, RKeys: []string{"s_invtID"}})
	if semi.NumRows() != 4 { // 100,101,103,104 sold; 102 (Toys) not
		t.Fatalf("semi rows = %d, want 4", semi.NumRows())
	}
	scanInv2 := &plan.Scan{Table: "inventory", Cols: []string{"invtID"}}
	sales2 := &plan.Project{
		Input: &plan.Scan{Table: "sales", Cols: []string{"invtID"}},
		Exprs: []plan.NamedExpr{{Name: "s_invtID", E: plan.C("invtID")}},
	}
	anti := run(t, s, &plan.Join{Kind: plan.AntiJoin, L: scanInv2, R: sales2,
		LKeys: []string{"invtID"}, RKeys: []string{"s_invtID"}})
	ids, _ := anti.Col("invtID")
	if len(ids) != 1 || ids[0] != 102 {
		t.Fatalf("anti ids = %v, want [102]", ids)
	}
}

func TestLeftMarkJoinCounting(t *testing.T) {
	s := retailStore(t)
	inv := &plan.Scan{Table: "inventory", Cols: []string{"invtID"}}
	sales := &plan.Project{
		Input: &plan.Scan{Table: "sales", Cols: []string{"invtID"}},
		Exprs: []plan.NamedExpr{{Name: "s_invtID", E: plan.C("invtID")}},
	}
	j := &plan.Join{Kind: plan.LeftMarkJoin, L: inv, R: sales,
		LKeys: []string{"invtID"}, RKeys: []string{"s_invtID"}}
	// Count sales per item, preserving zero-sale items (q13 shape).
	g := &plan.GroupBy{Input: j, Keys: []string{"invtID"}, Aggs: []plan.AggSpec{
		{Func: plan.AggSum, Name: "n", E: plan.C(plan.MatchedCol)},
	}}
	b := run(t, s, &plan.OrderBy{Input: g, Keys: []plan.OrderKey{{Name: "invtID"}}})
	ids, _ := b.Col("invtID")
	ns, _ := b.Col("n")
	wantIDs := []int64{100, 101, 102, 103, 104}
	wantNs := []int64{2, 1, 0, 2, 1}
	for i := range wantIDs {
		if ids[i] != wantIDs[i] || ns[i] != wantNs[i] {
			t.Fatalf("row %d = (%d, %d), want (%d, %d)", i, ids[i], ns[i], wantIDs[i], wantNs[i])
		}
	}
}

func TestJoinExtraPredicate(t *testing.T) {
	s := retailStore(t)
	// Self-join sales on invtID with different departments (q21 shape).
	l := &plan.Project{
		Input: &plan.Scan{Table: "sales", Cols: []string{"txID", "invtID", "dept"}},
		Exprs: []plan.NamedExpr{
			{Name: "l_tx", E: plan.C("txID")},
			{Name: "l_invt", E: plan.C("invtID")},
			{Name: "l_dept", E: plan.C("dept")},
		},
	}
	r := &plan.Project{
		Input: &plan.Scan{Table: "sales", Cols: []string{"invtID", "dept"}},
		Exprs: []plan.NamedExpr{
			{Name: "r_invt", E: plan.C("invtID")},
			{Name: "r_dept", E: plan.C("dept")},
		},
	}
	j := &plan.Join{Kind: plan.SemiJoin, L: l, R: r,
		LKeys: []string{"l_invt"}, RKeys: []string{"r_invt"},
		Extra: plan.NE(plan.C("l_dept"), plan.C("r_dept"))}
	b := run(t, s, j)
	// invt 100 sold in east+west (tx 0 and 3 qualify); invt 103 east+west
	// (tx 2, 5). Others single-dept.
	if b.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", b.NumRows())
	}
}

func TestOrderByLimitAndText(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.Limit{N: 2, Input: &plan.OrderBy{
		Input: &plan.Scan{Table: "inventory", Cols: []string{"invtID", "productname"}},
		Keys:  []plan.OrderKey{{Name: "productname"}, {Name: "invtID", Desc: true}},
	}})
	if b.NumRows() != 2 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	ids, _ := b.Col("invtID")
	// product-Books < product-Games < product-Shoes (x2, desc id) < product-Toys
	if ids[0] != 101 || ids[1] != 104 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestTextLike(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.Filter{
		Input: &plan.Scan{Table: "inventory", Cols: []string{"invtID", "productname"}},
		Pred:  plan.Like{Col: "productname", Pattern: "%Sho%"},
	})
	if b.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", b.NumRows())
	}
	e := New(s)
	n := &plan.Filter{
		Input: &plan.Scan{Table: "inventory", Cols: []string{"invtID", "productname"}},
		Pred:  plan.Like{Col: "productname", Pattern: "%Sho%", Negate: true},
	}
	if err := plan.Bind(n, s); err != nil {
		t.Fatal(err)
	}
	nb, err := e.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if nb.NumRows() != 3 {
		t.Fatalf("negated rows = %d, want 3", nb.NumRows())
	}
	if e.Stats.Work["text"] == 0 {
		t.Fatal("text work not accounted")
	}
}

func TestCaseExpression(t *testing.T) {
	s := retailStore(t)
	// Promo-style: sum(case when dept='east' then price else 0 end).
	b := run(t, s, &plan.GroupBy{
		Input: &plan.Scan{Table: "sales", Cols: []string{"dept", "price"}},
		Aggs: []plan.AggSpec{{Func: plan.AggSum, Name: "east_rev", Typ: col.Decimal,
			E: plan.Case{
				Cond: plan.EQ(plan.C("dept"), plan.S("east")),
				Then: plan.C("price"),
				Else: plan.I(0),
			}}},
	})
	v, _ := b.Col("east_rev")
	if v[0] != 1000+2000+3000+800 {
		t.Fatalf("east_rev = %d", v[0])
	}
}

func TestScalarJoin(t *testing.T) {
	s := retailStore(t)
	avg := &plan.GroupBy{
		Input: &plan.Scan{Table: "sales", Cols: []string{"price"}},
		Aggs:  []plan.AggSpec{{Func: plan.AggAvg, Name: "avgp", E: plan.C("price")}},
	}
	n := &plan.Filter{
		Input: &plan.ScalarJoin{
			Input: &plan.Scan{Table: "sales", Cols: []string{"txID", "price"}},
			Sub:   avg, Name: "avgp",
		},
		Pred: plan.GT(plan.C("price"), plan.C("avgp")),
	}
	b := run(t, s, n)
	// avg = (1000+2000+1500+500+3000+800)/6 = 1466; above: 2000, 1500, 3000.
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", b.NumRows())
	}
}

func TestCountDistinctAndAvg(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.GroupBy{
		Input: &plan.Scan{Table: "sales", Cols: []string{"dept", "invtID", "price"}},
		Keys:  []string{"dept"},
		Aggs: []plan.AggSpec{
			{Func: plan.AggCountDistinct, Name: "items", E: plan.C("invtID")},
			{Func: plan.AggAvg, Name: "avgp", E: plan.C("price")},
			{Func: plan.AggMin, Name: "minp", E: plan.C("price")},
			{Func: plan.AggMax, Name: "maxp", E: plan.C("price")},
		},
	})
	f, _ := b.Schema.Field("dept")
	depts, _ := b.Col("dept")
	items, _ := b.Col("items")
	minp, _ := b.Col("minp")
	maxp, _ := b.Col("maxp")
	for i := range depts {
		switch f.Src.MustStr(depts[i], flash.Host) {
		case "east": // invt 100,101,104,103 => 4 distinct
			if items[i] != 4 || minp[i] != 800 || maxp[i] != 3000 {
				t.Fatalf("east = %d/%d/%d", items[i], minp[i], maxp[i])
			}
		case "west": // invt 103,100
			if items[i] != 2 || minp[i] != 500 || maxp[i] != 1500 {
				t.Fatalf("west = %d/%d/%d", items[i], minp[i], maxp[i])
			}
		}
	}
}

func TestInListsAndYear(t *testing.T) {
	s := retailStore(t)
	b := run(t, s, &plan.Filter{
		Input: &plan.Scan{Table: "sales", Cols: []string{"txID", "dept", "saledate"}},
		Pred: plan.And(
			plan.InStrs{Col: "dept", Vs: []string{"east", "north"}},
			plan.EQ(plan.YearOf{E: plan.C("saledate")}, plan.I(2018)),
		),
	})
	if b.NumRows() != 3 { // east sales in 2018: tx 0,1,4
		t.Fatalf("rows = %d, want 3", b.NumRows())
	}
	b2 := run(t, s, &plan.Filter{
		Input: &plan.Scan{Table: "sales", Cols: []string{"txID"}},
		Pred:  plan.InInts{E: plan.C("txID"), Vs: []int64{1, 3, 99}},
	})
	if b2.NumRows() != 2 {
		t.Fatalf("InInts rows = %d, want 2", b2.NumRows())
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := retailStore(t)
	e := New(s)
	n := &plan.Filter{
		Input: &plan.Scan{Table: "sales", Cols: []string{"txID", "price"}},
		Pred:  plan.GT(plan.C("price"), plan.I(0)),
	}
	if err := plan.Bind(n, s); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(n); err != nil {
		t.Fatal(err)
	}
	if e.Stats.PeakBytes == 0 || e.Stats.Work["scan"] == 0 || e.Stats.Work["filter"] == 0 {
		t.Fatalf("stats not tracked: %+v", e.Stats)
	}
}
