// Package engine is the host-side software query executor — the stand-in
// for MonetDB in the paper's evaluation. It executes bound plan trees over
// the column store, reading base tables through the flash device (so host
// I/O is accounted) and tracking the work and memory footprint the timing
// model converts into baseline run times for the S and L machines.
//
// Expression evaluation shares plan.Lower with the offload path, so host
// and AQUOMAN execution produce bit-identical results; only string-heap
// (Text) predicates take a host-only path, mirroring the paper where such
// queries are not offloadable.
package engine

import (
	"fmt"
	"strings"

	"aquoman/internal/col"
	"aquoman/internal/plan"
)

// Batch is a fully materialized intermediate table.
type Batch struct {
	Schema plan.Schema
	// Cols is column-major data, one slice per schema field.
	Cols [][]int64
}

// NewBatch allocates an empty batch with the given schema.
func NewBatch(s plan.Schema) *Batch {
	return &Batch{Schema: s, Cols: make([][]int64, len(s))}
}

// NumRows returns the row count.
func (b *Batch) NumRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// Bytes returns the in-memory footprint (8 bytes per value).
func (b *Batch) Bytes() int64 {
	var n int64
	for _, c := range b.Cols {
		n += int64(len(c)) * 8
	}
	return n
}

// Col returns the column with the given name.
func (b *Batch) Col(name string) ([]int64, error) {
	i := b.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("engine: batch has no column %q", name)
	}
	return b.Cols[i], nil
}

// Row copies row r into out (len(out) >= len(b.Cols)).
func (b *Batch) Row(r int, out []int64) {
	for c := range b.Cols {
		out[c] = b.Cols[c][r]
	}
}

// Render formats the batch for display, decoding dates, decimals and
// dictionary strings. Text columns are decoded through their heap.
func (b *Batch) Render(maxRows int) string {
	var sb strings.Builder
	names := make([]string, len(b.Schema))
	for i, f := range b.Schema {
		names[i] = f.Name
	}
	sb.WriteString(strings.Join(names, "\t"))
	sb.WriteByte('\n')
	n := b.NumRows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for r := 0; r < n; r++ {
		cells := make([]string, len(b.Schema))
		for c, f := range b.Schema {
			cells[c] = RenderValue(f, b.Cols[c][r])
		}
		sb.WriteString(strings.Join(cells, "\t"))
		sb.WriteByte('\n')
	}
	if b.NumRows() > n {
		fmt.Fprintf(&sb, "... (%d rows total)\n", b.NumRows())
	}
	return sb.String()
}

// RenderValue formats a single value according to its field. A failed
// string-heap read renders as an error placeholder rather than failing
// the whole render (rendering is display-only).
func RenderValue(f plan.Field, v int64) string {
	switch {
	case (f.Typ == col.Dict || f.Typ == col.Text) && f.Src != nil:
		s, err := f.Src.Str(v, hostRequester)
		if err != nil {
			return "<read error>"
		}
		return s
	default:
		return col.FormatValue(f.Typ, v)
	}
}
