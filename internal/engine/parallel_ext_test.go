package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

var (
	parOnce  sync.Once
	parStore *col.Store
)

func parallelStore(t *testing.T) *col.Store {
	t.Helper()
	parOnce.Do(func() {
		parStore = col.NewStore(flash.NewDevice())
		if err := tpch.Gen(parStore, tpch.Config{SF: 0.01, Seed: 17}); err != nil {
			t.Fatalf("Gen: %v", err)
		}
	})
	return parStore
}

// Parallel execution must be bit- AND order-identical to sequential for
// every TPC-H query (morsel outputs reassemble in range order; group-by
// emission re-sorts by first-seen row).
func TestParallelMatchesSequentialExactly(t *testing.T) {
	s := parallelStore(t)
	for _, def := range tpch.Queries() {
		def := def
		t.Run(fmt.Sprintf("q%02d", def.Num), func(t *testing.T) {
			seqPlan := def.Build()
			if err := plan.Bind(seqPlan, s); err != nil {
				t.Fatal(err)
			}
			seq, err := engine.New(s).Run(seqPlan)
			if err != nil {
				t.Fatal(err)
			}
			parPlan := def.Build()
			if err := plan.Bind(parPlan, s); err != nil {
				t.Fatal(err)
			}
			pe := engine.New(s)
			pe.SetParallelism(8)
			par, err := pe.Run(parPlan)
			if err != nil {
				t.Fatal(err)
			}
			if seq.NumRows() != par.NumRows() || len(seq.Cols) != len(par.Cols) {
				t.Fatalf("shape: %dx%d vs %dx%d", seq.NumRows(), len(seq.Cols),
					par.NumRows(), len(par.Cols))
			}
			for c := range seq.Cols {
				for r := range seq.Cols[c] {
					if seq.Cols[c][r] != par.Cols[c][r] {
						t.Fatalf("col %d row %d: %d vs %d (order must match exactly)",
							c, r, seq.Cols[c][r], par.Cols[c][r])
					}
				}
			}
		})
	}
}
