package engine

import (
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/flash"
)

var (
	intOnce  sync.Once
	intStore *col.Store
)

// internalStore is a tiny fixture for the unexported-API tests; the
// TPC-H differential lives in parallel_ext_test.go (external package, so
// the tpch helper can import engine without a cycle).
func internalStore(t *testing.T) *col.Store {
	t.Helper()
	intOnce.Do(func() {
		intStore = col.NewStore(flash.NewDevice())
	})
	return intStore
}

func TestSetParallelismClamps(t *testing.T) {
	e := New(internalStore(t))
	e.SetParallelism(-3)
	if e.threads != 1 {
		t.Fatalf("threads = %d", e.threads)
	}
	e.SetParallelism(1 << 20)
	if e.threads < 1 || e.threads > 1<<20 {
		t.Fatalf("threads = %d", e.threads)
	}
}

func TestParallelRangesCoverage(t *testing.T) {
	e := New(internalStore(t))
	e.SetParallelism(4)
	const n = 10_000
	seen := make([]int32, n)
	var mu sync.Mutex
	workers := e.parallelRanges(n, func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	if workers < 2 {
		t.Fatalf("workers = %d", workers)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d covered %d times", i, v)
		}
	}
	// Small inputs stay inline.
	if w := e.parallelRanges(10, func(_, lo, hi int) {}); w != 1 {
		t.Fatalf("small input used %d workers", w)
	}
}
