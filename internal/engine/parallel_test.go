package engine

import (
	"fmt"
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

var (
	parOnce  sync.Once
	parStore *col.Store
)

func parallelStore(t *testing.T) *col.Store {
	t.Helper()
	parOnce.Do(func() {
		parStore = col.NewStore(flash.NewDevice())
		if err := tpch.Gen(parStore, tpch.Config{SF: 0.01, Seed: 17}); err != nil {
			t.Fatalf("Gen: %v", err)
		}
	})
	return parStore
}

// Parallel execution must be bit- AND order-identical to sequential for
// every TPC-H query (morsel outputs reassemble in range order; group-by
// emission re-sorts by first-seen row).
func TestParallelMatchesSequentialExactly(t *testing.T) {
	s := parallelStore(t)
	for _, def := range tpch.Queries() {
		def := def
		t.Run(fmt.Sprintf("q%02d", def.Num), func(t *testing.T) {
			seqPlan := def.Build()
			if err := plan.Bind(seqPlan, s); err != nil {
				t.Fatal(err)
			}
			seq, err := New(s).Run(seqPlan)
			if err != nil {
				t.Fatal(err)
			}
			parPlan := def.Build()
			if err := plan.Bind(parPlan, s); err != nil {
				t.Fatal(err)
			}
			pe := New(s)
			pe.SetParallelism(8)
			par, err := pe.Run(parPlan)
			if err != nil {
				t.Fatal(err)
			}
			if seq.NumRows() != par.NumRows() || len(seq.Cols) != len(par.Cols) {
				t.Fatalf("shape: %dx%d vs %dx%d", seq.NumRows(), len(seq.Cols),
					par.NumRows(), len(par.Cols))
			}
			for c := range seq.Cols {
				for r := range seq.Cols[c] {
					if seq.Cols[c][r] != par.Cols[c][r] {
						t.Fatalf("col %d row %d: %d vs %d (order must match exactly)",
							c, r, seq.Cols[c][r], par.Cols[c][r])
					}
				}
			}
		})
	}
}

func TestSetParallelismClamps(t *testing.T) {
	e := New(parallelStore(t))
	e.SetParallelism(-3)
	if e.threads != 1 {
		t.Fatalf("threads = %d", e.threads)
	}
	e.SetParallelism(1 << 20)
	if e.threads < 1 || e.threads > 1<<20 {
		t.Fatalf("threads = %d", e.threads)
	}
}

func TestParallelRangesCoverage(t *testing.T) {
	e := New(parallelStore(t))
	e.SetParallelism(4)
	const n = 10_000
	seen := make([]int32, n)
	var mu sync.Mutex
	workers := e.parallelRanges(n, func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	if workers < 2 {
		t.Fatalf("workers = %d", workers)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d covered %d times", i, v)
		}
	}
	// Small inputs stay inline.
	if w := e.parallelRanges(10, func(_, lo, hi int) {}); w != 1 {
		t.Fatalf("small input used %d workers", w)
	}
}
