package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"aquoman/internal/col"
	"aquoman/internal/delta"
	"aquoman/internal/flash"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/pool"
	"aquoman/internal/systolic"
)

// hostRequester is the controller-switch identity for all engine I/O.
const hostRequester = flash.Host

// Stats aggregates the work counters the timing model consumes. All
// mutators are internally synchronized, so worker goroutines spawned by
// SetParallelism may account concurrently; readers inspect the fields
// after the run.
type Stats struct {
	mu sync.Mutex
	// Work counts abstract row operations by kind: "scan", "filter",
	// "project", "join_build", "join_probe", "agg", "sort" (n·log n
	// units), "text" (string-heap reads), "output".
	Work map[string]int64
	// CurBytes/PeakBytes track the live intermediate footprint.
	CurBytes  int64
	PeakBytes int64
	// SumBytes and Batches summarize allocation churn (average RSS).
	SumBytes int64
	Batches  int64
}

// NewStats returns zeroed counters.
func NewStats() *Stats { return &Stats{Work: make(map[string]int64)} }

func (s *Stats) work(kind string, n int64) {
	s.mu.Lock()
	s.Work[kind] += n
	s.mu.Unlock()
}

func (s *Stats) alloc(b *Batch) {
	s.mu.Lock()
	s.CurBytes += b.Bytes()
	if s.CurBytes > s.PeakBytes {
		s.PeakBytes = s.CurBytes
	}
	s.SumBytes += b.Bytes()
	s.Batches++
	s.mu.Unlock()
}

func (s *Stats) free(b *Batch) {
	s.mu.Lock()
	s.CurBytes -= b.Bytes()
	s.mu.Unlock()
}

// TotalWork sums all work counters.
func (s *Stats) TotalWork() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.Work {
		t += v
	}
	return t
}

// Each visits every work counter under the lock.
func (s *Stats) Each(fn func(kind string, n int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.Work {
		fn(k, v)
	}
}

// Peak returns the high-water intermediate footprint.
func (s *Stats) Peak() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.PeakBytes
}

// Engine executes bound plans.
type Engine struct {
	Store *col.Store
	Stats *Stats
	// threads is the intra-query parallelism (see SetParallelism).
	threads int

	// overlays (optional, see SetOverlays) are per-table MVCC deltas
	// applied at scan time.
	overlays map[string]*delta.Overlay

	// ctx (optional, see SetContext) cancels execution cooperatively: it
	// is checked before every operator, at scan page-chunk boundaries, and
	// at morsel boundaries of parallel sections.
	ctx context.Context

	// obs/cur trace per-operator spans; cur is the parent of the node
	// being executed (exec recursion runs on one goroutine).
	obs *obs.Observer
	cur *obs.Span
}

// New returns an engine over the store with fresh counters.
func New(store *col.Store) *Engine {
	return &Engine{Store: store, Stats: NewStats(), threads: 1}
}

// SetObserver attaches an observability handle; per-operator spans nest
// under parent (which may be nil for root spans).
func (e *Engine) SetObserver(o *obs.Observer, parent *obs.Span) {
	e.obs = o
	e.cur = parent
}

// SetContext attaches a cancellation context: a cancelled query stops
// between operators and within scans at page-chunk granularity, ending
// its flash traffic promptly. A nil ctx (the default) never cancels.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// SetOverlays attaches MVCC delta overlays: every scan of a listed
// table drops the overlay's deleted base rows and appends its visible
// tail rows, so the whole plan sees the table as of the overlay's
// snapshot epoch. Tables without an entry scan base pages untouched.
func (e *Engine) SetOverlays(ovs map[string]*delta.Overlay) { e.overlays = ovs }

// ctxErr returns the engine context's error, if any.
func (e *Engine) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Run executes a bound plan tree and returns the result batch.
func (e *Engine) Run(n plan.Node) (*Batch, error) {
	b, err := e.exec(n)
	if err != nil {
		return nil, err
	}
	e.Stats.work("output", int64(b.NumRows()))
	return b, nil
}

// nodeLabel names a plan node for span display.
func nodeLabel(n plan.Node) string {
	switch t := n.(type) {
	case *plan.Scan:
		return "scan " + t.Table
	case *plan.Filter:
		return "filter"
	case *plan.Project:
		return "project"
	case *plan.Join:
		return "join"
	case *plan.GroupBy:
		return "groupby"
	case *plan.OrderBy:
		return "orderby"
	case *plan.Limit:
		return "limit"
	case *plan.ScalarJoin:
		return "scalar-join"
	case *plan.Materialized:
		return "materialized " + t.Label
	default:
		return fmt.Sprintf("%T", n)
	}
}

func (e *Engine) exec(n plan.Node) (*Batch, error) {
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	var b *Batch
	var err error
	if e.obs == nil && e.cur == nil {
		b, err = e.execNode(n)
	} else {
		sp := e.obs.SpanUnder(e.cur, nodeLabel(n), obs.StageHost)
		saved := e.cur
		e.cur = sp
		b, err = e.execNode(n)
		e.cur = saved
		if b != nil {
			sp.SetInt("rows_out", int64(b.NumRows()))
		}
		sp.End()
	}
	if err == nil {
		// Re-check after the node: a cancellation that landed mid-operator
		// (e.g. skipped parallel morsels) must not leak a truncated batch.
		if cerr := e.ctxErr(); cerr != nil {
			return nil, cerr
		}
	}
	return b, err
}

func (e *Engine) execNode(n plan.Node) (*Batch, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return e.execScan(t)
	case *plan.Filter:
		return e.execFilter(t)
	case *plan.Project:
		return e.execProject(t)
	case *plan.Join:
		return e.execJoin(t)
	case *plan.GroupBy:
		return e.execGroupBy(t)
	case *plan.OrderBy:
		return e.execOrderBy(t)
	case *plan.Limit:
		return e.execLimit(t)
	case *plan.ScalarJoin:
		return e.execScalarJoin(t)
	case *plan.Materialized:
		if t.Cols == nil {
			return nil, fmt.Errorf("engine: materialized node %q has no data", t.Label)
		}
		b := &Batch{Schema: t.S, Cols: t.Cols}
		e.Stats.alloc(b)
		return b, nil
	default:
		return nil, fmt.Errorf("engine: unknown node %T", n)
	}
}

func (e *Engine) execScan(t *plan.Scan) (*Batch, error) {
	if t.Tab == nil {
		return nil, fmt.Errorf("engine: scan of %q not bound", t.Table)
	}
	b := NewBatch(t.Schema())
	for i, name := range t.Cols {
		if name == plan.RowIDCol {
			ids := make([]int64, t.Tab.NumRows)
			for r := range ids {
				ids[r] = int64(r)
			}
			b.Cols[i] = ids
			continue
		}
		ci, err := t.Tab.Column(name)
		if err != nil {
			return nil, err
		}
		vals, err := ci.ReadAllCtx(e.ctx, hostRequester)
		if err != nil {
			return nil, err
		}
		b.Cols[i] = vals
	}
	if ov := e.overlays[t.Table]; ov != nil {
		if err := applyOverlay(t, b, ov); err != nil {
			return nil, err
		}
	}
	e.Stats.work("scan", int64(t.Tab.NumRows)*int64(len(t.Cols)))
	e.Stats.alloc(b)
	return b, nil
}

// applyOverlay rewrites a freshly scanned batch to the overlay's view:
// deleted base rows are dropped and visible tail rows appended. Tail
// values were validated on ingest, so they splice in as ordinary column
// values; the @rowid pseudo-column keeps base ids for surviving rows
// and carries the tail rows' stable ids after them.
func applyOverlay(t *plan.Scan, b *Batch, ov *delta.Overlay) error {
	if ov.BaseRows != t.Tab.NumRows {
		return fmt.Errorf("engine: overlay for %s is against %d base rows, table has %d",
			t.Table, ov.BaseRows, t.Tab.NumRows)
	}
	var keep []int
	if ov.NumDeleted() > 0 {
		keep = make([]int, 0, ov.BaseRows-ov.NumDeleted())
		for r := 0; r < ov.BaseRows; r++ {
			if !ov.BaseDeleted(r) {
				keep = append(keep, r)
			}
		}
	}
	for i, name := range t.Cols {
		var tail []int64
		if name == plan.RowIDCol {
			tail = ov.TailRowIDs
		} else if len(ov.TailRowIDs) > 0 {
			var ok bool
			if tail, ok = ov.TailCols[name]; !ok {
				return fmt.Errorf("engine: overlay for %s has no column %q", t.Table, name)
			}
		}
		base := b.Cols[i]
		if keep == nil && len(tail) == 0 {
			continue
		}
		var out []int64
		if keep != nil {
			out = make([]int64, 0, len(keep)+len(tail))
			for _, r := range keep {
				out = append(out, base[r])
			}
		} else {
			out = make([]int64, 0, len(base)+len(tail))
			out = append(out, base...)
		}
		b.Cols[i] = append(out, tail...)
	}
	return nil
}

func (e *Engine) execFilter(t *plan.Filter) (*Batch, error) {
	in, err := e.exec(t.Input)
	if err != nil {
		return nil, err
	}
	pred, err := e.evalExpr(in, t.Pred)
	if err != nil {
		return nil, err
	}
	e.Stats.work("filter", int64(in.NumRows()))
	out := NewBatch(in.Schema)
	keep := 0
	for _, v := range pred {
		if v != 0 {
			keep++
		}
	}
	switch keep {
	case 0:
		// Nothing survives: empty columns, no copies.
	case len(pred):
		// Everything survives: alias the input columns (the same
		// share-don't-copy shape execLimit uses).
		copy(out.Cols, in.Cols)
	default:
		// Materialize the selection once into a pooled index so each
		// column is a dense indexed copy instead of re-testing the
		// predicate per column.
		sel := pool.Vals.Get(keep)
		j := 0
		for r, v := range pred {
			if v != 0 {
				sel[j] = int64(r)
				j++
			}
		}
		for c := range in.Cols {
			src := in.Cols[c]
			dst := make([]int64, keep)
			for i, r := range sel {
				dst[i] = src[r]
			}
			out.Cols[c] = dst
		}
		pool.Vals.Put(sel)
	}
	e.Stats.alloc(out)
	e.Stats.free(in)
	return out, nil
}

func (e *Engine) execProject(t *plan.Project) (*Batch, error) {
	in, err := e.exec(t.Input)
	if err != nil {
		return nil, err
	}
	out := NewBatch(t.Schema())
	for i, ne := range t.Exprs {
		colVals, err := e.evalExpr(in, ne.E)
		if err != nil {
			return nil, err
		}
		out.Cols[i] = colVals
	}
	e.Stats.work("project", int64(in.NumRows())*int64(len(t.Exprs)))
	e.Stats.alloc(out)
	e.Stats.free(in)
	return out, nil
}

func (e *Engine) execLimit(t *plan.Limit) (*Batch, error) {
	in, err := e.exec(t.Input)
	if err != nil {
		return nil, err
	}
	if in.NumRows() <= t.N {
		return in, nil
	}
	out := NewBatch(in.Schema)
	for c := range in.Cols {
		out.Cols[c] = in.Cols[c][:t.N]
	}
	e.Stats.alloc(out)
	e.Stats.free(in)
	return out, nil
}

func (e *Engine) execOrderBy(t *plan.OrderBy) (*Batch, error) {
	in, err := e.exec(t.Input)
	if err != nil {
		return nil, err
	}
	n := in.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	type keyInfo struct {
		col  []int64
		desc bool
		text *col.ColumnInfo
	}
	keys := make([]keyInfo, len(t.Keys))
	for i, k := range t.Keys {
		ci := in.Schema.Index(k.Name)
		f := in.Schema[ci]
		keys[i] = keyInfo{col: in.Cols[ci], desc: k.Desc}
		if f.Typ == col.Text && f.Src != nil {
			keys[i].text = f.Src
		}
	}
	// Text keys resolve through flash per comparison; the sort comparator
	// cannot fail, so the first read error is latched and reported after.
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for _, k := range keys {
			va, vb := k.col[ra], k.col[rb]
			if k.text != nil {
				sa, errA := k.text.Str(va, hostRequester)
				sb, errB := k.text.Str(vb, hostRequester)
				if sortErr == nil {
					if errA != nil {
						sortErr = errA
					} else if errB != nil {
						sortErr = errB
					}
				}
				if sa == sb {
					continue
				}
				if k.desc {
					return sa > sb
				}
				return sa < sb
			}
			if va == vb {
				continue
			}
			if k.desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	logN := int64(1)
	for m := n; m > 1; m >>= 1 {
		logN++
	}
	e.Stats.work("sort", int64(n)*logN)
	out := NewBatch(in.Schema)
	for c := range in.Cols {
		dst := make([]int64, n)
		for i, r := range idx {
			dst[i] = in.Cols[c][r]
		}
		out.Cols[c] = dst
	}
	e.Stats.alloc(out)
	e.Stats.free(in)
	return out, nil
}

func (e *Engine) execScalarJoin(t *plan.ScalarJoin) (*Batch, error) {
	sub, err := e.exec(t.Sub)
	if err != nil {
		return nil, err
	}
	if sub.NumRows() != 1 || len(sub.Cols) != 1 {
		return nil, fmt.Errorf("engine: scalar subquery produced %d rows x %d cols",
			sub.NumRows(), len(sub.Cols))
	}
	v := sub.Cols[0][0]
	in, err := e.exec(t.Input)
	if err != nil {
		return nil, err
	}
	out := NewBatch(t.Schema())
	copy(out.Cols, in.Cols)
	bc := make([]int64, in.NumRows())
	for i := range bc {
		bc[i] = v
	}
	out.Cols[len(in.Cols)] = bc
	e.Stats.alloc(out)
	e.Stats.free(in)
	e.Stats.free(sub)
	return out, nil
}

// packKey serializes a key tuple for hash maps.
func packKey(buf []byte, idx []int, row int, cols [][]int64) []byte {
	buf = buf[:0]
	for _, c := range idx {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(cols[c][row]))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func (e *Engine) execJoin(t *plan.Join) (*Batch, error) {
	left, err := e.exec(t.L)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(t.R)
	if err != nil {
		return nil, err
	}
	lIdx := make([]int, len(t.LKeys))
	for i, k := range t.LKeys {
		lIdx[i] = left.Schema.Index(k)
	}
	rIdx := make([]int, len(t.RKeys))
	for i, k := range t.RKeys {
		rIdx[i] = right.Schema.Index(k)
	}
	// Build hash table on the right input.
	ht := make(map[string][]int, right.NumRows())
	var kb []byte
	for r := 0; r < right.NumRows(); r++ {
		kb = packKey(kb, rIdx, r, right.Cols)
		ht[string(kb)] = append(ht[string(kb)], r)
	}
	e.Stats.work("join_build", int64(right.NumRows()))
	e.Stats.work("join_probe", int64(left.NumRows()))

	// Lower the extra predicate over the concatenated schema once.
	var extra systolic.Expr
	combined := append(append(plan.Schema{}, left.Schema...), right.Schema...)
	if t.Extra != nil {
		extra, err = plan.Lower(t.Extra, combined)
		if err != nil {
			return nil, fmt.Errorf("engine: join extra predicate: %w", err)
		}
	}
	// Probe in parallel morsels; per-range pair lists are reassembled in
	// range order, so the output matches sequential execution exactly.
	type pair struct {
		lr, rr  int
		matched int64
	}
	n := left.NumRows()
	nWorkers := e.threads
	if nWorkers < 1 {
		nWorkers = 1
	}
	partPairs := make([][]pair, nWorkers+1)
	workers := e.parallelRanges(n, func(w, lo, hi int) {
		var kb []byte
		row := make([]int64, len(combined))
		match := func(lr, rr int) bool {
			if extra == nil {
				return true
			}
			for c := range left.Cols {
				row[c] = left.Cols[c][lr]
			}
			for c := range right.Cols {
				row[len(left.Cols)+c] = right.Cols[c][rr]
			}
			return systolic.EvalExpr(extra, row) != 0
		}
		var out []pair
		for lr := lo; lr < hi; lr++ {
			kb = packKey(kb, lIdx, lr, left.Cols)
			cands := ht[string(kb)]
			switch t.Kind {
			case plan.InnerJoin:
				for _, rr := range cands {
					if match(lr, rr) {
						out = append(out, pair{lr, rr, 1})
					}
				}
			case plan.SemiJoin:
				for _, rr := range cands {
					if match(lr, rr) {
						out = append(out, pair{lr, -1, 1})
						break
					}
				}
			case plan.AntiJoin:
				found := false
				for _, rr := range cands {
					if match(lr, rr) {
						found = true
						break
					}
				}
				if !found {
					out = append(out, pair{lr, -1, 0})
				}
			case plan.LeftMarkJoin:
				any := false
				for _, rr := range cands {
					if match(lr, rr) {
						out = append(out, pair{lr, rr, 1})
						any = true
					}
				}
				if !any {
					out = append(out, pair{lr, -1, 0})
				}
			}
		}
		partPairs[w] = out
	})
	out := NewBatch(t.Schema())
	for w := 0; w < workers; w++ {
		for _, pr := range partPairs[w] {
			c := 0
			for ; c < len(left.Cols); c++ {
				out.Cols[c] = append(out.Cols[c], left.Cols[c][pr.lr])
			}
			if t.Kind == plan.InnerJoin || t.Kind == plan.LeftMarkJoin {
				for rc := range right.Cols {
					var v int64
					if pr.rr >= 0 {
						v = right.Cols[rc][pr.rr]
					}
					out.Cols[c] = append(out.Cols[c], v)
					c++
				}
			}
			if t.Kind == plan.LeftMarkJoin {
				out.Cols[c] = append(out.Cols[c], pr.matched)
			}
		}
	}
	e.Stats.alloc(out)
	e.Stats.free(left)
	e.Stats.free(right)
	return out, nil
}
