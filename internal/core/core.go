// Package core assembles AQUOMAN: the flash device, the accelerator DRAM,
// the Row Selector → Row Transformer → SQL Swissknife pipeline (via the
// Table-Task executor), the offload compiler, and the host engine that
// runs residual plan fragments and resumes suspended queries (Sec. VI-E).
//
// A Device corresponds to one AQUOMAN-augmented SSD. RunQuery executes a
// bound plan end-to-end: the compiler extracts offload units, the device
// streams their Table Tasks, and the host engine finishes the rewritten
// plan, with every byte of flash, DRAM, and host work accounted in the
// returned Report.
package core

import (
	"fmt"

	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/plan"
	"aquoman/internal/tabletask"
)

// Config sizes one AQUOMAN device.
type Config struct {
	// DRAMBytes is the in-storage DRAM capacity (Table VI: 40 GB default,
	// 16 GB for AQUOMAN16).
	DRAMBytes int64
	// Compiler tunes offload decisions.
	Compiler compiler.Config
	// DisableOffload forces pure host execution (the baseline systems).
	DisableOffload bool
}

// Device is one AQUOMAN-augmented SSD plus its host.
type Device struct {
	Store *col.Store
	DRAM  *mem.DRAM
	cfg   Config
}

// New builds a device over an existing store.
func New(store *col.Store, cfg Config) *Device {
	return &Device{Store: store, DRAM: mem.New(cfg.DRAMBytes), cfg: cfg}
}

// Report describes one query execution.
type Report struct {
	// Offloaded units that ran on AQUOMAN.
	Units []string
	// Notes records compiler decisions (suspension reasons etc.).
	Notes []string
	// FullyOffloaded is true when the host only post-processed a single
	// aggregated result.
	FullyOffloaded bool
	// Suspended is true when an offload unit failed mid-flight (e.g.
	// AQUOMAN DRAM capacity) and the query fell back to the host.
	Suspended bool
	// SuspendReason explains a fallback.
	SuspendReason string

	// AquomanTrace aggregates the Table-Task behaviour.
	AquomanTrace tabletask.Trace
	// DRAMPeak is the accelerator DRAM high-water mark in bytes.
	DRAMPeak int64
	// HostStats is the host engine's work/memory accounting.
	HostStats *engine.Stats
	// Flash is the per-requester flash traffic for this query.
	Flash flash.Stats
	// OffloadFraction is the share of flash bytes read in-storage.
	OffloadFraction float64
}

// RunQuery executes a bound plan. The returned batch is the query result;
// the report captures where the work happened.
func (d *Device) RunQuery(n plan.Node) (*engine.Batch, *Report, error) {
	flashBefore := d.Store.Dev.Stats()
	rep := &Report{HostStats: engine.NewStats()}

	run := func(root plan.Node) (*engine.Batch, error) {
		host := engine.New(d.Store)
		host.Stats = rep.HostStats
		return host.Run(root)
	}

	if d.cfg.DisableOffload {
		b, err := run(n)
		if err != nil {
			return nil, nil, err
		}
		d.finishReport(rep, flashBefore)
		return b, rep, nil
	}

	res, err := compiler.Compile(n, d.Store, d.cfg.Compiler)
	if err != nil {
		return nil, nil, err
	}
	rep.Notes = res.Notes
	rep.FullyOffloaded = res.FullyOffloaded()

	exec := tabletask.NewExecutor(d.Store, d.DRAM)
	var allObjects []string
	for _, u := range res.Units {
		if err := d.runUnit(exec, u); err != nil {
			// Suspension (Sec. VI-E): the unit's intermediate state is
			// dropped and the host resumes by executing the original
			// subtree; completed units keep their offloaded results.
			rep.Suspended = true
			rep.SuspendReason = err.Error()
			rep.FullyOffloaded = false
			for _, name := range u.DRAMObjects {
				d.DRAM.Free(name)
			}
			hb, herr := run(u.Replaced)
			if herr != nil {
				return nil, nil, fmt.Errorf("core: host resume of %s: %w", u.Label, herr)
			}
			u.Placeholder.Cols = hb.Cols
			continue
		}
		rep.Units = append(rep.Units, u.Label)
		allObjects = append(allObjects, u.DRAMObjects...)
	}
	rep.AquomanTrace = exec.Trace
	rep.DRAMPeak = d.DRAM.Peak()
	for _, name := range allObjects {
		d.DRAM.Free(name)
	}

	b, err := run(res.Root)
	if err != nil {
		return nil, nil, err
	}
	d.finishReport(rep, flashBefore)
	return b, rep, nil
}

func (d *Device) finishReport(rep *Report, before flash.Stats) {
	rep.Flash = d.Store.Dev.Stats().Sub(before)
	total := rep.Flash.BytesRead(flash.Host) + rep.Flash.BytesRead(flash.Aquoman)
	if total > 0 {
		rep.OffloadFraction = float64(rep.Flash.BytesRead(flash.Aquoman)) / float64(total)
	}
	d.DRAM.ResetPeak()
}

// runUnit streams one unit's Table Tasks and fills its placeholder.
func (d *Device) runUnit(exec *tabletask.Executor, u *compiler.Unit) error {
	var last *tabletask.Result
	for _, task := range u.Tasks {
		res, err := exec.Run(task)
		if err != nil {
			return fmt.Errorf("unit %s task %s: %w", u.Label, task.Name, err)
		}
		last = res
	}
	cols, err := u.Finalize(last)
	if err != nil {
		return fmt.Errorf("unit %s finalize: %w", u.Label, err)
	}
	u.Placeholder.Cols = cols
	return nil
}
