// Package core assembles AQUOMAN: the flash device, the accelerator DRAM,
// the Row Selector → Row Transformer → SQL Swissknife pipeline (via the
// Table-Task executor), the offload compiler, and the host engine that
// runs residual plan fragments and resumes suspended queries (Sec. VI-E).
//
// A Device corresponds to one AQUOMAN-augmented SSD. RunQuery executes a
// bound plan end-to-end: the compiler extracts offload units, the device
// streams their Table Tasks, and the host engine finishes the rewritten
// plan, with every byte of flash, DRAM, and host work accounted in the
// returned Report.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"aquoman/internal/bitvec"
	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/delta"
	"aquoman/internal/engine"
	"aquoman/internal/faults"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/tabletask"
)

// Config sizes one AQUOMAN device.
type Config struct {
	// DRAMBytes is the in-storage DRAM capacity (Table VI: 40 GB default,
	// 16 GB for AQUOMAN16).
	DRAMBytes int64
	// Compiler tunes offload decisions.
	Compiler compiler.Config
	// DisableOffload forces pure host execution (the baseline systems).
	DisableOffload bool
	// DisableFusion forces offloaded tasks onto the staged (materializing)
	// executor path instead of the fused scan (differential testing).
	DisableFusion bool
	// SharedDevice marks the flash device as shared with concurrently
	// running queries (the sched package). Per-query flash traffic deltas
	// and registry deltas would misattribute the other queries' work, so
	// Report.Flash/OffloadFraction/Metrics stay zero when set.
	SharedDevice bool

	// Overlays (optional) are the query's per-table MVCC snapshot deltas.
	// Tables without an entry scan base pages untouched. A delete-only
	// overlay on a single-table plan still offloads — the deleted rows
	// become a Table-Task delete mask; any visible tail rows (or a
	// multi-table plan over mutated tables) force host execution, because
	// in-memory tail rows have no flash pages for the accelerator to scan
	// and materialized RowID companions are only re-derived at merge.
	Overlays map[string]*delta.Overlay

	// Ctx (optional) cancels the query cooperatively: checkpoints at unit,
	// stage, page-read and morsel boundaries stop the query — and its
	// simulated flash traffic — shortly after Ctx is done. Cancellation is
	// NOT a suspension: a context error propagates to the caller instead
	// of triggering the host-resume fallback. Nil never cancels.
	Ctx context.Context

	// Obs (optional) collects per-stage spans and metrics for the query.
	Obs *obs.Observer
	// ObsParent, when set, nests the query span under an enclosing span
	// (e.g. a distrib shard).
	ObsParent *obs.Span
}

// Device is one AQUOMAN-augmented SSD plus its host.
type Device struct {
	Store *col.Store
	DRAM  *mem.DRAM
	cfg   Config
}

// New builds a device over an existing store.
func New(store *col.Store, cfg Config) *Device {
	return &Device{Store: store, DRAM: mem.New(cfg.DRAMBytes), cfg: cfg}
}

// ctxErr returns the configured context's error, if any.
func (d *Device) ctxErr() error {
	if d.cfg.Ctx == nil {
		return nil
	}
	return d.cfg.Ctx.Err()
}

// Report describes one query execution.
type Report struct {
	// Offloaded units that ran on AQUOMAN.
	Units []string
	// Notes records compiler decisions (suspension reasons etc.).
	Notes []string
	// FullyOffloaded is true when the host only post-processed a single
	// aggregated result.
	FullyOffloaded bool
	// Suspended is true when an offload unit failed mid-flight (e.g.
	// AQUOMAN DRAM capacity) and the query fell back to the host.
	Suspended bool
	// SuspendReason explains a fallback.
	SuspendReason string

	// AquomanTrace aggregates the Table-Task behaviour.
	AquomanTrace tabletask.Trace
	// DRAMPeak is the accelerator DRAM high-water mark in bytes.
	DRAMPeak int64
	// HostStats is the host engine's work/memory accounting.
	HostStats *engine.Stats
	// Flash is the per-requester flash traffic for this query.
	Flash flash.Stats
	// OffloadFraction is the share of flash bytes read in-storage.
	OffloadFraction float64

	// Metrics is the registry delta accumulated during this query (nil
	// when the device runs without an observer).
	Metrics *obs.Snapshot
}

// RunQuery executes a bound plan. The returned batch is the query result;
// the report captures where the work happened.
func (d *Device) RunQuery(n plan.Node) (*engine.Batch, *Report, error) {
	flashBefore := d.Store.Dev.Stats()
	rep := &Report{HostStats: engine.NewStats()}

	o := d.cfg.Obs
	var metricsBefore obs.Snapshot
	if o != nil && o.Reg != nil {
		metricsBefore = o.Reg.Snapshot()
	}
	qSpan := o.SpanUnder(d.cfg.ObsParent, "query", obs.StageQuery)
	finish := func() {
		d.finishReport(rep, flashBefore)
		qSpan.End()
		if o != nil && o.Reg != nil && !d.cfg.SharedDevice {
			delta := o.Reg.Snapshot().Delta(metricsBefore)
			rep.Metrics = &delta
		}
	}

	lc := obs.LifecycleFrom(d.cfg.Ctx)
	// Everything RunQuery does that no inner timer claims — unit glue,
	// finalize, report bookkeeping — is host-side work. Exclusive regions
	// nest: this outer window subtracts whatever the compiler, the table
	// tasks, the flash layer, and the inner host timers attribute, so only
	// the otherwise-unattributed remainder lands in StateHost.
	defer lc.ExclusiveTimer(obs.StateHost)()
	run := func(stage string, root plan.Node) (*engine.Batch, error) {
		hostSpan := qSpan.Child(stage, obs.StageHost)
		defer hostSpan.End()
		// Exclusive: host scans read flash, and that time is attributed to
		// the flash states, not host CPU.
		defer lc.ExclusiveTimer(obs.StateHost)()
		host := engine.New(d.Store)
		host.Stats = rep.HostStats
		host.SetObserver(o, hostSpan)
		host.SetContext(d.cfg.Ctx)
		host.SetOverlays(d.cfg.Overlays)
		return host.Run(root)
	}

	if err := d.ctxErr(); err != nil {
		qSpan.End()
		return nil, nil, err
	}

	if d.cfg.DisableOffload {
		b, err := run("host-plan", n)
		if err != nil {
			qSpan.End()
			return nil, nil, err
		}
		finish()
		return b, rep, nil
	}

	// MVCC visibility gate (see Config.Overlays): visible tail rows or a
	// multi-table plan over mutated tables run on the host; a delete-only
	// overlay on a single-table plan offloads behind a delete mask.
	var deleteMasks map[string]*bitvec.Mask
	if len(d.cfg.Overlays) > 0 {
		tables := plan.BaseTables(n)
		var dirty []string
		offloadable := true
		for _, name := range tables {
			ov := d.cfg.Overlays[name]
			if ov == nil {
				continue
			}
			dirty = append(dirty, name)
			if !ov.DeleteOnly() {
				offloadable = false
			}
		}
		sort.Strings(dirty)
		if len(dirty) > 0 && (!offloadable || len(tables) > 1) {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"mvcc overlay on %s: executing on host", strings.Join(dirty, ",")))
			b, err := run("host-plan", n)
			if err != nil {
				qSpan.End()
				return nil, nil, err
			}
			finish()
			return b, rep, nil
		}
		if len(dirty) > 0 {
			deleteMasks = make(map[string]*bitvec.Mask, len(dirty))
			for _, name := range dirty {
				deleteMasks[name] = d.cfg.Overlays[name].DeletedBase
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"mvcc delete mask on %s: offloading with masked scans", strings.Join(dirty, ",")))
		}
	}

	cSpan := qSpan.Child("compile", obs.StageCompile)
	endCompile := lc.ExclusiveTimer(obs.StateCompile)
	res, err := compiler.Compile(n, d.Store, d.cfg.Compiler)
	endCompile()
	cSpan.End()
	if err != nil {
		qSpan.End()
		return nil, nil, err
	}
	rep.Notes = res.Notes
	rep.FullyOffloaded = res.FullyOffloaded()
	cSpan.SetInt("units", int64(len(res.Units)))

	exec := tabletask.NewExecutor(d.Store, d.DRAM)
	exec.Obs = o
	exec.Ctx = d.cfg.Ctx
	exec.DisableFusion = d.cfg.DisableFusion
	exec.DeleteMasks = deleteMasks
	var allObjects []string
	for _, u := range res.Units {
		uSpan := qSpan.Child("unit "+u.Label, obs.StageUnit)
		exec.ObsParent = uSpan
		err := d.runUnit(exec, u)
		uSpan.End()
		if err != nil {
			// Cancellation is not a suspension: a dead context propagates
			// instead of re-running the unit's subtree on the host (which
			// would keep consuming flash bandwidth for a query nobody is
			// waiting on).
			if cerr := d.ctxErr(); cerr != nil {
				qSpan.End()
				return nil, nil, cerr
			}
			// Suspension (Sec. VI-E): the unit's intermediate state is
			// dropped and the host resumes by executing the original
			// subtree; completed units keep their offloaded results. An
			// injected device fault takes the same path — the host re-read
			// may succeed (budget-exhausted transient) or fail again
			// (permanent fault), in which case the error propagates to the
			// caller (distrib degrades the shard to its mirror).
			var fe *faults.Error
			if errors.As(err, &fe) {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"unit %s hit a device fault, resuming on host: %v", u.Label, fe))
				if o != nil && o.Reg != nil {
					o.Counter("core_unit_faults_total", "kind", fe.Kind.String()).Inc()
				}
			}
			rep.Suspended = true
			rep.SuspendReason = err.Error()
			rep.FullyOffloaded = false
			for _, name := range u.DRAMObjects {
				d.DRAM.Free(name)
			}
			hb, herr := run("host-resume "+u.Label, u.Replaced)
			if herr != nil {
				qSpan.End()
				return nil, nil, fmt.Errorf("core: host resume of %s: %w", u.Label, herr)
			}
			u.Placeholder.Cols = hb.Cols
			continue
		}
		rep.Units = append(rep.Units, u.Label)
		allObjects = append(allObjects, u.DRAMObjects...)
	}
	exec.ObsParent = nil
	rep.AquomanTrace = exec.Trace
	rep.DRAMPeak = d.DRAM.Peak()
	for _, name := range allObjects {
		d.DRAM.Free(name)
	}

	b, err := run("host-plan", res.Root)
	if err != nil {
		qSpan.End()
		return nil, nil, err
	}
	finish()
	return b, rep, nil
}

func (d *Device) finishReport(rep *Report, before flash.Stats) {
	if !d.cfg.SharedDevice {
		rep.Flash = d.Store.Dev.Stats().Sub(before)
		total := rep.Flash.BytesRead(flash.Host) + rep.Flash.BytesRead(flash.Aquoman)
		if total > 0 {
			rep.OffloadFraction = float64(rep.Flash.BytesRead(flash.Aquoman)) / float64(total)
		}
	}
	d.DRAM.ResetPeak()
	if o := d.cfg.Obs; o != nil && o.Reg != nil {
		rep.HostStats.Each(func(kind string, n int64) {
			o.Counter("engine_work_total", "kind", kind).Add(n)
		})
		o.Gauge("engine_peak_bytes").SetMax(rep.HostStats.Peak())
		o.Counter("core_queries_total").Inc()
		if rep.Suspended {
			o.Counter("core_suspensions_total").Inc()
		}
	}
}

// runUnit streams one unit's Table Tasks and fills its placeholder.
func (d *Device) runUnit(exec *tabletask.Executor, u *compiler.Unit) error {
	var last *tabletask.Result
	for _, task := range u.Tasks {
		res, err := exec.Run(task)
		if err != nil {
			return fmt.Errorf("unit %s task %s: %w", u.Label, task.Name, err)
		}
		last = res
	}
	cols, err := u.Finalize(last)
	if err != nil {
		return fmt.Errorf("unit %s finalize: %w", u.Label, err)
	}
	u.Placeholder.Cols = cols
	return nil
}
