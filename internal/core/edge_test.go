package core

import (
	"strings"
	"testing"

	"aquoman/internal/compiler"
	"aquoman/internal/mem"
	"aquoman/internal/plan"
	"aquoman/internal/swissknife"
	"aquoman/internal/tabletask"
	"aquoman/internal/tpch"
)

// Offloaded queries with empty results behave like the host.
func TestEmptyResultOffloaded(t *testing.T) {
	s := sharedStore(t)
	build := func() plan.Node {
		return &plan.GroupBy{
			Input: &plan.Filter{
				Input: &plan.Scan{Table: "lineitem", Cols: []string{"l_orderkey", "l_quantity"}},
				Pred:  plan.GT(plan.C("l_quantity"), plan.I(1<<40)), // selects nothing
			},
			Keys: []string{"l_orderkey"},
			Aggs: []plan.AggSpec{{Func: plan.AggSum, Name: "q", E: plan.C("l_quantity")}},
		}
	}
	for _, host := range []bool{true, false} {
		n := build()
		if err := plan.Bind(n, s); err != nil {
			t.Fatal(err)
		}
		dev := New(s, Config{DisableOffload: host, DRAMBytes: mem.DefaultCapacity})
		b, rep, err := dev.RunQuery(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.NumRows() != 0 {
			t.Fatalf("host=%v rows=%d", host, b.NumRows())
		}
		if !host && len(rep.Units) != 1 {
			t.Fatalf("empty-result query did not offload: %v", rep.Notes)
		}
	}
}

// An empty scalar aggregate yields one row of zeros on both paths.
func TestEmptyScalarAggregateOffloaded(t *testing.T) {
	s := sharedStore(t)
	n := &plan.GroupBy{
		Input: &plan.Filter{
			Input: &plan.Scan{Table: "lineitem", Cols: []string{"l_quantity"}},
			Pred:  plan.GT(plan.C("l_quantity"), plan.I(1<<40)),
		},
		Aggs: []plan.AggSpec{
			{Func: plan.AggSum, Name: "s", E: plan.C("l_quantity")},
			{Func: plan.AggCount, Name: "n"},
		},
	}
	if err := plan.Bind(n, s); err != nil {
		t.Fatal(err)
	}
	b, rep, err := New(s, Config{DRAMBytes: mem.DefaultCapacity}).RunQuery(n)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 1 || b.Cols[0][0] != 0 || b.Cols[1][0] != 0 {
		t.Fatalf("scalar over empty = %v rows", b.NumRows())
	}
	if len(rep.Units) != 1 {
		t.Fatalf("not offloaded: %v", rep.Notes)
	}
}

// Tiny group-by buckets force heavy spill-over but results stay exact.
func TestTinyBucketsStillExact(t *testing.T) {
	s := sharedStore(t)
	def, _ := tpch.Get(1)
	host := def.Build()
	if err := plan.Bind(host, s); err != nil {
		t.Fatal(err)
	}
	want, _, err := New(s, Config{DisableOffload: true}).RunQuery(host)
	if err != nil {
		t.Fatal(err)
	}
	off := def.Build()
	if err := plan.Bind(off, s); err != nil {
		t.Fatal(err)
	}
	dev := New(s, Config{
		DRAMBytes: mem.DefaultCapacity,
		Compiler: compiler.Config{HeapScale: 100_000,
			GroupCfg: swissknife.GroupByConfig{Buckets: 2}},
	})
	got, rep, err := dev.RunQuery(off)
	if err != nil {
		t.Fatal(err)
	}
	spilled := rep.AquomanTrace.Total(func(tt *tabletask.TaskTrace) int64 { return tt.SpilledRows })
	if spilled == 0 {
		t.Fatal("2 buckets for 4 groups must spill")
	}
	hc, oc := canonical(want), canonical(got)
	for i := range hc {
		if hc[i] != oc[i] {
			t.Fatalf("spilled group-by diverged at row %d", i)
		}
	}
}

// The same device runs queries back to back; DRAM intermediates from the
// previous query must be gone.
func TestSequentialQueriesReuseDevice(t *testing.T) {
	s := sharedStore(t)
	dev := New(s, Config{DRAMBytes: mem.DefaultCapacity,
		Compiler: compiler.Config{HeapScale: 100_000}})
	for round := 0; round < 3; round++ {
		for _, q := range []int{3, 6, 4} {
			def, _ := tpch.Get(q)
			n := def.Build()
			if err := plan.Bind(n, s); err != nil {
				t.Fatal(err)
			}
			if _, _, err := dev.RunQuery(n); err != nil {
				t.Fatalf("round %d q%d: %v", round, q, err)
			}
		}
	}
	// Only persistent gather caches may remain resident.
	for _, name := range dev.DRAM.Objects() {
		if !strings.HasPrefix(name, "cache:") {
			t.Fatalf("leaked DRAM object %q", name)
		}
	}
}

// Host-only runs never touch AQUOMAN state.
func TestHostOnlyReport(t *testing.T) {
	s := sharedStore(t)
	def, _ := tpch.Get(6)
	n := def.Build()
	if err := plan.Bind(n, s); err != nil {
		t.Fatal(err)
	}
	_, rep, err := New(s, Config{DisableOffload: true}).RunQuery(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Units) != 0 || rep.OffloadFraction != 0 || len(rep.AquomanTrace.Tasks) != 0 {
		t.Fatalf("host-only report shows accelerator activity: %+v", rep)
	}
	if rep.HostStats.Work["scan"] == 0 {
		t.Fatal("host work not tracked")
	}
}

// The unit-level suspension keeps completed units' offloaded results.
func TestPartialSuspensionKeepsCompletedUnits(t *testing.T) {
	s := sharedStore(t)
	// q17 has two units (part-filter rows + avg-qty group-by). Give the
	// device just enough DRAM for the cache/columns of one but not the
	// other by running with a small budget; whatever suspends, results
	// must match the host.
	def, _ := tpch.Get(17)
	host := def.Build()
	if err := plan.Bind(host, s); err != nil {
		t.Fatal(err)
	}
	want, _, err := New(s, Config{DisableOffload: true}).RunQuery(host)
	if err != nil {
		t.Fatal(err)
	}
	off := def.Build()
	if err := plan.Bind(off, s); err != nil {
		t.Fatal(err)
	}
	dev := New(s, Config{DRAMBytes: 1 << 12,
		Compiler: compiler.Config{HeapScale: 100_000}})
	got, rep, err := dev.RunQuery(off)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	hc, oc := canonical(want), canonical(got)
	for i := range hc {
		if hc[i] != oc[i] {
			t.Fatalf("suspended q17 diverged")
		}
	}
}

// With the store's actual (small) heaps, LIKE predicates run on the regex
// accelerator in storage and must match host execution.
func TestRegexAcceleratorEndToEnd(t *testing.T) {
	s := sharedStore(t)
	build := func() plan.Node {
		return &plan.GroupBy{
			Input: &plan.Filter{
				Input: &plan.Scan{Table: "part", Cols: []string{"p_partkey", "p_name", "p_retailprice"}},
				Pred: plan.And(
					plan.Like{Col: "p_name", Pattern: "%green%"},
					plan.GT(plan.C("p_retailprice"), plan.I(0)),
				),
			},
			Aggs: []plan.AggSpec{
				{Func: plan.AggCount, Name: "n"},
				{Func: plan.AggSum, Name: "v", E: plan.C("p_retailprice")},
			},
		}
	}
	hostPlan := build()
	if err := plan.Bind(hostPlan, s); err != nil {
		t.Fatal(err)
	}
	want, _, err := New(s, Config{DisableOffload: true}).RunQuery(hostPlan)
	if err != nil {
		t.Fatal(err)
	}
	offPlan := build()
	if err := plan.Bind(offPlan, s); err != nil {
		t.Fatal(err)
	}
	// HeapScale 1: the SF-0.01 heap fits the accelerator cache.
	dev := New(s, Config{DRAMBytes: mem.DefaultCapacity, Compiler: compiler.Config{HeapScale: 1}})
	got, rep, err := dev.RunQuery(offPlan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Units) != 1 {
		t.Fatalf("regex query did not offload: %v", rep.Notes)
	}
	if want.Cols[0][0] != got.Cols[0][0] || want.Cols[1][0] != got.Cols[1][0] {
		t.Fatalf("regex results differ: host (%d,%d) vs aquoman (%d,%d)",
			want.Cols[0][0], want.Cols[1][0], got.Cols[0][0], got.Cols[1][0])
	}
	if want.Cols[0][0] == 0 {
		t.Fatal("no green parts; generator broken")
	}
}

// LIMIT k ORDER BY over a filtered scan offloads to the TOPK accelerator
// and must agree with the host (modulo tie order, hence canonical rows).
func TestTopKOffloadEndToEnd(t *testing.T) {
	s := sharedStore(t)
	build := func(desc bool) plan.Node {
		return &plan.Limit{N: 7, Input: &plan.OrderBy{
			Keys: []plan.OrderKey{{Name: "l_extendedprice", Desc: desc}},
			Input: &plan.Filter{
				Input: &plan.Scan{Table: "lineitem",
					Cols: []string{"l_orderkey", "l_extendedprice", "l_quantity"}},
				Pred: plan.LT(plan.C("l_quantity"), plan.I(500)),
			},
		}}
	}
	for _, desc := range []bool{true, false} {
		hostPlan := build(desc)
		if err := plan.Bind(hostPlan, s); err != nil {
			t.Fatal(err)
		}
		want, _, err := New(s, Config{DisableOffload: true}).RunQuery(hostPlan)
		if err != nil {
			t.Fatal(err)
		}
		offPlan := build(desc)
		if err := plan.Bind(offPlan, s); err != nil {
			t.Fatal(err)
		}
		dev := New(s, Config{DRAMBytes: mem.DefaultCapacity,
			Compiler: compiler.Config{HeapScale: 100_000}})
		got, rep, err := dev.RunQuery(offPlan)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Units) != 1 || !strings.Contains(rep.Units[0], "topk") {
			t.Fatalf("desc=%v: units = %v (notes %v)", desc, rep.Units, rep.Notes)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("desc=%v rows: %d vs %d", desc, got.NumRows(), want.NumRows())
		}
		// The key column must match positionally (ties may reorder other
		// columns).
		ki := want.Schema.Index("l_extendedprice")
		for r := 0; r < want.NumRows(); r++ {
			if got.Cols[ki][r] != want.Cols[ki][r] {
				t.Fatalf("desc=%v row %d key %d vs %d", desc, r, got.Cols[ki][r], want.Cols[ki][r])
			}
		}
	}
}
