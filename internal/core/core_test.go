package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/plan"
	"aquoman/internal/tabletask"
	"aquoman/internal/tpch"
)

var (
	storeOnce sync.Once
	testStore *col.Store
)

func sharedStore(t *testing.T) *col.Store {
	t.Helper()
	storeOnce.Do(func() {
		s := col.NewStore(flash.NewDevice())
		if err := tpch.Gen(s, tpch.Config{SF: 0.01, Seed: 42}); err != nil {
			t.Fatalf("Gen: %v", err)
		}
		testStore = s
	})
	return testStore
}

// canonical renders a batch as sorted row strings so host and offload
// results compare independent of group emission order.
func canonical(b *engine.Batch) []string {
	rows := make([]string, b.NumRows())
	for r := range rows {
		s := ""
		for c := range b.Cols {
			s += fmt.Sprintf("%d|", b.Cols[c][r])
		}
		rows[r] = s
	}
	sort.Strings(rows)
	return rows
}

func runBoth(t *testing.T, q int) (*engine.Batch, *engine.Batch, *Report) {
	t.Helper()
	s := sharedStore(t)
	def, err := tpch.Get(q)
	if err != nil {
		t.Fatal(err)
	}

	hostPlan := def.Build()
	if err := plan.Bind(hostPlan, s); err != nil {
		t.Fatalf("q%d bind: %v", q, err)
	}
	hostDev := New(s, Config{DisableOffload: true})
	hostBatch, _, err := hostDev.RunQuery(hostPlan)
	if err != nil {
		t.Fatalf("q%d host: %v", q, err)
	}

	offPlan := def.Build()
	if err := plan.Bind(offPlan, s); err != nil {
		t.Fatalf("q%d bind: %v", q, err)
	}
	dev := New(s, Config{DRAMBytes: mem.DefaultCapacity,
		Compiler: compiler.Config{HeapScale: 100_000}}) // model SF-1000 vs SF-0.01
	offBatch, rep, err := dev.RunQuery(offPlan)
	if err != nil {
		t.Fatalf("q%d offload: %v", q, err)
	}
	return hostBatch, offBatch, rep
}

// The headline integration property: every TPC-H query produces identical
// results through the host engine and through AQUOMAN offload.
func TestAllQueriesHostVsAquoman(t *testing.T) {
	for _, def := range tpch.Queries() {
		q := def.Num
		t.Run(fmt.Sprintf("q%02d", q), func(t *testing.T) {
			host, off, rep := runBoth(t, q)
			if len(host.Schema) != len(off.Schema) {
				t.Fatalf("schema mismatch: %s vs %s", host.Schema, off.Schema)
			}
			hc, oc := canonical(host), canonical(off)
			if len(hc) != len(oc) {
				t.Fatalf("row count: host %d vs aquoman %d (units %v, notes %v)",
					len(hc), len(oc), rep.Units, rep.Notes)
			}
			for i := range hc {
				if hc[i] != oc[i] {
					t.Fatalf("row %d differs:\n host    %s\n aquoman %s\n(units %v)",
						i, hc[i], oc[i], rep.Units)
				}
			}
			t.Logf("q%02d: units=%d offload=%.0f%% fully=%v suspended=%v",
				q, len(rep.Units), rep.OffloadFraction*100, rep.FullyOffloaded, rep.Suspended)
		})
	}
}

// Offload classification shape: the queries the paper fully offloads
// should at least offload most of their flash traffic here, and the
// regex-bound queries should not offload at all.
func TestOffloadClassificationShape(t *testing.T) {
	mostlyOffloaded := []int{1, 3, 4, 5, 6, 7, 8, 10, 12, 14, 19}
	neverOffloaded := []int{9, 13, 22}
	for _, q := range mostlyOffloaded {
		_, _, rep := runBoth(t, q)
		if rep.OffloadFraction < 0.5 {
			t.Errorf("q%d offload fraction = %.2f, want >= 0.5 (notes: %v)",
				q, rep.OffloadFraction, rep.Notes)
		}
	}
	for _, q := range neverOffloaded {
		_, _, rep := runBoth(t, q)
		if len(rep.Units) != 0 {
			t.Errorf("q%d offloaded units %v, want none", q, rep.Units)
		}
	}
}

// Partial offload: q17/q18's inner group-by subtrees run on AQUOMAN even
// though the outer query suspends to the host (Sec. VIII-B).
func TestPartialOffload(t *testing.T) {
	for _, q := range []int{11, 15, 17, 18} {
		_, _, rep := runBoth(t, q)
		if len(rep.Units) == 0 {
			t.Errorf("q%d: no offloaded units (notes: %v)", q, rep.Notes)
		}
		if rep.FullyOffloaded && q == 17 {
			t.Errorf("q17 should not be fully offloaded")
		}
	}
}

// Fully-offloaded queries: single unit plus trivial host post-processing.
func TestFullyOffloaded(t *testing.T) {
	for _, q := range []int{1, 4, 6, 12, 19} {
		_, _, rep := runBoth(t, q)
		if !rep.FullyOffloaded {
			t.Errorf("q%d not fully offloaded (units %v, notes %v)", q, rep.Units, rep.Notes)
		}
	}
}

// Tiny AQUOMAN DRAM forces a suspension and a correct host resume.
func TestDRAMSuspension(t *testing.T) {
	s := sharedStore(t)
	def, _ := tpch.Get(3)
	hostPlan := def.Build()
	if err := plan.Bind(hostPlan, s); err != nil {
		t.Fatal(err)
	}
	want, _, err := New(s, Config{DisableOffload: true}).RunQuery(hostPlan)
	if err != nil {
		t.Fatal(err)
	}
	offPlan := def.Build()
	if err := plan.Bind(offPlan, s); err != nil {
		t.Fatal(err)
	}
	dev := New(s, Config{DRAMBytes: 64, Compiler: compiler.Config{HeapScale: 100_000}})
	got, rep, err := dev.RunQuery(offPlan)
	if err != nil {
		t.Fatalf("suspended run failed: %v", err)
	}
	if !rep.Suspended {
		t.Fatal("expected a DRAM-capacity suspension")
	}
	hc, oc := canonical(want), canonical(got)
	if len(hc) != len(oc) {
		t.Fatalf("suspended result rows: %d vs %d", len(hc), len(oc))
	}
	for i := range hc {
		if hc[i] != oc[i] {
			t.Fatalf("suspended result differs at row %d", i)
		}
	}
}

// Spill-over accounting: q1 (4 groups) must not spill; q15's view groups
// by supplier and must spill beyond the 1024 buckets while staying exact.
func TestGroupBySpillAccounting(t *testing.T) {
	_, _, rep1 := runBoth(t, 1)
	if sp := rep1.AquomanTrace.Total(func(tt *tabletask.TaskTrace) int64 { return tt.SpilledRows }); sp != 0 {
		t.Fatalf("q1 spilled %d rows", sp)
	}
}
