package tabletask

import (
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/rowsel"
	"aquoman/internal/sorter"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
)

// retailStore reproduces the paper's Sec. III / Fig. 5 example tables.
func retailStore(t *testing.T) *col.Store {
	t.Helper()
	s := col.NewStore(flash.NewDevice())
	ib := s.NewTable(col.Schema{Name: "inventory", Cols: []col.ColDef{
		{Name: "invtID", Typ: col.Int32},
		{Name: "category", Typ: col.Dict},
	}})
	cats := []string{"Shoes", "Books", "Toys", "Shoes", "Games", "Books"}
	for i, c := range cats {
		ib.Append(100+i, c)
	}
	inv, err := ib.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	sb := s.NewTable(col.Schema{Name: "sales", Cols: []col.ColDef{
		{Name: "invtID", Typ: col.Int32},
		{Name: "saledate", Typ: col.Date},
		{Name: "price", Typ: col.Decimal},
		{Name: "discount", Typ: col.Decimal},
	}})
	type sale struct {
		invt        int
		date        string
		price, disc int64
	}
	for _, x := range []sale{
		{100, "2018-04-01", 1000, 10}, // shoes, after cut
		{101, "2018-05-01", 2000, 0},  // books, after
		{103, "2018-01-01", 3000, 0},  // shoes, before
		{103, "2018-06-01", 4000, 5},  // shoes, after
		{104, "2018-07-01", 5000, 0},  // games, after
		{105, "2018-08-01", 6000, 0},  // books, after
	} {
		sb.Append(x.invt, col.MustParseDate(x.date), x.price, x.disc)
	}
	fact, err := sb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := col.MaterializeFK(fact, "invtID", inv, "invtID"); err != nil {
		t.Fatal(err)
	}
	return s
}

func newExec(t *testing.T, s *col.Store) *Executor {
	t.Helper()
	e := NewExecutor(s, mem.New(1<<30))
	// Small sorter config so runs/merges actually happen in tests.
	e.Sorter = sorter.Config{VecElems: 4, FanIn: 4, Layers: 2, ElemBytes: 8}
	return e
}

func eqCol(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("col = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("col = %v, want %v", got, want)
		}
	}
}

// predEQ builds a single-column equality predicate.
func predEQ(column string, v int64) rowsel.ColPred {
	return rowsel.ColPred{Column: column,
		Expr: systolic.EQ(systolic.In(0), systolic.C(v)), CPs: 1}
}

func predGT(column string, v int64) rowsel.ColPred {
	return rowsel.ColPred{Column: column,
		Expr: systolic.GT(systolic.In(0), systolic.C(v)), CPs: 1}
}

// The paper's Fig. 5 program: three Table Tasks computing the join query
// "total shoe sales after 2018-03-15" through DRAM intermediates.
func TestFig5JoinProgram(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	inv, _ := s.Table("inventory")
	shoes, _ := inv.MustColumn("category").Code("Shoes")

	// Table Task 0: filter inventory by category, leave sorted
	// (invtID, rowid) pairs in AQUOMAN_MEM_0 (pk order = already sorted,
	// so NOP suffices; Sec. VI-C).
	t0 := &Task{
		Name:  "tabletask_0",
		Table: "inventory",
		RowSel: &Program{Preds: []rowsel.ColPred{
			predEQ("category", shoes),
		}},
		Stream:    []string{"invtID", RowIDCol},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToDRAM, Name: "AQUOMAN_MEM_0"},
	}
	if _, err := e.Run(t0); err != nil {
		t.Fatal(err)
	}
	obj, err := e.DRAM.Get("AQUOMAN_MEM_0")
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.KVs) != 2 || obj.KVs[0].Key != 100 || obj.KVs[1].Key != 103 {
		t.Fatalf("MEM_0 = %v", obj.KVs)
	}

	// Table Task 1: filter sales by date, SORT_MERGE (invtID, sales
	// rowid) with MEM_0, leave the matched-row mask in AQUOMAN_MEM_1.
	t1 := &Task{
		Name:  "tabletask_1",
		Table: "sales",
		RowSel: &Program{Preds: []rowsel.ColPred{
			predGT("saledate", col.MustParseDate("2018-03-15")),
		}},
		Stream:    []string{"invtID", RowIDCol},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpSortMerge, With: "AQUOMAN_MEM_0", FreeWith: true},
		Out:       Output{Kind: ToDRAM, Name: "AQUOMAN_MEM_1"},
	}
	if _, err := e.Run(t1); err != nil {
		t.Fatal(err)
	}
	m1, err := e.DRAM.Get("AQUOMAN_MEM_1")
	if err != nil {
		t.Fatal(err)
	}
	// Shoe sales after 2018-03-15: rows 0 (invt 100) and 3 (invt 103).
	rows := m1.Mask.Rows()
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 3 {
		t.Fatalf("MEM_1 rows = %v", rows)
	}
	// MEM_0 was consumed and garbage collected (Sec. VI-D).
	if _, err := e.DRAM.Get("AQUOMAN_MEM_0"); err == nil {
		t.Fatal("MEM_0 not freed")
	}

	// Table Task 2: aggregate price over the masked sales rows.
	t2 := &Task{
		Name:      "tabletask_2",
		Table:     "sales",
		MaskSrc:   MaskSource{Kind: MaskDRAM, Name: "AQUOMAN_MEM_1"},
		Stream:    []string{"price"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpAggregate, Aggs: []swissknife.AggKind{swissknife.AggSum}},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(t2)
	if err != nil {
		t.Fatal(err)
	}
	eqCol(t, res.Cols[0], 1000+4000)
	if len(e.Trace.Tasks) != 3 {
		t.Fatalf("traced %d tasks", len(e.Trace.Tasks))
	}
	if e.Trace.DRAMPeak == 0 {
		t.Fatal("DRAM peak not tracked")
	}
}

func TestAggregateTask(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// Sum of price*(1-discount) over sales after 2018-03-15 (Fig. 1 shape).
	task := &Task{
		Name:  "agg",
		Table: "sales",
		RowSel: &Program{Preds: []rowsel.ColPred{
			predGT("saledate", col.MustParseDate("2018-03-15")),
		}},
		Stream: []string{"price", "discount"},
		Transform: []systolic.Expr{
			systolic.Div(systolic.Mul(systolic.In(0),
				systolic.Sub(systolic.C(100), systolic.In(1))), systolic.C(100)),
		},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpAggregate, Aggs: []swissknife.AggKind{swissknife.AggSum}},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	// after 2018-03-15: 1000*0.90 + 2000 + 4000*0.95 + 5000 + 6000 = 900+2000+3800+5000+6000
	eqCol(t, res.Cols[0], 900+2000+3800+5000+6000)
	tr := e.Trace.Tasks[0]
	if tr.RowsIn != 6 || tr.RowsSelected != 5 || tr.RowsToSwissknife != 5 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.PagesRead == 0 {
		t.Fatal("no pages read accounted")
	}
}

func TestGroupByTaskWithGather(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// Revenue per inventory category: gather category via the FK rowid.
	task := &Task{
		Name:   "bycat",
		Table:  "sales",
		Stream: []string{"price"},
		Gathers: []Gather{{
			Name:    "category",
			BaseCol: col.RowIDColumnName("invtID"),
			Hops:    []GatherHop{{Table: "inventory", Column: "category"}},
		}},
		Transform: []systolic.Expr{systolic.In(1), systolic.In(0)}, // key, value
		FilterOut: NoFilter,
		Op: OpSpec{Kind: OpGroupBy, Keys: 1,
			Aggs: []swissknife.AggKind{swissknife.AggSum}},
		Out: Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	inv, _ := s.Table("inventory")
	catCol := inv.MustColumn("category")
	byCat := map[string]int64{}
	for i := range res.Cols[0] {
		byCat[catCol.MustStr(res.Cols[0][i], flash.Host)] = res.Cols[1][i]
	}
	if byCat["Shoes"] != 1000+3000+4000 || byCat["Books"] != 2000+6000 || byCat["Games"] != 5000 {
		t.Fatalf("byCat = %v", byCat)
	}
	if e.Trace.Tasks[0].GatherDRAMReads != 6 {
		t.Fatalf("GatherDRAMReads = %d", e.Trace.Tasks[0].GatherDRAMReads)
	}
}

func TestMaskTaskAndComposition(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// Task A: sales after 2018-03-15 -> mask over inventory rows (the
	// semijoin via materialized FK RowIDs, q4 shape).
	a := &Task{
		Name:  "sold-recently",
		Table: "sales",
		RowSel: &Program{Preds: []rowsel.ColPred{
			predGT("saledate", col.MustParseDate("2018-03-15")),
		}},
		Stream:    []string{col.RowIDColumnName("invtID")},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpMask, MaskTable: "inventory"},
		Out:       Output{Kind: ToDRAM, Name: "minv"},
	}
	if _, err := e.Run(a); err != nil {
		t.Fatal(err)
	}
	obj, _ := e.DRAM.Get("minv")
	// invt 100,101,103,104,105 sold after cut => rows 0,1,3,4,5.
	if obj.Mask.Count() != 5 || obj.Mask.Get(2) {
		t.Fatalf("mask = %v", obj.Mask.Rows())
	}
	// Task B: count shoes among recently sold inventory, composing the
	// DRAM mask with a fresh selector predicate.
	inv, _ := s.Table("inventory")
	shoes, _ := inv.MustColumn("category").Code("Shoes")
	b := &Task{
		Name:    "count-shoes",
		Table:   "inventory",
		MaskSrc: MaskSource{Kind: MaskDRAM, Name: "minv"},
		RowSel: &Program{Preds: []rowsel.ColPred{
			predEQ("category", shoes),
		}},
		Stream:    []string{"invtID"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpAggregate, Aggs: []swissknife.AggKind{swissknife.AggCnt}},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	eqCol(t, res.Cols[0], 2) // invt 100 and 103
	if e.Trace.Tasks[1].RowsIn != 5 {
		t.Fatalf("task B RowsIn = %d, want 5 (masked)", e.Trace.Tasks[1].RowsIn)
	}
}

func TestSortAndMergeTasks(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// SORT task: (price desc? no — sort by price) to host.
	task := &Task{
		Name:      "sortprices",
		Table:     "sales",
		Stream:    []string{"price", "invtID"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpSort},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	eqCol(t, res.Cols[0], 1000, 2000, 3000, 4000, 5000, 6000)
	if e.Trace.Tasks[0].SorterElems != 6 {
		t.Fatalf("SorterElems = %d", e.Trace.Tasks[0].SorterElems)
	}
}

func TestSortMergeMaskOutput(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	inv, _ := s.Table("inventory")
	shoes, _ := inv.MustColumn("category").Code("Shoes")
	// Dim task: shoes (invtID, rowid-as-value) sorted by key into DRAM.
	d := &Task{
		Name:      "dim",
		Table:     "inventory",
		RowSel:    &Program{Preds: []rowsel.ColPred{predEQ("category", shoes)}},
		Stream:    []string{"invtID", "invtID"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToDRAM, Name: "D"},
	}
	if _, err := e.Run(d); err != nil {
		t.Fatal(err)
	}
	// Fact task: stream (invtID, fk-rowid... we need the *fact* row ids
	// as values; use the position-recovering trick: the fk rowid column
	// values are inventory rows, unusable as fact ids. Test the ToHost
	// path instead: matched (key, payload) pairs.
	f := &Task{
		Name:      "fact",
		Table:     "sales",
		Stream:    []string{"invtID", "price"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpSortMerge, With: "D", FreeWith: true},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	// Shoes sales: invt 100 (1000), invt 103 (3000, 4000).
	var sum int64
	for _, v := range res.Cols[1] {
		sum += v
	}
	if sum != 1000+3000+4000 {
		t.Fatalf("matched payloads = %v", res.Cols[1])
	}
	// The consumed DRAM object is garbage collected.
	if _, err := e.DRAM.Get("D"); err == nil {
		t.Fatal("With object not freed")
	}
	if e.Trace.Tasks[1].MergeElems == 0 {
		t.Fatal("merge traffic not accounted")
	}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	bad := []*Task{
		{Name: "no-table", Stream: []string{"x"}, FilterOut: NoFilter},
		{Name: "no-inputs", Table: "sales", FilterOut: NoFilter},
		{Name: "mask-no-table", Table: "sales", Stream: []string{"invtID"},
			FilterOut: NoFilter, Op: OpSpec{Kind: OpMask}},
		{Name: "sort-one-col", Table: "sales", Stream: []string{"invtID"},
			FilterOut: NoFilter, Op: OpSpec{Kind: OpSort}},
		{Name: "merge-no-with", Table: "sales", Stream: []string{"invtID", "price"},
			FilterOut: NoFilter, Op: OpSpec{Kind: OpMerge}},
		{Name: "groupby-shape", Table: "sales", Stream: []string{"invtID", "price"},
			FilterOut: NoFilter, Op: OpSpec{Kind: OpGroupBy, Keys: 2,
				Aggs: []swissknife.AggKind{swissknife.AggSum}}},
		{Name: "topk-no-k", Table: "sales", Stream: []string{"invtID", "price"},
			FilterOut: NoFilter, Op: OpSpec{Kind: OpTopK}},
		{Name: "dram-no-name", Table: "sales", Stream: []string{"invtID"},
			FilterOut: NoFilter, Out: Output{Kind: ToDRAM}},
		{Name: "transform-range", Table: "sales", Stream: []string{"invtID"},
			Transform: []systolic.Expr{systolic.In(3)}, FilterOut: NoFilter},
	}
	for _, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("task %q validated", task.Name)
		}
	}
}

func TestTopKTask(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	task := &Task{
		Name:      "top2",
		Table:     "sales",
		Stream:    []string{"price", "invtID"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpTopK, K: 2},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	eqCol(t, res.Cols[0], 6000, 5000)
	eqCol(t, res.Cols[1], 105, 104)
}

func TestPostFilter(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// Multi-column predicate the Row Selector cannot evaluate:
	// price > 100 * discount... compute in the transformer.
	task := &Task{
		Name:   "postfilter",
		Table:  "sales",
		Stream: []string{"price", "discount"},
		Transform: []systolic.Expr{
			systolic.In(0),
			systolic.GT(systolic.In(1), systolic.C(0)), // discount > 0
		},
		FilterOut: 1,
		Op:        OpSpec{Kind: OpAggregate, Aggs: []swissknife.AggKind{swissknife.AggCnt}},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	eqCol(t, res.Cols[0], 2) // two discounted sales
	if e.Trace.Tasks[0].RowsToSwissknife != 2 {
		t.Fatalf("RowsToSwissknife = %d", e.Trace.Tasks[0].RowsToSwissknife)
	}
}
