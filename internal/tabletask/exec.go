package tabletask

import (
	"context"
	"fmt"

	"aquoman/internal/bitvec"
	"aquoman/internal/col"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/obs"
	"aquoman/internal/regexcc"
	"aquoman/internal/sorter"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
)

// dramCacheRowLimit bounds which gather-hop tables are cached whole in
// AQUOMAN DRAM (nation/region-sized dimensions); larger tables gather
// through random flash reads.
const dramCacheRowLimit = 4096

// TaskTrace records one task's behaviour.
type TaskTrace struct {
	Name              string
	Table             string
	Op                string
	RowsIn            int64
	RowsSelected      int64
	RowsTransformed   int64
	RowsToSwissknife  int64
	PagesRead         int64
	PagesSkipped      int64
	PagesPruned       int64
	EncBytesSaved     int64
	EncDecoded        [enc.NumCodecs]int64
	GatherFlashReads  int64
	GatherDRAMReads   int64
	SorterElems       int64
	SorterDRAMBytes   int64
	SorterSRAMBytes   int64
	SorterMergePasses int64
	MergeElems        int64
	Groups            int64
	SpilledRows       int64
	SpilledGroups     int64
	ResidentGroups    int64
	HostRows          int64
	SelectorCPs       int
	TransformerPEs    int
	// WidenedRegs marks transformations that exceeded the prototype's
	// 7-register PEs (see systolic.Config).
	WidenedRegs bool
}

// Trace accumulates a query's AQUOMAN-side behaviour.
type Trace struct {
	Tasks []TaskTrace
	// DRAMPeak is the high-water AQUOMAN DRAM footprint.
	DRAMPeak int64
}

// addReader folds one column pass's page accounting into the trace.
func (tt *TaskTrace) addReader(rs col.ReaderStats) {
	tt.PagesRead += rs.PagesRead
	tt.PagesSkipped += rs.PagesSkipped
	tt.PagesPruned += rs.PagesPruned
	tt.EncBytesSaved += rs.EncBytesSaved
	for c := range rs.EncDecoded {
		tt.EncDecoded[c] += rs.EncDecoded[c]
	}
}

// Total sums a field over tasks.
func (tr *Trace) Total(f func(*TaskTrace) int64) int64 {
	var t int64
	for i := range tr.Tasks {
		t += f(&tr.Tasks[i])
	}
	return t
}

// Executor runs Table Tasks sequentially (a single task already saturates
// flash bandwidth, Sec. V).
type Executor struct {
	Store  *col.Store
	DRAM   *mem.DRAM
	Sorter sorter.Config
	Trace  Trace

	// Ctx (optional) cancels in-flight tasks cooperatively: it is checked
	// at stage boundaries and before every flash page load, so a cancelled
	// task stops consuming flash bandwidth within one page boundary. Nil
	// never cancels.
	Ctx context.Context

	// Obs (optional) receives per-stage spans and metric counters;
	// ObsParent, when set, is the enclosing span (the offload unit).
	Obs       *obs.Observer
	ObsParent *obs.Span

	// DisableFusion forces every task onto the staged (materializing)
	// path, even when the fused scan could run it. The differential
	// harness uses it as the oracle switch.
	DisableFusion bool

	// DeleteMasks (optional) marks MVCC-deleted base rows per table.
	// A task scanning a listed table ANDs the complement into its row
	// mask, so offloaded scans honor a delete-only snapshot overlay
	// without rewriting base pages. Tasks over masked tables never take
	// the fused path (its eligibility demands a full-table scan).
	DeleteMasks map[string]*bitvec.Mask

	cached map[string]bool // DRAM-cached gather columns
}

// ctxErr returns the executor context's error, if any.
func (e *Executor) ctxErr() error {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Err()
}

// NewExecutor returns an executor over the store using the given AQUOMAN
// DRAM.
func NewExecutor(store *col.Store, dram *mem.DRAM) *Executor {
	return &Executor{Store: store, DRAM: dram, Sorter: sorter.DefaultConfig(),
		cached: make(map[string]bool)}
}

// Result is a task's host-side output (empty for ToDRAM tasks).
type Result struct {
	Cols [][]int64
}

// NumRows returns the host-output row count.
func (r *Result) NumRows() int {
	if r == nil || len(r.Cols) == 0 {
		return 0
	}
	return len(r.Cols[0])
}

// Run executes one task.
func (e *Executor) Run(t *Task) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	tt := TaskTrace{Name: t.Name, Table: t.Table, Op: t.Op.Kind.String()}
	// Lifecycle cursor: stages run sequentially on this goroutine, so
	// each Mark attributes the region since the previous one, minus the
	// flash time (device read / cache hit / coalesce wait) recorded
	// inside it. Error returns leave the trailing region unattributed.
	cu := obs.LifecycleFrom(e.Ctx).Cursor()
	span := e.Obs.SpanUnder(e.ObsParent, "task "+t.Name, obs.StageTask)
	defer func() {
		e.Trace.Tasks = append(e.Trace.Tasks, tt)
		if p := e.DRAM.Peak(); p > e.Trace.DRAMPeak {
			e.Trace.DRAMPeak = p
		}
		e.finishTask(span, &tt)
	}()

	tab, err := e.Store.Table(t.Table)
	if err != nil {
		return nil, err
	}

	// Fused path: aggregation scans run the whole pipeline in one pass
	// per 32-row vector instead of the staged flow below (see fused.go).
	if e.fusedEligible(t) {
		res, err := e.runFused(t, tab, &tt, span, cu)
		if err != nil {
			return nil, err
		}
		tt.HostRows = int64(res.NumRows())
		return res, nil
	}

	// 1. Incoming mask.
	loadMask := func(src MaskSource) (*bitvec.Mask, error) {
		obj, err := e.DRAM.Get(src.Name)
		if err != nil {
			return nil, err
		}
		if obj.Kind != mem.KindMask {
			return nil, fmt.Errorf("tabletask %q: maskSrc %q is not a mask", t.Name, src.Name)
		}
		m := obj.Mask
		if m.Len() != tab.NumRows {
			return nil, fmt.Errorf("tabletask %q: mask %q covers %d rows, table has %d",
				t.Name, src.Name, m.Len(), tab.NumRows)
		}
		if src.Negate {
			m = m.Clone()
			m.Not()
		}
		return m, nil
	}
	var mask *bitvec.Mask
	if t.MaskSrc.Kind == MaskDRAM {
		m, err := loadMask(t.MaskSrc)
		if err != nil {
			return nil, err
		}
		mask = m
	}
	for _, src := range t.MaskAnd {
		m, err := loadMask(src)
		if err != nil {
			return nil, err
		}
		if mask == nil {
			mask = m
		} else {
			if mask == m {
				continue
			}
			mask = mask.Clone()
			mask.And(m)
		}
	}

	// 1b. MVCC delete mask: narrow the scan to rows alive at the
	// query's snapshot before any selection work runs.
	if del := e.DeleteMasks[t.Table]; del != nil {
		if del.Len() != tab.NumRows {
			return nil, fmt.Errorf("tabletask %q: delete mask covers %d rows, table has %d",
				t.Name, del.Len(), tab.NumRows)
		}
		vis := del.Clone()
		vis.Not()
		if mask == nil {
			mask = vis
		} else {
			mask = mask.Clone()
			mask.And(vis)
		}
	}

	// 2. Row Selector.
	selSpan := span.Child("row-select", obs.StageRowSel)
	sel := t.RowSel
	if sel == nil {
		sel = &Program{}
	}
	mask, selStats, err := sel.RunCtx(e.Ctx, tab, mask, flash.Aquoman)
	if err != nil {
		selSpan.End()
		return nil, err
	}
	tt.RowsIn = selStats.RowsIn
	tt.RowsSelected = selStats.RowsSelected
	tt.PagesRead += selStats.PagesRead
	tt.PagesSkipped += selStats.PagesSkipped
	tt.PagesPruned += selStats.PagesPruned
	tt.EncBytesSaved += selStats.EncBytesSaved
	for c := range selStats.EncDecoded {
		tt.EncDecoded[c] += selStats.EncDecoded[c]
	}
	tt.SelectorCPs = sel.NumCPs()

	// 2b. Regular-expression accelerator: pre-process string columns into
	// one-bit columns refining the mask (the heap is streamed once into
	// the 1 MB cache).
	for _, rf := range t.RegexFilters {
		if err := e.runRegexFilter(t, tab, rf, mask, &tt); err != nil {
			selSpan.End()
			return nil, err
		}
	}
	tt.RowsSelected = int64(mask.Count())
	selSpan.SetInt("rows_in", tt.RowsIn)
	selSpan.SetInt("rows_selected", tt.RowsSelected)
	selSpan.SetInt("pages_read", tt.PagesRead)
	selSpan.SetInt("pages_skipped", tt.PagesSkipped)
	selSpan.SetInt("pages_pruned", tt.PagesPruned)
	selSpan.End()
	cu.Mark(obs.StateRowSel)

	// 3. Table Reader: stream the input columns for selected rows,
	// skipping fully-masked pages.
	readSpan := span.Child("table-read", obs.StageFlash)
	pagesBefore := tt.PagesRead
	selRows := mask.Rows()
	inputs := make([][]int64, 0, len(t.Stream)+len(t.Gathers))
	for _, name := range t.Stream {
		vals, rs, err := e.streamColumn(tab, name, mask, len(selRows))
		if err != nil {
			readSpan.End()
			return nil, fmt.Errorf("tabletask %q: %w", t.Name, err)
		}
		tt.addReader(rs)
		inputs = append(inputs, vals)
	}
	// 3b. Gathers (RowID chases).
	for _, ga := range t.Gathers {
		base, rs, err := e.streamColumn(tab, ga.BaseCol, mask, len(selRows))
		if err != nil {
			readSpan.End()
			return nil, fmt.Errorf("tabletask %q gather %q: %w", t.Name, ga.Name, err)
		}
		tt.addReader(rs)
		vals := base
		for _, hop := range ga.Hops {
			vals, err = e.gatherHop(hop, vals, &tt)
			if err != nil {
				readSpan.End()
				return nil, fmt.Errorf("tabletask %q gather %q: %w", t.Name, ga.Name, err)
			}
		}
		inputs = append(inputs, vals)
	}
	readSpan.SetInt("columns", int64(len(t.Stream)+len(t.Gathers)))
	readSpan.SetInt("pages_read", tt.PagesRead-pagesBefore)
	readSpan.SetInt("gather_dram_reads", tt.GatherDRAMReads)
	readSpan.SetInt("gather_flash_reads", tt.GatherFlashReads)
	readSpan.End()
	cu.Mark(obs.StateRead)

	// 4. Row Transformation Systolic Array.
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	outputs := inputs
	if t.Transform != nil {
		trSpan := span.Child("transform", obs.StageTransform)
		mapped, err := systolic.Compile(t.Transform, len(inputs), systolic.DefaultConfig())
		if err != nil {
			trSpan.End()
			return nil, fmt.Errorf("tabletask %q: transform: %w", t.Name, err)
		}
		tt.TransformerPEs = mapped.NumPEs()
		tt.WidenedRegs = mapped.WidenedRegs
		outputs, err = systolic.NewMachine(mapped).Transform(inputs)
		if err != nil {
			trSpan.End()
			return nil, fmt.Errorf("tabletask %q: transform run: %w", t.Name, err)
		}
		trSpan.SetInt("rows", int64(len(selRows)))
		trSpan.SetInt("pes", int64(tt.TransformerPEs))
		trSpan.End()
	}
	cu.Mark(obs.StateSystolic)
	tt.RowsTransformed = int64(len(selRows))

	// 5. Mask Reader: apply the transformer-computed sub-predicate.
	if t.FilterOut >= 0 {
		pred := outputs[t.FilterOut]
		var kept [][]int64
		for ci, c := range outputs {
			if ci == t.FilterOut {
				continue
			}
			dst := c[:0:0]
			for r, v := range c {
				if pred[r] != 0 {
					dst = append(dst, v)
				}
			}
			kept = append(kept, dst)
		}
		outputs = kept
	}
	nRows := 0
	if len(outputs) > 0 {
		nRows = len(outputs[0])
	}
	tt.RowsToSwissknife = int64(nRows)

	// 6. SQL Swissknife.
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	skSpan := span.Child("swissknife "+t.Op.Kind.String(), obs.StageSwissknife)
	res, err := e.runOperator(t, tab, outputs, &tt, skSpan)
	if err != nil {
		skSpan.End()
		return nil, err
	}
	tt.HostRows = int64(res.NumRows())
	skSpan.SetInt("rows_in", tt.RowsToSwissknife)
	skSpan.SetInt("host_rows", tt.HostRows)
	if tt.Groups > 0 {
		skSpan.SetInt("groups", tt.Groups)
		skSpan.SetInt("spilled_rows", tt.SpilledRows)
		skSpan.SetInt("spilled_groups", tt.SpilledGroups)
	}
	skSpan.End()
	switch t.Op.Kind {
	case OpSort, OpMerge, OpSortMerge:
		cu.Mark(obs.StateSorter)
	default:
		cu.Mark(obs.StateSwissknife)
	}
	return res, nil
}

// finishTask copies the task trace onto its span and mirrors the
// counters into the metrics registry.
func (e *Executor) finishTask(span *obs.Span, tt *TaskTrace) {
	span.SetInt("rows_in", tt.RowsIn)
	span.SetInt("rows_selected", tt.RowsSelected)
	span.SetInt("rows_to_swissknife", tt.RowsToSwissknife)
	span.SetInt("pages_read", tt.PagesRead)
	span.SetInt("pages_skipped", tt.PagesSkipped)
	span.SetInt("pages_pruned", tt.PagesPruned)
	span.SetInt("enc_bytes_saved", tt.EncBytesSaved)
	span.SetInt("host_rows", tt.HostRows)
	span.End()
	if e.Obs == nil || e.Obs.Reg == nil {
		return
	}
	reg := e.Obs.Reg
	reg.Counter("tabletask_tasks_total", "op", tt.Op).Inc()
	reg.Counter("tabletask_rows_in_total").Add(tt.RowsIn)
	reg.Counter("tabletask_rows_selected_total").Add(tt.RowsSelected)
	reg.Counter("tabletask_rows_to_swissknife_total").Add(tt.RowsToSwissknife)
	reg.Counter("tabletask_pages_read_total").Add(tt.PagesRead)
	reg.Counter("tabletask_pages_skipped_total").Add(tt.PagesSkipped)
	reg.Counter("enc_pages_pruned_total").Add(tt.PagesPruned)
	reg.Counter("enc_bytes_saved_total").Add(tt.EncBytesSaved)
	for c := enc.Dict; int(c) < enc.NumCodecs; c++ {
		reg.Counter("enc_decoded_pages_total", "codec", c.String()).Add(tt.EncDecoded[c])
	}
	reg.Counter("tabletask_gather_dram_reads_total").Add(tt.GatherDRAMReads)
	reg.Counter("tabletask_gather_flash_reads_total").Add(tt.GatherFlashReads)
	reg.Counter("swissknife_groups_total").Add(tt.Groups)
	reg.Counter("swissknife_spilled_rows_total").Add(tt.SpilledRows)
	reg.Counter("swissknife_spilled_groups_total").Add(tt.SpilledGroups)
	reg.Counter("sorter_elems_total").Add(tt.SorterElems)
	reg.Counter("sorter_dram_bytes_total").Add(tt.SorterDRAMBytes)
	reg.Counter("sorter_sram_bytes_total").Add(tt.SorterSRAMBytes)
	reg.Counter("sorter_merge_passes_total").Add(tt.SorterMergePasses)
	if tt.Groups > 0 {
		reg.Histogram("swissknife_bucket_occupancy").Observe(tt.ResidentGroups)
	}
	reg.Gauge("aquoman_dram_peak_bytes").SetMax(e.DRAM.Peak())
}

// runRegexFilter applies one accelerator pattern to the mask in place.
func (e *Executor) runRegexFilter(t *Task, tab *col.Table, rf RegexFilter, mask *bitvec.Mask, tt *TaskTrace) error {
	ci, err := tab.Column(rf.Column)
	if err != nil {
		return fmt.Errorf("tabletask %q: regex filter: %w", t.Name, err)
	}
	if !regexcc.FitsAccelerator(ci.HeapBytes()) {
		return fmt.Errorf("tabletask %q: string heap of %q (%d bytes) exceeds the %d-byte regex cache",
			t.Name, rf.Column, ci.HeapBytes(), regexcc.CacheBytes)
	}
	pat := regexcc.Compile(rf.Pattern)
	// Stream the offset column (page-skipped) and the heap (once, into
	// the accelerator cache).
	reader := col.NewPagedReader(ci, flash.Aquoman)
	reader.SetContext(e.Ctx)
	defer reader.Close()
	heap, err := ci.NewHeapReaderCtx(e.Ctx, flash.Aquoman)
	if err != nil {
		return err
	}
	var vals [bitvec.VecSize]int64
	nVecs := mask.NumVecs()
	for vec := 0; vec < nVecs; vec++ {
		if mask.VecAllZero(vec) {
			reader.SkipVec(vec)
			continue
		}
		n, err := reader.ReadVec(vec, vals[:])
		if err != nil {
			return err
		}
		base := vec * bitvec.VecSize
		for j := 0; j < n; j++ {
			row := base + j
			if !mask.Get(row) {
				continue
			}
			if pat.Match(heap.Str(vals[j])) == rf.Negate {
				mask.Clear(row)
			}
		}
	}
	tt.addReader(reader.ReaderStats)
	tt.PagesRead += (ci.HeapBytes() + flash.PageSize - 1) / flash.PageSize
	return nil
}

// RowIDCol is the implicit row-index pseudo-column (Sec. VI-D: "such a
// column is implicit and does not need to be stored in DRAM or flash");
// streaming it costs no flash traffic.
const RowIDCol = "@rowid"

// streamColumn reads one base-table column for the selected rows through
// the page buffer, honouring page skipping.
func (e *Executor) streamColumn(tab *col.Table, name string, mask *bitvec.Mask, nSel int) ([]int64, col.ReaderStats, error) {
	var none col.ReaderStats
	if name == RowIDCol {
		out := make([]int64, 0, nSel)
		mask.ForEach(func(r int) { out = append(out, int64(r)) })
		return out, none, nil
	}
	ci, err := tab.Column(name)
	if err != nil {
		return nil, none, err
	}
	r := col.NewPagedReader(ci, flash.Aquoman)
	r.SetContext(e.Ctx)
	defer r.Close()
	out := make([]int64, 0, nSel)
	var vals [bitvec.VecSize]int64
	nVecs := mask.NumVecs()
	for vec := 0; vec < nVecs; vec++ {
		if mask.VecAllZero(vec) {
			r.SkipVec(vec)
			continue
		}
		n, err := r.ReadVec(vec, vals[:])
		if err != nil {
			return nil, none, err
		}
		bits := mask.VecBits(vec)
		for j := 0; j < n; j++ {
			if bits&(1<<uint(j)) != 0 {
				out = append(out, vals[j])
			}
		}
	}
	return out, r.ReaderStats, nil
}

// gatherHop chases one RowID hop for every pending value. Small
// dimensions are cached whole in AQUOMAN DRAM; larger ones are fetched
// with one sequential masked scan of the referenced column into a
// transient DRAM table (rowid -> value), which is how the accelerator
// avoids per-row random flash reads — its DRAM exists precisely to hold
// such per-join value tables (Sec. VI-D). DRAM capacity pressure from the
// transient table raises ErrCapacity and suspends the query.
func (e *Executor) gatherHop(hop GatherHop, rows []int64, tt *TaskTrace) ([]int64, error) {
	tab, err := e.Store.Table(hop.Table)
	if err != nil {
		return nil, err
	}
	ci, err := tab.Column(hop.Column)
	if err != nil {
		return nil, err
	}
	cacheName := "cache:" + hop.Table + "/" + hop.Column
	if tab.NumRows <= dramCacheRowLimit {
		if !e.cached[cacheName] {
			vals, err := ci.ReadAllCtx(e.Ctx, flash.Aquoman)
			if err != nil {
				return nil, err
			}
			if _, err := e.DRAM.PutColumn(cacheName, vals); err != nil {
				return nil, err
			}
			e.cached[cacheName] = true
		}
		obj, err := e.DRAM.Get(cacheName)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(rows))
		for i, r := range rows {
			if r < 0 || int(r) >= len(obj.Col) {
				return nil, fmt.Errorf("gather rowid %d out of range for %s", r, hop.Table)
			}
			out[i] = obj.Col[r]
		}
		tt.GatherDRAMReads += int64(len(rows))
		return out, nil
	}

	// Referenced-row mask, then one sequential masked pass.
	refMask := bitvec.New(tab.NumRows)
	for _, r := range rows {
		if r < 0 || int(r) >= tab.NumRows {
			return nil, fmt.Errorf("gather rowid %d out of range for %s", r, hop.Table)
		}
		refMask.Set(int(r))
	}
	reader := col.NewPagedReader(ci, flash.Aquoman)
	reader.SetContext(e.Ctx)
	defer reader.Close()
	lookup := make(map[int64]int64, refMask.Count())
	var vals [bitvec.VecSize]int64
	nVecs := refMask.NumVecs()
	for vec := 0; vec < nVecs; vec++ {
		if refMask.VecAllZero(vec) {
			reader.SkipVec(vec)
			continue
		}
		n, err := reader.ReadVec(vec, vals[:])
		if err != nil {
			return nil, err
		}
		bits := refMask.VecBits(vec)
		base := vec * bitvec.VecSize
		for j := 0; j < n; j++ {
			if bits&(1<<uint(j)) != 0 {
				lookup[int64(base+j)] = vals[j]
			}
		}
	}
	tt.addReader(reader.ReaderStats)
	// The transient value table occupies AQUOMAN DRAM for the task's
	// duration: 8 bytes per referenced row (index + 4B value).
	tmpName := fmt.Sprintf("gather:%s/%s#%d", hop.Table, hop.Column, len(e.Trace.Tasks))
	if _, err := e.DRAM.PutColumn(tmpName, make([]int64, 2*len(lookup))); err != nil {
		return nil, err
	}
	defer e.DRAM.Free(tmpName)
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = lookup[r]
	}
	tt.GatherDRAMReads += int64(len(rows))
	return out, nil
}

func (e *Executor) runOperator(t *Task, tab *col.Table, outputs [][]int64, tt *TaskTrace, span *obs.Span) (*Result, error) {
	switch t.Op.Kind {
	case OpNop:
		if t.Out.Kind == ToHost {
			return &Result{Cols: outputs}, nil
		}
		kvs, err := toKVs(outputs)
		if err != nil {
			return nil, fmt.Errorf("tabletask %q: %w", t.Name, err)
		}
		if !sorter.IsSorted(kvs) {
			return nil, fmt.Errorf("tabletask %q: NOP to DRAM requires a key-sorted stream (use SORT)", t.Name)
		}
		if _, err := e.DRAM.PutKV(t.Out.Name, kvs, int64(e.Sorter.ElemBytes)); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case OpMask:
		target, err := e.Store.Table(t.Op.MaskTable)
		if err != nil {
			return nil, err
		}
		m := bitvec.New(target.NumRows)
		for _, v := range outputs[0] {
			if v < 0 || int(v) >= target.NumRows {
				return nil, fmt.Errorf("tabletask %q: rowid %d outside %q", t.Name, v, t.Op.MaskTable)
			}
			m.Set(int(v))
		}
		if _, err := e.DRAM.PutMask(t.Out.Name, m); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case OpSort, OpMerge, OpSortMerge:
		return e.runSortMerge(t, tab, outputs, tt, span)

	case OpAggregate:
		acc, err := swissknife.NewAggregate(t.Op.Aggs)
		if err != nil {
			return nil, err
		}
		row := make([]int64, len(outputs))
		n := len(outputs[0])
		for r := 0; r < n; r++ {
			for c := range outputs {
				row[c] = outputs[c][r]
			}
			if err := acc.Consume(row); err != nil {
				return nil, err
			}
		}
		aggs, _ := acc.Result()
		cols := make([][]int64, len(aggs))
		for i, v := range aggs {
			cols[i] = []int64{v}
		}
		return &Result{Cols: cols}, nil

	case OpGroupBy:
		acc, err := swissknife.NewGroupBy(t.Op.GroupCfg, t.Op.Keys, t.Op.Attrs, t.Op.Aggs)
		if err != nil {
			return nil, err
		}
		n := len(outputs[0])
		keys := make([]int64, t.Op.Keys)
		attrs := make([]int64, t.Op.Attrs)
		vals := make([]int64, len(t.Op.Aggs))
		for r := 0; r < n; r++ {
			for i := 0; i < t.Op.Keys; i++ {
				keys[i] = outputs[i][r]
			}
			for i := 0; i < t.Op.Attrs; i++ {
				attrs[i] = outputs[t.Op.Keys+i][r]
			}
			for i := range vals {
				vals[i] = outputs[t.Op.Keys+t.Op.Attrs+i][r]
			}
			if err := acc.Consume(keys, attrs, vals); err != nil {
				return nil, fmt.Errorf("tabletask %q: %w", t.Name, err)
			}
		}
		st := acc.Stats()
		tt.Groups = st.Groups
		tt.SpilledRows = st.SpilledRows
		tt.SpilledGroups = st.SpilledGroups
		tt.ResidentGroups = st.ResidentGroups
		rows := acc.Results()
		width := t.Op.Keys + t.Op.Attrs + len(t.Op.Aggs)
		cols := make([][]int64, width)
		for _, row := range rows {
			for c := 0; c < width; c++ {
				cols[c] = append(cols[c], row[c])
			}
		}
		return &Result{Cols: cols}, nil

	case OpTopK:
		tk := swissknife.NewTopK(t.Op.K, sorter.VecElems)
		n := len(outputs[0])
		for r := 0; r < n; r++ {
			tk.Push(sorter.KV{Key: outputs[0][r], Val: outputs[1][r]})
		}
		top := tk.Results()
		cols := make([][]int64, 2)
		for _, kv := range top {
			cols[0] = append(cols[0], kv.Key)
			cols[1] = append(cols[1], kv.Val)
		}
		return &Result{Cols: cols}, nil

	default:
		return nil, fmt.Errorf("tabletask %q: unknown operator %d", t.Name, t.Op.Kind)
	}
}

func (e *Executor) runSortMerge(t *Task, tab *col.Table, outputs [][]int64, tt *TaskTrace, parent *obs.Span) (*Result, error) {
	kvs, err := toKVs(outputs)
	if err != nil {
		return nil, fmt.Errorf("tabletask %q: %w", t.Name, err)
	}
	ss := sorter.NewStreaming(e.Sorter)
	sortSpan := parent.Child("streaming-sort", obs.StageSorter)
	defer func() {
		st := ss.Stats()
		tt.SorterMergePasses += st.SRAMMergePasses + st.DRAMMergePasses
		sortSpan.SetInt("elems", st.ElemsIn)
		sortSpan.SetInt("runs", st.Runs)
		sortSpan.SetInt("sram_bytes", st.SRAMBytes)
		sortSpan.SetInt("dram_bytes", st.DRAMBytes)
		sortSpan.SetInt("merge_passes", st.SRAMMergePasses+st.DRAMMergePasses)
		sortSpan.End()
	}()
	var runs [][]sorter.KV
	if t.Op.Kind == OpMerge {
		if !sorter.IsSorted(kvs) {
			return nil, fmt.Errorf("tabletask %q: MERGE input not sorted", t.Name)
		}
		runs = [][]sorter.KV{kvs}
	} else {
		runs = ss.SortRuns(kvs)
	}
	tt.SorterElems += int64(len(kvs))

	if t.Op.Kind == OpSort {
		sorted := ss.MergeRuns(runs)
		st := ss.Stats()
		tt.SorterDRAMBytes += st.DRAMBytes
		tt.SorterSRAMBytes += st.SRAMBytes
		if t.Out.Kind == ToHost {
			cols := make([][]int64, 2)
			for _, kv := range sorted {
				cols[0] = append(cols[0], kv.Key)
				cols[1] = append(cols[1], kv.Val)
			}
			return &Result{Cols: cols}, nil
		}
		if _, err := e.DRAM.PutKV(t.Out.Name, sorted, int64(e.Sorter.ElemBytes)); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}

	// MERGE / SORT_MERGE against the DRAM object. The DRAM side is
	// re-streamed once per run (Sec. VI-C: "at the cost of re-streaming
	// the first one for every 1GB of data stream").
	obj, err := e.DRAM.Get(t.Op.With)
	if err != nil {
		return nil, err
	}
	if obj.Kind != mem.KindKV {
		return nil, fmt.Errorf("tabletask %q: With %q is not a KV table", t.Name, t.Op.With)
	}
	var matched []sorter.KV
	for _, run := range runs {
		matched = append(matched, swissknife.SemiJoinSorted(run, obj.KVs)...)
		tt.MergeElems += int64(len(run)) + int64(len(obj.KVs))
		tt.SorterDRAMBytes += int64(len(obj.KVs)) * int64(e.Sorter.ElemBytes)
	}
	st := ss.Stats()
	tt.SorterDRAMBytes += st.DRAMBytes
	tt.SorterSRAMBytes += st.SRAMBytes
	if t.Op.FreeWith {
		e.DRAM.Free(t.Op.With)
	}
	switch t.Out.Kind {
	case ToHost:
		cols := make([][]int64, 2)
		for _, kv := range matched {
			cols[0] = append(cols[0], kv.Key)
			cols[1] = append(cols[1], kv.Val)
		}
		return &Result{Cols: cols}, nil
	default:
		// The matched values are RowIDs of this task's table; leave them
		// as a mask for the next task's maskSrc.
		m := bitvec.New(tab.NumRows)
		for _, kv := range matched {
			if kv.Val < 0 || int(kv.Val) >= tab.NumRows {
				return nil, fmt.Errorf("tabletask %q: matched rowid %d outside %q",
					t.Name, kv.Val, t.Table)
			}
			m.Set(int(kv.Val))
		}
		if _, err := e.DRAM.PutMask(t.Out.Name, m); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
}

func toKVs(outputs [][]int64) ([]sorter.KV, error) {
	if len(outputs) != 2 {
		return nil, fmt.Errorf("expected (key,value) stream, got %d columns", len(outputs))
	}
	kvs := make([]sorter.KV, len(outputs[0]))
	for i := range kvs {
		kvs[i] = sorter.KV{Key: outputs[0][i], Val: outputs[1][i]}
	}
	return kvs, nil
}
