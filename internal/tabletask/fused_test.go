package tabletask

import (
	"fmt"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
	"aquoman/internal/rowsel"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
)

// scanStore builds a single lineitem-shaped table under the given column
// encoding: a long-runs group key (RLE-friendly), a narrow-range quantity
// (FOR-friendly), and price/discount value columns.
func scanStore(tb testing.TB, sel enc.Selection, n int) *col.Store {
	tb.Helper()
	s := col.NewStore(flash.NewDevice())
	s.DefaultEncoding = sel
	b := s.NewTable(col.Schema{Name: "lineitem", Cols: []col.ColDef{
		{Name: "flag", Typ: col.Int32},
		{Name: "qty", Typ: col.Int32},
		{Name: "price", Typ: col.Decimal},
		{Name: "disc", Typ: col.Decimal},
	}})
	run := n/4 + 1
	for i := 0; i < n; i++ {
		b.Append(i/run, 1+i%50, int64(100+(i*7)%900), int64(i%11))
	}
	if _, err := b.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return s
}

// q6ShapedTask is the TPC-H q6 pipeline shape: two predicates, two
// streamed columns, a multiply transform, and a scalar SUM.
func q6ShapedTask(qtyGT, discGT int64) *Task {
	return &Task{
		Name:  "fused-q6",
		Table: "lineitem",
		RowSel: &Program{Preds: []rowsel.ColPred{
			predGT("qty", qtyGT),
			predGT("disc", discGT),
		}},
		Stream:    []string{"price", "disc"},
		Transform: []systolic.Expr{systolic.Mul(systolic.In(0), systolic.In(1))},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpAggregate, Aggs: []swissknife.AggKind{swissknife.AggSum}},
		Out:       Output{Kind: ToHost},
	}
}

// q1ShapedTask is the TPC-H q1 pipeline shape: an unfiltered group-by
// with per-group SUMs over two value columns.
func q1ShapedTask() *Task {
	return &Task{
		Name:      "fused-q1",
		Table:     "lineitem",
		Stream:    []string{"flag", "qty", "price"},
		FilterOut: NoFilter,
		Op: OpSpec{Kind: OpGroupBy, Keys: 1,
			Aggs: []swissknife.AggKind{swissknife.AggSum, swissknife.AggSum}},
		Out: Output{Kind: ToHost},
	}
}

// kernelTask is the page-kernel shape: no predicates, no transform, one
// streamed encoded column, so whole RLE/FOR pages fold through
// enc.AggregatePage without expanding.
func kernelTask() *Task {
	return &Task{
		Name:      "fused-kernel",
		Table:     "lineitem",
		Stream:    []string{"qty"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpAggregate, Aggs: []swissknife.AggKind{swissknife.AggSum}},
		Out:       Output{Kind: ToHost},
	}
}

// fusedScanFor builds a ready-to-scan fusedScan for direct loop testing.
func fusedScanFor(tb testing.TB, e *Executor, task *Task) *fusedScan {
	tb.Helper()
	if err := task.Validate(); err != nil {
		tb.Fatal(err)
	}
	if !e.fusedEligible(task) {
		tb.Fatal("task is not fused-eligible")
	}
	tab, err := e.Store.Table(task.Table)
	if err != nil {
		tb.Fatal(err)
	}
	fs := &fusedScan{e: e, t: task, tab: tab, tt: &TaskTrace{Name: task.Name}}
	if err := fs.setup(); err != nil {
		tb.Fatal(err)
	}
	return fs
}

// The tentpole's allocation gate: after one warmup pass (pool checkouts,
// group inserts, scratch growth), re-scanning the whole table through the
// fused q1/q6 pipelines performs zero heap allocations per morsel, on
// every codec. This is what lets 32 concurrent streams scale without
// GC churn (see BENCH_scale.json and the scalebench CI gate).
func TestFusedScanZeroAllocsSteadyState(t *testing.T) {
	for _, sel := range []enc.Selection{enc.SelRaw, enc.SelDict, enc.SelRLE, enc.SelFOR} {
		for _, tc := range []struct {
			name string
			task *Task
		}{
			{"q6", q6ShapedTask(25, 5)},
			{"q1", q1ShapedTask()},
		} {
			t.Run(fmt.Sprintf("%s/%s", sel, tc.name), func(t *testing.T) {
				s := scanStore(t, sel, 4096)
				e := newExec(t, s)
				fs := fusedScanFor(t, e, tc.task)
				defer fs.close()
				if err := fs.scan(nil); err != nil { // warmup
					t.Fatal(err)
				}
				allocs := testing.AllocsPerRun(5, func() {
					if err := fs.scan(nil); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Fatalf("steady-state fused scan allocates %.1f times per pass, want 0", allocs)
				}
			})
		}
	}
}

// The whole-page aggregation kernel is allocation-free too: RLE runs and
// FOR deltas fold into the accelerator without ever expanding the page.
func TestFusedPageKernelZeroAllocs(t *testing.T) {
	for _, sel := range []enc.Selection{enc.SelRLE, enc.SelFOR} {
		t.Run(sel.String(), func(t *testing.T) {
			s := scanStore(t, sel, 4096)
			e := newExec(t, s)
			fs := fusedScanFor(t, e, kernelTask())
			defer fs.close()
			if !fs.pageKernelOK() {
				t.Fatal("kernel task did not qualify for the page path")
			}
			if err := fs.scanPages(nil); err != nil { // warmup
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if err := fs.scanPages(nil); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("page-kernel scan allocates %.1f times per pass, want 0", allocs)
			}
		})
	}
}

// diffTaskRuns executes one task on the fused and staged paths over the
// same store contents and requires cell-exact results plus identical
// row/page accounting.
func diffTaskRuns(t *testing.T, s *col.Store, task *Task) {
	t.Helper()
	fusedExec := newExec(t, s)
	fusedRes, err := fusedExec.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	stagedExec := newExec(t, s)
	stagedExec.DisableFusion = true
	stagedRes, err := stagedExec.Run(task)
	if err != nil {
		t.Fatal(err)
	}

	if len(fusedRes.Cols) != len(stagedRes.Cols) {
		t.Fatalf("fused %d cols, staged %d cols", len(fusedRes.Cols), len(stagedRes.Cols))
	}
	for c := range fusedRes.Cols {
		if len(fusedRes.Cols[c]) != len(stagedRes.Cols[c]) {
			t.Fatalf("col %d: fused %d rows, staged %d rows", c,
				len(fusedRes.Cols[c]), len(stagedRes.Cols[c]))
		}
		for r := range fusedRes.Cols[c] {
			if fusedRes.Cols[c][r] != stagedRes.Cols[c][r] {
				t.Fatalf("col %d row %d: fused %d, staged %d", c, r,
					fusedRes.Cols[c][r], stagedRes.Cols[c][r])
			}
		}
	}

	ft, st := fusedExec.Trace.Tasks[0], stagedExec.Trace.Tasks[0]
	type parity struct {
		name         string
		fused, stage int64
	}
	for _, p := range []parity{
		{"RowsIn", ft.RowsIn, st.RowsIn},
		{"RowsSelected", ft.RowsSelected, st.RowsSelected},
		{"RowsTransformed", ft.RowsTransformed, st.RowsTransformed},
		{"RowsToSwissknife", ft.RowsToSwissknife, st.RowsToSwissknife},
		{"PagesRead", ft.PagesRead, st.PagesRead},
		{"PagesSkipped", ft.PagesSkipped, st.PagesSkipped},
		{"PagesPruned", ft.PagesPruned, st.PagesPruned},
		{"EncBytesSaved", ft.EncBytesSaved, st.EncBytesSaved},
		{"Groups", ft.Groups, st.Groups},
		{"SpilledRows", ft.SpilledRows, st.SpilledRows},
	} {
		if p.fused != p.stage {
			t.Errorf("%s: fused %d, staged %d", p.name, p.fused, p.stage)
		}
	}
}

// FuzzFusedScan holds the fused path cell-exact against the staged
// executor over random codecs, row counts, predicate thresholds and
// pipeline shapes.
func FuzzFusedScan(f *testing.F) {
	f.Add(uint8(0), uint16(300), int64(25), int64(5), uint8(0))
	f.Add(uint8(1), uint16(77), int64(0), int64(11), uint8(1))
	f.Add(uint8(2), uint16(2048), int64(49), int64(0), uint8(2))
	f.Add(uint8(3), uint16(31), int64(-1), int64(3), uint8(0))
	f.Add(uint8(2), uint16(1025), int64(10), int64(8), uint8(2))
	f.Fuzz(func(t *testing.T, selRaw uint8, n uint16, qtyGT, discGT int64, shape uint8) {
		sel := enc.Selection(selRaw % 4)
		rows := int(n%4096) + 1
		s := scanStore(t, sel, rows)
		var task *Task
		switch shape % 3 {
		case 0:
			task = q6ShapedTask(qtyGT%60, discGT%12)
		case 1:
			task = q1ShapedTask()
		default:
			task = kernelTask()
		}
		diffTaskRuns(t, s, task)
	})
}
