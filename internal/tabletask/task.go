// Package tabletask implements AQUOMAN's programming model (Sec. V): the
// Table Task — one streaming pass over a base table through the fixed
// Row Selector → Row Transformer → SQL Swissknife pipeline — and the
// sequential executor that runs a query's Table Tasks against the flash
// device and AQUOMAN DRAM, collecting the trace the timing model consumes.
package tabletask

import (
	"fmt"

	"aquoman/internal/rowsel"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
)

// Program re-exports the Row Selection Program type for task authors.
type Program = rowsel.Program

// NoFilter marks a task without a transformer-computed sub-predicate.
// Hand-authored tasks must set FilterOut to NoFilter explicitly (the zero
// value selects output 0 as the filter).
const NoFilter = -1

// MaskKind selects where a task's row-processing mask comes from.
type MaskKind int

const (
	// MaskFull processes every row (no incoming mask).
	MaskFull MaskKind = iota
	// MaskDRAM reads the mask left in AQUOMAN DRAM by a previous task.
	MaskDRAM
)

// MaskSource is the task's maskSrc field.
type MaskSource struct {
	Kind MaskKind
	Name string // DRAM object name for MaskDRAM
	// Negate inverts the mask (anti-join hand-off).
	Negate bool
}

// RegexFilter is one string predicate for the regex accelerator.
type RegexFilter struct {
	Column  string
	Pattern string
	Negate  bool
}

// GatherHop is one step of a RowID chase: read Column of Table at the
// current row index. Intermediate hops read materialized RowID columns;
// the final hop reads the value column.
type GatherHop struct {
	Table  string
	Column string
}

// Gather fetches one extra transformer input per selected row by chasing
// materialized RowID columns from the base table — the paper's
// "constructing the join result using the materialized RowIDs on flash"
// (Sec. VI-D). BaseCol is a RowID column on the task's table.
type Gather struct {
	Name    string
	BaseCol string
	Hops    []GatherHop
}

// OpKind selects the SQL Swissknife operator (Sec. V lists TOPK, SORT,
// AGGREGATE_GROUPBY, AGGREGATE, NOP, MERGE and SORT_MERGE; OpMask is the
// NOP variant that materializes an output RowID column as a row mask of
// another table, the maskSrc hand-off of Fig. 5).
type OpKind int

const (
	OpNop OpKind = iota
	OpMask
	OpSort
	OpMerge
	OpSortMerge
	OpAggregate
	OpGroupBy
	OpTopK
)

func (k OpKind) String() string {
	return [...]string{"NOP", "MASK", "SORT", "MERGE", "SORT_MERGE",
		"AGGREGATE", "AGGREGATE_GROUPBY", "TOPK"}[k]
}

// OpSpec configures the Swissknife for one task.
type OpSpec struct {
	Kind OpKind
	// MaskTable names the table whose rows output column 0 indexes
	// (OpMask).
	MaskTable string
	// With names the DRAM object consumed by MERGE / SORT_MERGE.
	With string
	// FreeWith garbage-collects With after consumption (the paper frees
	// sort intermediates immediately; default true via NewMergeSpec).
	FreeWith bool
	// Keys/Attrs split the transformer outputs for AGGREGATE_GROUPBY:
	// the first Keys outputs are the group identifier, the next Attrs are
	// functionally dependent carried attributes, the rest are aggregate
	// inputs matching Aggs.
	Keys  int
	Attrs int
	Aggs  []swissknife.AggKind
	// K is the TOPK count.
	K int
	// GroupCfg overrides the group-by hardware geometry (ablations).
	GroupCfg swissknife.GroupByConfig
}

// OutKind selects the task output destination.
type OutKind int

const (
	// ToHost DMAs the result to the host.
	ToHost OutKind = iota
	// ToDRAM leaves an intermediate object in AQUOMAN DRAM.
	ToDRAM
)

// Output is the task's output field.
type Output struct {
	Kind OutKind
	Name string // DRAM object name for ToDRAM
}

// Task is one Table Task.
type Task struct {
	Name  string
	Table string
	// MaskSrc seeds the row-processing mask.
	MaskSrc MaskSource
	// MaskAnd intersects additional DRAM masks into the seed (composing a
	// merge-produced chain with semi/anti-join masks).
	MaskAnd []MaskSource
	// RowSel is the Row Selection Program (nil = select all).
	RowSel *Program
	// RegexFilters are evaluated by the Table Reader's regular-expression
	// accelerator (Sec. VI-B): each pre-processes a variable-sized string
	// column into a one-bit column that refines the row mask. Only legal
	// when the column's heap fits the accelerator's 1 MB cache; the
	// executor enforces this (Sec. VI-E condition 2).
	RegexFilters []RegexFilter
	// Stream lists base-table columns streamed to the Row Transformer,
	// in leftmost-to-rightmost order.
	Stream []string
	// Gathers are RowID-chased extra inputs appended after Stream.
	Gathers []Gather
	// Transform maps inputs (Stream then Gathers, by index) to output
	// columns; nil streams the inputs through unchanged.
	Transform []systolic.Expr
	// FilterOut, if >= 0, names a transform output holding a 0/1
	// sub-predicate the Row Selector could not evaluate; rows with 0 are
	// dropped and the column is removed before the Swissknife.
	FilterOut int
	Op        OpSpec
	Out       Output
}

// Validate checks structural consistency.
func (t *Task) Validate() error {
	if t.Table == "" {
		return fmt.Errorf("tabletask %q: no table", t.Name)
	}
	nIn := len(t.Stream) + len(t.Gathers)
	if nIn == 0 {
		return fmt.Errorf("tabletask %q: no inputs", t.Name)
	}
	if t.Transform != nil {
		if mi := systolic.MaxColIndex(t.Transform); mi >= nIn {
			return fmt.Errorf("tabletask %q: transform references input %d of %d", t.Name, mi, nIn)
		}
	}
	nOut := nIn
	if t.Transform != nil {
		nOut = len(t.Transform)
	}
	if t.FilterOut >= nOut {
		return fmt.Errorf("tabletask %q: filter output %d of %d", t.Name, t.FilterOut, nOut)
	}
	dataCols := nOut
	if t.FilterOut >= 0 {
		dataCols--
	}
	switch t.Op.Kind {
	case OpMask:
		if t.Op.MaskTable == "" {
			return fmt.Errorf("tabletask %q: MASK without MaskTable", t.Name)
		}
		if dataCols != 1 {
			return fmt.Errorf("tabletask %q: MASK wants 1 output column, has %d", t.Name, dataCols)
		}
	case OpSort, OpMerge, OpSortMerge:
		if dataCols != 2 {
			return fmt.Errorf("tabletask %q: %s wants (key,value) outputs, has %d",
				t.Name, t.Op.Kind, dataCols)
		}
		if (t.Op.Kind == OpMerge || t.Op.Kind == OpSortMerge) && t.Op.With == "" {
			return fmt.Errorf("tabletask %q: %s without With object", t.Name, t.Op.Kind)
		}
	case OpAggregate:
		if len(t.Op.Aggs) != dataCols {
			return fmt.Errorf("tabletask %q: %d aggregates for %d columns", t.Name,
				len(t.Op.Aggs), dataCols)
		}
	case OpGroupBy:
		if t.Op.Keys+t.Op.Attrs+len(t.Op.Aggs) != dataCols {
			return fmt.Errorf("tabletask %q: group-by shape %d+%d+%d != %d columns",
				t.Name, t.Op.Keys, t.Op.Attrs, len(t.Op.Aggs), dataCols)
		}
	case OpTopK:
		if t.Op.K <= 0 || dataCols != 2 {
			return fmt.Errorf("tabletask %q: TOPK wants K>0 and (key,value) outputs", t.Name)
		}
	}
	if t.Out.Kind == ToDRAM && t.Out.Name == "" {
		return fmt.Errorf("tabletask %q: DRAM output without name", t.Name)
	}
	return nil
}
