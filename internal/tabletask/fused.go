package tabletask

import (
	"fmt"

	"aquoman/internal/bitvec"
	"aquoman/internal/col"
	"aquoman/internal/enc"
	"aquoman/internal/flash"
	"aquoman/internal/obs"
	"aquoman/internal/rowsel"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
)

// The fused scan path collapses the Row Selector, Table Reader, Row
// Transformer and Swissknife passes of an aggregation task into a single
// sweep: each 32-row vector is predicate-filtered, streamed, compacted,
// transformed and consumed before the next vector is touched, so no
// intermediate column is ever materialized. All scratch is checked out of
// pools or pre-sized at setup; the steady-state per-morsel loop performs
// zero heap allocations (enforced by fused_test.go and the scalebench CI
// gate). Row order, page accounting and results are identical to the
// staged path — the differential oracle in fused_oracle_test.go holds the
// two paths cell-exact against each other.
//
// On encoded columns with no predicates and no transform, whole pages
// short-circuit further still: enc.AggregatePage folds COUNT/SUM/MIN/MAX
// straight off the RLE runs or FOR deltas and the page is never expanded
// (swissknife.ConsumeSummary).

// fusedEligible reports whether the task can take the fused path. The
// fused loop handles full-table aggregation scans — the shape every
// TPC-H q1/q6-style pipeline compiles to — and leaves masked, gathering,
// regex, sorting and DRAM-producing tasks to the staged path.
func (e *Executor) fusedEligible(t *Task) bool {
	if e.DisableFusion {
		return false
	}
	if t.Out.Kind != ToHost {
		return false
	}
	if t.Op.Kind != OpAggregate && t.Op.Kind != OpGroupBy {
		return false
	}
	if t.MaskSrc.Kind != MaskFull || len(t.MaskAnd) > 0 {
		return false
	}
	if e.DeleteMasks[t.Table] != nil {
		return false
	}
	if len(t.Gathers) > 0 || len(t.RegexFilters) > 0 {
		return false
	}
	return true
}

// fusedScan carries one task's fused-pass state. Everything sized here is
// per-task; the per-vector step reuses it all.
type fusedScan struct {
	e   *Executor
	t   *Task
	tab *col.Table
	tt  *TaskTrace

	mask *bitvec.Mask

	predRd []*col.PagedReader
	evals  []rowsel.VecEvaluator

	streamRd []*col.PagedReader // nil entry = @rowid pseudo-column
	machine  *systolic.Machine  // nil when the task has no transform

	agg *swissknife.Aggregate    // OpAggregate
	grp *swissknife.GroupByAccel // OpGroupBy

	// Per-vector scratch: one read buffer and one compacted (selected
	// lanes only) buffer per streamed column, plus the consume-row.
	streamVals [][]int64
	compacted  [][]int64
	row        []int64
}

// runFused executes the whole task on the fused path. The caller has
// already validated the task and resolved the table.
func (e *Executor) runFused(t *Task, tab *col.Table, tt *TaskTrace, span *obs.Span, cu *obs.Cursor) (*Result, error) {
	fs := &fusedScan{e: e, t: t, tab: tab, tt: tt}
	defer fs.close()
	fSpan := span.Child("fused-scan", obs.StageTask)
	defer fSpan.End()
	if err := fs.setup(); err != nil {
		return nil, err
	}
	var err error
	if fs.pageKernelOK() {
		err = fs.scanPages(cu)
	} else {
		err = fs.scan(cu)
	}
	if err != nil {
		return nil, err
	}
	res, err := fs.finish()
	if err != nil {
		return nil, err
	}
	fSpan.SetInt("rows_in", tt.RowsIn)
	fSpan.SetInt("rows_selected", tt.RowsSelected)
	fSpan.SetInt("rows_to_swissknife", tt.RowsToSwissknife)
	fSpan.SetInt("pages_read", tt.PagesRead)

	// The fused loop never leaves this function, so the per-stage spans
	// the staged path would emit are published as zero-length markers
	// carrying the same stats: tracing consumers keep seeing every
	// pipeline stage for fused tasks, with stage *time* on the fused-scan
	// span and stage *work* on the markers.
	selSpan := fSpan.Child("row-select", obs.StageRowSel)
	selSpan.SetInt("rows_in", tt.RowsIn)
	selSpan.SetInt("rows_selected", tt.RowsSelected)
	selSpan.SetInt("pages_pruned", tt.PagesPruned)
	selSpan.End()
	readSpan := fSpan.Child("table-read", obs.StageFlash)
	readSpan.SetInt("pages_read", tt.PagesRead)
	readSpan.SetInt("pages_skipped", tt.PagesSkipped)
	readSpan.End()
	if t.Transform != nil {
		trSpan := fSpan.Child("transform", obs.StageTransform)
		trSpan.SetInt("rows", tt.RowsTransformed)
		trSpan.SetInt("pes", int64(tt.TransformerPEs))
		trSpan.End()
	}
	skSpan := fSpan.Child("swissknife "+t.Op.Kind.String(), obs.StageSwissknife)
	skSpan.SetInt("rows_in", tt.RowsToSwissknife)
	skSpan.SetInt("host_rows", int64(res.NumRows()))
	skSpan.End()
	return res, nil
}

// setup builds the readers, evaluators, machine, accelerator and scratch,
// and runs the zone-map pre-pass. Everything allocated for the task is
// allocated here.
func (fs *fusedScan) setup() error {
	t, tab, tt := fs.t, fs.tab, fs.tt
	fs.mask = bitvec.NewFull(tab.NumRows)
	tt.RowsIn = int64(tab.NumRows)

	sel := t.RowSel
	if sel == nil {
		sel = &Program{}
	}
	fs.predRd = make([]*col.PagedReader, len(sel.Preds))
	fs.evals = make([]rowsel.VecEvaluator, len(sel.Preds))
	for i, cp := range sel.Preds {
		ci, err := tab.Column(cp.Column)
		if err != nil {
			return err
		}
		fs.predRd[i] = col.NewPagedReader(ci, flash.Aquoman)
		fs.predRd[i].SetContext(fs.e.Ctx)
		fs.evals[i].Init(cp.Expr, ci.Enc)
	}
	for i, cp := range sel.Preds {
		rowsel.PruneByZoneMaps(cp.Expr, fs.predRd[i], fs.mask)
	}
	tt.SelectorCPs = sel.NumCPs()

	fs.streamRd = make([]*col.PagedReader, len(t.Stream))
	for i, name := range t.Stream {
		if name == RowIDCol {
			continue
		}
		ci, err := tab.Column(name)
		if err != nil {
			return fmt.Errorf("tabletask %q: %w", t.Name, err)
		}
		fs.streamRd[i] = col.NewPagedReader(ci, flash.Aquoman)
		fs.streamRd[i].SetContext(fs.e.Ctx)
	}

	nOut := len(t.Stream)
	if t.Transform != nil {
		mapped, err := systolic.Compile(t.Transform, len(t.Stream), systolic.DefaultConfig())
		if err != nil {
			return fmt.Errorf("tabletask %q: transform: %w", t.Name, err)
		}
		tt.TransformerPEs = mapped.NumPEs()
		tt.WidenedRegs = mapped.WidenedRegs
		fs.machine = systolic.NewMachine(mapped)
		nOut = len(t.Transform)
	}

	var err error
	if t.Op.Kind == OpAggregate {
		fs.agg, err = swissknife.NewAggregate(t.Op.Aggs)
	} else {
		fs.grp, err = swissknife.NewGroupBy(t.Op.GroupCfg, t.Op.Keys, t.Op.Attrs, t.Op.Aggs)
	}
	if err != nil {
		return err
	}

	nStream := len(t.Stream)
	backing := make([]int64, 2*nStream*bitvec.VecSize)
	fs.streamVals = make([][]int64, nStream)
	fs.compacted = make([][]int64, nStream)
	for c := 0; c < nStream; c++ {
		fs.streamVals[c] = backing[c*bitvec.VecSize : (c+1)*bitvec.VecSize]
		lo, hi := (nStream+c)*bitvec.VecSize, (nStream+c+1)*bitvec.VecSize
		fs.compacted[c] = backing[lo:hi:hi]
	}
	fs.row = make([]int64, nOut)
	return nil
}

// pageKernelOK reports whether the task can consume whole encoded pages
// through the aggregation kernel: nothing to filter, nothing to
// transform, one streamed column whose codec has a kernel.
func (fs *fusedScan) pageKernelOK() bool {
	t := fs.t
	if len(fs.evals) > 0 || fs.machine != nil || t.FilterOut >= 0 {
		return false
	}
	if t.Op.Kind != OpAggregate || len(t.Stream) != 1 || fs.streamRd[0] == nil {
		return false
	}
	c := fs.streamRd[0].Codec()
	return c == enc.RLE || c == enc.FOR
}

// scanPages is the whole-page fast path: SUM/COUNT/MIN/MAX fold directly
// over RLE runs and FOR deltas without expanding the page. A page the
// kernel refuses falls back to the per-vector step.
func (fs *fusedScan) scanPages(cu *obs.Cursor) error {
	rd := fs.streamRd[0]
	meta := rd.Meta()
	for pi, pm := range meta.Pages {
		agg, ok, err := rd.PageAggregate(pi)
		if err != nil {
			return err
		}
		if !ok {
			end := pm.StartRow + pm.Count
			for vec := pm.StartRow / bitvec.VecSize; vec*bitvec.VecSize < end; vec++ {
				if err := fs.step(vec, cu); err != nil {
					return err
				}
			}
			continue
		}
		cu.Mark(obs.StateRead)
		fs.agg.ConsumeSummary(agg.Count, agg.Sum, agg.Min, agg.Max)
		fs.tt.RowsTransformed += int64(agg.Count)
		fs.tt.RowsToSwissknife += int64(agg.Count)
		cu.Mark(obs.StateSwissknife)
	}
	return nil
}

// scan runs the per-vector fused loop over the whole table.
func (fs *fusedScan) scan(cu *obs.Cursor) error {
	nVecs := fs.mask.NumVecs()
	for vec := 0; vec < nVecs; vec++ {
		if err := fs.step(vec, cu); err != nil {
			return err
		}
	}
	return nil
}

// step processes one 32-row vector end to end: refine the mask through
// the predicate evaluators, stream and compact the surviving lanes, run
// them through the PE chain, apply the transformer sub-predicate, and
// feed the Swissknife. Steady state allocates nothing.
func (fs *fusedScan) step(vec int, cu *obs.Cursor) error {
	mask := fs.mask
	if mask.VecAllZero(vec) {
		for _, r := range fs.predRd {
			r.SkipVec(vec)
		}
		fs.skipStreams(vec)
		cu.Mark(obs.StateRowSel)
		return nil
	}
	for pi := range fs.evals {
		if err := fs.evals[pi].EvalVec(fs.predRd[pi], vec, mask); err != nil {
			return err
		}
		if mask.VecAllZero(vec) {
			for _, r := range fs.predRd[pi+1:] {
				r.SkipVec(vec)
			}
			break
		}
	}
	cu.Mark(obs.StateRowSel)
	if mask.VecAllZero(vec) {
		fs.skipStreams(vec)
		return nil
	}

	// Stream the surviving lanes and compact them.
	base := vec * bitvec.VecSize
	n := bitvec.VecSize
	if base+n > fs.tab.NumRows {
		n = fs.tab.NumRows - base
	}
	for c, rd := range fs.streamRd {
		if rd == nil {
			vals := fs.streamVals[c]
			for j := 0; j < n; j++ {
				vals[j] = int64(base + j)
			}
			continue
		}
		rn, err := rd.ReadVec(vec, fs.streamVals[c])
		if err != nil {
			return fmt.Errorf("tabletask %q: %w", fs.t.Name, err)
		}
		n = rn
	}
	bits := mask.VecBits(vec)
	k := 0
	for c := range fs.compacted {
		// Restore full width; a previous vector left these truncated.
		fs.compacted[c] = fs.compacted[c][:bitvec.VecSize]
	}
	for j := 0; j < n; j++ {
		if bits&(1<<uint(j)) == 0 {
			continue
		}
		for c := range fs.compacted {
			fs.compacted[c][k] = fs.streamVals[c][j]
		}
		k++
	}
	for c := range fs.compacted {
		fs.compacted[c] = fs.compacted[c][:k]
	}
	cu.Mark(obs.StateRead)
	if k == 0 {
		return nil
	}

	outs := fs.compacted
	if fs.machine != nil {
		var err error
		outs, err = fs.machine.RunVec(fs.compacted)
		if err != nil {
			return fmt.Errorf("tabletask %q: transform run: %w", fs.t.Name, err)
		}
	}
	cu.Mark(obs.StateSystolic)
	fs.tt.RowsTransformed += int64(k)

	filter := fs.t.FilterOut
	var pred []int64
	if filter >= 0 {
		pred = outs[filter]
	}
	nk, na := fs.t.Op.Keys, fs.t.Op.Attrs
	for j := 0; j < k; j++ {
		if pred != nil && pred[j] == 0 {
			continue
		}
		w := 0
		for c := range outs {
			if c == filter {
				continue
			}
			fs.row[w] = outs[c][j]
			w++
		}
		fs.tt.RowsToSwissknife++
		if fs.agg != nil {
			if err := fs.agg.Consume(fs.row[:w]); err != nil {
				return err
			}
		} else {
			if err := fs.grp.Consume(fs.row[:nk], fs.row[nk:nk+na], fs.row[nk+na:w]); err != nil {
				return fmt.Errorf("tabletask %q: %w", fs.t.Name, err)
			}
		}
	}
	cu.Mark(obs.StateSwissknife)
	return nil
}

// skipStreams records a fully-masked vector on every streamed column so
// whole-page skips are accounted exactly like the staged Table Reader.
func (fs *fusedScan) skipStreams(vec int) {
	for _, r := range fs.streamRd {
		if r != nil {
			r.SkipVec(vec)
		}
	}
}

// finish folds the reader stats into the trace and materializes the
// operator result, mirroring runOperator's aggregate tails exactly.
func (fs *fusedScan) finish() (*Result, error) {
	tt := fs.tt
	for _, r := range fs.predRd {
		tt.addReader(r.ReaderStats)
	}
	for _, r := range fs.streamRd {
		if r != nil {
			tt.addReader(r.ReaderStats)
		}
	}
	tt.RowsSelected = int64(fs.mask.Count())

	if fs.agg != nil {
		aggs, _ := fs.agg.Result()
		cols := make([][]int64, len(aggs))
		for i, v := range aggs {
			cols[i] = []int64{v}
		}
		return &Result{Cols: cols}, nil
	}
	st := fs.grp.Stats()
	tt.Groups = st.Groups
	tt.SpilledRows = st.SpilledRows
	tt.SpilledGroups = st.SpilledGroups
	tt.ResidentGroups = st.ResidentGroups
	rows := fs.grp.Results()
	width := fs.t.Op.Keys + fs.t.Op.Attrs + len(fs.t.Op.Aggs)
	cols := make([][]int64, width)
	for _, row := range rows {
		for c := 0; c < width; c++ {
			cols[c] = append(cols[c], row[c])
		}
	}
	return &Result{Cols: cols}, nil
}

// close releases every pooled reader buffer. Idempotent.
func (fs *fusedScan) close() {
	for _, r := range fs.predRd {
		if r != nil {
			r.Close()
		}
	}
	for _, r := range fs.streamRd {
		if r != nil {
			r.Close()
		}
	}
}
