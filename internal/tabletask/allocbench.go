package tabletask

import (
	"fmt"
	"runtime"
)

// AllocsPerScan builds the fused scan for t, runs one warmup pass (pool
// checkouts, group-table inserts, scratch growth all land here), then
// measures steady-state heap allocations per full re-scan of the table.
// It is the bench-report twin of the testing.AllocsPerRun gate in
// fused_test.go: aquoman-bench -report scalebench records the number in
// BENCH_scale.json and benchcheck -mode scale holds it at zero.
func (e *Executor) AllocsPerScan(t *Task, passes int) (float64, error) {
	if passes <= 0 {
		return 0, fmt.Errorf("allocs per scan: passes must be positive, got %d", passes)
	}
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if !e.fusedEligible(t) {
		return 0, fmt.Errorf("task %q is not fused-eligible", t.Name)
	}
	tab, err := e.Store.Table(t.Table)
	if err != nil {
		return 0, err
	}
	fs := &fusedScan{e: e, t: t, tab: tab, tt: &TaskTrace{Name: t.Name}}
	if err := fs.setup(); err != nil {
		return 0, err
	}
	defer fs.close()
	// Same dispatch as runFused: page-kernel-eligible tasks fold whole
	// encoded pages, everything else takes the per-vector loop.
	scan := fs.scan
	if fs.pageKernelOK() {
		scan = fs.scanPages
	}
	if err := scan(nil); err != nil { // warmup
		return 0, err
	}

	// Same discipline as testing.AllocsPerRun: pin to one P so a
	// background goroutine's allocations can't be misattributed, and
	// settle the heap before counting.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < passes; i++ {
		if err := scan(nil); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(passes), nil
}
