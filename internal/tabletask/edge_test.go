package tabletask

import (
	"errors"
	"strings"
	"testing"

	"aquoman/internal/bitvec"
	"aquoman/internal/col"
	"aquoman/internal/mem"
	"aquoman/internal/rowsel"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
)

func TestIdentityTransform(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	task := &Task{
		Name:      "identity",
		Table:     "sales",
		Stream:    []string{"invtID", "price"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.NumRows() != 6 {
		t.Fatalf("identity shape %dx%d", res.NumRows(), len(res.Cols))
	}
	if e.Trace.Tasks[0].TransformerPEs != 0 {
		t.Fatal("identity pass should not compile a PE chain")
	}
}

func TestMergeRequiresSortedInput(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// Leave a dimension table, then MERGE an unsorted stream against it.
	if _, err := e.DRAM.PutKV("D", nil, 8); err != nil {
		t.Fatal(err)
	}
	task := &Task{
		Name:      "bad-merge",
		Table:     "sales",
		Stream:    []string{"price", RowIDCol}, // price is not sorted? it is ascending in fixture...
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpMerge, With: "D"},
		Out:       Output{Kind: ToHost},
	}
	// Use discount (not sorted) as the key instead.
	task.Stream = []string{"discount", RowIDCol}
	_, err := e.Run(task)
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("err = %v", err)
	}
}

func TestNopToDRAMRequiresSorted(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	task := &Task{
		Name:      "nop-unsorted",
		Table:     "sales",
		Stream:    []string{"discount", RowIDCol},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToDRAM, Name: "X"},
	}
	if _, err := e.Run(task); err == nil {
		t.Fatal("unsorted NOP-to-DRAM accepted")
	}
}

func TestMissingMaskSource(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	task := &Task{
		Name:      "missing-mask",
		Table:     "sales",
		MaskSrc:   MaskSource{Kind: MaskDRAM, Name: "nope"},
		Stream:    []string{"price"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToHost},
	}
	if _, err := e.Run(task); err == nil {
		t.Fatal("missing mask accepted")
	}
}

func TestMaskWrongTableLength(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// A mask over inventory (6 rows) applied to sales (6 rows) passes the
	// length check only coincidentally here; build one with wrong length.
	if _, err := e.DRAM.PutMask("m5", bitvecNew(5)); err != nil {
		t.Fatal(err)
	}
	task := &Task{
		Name:      "wrong-mask",
		Table:     "sales",
		MaskSrc:   MaskSource{Kind: MaskDRAM, Name: "m5"},
		Stream:    []string{"price"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToHost},
	}
	if _, err := e.Run(task); err == nil {
		t.Fatal("length-mismatched mask accepted")
	}
}

func TestGatherDRAMCapacitySuspends(t *testing.T) {
	s := retailStore(t)
	e := NewExecutor(s, mem.New(8)) // 8 bytes of DRAM: even the cached dimension column cannot fit
	task := &Task{
		Name:   "gather-oom",
		Table:  "sales",
		Stream: []string{"price"},
		Gathers: []Gather{{
			Name:    "category",
			BaseCol: col.RowIDColumnName("invtID"),
			Hops:    []GatherHop{{Table: "inventory", Column: "category"}},
		}},
		Transform: []systolic.Expr{systolic.In(1), systolic.In(0)},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpGroupBy, Keys: 1, Aggs: []swissknife.AggKind{swissknife.AggSum}},
		Out:       Output{Kind: ToHost},
	}
	_, err := e.Run(task)
	if !errors.Is(err, mem.ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
}

func TestRowSelUnknownColumn(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	task := &Task{
		Name:  "bad-col",
		Table: "sales",
		RowSel: &Program{Preds: []rowsel.ColPred{{
			Column: "missing", Expr: systolic.EQ(systolic.In(0), systolic.C(1)), CPs: 1,
		}}},
		Stream:    []string{"price"},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToHost},
	}
	if _, err := e.Run(task); err == nil {
		t.Fatal("unknown selector column accepted")
	}
}

func TestSortToDRAMThenMaskSrc(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	// SORT an unsorted key stream to DRAM, then merge against it.
	d := &Task{
		Name:      "sortdim",
		Table:     "sales",
		Stream:    []string{"discount", RowIDCol},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpSort},
		Out:       Output{Kind: ToDRAM, Name: "SD"},
	}
	if _, err := e.Run(d); err != nil {
		t.Fatal(err)
	}
	obj, err := e.DRAM.Get("SD")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(obj.KVs); i++ {
		if obj.KVs[i].Key < obj.KVs[i-1].Key {
			t.Fatal("SORT output not sorted in DRAM")
		}
	}
}

func TestMaskAndComposition(t *testing.T) {
	s := retailStore(t)
	e := newExec(t, s)
	m1 := bitvecNew(6)
	m1.Set(0)
	m1.Set(1)
	m1.Set(2)
	if _, err := e.DRAM.PutMask("m1", m1); err != nil {
		t.Fatal(err)
	}
	m2 := bitvecNew(6)
	m2.Set(1)
	m2.Set(2)
	m2.Set(3)
	if _, err := e.DRAM.PutMask("m2", m2); err != nil {
		t.Fatal(err)
	}
	task := &Task{
		Name:      "and-masks",
		Table:     "sales",
		MaskSrc:   MaskSource{Kind: MaskDRAM, Name: "m1"},
		MaskAnd:   []MaskSource{{Kind: MaskDRAM, Name: "m2", Negate: true}},
		Stream:    []string{RowIDCol},
		FilterOut: NoFilter,
		Op:        OpSpec{Kind: OpNop},
		Out:       Output{Kind: ToHost},
	}
	res, err := e.Run(task)
	if err != nil {
		t.Fatal(err)
	}
	// m1 AND NOT m2 = {0}.
	eqCol(t, res.Cols[0], 0)
	// Source masks must be unmodified by the composition.
	o1, _ := e.DRAM.Get("m1")
	o2, _ := e.DRAM.Get("m2")
	if o1.Mask.Count() != 3 || o2.Mask.Count() != 3 {
		t.Fatal("source masks mutated")
	}
}

func bitvecNew(n int) *bitvec.Mask { return bitvec.New(n) }
