package regexcc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// refLike is a simple reference implementation via dynamic programming.
func refLike(pat, s string) bool {
	// dp[i][j]: pat[:i] matches s[:j]
	m, n := len(pat), len(s)
	dp := make([][]bool, m+1)
	for i := range dp {
		dp[i] = make([]bool, n+1)
	}
	dp[0][0] = true
	for i := 1; i <= m; i++ {
		for j := 0; j <= n; j++ {
			switch pat[i-1] {
			case '%':
				dp[i][j] = dp[i-1][j] || (j > 0 && dp[i][j-1])
			case '_':
				dp[i][j] = j > 0 && dp[i-1][j-1]
			default:
				dp[i][j] = j > 0 && dp[i-1][j-1] && s[j-1] == pat[i-1]
			}
		}
	}
	return dp[m][n]
}

func TestMatchTPCHPatterns(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		// q9: p_name like '%green%'
		{"%green%", "spring green yellow", true},
		{"%green%", "greenish", true},
		{"%green%", "blue red", false},
		// q13: o_comment not like '%special%requests%'
		{"%special%requests%", "the special pending requests", true},
		{"%special%requests%", "requests special", false},
		// q14: p_type like 'PROMO%'
		{"PROMO%", "PROMO BURNISHED COPPER", true},
		{"PROMO%", "STANDARD PROMO", false},
		// q16: p_type not like 'MEDIUM POLISHED%'
		{"MEDIUM POLISHED%", "MEDIUM POLISHED TIN", true},
		{"MEDIUM POLISHED%", "MEDIUM PLATED TIN", false},
		// q2: p_type like '%BRASS'
		{"%BRASS", "SMALL PLATED BRASS", true},
		{"%BRASS", "BRASS PLATED TIN", false},
		{"%BRASS", "BRASS", true},
		// q20: p_name like 'forest%'
		{"forest%", "forest chiffon", true},
		{"forest%", "rainforest", false},
		// underscores
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"a_c", "abcd", false},
		// exact (no wildcard)
		{"abc", "abc", true},
		{"abc", "abd", false},
		// empty and universal
		{"", "", true},
		{"", "x", false},
		{"%", "", true},
		{"%", "anything", true},
		{"%%", "x", true},
	}
	for _, c := range cases {
		p := Compile(c.pat)
		if got := p.Match(c.s); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
		if got := refLike(c.pat, c.s); got != c.want {
			t.Errorf("reference disagrees on (%q, %q)", c.pat, c.s)
		}
	}
}

func TestIsPrefix(t *testing.T) {
	if pre, ok := Compile("PROMO%").IsPrefix(); !ok || pre != "PROMO" {
		t.Fatalf("IsPrefix(PROMO%%) = %q, %v", pre, ok)
	}
	for _, pat := range []string{"%BRASS", "%green%", "a_c%", "abc", "%"} {
		if _, ok := Compile(pat).IsPrefix(); ok {
			t.Errorf("IsPrefix(%q) = true", pat)
		}
	}
}

func TestMatchDict(t *testing.T) {
	dict := []string{"ECONOMY BRASS", "LARGE POLISHED TIN", "PROMO BURNISHED BRASS"}
	got := Compile("%BRASS").MatchDict(dict)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatchDict = %v, want %v", got, want)
		}
	}
}

func TestFitsAccelerator(t *testing.T) {
	if !FitsAccelerator(CacheBytes) {
		t.Fatal("exact fit rejected")
	}
	if FitsAccelerator(CacheBytes + 1) {
		t.Fatal("oversized heap accepted")
	}
}

func TestSource(t *testing.T) {
	if Compile("a%b").Source() != "a%b" {
		t.Fatal("Source")
	}
}

// Property: the segment matcher agrees with the DP reference on random
// patterns and subjects.
func TestQuickMatchesReference(t *testing.T) {
	alphabet := "ab%_"
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pat, s strings.Builder
		for i := rng.Intn(8); i > 0; i-- {
			pat.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		for i := rng.Intn(10); i > 0; i-- {
			s.WriteByte(alphabet[rng.Intn(2)]) // subjects only a/b
		}
		p, subj := pat.String(), s.String()
		return Compile(p).Match(subj) == refLike(p, subj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
