// Package regexcc models AQUOMAN's Regular-Expression Accelerator
// (Sec. VI-B): a matcher inside the Table Reader that pre-processes
// variable-sized string columns into one-bit (true/false) columns, backed
// by a 1 MB memory for the column's string content. When the string heap
// exceeds that memory — many unique strings — the random heap reads make
// the column unsuitable for in-storage processing and the query suspends
// to the host (Sec. VI-E condition 2).
//
// The matcher implements SQL LIKE patterns ('%' any run, '_' any single
// byte) from scratch; TPC-H's string predicates are all LIKE-shaped.
package regexcc

import "strings"

// CacheBytes is the accelerator's string memory (1 MB in the prototype).
const CacheBytes = 1 << 20

// Pattern is a compiled LIKE pattern.
type Pattern struct {
	src string
	// segments between '%' wildcards; each segment may contain '_'.
	segments []string
	// leading/trailing report whether the pattern is anchored.
	anchoredStart bool
	anchoredEnd   bool
}

// Compile parses a LIKE pattern. There is no escape syntax (TPC-H does not
// use one).
func Compile(like string) *Pattern {
	p := &Pattern{src: like}
	parts := strings.Split(like, "%")
	p.anchoredStart = !strings.HasPrefix(like, "%")
	p.anchoredEnd = !strings.HasSuffix(like, "%")
	for _, s := range parts {
		if s != "" {
			p.segments = append(p.segments, s)
		}
	}
	return p
}

// Source returns the original pattern text.
func (p *Pattern) Source() string { return p.src }

// IsPrefix reports whether the pattern is a pure prefix match ("abc%"
// with no '_'), which compiles to a dictionary code-range predicate.
func (p *Pattern) IsPrefix() (string, bool) {
	if p.anchoredStart && !p.anchoredEnd && len(p.segments) == 1 &&
		!strings.ContainsRune(p.segments[0], '_') {
		return p.segments[0], true
	}
	return "", false
}

// segMatchAt reports whether segment seg matches s starting at i
// (honouring '_').
func segMatchAt(s, seg string, i int) bool {
	if i+len(seg) > len(s) {
		return false
	}
	for j := 0; j < len(seg); j++ {
		if seg[j] != '_' && s[i+j] != seg[j] {
			return false
		}
	}
	return true
}

// segIndex finds the first match of seg in s at or after from, or -1.
func segIndex(s, seg string, from int) int {
	for i := from; i+len(seg) <= len(s); i++ {
		if segMatchAt(s, seg, i) {
			return i
		}
	}
	return -1
}

// Match reports whether s matches the pattern.
func (p *Pattern) Match(s string) bool {
	segs := p.segments
	pos := 0
	if len(segs) == 0 {
		// "%", "%%", ... match anything; "" matches only "".
		if p.anchoredStart && p.anchoredEnd {
			return s == ""
		}
		return true
	}
	if p.anchoredStart {
		if !segMatchAt(s, segs[0], 0) {
			return false
		}
		pos = len(segs[0])
		segs = segs[1:]
	}
	// Trailing anchored segment is matched last.
	var tail string
	if p.anchoredEnd && len(segs) > 0 {
		tail = segs[len(segs)-1]
		segs = segs[:len(segs)-1]
	}
	for _, seg := range segs {
		i := segIndex(s, seg, pos)
		if i < 0 {
			return false
		}
		pos = i + len(seg)
	}
	if p.anchoredEnd {
		if tail == "" {
			// Anchored end with no tail segment (pattern had no '%'
			// at all): position must have consumed the string.
			return pos == len(s)
		}
		start := len(s) - len(tail)
		return start >= pos && segMatchAt(s, tail, start)
	}
	return true
}

// MatchDict evaluates the pattern over a dictionary, returning the
// matching codes' truth table. This is how LIKE on a dictionary-encoded
// column becomes an integer set predicate for the Row Selector.
func (p *Pattern) MatchDict(dict []string) []bool {
	out := make([]bool, len(dict))
	for i, s := range dict {
		out[i] = p.Match(s)
	}
	return out
}

// FitsAccelerator reports whether a string heap of the given size can be
// processed in storage.
func FitsAccelerator(heapBytes int64) bool { return heapBytes <= CacheBytes }
