package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"aquoman"
	"aquoman/internal/flash"
)

var (
	dbOnce sync.Once
	testDB *aquoman.DB
)

// sharedDB is a small TPC-H instance reused across tests (generation
// dominates test time). Tests that mutate device latency restore it.
func sharedDB(t *testing.T) *aquoman.DB {
	t.Helper()
	dbOnce.Do(func() {
		testDB = aquoman.Open()
		if err := testDB.LoadTPCH(0.005, 1); err != nil {
			t.Fatalf("LoadTPCH: %v", err)
		}
		testDB.EnableObservability()
		testDB.ConfigureScheduler(aquoman.SchedulerConfig{MaxInFlight: 2, QueueDepth: 4})
	})
	return testDB
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = sharedDB(t)
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// ndjson splits a response body into decoded JSON lines.
func ndjson(t *testing.T, body io.Reader) []map[string]interface{} {
	t.Helper()
	var out []map[string]interface{}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			// Row lines are arrays; wrap them.
			var arr []interface{}
			if err2 := json.Unmarshal([]byte(line), &arr); err2 != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			m = map[string]interface{}{"_row": arr}
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestQueryNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(
		"select count(*) as n from lineitem", " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Fatalf("content-type %q", ct)
	}
	lines := ndjson(t, resp.Body)
	if len(lines) != 3 { // header, one row, trailer
		t.Fatalf("got %d NDJSON lines, want 3: %v", len(lines), lines)
	}
	schema := lines[0]["schema"].([]interface{})
	if f := schema[0].(map[string]interface{}); f["name"] != "n" {
		t.Fatalf("schema %v", schema)
	}
	want, err := sharedDB(t).Query("select count(*) as n from lineitem")
	if err != nil {
		t.Fatal(err)
	}
	got := lines[1]["_row"].([]interface{})[0].(float64)
	if int64(got) != want.Batch.Cols[0][0] {
		t.Fatalf("count = %v, want %d", got, want.Batch.Cols[0][0])
	}
	trailer := lines[2]
	if trailer["done"] != true || trailer["rows"].(float64) != 1 {
		t.Fatalf("trailer %v", trailer)
	}
}

func TestQueryPost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"sql": "select count(*) as n from orders", "timeout_ms": 30000}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	lines := ndjson(t, resp.Body)
	if lines[len(lines)-1]["done"] != true {
		t.Fatalf("missing done trailer: %v", lines)
	}
}

func TestBadSQLIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query?q=selectt+nonsense")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("error body: %v, %v", e, err)
	}
}

func TestMissingSQLIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestTPCHEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/tpch?q=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	lines := ndjson(t, resp.Body)
	if lines[len(lines)-1]["done"] != true {
		t.Fatalf("missing done trailer")
	}

	resp, err = http.Get(ts.URL + "/tpch?q=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("q=99 status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != 200 || h["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, h)
	}

	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), "/query") {
		t.Fatalf("index = %d %s", resp.StatusCode, b)
	}

	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Generate one request so the server counters exist.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"server_requests_total", "sched_inflight"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("metrics missing %s:\n%s", want, b)
		}
	}
}

// TestQueueFull503 fills every scheduler slot and the whole queue with
// slow queries, then asserts the next request is shed with 503 +
// Retry-After instead of queueing unboundedly.
func TestQueueFull503(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.005, 1); err != nil {
		t.Fatal(err)
	}
	o := db.EnableObservability()
	db.ConfigureScheduler(aquoman.SchedulerConfig{MaxInFlight: 1, QueueDepth: 1})
	defer db.Close()
	db.Flash.SetReadLatency(500 * time.Microsecond) // queries take ~100ms+
	_, ts := newTestServer(t, Config{DB: db})

	// Occupy the slot and the queue directly through the scheduler so the
	// occupancy is deterministic before the HTTP request fires: submit one
	// query, wait for it to hold the in-flight slot, then fill the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	submit := func() *aquoman.Ticket {
		p, err := aquoman.TPCHQuery(6)
		if err != nil {
			t.Fatal(err)
		}
		tk, err := db.SubmitCtx(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		return tk
	}
	tickets := []*aquoman.Ticket{submit()}
	inflight := o.Reg.Gauge("sched_inflight")
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	tickets = append(tickets, submit())

	resp, err := http.Get(ts.URL + "/tpch?q=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	cancel()
	for _, tk := range tickets {
		_, _ = tk.Wait()
	}
}

// TestCancelFreesSchedulerSlot is the end-to-end cancellation assertion:
// a client that disconnects mid-flight frees its scheduler slot (the
// sched_inflight gauge returns to 0) and the query's simulated flash
// traffic stops growing.
func TestCancelFreesSchedulerSlot(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.01, 7); err != nil {
		t.Fatal(err)
	}
	o := db.EnableObservability()
	db.ConfigureScheduler(aquoman.SchedulerConfig{MaxInFlight: 1, QueueDepth: 4})
	defer db.Close()
	// Per-page latency stretches the query to seconds so the cancel lands
	// mid-flight; the interruptible throttle makes the abort prompt.
	db.Flash.SetReadLatency(2 * time.Millisecond)
	_, ts := newTestServer(t, Config{DB: db})

	inflight := o.Reg.Gauge("sched_inflight")

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/tpch?q=6", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait for the query to occupy the slot.
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancel() // client disconnects mid-query
	<-done

	// The slot must free up promptly (not after the seconds the full
	// query would have taken).
	deadline = time.Now().Add(2 * time.Second)
	for inflight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sched_inflight stuck at %d after client cancel", inflight.Value())
		}
		time.Sleep(time.Millisecond)
	}

	// And the cancelled query must stop consuming flash bandwidth.
	s1 := db.FlashStats().PagesRead[flash.Aquoman]
	time.Sleep(50 * time.Millisecond)
	if s2 := db.FlashStats().PagesRead[flash.Aquoman]; s2 != s1 {
		t.Fatalf("flash traffic still growing after cancel: %d -> %d", s1, s2)
	}
}

// TestDeadline504 verifies the server's per-request deadline surfaces as
// 504 Gateway Timeout.
func TestDeadline504(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.005, 1); err != nil {
		t.Fatal(err)
	}
	db.ConfigureScheduler(aquoman.SchedulerConfig{MaxInFlight: 1, QueueDepth: 1})
	defer db.Close()
	db.Flash.SetReadLatency(2 * time.Millisecond)
	_, ts := newTestServer(t, Config{DB: db})

	resp, err := http.Get(ts.URL + "/tpch?q=6&timeout_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, b)
	}
}

// TestMaxTimeoutCaps verifies the server clamps client deadlines to
// MaxTimeout.
func TestMaxTimeoutCaps(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.005, 1); err != nil {
		t.Fatal(err)
	}
	db.ConfigureScheduler(aquoman.SchedulerConfig{MaxInFlight: 1, QueueDepth: 1})
	defer db.Close()
	db.Flash.SetReadLatency(2 * time.Millisecond)
	_, ts := newTestServer(t, Config{DB: db, MaxTimeout: 5 * time.Millisecond})

	// The client asks for a minute; the cap must fire within the test.
	resp, err := http.Get(ts.URL + "/tpch?q=6&timeout_ms=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (MaxTimeout cap)", resp.StatusCode)
	}
}

// TestDrain verifies drain mode: queries and health checks flip to 503,
// in-flight requests finish, and Drain returns.
func TestDrain(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.005, 1); err != nil {
		t.Fatal(err)
	}
	db.ConfigureScheduler(aquoman.SchedulerConfig{MaxInFlight: 2, QueueDepth: 2})
	defer db.Close()
	s, ts := newTestServer(t, Config{DB: db})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	resp, err := http.Get(ts.URL + "/tpch?q=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining = %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h["status"] != "draining" {
		t.Fatalf("healthz while draining = %d %v", resp.StatusCode, h)
	}
}

// TestStreamChunks checks a multi-row result streams complete NDJSON with
// a correct row count.
func TestStreamChunks(t *testing.T) {
	_, ts := newTestServer(t, Config{ChunkRows: 8})
	q := "select l_orderkey, l_quantity from lineitem where l_quantity < 10"
	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(q, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	lines := ndjson(t, resp.Body)
	trailer := lines[len(lines)-1]
	if trailer["done"] != true {
		t.Fatalf("missing done trailer: %v", trailer)
	}
	rows := int(trailer["rows"].(float64))
	if got := len(lines) - 2; got != rows {
		t.Fatalf("streamed %d rows, trailer says %d", got, rows)
	}
	want, err := sharedDB(t).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows != want.NumRows() {
		t.Fatalf("rows = %d, want %d", rows, want.NumRows())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /query = %d, want 405", resp.StatusCode)
	}
}

// A query slower than the threshold must produce one JSON slow-query
// line with its lifecycle breakdown; the states must explain most of
// the logged wall time.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{
		SlowQueryThreshold: time.Nanosecond, // every query is "slow"
		SlowQueryLog:       &buf,
	})
	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(
		"select count(*) as n from lineitem", " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query line logged")
	}
	var rec struct {
		ID       string             `json:"id"`
		Query    string             `json:"query"`
		WallMS   float64            `json:"wall_ms"`
		Coverage float64            `json:"coverage"`
		StatesMS map[string]float64 `json:"states_ms"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if rec.ID == "" || !strings.Contains(rec.Query, "lineitem") || rec.WallMS <= 0 {
		t.Fatalf("slow-query record %+v", rec)
	}
	if rec.Coverage < 0.5 {
		t.Fatalf("coverage %.2f, want >= 0.5", rec.Coverage)
	}
	if len(rec.StatesMS) == 0 {
		t.Fatalf("states_ms empty: %s", line)
	}
	for name, ms := range rec.StatesMS {
		if ms <= 0 {
			t.Fatalf("state %s = %g ms, zero states must be omitted", name, ms)
		}
	}

	// Queries under the threshold stay silent.
	buf.Reset()
	_, ts2 := newTestServer(t, Config{
		SlowQueryThreshold: time.Hour,
		SlowQueryLog:       &buf,
	})
	resp, err = http.Get(ts2.URL + "/query?q=select+count(*)+as+n+from+region")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := buf.String(); got != "" {
		t.Fatalf("fast query logged: %s", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: the server writes slow
// lines from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

func TestPprofEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(strings.ToLower(string(b)), "profile") {
		t.Fatalf("pprof index: status %d body %.120s", resp.StatusCode, b)
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
}

// After a query has run, /metrics must export the derived latency
// summary (quantiles in seconds) and the scheduler queue telemetry.
func TestMetricsQueryLatencyQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query?q=select+count(*)+as+n+from+region")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE query_latency_ns histogram",
		"# TYPE query_latency_seconds summary",
		`query_latency_seconds{quantile="0.5"} `,
		"query_state_ns_bucket",
		"sched_queue_depth",
		"sched_queue_wait_ns_count",
		"query_wall_ns_total",
		"query_attributed_ns_total",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestTenantQuota429 drives a tenant past its own admission quota and
// asserts the shed is 429 + Retry-After (a per-tenant "slow down", not
// the 503 that means the whole server is overloaded), while another
// tenant is still admitted.
func TestTenantQuota429(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.005, 1); err != nil {
		t.Fatal(err)
	}
	o := db.EnableObservability()
	db.ConfigureScheduler(aquoman.SchedulerConfig{
		MaxInFlight: 1, QueueDepth: 8,
		Tenants: map[string]aquoman.TenantConfig{
			"alpha": {Weight: 1, MaxQueued: 1},
		},
	})
	defer db.Close()
	db.Flash.SetReadLatency(500 * time.Microsecond)
	_, ts := newTestServer(t, Config{DB: db})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, err := aquoman.TPCHQuery(6)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot (in-flight work does not count against the
	// queued quota), then fill alpha's one queued slot.
	tk1, err := db.SubmitTenantCtx(ctx, "alpha", aquoman.LaneBatch, p)
	if err != nil {
		t.Fatal(err)
	}
	inflight := o.Reg.Gauge("sched_inflight")
	deadline := time.Now().Add(5 * time.Second)
	for inflight.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	tk2, err := db.SubmitTenantCtx(ctx, "alpha", aquoman.LaneBatch, p)
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/tpch?q=6", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", "alpha")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(body), "quota") {
		t.Fatalf("429 body should name the quota: %s", body)
	}
	if n := o.Reg.Counter("sched_tenant_rejected_total", "tenant", "alpha").Value(); n < 1 {
		t.Fatalf("sched_tenant_rejected_total{tenant=alpha} = %d, want >= 1", n)
	}

	// A different tenant is not throttled by alpha's quota.
	tk3, err := db.SubmitTenantCtx(ctx, "beta", aquoman.LaneInteractive, p)
	if err != nil {
		t.Fatalf("beta rejected alongside alpha's quota: %v", err)
	}
	cancel()
	for _, tk := range []*aquoman.Ticket{tk1, tk2, tk3} {
		_, _ = tk.Wait()
	}
}

// TestResultCacheHitServesIdenticalRows runs the same statement three
// times (verbatim, then a whitespace/case variant) against a server
// with the result cache on: the streamed header and row lines must be
// byte-identical across hit and miss, the cache must report the hits,
// and the lifecycle attribution must surface the result_cache_hit state
// on /metrics.
func TestResultCacheHitServesIdenticalRows(t *testing.T) {
	db := aquoman.Open()
	if err := db.LoadTPCH(0.005, 1); err != nil {
		t.Fatal(err)
	}
	db.EnableObservability()
	db.ConfigureScheduler(aquoman.SchedulerConfig{
		MaxInFlight: 2, QueueDepth: 8,
		Tenants: map[string]aquoman.TenantConfig{},
	})
	db.EnableResultCache(1<<20, 0)
	defer db.Close()
	_, ts := newTestServer(t, Config{DB: db})

	get := func(q string) []string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(q) + "&tenant=beta")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		// Drop the trailer: its elapsed_ms varies per request by design.
		return lines[:len(lines)-1]
	}
	const q = "select count(*) as n from lineitem where l_quantity < 24"
	first := get(q)
	second := get(q)
	variant := get("SELECT COUNT(*) AS n FROM lineitem WHERE  l_quantity<24")
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatalf("cache hit not byte-identical:\n%v\nvs\n%v", first, second)
	}
	if strings.Join(first, "\n") != strings.Join(variant, "\n") {
		t.Fatalf("canonicalized variant not byte-identical:\n%v\nvs\n%v", first, variant)
	}
	st := db.ResultCacheStats()
	if st.Hits < 2 || st.Misses < 1 {
		t.Fatalf("cache stats = %+v, want >=2 hits over 1 miss", st)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`state="result_cache_hit"`,
		"sched_result_cache_hits_total",
		`tenant="beta"`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestDMLEndpoint drives the full HTAP loop over HTTP: CREATE TABLE,
// INSERT, SELECT of the un-merged tail, UPDATE, and the error surface
// (compile 400, epoch precondition 409, method 405).
func TestDMLEndpoint(t *testing.T) {
	db := aquoman.Open()
	defer db.Close()
	_, ts := newTestServer(t, Config{DB: db})

	post := func(body, query string) (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/dml"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("bad /dml response: %v", err)
		}
		return resp.StatusCode, m
	}

	if code, m := post(`{"sql": "CREATE TABLE kv (k int, v int64)"}`, ""); code != 200 || m["op"] != "create" {
		t.Fatalf("create: %d %v", code, m)
	}
	code, m := post(`{"sql": "INSERT INTO kv (k, v) VALUES (1, 10), (2, 20)"}`, "")
	if code != 200 || m["rows_affected"].(float64) != 2 {
		t.Fatalf("insert: %d %v", code, m)
	}
	epoch := uint64(m["epoch"].(float64))

	// The tail rows are visible to queries before any merge.
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape("select sum(v) as s from kv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := ndjson(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query after insert: %d %v", resp.StatusCode, lines)
	}
	if got := lines[1]["_row"].([]interface{})[0].(float64); got != 30 {
		t.Fatalf("sum(v) = %v, want 30", got)
	}

	// Epoch precondition: stale → 409 carrying the current epoch.
	if code, m := post(`{"sql": "DELETE FROM kv"}`, "?ifepoch=999999"); code != http.StatusConflict || uint64(m["epoch"].(float64)) != epoch {
		t.Fatalf("stale ifepoch: %d %v (want 409 @ epoch %d)", code, m, epoch)
	}
	// Matching precondition succeeds.
	if code, m := post(`{"sql": "UPDATE kv SET v = v + 1 WHERE k = 1"}`, fmt.Sprintf("?ifepoch=%d", epoch)); code != 200 || m["rows_affected"].(float64) != 1 {
		t.Fatalf("update: %d %v", code, m)
	}

	if code, m := post(`{"sql": "INSERT INTO nosuch VALUES (1)"}`, ""); code != http.StatusBadRequest {
		t.Fatalf("bad table: %d %v", code, m)
	}
	resp, err = http.Get(ts.URL + "/dml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /dml = %d, want 405", resp.StatusCode)
	}
}
