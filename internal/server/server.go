// Package server exposes an AQUOMAN DB as a network query service: an
// HTTP/JSON front end that compiles SQL (or picks a TPC-H query), admits
// the work through the concurrent scheduler, and streams results back as
// NDJSON — with the request's context threaded end-to-end, so a client
// that disconnects (or a deadline that fires) stops the query at its next
// page-read or morsel checkpoint and frees the scheduler slot.
//
// Endpoints:
//
//	/            index (JSON listing of the mounted endpoints)
//	/query       GET ?q=<sql> or POST {"sql": ..., "timeout_ms": ...}
//	/dml         POST {"sql": ...} — INSERT/UPDATE/DELETE/CREATE TABLE
//	/tpch        GET ?q=1..22 — the Table-Task offload path
//	/healthz     liveness (503 while draining)
//	/metrics     Prometheus text (when the DB has an observer)
//	/debug/vars  expvar JSON (when the DB has an observer)
//
// Backpressure is explicit: a full scheduler queue returns 503 with a
// Retry-After header instead of queueing unboundedly, and a tenant over
// its own admission quota gets 429 (the X-Tenant header or ?tenant=
// parameter names the tenant; ?lane= picks the priority lane). Drain
// puts the server into a mode where new queries are rejected but
// in-flight ones finish, for graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aquoman"
	"aquoman/internal/cluster"
	"aquoman/internal/col"
	"aquoman/internal/distrib"
	"aquoman/internal/engine"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/sql"
)

// Config parameterizes a Server.
type Config struct {
	// DB is the backing AQUOMAN instance (required).
	DB *aquoman.DB
	// DefaultTimeout bounds queries that specify no timeout_ms. Zero
	// means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps every query's deadline, including requests that
	// specify none or a larger timeout_ms. Zero means no cap.
	MaxTimeout time.Duration
	// ChunkRows is the number of result rows written between flushes of
	// the NDJSON stream. Values < 1 default to 256.
	ChunkRows int
	// SlowQueryThreshold triggers the slow-query log: every query whose
	// wall time reaches it (including deadline-exceeded ones) is logged
	// as one JSON line with its per-state time breakdown. Zero disables
	// the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query lines; nil means os.Stderr.
	SlowQueryLog io.Writer
	// Coordinator, when set, turns /tpch into the cluster entry point:
	// whole queries scatter across the coordinator's workers instead of
	// running on the local DB. Worker-mode requests (?partial=1) still
	// execute against the local DB, so a node can serve both roles.
	Coordinator *cluster.Coordinator
}

// Server is the HTTP query service. It implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	draining atomic.Bool
	inflight sync.WaitGroup

	qseq   atomic.Int64 // query ids for lifecycle telemetry
	slowMu sync.Mutex   // serializes slow-query log lines
}

// New builds a Server over cfg.DB.
func New(cfg Config) *Server {
	if cfg.ChunkRows < 1 {
		cfg.ChunkRows = 256
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.instrument("query", true, s.handleQuery))
	s.mux.HandleFunc("/dml", s.instrument("dml", true, s.handleDML))
	s.mux.HandleFunc("/tpch", s.instrument("tpch", true, s.handleTPCH))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", false, s.handleHealthz))
	if obs := cfg.DB.Obs; obs != nil && obs.Reg != nil {
		reg := obs.Reg
		s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = w.Write([]byte(reg.Snapshot().Prometheus()))
		})
		s.mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_, _ = w.Write([]byte(reg.Snapshot().Expvar()))
		})
	}
	// Runtime profiling rides on the same mux: /debug/pprof/ serves the
	// index plus the named profiles (heap, goroutine, mutex, ...), and
	// profile/trace sample the live server under real query load.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// ServeHTTP dispatches to the mounted endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting queries (they get 503) and blocks until every
// in-flight request has finished or ctx expires. Health checks flip to
// 503 immediately so load balancers route away. Call before shutting the
// listener down.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusWriter records the response code and forwards Flush so NDJSON
// streaming keeps working through the instrumentation layer.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint with inflight tracking, request/latency
// metrics, and (for query endpoints) the drain gate.
func (s *Server) instrument(endpoint string, gated bool, h http.HandlerFunc) http.HandlerFunc {
	o := s.cfg.DB.Obs // nil-safe: obs metrics accept a nil receiver
	return func(w http.ResponseWriter, r *http.Request) {
		if gated && s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			o.Counter("server_requests_total", "endpoint", endpoint, "code", "503").Inc()
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		o.Gauge("server_inflight").Add(1)
		defer o.Gauge("server_inflight").Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		o.Counter("server_requests_total", "endpoint", endpoint, "code", strconv.Itoa(sw.code)).Inc()
		o.Histogram("server_request_ms", "endpoint", endpoint).Observe(time.Since(start).Milliseconds())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// queryMeta carries a request's tenant identity, priority lane, and
// result-cache key through the run path. A zero cacheKey means the
// query bypasses the result cache (partial/cluster modes, or no cache
// configured).
type queryMeta struct {
	tenant   string
	lane     aquoman.Lane
	cacheKey string
}

// tenantLabel is the metrics label for this request's tenant.
func (m queryMeta) tenantLabel() string {
	if m.tenant == "" {
		return "default"
	}
	return m.tenant
}

// tenantOf extracts the requesting tenant: the X-Tenant header wins,
// then the tenant query parameter. Empty means the default tenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

// laneOf resolves the request's priority lane from the lane query
// parameter, defaulting per endpoint (point queries are interactive,
// TPC-H scans are batch).
func laneOf(r *http.Request, def aquoman.Lane) (aquoman.Lane, error) {
	v := r.URL.Query().Get("lane")
	if v == "" {
		return def, nil
	}
	return aquoman.ParseLane(v)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"service": "aquoman-serve",
		"version": aquoman.Version,
		"endpoints": []string{
			"/query?q=<sql> (GET) or POST {\"sql\": ..., \"timeout_ms\": ...}",
			"/dml (POST {\"sql\": ...}, optional ?ifepoch=)",
			"/tpch?q=1..22",
			"/tpch?q=1..22&partial=1 (cluster worker: raw per-shard partials)",
			"/healthz",
			"/metrics",
			"/debug/vars",
			"/debug/pprof/",
			"tenancy: X-Tenant header or ?tenant=; ?lane=interactive|batch",
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("q")
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				writeError(w, http.StatusBadRequest, "invalid timeout_ms")
				return
			}
			req.TimeoutMS = ms
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET ?q= or POST JSON")
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "missing SQL statement (q parameter or \"sql\" field)")
		return
	}

	p, err := sql.Plan(req.SQL, s.cfg.DB.Store)
	if err != nil {
		// A statement that fails to compile is the client's fault; an
		// execution failure below is the server's.
		var ce *sql.CompileError
		if errors.As(err, &ce) {
			writeError(w, http.StatusBadRequest, "compile: "+ce.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	lane, err := laneOf(r, aquoman.LaneInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	meta := queryMeta{tenant: tenantOf(r), lane: lane, cacheKey: aquoman.CanonicalSQL(req.SQL)}
	s.runAndStream(w, r, p, req.SQL, time.Duration(req.TimeoutMS)*time.Millisecond, meta)
}

// dmlRequest is the POST /dml body.
type dmlRequest struct {
	SQL string `json:"sql"`
	// IfEpoch, when non-zero, is an optimistic precondition: the write
	// only runs if the catalog epoch still equals it (409 otherwise).
	IfEpoch uint64 `json:"if_epoch"`
}

// dmlResponse is the POST /dml success body.
type dmlResponse struct {
	Op           string `json:"op"`
	Table        string `json:"table"`
	RowsAffected int    `json:"rows_affected"`
	Epoch        uint64 `json:"epoch"`
}

// handleDML executes one write statement (INSERT, UPDATE, DELETE,
// CREATE TABLE) against the DB's write path. Compile failures are the
// client's fault (400); an optimistic conflict that survives the DB's
// internal retries — or a failed ?ifepoch= precondition — is 409 with
// the current epoch, so the client can re-read and retry.
func (s *Server) handleDML(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST {\"sql\": ...}")
		return
	}
	var req dmlRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if v := r.URL.Query().Get("ifepoch"); v != "" {
		e, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid ifepoch")
			return
		}
		req.IfEpoch = e
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "missing \"sql\" field")
		return
	}
	cat := s.cfg.DB.Catalog()
	if req.IfEpoch != 0 {
		if cur := cat.Epoch(); cur != req.IfEpoch {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]interface{}{
				"error": "epoch precondition failed", "epoch": cur})
			return
		}
	}
	res, err := s.cfg.DB.Exec(r.Context(), req.SQL)
	if err != nil {
		var ce *sql.CompileError
		switch {
		case errors.As(err, &ce):
			writeError(w, http.StatusBadRequest, "compile: "+ce.Error())
		case errors.Is(err, aquoman.ErrConflict):
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]interface{}{
				"error": err.Error(), "epoch": cat.Epoch()})
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(dmlResponse{
		Op: res.Op, Table: res.Table, RowsAffected: res.Rows, Epoch: res.Epoch,
	})
}

func (s *Server) handleTPCH(w http.ResponseWriter, r *http.Request) {
	q, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid q parameter (want 1..22)")
		return
	}
	var timeout time.Duration
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "invalid timeout_ms")
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if r.URL.Query().Get("partial") == "1" {
		s.runPartialAndStream(w, r, q, timeout)
		return
	}
	if s.cfg.Coordinator != nil {
		s.runClusterAndStream(w, r, q, timeout)
		return
	}
	p, err := aquoman.TPCHQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	lane, err := laneOf(r, aquoman.LaneBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	meta := queryMeta{tenant: tenantOf(r), lane: lane, cacheKey: fmt.Sprintf("tpch:q%d", q)}
	s.runAndStream(w, r, p, fmt.Sprintf("tpch q%d", q), timeout, meta)
}

// runPartialAndStream is worker mode: derive this shard's partial plan
// for TPC-H query q (the same distrib.PartialPlan every cluster tier
// uses, so the coordinator can trust the partial's shape), run it through
// the scheduler under the request context, and stream the raw stored
// int64s back in the cluster wire format. The coordinator merges the
// partials; nothing is rendered here.
func (s *Server) runPartialAndStream(w http.ResponseWriter, r *http.Request, q int, asked time.Duration) {
	probe, err := aquoman.TPCHQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := plan.Bind(probe, s.cfg.DB.Store); err != nil {
		writeError(w, http.StatusBadRequest, "bind: "+err.Error())
		return
	}
	strat, cerr := distrib.Classify(probe)
	if cerr != nil {
		// A 4xx tells the coordinator retrying elsewhere is pointless: the
		// query shape itself cannot distribute.
		writeError(w, http.StatusBadRequest, "not distributable: "+cerr.Error())
		return
	}
	fresh, _ := aquoman.TPCHQuery(q)
	part, err := distrib.PartialPlan(fresh, strat)
	if err != nil {
		writeError(w, http.StatusBadRequest, "partial plan: "+err.Error())
		return
	}
	// Worker-mode partials run on the batch lane and never touch the
	// result cache: the coordinator merges raw shards, so serving a
	// whole cached result here would corrupt the merge.
	meta := queryMeta{tenant: tenantOf(r), lane: aquoman.LaneBatch}
	s.runAndStreamMode(w, r, part, fmt.Sprintf("tpch q%d partial", q), asked, strat.String(), meta)
}

// runClusterAndStream is coordinator mode: the whole query scatters over
// the cluster and the merged result streams back rendered, with the
// degradation report riding on the trailer.
func (s *Server) runClusterAndStream(w http.ResponseWriter, r *http.Request, q int, asked time.Duration) {
	ctx := r.Context()
	if d := s.deadline(asked); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	lc := obs.NewLifecycle(fmt.Sprintf("q%d", s.qseq.Add(1)))
	ctx = obs.WithLifecycle(ctx, lc)
	label := fmt.Sprintf("tpch q%d cluster", q)

	meta := queryMeta{tenant: tenantOf(r)}
	start := time.Now()
	b, rep, err := s.cfg.Coordinator.RunTPCH(ctx, q)
	defer func() {
		lc.Finish()
		if o := s.cfg.DB.Obs; o != nil {
			lc.ObserveInto(o.Reg)
			o.Reg.Histogram("query_latency_ns", "tenant", meta.tenantLabel()).Observe(int64(lc.Wall()))
		}
		s.logSlow(lc, label, err)
	}()
	if err != nil {
		var ne *cluster.NodeError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
		case errors.Is(err, context.Canceled):
			// The client is gone; there is nobody to write an error to.
		case errors.As(err, &ne):
			writeError(w, http.StatusBadGateway, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	endEmit := lc.Timer(obs.StateEmit)
	s.stream(ctx, w, b, time.Since(start), rep)
	endEmit()
}

// deadline resolves a request's effective timeout from the client's ask
// and the server's default/cap.
func (s *Server) deadline(asked time.Duration) time.Duration {
	d := s.cfg.DefaultTimeout
	if asked > 0 {
		d = asked
	}
	if s.cfg.MaxTimeout > 0 && (d == 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

// runAndStream admits the plan through the scheduler under the request's
// context and streams the result as NDJSON. The context is cancelled when
// the client disconnects, so an abandoned query stops consuming flash
// bandwidth at its next checkpoint and its scheduler slot frees up.
//
// A per-query obs.Lifecycle rides in the context: the scheduler, flash
// layer, and executor attribute queue-wait / device / CPU states into
// it, emit time is attributed here, and the finished breakdown feeds
// the query_latency_ns / query_state_ns histograms and the slow-query
// log.
func (s *Server) runAndStream(w http.ResponseWriter, r *http.Request, p aquoman.Plan, label string, asked time.Duration, meta queryMeta) {
	s.runAndStreamMode(w, r, p, label, asked, "", meta)
}

// runAndStreamMode is runAndStream with an optional raw worker mode: a
// non-empty rawStrategy streams the batch as unrendered int64s in the
// cluster wire format instead of display values.
func (s *Server) runAndStreamMode(w http.ResponseWriter, r *http.Request, p aquoman.Plan, label string, asked time.Duration, rawStrategy string, meta queryMeta) {
	ctx := r.Context()
	if d := s.deadline(asked); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	lc := obs.NewLifecycle(fmt.Sprintf("q%d", s.qseq.Add(1)))
	ctx = obs.WithLifecycle(ctx, lc)

	start := time.Now()
	var (
		res *aquoman.Result
		hit bool
		err error
	)
	if rawStrategy == "" && meta.cacheKey != "" && s.cfg.DB.ResultCacheHandle() != nil {
		res, hit, err = s.cfg.DB.RunCachedCtx(ctx, meta.tenant, meta.lane, meta.cacheKey, p)
	} else {
		var t *aquoman.Ticket
		t, err = s.cfg.DB.SubmitTenantCtx(ctx, meta.tenant, meta.lane, p)
		if err == nil {
			res, err = t.Wait()
		}
	}
	// Admission rejects never ran: keep them out of the latency
	// histograms (server_requests_total already counts them). A tenant
	// over its own quota gets 429 so clients can tell "slow down" from
	// "server overloaded" (503).
	switch {
	case errors.Is(err, aquoman.ErrTenantQuota):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, aquoman.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "scheduler queue full, retry later")
		return
	case errors.Is(err, aquoman.ErrSchedulerClosed):
		writeError(w, http.StatusServiceUnavailable, "scheduler closed")
		return
	}
	defer func() {
		lc.Finish()
		if o := s.cfg.DB.Obs; o != nil {
			lc.ObserveInto(o.Reg)
			o.Reg.Histogram("query_latency_ns", "tenant", meta.tenantLabel()).Observe(int64(lc.Wall()))
		}
		s.logSlow(lc, label, err)
	}()
	if hit {
		// The whole wait was absorbed by the result cache; attribute it
		// so coverage stays honest on cached queries.
		lc.Add(obs.StateResultCacheHit, time.Since(start))
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
		case errors.Is(err, context.Canceled):
			// The client is gone; there is nobody to write an error to.
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	endEmit := lc.Timer(obs.StateEmit)
	if rawStrategy != "" {
		s.streamRaw(ctx, w, res.Batch, rawStrategy)
	} else {
		s.stream(ctx, w, res.Batch, time.Since(start), nil)
	}
	endEmit()
}

// slowQueryLine is one slow-query log record; states_ms holds only the
// nonzero states.
type slowQueryLine struct {
	Time     string             `json:"time"`
	ID       string             `json:"id"`
	Query    string             `json:"query"`
	Error    string             `json:"error,omitempty"`
	WallMS   float64            `json:"wall_ms"`
	Coverage float64            `json:"coverage"`
	StatesMS map[string]float64 `json:"states_ms"`
}

// logSlow writes one JSON line for a query whose wall time reached the
// configured threshold, with its wait-state breakdown.
func (s *Server) logSlow(lc *obs.Lifecycle, label string, err error) {
	th := s.cfg.SlowQueryThreshold
	if th <= 0 || lc.Wall() < th {
		return
	}
	if o := s.cfg.DB.Obs; o != nil {
		o.Counter("server_slow_queries_total").Inc()
	}
	line := slowQueryLine{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		ID:       lc.ID,
		Query:    label,
		WallMS:   float64(lc.Wall().Microseconds()) / 1000,
		Coverage: lc.Coverage(),
		StatesMS: make(map[string]float64),
	}
	if err != nil {
		line.Error = err.Error()
	}
	for name, ns := range lc.Breakdown() {
		if ns > 0 {
			line.StatesMS[name] = float64(ns) / 1e6
		}
	}
	buf, jerr := json.Marshal(line)
	if jerr != nil {
		return
	}
	out := s.cfg.SlowQueryLog
	if out == nil {
		out = os.Stderr
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	_, _ = out.Write(append(buf, '\n'))
}

// stream writes the batch as NDJSON: a schema header line, one JSON array
// per row, and a trailer with the row count. Chunks of ChunkRows rows are
// flushed so clients see results incrementally; a dead context stops the
// stream at the next chunk boundary.
func (s *Server) stream(ctx context.Context, w http.ResponseWriter, b *engine.Batch, elapsed time.Duration, rep *cluster.Report) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	type schemaField struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	header := struct {
		Schema []schemaField `json:"schema"`
	}{}
	for _, f := range b.Schema {
		header.Schema = append(header.Schema, schemaField{Name: f.Name, Type: f.Typ.String()})
	}
	if err := enc.Encode(&header); err != nil {
		return
	}

	n := b.NumRows()
	written := 0
	row := make([]interface{}, len(b.Schema))
	for r := 0; r < n; r++ {
		for c, f := range b.Schema {
			row[c] = jsonValue(f, b.Cols[c][r])
		}
		if err := enc.Encode(row); err != nil {
			return
		}
		written++
		if written%s.cfg.ChunkRows == 0 {
			if ctx.Err() != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	trailer := struct {
		Done          bool    `json:"done"`
		Rows          int     `json:"rows"`
		ElapsedMS     float64 `json:"elapsed_ms"`
		Strategy      string  `json:"strategy,omitempty"`
		DegradedNodes []int   `json:"degraded_nodes,omitempty"`
	}{Done: true, Rows: n, ElapsedMS: float64(elapsed.Microseconds()) / 1000}
	if rep != nil {
		trailer.Strategy = rep.Strategy
		trailer.DegradedNodes = rep.DegradedNodes
	}
	_ = enc.Encode(&trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// streamRaw writes the cluster wire format: header with schema+strategy,
// one raw int64 array per row, and the {"done","rows"} trailer the
// coordinator uses to distinguish completion from truncation. A dead
// context stops at the next chunk boundary — the resulting trailerless
// stream is exactly what tells the coordinator the partial is unusable.
func (s *Server) streamRaw(ctx context.Context, w http.ResponseWriter, b *engine.Batch, strategy string) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	header := cluster.HeaderFor(b.Schema, strategy)
	if err := enc.Encode(&header); err != nil {
		return
	}
	n := b.NumRows()
	row := make([]int64, len(b.Schema))
	for r := 0; r < n; r++ {
		for c := range b.Schema {
			row[c] = b.Cols[c][r]
		}
		if err := enc.Encode(row); err != nil {
			return
		}
		if (r+1)%s.cfg.ChunkRows == 0 {
			if ctx.Err() != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	_ = enc.Encode(&cluster.WireTrailer{Done: true, Rows: n})
	if flusher != nil {
		flusher.Flush()
	}
}

// jsonValue converts one stored value to its JSON representation:
// integers stay numeric, booleans become true/false, and dates, decimals
// and strings render through the engine's display path.
func jsonValue(f plan.Field, v int64) interface{} {
	switch f.Typ {
	case col.Int64, col.Int32:
		return v
	case col.Bool:
		return v != 0
	default:
		return engine.RenderValue(f, v)
	}
}

// String implements fmt.Stringer for debugging.
func (s *Server) String() string {
	return fmt.Sprintf("server.Server{draining: %v}", s.draining.Load())
}
