package faults

import (
	"errors"
	"testing"
	"time"

	"aquoman/internal/flash"
	"aquoman/internal/obs"
)

// schedule drains n read attempts on sequential pages and records which
// ones failed with which kind.
func schedule(in *Injector, n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		_, err := in.ReadFault("f", int64(i), flash.Host, 0)
		if err == nil {
			out[i] = "ok"
			continue
		}
		var fe *Error
		if !errors.As(err, &fe) {
			out[i] = "untyped"
			continue
		}
		out[i] = fe.Kind.String()
	}
	return out
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, PTransient: 0.05, PPermanent: 0.01, PSlow: 0.02, Stall: time.Millisecond}
	a := schedule(New(cfg), 2000)
	b := schedule(New(cfg), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at read %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := schedule(New(Config{Seed: 8, PTransient: 0.05, PPermanent: 0.01, PSlow: 0.02}), 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestTransientRepeatCountsDown(t *testing.T) {
	in := New(Config{Seed: 1, PTransient: 1, TransientRepeat: 3})
	// First attempt starts the fault; it fails 3 attempts total, then the
	// page clears... except PTransient=1 restarts it. Use a rule-free
	// injector with one scripted page instead.
	in = New(Config{TransientRepeat: 3})
	in.AddRule(Rule{File: "f", Page: 0, Who: -1, Kind: Transient, Count: 1})
	in.transientLeft[pageKey{"f", 0}] = 2 // as the random path would set
	for i := 0; i < 2; i++ {
		if _, err := in.ReadFault("f", 0, flash.Host, i); err == nil {
			t.Fatalf("attempt %d: fault cleared early", i)
		}
	}
	// Countdown exhausted and the one-shot rule also fires once.
	if _, err := in.ReadFault("f", 0, flash.Host, 2); err == nil {
		t.Fatal("scripted rule did not fire")
	}
	if _, err := in.ReadFault("f", 0, flash.Host, 3); err != nil {
		t.Fatalf("page did not clear: %v", err)
	}
}

func TestRuleMatching(t *testing.T) {
	in := New(Config{})
	in.AddRule(Rule{File: "tpch/lineitem/*", Page: -1, Who: int(flash.Aquoman), Kind: Transient})
	if _, err := in.ReadFault("tpch/lineitem/l_quantity.dat", 3, flash.Aquoman, 0); err == nil {
		t.Fatal("prefix rule did not fire")
	}
	if _, err := in.ReadFault("tpch/orders/o_orderkey.dat", 3, flash.Aquoman, 0); err != nil {
		t.Fatal("rule fired on non-matching file")
	}
	if _, err := in.ReadFault("tpch/lineitem/l_quantity.dat", 3, flash.Host, 0); err != nil {
		t.Fatal("rule fired for wrong requester")
	}
}

func TestPermanentRuleLatches(t *testing.T) {
	in := New(Config{})
	in.AddRule(Rule{File: "f", Page: 2, Who: -1, Kind: Permanent, Count: 1})
	for i := 0; i < 3; i++ {
		_, err := in.ReadFault("f", 2, flash.Host, i)
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != Permanent {
			t.Fatalf("attempt %d: err = %v, want latched permanent", i, err)
		}
		if fe.Transient() {
			t.Fatal("permanent fault claims to be transient")
		}
	}
	if _, err := in.ReadFault("f", 3, flash.Host, 0); err != nil {
		t.Fatal("neighbouring page poisoned")
	}
}

func TestKillDeviceAndRevive(t *testing.T) {
	in := New(Config{})
	in.KillDevice()
	_, err := in.ReadFault("f", 0, flash.Host, 0)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != DeviceStuck {
		t.Fatalf("err = %v, want DeviceStuck", err)
	}
	in.Revive()
	if _, err := in.ReadFault("f", 0, flash.Host, 0); err != nil {
		t.Fatalf("revived device still fails: %v", err)
	}
}

func TestHookOverrides(t *testing.T) {
	in := New(Config{Stall: 5 * time.Millisecond})
	in.Hook = func(file string, page int64, who flash.Requester, attempt int) (Kind, bool) {
		if page == 1 && attempt == 0 {
			return Transient, true
		}
		if page == 2 {
			return SlowRead, true
		}
		return 0, false
	}
	if _, err := in.ReadFault("f", 1, flash.Host, 0); err == nil {
		t.Fatal("hook fault not injected")
	}
	if _, err := in.ReadFault("f", 1, flash.Host, 1); err != nil {
		t.Fatal("hook fired on retry attempt")
	}
	stall, err := in.ReadFault("f", 2, flash.Host, 0)
	if err != nil || stall != 5*time.Millisecond {
		t.Fatalf("slow hook: stall %v err %v", stall, err)
	}
}

func TestSlowRuleStalls(t *testing.T) {
	in := New(Config{})
	in.AddRule(Rule{File: "f", Page: -1, Who: -1, Kind: SlowRead, Count: 2, Stall: time.Millisecond})
	for i := 0; i < 2; i++ {
		stall, err := in.ReadFault("f", int64(i), flash.Host, 0)
		if err != nil || stall != time.Millisecond {
			t.Fatalf("read %d: stall %v err %v", i, stall, err)
		}
	}
	if stall, _ := in.ReadFault("f", 9, flash.Host, 0); stall != 0 {
		t.Fatal("count-bounded slow rule kept firing")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,transient=0.001,repeat=2,permanent=0.0001,slow=0.01,stall=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, PTransient: 0.001, TransientRepeat: 2,
		PPermanent: 0.0001, PSlow: 0.01, Stall: 2 * time.Millisecond}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("seed"); err == nil {
		t.Fatal("missing value accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.TransientRepeat != 1 {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
}

func TestCountsAndObserve(t *testing.T) {
	in := New(Config{})
	in.AddRule(Rule{File: "", Page: -1, Who: -1, Kind: Transient, Count: 3})
	for i := 0; i < 5; i++ {
		in.ReadFault("f", int64(i), flash.Aquoman, 0)
	}
	c := in.Counts()
	if c.Total(Transient) != 3 || c.TotalInjected() != 3 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Reads[flash.Aquoman] != 5 {
		t.Fatalf("Reads = %d, want 5", c.Reads[flash.Aquoman])
	}
	reg := obs.NewRegistry()
	in.Observe(reg) // seeds pre-existing counts
	got := reg.Counter("faults_injected_total", "kind", "transient", "requester", "aquoman").Value()
	if got != 3 {
		t.Fatalf("observed counter = %d, want 3", got)
	}
}

func TestEndToEndThroughDevice(t *testing.T) {
	dev := flash.NewDevice()
	f := dev.Create("f")
	f.Append(make([]byte, 4*flash.PageSize), flash.Host)
	in := New(Config{})
	in.AddRule(Rule{File: "f", Page: 1, Who: -1, Kind: Transient, Count: 2})
	dev.SetFaults(in)
	buf := make([]byte, 4*flash.PageSize)
	if _, err := f.ReadAt(buf, 0, flash.Host); err != nil {
		t.Fatalf("retry did not absorb scripted transients: %v", err)
	}
	st := dev.Stats()
	if st.ReadRetries[flash.Host] != 2 {
		t.Fatalf("ReadRetries = %d, want 2", st.ReadRetries[flash.Host])
	}
	// A permanent page fails the read with an errors.As-able *Error.
	in.AddRule(Rule{File: "f", Page: 2, Who: -1, Kind: Permanent})
	_, err := f.ReadAt(buf, 0, flash.Host)
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Permanent || fe.Page != 2 {
		t.Fatalf("err = %v, want permanent fault on page 2", err)
	}
}

// The hook runs outside the injector lock: a hook that re-enters the
// injector (Counts) or blocks must not deadlock, and reads of other
// files must proceed while a hooked read is parked. Regression for the
// lock-across-callback hazard fixed for the sched gating tests.
func TestHookRunsOutsideLock(t *testing.T) {
	in := New(Config{})
	gate := make(chan struct{})
	in.Hook = func(file string, page int64, who flash.Requester, attempt int) (Kind, bool) {
		if file == "blocked" {
			in.Counts() // re-entrant call: self-deadlock before the fix
			<-gate
		}
		return 0, false
	}
	parked := make(chan struct{})
	go func() {
		if _, err := in.ReadFault("blocked", 0, flash.Host, 0); err != nil {
			t.Error(err)
		}
		close(parked)
	}()
	// While "blocked" is parked inside its hook, unrelated reads and
	// accounting must flow.
	deadline := time.After(2 * time.Second)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			if _, err := in.ReadFault("other", int64(i), flash.Aquoman, 0); err != nil {
				t.Error(err)
			}
		}
		in.Counts()
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("reads wedged behind a blocking hook")
	}
	close(gate)
	<-parked
	if got := in.Counts().Reads[flash.Aquoman]; got != 100 {
		t.Fatalf("aquoman reads = %d, want 100", got)
	}
}
