// Package faults is a deterministic, seedable fault injector for the
// simulated flash device. Production pushdown systems (Farview-style
// disaggregated operators, cloud pushdown over S3) treat storage faults as
// first-class events: page reads fail transiently and are retried, pages
// go latently bad, devices stall or die. This package reproduces that
// failure model so the execution layers above internal/flash can be tested
// under exact, replayable fault schedules.
//
// An Injector plugs into flash.Device via Device.SetFaults. On every page
// read the device consults the injector, which decides — from an explicit
// scripted schedule (Rules / Hook) or from a seeded pseudo-random process
// (Config probabilities) — whether the read stalls, fails transiently,
// fails permanently, or the whole device is stuck. All state is guarded by
// one mutex and all randomness flows from Config.Seed, so a single-threaded
// query replays the identical fault schedule on every run.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"aquoman/internal/flash"
	"aquoman/internal/obs"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Transient is a latent page-read error that clears after a bounded
	// number of failures (ECC retry succeeds); the retry layer absorbs it.
	Transient Kind = iota
	// Permanent marks a page unreadable forever (a bad block).
	Permanent
	// SlowRead stalls the read (latency spike) but returns the data.
	SlowRead
	// DeviceStuck fails every read on the device until Revive is called —
	// the stalled/dead-device scenario multi-SSD execution must survive.
	DeviceStuck
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case SlowRead:
		return "slow"
	case DeviceStuck:
		return "stuck"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is the typed error attached to every injected read failure. It
// unwraps from any error returned by the read path, so callers can
// errors.As to learn which page failed and whether a retry may help.
type Error struct {
	File string
	Page int64
	Who  flash.Requester
	Kind Kind
}

func (e *Error) Error() string {
	return fmt.Sprintf("injected %s fault: file %q page %d (%s)", e.Kind, e.File, e.Page, e.Who)
}

// Transient reports whether the failure may clear on retry. The flash
// retry layer checks this via an interface assertion, keeping flash free
// of a dependency on this package.
func (e *Error) Transient() bool { return e.Kind == Transient }

// Rule is one scripted fault: it fires on reads matching File/Page/Who.
// Scripted rules make schedules exact — the differential harness uses them
// to place a fault on a specific page of a specific column file.
type Rule struct {
	// File matches the flash file name; "" matches any file, and a
	// trailing '*' matches by prefix ("tpch/lineitem/*").
	File string
	// Page matches one page; -1 matches any page.
	Page int64
	// Who limits the rule to one requester; -1 matches both.
	Who int
	// Kind is the fault to inject.
	Kind Kind
	// Count bounds how many reads the rule fires on (0 = every read).
	// A Transient rule that keeps firing behaves permanently, so bound
	// transient rules by the retry budget to model a clearing fault.
	Count int
	// Stall is the added latency for SlowRead rules.
	Stall time.Duration
}

func (r *Rule) matches(file string, page int64, who flash.Requester) bool {
	if r.File != "" {
		if p, ok := strings.CutSuffix(r.File, "*"); ok {
			if !strings.HasPrefix(file, p) {
				return false
			}
		} else if file != r.File {
			return false
		}
	}
	if r.Page >= 0 && r.Page != page {
		return false
	}
	if r.Who >= 0 && flash.Requester(r.Who) != who {
		return false
	}
	return true
}

// Config parameterizes the seeded pseudo-random fault process. All
// probabilities are per page-read attempt.
type Config struct {
	// Seed drives the deterministic random source.
	Seed int64
	// PTransient is the probability a read starts a transient fault.
	PTransient float64
	// TransientRepeat is how many consecutive attempts a transient fault
	// fails before clearing (default 1).
	TransientRepeat int
	// PPermanent is the probability a read latches its page bad forever.
	PPermanent float64
	// PSlow is the probability of a latency spike; Stall is its length.
	PSlow float64
	Stall time.Duration
}

// ParseSpec parses the aquoman-run -faults flag syntax: comma-separated
// key=value pairs, e.g. "seed=7,transient=0.001,repeat=2,slow=0.0005,
// stall=2ms,permanent=0.0001". Unknown keys are errors.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{TransientRepeat: 1}
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad spec term %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "transient":
			cfg.PTransient, err = strconv.ParseFloat(v, 64)
		case "repeat":
			cfg.TransientRepeat, err = strconv.Atoi(v)
		case "permanent":
			cfg.PPermanent, err = strconv.ParseFloat(v, 64)
		case "slow":
			cfg.PSlow, err = strconv.ParseFloat(v, 64)
		case "stall":
			cfg.Stall, err = time.ParseDuration(v)
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: bad value for %q: %v", k, err)
		}
	}
	if cfg.TransientRepeat < 1 {
		cfg.TransientRepeat = 1
	}
	return cfg, nil
}

// Counts is a snapshot of the injector's per-requester fault accounting.
type Counts struct {
	// Injected counts injected faults by kind and requester.
	Injected [numKinds][flash.NumRequesters]int64
	// Reads counts every read attempt the injector examined.
	Reads [flash.NumRequesters]int64
}

// Total sums injected faults of kind k over requesters.
func (c Counts) Total(k Kind) int64 {
	var t int64
	for _, v := range c.Injected[k] {
		t += v
	}
	return t
}

// TotalInjected sums every injected fault.
func (c Counts) TotalInjected() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		t += c.Total(k)
	}
	return t
}

type pageKey struct {
	file string
	page int64
}

// Injector implements flash.FaultInjector. The zero value injects nothing;
// construct with New.
type Injector struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand

	rules []Rule
	fired map[int]int // rule index -> times fired (for Count bounds)

	// Hook, when non-nil, is consulted first and overrides everything
	// else: return a Kind and true to inject, false to pass the read
	// through. attempt is 0 for the first try of a page, 1.. for retries —
	// the deterministic handle the test harness uses to drive exact
	// schedules ("fail page 3 twice, then succeed").
	Hook func(file string, page int64, who flash.Requester, attempt int) (Kind, bool)

	transientLeft map[pageKey]int
	badPages      map[pageKey]bool
	stuck         bool

	counts  Counts
	metrics struct {
		injected [numKinds][flash.NumRequesters]*obs.Counter
	}
}

// New returns an injector running the seeded random process of cfg (plus
// any rules added with AddRule).
func New(cfg Config) *Injector {
	if cfg.TransientRepeat < 1 {
		cfg.TransientRepeat = 1
	}
	return &Injector{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		fired:         make(map[int]int),
		transientLeft: make(map[pageKey]int),
		badPages:      make(map[pageKey]bool),
	}
}

// AddRule appends a scripted fault rule (consulted in insertion order,
// after Hook and before the random process).
func (in *Injector) AddRule(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
	return in
}

// KillDevice makes every subsequent read fail with DeviceStuck.
func (in *Injector) KillDevice() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stuck = true
}

// Revive clears a stuck device.
func (in *Injector) Revive() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stuck = false
}

// Counts returns a snapshot of the fault accounting.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Observe mirrors the injector's per-requester fault counters into reg
// under the faults_injected_total family, labeled by kind and requester
// plus any extra alternating key/value labels. A nil registry detaches.
func (in *Injector) Observe(reg *obs.Registry, extraLabels ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for k := Kind(0); k < numKinds; k++ {
		for r := 0; r < flash.NumRequesters; r++ {
			if reg == nil {
				in.metrics.injected[k][r] = nil
				continue
			}
			labels := append([]string{"kind", k.String(), "requester", flash.Requester(r).String()}, extraLabels...)
			c := reg.Counter("faults_injected_total", labels...)
			c.Add(in.counts.Injected[k][r] - c.Value())
			in.metrics.injected[k][r] = c
		}
	}
}

func (in *Injector) account(k Kind, who flash.Requester) {
	in.counts.Injected[k][who]++
	if c := in.metrics.injected[k][who]; c != nil {
		c.Inc()
	}
}

// ReadFault implements flash.FaultInjector: it is consulted once per page
// per read attempt and returns an added stall plus an error if the read
// fails. It never touches page content — faults are whole-page events, as
// on a real device, so a read either fails or returns exact bytes.
func (in *Injector) ReadFault(file string, page int64, who flash.Requester, attempt int) (time.Duration, error) {
	in.mu.Lock()
	in.counts.Reads[who]++
	hook := in.Hook
	stuck := in.stuck
	in.mu.Unlock()
	// fail must be called with in.mu held.
	fail := func(k Kind) (time.Duration, error) {
		in.account(k, who)
		return 0, &Error{File: file, Page: page, Who: who, Kind: k}
	}
	failNow := func(k Kind) (time.Duration, error) {
		in.mu.Lock()
		defer in.mu.Unlock()
		return fail(k)
	}
	if stuck {
		return failNow(DeviceStuck)
	}
	if hook != nil {
		// The hook runs outside the injector lock: scripted hooks may
		// block (to park one query deterministically) or call back into
		// the injector without wedging unrelated reads.
		if k, ok := hook(file, page, who, attempt); ok {
			if k == SlowRead {
				in.mu.Lock()
				in.account(SlowRead, who)
				stall := in.cfg.Stall
				in.mu.Unlock()
				return stall, nil
			}
			return failNow(k)
		}
		return 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	key := pageKey{file, page}
	if in.badPages[key] {
		return fail(Permanent)
	}
	if left := in.transientLeft[key]; left > 0 {
		in.transientLeft[key] = left - 1
		return fail(Transient)
	}
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(file, page, who) {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		in.fired[i]++
		switch r.Kind {
		case SlowRead:
			in.account(SlowRead, who)
			return r.Stall, nil
		case Permanent:
			in.badPages[key] = true
			return fail(Permanent)
		case DeviceStuck:
			in.stuck = true
			return fail(DeviceStuck)
		default:
			return fail(Transient)
		}
	}
	if in.cfg.PTransient > 0 && in.rng.Float64() < in.cfg.PTransient {
		// The fault fails this attempt and TransientRepeat-1 more.
		if in.cfg.TransientRepeat > 1 {
			in.transientLeft[key] = in.cfg.TransientRepeat - 1
		}
		return fail(Transient)
	}
	if in.cfg.PPermanent > 0 && in.rng.Float64() < in.cfg.PPermanent {
		in.badPages[key] = true
		return fail(Permanent)
	}
	if in.cfg.PSlow > 0 && in.rng.Float64() < in.cfg.PSlow {
		in.account(SlowRead, who)
		return in.cfg.Stall, nil
	}
	return 0, nil
}
