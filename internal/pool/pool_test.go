package pool

import (
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestBytesDoublePut(t *testing.T) {
	p := NewBytes(128)
	buf := p.Get()
	p.Put(buf)
	mustPanic(t, "double put", func() { p.Put(buf) })
}

func TestBytesForeignPut(t *testing.T) {
	p := NewBytes(128)
	mustPanic(t, "foreign put", func() { p.Put(make([]byte, 128)) })
	mustPanic(t, "wrong size", func() { p.Put(make([]byte, 64)) })
}

func TestBytesUseAfterPutSeesPoison(t *testing.T) {
	p := NewBytes(128)
	buf := p.Get()
	for i := range buf {
		buf[i] = 0x11
	}
	p.Put(buf)
	// A holder that kept an alias across Put must observe the sentinel,
	// not its own stale bytes — that is how use-after-put surfaces in
	// tests instead of as silent corruption.
	if buf[0] != bytePoison || buf[len(buf)-1] != bytePoison {
		t.Fatalf("returned buffer not poisoned: % x ... % x", buf[0], buf[len(buf)-1])
	}
}

func TestSmallBuffersFullyPoisoned(t *testing.T) {
	p := NewBytes(32)
	buf := p.Get()
	p.Put(buf)
	for i, b := range buf {
		if b != bytePoison {
			t.Fatalf("byte %d = %#x, want full poison on small buffers", i, b)
		}
	}
	ip := NewInts()
	iv := ip.Get(8)
	ip.Put(iv)
	for i, v := range iv[:cap(iv)] {
		if v != Poison {
			t.Fatalf("word %d = %d, want Poison", i, v)
		}
	}
}

func TestIntsDoublePutAndPoison(t *testing.T) {
	p := NewInts()
	buf := p.Get(1024)
	for i := range buf {
		buf[i] = int64(i)
	}
	p.Put(buf)
	if buf[0] != Poison || buf[cap(buf)-1] != Poison {
		t.Fatalf("returned ints not poisoned: %d ... %d", buf[0], buf[cap(buf)-1])
	}
	mustPanic(t, "double put", func() { p.Put(buf) })
	mustPanic(t, "foreign put", func() { p.Put(make([]int64, 4)) })
}

func TestIntsReusesCapacity(t *testing.T) {
	// The race runtime makes sync.Pool.Get fake random misses, so under
	// -race reuse is only probable, not guaranteed — retry before judging.
	p := NewInts()
	for attempt := 0; attempt < 20; attempt++ {
		a := p.Get(512)
		p.Put(a)
		b := p.Get(100) // smaller request must reuse the 512-cap backing array
		if len(b) != 100 {
			t.Fatalf("len(b) = %d, want 100", len(b))
		}
		reused := cap(b) >= 512
		p.Put(b)
		if reused {
			return
		}
		if !raceEnabled {
			t.Fatalf("cap = %d, want recycled >= 512", cap(b))
		}
	}
	t.Skip("sync.Pool never reused the buffer under the race runtime's randomized misses")
}

// TestPoolConcurrent hammers Get/Put from many goroutines; run under
// -race this proves checked-out buffers are never shared and the
// registry itself is safe.
func TestPoolConcurrent(t *testing.T) {
	bp := NewBytes(256)
	ip := NewInts()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := bp.Get()
				v := ip.Get(64)
				for j := range b {
					b[j] = byte(g)
				}
				for j := range v {
					v[j] = int64(g)
				}
				for j := range b {
					if b[j] != byte(g) {
						t.Errorf("byte buffer shared across goroutines")
						break
					}
				}
				for j := range v {
					if v[j] != int64(g) {
						t.Errorf("int buffer shared across goroutines")
						break
					}
				}
				ip.Put(v)
				bp.Put(b)
			}
		}(g)
	}
	wg.Wait()
}
