// Package pool provides the sync.Pool-backed buffer arena behind the
// fused scan path (internal/tabletask). Steady-state morsel processing
// must not allocate, so the page buffers and decoded-vector scratch that
// a table task needs are checked out once per task and returned when the
// task finishes; the per-morsel loop then runs entirely on recycled
// memory.
//
// Ownership rules (see DESIGN.md §13):
//
//   - Get transfers exclusive ownership to the caller; Put transfers it
//     back. A buffer must be Put at most once and never touched after.
//   - Put poisons the buffer (sentinel words at both ends) so stale
//     aliases that read a returned buffer observe garbage loudly instead
//     of silently reading whatever the next owner wrote.
//   - Double puts and foreign puts (a buffer this pool never handed out)
//     panic immediately: both are ownership bugs that would otherwise
//     surface as cross-query data corruption.
//
// The checked-out registry costs a mutexed map update per Get/Put. That
// is deliberate: pools are hit once per task (thousands of rows), not
// once per morsel, so the check is free at the scale it runs while the
// bugs it catches are the worst kind this codebase can have.
package pool

import (
	"fmt"
	"sync"
)

// Poison is the sentinel written into returned buffers. Reading it back
// out of a live buffer means some holder kept an alias across Put.
const Poison = -0x6b6c6f6f70 // "kloop", negated: never a valid row id/code

// bytePoison is the per-byte sentinel for byte buffers.
const bytePoison = 0xA5

// Bytes is a pool of fixed-size byte buffers (flash page images).
type Bytes struct {
	size int
	mu   sync.Mutex
	out  map[*byte]struct{}
	p    sync.Pool
}

// NewBytes returns a pool of len==size byte buffers.
func NewBytes(size int) *Bytes {
	b := &Bytes{size: size, out: make(map[*byte]struct{})}
	b.p.New = func() interface{} {
		buf := make([]byte, size)
		return &buf
	}
	return b
}

// Get checks a buffer out of the pool. Contents are unspecified (a
// recycled buffer still carries its poison prefix); callers must write
// before they read.
func (b *Bytes) Get() []byte {
	buf := *b.p.Get().(*[]byte)
	b.mu.Lock()
	b.out[&buf[0]] = struct{}{}
	b.mu.Unlock()
	return buf
}

// Put returns a buffer to the pool, poisoning both ends first. It panics
// on a double put or on a buffer that did not come from this pool.
func (b *Bytes) Put(buf []byte) {
	if len(buf) != b.size {
		panic(fmt.Sprintf("pool: Put of %d-byte buffer into %d-byte pool", len(buf), b.size))
	}
	b.mu.Lock()
	if _, ok := b.out[&buf[0]]; !ok {
		b.mu.Unlock()
		panic("pool: double put or foreign buffer")
	}
	delete(b.out, &buf[0])
	b.mu.Unlock()
	poisonBytes(buf)
	b.p.Put(&buf)
}

// poisonBytes stamps the sentinel over the first and last words of buf
// (whole buffer when small). Partial poisoning keeps Put O(1)-ish on
// 8 KB pages while still tripping any reader of the common prefixes.
func poisonBytes(buf []byte) {
	n := len(buf)
	if n <= 64 {
		for i := range buf {
			buf[i] = bytePoison
		}
		return
	}
	for i := 0; i < 32; i++ {
		buf[i] = bytePoison
		buf[n-1-i] = bytePoison
	}
}

// Ints is a pool of int64 scratch slices (decoded page vectors). Slices
// are recycled by capacity: Get returns a slice of exactly n elements,
// reusing a pooled backing array when it is big enough.
type Ints struct {
	mu  sync.Mutex
	out map[*int64]struct{}
	p   sync.Pool
}

// NewInts returns an int64 slice pool.
func NewInts() *Ints {
	return &Ints{out: make(map[*int64]struct{})}
}

// Get checks out a slice of n int64s (n > 0). Contents are unspecified.
func (s *Ints) Get(n int) []int64 {
	if n <= 0 {
		panic("pool: Get of non-positive length")
	}
	var buf []int64
	if v := s.p.Get(); v != nil {
		buf = *(v.(*[]int64))
	}
	if cap(buf) < n {
		buf = make([]int64, n)
	}
	buf = buf[:n]
	s.mu.Lock()
	s.out[&buf[0]] = struct{}{}
	s.mu.Unlock()
	return buf
}

// Put returns a slice obtained from Get (any re-slicing of it is fine as
// long as the first element is preserved). Panics on double/foreign put.
func (s *Ints) Put(buf []int64) {
	if cap(buf) == 0 {
		panic("pool: Put of empty buffer")
	}
	buf = buf[:1][:cap(buf)]
	s.mu.Lock()
	if _, ok := s.out[&buf[0]]; !ok {
		s.mu.Unlock()
		panic("pool: double put or foreign buffer")
	}
	delete(s.out, &buf[0])
	s.mu.Unlock()
	poisonInts(buf)
	s.p.Put(&buf)
}

// poisonInts stamps Poison over the first and last words of buf.
func poisonInts(buf []int64) {
	n := len(buf)
	if n <= 16 {
		for i := range buf {
			buf[i] = Poison
		}
		return
	}
	for i := 0; i < 8; i++ {
		buf[i] = Poison
		buf[n-1-i] = Poison
	}
}

// PageSize is the flash page size the Pages pool hands out. It mirrors
// flash.PageSize as a plain constant so pool stays dependency-free; a
// compile-time assertion in internal/col keeps the two in sync.
const PageSize = 8192

// Pages is the process-wide pool of flash-page-sized byte buffers.
var Pages = NewBytes(PageSize)

// Vals is the process-wide pool of decoded-page int64 scratch.
var Vals = NewInts()
