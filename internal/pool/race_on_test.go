//go:build race

package pool

// The race runtime randomizes sync.Pool behavior (deliberate fake
// misses); tests that assert buffer reuse consult this to degrade from
// "must" to "retry, then skip".
const raceEnabled = true
