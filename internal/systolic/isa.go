// Package systolic implements AQUOMAN's Row Transformation Systolic Array
// (Sec. VI-B of the paper): a chain of processing elements (PEs), each a
// simple 4-stage integer vector processor with no branches and no data
// memory, executing the 32-bit instruction set of Table II. A compiler maps
// a query's row-transformation dataflow graph onto the PE chain, inserting
// PASS nodes to balance the graph and FORK (Copy) nodes to share common
// subexpressions, maintaining the paper's invariant that data only flows to
// south/east neighbours (no cycles).
package systolic

import "fmt"

// Register file geometry from the paper: each PE has 7 general-purpose
// registers rf[1..7]; rf[0] is the stream FIFO (reads pop the input FIFO,
// writes push the output FIFO); opReg is the operand FIFO feeding the ALU.
const (
	// NumRegs is the number of general-purpose registers per PE.
	NumRegs = 7
	// StreamReg is the register index wired to the input/output FIFOs.
	StreamReg = 0
	// DefaultIMem is the per-PE instruction memory size in the FPGA
	// prototype (4 PEs with 8 instructions each, Sec. VII).
	DefaultIMem = 8
	// DefaultPEs is the PE count in the FPGA prototype.
	DefaultPEs = 4
)

// Opcode selects the instruction class (Table II).
type Opcode uint8

const (
	// OpPass moves rf[rs] to rf[rd].
	OpPass Opcode = iota
	// OpCopy moves rf[rs] to rf[rd] and also pushes it into opReg (the
	// FORK node of the dataflow graph).
	OpCopy
	// OpStore pushes rf[rs] into opReg.
	OpStore
	// OpAlu performs rf[rd] <= rf[rs] ALUOP (opReg | imm).
	OpAlu
)

// AluOp selects the ALU function for OpAlu instructions.
type AluOp uint8

const (
	AluAdd AluOp = iota
	AluSub
	AluMul
	AluDiv
	AluEQ
	AluLT
	AluGT
)

func (a AluOp) String() string {
	switch a {
	case AluAdd:
		return "add"
	case AluSub:
		return "sub"
	case AluMul:
		return "mul"
	case AluDiv:
		return "div"
	case AluEQ:
		return "eq"
	case AluLT:
		return "lt"
	case AluGT:
		return "gt"
	default:
		return fmt.Sprintf("alu(%d)", uint8(a))
	}
}

// Apply evaluates the ALU function on one lane. Division by zero yields 0
// (inactive lanes may hold arbitrary data; the hardware must not trap).
func (a AluOp) Apply(x, y int64) int64 {
	switch a {
	case AluAdd:
		return x + y
	case AluSub:
		return x - y
	case AluMul:
		return x * y
	case AluDiv:
		if y == 0 {
			return 0
		}
		return x / y
	case AluEQ:
		if x == y {
			return 1
		}
		return 0
	case AluLT:
		if x < y {
			return 1
		}
		return 0
	case AluGT:
		if x > y {
			return 1
		}
		return 0
	default:
		panic("systolic: bad AluOp")
	}
}

// Instr is one decoded PE instruction.
type Instr struct {
	Op  Opcode
	Alu AluOp // valid when Op == OpAlu
	Rd  uint8 // destination register (0 = output FIFO)
	Rs  uint8 // source register (0 = input FIFO pop)
	// UseImm selects the immediate instead of opReg as the second ALU
	// operand.
	UseImm bool
	Imm    int64
}

func (in Instr) String() string {
	reg := func(r uint8) string {
		if r == StreamReg {
			return "fifo"
		}
		return fmt.Sprintf("r%d", r)
	}
	switch in.Op {
	case OpPass:
		return fmt.Sprintf("pass  %s <- %s", reg(in.Rd), reg(in.Rs))
	case OpCopy:
		return fmt.Sprintf("copy  %s, op <- %s", reg(in.Rd), reg(in.Rs))
	case OpStore:
		return fmt.Sprintf("store op <- %s", reg(in.Rs))
	case OpAlu:
		if in.UseImm {
			return fmt.Sprintf("%-5s %s <- %s, #%d", in.Alu, reg(in.Rd), reg(in.Rs), in.Imm)
		}
		return fmt.Sprintf("%-5s %s <- %s, op", in.Alu, reg(in.Rd), reg(in.Rs))
	default:
		return fmt.Sprintf("instr(%d)", in.Op)
	}
}

// Program is the instruction memory of one PE. With no branches the PC
// increments and wraps, executing the program once per row vector.
type Program []Instr

// Disassemble renders a program one instruction per line.
func (p Program) Disassemble() string {
	s := ""
	for i, in := range p {
		s += fmt.Sprintf("%2d: %s\n", i, in)
	}
	return s
}
