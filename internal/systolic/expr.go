package systolic

import "fmt"

// Expr is a row-transformation expression over the streamed input columns.
// The compiler lowers a set of output Exprs into PE programs; EvalExpr is
// the reference (non-systolic) semantics used by tests and by the host
// engine so that offloaded and host execution agree bit-for-bit.
type Expr interface {
	exprNode()
	String() string
}

// Col references input column i (in the Table Reader's streaming order:
// leftmost column first).
type Col struct{ Index int }

// Const is an integer literal.
type Const struct{ V int64 }

// Bin applies an ALU operation to two subexpressions.
type Bin struct {
	Op   AluOp
	L, R Expr
}

func (Col) exprNode()   {}
func (Const) exprNode() {}
func (Bin) exprNode()   {}

func (c Col) String() string   { return fmt.Sprintf("c%d", c.Index) }
func (c Const) String() string { return fmt.Sprintf("%d", c.V) }
func (b Bin) String() string   { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// C builds a Const.
func C(v int64) Expr { return Const{V: v} }

// In builds a Col reference.
func In(i int) Expr { return Col{Index: i} }

// B builds a Bin.
func B(op AluOp, l, r Expr) Expr { return Bin{Op: op, L: l, R: r} }

// Add, Sub, Mul, Div, EQ, LT, GT are convenience constructors.
func Add(l, r Expr) Expr { return B(AluAdd, l, r) }
func Sub(l, r Expr) Expr { return B(AluSub, l, r) }
func Mul(l, r Expr) Expr { return B(AluMul, l, r) }
func Div(l, r Expr) Expr { return B(AluDiv, l, r) }
func EQ(l, r Expr) Expr  { return B(AluEQ, l, r) }
func LT(l, r Expr) Expr  { return B(AluLT, l, r) }
func GT(l, r Expr) Expr  { return B(AluGT, l, r) }

// EvalExpr evaluates e on one row whose input column values are in.
func EvalExpr(e Expr, in []int64) int64 {
	switch n := e.(type) {
	case Col:
		return in[n.Index]
	case Const:
		return n.V
	case Bin:
		return n.Op.Apply(EvalExpr(n.L, in), EvalExpr(n.R, in))
	default:
		panic(fmt.Sprintf("systolic: unknown expr %T", e))
	}
}

// MaxColIndex returns the largest input column index referenced by the
// expressions, or -1 if none.
func MaxColIndex(exprs []Expr) int {
	max := -1
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Col:
			if n.Index > max {
				max = n.Index
			}
		case Bin:
			walk(n.L)
			walk(n.R)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return max
}
