package systolic

import (
	"fmt"
	"sort"
	"strings"
)

// Config bounds the compiled PE chain. The FPGA prototype has 4 PEs with
// 8-instruction memories (Sec. VII); the trace-based simulator assumes "as
// big a Row Transformer as needed", which corresponds to MaxPEs == 0
// (unlimited chain length).
type Config struct {
	// IMem is the per-PE instruction memory size.
	IMem int
	// MaxPEs caps the chain length; 0 means unlimited.
	MaxPEs int
	// NumRegs is the per-PE register count (NumRegs constant when 0).
	// The linear chain model is more register-constrained than the
	// paper's 2-D systolic fabric, where operands also travel on
	// south/east wires; when a transformation exceeds NumRegs live
	// values, Compile retries with wider register files (up to
	// MaxWideRegs) and flags the mapping, standing in for that spatial
	// freedom. The resource report surfaces widened mappings.
	NumRegs int
}

// MaxWideRegs bounds the register-file widening fallback.
const MaxWideRegs = 64

// DefaultConfig mirrors the simulator's assumption: prototype-sized
// instruction memories, unlimited chain length.
func DefaultConfig() Config { return Config{IMem: DefaultIMem, MaxPEs: 0} }

// PrototypeConfig mirrors the VCU108 prototype exactly.
func PrototypeConfig() Config { return Config{IMem: DefaultIMem, MaxPEs: DefaultPEs} }

// Mapped is a compiled row transformation: one program per PE in the
// chain, plus the streaming contract (how many input columns are popped
// per row and how many output columns are pushed).
type Mapped struct {
	Programs   []Program
	NumInputs  int
	NumOutputs int
	// PassInstrs counts forwarding (PASS-node) instructions the balancer
	// inserted — the ablation benches report this.
	PassInstrs int
	// RegsUsed is the per-PE register-file size the mapping needed.
	RegsUsed int
	// WidenedRegs marks mappings that exceeded the prototype's 7
	// registers and used the wide-register fabric model.
	WidenedRegs bool
}

// NumPEs returns the chain length.
func (m *Mapped) NumPEs() int { return len(m.Programs) }

// node is one hash-consed dataflow vertex.
type node struct {
	op       AluOp
	isInput  bool
	col      int
	isConst  bool
	constV   int64
	l, r     int // operand node ids (-1 for none)
	rIsConst bool
	rConst   int64
}

// Compile lowers output expressions over numInputs streamed columns into a
// PE chain. Common subexpressions are shared (FORK), constants fold into
// immediates, and values crossing PE boundaries become explicit
// forward/pop pairs (PASS nodes).
func Compile(outputs []Expr, numInputs int, cfg Config) (*Mapped, error) {
	if cfg.IMem <= 0 {
		cfg.IMem = DefaultIMem
	}
	b := &builder{memo: make(map[string]int)}
	// Input nodes exist for every streamed column, used or not: the
	// Table Reader delivers them and the PE chain must consume them.
	for i := 0; i < numInputs; i++ {
		b.nodes = append(b.nodes, node{isInput: true, col: i, l: -1, r: -1})
		b.memo[fmt.Sprintf("c%d", i)] = i
	}
	if mi := MaxColIndex(outputs); mi >= numInputs {
		return nil, fmt.Errorf("systolic: expression references column %d but only %d streamed", mi, numInputs)
	}
	outIDs := make([]int, len(outputs))
	for i, e := range outputs {
		id, err := b.lower(e)
		if err != nil {
			return nil, err
		}
		outIDs[i] = id
	}
	base := cfg.NumRegs
	if base <= 0 {
		base = NumRegs
	}
	var lastErr error
	for regs := base; regs <= MaxWideRegs; regs *= 2 {
		m, err := schedule(b.nodes, outIDs, numInputs, cfg, regs)
		if err == nil {
			m.RegsUsed = regs
			m.WidenedRegs = regs > base
			return m, nil
		}
		lastErr = err
		if !strings.Contains(err.Error(), "register pressure") {
			return nil, err
		}
	}
	return nil, lastErr
}

type builder struct {
	nodes []node
	memo  map[string]int
}

// lower hash-conses e into the node list and returns its id. Constant
// subexpressions fold; a constant root is materialized via an input-free
// trick only if it is an output (handled in schedule by synthesizing from
// column 0), so here a pure-const output returns a const node id.
func (b *builder) lower(e Expr) (int, error) {
	switch n := e.(type) {
	case Col:
		return n.Index, nil
	case Const:
		key := fmt.Sprintf("k%d", n.V)
		if id, ok := b.memo[key]; ok {
			return id, nil
		}
		id := len(b.nodes)
		b.nodes = append(b.nodes, node{isConst: true, constV: n.V, l: -1, r: -1})
		b.memo[key] = id
		return id, nil
	case Bin:
		l, err := b.lower(n.L)
		if err != nil {
			return 0, err
		}
		r, err := b.lower(n.R)
		if err != nil {
			return 0, err
		}
		op := n.Op
		// Constant folding.
		if b.nodes[l].isConst && b.nodes[r].isConst {
			return b.lower(Const{V: op.Apply(b.nodes[l].constV, b.nodes[r].constV)})
		}
		// Normalize a constant left operand: rf[rs] must be a real
		// register, so the constant has to move to the immediate side.
		if b.nodes[l].isConst {
			c := b.nodes[l].constV
			switch op {
			case AluAdd, AluMul, AluEQ:
				l, r = r, l // commutative
			case AluLT:
				op = AluGT
				l, r = r, l
			case AluGT:
				op = AluLT
				l, r = r, l
			case AluSub:
				// c - x == (x - c) * -1
				inner, err := b.binNode(AluSub, r, l)
				if err != nil {
					return 0, err
				}
				negOne, err := b.lower(Const{V: -1})
				if err != nil {
					return 0, err
				}
				return b.binNode(AluMul, inner, negOne)
			case AluDiv:
				return 0, fmt.Errorf("systolic: constant dividend (%d / expr) is not mappable to the PE ISA", c)
			}
		}
		return b.binNode(op, l, r)
	default:
		return 0, fmt.Errorf("systolic: unknown expr %T", e)
	}
}

func (b *builder) binNode(op AluOp, l, r int) (int, error) {
	key := fmt.Sprintf("b%d.%d.%d", op, l, r)
	if id, ok := b.memo[key]; ok {
		return id, nil
	}
	nd := node{op: op, l: l, r: r}
	if b.nodes[r].isConst {
		nd.rIsConst = true
		nd.rConst = b.nodes[r].constV
		nd.r = -1
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, nd)
	b.memo[key] = id
	return id, nil
}

// segState tracks one PE being filled by the scheduler.
type segState struct {
	prog     Program
	regOf    map[int]uint8 // node id -> register
	freeRegs []uint8
}

func newSeg(numRegs int) *segState {
	s := &segState{regOf: make(map[int]uint8)}
	for r := numRegs; r >= 1; r-- {
		s.freeRegs = append(s.freeRegs, uint8(r))
	}
	return s
}

func (s *segState) alloc(id int) (uint8, bool) {
	if len(s.freeRegs) == 0 {
		return 0, false
	}
	r := s.freeRegs[len(s.freeRegs)-1]
	s.freeRegs = s.freeRegs[:len(s.freeRegs)-1]
	s.regOf[id] = r
	return r, true
}

func (s *segState) free(id int) {
	if r, ok := s.regOf[id]; ok {
		delete(s.regOf, id)
		s.freeRegs = append(s.freeRegs, r)
	}
}

// schedule linearizes the DAG (node ids are already topologically ordered:
// operands precede users) and packs it into PE-sized segments. Values that
// cross a segment boundary are pushed by the producer segment and popped by
// the consumer, in ascending node-id order.
func schedule(nodes []node, outIDs []int, numInputs int, cfg Config, numRegs int) (*Mapped, error) {
	// lastUse[id] = index of last computing node that consumes id; outputs
	// keep values alive to the end.
	lastUse := make([]int, len(nodes))
	for i := range lastUse {
		lastUse[i] = -1
	}
	for i, nd := range nodes {
		if nd.l >= 0 {
			lastUse[nd.l] = i
		}
		if nd.r >= 0 {
			lastUse[nd.r] = i
		}
	}
	const endOfProgram = 1 << 30
	outNeeded := make(map[int]bool, len(outIDs))
	for _, id := range outIDs {
		if nodes[id].isConst {
			return nil, fmt.Errorf("systolic: pure-constant output column; fold it on the host side")
		}
		lastUse[id] = endOfProgram
		outNeeded[id] = true
	}

	m := &Mapped{NumInputs: numInputs, NumOutputs: len(outIDs)}
	seg := newSeg(numRegs)
	// Instruction-memory accounting: only compute instructions (Store/ALU)
	// count against IMem. Pops and pushes model the systolic array's
	// south/east operand wires (the PASS/FORK dataflow nodes of Fig. 10),
	// which the hardware routes without occupying ALU slots.
	segCompute := 0
	// liveIn holds node ids the current segment pops at its start, in
	// ascending order. Segment 0 pops the streamed input columns.
	var liveIn []int
	for i := 0; i < numInputs; i++ {
		liveIn = append(liveIn, i)
	}
	emitPops := func() error {
		for _, id := range liveIn {
			r, ok := seg.alloc(id)
			if !ok {
				return fmt.Errorf("systolic: register pressure: %d live values exceed %d registers", len(liveIn), numRegs)
			}
			seg.prog = append(seg.prog, Instr{Op: OpPass, Rd: r, Rs: StreamReg})
		}
		return nil
	}
	if err := emitPops(); err != nil {
		return nil, err
	}

	// closeSeg pushes live values (every node id in seg.regOf still needed
	// beyond position pos) and opens the next segment.
	closeSeg := func(pos int) error {
		if cfg.MaxPEs > 0 && len(m.Programs) >= cfg.MaxPEs {
			return fmt.Errorf("systolic: transformation needs more than %d PEs", cfg.MaxPEs)
		}
		var liveOut []int
		for id := range seg.regOf {
			if lastUse[id] >= pos {
				liveOut = append(liveOut, id)
			}
		}
		sort.Ints(liveOut)
		for _, id := range liveOut {
			seg.prog = append(seg.prog, Instr{Op: OpPass, Rd: StreamReg, Rs: seg.regOf[id]})
		}
		m.PassInstrs += len(liveOut)
		m.Programs = append(m.Programs, seg.prog)
		seg = newSeg(numRegs)
		segCompute = 0
		liveIn = liveOut
		m.PassInstrs += len(liveOut)
		return emitPops()
	}

	costOf := func(nd node) int {
		if nd.rIsConst || nd.r < 0 {
			return 1 // ALU with immediate
		}
		return 2 // Store + ALU
	}

	for i := numInputs; i < len(nodes); i++ {
		nd := nodes[i]
		if nd.isConst {
			continue // folded into immediates
		}
		// Make sure operands are resident; if not (they were produced in
		// an earlier segment and this segment didn't pop them), that is a
		// scheduling bug: closeSeg forwards everything live.
		ensure := func(id int) error {
			if id < 0 {
				return nil
			}
			if _, ok := seg.regOf[id]; !ok {
				return fmt.Errorf("systolic: internal: node %d operand %d not resident", i, id)
			}
			return nil
		}
		// Budget: compute instructions so far + this op must fit the
		// instruction memory, and a result register must be available.
		if segCompute+costOf(nd) > cfg.IMem || len(seg.freeRegs) == 0 {
			if err := closeSeg(i); err != nil {
				return nil, err
			}
		}
		if err := ensure(nd.l); err != nil {
			return nil, err
		}
		if err := ensure(nd.r); err != nil {
			return nil, err
		}
		lreg := seg.regOf[nd.l]
		in := Instr{Op: OpAlu, Alu: nd.op, Rs: lreg}
		if nd.rIsConst {
			in.UseImm = true
			in.Imm = nd.rConst
		} else {
			seg.prog = append(seg.prog, Instr{Op: OpStore, Rs: seg.regOf[nd.r]})
		}
		// Free operands dead after this node, then allocate the result
		// (possibly reusing an operand's register).
		if nd.l >= 0 && lastUse[nd.l] <= i {
			seg.free(nd.l)
		}
		if nd.r >= 0 && lastUse[nd.r] <= i {
			seg.free(nd.r)
		}
		rd, ok := seg.alloc(i)
		if !ok {
			return nil, fmt.Errorf("systolic: register pressure at node %d", i)
		}
		in.Rd = rd
		seg.prog = append(seg.prog, in)
		segCompute += costOf(nd)
	}

	// Final segment: push outputs in declared order (pushes are free wire
	// transfers, so they always fit).
	for _, id := range outIDs {
		r, ok := seg.regOf[id]
		if !ok {
			return nil, fmt.Errorf("systolic: internal: output node %d not resident in final PE", id)
		}
		seg.prog = append(seg.prog, Instr{Op: OpPass, Rd: StreamReg, Rs: r})
	}
	m.Programs = append(m.Programs, seg.prog)
	return m, nil
}
