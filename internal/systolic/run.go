package systolic

import (
	"fmt"

	"aquoman/internal/bitvec"
)

// Machine executes a compiled PE chain on row vectors. It models the
// dataflow exactly: each PE runs its program once per row vector, popping
// the upstream FIFO on rs==0 reads and pushing downstream on rd==0 writes,
// with the opReg operand FIFO between Store/Copy producers and ALU
// consumers.
//
// A Machine carries reusable per-call scratch (register file, FIFOs,
// result headers) sized once at construction, so RunVec performs no heap
// allocation in steady state. That makes a Machine single-goroutine:
// share a *Mapped across goroutines and give each its own Machine.
type Machine struct {
	m *Mapped

	regs   []vec // PE register file, sized to the widest program
	fifoA  []vec // ping-pong inter-PE FIFOs
	fifoB  []vec
	opFifo []vec     // operand FIFO scratch
	res    [][]int64 // result headers returned by RunVec
}

// NewMachine wraps a compiled transformation.
func NewMachine(m *Mapped) *Machine {
	maxReg := NumRegs
	maxWide := m.NumInputs
	if m.NumOutputs > maxWide {
		maxWide = m.NumOutputs
	}
	maxOps := 0
	for _, prog := range m.Programs {
		pushes, ops := 0, 0
		for _, ins := range prog {
			if int(ins.Rd) > maxReg {
				maxReg = int(ins.Rd)
			}
			if int(ins.Rs) > maxReg {
				maxReg = int(ins.Rs)
			}
			if ins.Rd == StreamReg && ins.Op != OpStore {
				pushes++
			}
			if ins.Op == OpStore || ins.Op == OpCopy {
				ops++
			}
		}
		if pushes > maxWide {
			maxWide = pushes
		}
		if ops > maxOps {
			maxOps = ops
		}
	}
	return &Machine{
		m:      m,
		regs:   make([]vec, maxReg+1),
		fifoA:  make([]vec, 0, maxWide),
		fifoB:  make([]vec, 0, maxWide),
		opFifo: make([]vec, 0, maxOps),
		res:    make([][]int64, m.NumOutputs),
	}
}

// Mapped returns the underlying compiled transformation.
func (ma *Machine) Mapped() *Mapped { return ma.m }

// lane buffers are full row vectors (up to 32 lanes wide).
type vec struct {
	lanes [bitvec.VecSize]int64
	n     int
}

// RunVec transforms one row vector. inputs holds one slice per streamed
// column (all the same length n ≤ 32); the result holds one slice per
// output column. The same buffers are reused across calls of a single
// Machine, so callers must copy if they retain results.
func (ma *Machine) RunVec(inputs [][]int64) ([][]int64, error) {
	if len(inputs) != ma.m.NumInputs {
		return nil, fmt.Errorf("systolic: got %d input columns, want %d", len(inputs), ma.m.NumInputs)
	}
	n := 0
	if len(inputs) > 0 {
		n = len(inputs[0])
		for _, c := range inputs {
			if len(c) != n {
				return nil, fmt.Errorf("systolic: ragged input vectors")
			}
		}
	}
	// Upstream FIFO of the first PE: the streamed columns in order.
	fifo := ma.fifoA[:0]
	for _, c := range inputs {
		var v vec
		v.n = n
		copy(v.lanes[:], c)
		fifo = append(fifo, v)
	}
	spare := ma.fifoB
	for pi, prog := range ma.m.Programs {
		out, err := ma.runPE(prog, fifo, spare[:0], n)
		if err != nil {
			return nil, fmt.Errorf("systolic: PE %d: %w", pi, err)
		}
		fifo, spare = out, fifo
	}
	// Remember which backing array each ping-pong buffer ended up on so
	// the next call starts from the same capacity.
	ma.fifoA, ma.fifoB = fifo, spare
	if len(fifo) != ma.m.NumOutputs {
		return nil, fmt.Errorf("systolic: chain produced %d vectors, want %d", len(fifo), ma.m.NumOutputs)
	}
	res := ma.res
	for i := range fifo {
		res[i] = fifo[i].lanes[:n]
	}
	return res, nil
}

// runPE executes one PE program, popping vectors from in and appending
// pushed vectors to out (returned re-sliced). Registers are NOT cleared
// between calls: the compiler never emits a read of a register the same
// program has not written first, so stale state is unreachable.
func (ma *Machine) runPE(prog Program, in, out []vec, n int) ([]vec, error) {
	regs := ma.regs
	opFifo := ma.opFifo[:0]
	opPos := 0 // pop by index so the backing array keeps its capacity
	inPos := 0
	for _, ins := range prog {
		var src vec
		if ins.Rs == StreamReg {
			if inPos >= len(in) {
				return nil, fmt.Errorf("%s: input FIFO underflow", ins)
			}
			src = in[inPos]
			inPos++
		} else {
			src = regs[ins.Rs]
		}
		switch ins.Op {
		case OpPass:
			if ins.Rd == StreamReg {
				out = append(out, src)
			} else {
				regs[ins.Rd] = src
			}
		case OpCopy:
			if ins.Rd == StreamReg {
				out = append(out, src)
			} else {
				regs[ins.Rd] = src
			}
			opFifo = append(opFifo, src)
		case OpStore:
			opFifo = append(opFifo, src)
		case OpAlu:
			var r vec
			r.n = n
			if ins.UseImm {
				imm := ins.Imm
				for i := 0; i < n; i++ {
					r.lanes[i] = ins.Alu.Apply(src.lanes[i], imm)
				}
			} else {
				if opPos >= len(opFifo) {
					return nil, fmt.Errorf("%s: operand FIFO underflow", ins)
				}
				operand := &opFifo[opPos]
				opPos++
				for i := 0; i < n; i++ {
					r.lanes[i] = ins.Alu.Apply(src.lanes[i], operand.lanes[i])
				}
			}
			if ins.Rd == StreamReg {
				out = append(out, r)
			} else {
				regs[ins.Rd] = r
			}
		default:
			return nil, fmt.Errorf("bad opcode %d", ins.Op)
		}
	}
	ma.opFifo = opFifo[:0]
	return out, nil
}

// Transform runs whole columns through the PE chain, vector by vector.
// inputs[c][r] is row r of streamed column c; the result is indexed the
// same way by output column.
func (ma *Machine) Transform(inputs [][]int64) ([][]int64, error) {
	nRows := 0
	if len(inputs) > 0 {
		nRows = len(inputs[0])
	}
	outs := make([][]int64, ma.m.NumOutputs)
	for i := range outs {
		outs[i] = make([]int64, 0, nRows)
	}
	inVec := make([][]int64, len(inputs))
	for base := 0; base < nRows; base += bitvec.VecSize {
		end := base + bitvec.VecSize
		if end > nRows {
			end = nRows
		}
		for c := range inputs {
			inVec[c] = inputs[c][base:end]
		}
		res, err := ma.RunVec(inVec)
		if err != nil {
			return nil, err
		}
		for c := range res {
			outs[c] = append(outs[c], res[c]...)
		}
	}
	return outs, nil
}
