package systolic

import (
	"fmt"

	"aquoman/internal/bitvec"
)

// Machine executes a compiled PE chain on row vectors. It models the
// dataflow exactly: each PE runs its program once per row vector, popping
// the upstream FIFO on rs==0 reads and pushing downstream on rd==0 writes,
// with the opReg operand FIFO between Store/Copy producers and ALU
// consumers.
type Machine struct {
	m *Mapped
}

// NewMachine wraps a compiled transformation.
func NewMachine(m *Mapped) *Machine { return &Machine{m: m} }

// Mapped returns the underlying compiled transformation.
func (ma *Machine) Mapped() *Mapped { return ma.m }

// lane buffers are full row vectors (up to 32 lanes wide).
type vec struct {
	lanes [bitvec.VecSize]int64
	n     int
}

// RunVec transforms one row vector. inputs holds one slice per streamed
// column (all the same length n ≤ 32); the result holds one slice per
// output column. The same buffers are reused across calls of a single
// Machine, so callers must copy if they retain results.
func (ma *Machine) RunVec(inputs [][]int64) ([][]int64, error) {
	if len(inputs) != ma.m.NumInputs {
		return nil, fmt.Errorf("systolic: got %d input columns, want %d", len(inputs), ma.m.NumInputs)
	}
	n := 0
	if len(inputs) > 0 {
		n = len(inputs[0])
		for _, c := range inputs {
			if len(c) != n {
				return nil, fmt.Errorf("systolic: ragged input vectors")
			}
		}
	}
	// Upstream FIFO of the first PE: the streamed columns in order.
	fifo := make([]vec, 0, len(inputs))
	for _, c := range inputs {
		var v vec
		v.n = n
		copy(v.lanes[:], c)
		fifo = append(fifo, v)
	}
	for pi, prog := range ma.m.Programs {
		out, err := runPE(prog, fifo, n)
		if err != nil {
			return nil, fmt.Errorf("systolic: PE %d: %w", pi, err)
		}
		fifo = out
	}
	if len(fifo) != ma.m.NumOutputs {
		return nil, fmt.Errorf("systolic: chain produced %d vectors, want %d", len(fifo), ma.m.NumOutputs)
	}
	res := make([][]int64, len(fifo))
	for i := range fifo {
		res[i] = fifo[i].lanes[:n]
	}
	return res, nil
}

func runPE(prog Program, in []vec, n int) ([]vec, error) {
	maxReg := NumRegs
	for _, ins := range prog {
		if int(ins.Rd) > maxReg {
			maxReg = int(ins.Rd)
		}
		if int(ins.Rs) > maxReg {
			maxReg = int(ins.Rs)
		}
	}
	regs := make([]vec, maxReg+1)
	var opFifo []vec
	var out []vec
	pop := func() (vec, error) {
		if len(in) == 0 {
			return vec{}, fmt.Errorf("input FIFO underflow")
		}
		v := in[0]
		in = in[1:]
		return v, nil
	}
	readSrc := func(rs uint8) (vec, error) {
		if rs == StreamReg {
			return pop()
		}
		return regs[rs], nil
	}
	writeDst := func(rd uint8, v vec) {
		if rd == StreamReg {
			out = append(out, v)
		} else {
			regs[rd] = v
		}
	}
	for _, ins := range prog {
		src, err := readSrc(ins.Rs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ins, err)
		}
		switch ins.Op {
		case OpPass:
			writeDst(ins.Rd, src)
		case OpCopy:
			writeDst(ins.Rd, src)
			opFifo = append(opFifo, src)
		case OpStore:
			opFifo = append(opFifo, src)
		case OpAlu:
			var operand vec
			if ins.UseImm {
				operand.n = n
				for i := 0; i < n; i++ {
					operand.lanes[i] = ins.Imm
				}
			} else {
				if len(opFifo) == 0 {
					return nil, fmt.Errorf("%s: operand FIFO underflow", ins)
				}
				operand = opFifo[0]
				opFifo = opFifo[1:]
			}
			var r vec
			r.n = n
			for i := 0; i < n; i++ {
				r.lanes[i] = ins.Alu.Apply(src.lanes[i], operand.lanes[i])
			}
			writeDst(ins.Rd, r)
		default:
			return nil, fmt.Errorf("bad opcode %d", ins.Op)
		}
	}
	return out, nil
}

// Transform runs whole columns through the PE chain, vector by vector.
// inputs[c][r] is row r of streamed column c; the result is indexed the
// same way by output column.
func (ma *Machine) Transform(inputs [][]int64) ([][]int64, error) {
	nRows := 0
	if len(inputs) > 0 {
		nRows = len(inputs[0])
	}
	outs := make([][]int64, ma.m.NumOutputs)
	for i := range outs {
		outs[i] = make([]int64, 0, nRows)
	}
	inVec := make([][]int64, len(inputs))
	for base := 0; base < nRows; base += bitvec.VecSize {
		end := base + bitvec.VecSize
		if end > nRows {
			end = nRows
		}
		for c := range inputs {
			inVec[c] = inputs[c][base:end]
		}
		res, err := ma.RunVec(inVec)
		if err != nil {
			return nil, err
		}
		for c := range res {
			outs[c] = append(outs[c], res[c]...)
		}
	}
	return outs, nil
}
