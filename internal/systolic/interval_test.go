package systolic

import (
	"math"
	"math/rand"
	"testing"
)

func randIval(rng *rand.Rand) Interval {
	switch rng.Intn(5) {
	case 0:
		return Point(rng.Int63n(200) - 100)
	case 1:
		return Interval{math.MinInt64, math.MaxInt64}
	case 2:
		a := rng.Int63() - rng.Int63()
		b := rng.Int63() - rng.Int63()
		if a > b {
			a, b = b, a
		}
		return Interval{a, b}
	default:
		a := rng.Int63n(2000) - 1000
		return Interval{a, a + rng.Int63n(500)}
	}
}

func sampleIn(rng *rand.Rand, iv Interval) int64 {
	if iv.Lo == iv.Hi {
		return iv.Lo
	}
	span := uint64(iv.Hi) - uint64(iv.Lo)
	if span == math.MaxUint64 {
		return int64(rng.Uint64())
	}
	return int64(uint64(iv.Lo) + rng.Uint64()%(span+1))
}

func randIntervalExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return In(0)
		}
		return C(rng.Int63n(400) - 200)
	}
	op := []AluOp{AluAdd, AluSub, AluMul, AluDiv, AluEQ, AluLT, AluGT}[rng.Intn(7)]
	return B(op, randIntervalExpr(rng, depth-1), randIntervalExpr(rng, depth-1))
}

// TestEvalExprIntervalSound samples concrete values inside random input
// intervals and checks the concrete evaluation always lands inside the
// interval evaluation — the property zone-map pruning relies on.
func TestEvalExprIntervalSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		e := randIntervalExpr(rng, 4)
		in := randIval(rng)
		iv := EvalExprInterval(e, []Interval{in})
		if iv.Lo > iv.Hi {
			t.Fatalf("expr %s over [%d,%d]: inverted interval [%d,%d]", e, in.Lo, in.Hi, iv.Lo, iv.Hi)
		}
		for k := 0; k < 30; k++ {
			v := sampleIn(rng, in)
			got := EvalExpr(e, []int64{v})
			if got < iv.Lo || got > iv.Hi {
				t.Fatalf("expr %s at %d (in [%d,%d]) = %d outside interval [%d,%d]",
					e, v, in.Lo, in.Hi, got, iv.Lo, iv.Hi)
			}
		}
	}
}

func TestEvalExprIntervalCases(t *testing.T) {
	col := In(0)
	cases := []struct {
		name string
		e    Expr
		in   Interval
		want Interval
	}{
		{"lt-true", LT(col, C(100)), Interval{0, 50}, Point(1)},
		{"lt-false", LT(col, C(100)), Interval{100, 200}, Point(0)},
		{"lt-maybe", LT(col, C(100)), Interval{50, 150}, Interval{0, 1}},
		{"gt-false", GT(col, C(10)), Interval{-5, 10}, Point(0)},
		{"eq-disjoint", EQ(col, C(7)), Interval{8, 20}, Point(0)},
		{"eq-point", EQ(col, C(7)), Point(7), Point(1)},
		{"range-and", Mul(GT(col, C(10)), LT(col, C(20))), Interval{30, 40}, Point(0)},
		{"add", Add(col, C(5)), Interval{0, 10}, Interval{5, 15}},
		{"overflow-top", Add(col, C(math.MaxInt64)), Interval{1, 2}, Top()},
		{"mul-overflow", Mul(col, C(math.MaxInt64)), Interval{2, 3}, Top()},
		{"div-zero-top", Div(C(10), col), Interval{-1, 1}, Top()},
		{"div", Div(col, C(2)), Interval{10, 21}, Interval{5, 10}},
	}
	for _, c := range cases {
		got := EvalExprInterval(c.e, []Interval{c.in})
		if got != c.want {
			t.Errorf("%s: %s over [%d,%d] = [%d,%d], want [%d,%d]",
				c.name, c.e, c.in.Lo, c.in.Hi, got.Lo, got.Hi, c.want.Lo, c.want.Hi)
		}
	}
}
