package systolic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustCompile(t *testing.T, outs []Expr, nIn int, cfg Config) *Mapped {
	t.Helper()
	m, err := Compile(outs, nIn, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m
}

func runRows(t *testing.T, m *Mapped, rows [][]int64) [][]int64 {
	t.Helper()
	nIn := m.NumInputs
	cols := make([][]int64, nIn)
	for _, r := range rows {
		for c := 0; c < nIn; c++ {
			cols[c] = append(cols[c], r[c])
		}
	}
	out, err := NewMachine(m).Transform(cols)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	res := make([][]int64, len(rows))
	for r := range rows {
		res[r] = make([]int64, len(out))
		for c := range out {
			res[r][c] = out[c][r]
		}
	}
	return res
}

func TestAluOps(t *testing.T) {
	cases := []struct {
		op   AluOp
		x, y int64
		want int64
	}{
		{AluAdd, 3, 4, 7},
		{AluSub, 3, 4, -1},
		{AluMul, 3, 4, 12},
		{AluDiv, 9, 4, 2},
		{AluDiv, 9, 0, 0}, // no trap on inactive lanes
		{AluEQ, 5, 5, 1},
		{AluEQ, 5, 6, 0},
		{AluLT, 5, 6, 1},
		{AluLT, 6, 5, 0},
		{AluGT, 6, 5, 1},
		{AluGT, 5, 6, 0},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.x, c.y); got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestIdentityPass(t *testing.T) {
	m := mustCompile(t, []Expr{In(0)}, 1, DefaultConfig())
	got := runRows(t, m, [][]int64{{7}, {42}, {-1}})
	for i, want := range []int64{7, 42, -1} {
		if got[i][0] != want {
			t.Fatalf("row %d = %d, want %d", i, got[i][0], want)
		}
	}
}

func TestImmediateFolding(t *testing.T) {
	// (x + 2) * 3 should be two immediate ALU instructions on one PE.
	m := mustCompile(t, []Expr{Mul(Add(In(0), C(2)), C(3))}, 1, DefaultConfig())
	if m.NumPEs() != 1 {
		t.Fatalf("NumPEs = %d, want 1\n%s", m.NumPEs(), m.Programs[0].Disassemble())
	}
	got := runRows(t, m, [][]int64{{5}})
	if got[0][0] != 21 {
		t.Fatalf("got %d, want 21", got[0][0])
	}
}

func TestConstantLeftNormalization(t *testing.T) {
	// 1 - x, 10 / is unsupported; check sub/lt/gt/add/mul swaps.
	exprs := []Expr{
		Sub(C(100), In(0)), // 100 - x
		Add(C(5), In(0)),   // 5 + x
		Mul(C(3), In(0)),   // 3 * x
		LT(C(7), In(0)),    // 7 < x  => x > 7
		GT(C(7), In(0)),    // 7 > x  => x < 7
		EQ(C(7), In(0)),    // 7 == x
	}
	m := mustCompile(t, exprs, 1, DefaultConfig())
	got := runRows(t, m, [][]int64{{30}, {7}, {3}})
	wantRows := [][]int64{
		{70, 35, 90, 1, 0, 0},
		{93, 12, 21, 0, 0, 1},
		{97, 8, 9, 0, 1, 0},
	}
	for r := range wantRows {
		for c := range wantRows[r] {
			if got[r][c] != wantRows[r][c] {
				t.Fatalf("row %d col %d = %d, want %d", r, c, got[r][c], wantRows[r][c])
			}
		}
	}
}

func TestConstDividendRejected(t *testing.T) {
	if _, err := Compile([]Expr{Div(C(10), In(0))}, 1, DefaultConfig()); err == nil {
		t.Fatal("constant dividend compiled")
	}
}

func TestPureConstOutputRejected(t *testing.T) {
	if _, err := Compile([]Expr{Add(C(1), C(2))}, 1, DefaultConfig()); err == nil {
		t.Fatal("pure constant output compiled")
	}
}

func TestColumnOutOfRange(t *testing.T) {
	if _, err := Compile([]Expr{In(3)}, 2, DefaultConfig()); err == nil {
		t.Fatal("out-of-range column compiled")
	}
}

// The paper's Fig. 9/10 example: qty, base_price, disc_price, charge from
// lineitem with ×100 fixed-point decimals.
func fig9Exprs() []Expr {
	qty, price, disc, tax := In(0), In(1), In(2), In(3)
	discPrice := Div(Mul(price, Sub(C(100), disc)), C(100))
	charge := Div(Mul(discPrice, Add(C(100), tax)), C(100))
	return []Expr{qty, price, discPrice, charge}
}

func TestFig9Transformation(t *testing.T) {
	m := mustCompile(t, fig9Exprs(), 4, DefaultConfig())
	// qty=17, price=$21168.23, disc=4%, tax=2%
	rows := [][]int64{{17, 2116823, 4, 2}}
	got := runRows(t, m, rows)
	wantDisc := 2116823 * 96 / 100
	wantCharge := wantDisc * 102 / 100
	want := []int64{17, 2116823, int64(wantDisc), int64(wantCharge)}
	for c := range want {
		if got[0][c] != want[c] {
			t.Fatalf("col %d = %d, want %d", c, got[0][c], want[c])
		}
	}
}

func TestFig9FitsPrototype(t *testing.T) {
	m, err := Compile(fig9Exprs(), 4, PrototypeConfig())
	if err != nil {
		t.Fatalf("Fig.9 does not fit the 4-PE prototype: %v", err)
	}
	if m.NumPEs() > DefaultPEs {
		t.Fatalf("NumPEs = %d > %d", m.NumPEs(), DefaultPEs)
	}
	// Instruction memory holds compute instructions; Pass forwarding
	// models the systolic operand wires (see compile.go).
	for i, p := range m.Programs {
		compute := 0
		for _, ins := range p {
			if ins.Op == OpAlu || ins.Op == OpStore {
				compute++
			}
		}
		if compute > DefaultIMem {
			t.Fatalf("PE %d has %d compute instructions:\n%s", i, compute, p.Disassemble())
		}
	}
}

func TestCommonSubexpressionShared(t *testing.T) {
	// Both outputs share (x*y); the DAG should compute it once.
	x, y := In(0), In(1)
	shared := Mul(x, y)
	m := mustCompile(t, []Expr{Add(shared, C(1)), Sub(shared, C(1))}, 2, DefaultConfig())
	mulCount := 0
	for _, p := range m.Programs {
		for _, ins := range p {
			if ins.Op == OpAlu && ins.Alu == AluMul {
				mulCount++
			}
		}
	}
	if mulCount != 1 {
		t.Fatalf("mul emitted %d times, want 1", mulCount)
	}
	got := runRows(t, m, [][]int64{{6, 7}})
	if got[0][0] != 43 || got[0][1] != 41 {
		t.Fatalf("got %v", got[0])
	}
}

func TestMultiPESplit(t *testing.T) {
	// A long dependency chain cannot fit one 8-instruction PE together
	// with its pops/pushes; the scheduler must split and forward.
	e := In(0)
	for i := 0; i < 20; i++ {
		e = Add(e, C(1))
	}
	m := mustCompile(t, []Expr{e}, 1, DefaultConfig())
	if m.NumPEs() < 3 {
		t.Fatalf("NumPEs = %d, want >= 3", m.NumPEs())
	}
	got := runRows(t, m, [][]int64{{0}, {100}})
	if got[0][0] != 20 || got[1][0] != 120 {
		t.Fatalf("got %v %v", got[0], got[1])
	}
}

func TestMaxPEsEnforced(t *testing.T) {
	e := In(0)
	for i := 0; i < 100; i++ {
		e = Add(e, C(1))
	}
	if _, err := Compile([]Expr{e}, 1, Config{IMem: 8, MaxPEs: 2}); err == nil {
		t.Fatal("100-deep chain fit 2 PEs")
	}
}

func TestUnusedInputConsumed(t *testing.T) {
	// Column 1 is streamed but unused; the chain must still pop it.
	m := mustCompile(t, []Expr{In(0)}, 2, DefaultConfig())
	got := runRows(t, m, [][]int64{{9, 1000}})
	if got[0][0] != 9 {
		t.Fatalf("got %d", got[0][0])
	}
}

func TestDuplicateOutputs(t *testing.T) {
	m := mustCompile(t, []Expr{In(0), In(0)}, 1, DefaultConfig())
	got := runRows(t, m, [][]int64{{4}})
	if got[0][0] != 4 || got[0][1] != 4 {
		t.Fatalf("got %v", got[0])
	}
}

func TestDisassemble(t *testing.T) {
	m := mustCompile(t, []Expr{Add(In(0), C(1))}, 1, DefaultConfig())
	d := m.Programs[0].Disassemble()
	for _, want := range []string{"pass", "add", "fifo"} {
		if !strings.Contains(d, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, d)
		}
	}
}

// randExpr builds a random expression over nIn columns.
func randExpr(rng *rand.Rand, nIn, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return In(rng.Intn(nIn))
		}
		return C(int64(rng.Intn(41) - 20))
	}
	ops := []AluOp{AluAdd, AluSub, AluMul, AluEQ, AluLT, AluGT}
	op := ops[rng.Intn(len(ops))]
	return B(op, randExpr(rng, nIn, depth-1), randExpr(rng, nIn, depth-1))
}

// Property: for random expression DAGs and random rows, the compiled PE
// chain agrees with the reference evaluator.
func TestQuickCompiledMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn := rng.Intn(4) + 1
		nOut := rng.Intn(4) + 1
		outs := make([]Expr, nOut)
		for i := range outs {
			outs[i] = randExpr(rng, nIn, 4)
			// Guarantee non-constant output by anchoring to a column.
			outs[i] = Add(outs[i], In(rng.Intn(nIn)))
		}
		m, err := Compile(outs, nIn, DefaultConfig())
		if err != nil {
			// Constant dividends and >7-register live sets are
			// legitimate ISA limits; all other errors fail the property.
			return strings.Contains(err.Error(), "constant dividend") ||
				strings.Contains(err.Error(), "register pressure")
		}
		rows := make([][]int64, 40)
		for r := range rows {
			rows[r] = make([]int64, nIn)
			for c := range rows[r] {
				rows[r][c] = int64(rng.Intn(201) - 100)
			}
		}
		cols := make([][]int64, nIn)
		for _, r := range rows {
			for c := 0; c < nIn; c++ {
				cols[c] = append(cols[c], r[c])
			}
		}
		got, err := NewMachine(m).Transform(cols)
		if err != nil {
			t.Logf("Transform: %v", err)
			return false
		}
		for r := range rows {
			for o, e := range outs {
				if got[o][r] != EvalExpr(e, rows[r]) {
					t.Logf("seed %d row %d out %d: got %d want %d (expr %s)",
						seed, r, o, got[o][r], EvalExpr(e, rows[r]), e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: division by zero in any lane never traps and yields 0.
func TestQuickDivSafety(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		m, err := Compile([]Expr{Div(C(1000), In(0)), In(0)}, 1, DefaultConfig())
		if err != nil {
			// 1000/x has a constant dividend — rejected; use x/x instead.
			m, err = Compile([]Expr{Div(In(0), In(0))}, 1, DefaultConfig())
			if err != nil {
				return false
			}
			col := make([]int64, len(vals))
			for i, v := range vals {
				col[i] = int64(v)
			}
			out, err := NewMachine(m).Transform([][]int64{col})
			if err != nil {
				return false
			}
			for i, v := range col {
				want := int64(1)
				if v == 0 {
					want = 0
				}
				if out[0][i] != want {
					return false
				}
			}
			return true
		}
		return false // constant dividend should have been rejected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
