package systolic

import "math"

// Interval is an inclusive int64 range used for zone-map page pruning:
// evaluating a predicate expression over a page's [min,max] interval
// yields an interval that soundly over-approximates every per-row result.
// A page whose predicate interval is exactly [0,0] cannot contain a
// matching row and can be skipped without a flash read.
type Interval struct {
	Lo, Hi int64
}

// Top is the full int64 range (the sound answer when nothing tighter can
// be proven — e.g. when interval arithmetic would overflow, since the
// reference evaluator wraps natively).
func Top() Interval { return Interval{math.MinInt64, math.MaxInt64} }

// Point is the degenerate interval [v,v].
func Point(v int64) Interval { return Interval{v, v} }

// IsZero reports whether the interval is exactly [0,0] — i.e. the
// expression is provably false for every value in the inputs.
func (iv Interval) IsZero() bool { return iv.Lo == 0 && iv.Hi == 0 }

// EvalExprInterval evaluates e over input-column intervals. The result is
// sound with respect to EvalExpr: for any concrete row whose column j
// value lies in in[j], EvalExpr's result lies in the returned interval.
// Arithmetic that could overflow int64 returns Top, because EvalExpr
// wraps (two's complement) on overflow and the wrapped value can land
// anywhere.
func EvalExprInterval(e Expr, in []Interval) Interval {
	switch n := e.(type) {
	case Col:
		return in[n.Index]
	case Const:
		return Point(n.V)
	case Bin:
		return n.Op.applyInterval(EvalExprInterval(n.L, in), EvalExprInterval(n.R, in))
	default:
		return Top()
	}
}

func (a AluOp) applyInterval(x, y Interval) Interval {
	switch a {
	case AluAdd:
		lo, ov1 := addOv(x.Lo, y.Lo)
		hi, ov2 := addOv(x.Hi, y.Hi)
		if ov1 || ov2 {
			return Top()
		}
		return Interval{lo, hi}
	case AluSub:
		lo, ov1 := subOv(x.Lo, y.Hi)
		hi, ov2 := subOv(x.Hi, y.Lo)
		if ov1 || ov2 {
			return Top()
		}
		return Interval{lo, hi}
	case AluMul:
		// True products are monotone in each argument, so extremes over
		// the box sit at corners; any corner overflow forces Top.
		iv := Interval{math.MaxInt64, math.MinInt64}
		for _, p := range [4][2]int64{{x.Lo, y.Lo}, {x.Lo, y.Hi}, {x.Hi, y.Lo}, {x.Hi, y.Hi}} {
			v, ov := mulOv(p[0], p[1])
			if ov {
				return Top()
			}
			if v < iv.Lo {
				iv.Lo = v
			}
			if v > iv.Hi {
				iv.Hi = v
			}
		}
		return iv
	case AluDiv:
		// Division by zero yields 0 in Apply; once 0 is a possible
		// divisor the result set is irregular, so give up. With the
		// divisor sign fixed, x/y is monotone in each argument
		// (truncation toward zero) and corners bound the box. Go defines
		// MinInt64 / -1 = MinInt64, matching Apply, so no overflow case
		// exists.
		if y.Lo <= 0 && y.Hi >= 0 {
			return Top()
		}
		iv := Interval{math.MaxInt64, math.MinInt64}
		for _, p := range [4][2]int64{{x.Lo, y.Lo}, {x.Lo, y.Hi}, {x.Hi, y.Lo}, {x.Hi, y.Hi}} {
			v := p[0] / p[1]
			if v < iv.Lo {
				iv.Lo = v
			}
			if v > iv.Hi {
				iv.Hi = v
			}
		}
		return iv
	case AluEQ:
		if x.Lo == x.Hi && y.Lo == y.Hi && x.Lo == y.Lo {
			return Point(1)
		}
		if x.Hi < y.Lo || x.Lo > y.Hi {
			return Point(0)
		}
		return Interval{0, 1}
	case AluLT:
		if x.Hi < y.Lo {
			return Point(1)
		}
		if x.Lo >= y.Hi {
			return Point(0)
		}
		return Interval{0, 1}
	case AluGT:
		if x.Lo > y.Hi {
			return Point(1)
		}
		if x.Hi <= y.Lo {
			return Point(0)
		}
		return Interval{0, 1}
	default:
		return Top()
	}
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, true
	}
	return s, false
}

func subOv(a, b int64) (int64, bool) {
	s := a - b
	if (a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0) {
		return 0, true
	}
	return s, false
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, true
	}
	return p, false
}
