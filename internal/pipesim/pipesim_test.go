package pipesim

import (
	"testing"
	"testing/quick"
)

func load(pages int64) TaskLoad {
	return TaskLoad{Pages: pages, VecsPerPage: 64, TransformDepth: 4}
}

func TestInvalidParams(t *testing.T) {
	if _, err := Simulate(Params{}, []TaskLoad{load(1)}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestEmptyLoad(t *testing.T) {
	res, err := Simulate(Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
}

// The makespan can never beat the flash-bus bandwidth bound, and for a
// long bandwidth-limited stream it should approach it.
func TestApproachesBandwidthBound(t *testing.T) {
	p := Default()
	loads := []TaskLoad{load(20000)}
	res, err := Simulate(p, loads)
	if err != nil {
		t.Fatal(err)
	}
	bound := BandwidthBound(p, loads)
	if res.Seconds < bound {
		t.Fatalf("simulated %.6fs beats the bandwidth bound %.6fs", res.Seconds, bound)
	}
	if res.Seconds > bound*1.2 {
		t.Fatalf("simulated %.6fs is %.1fx the bandwidth bound; pipeline not overlapping",
			res.Seconds, res.Seconds/bound)
	}
	if res.Bound != "flash-bus" {
		t.Fatalf("bound = %q, want flash-bus", res.Bound)
	}
}

// A queue depth of 1 makes the stream latency-bound: throughput is one
// page per (latency + transfer).
func TestShallowQueueIsLatencyBound(t *testing.T) {
	p := Default()
	p.QueueDepth = 1
	const pages = 1000
	res, err := Simulate(p, []TaskLoad{load(pages)})
	if err != nil {
		t.Fatal(err)
	}
	perPage := p.FlashPageLatencyCycles + int64(float64(8192)/p.FlashBusBytesPerCycle)
	min := perPage * (pages - 1)
	if res.Cycles < min {
		t.Fatalf("cycles = %d, want >= %d (latency-bound)", res.Cycles, min)
	}
	// And it must be far slower than the deep-queue run.
	deep, _ := Simulate(Default(), []TaskLoad{load(pages)})
	if res.Cycles < 5*deep.Cycles {
		t.Fatalf("shallow queue (%d) not clearly slower than deep (%d)", res.Cycles, deep.Cycles)
	}
}

// A slow Swissknife becomes the bottleneck and backpressures the stream.
func TestSlowOperatorDominates(t *testing.T) {
	p := Default()
	p.SwissknifeVecsPerCycle = 0.05 // 20 cycles per vector
	res, err := Simulate(p, []TaskLoad{load(2000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != "swissknife" {
		t.Fatalf("bound = %q", res.Bound)
	}
	fast, _ := Simulate(Default(), []TaskLoad{load(2000)})
	if res.Cycles < 5*fast.Cycles/2 {
		t.Fatalf("slow swissknife not dominating: %d vs %d", res.Cycles, fast.Cycles)
	}
}

// The mask buffer limits in-flight pages: shrinking it to one page
// serializes latency like a depth-1 queue.
func TestMaskBufferBackpressure(t *testing.T) {
	p := Default()
	p.MaskSlots = 64 // one page worth of vectors
	res, err := Simulate(p, []TaskLoad{load(500)})
	if err != nil {
		t.Fatal(err)
	}
	free, _ := Simulate(Default(), []TaskLoad{load(500)})
	if res.Cycles < 3*free.Cycles {
		t.Fatalf("mask backpressure missing: %d vs %d", res.Cycles, free.Cycles)
	}
}

// Sequential tasks accumulate.
func TestSequentialTasks(t *testing.T) {
	p := Default()
	one, _ := Simulate(p, []TaskLoad{load(3000)})
	two, _ := Simulate(p, []TaskLoad{load(3000), load(3000)})
	if two.Cycles < 2*one.Cycles-one.Cycles/10 {
		t.Fatalf("two tasks = %d, one = %d", two.Cycles, one.Cycles)
	}
}

// Sorter DRAM traffic extends the makespan.
func TestSorterTrafficCounted(t *testing.T) {
	p := Default()
	with, _ := Simulate(p, []TaskLoad{{Pages: 100, VecsPerPage: 64, SorterDRAMBytes: 1 << 30}})
	without, _ := Simulate(p, []TaskLoad{{Pages: 100, VecsPerPage: 64}})
	if with.Cycles <= without.Cycles {
		t.Fatal("sorter traffic ignored")
	}
}

// Property: makespan is monotone in pages and never below either the
// bandwidth bound or any single stage's busy time.
func TestQuickMonotoneAndBounded(t *testing.T) {
	f := func(p8 uint8, extra uint8) bool {
		pages := int64(p8)%500 + 1
		p := Default()
		a, err := Simulate(p, []TaskLoad{load(pages)})
		if err != nil {
			return false
		}
		b, err := Simulate(p, []TaskLoad{load(pages + int64(extra)%100 + 1)})
		if err != nil {
			return false
		}
		if b.Cycles < a.Cycles {
			return false
		}
		for _, c := range a.StageBusy {
			if a.Cycles < c {
				return false
			}
		}
		return a.Seconds >= BandwidthBound(p, []TaskLoad{load(pages)})*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
