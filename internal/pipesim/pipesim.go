// Package pipesim is a cycle-approximate discrete-event model of the
// AQUOMAN pipeline — the stand-in for the paper's FPGA prototype in the
// Fig. 17 validation. Where internal/perf prices a query analytically
// (bytes over bandwidths), pipesim replays a Table Task's page stream
// through the actual pipeline structure: the flash command queue (depth
// 128, per-page latency, shared transfer bus), the Row Selector, the Row
// Transformer (PE-chain fill latency), and the SQL Swissknife, with the
// Row-Mask Vector circular buffer applying backpressure to page issue
// (Sec. VI: a page may only be in flight while its mask slots are
// reserved).
//
// The model is a chain of pipeline recurrences, one term per hardware
// resource, evaluated per page in order — equivalent to an event-driven
// simulation of this queueing network but O(pages) and deterministic.
package pipesim

import (
	"fmt"

	"aquoman/internal/bitvec"
	"aquoman/internal/flash"
)

// Params describes the hardware instance (defaults per Sec. VII).
type Params struct {
	// ClockHz is the accelerator clock (125 MHz prototype).
	ClockHz float64
	// FlashPageLatencyCycles is the NAND read latency per page.
	FlashPageLatencyCycles int64
	// FlashBusBytesPerCycle is the flash transfer bus width (32 B/beat
	// at 125 MHz = 4 GB/s; the controller sustains 2.4 GB/s end to end,
	// so the default models the effective rate).
	FlashBusBytesPerCycle float64
	// QueueDepth is the flash command queue depth.
	QueueDepth int
	// MaskSlots is the Row-Mask Vector circular buffer capacity in
	// 32-row vectors.
	MaskSlots int
	// SelectorVecsPerCycle is the Row Selector's service rate.
	SelectorVecsPerCycle float64
	// TransformerVecsPerCycle is the systolic array's steady-state rate.
	TransformerVecsPerCycle float64
	// SwissknifeVecsPerCycle is the operator accelerators' rate.
	SwissknifeVecsPerCycle float64
}

// Default returns the prototype parameters: 125 MHz, ~60 µs page reads,
// effective 2.4 GB/s flash, 128-deep queue, 32 K mask slots.
func Default() Params {
	return Params{
		ClockHz:                 125e6,
		FlashPageLatencyCycles:  7500, // 60 µs at 125 MHz
		FlashBusBytesPerCycle:   19.2, // 2.4 GB/s at 125 MHz
		QueueDepth:              flash.QueueDepth,
		MaskSlots:               flash.QueueDepth * flash.PageSize / bitvec.VecSize,
		SelectorVecsPerCycle:    1,
		TransformerVecsPerCycle: 1,
		SwissknifeVecsPerCycle:  1,
	}
}

// TaskLoad is one Table Task's demand, extracted from its trace.
type TaskLoad struct {
	// Pages is the number of flash pages streamed (selector + reader).
	Pages int64
	// VecsPerPage is the Row Vectors one page yields.
	VecsPerPage int64
	// TransformDepth is the PE-chain length (pipeline fill latency).
	TransformDepth int64
	// SorterDRAMBytes adds post-pipeline DRAM merge passes.
	SorterDRAMBytes int64
}

// Result reports the simulated execution.
type Result struct {
	Cycles  int64
	Seconds float64
	// Bound names the limiting resource ("flash-bus", "flash-latency",
	// "selector", "transformer", "swissknife").
	Bound string
	// StageBusy is each stage's total service demand in cycles.
	StageBusy map[string]int64
}

// Simulate replays the loads through the pipeline sequentially (Table
// Tasks execute one at a time, Sec. V).
func Simulate(p Params, loads []TaskLoad) (Result, error) {
	if p.ClockHz <= 0 || p.QueueDepth <= 0 || p.MaskSlots <= 0 {
		return Result{}, fmt.Errorf("pipesim: invalid params %+v", p)
	}
	var clock int64
	busy := map[string]int64{}
	for _, ld := range loads {
		end, b := simulateTask(p, ld, clock, busy)
		clock = end
		_ = b
	}
	res := Result{
		Cycles:    clock,
		Seconds:   float64(clock) / p.ClockHz,
		StageBusy: busy,
	}
	// The bound is the busiest resource.
	var maxBusy int64 = -1
	for name, c := range busy {
		if c > maxBusy {
			maxBusy = c
			res.Bound = name
		}
	}
	return res, nil
}

func simulateTask(p Params, ld TaskLoad, start int64, busy map[string]int64) (int64, string) {
	if ld.Pages == 0 {
		return start, ""
	}
	vecsPerPage := ld.VecsPerPage
	if vecsPerPage <= 0 {
		vecsPerPage = int64(flash.PageSize / 4 / bitvec.VecSize)
	}
	// Per-page service times in cycles.
	transfer := int64(float64(flash.PageSize)/p.FlashBusBytesPerCycle + 0.5)
	selSvc := int64(float64(vecsPerPage)/p.SelectorVecsPerCycle + 0.5)
	trSvc := int64(float64(vecsPerPage)/p.TransformerVecsPerCycle + 0.5)
	skSvc := int64(float64(vecsPerPage)/p.SwissknifeVecsPerCycle + 0.5)
	maskPages := int64(p.MaskSlots) / vecsPerPage
	if maskPages < 1 {
		maskPages = 1
	}
	qd := int64(p.QueueDepth)

	// Rolling windows for the finite resources.
	window := maskPages
	if qd > window {
		window = qd
	}
	issue := make([]int64, window)  // page issue times (ring)
	doneSK := make([]int64, window) // swissknife completion (ring)
	var busFree, selFree, trFree, skFree int64
	busFree, selFree, trFree, skFree = start, start, start, start

	var n int64
	for n = 0; n < ld.Pages; n++ {
		t := start
		// Flash queue: at most QueueDepth commands in flight (issued but
		// not yet transferred).
		if n >= qd {
			prev := issue[(n-qd)%window]
			done := prev + p.FlashPageLatencyCycles + transfer
			if done > t {
				t = done
			}
		}
		// Row-Mask buffer backpressure: the page MaskSlots back must have
		// drained through the Swissknife before this page may issue.
		if n >= maskPages {
			if d := doneSK[(n-maskPages)%window]; d > t {
				t = d
			}
		}
		issue[n%window] = t
		// NAND latency, then the shared transfer bus serializes pages.
		ready := t + p.FlashPageLatencyCycles
		if busFree > ready {
			ready = busFree
		}
		ready += transfer
		busFree = ready
		busy["flash-bus"] += transfer
		// Selector.
		if selFree > ready {
			ready = selFree
		}
		ready += selSvc
		selFree = ready
		busy["selector"] += selSvc
		// Transformer: chain-fill latency on the first page only (the
		// pipeline stays full afterwards).
		if n == 0 {
			ready += ld.TransformDepth
		}
		if trFree > ready {
			ready = trFree
		}
		ready += trSvc
		trFree = ready
		busy["transformer"] += trSvc
		// Swissknife.
		if skFree > ready {
			ready = skFree
		}
		ready += skSvc
		skFree = ready
		busy["swissknife"] += skSvc
		doneSK[n%window] = ready
	}
	end := skFree
	// Sorter DRAM merge passes extend the task (line-rate DDR4 at 36 GB/s
	// vs the 125 MHz clock = 288 B/cycle).
	if ld.SorterDRAMBytes > 0 {
		end += int64(float64(ld.SorterDRAMBytes) / 288)
		busy["sorter-dram"] += int64(float64(ld.SorterDRAMBytes) / 288)
	}
	busy["flash-latency"] += p.FlashPageLatencyCycles // fill once per task
	return end, ""
}

// BandwidthBound returns the pure flash-bus lower bound in seconds for
// comparison with the simulated makespan.
func BandwidthBound(p Params, loads []TaskLoad) float64 {
	var pages int64
	for _, ld := range loads {
		pages += ld.Pages
	}
	transfer := float64(flash.PageSize) / p.FlashBusBytesPerCycle
	return float64(pages) * transfer / p.ClockHz
}
