package compiler

import (
	"strings"
	"testing"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	p "aquoman/internal/plan"
	"aquoman/internal/tabletask"
)

// starStore builds fact(sales) -> dim(item) -> subdim(cat) with
// materialized FK RowID columns, plus an unsorted-FK edge and a Text
// column for suspension tests.
func starStore(t *testing.T) *col.Store {
	t.Helper()
	s := col.NewStore(flash.NewDevice())

	cb := s.NewTable(col.Schema{Name: "cat", Cols: []col.ColDef{
		{Name: "catkey", Typ: col.Int32},
		{Name: "catname", Typ: col.Dict},
	}})
	names := []string{"food", "tools", "toys"}
	for i, n := range names {
		cb.Append(i, n)
	}
	cat, err := cb.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	ib := s.NewTable(col.Schema{Name: "item", Cols: []col.ColDef{
		{Name: "itemkey", Typ: col.Int32},
		{Name: "catkey", Typ: col.Int32},
		{Name: "weight", Typ: col.Int32},
		{Name: "descr", Typ: col.Text},
	}})
	const nItems = 300
	for i := 0; i < nItems; i++ {
		ib.Append(i, i%3, i%50, strings.Repeat("d", 20))
	}
	item, err := ib.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := col.MaterializeFK(item, "catkey", cat, "catkey"); err != nil {
		t.Fatal(err)
	}

	sb := s.NewTable(col.Schema{Name: "sales", Cols: []col.ColDef{
		{Name: "saleskey", Typ: col.Int32},
		{Name: "itemkey", Typ: col.Int32}, // unsorted FK
		{Name: "qty", Typ: col.Int32},
		{Name: "price", Typ: col.Decimal},
	}})
	const nSales = 5000
	for i := 0; i < nSales; i++ {
		sb.Append(i, (i*7)%nItems, 1+i%10, int64(100+i%1000))
	}
	sales, err := sb.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := col.MaterializeFK(sales, "itemkey", item, "itemkey"); err != nil {
		t.Fatal(err)
	}
	return s
}

func compileOn(t *testing.T, s *col.Store, n p.Node) (*Result, error) {
	t.Helper()
	if err := p.Bind(n, s); err != nil {
		t.Fatalf("bind: %v", err)
	}
	return Compile(n, s, Config{HeapScale: 1_000_000})
}

func groupBySales(filter p.Expr) *p.GroupBy {
	var input p.Node = &p.Scan{Table: "sales", Cols: []string{"itemkey", "qty", "price"}}
	if filter != nil {
		input = &p.Filter{Input: input, Pred: filter}
	}
	return &p.GroupBy{
		Input: input,
		Keys:  []string{"itemkey"},
		Aggs:  []p.AggSpec{{Func: p.AggSum, Name: "total", E: p.C("price")}},
	}
}

func TestSingleTableUnit(t *testing.T) {
	s := starStore(t)
	res, err := compileOn(t, s, groupBySales(p.GT(p.C("qty"), p.I(5))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d (notes %v)", len(res.Units), res.Notes)
	}
	u := res.Units[0]
	if len(u.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(u.Tasks))
	}
	task := u.Tasks[0]
	if task.Op.Kind != tabletask.OpGroupBy || task.Op.Keys != 1 {
		t.Fatalf("op = %+v", task.Op)
	}
	if task.RowSel == nil || len(task.RowSel.Preds) != 1 || task.RowSel.Preds[0].Column != "qty" {
		t.Fatalf("rowsel = %+v", task.RowSel)
	}
	if !res.FullyOffloaded() {
		t.Fatal("single group-by root should be fully offloaded")
	}
}

func TestDimReductionUsesSortMergeForUnsortedFK(t *testing.T) {
	s := starStore(t)
	// Filtered dimension forces a dim task + a fact merge task; the fact's
	// itemkey column is NOT sorted, so the merge must SORT first.
	item := &p.Filter{
		Input: &p.Scan{Table: "item", Cols: []string{"itemkey", "weight"}},
		Pred:  p.LT(p.C("weight"), p.I(10)),
	}
	sales := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Exprs: []p.NamedExpr{
			{Name: "s_itemkey", E: p.C("itemkey")},
			{Name: "price", E: p.C("price")},
		},
	}
	g := &p.GroupBy{
		Input: &p.Join{Kind: p.InnerJoin, L: sales, R: item,
			LKeys: []string{"s_itemkey"}, RKeys: []string{"itemkey"}},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "total", E: p.C("price")}},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d (notes %v)", len(res.Units), res.Notes)
	}
	var ops []tabletask.OpKind
	for _, task := range res.Units[0].Tasks {
		ops = append(ops, task.Op.Kind)
	}
	if len(ops) != 3 || ops[0] != tabletask.OpNop || ops[1] != tabletask.OpSortMerge ||
		ops[2] != tabletask.OpAggregate {
		t.Fatalf("ops = %v, want [NOP SORT_MERGE AGGREGATE]", ops)
	}
}

func TestGatherChainThroughTwoHops(t *testing.T) {
	s := starStore(t)
	// Group sales by the category name two hops away.
	cat := &p.Project{
		Input: &p.Scan{Table: "cat", Cols: []string{"catkey", "catname"}},
		Exprs: []p.NamedExpr{
			{Name: "c_catkey", E: p.C("catkey")},
			{Name: "catname", E: p.C("catname")},
		},
	}
	itemCat := &p.Join{Kind: p.InnerJoin,
		L: &p.Scan{Table: "item", Cols: []string{"itemkey", "catkey"}},
		R: cat, LKeys: []string{"catkey"}, RKeys: []string{"c_catkey"}}
	sales := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price", "qty"}},
		Exprs: []p.NamedExpr{
			{Name: "s_itemkey", E: p.C("itemkey")},
			{Name: "price", E: p.C("price")},
			{Name: "qty", E: p.C("qty")},
		},
	}
	g := &p.GroupBy{
		Input: &p.Join{Kind: p.InnerJoin, L: sales, R: itemCat,
			LKeys: []string{"s_itemkey"}, RKeys: []string{"itemkey"}},
		Keys: []string{"catname"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "total", E: p.C("price")}},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d (notes: %v)", len(res.Units), res.Notes)
	}
	final := res.Units[0].Tasks[len(res.Units[0].Tasks)-1]
	if len(final.Gathers) != 1 {
		t.Fatalf("gathers = %+v", final.Gathers)
	}
	ga := final.Gathers[0]
	if ga.BaseCol != col.RowIDColumnName("itemkey") || len(ga.Hops) != 2 ||
		ga.Hops[0].Table != "item" || ga.Hops[0].Column != col.RowIDColumnName("catkey") ||
		ga.Hops[1].Table != "cat" || ga.Hops[1].Column != "catname" {
		t.Fatalf("gather chain = %+v", ga)
	}
}

func TestTextPredicateRejectsUnit(t *testing.T) {
	s := starStore(t)
	item := &p.Filter{
		Input: &p.Scan{Table: "item", Cols: []string{"itemkey", "descr"}},
		Pred:  p.Like{Col: "descr", Pattern: "%dd%"},
	}
	sales := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Exprs: []p.NamedExpr{
			{Name: "s_itemkey", E: p.C("itemkey")},
			{Name: "price", E: p.C("price")},
		},
	}
	g := &p.GroupBy{
		Input: &p.Join{Kind: p.InnerJoin, L: sales, R: item,
			LKeys: []string{"s_itemkey"}, RKeys: []string{"itemkey"}},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "total", E: p.C("price")}},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 0 {
		t.Fatalf("text-filtered unit offloaded: %v", res.Units[0].Label)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "string-heap") || strings.Contains(n, "regex") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no suspension note: %v", res.Notes)
	}
}

func TestCountDistinctRejected(t *testing.T) {
	s := starStore(t)
	g := &p.GroupBy{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "qty"}},
		Keys:  []string{"qty"},
		Aggs:  []p.AggSpec{{Func: p.AggCountDistinct, Name: "n", E: p.C("itemkey")}},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 0 {
		t.Fatal("COUNT(DISTINCT) offloaded")
	}
}

func TestTinyFactRejected(t *testing.T) {
	s := starStore(t)
	g := &p.GroupBy{
		Input: &p.Scan{Table: "cat", Cols: []string{"catkey"}},
		Keys:  []string{"catkey"},
		Aggs:  []p.AggSpec{{Func: p.AggCount, Name: "n"}},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 0 {
		t.Fatal("3-row fact offloaded")
	}
}

func TestRowReturningUnitRequiresFilter(t *testing.T) {
	s := starStore(t)
	// A pure rename of a scan must not become a unit.
	n := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Exprs: []p.NamedExpr{{Name: "k", E: p.C("itemkey")}},
	}
	res, err := compileOn(t, s, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 0 {
		t.Fatal("pass-through project offloaded")
	}
	// With a filter it becomes a legitimate pushdown.
	n2 := &p.Filter{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Pred:  p.GT(p.C("price"), p.I(900)),
	}
	res2, err := compileOn(t, s, n2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Units) != 1 {
		t.Fatalf("filter pushdown missing (notes %v)", res2.Notes)
	}
	if res2.Units[0].Tasks[0].Op.Kind != tabletask.OpNop {
		t.Fatalf("op = %v", res2.Units[0].Tasks[0].Op.Kind)
	}
}

func TestSemiJoinBecomesExistenceMask(t *testing.T) {
	s := starStore(t)
	// items with at least one large sale, counted per category key.
	sales := &p.Filter{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "qty"}},
		Pred:  p.GT(p.C("qty"), p.I(8)),
	}
	salesR := &p.Project{Input: sales, Exprs: []p.NamedExpr{{Name: "s_itemkey", E: p.C("itemkey")}}}
	semi := &p.Join{Kind: p.SemiJoin,
		L:     &p.Scan{Table: "item", Cols: []string{"itemkey", "catkey"}},
		R:     salesR,
		LKeys: []string{"itemkey"}, RKeys: []string{"s_itemkey"}}
	g := &p.GroupBy{Input: semi, Keys: []string{"catkey"},
		Aggs: []p.AggSpec{{Func: p.AggCount, Name: "n"}}}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d (notes %v)", len(res.Units), res.Notes)
	}
	tasks := res.Units[0].Tasks
	if tasks[0].Op.Kind != tabletask.OpMask || tasks[0].Op.MaskTable != "item" {
		t.Fatalf("first task op = %+v", tasks[0].Op)
	}
	final := tasks[len(tasks)-1]
	if final.MaskSrc.Kind != tabletask.MaskDRAM || final.MaskSrc.Negate {
		t.Fatalf("final mask = %+v", final.MaskSrc)
	}
}

func TestAntiJoinNegatesMask(t *testing.T) {
	s := starStore(t)
	salesR := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "qty"}},
		Exprs: []p.NamedExpr{{Name: "s_itemkey", E: p.C("itemkey")}},
	}
	anti := &p.Join{Kind: p.AntiJoin,
		L:     &p.Scan{Table: "item", Cols: []string{"itemkey", "catkey", "weight"}},
		R:     &p.Filter{Input: salesR, Pred: p.GT(p.C("s_itemkey"), p.I(100))},
		LKeys: []string{"itemkey"}, RKeys: []string{"s_itemkey"}}
	g := &p.GroupBy{Input: anti, Keys: []string{"catkey"},
		Aggs: []p.AggSpec{{Func: p.AggCount, Name: "n"}}}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d (notes %v)", len(res.Units), res.Notes)
	}
	final := res.Units[0].Tasks[len(res.Units[0].Tasks)-1]
	if !final.MaskSrc.Negate {
		t.Fatalf("anti-join mask not negated: %+v", final.MaskSrc)
	}
}

func TestFanOutInnerJoinRejected(t *testing.T) {
	s := starStore(t)
	// Inner join item -> sales on itemkey fans out (sales not unique).
	salesR := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Exprs: []p.NamedExpr{
			{Name: "s_itemkey", E: p.C("itemkey")},
			{Name: "price", E: p.C("price")},
		},
	}
	j := &p.Join{Kind: p.InnerJoin,
		L:     &p.Scan{Table: "item", Cols: []string{"itemkey", "weight"}},
		R:     salesR,
		LKeys: []string{"itemkey"}, RKeys: []string{"s_itemkey"}}
	g := &p.GroupBy{
		Input: &p.Filter{Input: j, Pred: p.GT(p.C("weight"), p.I(10))},
		Aggs:  []p.AggSpec{{Func: p.AggSum, Name: "t", E: p.C("price")}},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Units {
		if len(u.Tasks) > 1 {
			t.Fatalf("fan-out join compiled into multi-task unit %s", u.Label)
		}
	}
}

func TestAvgExpandsToSharedSlots(t *testing.T) {
	s := starStore(t)
	g := &p.GroupBy{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Keys:  []string{"itemkey"},
		Aggs: []p.AggSpec{
			{Func: p.AggSum, Name: "s", E: p.C("price")},
			{Func: p.AggAvg, Name: "a", E: p.C("price")},
			{Func: p.AggCount, Name: "c"},
		},
	}
	res, err := compileOn(t, s, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d", len(res.Units))
	}
	task := res.Units[0].Tasks[0]
	// sum(price) shared by SUM and AVG, one shared count: 2 slots.
	if len(task.Op.Aggs) != 2 {
		t.Fatalf("slots = %v, want 2 (shared)", task.Op.Aggs)
	}
}

func TestCopyOnWriteLeavesOriginalExecutable(t *testing.T) {
	s := starStore(t)
	orig := groupBySales(p.GT(p.C("qty"), p.I(5)))
	res, err := compileOn(t, s, orig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root == plan0(orig) {
		t.Fatal("root not rewritten")
	}
	// The original tree still has its scan input (not a placeholder).
	if _, ok := orig.Input.(*p.Filter); !ok {
		t.Fatalf("original mutated: input is %T", orig.Input)
	}
}

func plan0(n p.Node) p.Node { return n }

// LIKE over a Text column whose heap fits the regex accelerator compiles
// to a RegexFilter on the task instead of suspending.
func TestSmallHeapLikeUsesRegexAccelerator(t *testing.T) {
	s := starStore(t)
	g := &p.GroupBy{
		Input: &p.Filter{
			Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price", "qty"}},
			Pred:  p.GT(p.C("qty"), p.I(0)),
		},
		Keys: []string{"itemkey"},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "t", E: p.C("price")}},
	}
	// Rewrite the filter to reference the dim's Text column via a join.
	item := &p.Filter{
		Input: &p.Scan{Table: "item", Cols: []string{"itemkey", "descr"}},
		Pred:  p.Like{Col: "descr", Pattern: "dd%"},
	}
	sales := &p.Project{
		Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
		Exprs: []p.NamedExpr{
			{Name: "s_itemkey", E: p.C("itemkey")},
			{Name: "price", E: p.C("price")},
		},
	}
	g = &p.GroupBy{
		Input: &p.Join{Kind: p.InnerJoin, L: sales, R: item,
			LKeys: []string{"s_itemkey"}, RKeys: []string{"itemkey"}},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "t", E: p.C("price")}},
	}
	if err := p.Bind(g, s); err != nil {
		t.Fatal(err)
	}
	// HeapScale 1: the tiny heap fits the 1 MB cache.
	res, err := Compile(g, s, Config{HeapScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 {
		t.Fatalf("units = %d (notes %v)", len(res.Units), res.Notes)
	}
	foundRegex := false
	for _, task := range res.Units[0].Tasks {
		if len(task.RegexFilters) > 0 {
			foundRegex = true
			if task.RegexFilters[0].Pattern != "dd%" {
				t.Fatalf("pattern = %q", task.RegexFilters[0].Pattern)
			}
		}
	}
	if !foundRegex {
		t.Fatal("no task carries the regex filter")
	}
	// At deployment scale the same predicate suspends.
	g2 := &p.GroupBy{
		Input: &p.Join{Kind: p.InnerJoin,
			L: &p.Project{
				Input: &p.Scan{Table: "sales", Cols: []string{"itemkey", "price"}},
				Exprs: []p.NamedExpr{
					{Name: "s_itemkey", E: p.C("itemkey")},
					{Name: "price", E: p.C("price")},
				},
			},
			R: &p.Filter{
				Input: &p.Scan{Table: "item", Cols: []string{"itemkey", "descr"}},
				Pred:  p.Like{Col: "descr", Pattern: "dd%"},
			},
			LKeys: []string{"s_itemkey"}, RKeys: []string{"itemkey"}},
		Aggs: []p.AggSpec{{Func: p.AggSum, Name: "t", E: p.C("price")}},
	}
	if err := p.Bind(g2, s); err != nil {
		t.Fatal(err)
	}
	res2, err := Compile(g2, s, Config{HeapScale: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Units) != 0 {
		t.Fatal("big-heap LIKE should suspend")
	}
}

// Explain renders the Fig. 5-style task listing.
func TestExplain(t *testing.T) {
	s := starStore(t)
	res, err := compileOn(t, s, groupBySales(p.GT(p.C("qty"), p.I(5))))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, want := range []string{"tabletask_0", "rowSel", "AGGREGATE_GROUPBY", "output   = Host"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
	// Host-only compilations say so.
	empty := &Result{}
	if !strings.Contains(empty.Explain(), "no offloadable units") {
		t.Fatal("empty explain")
	}
}
