// Package compiler lowers logical query plans onto AQUOMAN Table Tasks.
//
// Given a plan tree, Compile finds the largest subtrees expressible as a
// star of streaming Table Tasks — a fact table reduced by sort-merge /
// merge semijoins against filtered dimensions (Sec. VI-D), with dimension
// attributes reconstructed through materialized FK RowID columns and a
// final AGGREGATE / AGGREGATE_GROUPBY / row-returning pass — and replaces
// each with a plan.Materialized placeholder the host engine consumes. The
// suspension conditions of Sec. VI-E are detected here: string-heap
// predicates too large for the regex accelerator, mid-plan group-bys
// (nested units stay separate), and shapes the pipeline cannot express
// fall back to the host.
package compiler

import (
	"fmt"

	"aquoman/internal/col"
	"aquoman/internal/plan"
	"aquoman/internal/regexcc"
	"aquoman/internal/rowsel"
	"aquoman/internal/systolic"
	"aquoman/internal/tabletask"
)

// errNotOffloadable marks subtrees the star analyzer rejects; the reason
// is reported in the compile notes.
type errNotOffloadable struct{ reason string }

func (e *errNotOffloadable) Error() string { return e.reason }

func reject(format string, args ...any) error {
	return &errNotOffloadable{reason: fmt.Sprintf(format, args...)}
}

// tableRef is one base table in a star.
type tableRef struct {
	id   int
	scan *plan.Scan
	tab  *col.Table

	parent *tableRef
	// edgeFK / edgePK describe the equi-join edge to parent. When
	// fkOnParent, parent.edgeFK references this table's unique edgePK
	// (the usual fact→dimension direction); otherwise this table's
	// edgeFK references the parent's key (semi/anti existence tests).
	edgeFK     string
	edgePK     string
	fkOnParent bool
	edgeKind   plan.JoinKind
	children   []*tableRef

	// Filters attached to this table.
	selPreds []rowsel.ColPred
	// regexPreds run on the Table Reader's regex accelerator (Text
	// columns whose heap fits the 1 MB cache at the modeled scale).
	regexPreds []tabletask.RegexFilter
	postPreds  []plan.Expr // same-table conjuncts over canonical names
	filtered   bool

	// inSemi marks refs under a semi/anti edge: usable for reduction
	// only, never for output columns.
	inSemi bool
}

func (r *tableRef) markSemi() {
	r.inSemi = true
	for _, c := range r.children {
		c.markSemi()
	}
}

func (r *tableRef) subtreeFiltered() bool {
	if r.filtered {
		return true
	}
	for _, c := range r.children {
		if c.subtreeFiltered() {
			return true
		}
	}
	return false
}

// resolved locates a canonical column on a base table.
type resolved struct {
	ref  *tableRef
	col  string
	info *col.ColumnInfo // nil for the implicit @rowid
}

// scope is the set of columns visible at one point of the tree: visible
// name → canonical name (base columns) or defining expression (computed
// projections, already in canonical terms).
type scope struct {
	cols  map[string]string
	exprs map[string]plan.Expr
}

func newScope() *scope {
	return &scope{cols: map[string]string{}, exprs: map[string]plan.Expr{}}
}

// star is the analyzed join tree.
type star struct {
	store *col.Store
	cfg   Config

	fact *tableRef
	refs []*tableRef

	// colOf maps canonical names ("t<id>.<col>") to their base columns.
	colOf map[string]resolved
	// out is the scope visible at the analyzed root.
	out *scope
	// residual holds cross-table conjuncts and inner-join Extra
	// predicates (canonical terms); they must resolve on the fact side
	// as the final task's transformer sub-predicate.
	residual []plan.Expr
}

// canonName registers (and returns) the canonical name of a base column.
func (s *star) canonName(ref *tableRef, name string) string {
	canon := fmt.Sprintf("t%d.%s", ref.id, name)
	if _, ok := s.colOf[canon]; !ok {
		r := resolved{ref: ref, col: name}
		if name != plan.RowIDCol {
			if ci, err := ref.tab.Column(name); err == nil {
				r.info = ci
			}
		}
		s.colOf[canon] = r
	}
	return canon
}

// canonicalize rewrites an expression from visible names to canonical
// names, inlining computed projections.
func (s *star) canonicalize(e plan.Expr, sc *scope) (plan.Expr, error) {
	rewriteCol := func(name string) (plan.Expr, error) {
		if canon, ok := sc.cols[name]; ok {
			return plan.Col{Name: canon}, nil
		}
		if def, ok := sc.exprs[name]; ok {
			return def, nil
		}
		return nil, reject("unknown column %q", name)
	}
	switch n := e.(type) {
	case plan.Col:
		return rewriteCol(n.Name)
	case plan.Bin:
		l, err := s.canonicalize(n.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := s.canonicalize(n.R, sc)
		if err != nil {
			return nil, err
		}
		return plan.Bin{Op: n.Op, L: l, R: r}, nil
	case plan.Not:
		inner, err := s.canonicalize(n.E, sc)
		if err != nil {
			return nil, err
		}
		return plan.Not{E: inner}, nil
	case plan.InInts:
		inner, err := s.canonicalize(n.E, sc)
		if err != nil {
			return nil, err
		}
		return plan.InInts{E: inner, Vs: n.Vs}, nil
	case plan.InStrs:
		c, err := rewriteCol(n.Col)
		if err != nil {
			return nil, err
		}
		cc, ok := c.(plan.Col)
		if !ok {
			return nil, reject("string membership over a computed column")
		}
		return plan.InStrs{Col: cc.Name, Vs: n.Vs}, nil
	case plan.Like:
		c, err := rewriteCol(n.Col)
		if err != nil {
			return nil, err
		}
		cc, ok := c.(plan.Col)
		if !ok {
			return nil, reject("LIKE over a computed column")
		}
		return plan.Like{Col: cc.Name, Pattern: n.Pattern, Negate: n.Negate}, nil
	case plan.SubstrCode:
		c, err := rewriteCol(n.Col)
		if err != nil {
			return nil, err
		}
		cc, ok := c.(plan.Col)
		if !ok {
			return nil, reject("SUBSTRING over a computed column")
		}
		return plan.SubstrCode{Col: cc.Name, Start: n.Start, Len: n.Len}, nil
	case plan.YearOf:
		inner, err := s.canonicalize(n.E, sc)
		if err != nil {
			return nil, err
		}
		return plan.YearOf{E: inner}, nil
	case plan.Case:
		cond, err := s.canonicalize(n.Cond, sc)
		if err != nil {
			return nil, err
		}
		th, err := s.canonicalize(n.Then, sc)
		if err != nil {
			return nil, err
		}
		el, err := s.canonicalize(n.Else, sc)
		if err != nil {
			return nil, err
		}
		return plan.Case{Cond: cond, Then: th, Else: el}, nil
	default:
		return e, nil
	}
}

// analyze builds a star from a join-tree plan node.
func (c *compileCtx) analyze(n plan.Node) (*star, error) {
	s := &star{
		store: c.store,
		cfg:   c.cfg,
		colOf: make(map[string]resolved),
	}
	root, sc, err := s.walk(n)
	if err != nil {
		return nil, err
	}
	s.fact = root
	s.out = sc
	return s, nil
}

// walk returns the row-identity table and the visible scope of a subtree.
func (s *star) walk(n plan.Node) (*tableRef, *scope, error) {
	switch t := n.(type) {
	case *plan.Scan:
		if t.Tab == nil {
			return nil, nil, fmt.Errorf("compiler: scan %q not bound", t.Table)
		}
		ref := &tableRef{id: len(s.refs), scan: t, tab: t.Tab}
		s.refs = append(s.refs, ref)
		sc := newScope()
		for _, name := range t.Cols {
			sc.cols[name] = s.canonName(ref, name)
		}
		return ref, sc, nil

	case *plan.Filter:
		ref, sc, err := s.walk(t.Input)
		if err != nil {
			return nil, nil, err
		}
		for _, conj := range conjuncts(t.Pred) {
			canon, err := s.canonicalize(conj, sc)
			if err != nil {
				return nil, nil, err
			}
			if err := s.attachPred(canon); err != nil {
				return nil, nil, err
			}
		}
		return ref, sc, nil

	case *plan.Project:
		ref, sc, err := s.walk(t.Input)
		if err != nil {
			return nil, nil, err
		}
		out := newScope()
		for _, ne := range t.Exprs {
			canon, err := s.canonicalize(ne.E, sc)
			if err != nil {
				return nil, nil, err
			}
			if c, ok := canon.(plan.Col); ok {
				out.cols[ne.Name] = c.Name
			} else {
				out.exprs[ne.Name] = canon
			}
		}
		return ref, out, nil

	case *plan.Join:
		return s.walkJoin(t)

	default:
		return nil, nil, reject("%T inside a join tree (mid-plan aggregation or materialized input)", n)
	}
}

func (s *star) walkJoin(t *plan.Join) (*tableRef, *scope, error) {
	if t.Kind == plan.LeftMarkJoin {
		return nil, nil, reject("outer join is not streamable")
	}
	if len(t.LKeys) != 1 {
		return nil, nil, reject("composite-key join")
	}
	left, lsc, err := s.walk(t.L)
	if err != nil {
		return nil, nil, err
	}
	right, rsc, err := s.walk(t.R)
	if err != nil {
		return nil, nil, err
	}
	lcanon, ok := lsc.cols[t.LKeys[0]]
	if !ok {
		return nil, nil, reject("join key %q is computed, not a base column", t.LKeys[0])
	}
	rcanon, ok := rsc.cols[t.RKeys[0]]
	if !ok {
		return nil, nil, reject("join key %q is computed, not a base column", t.RKeys[0])
	}
	lres := s.colOf[lcanon]
	rres := s.colOf[rcanon]
	rref := rres.ref
	if rref != right {
		return nil, nil, reject("join key %q is not on the right subtree's row-identity table", t.RKeys[0])
	}
	parent := lres.ref
	rref.parent = parent
	parent.children = append(parent.children, rref)
	rref.edgeKind = t.Kind

	fkRowID := col.RowIDColumnName(lres.col)
	switch {
	case parent.tab.HasColumn(fkRowID) && rres.info != nil && rres.info.Unique:
		// parent.fk references the right table's primary key (N:1).
		rref.fkOnParent = true
		rref.edgeFK = lres.col
		rref.edgePK = rres.col
	case rref.tab.HasColumn(col.RowIDColumnName(rres.col)):
		// right.fk references the parent's key (existence tests).
		rref.fkOnParent = false
		rref.edgeFK = rres.col
		rref.edgePK = lres.col
		if t.Kind == plan.InnerJoin {
			return nil, nil, reject("inner join on %s=%s fans out (right side %q is not unique)",
				t.LKeys[0], t.RKeys[0], rref.scan.Table)
		}
	default:
		return nil, nil, reject("join %s=%s has no materialized RowID index on either side",
			t.LKeys[0], t.RKeys[0])
	}

	merged := newScope()
	switch t.Kind {
	case plan.SemiJoin, plan.AntiJoin:
		if t.Extra != nil {
			return nil, nil, reject("%s join with a correlated extra predicate", t.Kind)
		}
		rref.markSemi()
		// Only the left columns stay visible.
		for k, v := range lsc.cols {
			merged.cols[k] = v
		}
		for k, v := range lsc.exprs {
			merged.exprs[k] = v
		}
	default:
		for k, v := range lsc.cols {
			merged.cols[k] = v
		}
		for k, v := range lsc.exprs {
			merged.exprs[k] = v
		}
		for k, v := range rsc.cols {
			if _, dup := merged.cols[k]; dup {
				return nil, nil, reject("join output exposes duplicate column %q", k)
			}
			merged.cols[k] = v
		}
		for k, v := range rsc.exprs {
			if _, dup := merged.exprs[k]; dup {
				return nil, nil, reject("join output exposes duplicate column %q", k)
			}
			merged.exprs[k] = v
		}
		if t.Extra != nil {
			canon, err := s.canonicalize(t.Extra, merged)
			if err != nil {
				return nil, nil, err
			}
			s.residual = append(s.residual, canon)
		}
	}
	return left, merged, nil
}

// colsIn collects the canonical columns an expression references.
func colsIn(e plan.Expr, out map[string]bool) {
	switch n := e.(type) {
	case plan.Col:
		out[n.Name] = true
	case plan.Bin:
		colsIn(n.L, out)
		colsIn(n.R, out)
	case plan.Not:
		colsIn(n.E, out)
	case plan.InInts:
		colsIn(n.E, out)
	case plan.InStrs:
		out[n.Col] = true
	case plan.Like:
		out[n.Col] = true
	case plan.SubstrCode:
		out[n.Col] = true
	case plan.YearOf:
		colsIn(n.E, out)
	case plan.Case:
		colsIn(n.Cond, out)
		colsIn(n.Then, out)
		colsIn(n.Else, out)
	}
}

// conjuncts splits a predicate on top-level ANDs.
func conjuncts(e plan.Expr) []plan.Expr {
	if b, ok := e.(plan.Bin); ok && b.Op == plan.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []plan.Expr{e}
}

// attachPred classifies one canonical filter conjunct: single-column
// selector predicate, same-table transformer sub-predicate, or
// cross-table residual.
func (s *star) attachPred(conj plan.Expr) error {
	names := map[string]bool{}
	colsIn(conj, names)
	var refs []*tableRef
	distinct := map[*tableRef]bool{}
	var baseCols []resolved
	for name := range names {
		r, ok := s.colOf[name]
		if !ok {
			return reject("predicate references unknown column %q", name)
		}
		baseCols = append(baseCols, r)
		if !distinct[r.ref] {
			distinct[r.ref] = true
			refs = append(refs, r.ref)
		}
	}
	if len(refs) != 1 {
		s.residual = append(s.residual, conj)
		return nil
	}
	ref := refs[0]
	ref.filtered = true
	// LIKE over a Text column whose heap fits the accelerator cache at
	// the modeled scale runs on the regex accelerator.
	if lk, ok := conj.(plan.Like); ok {
		if r, known := s.colOf[lk.Col]; known && r.info != nil && r.info.Def.Typ == col.Text {
			scaled := int64(float64(r.info.HeapBytes()) * s.cfg.HeapScale)
			if !regexcc.FitsAccelerator(scaled) {
				return reject("string-heap predicate on %q: %d bytes exceed the 1MB regex accelerator cache (suspend to host)",
					lk.Col, scaled)
			}
			ref.regexPreds = append(ref.regexPreds, tabletask.RegexFilter{
				Column: r.col, Pattern: lk.Pattern, Negate: lk.Negate})
			return nil
		}
	}
	if len(baseCols) == 1 && baseCols[0].col != plan.RowIDCol {
		// Single-column predicate: try the Row Selector. Lower over a
		// one-field schema named with the canonical name.
		r := baseCols[0]
		f := fieldFor(r)
		canon := fmt.Sprintf("t%d.%s", r.ref.id, r.col)
		f.Name = canon
		lowered, err := plan.Lower(conj, plan.Schema{f})
		if err == nil {
			ref.selPreds = append(ref.selPreds, rowsel.ColPred{
				Column: r.col, Expr: lowered, CPs: countCmps(lowered)})
			return nil
		}
		if terr, ok := err.(*plan.TextError); ok {
			return s.textPredicate(r, terr)
		}
		return err
	}
	// Multi-column same-table predicate: transformer sub-predicate,
	// unless it needs string-heap content.
	if err := s.checkTextOK(conj); err != nil {
		return err
	}
	ref.postPreds = append(ref.postPreds, conj)
	return nil
}

// textPredicate decides whether a string-heap predicate fits the regex
// accelerator (Sec. VI-E condition 2). Heap sizes are scaled to the
// modeled deployment scale factor before the 1 MB test.
func (s *star) textPredicate(r resolved, terr *plan.TextError) error {
	heap := int64(0)
	if r.info != nil {
		heap = r.info.HeapBytes()
	}
	scaled := int64(float64(heap) * s.cfg.HeapScale)
	if regexcc.FitsAccelerator(scaled) {
		// Only plain LIKE predicates map onto the accelerator (handled in
		// attachPred); other string operations still suspend.
		return reject("string predicate on %q: only LIKE maps onto the regex accelerator", terr.Col)
	}
	return reject("string-heap predicate on %q: %d bytes exceed the 1MB regex accelerator cache (suspend to host)",
		terr.Col, scaled)
}

// checkTextOK rejects expressions needing heap content.
func (s *star) checkTextOK(e plan.Expr) error {
	var bad error
	var visit func(plan.Expr)
	visit = func(x plan.Expr) {
		switch n := x.(type) {
		case plan.SubstrCode:
			bad = reject("substring extraction on %q needs the string heap", n.Col)
		case plan.Like:
			if r, ok := s.colOf[n.Col]; ok && r.info != nil && r.info.Def.Typ == col.Text {
				bad = reject("string-heap LIKE on %q cannot stream through the transformer", n.Col)
			}
		case plan.Bin:
			if _, isStr := n.R.(plan.Str); isStr {
				if c, okc := n.L.(plan.Col); okc {
					if r, ok := s.colOf[c.Name]; ok && r.info != nil && r.info.Def.Typ == col.Text {
						bad = reject("string-heap comparison on %q", c.Name)
					}
				}
			}
			visit(n.L)
			visit(n.R)
		case plan.Not:
			visit(n.E)
		case plan.InInts:
			visit(n.E)
		case plan.YearOf:
			visit(n.E)
		case plan.Case:
			visit(n.Cond)
			visit(n.Then)
			visit(n.Else)
		}
	}
	visit(e)
	return bad
}

func fieldFor(r resolved) plan.Field {
	f := plan.Field{Name: r.col}
	if r.info != nil {
		f.Typ = r.info.Def.Typ
		if f.Typ.IsString() {
			f.Src = r.info
		}
	} else {
		f.Typ = col.RowID
	}
	return f
}

// renameToField rewrites column references according to the mapping
// (canonical names back to base storage names for task-local schemas).
func renameToField(e plan.Expr, names map[string]string) plan.Expr {
	switch n := e.(type) {
	case plan.Col:
		if to, ok := names[n.Name]; ok {
			return plan.Col{Name: to}
		}
		return n
	case plan.Bin:
		return plan.Bin{Op: n.Op, L: renameToField(n.L, names), R: renameToField(n.R, names)}
	case plan.Not:
		return plan.Not{E: renameToField(n.E, names)}
	case plan.InInts:
		return plan.InInts{E: renameToField(n.E, names), Vs: n.Vs}
	case plan.InStrs:
		if to, ok := names[n.Col]; ok {
			return plan.InStrs{Col: to, Vs: n.Vs}
		}
		return n
	case plan.Like:
		if to, ok := names[n.Col]; ok {
			return plan.Like{Col: to, Pattern: n.Pattern, Negate: n.Negate}
		}
		return n
	case plan.SubstrCode:
		if to, ok := names[n.Col]; ok {
			return plan.SubstrCode{Col: to, Start: n.Start, Len: n.Len}
		}
		return n
	case plan.YearOf:
		return plan.YearOf{E: renameToField(n.E, names)}
	case plan.Case:
		return plan.Case{Cond: renameToField(n.Cond, names),
			Then: renameToField(n.Then, names), Else: renameToField(n.Else, names)}
	default:
		return e
	}
}

// countCmps counts comparison nodes — the Column Predicate Evaluator
// terms a selector predicate consumes.
func countCmps(e systolic.Expr) int {
	switch n := e.(type) {
	case systolic.Bin:
		c := countCmps(n.L) + countCmps(n.R)
		switch n.Op {
		case systolic.AluEQ, systolic.AluLT, systolic.AluGT:
			c++
		}
		return c
	default:
		return 0
	}
}
