package compiler

import (
	"fmt"
	"strings"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
	"aquoman/internal/swissknife"
	"aquoman/internal/systolic"
	"aquoman/internal/tabletask"
)

// Config tunes compilation.
type Config struct {
	// GroupCfg overrides the Aggregate-GroupBy hardware geometry.
	GroupCfg swissknife.GroupByConfig
	// HeapScale scales string-heap sizes to the modeled deployment scale
	// factor before the regex-accelerator fit test (the paper evaluates
	// SF-1000; generated stores are much smaller).
	HeapScale float64
	// MinFactRows is the smallest fact table worth a Table Task.
	MinFactRows int
}

// DefaultConfig models the paper's deployment: decisions taken as if the
// store were at SF-1000 relative to a generated SF-0.01 store.
func DefaultConfig() Config {
	return Config{HeapScale: 1, MinFactRows: 64}
}

func (c Config) withDefaults() Config {
	if c.HeapScale <= 0 {
		c.HeapScale = 1
	}
	if c.MinFactRows <= 0 {
		c.MinFactRows = 64
	}
	return c
}

// Unit is one offloaded subtree: a sequential Table-Task program whose
// final host output replaces the subtree via the Placeholder.
type Unit struct {
	Label string
	Tasks []*tabletask.Task
	// Replaced is the original (still executable) subtree; a suspension
	// mid-unit resumes by running it on the host.
	Replaced    plan.Node
	Placeholder *plan.Materialized
	// Finalize converts the last task's host result into the
	// placeholder's columns (AVG division, slot reordering).
	Finalize func(*tabletask.Result) ([][]int64, error)
	// DRAMObjects lists intermediates to garbage-collect after the query.
	DRAMObjects []string
	FactTable   string
}

// Result is a compiled query: the rewritten plan plus its offload units.
type Result struct {
	Root  plan.Node
	Units []*Unit
	Notes []string
	// Codecs maps "table.column" to the storage codec of every column the
	// compiled tasks touch with a selector predicate (Explain annotation);
	// raw columns are omitted.
	Codecs map[string]string
}

// codecOf looks up a predicate column's codec annotation.
func (r *Result) codecOf(table, column string) string {
	return r.Codecs[table+"."+column]
}

// Explain renders the compiled Table-Task program the way the paper's
// Fig. 5 lists tabletask_0..n: one block per unit with each task's table,
// mask source, selector, streamed columns, gathers, operator and output.
func (r *Result) Explain() string {
	var sb strings.Builder
	if len(r.Units) == 0 {
		sb.WriteString("no offloadable units (host execution)\n")
	}
	for _, u := range r.Units {
		fmt.Fprintf(&sb, "unit %s (fact %s)\n", u.Label, u.FactTable)
		for i, t := range u.Tasks {
			fmt.Fprintf(&sb, "  tabletask_%d:\n", i)
			fmt.Fprintf(&sb, "    table    = %s\n", t.Table)
			switch t.MaskSrc.Kind {
			case tabletask.MaskDRAM:
				neg := ""
				if t.MaskSrc.Negate {
					neg = " (negated)"
				}
				fmt.Fprintf(&sb, "    maskSrc  = %s%s\n", t.MaskSrc.Name, neg)
			default:
				fmt.Fprintf(&sb, "    maskSrc  = full scan\n")
			}
			for _, and := range t.MaskAnd {
				neg := ""
				if and.Negate {
					neg = " (negated)"
				}
				fmt.Fprintf(&sb, "    maskAnd  = %s%s\n", and.Name, neg)
			}
			if t.RowSel != nil && len(t.RowSel.Preds) > 0 {
				for _, p := range t.RowSel.Preds {
					codec := ""
					if c := r.codecOf(t.Table, p.Column); c != "" {
						codec = " [" + c + "]"
					}
					fmt.Fprintf(&sb, "    rowSel   = %s: %s (%d CPs)%s\n", p.Column, p.Expr, p.CPs, codec)
				}
			}
			for _, rf := range t.RegexFilters {
				neg := ""
				if rf.Negate {
					neg = "not "
				}
				fmt.Fprintf(&sb, "    regex    = %s %slike %q\n", rf.Column, neg, rf.Pattern)
			}
			fmt.Fprintf(&sb, "    stream   = %v\n", t.Stream)
			for _, g := range t.Gathers {
				fmt.Fprintf(&sb, "    gather   = %s via %s %v\n", g.Name, g.BaseCol, g.Hops)
			}
			if t.Transform != nil {
				for oi, e := range t.Transform {
					marker := ""
					if oi == t.FilterOut {
						marker = "  (sub-predicate filter)"
					}
					fmt.Fprintf(&sb, "    out[%d]   = %s%s\n", oi, e, marker)
				}
			}
			op := t.Op.Kind.String()
			if t.Op.With != "" {
				op += " with " + t.Op.With
			}
			if t.Op.MaskTable != "" {
				op += " into mask(" + t.Op.MaskTable + ")"
			}
			if t.Op.Kind == tabletask.OpGroupBy {
				op += fmt.Sprintf(" keys=%d attrs=%d aggs=%v", t.Op.Keys, t.Op.Attrs, t.Op.Aggs)
			}
			if t.Op.Kind == tabletask.OpTopK {
				op += fmt.Sprintf(" k=%d", t.Op.K)
			}
			fmt.Fprintf(&sb, "    operator = %s\n", op)
			if t.Out.Kind == tabletask.ToDRAM {
				fmt.Fprintf(&sb, "    output   = AQUOMAN_MEM[%s]\n", t.Out.Name)
			} else {
				fmt.Fprintf(&sb, "    output   = Host\n")
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// FullyOffloaded reports whether the residual host plan is only
// post-processing of a single unit's aggregated output (ORDER BY / LIMIT /
// projection over a Materialized node).
func (r *Result) FullyOffloaded() bool {
	if len(r.Units) != 1 {
		return false
	}
	n := r.Root
	for {
		switch t := n.(type) {
		case *plan.Materialized:
			return true
		case *plan.OrderBy:
			n = t.Input
		case *plan.Limit:
			n = t.Input
		case *plan.Project:
			n = t.Input
		default:
			return false
		}
	}
}

type compileCtx struct {
	store *col.Store
	cfg   Config
	units []*Unit
	notes []string
	seq   int
}

// Compile rewrites the bound plan, extracting offloadable units.
func Compile(root plan.Node, store *col.Store, cfg Config) (*Result, error) {
	c := &compileCtx{store: store, cfg: cfg.withDefaults()}
	newRoot := c.rewrite(root)
	r := &Result{Root: newRoot, Units: c.units, Notes: c.notes}
	r.Codecs = collectCodecs(store, c.units)
	return r, nil
}

// collectCodecs records the storage codec of every selector-predicate
// column so Explain can show which scans run on encoded data.
func collectCodecs(store *col.Store, units []*Unit) map[string]string {
	codecs := make(map[string]string)
	for _, u := range units {
		for _, t := range u.Tasks {
			if t.RowSel == nil {
				continue
			}
			tab, err := store.Table(t.Table)
			if err != nil {
				continue
			}
			for _, p := range t.RowSel.Preds {
				ci, err := tab.Column(p.Column)
				if err != nil || ci.Enc == nil {
					continue
				}
				codecs[t.Table+"."+p.Column] = ci.Codec().String()
			}
		}
	}
	return codecs
}

// rewrite is copy-on-write: the input tree stays executable so that a
// suspended unit can resume on the host from its original subtree.
func (c *compileCtx) rewrite(n plan.Node) plan.Node {
	if u, err := c.tryUnit(n); err == nil {
		u.Replaced = n
		c.units = append(c.units, u)
		return u.Placeholder
	} else if _, interesting := n.(*plan.GroupBy); interesting {
		c.notes = append(c.notes, fmt.Sprintf("group-by not offloaded: %v", err))
	}
	switch t := n.(type) {
	case *plan.Filter:
		cp := *t
		cp.Input = c.rewrite(t.Input)
		return &cp
	case *plan.Project:
		cp := *t
		cp.Input = c.rewrite(t.Input)
		return &cp
	case *plan.Join:
		cp := *t
		cp.L = c.rewrite(t.L)
		cp.R = c.rewrite(t.R)
		return &cp
	case *plan.GroupBy:
		cp := *t
		cp.Input = c.rewrite(t.Input)
		return &cp
	case *plan.OrderBy:
		cp := *t
		cp.Input = c.rewrite(t.Input)
		return &cp
	case *plan.Limit:
		cp := *t
		cp.Input = c.rewrite(t.Input)
		return &cp
	case *plan.ScalarJoin:
		cp := *t
		cp.Input = c.rewrite(t.Input)
		cp.Sub = c.rewrite(t.Sub)
		return &cp
	default:
		return n
	}
}

// output describes one final-task output column.
type output struct {
	name string
	expr plan.Expr
}

func (c *compileCtx) tryUnit(n plan.Node) (*Unit, error) {
	switch t := n.(type) {
	case *plan.Limit:
		// LIMIT k over a single-key ORDER BY compiles to the TOPK
		// accelerator (Fig. 13): the stream carries (key, RowID) through
		// the VCAS chain and the host reconstructs the k result rows.
		return c.buildTopKUnit(t)
	case *plan.GroupBy:
		s, err := c.analyze(t.Input)
		if err != nil {
			return nil, err
		}
		return c.buildGroupByUnit(s, t)
	case *plan.Join, *plan.Filter, *plan.Project:
		s, err := c.analyze(n)
		if err != nil {
			return nil, err
		}
		// Row-returning units must earn their pass: some reduction or
		// computation has to happen in storage.
		worthwhile := len(s.residual) > 0
		for _, r := range s.refs {
			if r.filtered {
				worthwhile = true
			}
		}
		if !worthwhile {
			return nil, reject("pass-through subtree (no filters to push down)")
		}
		var outs []output
		for _, f := range n.Schema() {
			e, err := s.canonicalize(plan.C(f.Name), s.out)
			if err != nil {
				return nil, err
			}
			outs = append(outs, output{name: f.Name, expr: e})
		}
		return c.buildRowUnit(s, n, outs)
	default:
		return nil, reject("node %T is not an offload root", n)
	}
}

// buildTopKUnit compiles Limit(OrderBy(star)) with one sort key into a
// TOPK task: the pipeline keeps the k largest (key, RowID) pairs and the
// host gathers the result rows' remaining columns by RowID (k random
// reads for a k-row result).
func (c *compileCtx) buildTopKUnit(lim *plan.Limit) (*Unit, error) {
	ob, ok := lim.Input.(*plan.OrderBy)
	if !ok || len(ob.Keys) != 1 {
		return nil, reject("LIMIT without a single-key ORDER BY underneath")
	}
	s, err := c.analyze(ob.Input)
	if err != nil {
		return nil, err
	}
	keyExpr, err := s.canonicalize(plan.C(ob.Keys[0].Name), s.out)
	if err != nil {
		return nil, err
	}
	// Every output column must be a fact base column so the host can
	// reconstruct rows from RowIDs.
	schema := lim.Schema()
	factCols := make([]string, len(schema))
	for i, f := range schema {
		canon, err := s.canonicalize(plan.C(f.Name), s.out)
		if err != nil {
			return nil, err
		}
		cc, isCol := canon.(plan.Col)
		if !isCol {
			return nil, reject("TOPK output %q is computed (host cannot gather it by RowID)", f.Name)
		}
		r := s.colOf[cc.Name]
		if r.ref != s.fact || r.col == plan.RowIDCol {
			return nil, reject("TOPK output %q is not a fact base column", f.Name)
		}
		factCols[i] = r.col
	}
	u, err := c.newBuilder(s, "topk-"+s.fact.scan.Table)
	if err != nil {
		return nil, err
	}
	pending, selConsumed, err := u.reduceChildren(s.fact)
	if err != nil {
		return nil, err
	}
	task := &tabletask.Task{
		Name:      u.unit.Label + ":final",
		Table:     s.fact.scan.Table,
		FilterOut: tabletask.NoFilter,
		Op:        tabletask.OpSpec{Kind: tabletask.OpTopK, K: lim.N},
		Out:       tabletask.Output{Kind: tabletask.ToHost},
	}
	if !selConsumed {
		task.RowSel = &tabletask.Program{Preds: s.fact.selPreds}
		task.RegexFilters = s.fact.regexPreds
	}
	applyMasks(task, pending)
	// Inputs: the key's columns, the residual predicates' columns, and
	// the implicit @rowid, in deterministic order.
	needed := map[string]bool{}
	colsIn(keyExpr, needed)
	filter := append([]plan.Expr(nil), s.fact.postPreds...)
	filter = append(filter, s.residual...)
	for _, f := range filter {
		colsIn(f, needed)
	}
	var names []string
	for name := range needed {
		names = append(names, name)
	}
	sortStrings(names)
	var inSchema plan.Schema
	for _, name := range names {
		r, ok := s.colOf[name]
		if !ok || r.ref != s.fact {
			return nil, reject("TOPK key/predicate column %q is not on the fact table", name)
		}
		f := fieldFor(r)
		f.Name = name
		inSchema = append(inSchema, f)
		task.Stream = append(task.Stream, r.col)
	}
	inSchema = append(inSchema, plan.Field{Name: plan.RowIDCol, Typ: col.RowID})
	task.Stream = append(task.Stream, tabletask.RowIDCol)

	loweredKey, err := plan.Lower(keyExpr, inSchema)
	if err != nil {
		return nil, reject("TOPK key: %v", err)
	}
	if !ob.Keys[0].Desc {
		// TOPK keeps the largest keys; ascending order negates.
		loweredKey = systolic.Mul(loweredKey, systolic.C(-1))
	}
	task.Transform = []systolic.Expr{loweredKey, systolic.In(len(inSchema) - 1)}
	if len(filter) > 0 {
		lowered, err := plan.Lower(plan.And(filter...), inSchema)
		if err != nil {
			return nil, reject("TOPK residual: %v", err)
		}
		task.FilterOut = len(task.Transform)
		task.Transform = append(task.Transform, lowered)
	}
	u.unit.Tasks = append(u.unit.Tasks, task)

	fact := s.fact.tab
	u.unit.Placeholder = &plan.Materialized{S: schema, Label: u.unit.Label}
	u.unit.Finalize = func(res *tabletask.Result) ([][]int64, error) {
		if len(res.Cols) != 2 {
			return nil, fmt.Errorf("compiler: TOPK returned %d columns", len(res.Cols))
		}
		rowids := res.Cols[1]
		out := make([][]int64, len(schema))
		for i, name := range factCols {
			ci, err := fact.Column(name)
			if err != nil {
				return nil, err
			}
			vals, err := ci.Gather(rowids, flash.Host)
			if err != nil {
				return nil, err
			}
			out[i] = vals
		}
		return out, nil
	}
	return u.unit, nil
}

// unitBuilder accumulates one unit's tasks.
type unitBuilder struct {
	c     *compileCtx
	s     *star
	unit  *Unit
	objID int
}

func (u *unitBuilder) objName(kind string) string {
	u.objID++
	name := fmt.Sprintf("%s:%s%d", u.unit.Label, kind, u.objID)
	u.unit.DRAMObjects = append(u.unit.DRAMObjects, name)
	return name
}

func (c *compileCtx) newBuilder(s *star, label string) (*unitBuilder, error) {
	if s.fact.tab.NumRows < c.cfg.MinFactRows {
		return nil, reject("fact table %q too small to offload", s.fact.scan.Table)
	}
	c.seq++
	return &unitBuilder{
		c: c, s: s,
		unit: &Unit{Label: fmt.Sprintf("u%d-%s", c.seq, label), FactTable: s.fact.scan.Table},
	}, nil
}

func (c *compileCtx) buildGroupByUnit(s *star, g *plan.GroupBy) (*Unit, error) {
	u, err := c.newBuilder(s, "groupby-"+s.fact.scan.Table)
	if err != nil {
		return nil, err
	}
	var keys []output
	for _, k := range g.Keys {
		e, err := s.canonicalize(plan.C(k), s.out)
		if err != nil {
			return nil, err
		}
		keys = append(keys, output{name: k, expr: e})
	}
	// Expand aggregates into hardware slots.
	type slot struct {
		kind swissknife.AggKind
		expr plan.Expr
	}
	var slots []slot
	// Identical (kind, expression) accumulators share one hardware slot:
	// an AVG reuses its SUM's slot and all COUNT(*) accumulators share
	// one counter, which is how q1's 8 aggregates fit the 8 slots.
	slotIndex := map[string]int{}
	getSlot := func(kind swissknife.AggKind, in plan.Expr) int {
		key := kind.String()
		if in != nil {
			key += "|" + in.String()
		}
		if i, ok := slotIndex[key]; ok {
			return i
		}
		slots = append(slots, slot{kind, in})
		slotIndex[key] = len(slots) - 1
		return len(slots) - 1
	}
	type finalSpec struct {
		fn   plan.AggFunc
		slot int // value slot index
		cnt  int // count slot index (AVG)
	}
	var finals []finalSpec
	for _, a := range g.Aggs {
		in := a.E
		if in == nil {
			in = plan.I(1)
		}
		in, err = s.canonicalize(in, s.out)
		if err != nil {
			return nil, err
		}
		switch a.Func {
		case plan.AggSum:
			finals = append(finals, finalSpec{plan.AggSum, getSlot(swissknife.AggSum, in), -1})
		case plan.AggMin:
			finals = append(finals, finalSpec{plan.AggMin, getSlot(swissknife.AggMin, in), -1})
		case plan.AggMax:
			finals = append(finals, finalSpec{plan.AggMax, getSlot(swissknife.AggMax, in), -1})
		case plan.AggCount:
			finals = append(finals, finalSpec{plan.AggCount, getSlot(swissknife.AggCnt, nil), -1})
		case plan.AggAvg:
			finals = append(finals, finalSpec{plan.AggAvg,
				getSlot(swissknife.AggSum, in), getSlot(swissknife.AggCnt, nil)})
		case plan.AggCountDistinct:
			return nil, reject("COUNT(DISTINCT) is not a Swissknife operator")
		default:
			return nil, reject("aggregate %s not offloadable", a.Func)
		}
	}
	if len(slots) > swissknife.MaxAggSlots {
		return nil, reject("%d aggregate slots exceed the %d per-group slots",
			len(slots), swissknife.MaxAggSlots)
	}
	// Assemble final-task outputs: keys, then one output per slot.
	outs := keys
	cntInput := plan.Expr(plan.Col{Name: plan.RowIDCol})
	if len(keys) > 0 {
		cntInput = keys[0].expr
	}
	aggKinds := make([]swissknife.AggKind, 0, len(slots))
	for i, sl := range slots {
		e := sl.expr
		if e == nil {
			e = cntInput
		}
		outs = append(outs, output{name: fmt.Sprintf("@agg%d", i), expr: e})
		aggKinds = append(aggKinds, sl.kind)
	}
	if err := u.emitAll(outs, len(keys), aggKinds); err != nil {
		return nil, err
	}
	// Finalize: map slots back to the plan's aggregate columns.
	nk := len(keys)
	u.unit.Placeholder = &plan.Materialized{S: g.Schema(), Label: u.unit.Label}
	u.unit.Finalize = func(res *tabletask.Result) ([][]int64, error) {
		nRows := res.NumRows()
		cols := make([][]int64, len(g.Schema()))
		for i := 0; i < nk; i++ {
			cols[i] = res.Cols[i]
		}
		for fi, f := range finals {
			dst := make([]int64, nRows)
			src := res.Cols[nk+f.slot]
			switch f.fn {
			case plan.AggAvg:
				cnt := res.Cols[nk+f.cnt]
				for r := 0; r < nRows; r++ {
					if cnt[r] != 0 {
						dst[r] = src[r] / cnt[r]
					}
				}
			default:
				copy(dst, src)
			}
			cols[nk+fi] = dst
		}
		return cols, nil
	}
	return u.unit, nil
}

func (c *compileCtx) buildRowUnit(s *star, replaced plan.Node, outs []output) (*Unit, error) {
	u, err := c.newBuilder(s, "rows-"+s.fact.scan.Table)
	if err != nil {
		return nil, err
	}
	if err := u.emitAll(outs, -1, nil); err != nil {
		return nil, err
	}
	u.unit.Placeholder = &plan.Materialized{S: replaced.Schema(), Label: u.unit.Label}
	u.unit.Finalize = func(res *tabletask.Result) ([][]int64, error) {
		if len(res.Cols) != len(replaced.Schema()) {
			return nil, fmt.Errorf("compiler: unit returned %d columns, schema has %d",
				len(res.Cols), len(replaced.Schema()))
		}
		return res.Cols, nil
	}
	return u.unit, nil
}

// emitAll produces the reduction tasks and the final task. numKeys == -1
// means a row-returning NOP unit; numKeys == 0 a scalar aggregate.
func (u *unitBuilder) emitAll(outs []output, numKeys int, aggs []swissknife.AggKind) error {
	pending, selConsumed, err := u.reduceChildren(u.s.fact)
	if err != nil {
		return err
	}

	// Resolve every column the final task touches.
	needed := map[string]bool{}
	for _, o := range outs {
		colsIn(o.expr, needed)
	}
	filter := append(append([]plan.Expr(nil), u.s.fact.postPreds...), u.s.residual...)
	for _, f := range filter {
		colsIn(f, needed)
	}
	task := &tabletask.Task{
		Name:      u.unit.Label + ":final",
		Table:     u.s.fact.scan.Table,
		FilterOut: tabletask.NoFilter,
	}
	if !selConsumed {
		task.RowSel = &tabletask.Program{Preds: u.s.fact.selPreds}
		task.RegexFilters = u.s.fact.regexPreds
	}
	applyMasks(task, pending)

	var schema plan.Schema
	index := map[string]int{}
	addInput := func(name string) error {
		if _, ok := index[name]; ok {
			return nil
		}
		r, ok := u.s.colOf[name]
		if !ok {
			return reject("final task cannot resolve column %q", name)
		}
		if r.ref.inSemi {
			return reject("column %q belongs to an existence-test subtree", name)
		}
		if r.ref == u.s.fact {
			index[name] = len(schema)
			f := fieldFor(r)
			f.Name = name
			schema = append(schema, f)
			task.Stream = append(task.Stream, r.col)
			return nil
		}
		ga, err := u.gatherFor(name, r)
		if err != nil {
			return err
		}
		index[name] = len(schema)
		f := fieldFor(r)
		f.Name = name
		schema = append(schema, f)
		// Gathers are appended after all streams; record and fix order
		// below.
		task.Gathers = append(task.Gathers, ga)
		return nil
	}
	// Streams must precede gathers in the input layout; add fact columns
	// first, then dimension columns.
	var factNames, dimNames []string
	for name := range needed {
		r, ok := u.s.colOf[name]
		if !ok {
			return reject("unknown column %q", name)
		}
		if r.ref == u.s.fact {
			factNames = append(factNames, name)
		} else {
			dimNames = append(dimNames, name)
		}
	}
	sortStrings(factNames)
	sortStrings(dimNames)
	for _, name := range factNames {
		if err := addInput(name); err != nil {
			return err
		}
	}
	if len(factNames) == 0 {
		// Guarantee at least one streamed input (COUNT-only tasks).
		index[plan.RowIDCol] = len(schema)
		schema = append(schema, plan.Field{Name: plan.RowIDCol, Typ: col.RowID})
		task.Stream = append(task.Stream, tabletask.RowIDCol)
	}
	for _, name := range dimNames {
		if err := addInput(name); err != nil {
			return err
		}
	}

	// Lower the outputs (and optional filter) over the input schema.
	for _, o := range outs {
		lowered, err := plan.Lower(o.expr, schema)
		if err != nil {
			return reject("output %q: %v", o.name, err)
		}
		task.Transform = append(task.Transform, lowered)
	}
	if len(filter) > 0 {
		lowered, err := plan.Lower(plan.And(filter...), schema)
		if err != nil {
			return reject("residual predicate: %v", err)
		}
		task.FilterOut = len(task.Transform)
		task.Transform = append(task.Transform, lowered)
	}

	switch {
	case numKeys < 0:
		task.Op = tabletask.OpSpec{Kind: tabletask.OpNop}
		task.Out = tabletask.Output{Kind: tabletask.ToHost}
	case numKeys == 0:
		task.Op = tabletask.OpSpec{Kind: tabletask.OpAggregate, Aggs: aggs}
		task.Out = tabletask.Output{Kind: tabletask.ToHost}
	default:
		hwKeys := numKeys
		attrs := 0
		if hwKeys > swissknife.GroupIDBytes/4 {
			hwKeys = swissknife.GroupIDBytes / 4
			attrs = numKeys - hwKeys
		}
		task.Op = tabletask.OpSpec{Kind: tabletask.OpGroupBy, Keys: hwKeys,
			Attrs: attrs, Aggs: aggs, GroupCfg: u.c.cfg.GroupCfg}
		task.Out = tabletask.Output{Kind: tabletask.ToHost}
	}
	u.unit.Tasks = append(u.unit.Tasks, task)
	return nil
}

// gatherFor builds the RowID chase from the fact to a dimension column.
func (u *unitBuilder) gatherFor(name string, r resolved) (tabletask.Gather, error) {
	if r.col == plan.RowIDCol {
		return tabletask.Gather{}, reject("dimension @rowid %q is not gatherable", name)
	}
	// Path fact -> ... -> r.ref via parent pointers.
	var path []*tableRef
	for cur := r.ref; cur != nil; cur = cur.parent {
		path = append([]*tableRef{cur}, path...)
		if cur == u.s.fact {
			break
		}
	}
	if len(path) == 0 || path[0] != u.s.fact {
		return tabletask.Gather{}, reject("no join path from %q to %q",
			u.s.fact.scan.Table, r.ref.scan.Table)
	}
	for _, step := range path[1:] {
		if !step.fkOnParent {
			return tabletask.Gather{}, reject(
				"column %q sits behind a reversed join edge (no RowID index)", name)
		}
	}
	ga := tabletask.Gather{Name: name, BaseCol: col.RowIDColumnName(path[1].edgeFK)}
	for i := 1; i < len(path); i++ {
		hop := tabletask.GatherHop{Table: path[i].scan.Table}
		if i+1 < len(path) {
			hop.Column = col.RowIDColumnName(path[i+1].edgeFK)
		} else {
			hop.Column = r.col
		}
		ga.Hops = append(ga.Hops, hop)
	}
	return ga, nil
}

// reduceChildren emits the dimension/semijoin reduction tasks for ref and
// returns the pending mask sources over ref's table plus whether ref's
// own selector predicates were consumed by an emitted task.
func (u *unitBuilder) reduceChildren(ref *tableRef) ([]tabletask.MaskSource, bool, error) {
	var pending []tabletask.MaskSource
	selConsumed := false
	for _, child := range ref.children {
		switch {
		case child.edgeKind == plan.SemiJoin || child.edgeKind == plan.AntiJoin:
			src, err := u.emitExistenceMask(ref, child)
			if err != nil {
				return nil, false, err
			}
			pending = append(pending, src)

		case !child.subtreeFiltered():
			// Unfiltered N:1 dimension: referential integrity guarantees
			// every fact row matches (Sec. VI-D optimization) — no task.
			continue

		default:
			dName, err := u.emitDimTable(child)
			if err != nil {
				return nil, false, err
			}
			// Parent-side merge task: stream (fk, rowid), merge with the
			// dimension's (pk, rowid) table, leave a mask.
			fkCol, err := ref.tab.Column(child.edgeFK)
			if err != nil {
				return nil, false, err
			}
			op := tabletask.OpSortMerge
			if fkCol.Sorted {
				op = tabletask.OpMerge
			}
			task := &tabletask.Task{
				Name:      u.unit.Label + ":merge-" + child.scan.Table,
				Table:     ref.scan.Table,
				Stream:    []string{child.edgeFK, tabletask.RowIDCol},
				FilterOut: tabletask.NoFilter,
				Op:        tabletask.OpSpec{Kind: op, With: dName, FreeWith: true},
				Out:       tabletask.Output{Kind: tabletask.ToDRAM, Name: u.objName("mask")},
			}
			if !selConsumed && (len(ref.selPreds) > 0 || len(ref.regexPreds) > 0) {
				task.RowSel = &tabletask.Program{Preds: ref.selPreds}
				task.RegexFilters = ref.regexPreds
				selConsumed = true
			}
			applyMasks(task, pending)
			u.unit.Tasks = append(u.unit.Tasks, task)
			pending = []tabletask.MaskSource{{Kind: tabletask.MaskDRAM, Name: task.Out.Name}}
		}
	}
	return pending, selConsumed, nil
}

// emitDimTable emits the Table Task leaving a dimension's filtered
// (pk, rowid) table in DRAM, returning the object name.
func (u *unitBuilder) emitDimTable(dim *tableRef) (string, error) {
	childPending, selConsumed, err := u.reduceChildren(dim)
	if err != nil {
		return "", err
	}
	pkCol, err := dim.tab.Column(dim.edgePK)
	if err != nil {
		return "", err
	}
	task := &tabletask.Task{
		Name:      u.unit.Label + ":dim-" + dim.scan.Table,
		Table:     dim.scan.Table,
		Stream:    []string{dim.edgePK, tabletask.RowIDCol},
		FilterOut: tabletask.NoFilter,
		Out:       tabletask.Output{Kind: tabletask.ToDRAM, Name: u.objName("dim")},
	}
	if pkCol.Sorted {
		task.Op = tabletask.OpSpec{Kind: tabletask.OpNop}
	} else {
		task.Op = tabletask.OpSpec{Kind: tabletask.OpSort}
	}
	if !selConsumed {
		task.RowSel = &tabletask.Program{Preds: dim.selPreds}
		task.RegexFilters = dim.regexPreds
	}
	applyMasks(task, childPending)
	if err := u.addPostFilter(task, dim, []string{dim.edgePK, tabletask.RowIDCol}); err != nil {
		return "", err
	}
	u.unit.Tasks = append(u.unit.Tasks, task)
	return task.Out.Name, nil
}

// emitExistenceMask emits the Table Task realizing a semi/anti join:
// stream the child's FK RowID column (with the child's filters) and
// materialize a mask over the parent's rows.
func (u *unitBuilder) emitExistenceMask(parent, child *tableRef) (tabletask.MaskSource, error) {
	childPending, selConsumed, err := u.reduceChildren(child)
	if err != nil {
		return tabletask.MaskSource{}, err
	}
	ridCol := col.RowIDColumnName(child.edgeFK)
	if !child.tab.HasColumn(ridCol) {
		return tabletask.MaskSource{}, reject("existence test lacks RowID index %q on %q",
			ridCol, child.scan.Table)
	}
	task := &tabletask.Task{
		Name:      u.unit.Label + ":exists-" + child.scan.Table,
		Table:     child.scan.Table,
		Stream:    []string{ridCol},
		FilterOut: tabletask.NoFilter,
		Op: tabletask.OpSpec{Kind: tabletask.OpMask,
			MaskTable: parent.scan.Table},
		Out: tabletask.Output{Kind: tabletask.ToDRAM, Name: u.objName("exists")},
	}
	if !selConsumed {
		task.RowSel = &tabletask.Program{Preds: child.selPreds}
		task.RegexFilters = child.regexPreds
	}
	applyMasks(task, childPending)
	if err := u.addPostFilter(task, child, []string{ridCol}); err != nil {
		return tabletask.MaskSource{}, err
	}
	u.unit.Tasks = append(u.unit.Tasks, task)
	return tabletask.MaskSource{
		Kind: tabletask.MaskDRAM, Name: task.Out.Name,
		Negate: child.edgeKind == plan.AntiJoin,
	}, nil
}

// addPostFilter lowers a table's same-table multi-column conjuncts into
// the task's transformer sub-predicate. keep lists the data columns the
// task already streams (they become transform outputs 0..len-1).
func (u *unitBuilder) addPostFilter(task *tabletask.Task, ref *tableRef, keep []string) error {
	if len(ref.postPreds) == 0 {
		return nil
	}
	// Input schema: the kept columns plus any predicate columns.
	var schema plan.Schema
	for _, k := range keep {
		if k == tabletask.RowIDCol {
			schema = append(schema, plan.Field{Name: plan.RowIDCol, Typ: col.RowID})
			continue
		}
		r := resolved{ref: ref, col: k}
		if ci, err := ref.tab.Column(k); err == nil {
			r.info = ci
		}
		f := fieldFor(r)
		f.Name = k
		schema = append(schema, f)
	}
	needed := map[string]bool{}
	pred := plan.And(ref.postPreds...)
	colsIn(pred, needed)
	rename := map[string]string{}
	for name := range needed {
		r, ok := u.s.colOf[name]
		if !ok || r.ref != ref {
			return reject("post-filter column %q is not on table %q", name, ref.scan.Table)
		}
		rename[name] = r.col
		found := false
		for _, f := range schema {
			if f.Name == r.col {
				found = true
				break
			}
		}
		if !found {
			f := fieldFor(r)
			f.Name = r.col
			schema = append(schema, f)
			task.Stream = append(task.Stream, r.col)
		}
	}
	lowered, err := plan.Lower(renameToField(pred, rename), schema)
	if err != nil {
		return reject("post-filter on %q: %v", ref.scan.Table, err)
	}
	// Transform: pass the kept columns through, append the predicate.
	for i := range keep {
		task.Transform = append(task.Transform, systolic.In(i))
	}
	task.FilterOut = len(task.Transform)
	task.Transform = append(task.Transform, lowered)
	return nil
}

func applyMasks(task *tabletask.Task, pending []tabletask.MaskSource) {
	if len(pending) == 0 {
		return
	}
	task.MaskSrc = pending[0]
	task.MaskSrc.Kind = tabletask.MaskDRAM
	task.MaskAnd = pending[1:]
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
