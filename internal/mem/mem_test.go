package mem

import (
	"errors"
	"testing"

	"aquoman/internal/bitvec"
	"aquoman/internal/sorter"
)

func TestPutGetFree(t *testing.T) {
	d := New(1 << 20)
	kvs := []sorter.KV{{Key: 1, Val: 10}, {Key: 2, Val: 20}}
	o, err := d.PutKV("j0", kvs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o.Bytes != 16 {
		t.Fatalf("Bytes = %d", o.Bytes)
	}
	got, err := d.Get("j0")
	if err != nil || len(got.KVs) != 2 {
		t.Fatalf("Get: %v %v", got, err)
	}
	if d.Used() != 16 {
		t.Fatalf("Used = %d", d.Used())
	}
	d.Free("j0")
	if d.Used() != 0 {
		t.Fatalf("Used after Free = %d", d.Used())
	}
	if _, err := d.Get("j0"); err == nil {
		t.Fatal("Get after Free succeeded")
	}
	d.Free("j0") // double free is a no-op
}

func TestCapacityEnforced(t *testing.T) {
	d := New(100)
	if _, err := d.PutKV("big", make([]sorter.KV, 20), 8); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	if _, err := d.PutKV("ok", make([]sorter.KV, 10), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutKV("more", make([]sorter.KV, 5), 8); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
}

func TestDuplicateName(t *testing.T) {
	d := New(1 << 20)
	if _, err := d.PutMask("m", bitvec.New(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutMask("m", bitvec.New(8)); err == nil {
		t.Fatal("duplicate Put succeeded")
	}
}

func TestPeakTracking(t *testing.T) {
	d := New(1 << 20)
	d.PutKV("a", make([]sorter.KV, 100), 8) // 800
	d.PutKV("b", make([]sorter.KV, 50), 8)  // 400
	d.Free("a")
	if d.Peak() != 1200 {
		t.Fatalf("Peak = %d, want 1200", d.Peak())
	}
	if d.Used() != 400 {
		t.Fatalf("Used = %d, want 400", d.Used())
	}
	d.ResetPeak()
	if d.Peak() != 400 {
		t.Fatalf("Peak after reset = %d", d.Peak())
	}
}

func TestMaskAndColumnSizes(t *testing.T) {
	d := New(1 << 20)
	om, _ := d.PutMask("m", bitvec.New(1000))
	if om.Bytes != 125 {
		t.Fatalf("mask bytes = %d, want 125", om.Bytes)
	}
	oc, _ := d.PutColumn("c", make([]int64, 10))
	if oc.Bytes != 40 {
		t.Fatalf("column bytes = %d, want 40", oc.Bytes)
	}
}

func TestFreeAllAndObjects(t *testing.T) {
	d := New(1 << 20)
	d.PutColumn("z", []int64{1})
	d.PutColumn("a", []int64{2})
	names := d.Objects()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("Objects = %v", names)
	}
	d.FreeAll()
	if d.Used() != 0 || len(d.Objects()) != 0 {
		t.Fatal("FreeAll did not clear")
	}
}

func TestDefaults(t *testing.T) {
	if New(0).Capacity() != DefaultCapacity {
		t.Fatal("default capacity")
	}
	if DefaultCapacity != 40<<30 || SmallCapacity != 16<<30 {
		t.Fatal("Table VI capacities wrong")
	}
}
