// Package mem implements AQUOMAN's DRAM management (Sec. VI-D). The
// accelerator's DRAM holds the intermediate tables produced by Table
// Tasks: sorted (join-key, RowID) tables feeding SORT_MERGE operators and
// the RowID sets (back-pointers) that survive for the lifetime of a
// multi-way join. Intermediates consumed by a subsequent task are garbage
// collected immediately; capacity pressure raises ErrCapacity, which the
// core turns into a suspension (hand-off to the host, Sec. VI-E
// condition 4).
package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aquoman/internal/bitvec"
	"aquoman/internal/sorter"
)

// Capacity presets from Table VI.
const (
	// DefaultCapacity is the 40 GB AQUOMAN configuration.
	DefaultCapacity = 40 << 30
	// SmallCapacity is the 16 GB AQUOMAN16 configuration.
	SmallCapacity = 16 << 30
)

// ErrCapacity reports that an allocation would exceed the DRAM capacity.
var ErrCapacity = errors.New("mem: AQUOMAN DRAM capacity exceeded")

// Kind tags what an intermediate object holds.
type Kind int

const (
	// KindKV is a sorted (key, RowID) table.
	KindKV Kind = iota
	// KindMask is a row-selection bit vector over a base table.
	KindMask
	// KindColumn is a cached column image (small dimension attributes).
	KindColumn
)

// Object is one DRAM-resident intermediate.
type Object struct {
	Name  string
	Kind  Kind
	Bytes int64

	// Exactly one of the payloads is set, matching Kind.
	KVs  []sorter.KV
	Mask *bitvec.Mask
	Col  []int64
}

// DRAM is the accelerator memory. The functional payloads are real; Bytes
// models the footprint the hardware would use (row indices and join keys
// only, per Sec. VI-D).
type DRAM struct {
	capacity int64

	mu      sync.Mutex
	used    int64
	peak    int64
	objects map[string]*Object
}

// New returns a DRAM with the given capacity in bytes (0 means
// DefaultCapacity).
func New(capacity int64) *DRAM {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &DRAM{capacity: capacity, objects: make(map[string]*Object)}
}

// Capacity returns the configured size in bytes.
func (d *DRAM) Capacity() int64 { return d.capacity }

// Used returns the current footprint in bytes.
func (d *DRAM) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Peak returns the high-water footprint in bytes.
func (d *DRAM) Peak() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// ResetPeak sets the high-water mark to the current usage.
func (d *DRAM) ResetPeak() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peak = d.used
}

// put registers an object, enforcing capacity.
func (d *DRAM) put(o *Object) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.objects[o.Name]; ok {
		return fmt.Errorf("mem: object %q already exists (%d bytes)", old.Name, old.Bytes)
	}
	if d.used+o.Bytes > d.capacity {
		return fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrCapacity, o.Name, o.Bytes, d.used, d.capacity)
	}
	d.objects[o.Name] = o
	d.used += o.Bytes
	if d.used > d.peak {
		d.peak = d.used
	}
	return nil
}

// PutKV stores a sorted (key, RowID) table. elemBytes is the hardware
// element width (8 for kv<u32,u32>, 16 for kv<u64,u64>).
func (d *DRAM) PutKV(name string, kvs []sorter.KV, elemBytes int64) (*Object, error) {
	o := &Object{Name: name, Kind: KindKV, KVs: kvs, Bytes: int64(len(kvs)) * elemBytes}
	if err := d.put(o); err != nil {
		return nil, err
	}
	return o, nil
}

// PutMask stores a row-selection mask (1 bit per base-table row).
func (d *DRAM) PutMask(name string, m *bitvec.Mask) (*Object, error) {
	o := &Object{Name: name, Kind: KindMask, Mask: m, Bytes: int64((m.Len() + 7) / 8)}
	if err := d.put(o); err != nil {
		return nil, err
	}
	return o, nil
}

// PutColumn caches a column image (4 bytes per value, the prototype's
// column width).
func (d *DRAM) PutColumn(name string, vals []int64) (*Object, error) {
	o := &Object{Name: name, Kind: KindColumn, Col: vals, Bytes: int64(len(vals)) * 4}
	if err := d.put(o); err != nil {
		return nil, err
	}
	return o, nil
}

// Get returns the named object.
func (d *DRAM) Get(name string) (*Object, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	o, ok := d.objects[name]
	if !ok {
		return nil, fmt.Errorf("mem: no object %q", name)
	}
	return o, nil
}

// Free garbage-collects an object (freeing a missing name is a no-op: the
// paper GCs sort intermediates "immediately" after their merge consumes
// them, and double-frees must be harmless on retry paths).
func (d *DRAM) Free(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if o, ok := d.objects[name]; ok {
		d.used -= o.Bytes
		delete(d.objects, name)
	}
}

// FreeAll drops every object (end of query).
func (d *DRAM) FreeAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.objects = make(map[string]*Object)
	d.used = 0
}

// Objects lists resident object names in deterministic order.
func (d *DRAM) Objects() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.objects))
	for n := range d.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
