// Package cluster implements the networked scatter/gather coordinator:
// the multi-node successor of internal/distrib's in-process multi-SSD
// execution, and the repo's answer to the paper's "multiple AQUOMAN
// SSDs" future work at rack scale. A Coordinator owns a full replica of a
// TPC-H store, views it as partitioned across N `aquoman-serve` worker
// nodes (shard d = orders row r where r % N == d, lineitem co-located,
// dimensions replicated — exactly distrib.ExtractShard's layout), and
// runs queries by scattering per-shard partial plans over the workers'
// HTTP/NDJSON `/tpch?partial=1` protocol, gathering the raw partial
// batches, and merging them through the same Swissknife MERGE path the
// in-process cluster uses (distrib.MergePlan + ReapplyChain).
//
// Fault tolerance is tiered per node, mirroring distrib's
// retry→degradation machinery: a failed scatter RPC retries on the same
// worker up to RetryBudget times, then on the node's mirror URL (if
// configured), and finally degrades to a coordinator-local host-fallback
// shard — a locally partitioned copy of the node's data — so a SIGKILLed
// worker costs availability of nothing but that node's offload
// bandwidth. Queries whose shape cannot distribute (nested aggregation,
// scalar subqueries over partitioned tables — distrib.Classify's
// rejections) fall back to single-node execution on the coordinator's
// full replica, so every TPC-H query remains answerable.
//
// Cancellation is end to end: the query context is threaded into every
// worker HTTP request (killing in-flight scatter RPCs the moment the
// client disconnects) and into fallback/local execution's page-read and
// morsel checkpoints.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"aquoman/internal/col"
	"aquoman/internal/compiler"
	"aquoman/internal/core"
	"aquoman/internal/distrib"
	"aquoman/internal/engine"
	"aquoman/internal/flash"
	"aquoman/internal/mem"
	"aquoman/internal/obs"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

// Node is one worker of the cluster: a base URL (scheme://host:port) of
// an `aquoman-serve` process holding this node's partition, plus an
// optional mirror URL holding a replica of the same partition.
type Node struct {
	URL    string
	Mirror string
}

// Config parameterizes a Coordinator.
type Config struct {
	// Nodes lists the workers; node d must serve shard d of a
	// len(Nodes)-way partitioning (aquoman-serve -partition d/N over the
	// same generator parameters).
	Nodes []Node
	// Store is the coordinator's full local replica: it binds and
	// classifies plans, renders merged results, runs non-distributable
	// queries, and seeds the host-fallback shards.
	Store *col.Store
	// Client issues the scatter RPCs (http.DefaultClient when nil;
	// per-query deadlines ride on the request context, not the client).
	Client *http.Client
	// RetryBudget is how many times a failed scatter RPC is re-issued to
	// the same URL before moving down the failover tier (default 1;
	// negative disables same-URL retries).
	RetryBudget int
	// DisableFallback skips building coordinator-local fallback shards
	// (saves one partition copy per node; a node whose every URL fails is
	// then a hard *NodeError).
	DisableFallback bool
	// DRAMBytes and HeapScale configure local (fallback and
	// non-distributable) execution as in the single-device runtime.
	DRAMBytes int64
	HeapScale float64
	// Obs (optional) receives the cluster counters: cluster_scatter_total,
	// cluster_node_retries, cluster_degraded_nodes (all labeled by node).
	Obs *obs.Observer
}

// Coordinator scatters queries across the cluster and merges partials.
// Safe for concurrent use: per-query state lives on the stack and the
// shard stores are read-only after New.
type Coordinator struct {
	cfg    Config
	client *http.Client
	// shards are the host-fallback partitions, one per node (nil when
	// DisableFallback).
	shards []*col.Store
}

// New builds a Coordinator over cfg, extracting one host-fallback shard
// per node from cfg.Store unless DisableFallback is set.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no worker nodes configured")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a local store replica")
	}
	switch {
	case cfg.RetryBudget == 0:
		cfg.RetryBudget = 1
	case cfg.RetryBudget < 0:
		cfg.RetryBudget = 0
	}
	if cfg.DRAMBytes == 0 {
		cfg.DRAMBytes = mem.DefaultCapacity
	}
	if cfg.HeapScale == 0 {
		cfg.HeapScale = 1
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if !cfg.DisableFallback {
		n := len(cfg.Nodes)
		c.shards = make([]*col.Store, n)
		for d := 0; d < n; d++ {
			c.shards[d] = col.NewStore(flash.NewDevice())
			if err := distrib.ExtractShard(c.shards[d], cfg.Store, d, n); err != nil {
				return nil, fmt.Errorf("cluster: fallback shard %d: %w", d, err)
			}
		}
	}
	return c, nil
}

// NumNodes returns the cluster size.
func (c *Coordinator) NumNodes() int { return len(c.cfg.Nodes) }

// Report describes how one query was executed across the cluster.
type Report struct {
	// Strategy is the distribution strategy (distrib.Strategy wording),
	// or a "local (...)" description for coordinator-local execution.
	Strategy string
	// NodeRetries counts failed scatter attempts per node (re-issues to
	// the primary plus every mirror attempt).
	NodeRetries []int
	// DegradedNodes lists nodes not served by their primary worker
	// (mirror or host fallback).
	DegradedNodes []int
	// FallbackNodes lists the subset of DegradedNodes served by the
	// coordinator's local shard copy.
	FallbackNodes []int
	// Local is set when the whole query ran on the coordinator's replica
	// (non-distributable shape); LocalReason carries the classifier's
	// rejection.
	Local       bool
	LocalReason string
}

// Degraded reports whether node d was served by its mirror or fallback.
func (r *Report) Degraded(d int) bool {
	for _, n := range r.DegradedNodes {
		if n == d {
			return true
		}
	}
	return false
}

// NodeError is the typed failure of one node after the retry, mirror and
// host-fallback tiers were exhausted.
type NodeError struct {
	Node int
	URL  string
	Err  error
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("cluster: node %d (%s) failed: %v", e.Node, e.URL, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

func (c *Coordinator) counter(name string, node int) {
	c.cfg.Obs.Counter(name, "node", strconv.Itoa(node)).Inc()
}

// RunTPCH executes TPC-H query q (1..22) across the cluster: scatter the
// per-shard partial plan to every worker, gather the raw partials, merge
// through the Swissknife MERGE path, and re-apply the peeled
// OrderBy/Limit/Project chain. Non-distributable shapes run on the
// coordinator's local replica instead. ctx cancels every in-flight
// worker request and the local merge; a nil ctx never cancels.
func (c *Coordinator) RunTPCH(ctx context.Context, q int) (*engine.Batch, *Report, error) {
	def, err := tpch.Get(q)
	if err != nil {
		return nil, nil, err
	}
	return c.Run(ctx, q, def.Build)
}

// Run is the generalized entry: q names the query on the worker wire
// protocol (/tpch?q=...) and build must return a fresh plan tree per
// call — the same contract as distrib.Cluster.RunQuery. Workers derive
// their partial plan from q alone, so build must agree with the workers'
// notion of query q.
func (c *Coordinator) Run(ctx context.Context, q int, build func() plan.Node) (*engine.Batch, *Report, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	probe := build()
	if err := plan.Bind(probe, c.cfg.Store); err != nil {
		return nil, nil, err
	}
	strat, cerr := distrib.Classify(probe)
	if cerr != nil {
		// The shape would need a second shuffle: run it whole on the
		// coordinator's full replica rather than rejecting the query.
		b, rep, err := c.runLocal(ctx, build())
		if err != nil {
			return nil, nil, err
		}
		rep.LocalReason = cerr.Error()
		rep.Strategy = "local (" + cerr.Error() + ")"
		c.strategyCounter(rep.Strategy)
		return b, rep, nil
	}
	c.strategyCounter(strat.String())

	// The expected partial schema, bound against the local replica: it
	// validates worker headers, carries the dictionary sources that let
	// merged results render as strings, and shapes the gather leaf.
	partProbe, err := distrib.PartialPlan(build(), strat)
	if err != nil {
		return nil, nil, err
	}
	if err := plan.Bind(partProbe, c.cfg.Store); err != nil {
		return nil, nil, err
	}
	expected := partProbe.Schema()
	chain, coreNode := distrib.Peel(probe)

	targets := c.NumNodes()
	if strat == distrib.StratSingle {
		// Replicated-only data is complete on every node; ask just one.
		targets = 1
	}
	rep := &Report{Strategy: strat.String(), NodeRetries: make([]int, c.NumNodes())}
	if strat == distrib.StratSingle {
		rep.Strategy = strat.String() + " (node 0)"
	}

	// Scatter. Every node runs concurrently under a shared cancel scope:
	// the first unrecoverable failure (or the caller's ctx dying) stops
	// all in-flight worker requests.
	lc := obs.LifecycleFrom(ctx)
	sctx, cancel := context.WithCancel(ctxOrBackground(ctx))
	defer cancel()
	parts := make([][][]int64, targets)
	nodeReps := make([]nodeReport, targets)
	var wg sync.WaitGroup
	endScatter := lc.ExclusiveTimer(obs.StateScatterWait)
	for d := 0; d < targets; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			cols, nr := c.fetchShard(sctx, d, q, strat, expected)
			parts[d] = cols
			nodeReps[d] = nr
			if nr.err != nil {
				cancel()
			}
		}(d)
	}
	wg.Wait()
	endScatter()
	var firstErr error
	for d := 0; d < targets; d++ {
		nr := nodeReps[d]
		rep.NodeRetries[d] = nr.retries
		if nr.degraded {
			rep.DegradedNodes = append(rep.DegradedNodes, d)
		}
		if nr.fallback {
			rep.FallbackNodes = append(rep.FallbackNodes, d)
		}
		if nr.err != nil && firstErr == nil {
			firstErr = nr.err
		}
	}
	if firstErr != nil {
		// Prefer the caller's cancellation over secondary errors caused
		// by the shared scatter scope being torn down.
		if ctx != nil && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, firstErr
	}

	// Gather into a Materialized leaf, in node order so concatenation is
	// deterministic regardless of arrival order.
	concat := &plan.Materialized{S: expected, Label: "cluster-gather"}
	concat.Cols = make([][]int64, len(expected))
	for d := 0; d < targets; d++ {
		for ci := range parts[d] {
			concat.Cols[ci] = append(concat.Cols[ci], parts[d][ci]...)
		}
	}

	endMerge := lc.ExclusiveTimer(obs.StateMerge)
	defer endMerge()
	if strat == distrib.StratSingle {
		// The node ran the full plan; the gather is the result.
		return &engine.Batch{Schema: expected, Cols: concat.Cols}, rep, nil
	}
	var merged plan.Node = concat
	if strat == distrib.StratMergeAgg {
		g, ok := coreNode.(*plan.GroupBy)
		if !ok {
			return nil, nil, fmt.Errorf("cluster: merge strategy on non-group-by core %T", coreNode)
		}
		merged = distrib.MergePlan(g, concat)
	}
	merged = distrib.ReapplyChain(merged, chain)
	if err := plan.Bind(merged, c.cfg.Store); err != nil {
		return nil, nil, err
	}
	out, err := engine.New(c.cfg.Store).Run(merged)
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

func (c *Coordinator) strategyCounter(strategy string) {
	if c.cfg.Obs != nil {
		c.cfg.Obs.Counter("cluster_queries_total", "strategy", strategy).Inc()
	}
}

func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// nodeReport is one node's scatter outcome.
type nodeReport struct {
	retries  int
	degraded bool
	fallback bool
	err      error
}

// fetchShard obtains node d's partial through the failover tiers:
// primary URL (1 + RetryBudget attempts), mirror URL (same budget), then
// the coordinator-local fallback shard. Context errors abort immediately
// — cancellation is not a node fault.
func (c *Coordinator) fetchShard(ctx context.Context, d, q int, strat distrib.Strategy, expected plan.Schema) ([][]int64, nodeReport) {
	var nr nodeReport
	node := c.cfg.Nodes[d]
	urls := []string{node.URL}
	if node.Mirror != "" {
		urls = append(urls, node.Mirror)
	}
	var lastErr error
	for ui, url := range urls {
		for try := 0; try <= c.cfg.RetryBudget; try++ {
			if err := ctx.Err(); err != nil {
				nr.err = err
				return nil, nr
			}
			if ui > 0 || try > 0 {
				nr.retries++
				c.counter("cluster_node_retries", d)
			}
			c.counter("cluster_scatter_total", d)
			cols, err := c.fetchPartial(ctx, url, q, expected)
			if err == nil {
				if ui > 0 {
					nr.degraded = true
					c.counter("cluster_degraded_nodes", d)
				}
				return cols, nr
			}
			if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				nr.err = err
				return nil, nr
			}
			if !retryable(err) {
				nr.err = &NodeError{Node: d, URL: url, Err: err}
				return nil, nr
			}
			lastErr = err
		}
	}

	if c.shards != nil {
		nr.degraded = true
		nr.fallback = true
		c.counter("cluster_degraded_nodes", d)
		cols, err := c.runFallback(ctx, d, q, strat)
		if err != nil {
			nr.err = &NodeError{Node: d, URL: node.URL, Err: err}
			return nil, nr
		}
		return cols, nr
	}
	nr.err = &NodeError{Node: d, URL: node.URL, Err: lastErr}
	return nil, nr
}

// runFallback executes node d's partial plan on the coordinator-local
// shard copy — the host-fallback tier.
func (c *Coordinator) runFallback(ctx context.Context, d, q int, strat distrib.Strategy) ([][]int64, error) {
	def, err := tpch.Get(q)
	if err != nil {
		return nil, err
	}
	part, err := distrib.PartialPlan(def.Build(), strat)
	if err != nil {
		return nil, err
	}
	if err := plan.Bind(part, c.shards[d]); err != nil {
		return nil, err
	}
	dev := core.New(c.shards[d], core.Config{
		DRAMBytes: c.cfg.DRAMBytes,
		Compiler:  compiler.Config{HeapScale: c.cfg.HeapScale},
		Obs:       c.cfg.Obs,
		Ctx:       ctx,
	})
	b, _, err := dev.RunQuery(part)
	if err != nil {
		return nil, err
	}
	return b.Cols, nil
}

// runLocal executes a non-distributable plan whole on the coordinator's
// full replica.
func (c *Coordinator) runLocal(ctx context.Context, p plan.Node) (*engine.Batch, *Report, error) {
	if err := plan.Bind(p, c.cfg.Store); err != nil {
		return nil, nil, err
	}
	dev := core.New(c.cfg.Store, core.Config{
		DRAMBytes: c.cfg.DRAMBytes,
		Compiler:  compiler.Config{HeapScale: c.cfg.HeapScale},
		Obs:       c.cfg.Obs,
		Ctx:       ctx,
	})
	b, _, err := dev.RunQuery(p)
	if err != nil {
		return nil, nil, err
	}
	return b, &Report{Local: true, NodeRetries: make([]int, c.NumNodes())}, nil
}

// retryable reports whether a scatter failure may succeed on a retry or
// a different replica. Protocol violations that indicate a plan-level
// disagreement (worker said 4xx) are not retryable; transport errors,
// truncated streams, and 5xx (including queue-full 503) are.
func retryable(err error) bool {
	var pe *ProtocolError
	if errors.As(err, &pe) && pe.Status >= 400 && pe.Status < 500 {
		return false
	}
	return true
}
