package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"aquoman/internal/plan"
)

// The partial-result wire protocol, shared by the coordinator (this
// client) and internal/server's worker mode. A worker response is NDJSON:
//
//	{"schema":[{"name":"sum_qty","type":"decimal"}, ...],
//	 "strategy":"merge-aggregate","partial":true}   <- header
//	[123,456, ...]                                  <- one array per row
//	{"done":true,"rows":N}                          <- trailer
//
// Rows carry raw stored int64s (dictionary codes, scaled decimals, day
// numbers) rather than rendered strings: partial aggregates must merge
// bit-exactly, and the coordinator's seeded dictionaries already know how
// to render the codes. The trailer is load-bearing — a worker that dies
// mid-stream produces valid NDJSON up to the cut, and only the missing
// (or miscounted) trailer distinguishes truncation from completion.

// WireField is one column of the partial schema on the wire.
type WireField struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// WireHeader is the first NDJSON line of a partial response.
type WireHeader struct {
	Schema   []WireField `json:"schema"`
	Strategy string      `json:"strategy,omitempty"`
	Partial  bool        `json:"partial"`
}

// WireTrailer is the last NDJSON line of a partial response.
type WireTrailer struct {
	Done bool `json:"done"`
	Rows int  `json:"rows"`
}

// HeaderFor builds the wire header for a bound partial schema.
func HeaderFor(s plan.Schema, strategy string) WireHeader {
	h := WireHeader{Strategy: strategy, Partial: true}
	for _, f := range s {
		h.Schema = append(h.Schema, WireField{Name: f.Name, Type: f.Typ.String()})
	}
	return h
}

// ProtocolError is a typed violation of the partial wire protocol:
// non-200 status, malformed or missing header, schema disagreement,
// garbled rows, or a truncated/miscounted stream. Status is the HTTP
// status when the violation was an error response (0 otherwise); 4xx
// protocol errors are not retried.
type ProtocolError struct {
	URL    string
	Status int
	Reason string
	Err    error
}

func (e *ProtocolError) Error() string {
	msg := fmt.Sprintf("cluster: protocol error from %s: %s", e.URL, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *ProtocolError) Unwrap() error { return e.Err }

// fetchPartial issues one scatter RPC: GET url/tpch?q=N&partial=1,
// validates the header against the expected (coordinator-bound) partial
// schema, decodes the raw rows, and verifies the trailer count. The
// request rides on ctx, so cancelling the coordinator query aborts the
// worker's stream mid-flight.
func (c *Coordinator) fetchPartial(ctx context.Context, baseURL string, q int, expected plan.Schema) ([][]int64, error) {
	url := strings.TrimRight(baseURL, "/") + "/tpch?q=" + strconv.Itoa(q) + "&partial=1"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, &ProtocolError{URL: baseURL, Reason: "building request", Err: err}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err // transport error: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, &ProtocolError{
			URL:    baseURL,
			Status: resp.StatusCode,
			Reason: fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
		}
	}
	cols, err := decodePartial(resp.Body, expected)
	if err != nil {
		if pe, ok := err.(*ProtocolError); ok {
			pe.URL = baseURL
		}
		return nil, err
	}
	return cols, nil
}

// decodePartial reads an NDJSON partial stream and returns its columns.
// Every violation — missing/invalid header, schema mismatch, non-integer
// or ragged rows, absent or miscounting trailer, trailing garbage — is a
// typed *ProtocolError so the coordinator can attribute and retry it; a
// truncated body can never be mistaken for a short result.
func decodePartial(body io.Reader, expected plan.Schema) ([][]int64, error) {
	dec := json.NewDecoder(body)
	dec.UseNumber()

	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, &ProtocolError{Reason: "reading header", Err: err}
	}
	var hdr WireHeader
	if err := json.Unmarshal(raw, &hdr); err != nil || len(raw) == 0 || raw[0] != '{' {
		return nil, &ProtocolError{Reason: "malformed header", Err: err}
	}
	if !hdr.Partial {
		return nil, &ProtocolError{Reason: "response is not a partial stream (missing partial flag)"}
	}
	if len(hdr.Schema) != len(expected) {
		return nil, &ProtocolError{Reason: fmt.Sprintf(
			"schema width %d, coordinator expects %d", len(hdr.Schema), len(expected))}
	}
	for i, f := range expected {
		if hdr.Schema[i].Name != f.Name || hdr.Schema[i].Type != f.Typ.String() {
			return nil, &ProtocolError{Reason: fmt.Sprintf(
				"schema column %d is %s:%s, coordinator expects %s:%s",
				i, hdr.Schema[i].Name, hdr.Schema[i].Type, f.Name, f.Typ.String())}
		}
	}

	cols := make([][]int64, len(expected))
	rows := 0
	for {
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil, &ProtocolError{Reason: fmt.Sprintf(
					"stream truncated after %d rows (no trailer)", rows)}
			}
			return nil, &ProtocolError{Reason: fmt.Sprintf("garbled stream after %d rows", rows), Err: err}
		}
		trimmed := bytesTrimLeft(raw)
		if len(trimmed) == 0 {
			return nil, &ProtocolError{Reason: "empty line in stream"}
		}
		if trimmed[0] == '{' {
			var tr WireTrailer
			if err := json.Unmarshal(raw, &tr); err != nil {
				return nil, &ProtocolError{Reason: "malformed trailer", Err: err}
			}
			if !tr.Done {
				return nil, &ProtocolError{Reason: "trailer lacks done flag"}
			}
			if tr.Rows != rows {
				return nil, &ProtocolError{Reason: fmt.Sprintf(
					"trailer claims %d rows, stream carried %d", tr.Rows, rows)}
			}
			return cols, nil
		}
		var vals []json.Number
		if err := json.Unmarshal(raw, &vals); err != nil {
			return nil, &ProtocolError{Reason: fmt.Sprintf("garbled row %d", rows), Err: err}
		}
		if len(vals) != len(expected) {
			return nil, &ProtocolError{Reason: fmt.Sprintf(
				"row %d has %d values, schema has %d columns", rows, len(vals), len(expected))}
		}
		for i, v := range vals {
			// ParseInt keeps 64-bit exactness; float round-tripping would
			// corrupt large decimals and dictionary codes.
			n, err := strconv.ParseInt(v.String(), 10, 64)
			if err != nil {
				return nil, &ProtocolError{Reason: fmt.Sprintf(
					"row %d col %d is not an int64", rows, i), Err: err}
			}
			cols[i] = append(cols[i], n)
		}
		rows++
	}
}

func bytesTrimLeft(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	return b
}
