package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/plan"
	"aquoman/internal/tpch"
)

var wireSchema = plan.Schema{
	{Name: "k", Typ: col.Int64},
	{Name: "v", Typ: col.Decimal},
}

// decodePartial must turn every malformed worker stream into a typed
// *ProtocolError — never a hang, a panic, or a silently short result.
func TestDecodePartialViolations(t *testing.T) {
	good := `{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}
[1,100]
[2,200]
{"done":true,"rows":2}
`
	cols, err := decodePartial(strings.NewReader(good), wireSchema)
	if err != nil {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
	if len(cols) != 2 || len(cols[0]) != 2 || cols[1][1] != 200 {
		t.Fatalf("decoded %v", cols)
	}

	cases := []struct {
		name   string
		body   string
		reason string
	}{
		{"empty body", "", "reading header"},
		{"garbage header", "not json at all\n", "reading header"},
		{"array header", "[1,2,3]\n", "malformed header"},
		{"missing partial flag",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}]}` + "\n",
			"not a partial stream"},
		{"schema width",
			`{"schema":[{"name":"k","type":"int64"}],"partial":true}` + "\n",
			"schema width 1"},
		{"schema name",
			`{"schema":[{"name":"x","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,2]\n",
			"schema column 0"},
		{"schema type",
			`{"schema":[{"name":"k","type":"text"},{"name":"v","type":"decimal"}],"partial":true}` + "\n",
			"schema column 0"},
		{"truncated after header",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n",
			"truncated after 0 rows"},
		{"truncated mid rows",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,100]\n",
			"truncated after 1 rows"},
		{"garbled row",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,\"zap\"]\n",
			"garbled row 0"},
		{"float row",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,2.5]\n",
			"not an int64"},
		{"ragged row",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,2,3]\n",
			"row 0 has 3 values"},
		{"half a row then cut",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,10",
			"garbled stream after 0 rows"},
		{"trailer without done",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n{\"rows\":0}\n",
			"lacks done flag"},
		{"miscounted trailer",
			`{"schema":[{"name":"k","type":"int64"},{"name":"v","type":"decimal"}],"partial":true}` + "\n[1,100]\n{\"done\":true,\"rows\":5}\n",
			"claims 5 rows, stream carried 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodePartial(strings.NewReader(tc.body), wireSchema)
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ProtocolError", err)
			}
			if !strings.Contains(pe.Reason, tc.reason) {
				t.Fatalf("reason = %q, want substring %q", pe.Reason, tc.reason)
			}
		})
	}
}

// tinyStore builds a minimal TPC-H store for coordinator-level tests.
func tinyStore(t *testing.T) *col.Store {
	t.Helper()
	s := col.NewStore(flash.NewDevice())
	if err := tpch.Gen(s, tpch.Config{SF: 0.001, Seed: 3}); err != nil {
		t.Fatalf("Gen: %v", err)
	}
	return s
}

// A worker that persistently garbles its stream must surface as a typed
// NodeError wrapping the ProtocolError once every failover tier is
// exhausted — with fallback disabled there is nowhere left to go.
func TestCoordinatorSurfacesProtocolError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"schema":[{"name":"bogus","type":"int64"}],"partial":true}`)
	}))
	defer ts.Close()

	c, err := New(Config{
		Nodes:           []Node{{URL: ts.URL}},
		Store:           tinyStore(t),
		RetryBudget:     -1, // no same-URL retries: fail fast
		DisableFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.RunTPCH(nil, 6)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung on a garbled worker stream")
	}
	var ne *NodeError
	if !errors.As(err, &ne) || ne.Node != 0 {
		t.Fatalf("err = %v, want *NodeError for node 0", err)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *ProtocolError", err)
	}
}

// A worker 4xx (plan-level disagreement) must not be retried: one scatter
// attempt, typed error out.
func TestCoordinator4xxNotRetried(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no such table"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c, err := New(Config{
		Nodes:           []Node{{URL: ts.URL}},
		Store:           tinyStore(t),
		RetryBudget:     3,
		DisableFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.RunTPCH(nil, 6)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *ProtocolError with status 400", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("worker hit %d times; 4xx must not retry", n)
	}
}

// A worker 503 (queue full) is retryable: the coordinator must re-issue
// within its budget and succeed when the worker recovers — here via the
// host fallback after the budget is spent.
func TestCoordinator5xxRetriesThenFallsBack(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	store := tinyStore(t)
	c, err := New(Config{
		Nodes:       []Node{{URL: ts.URL}},
		Store:       store,
		RetryBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := c.RunTPCH(nil, 6)
	if err != nil {
		t.Fatalf("fallback did not absorb the dead worker: %v", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("worker hit %d times, want 1 + 2 retries", n)
	}
	if len(rep.FallbackNodes) != 1 || rep.NodeRetries[0] != 2 {
		t.Fatalf("report = %+v, want fallback node 0 with 2 retries", rep)
	}
	if b.NumRows() != 1 {
		t.Fatalf("q6 rows = %d", b.NumRows())
	}
}
