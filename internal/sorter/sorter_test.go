package sorter

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randKVs(rng *rand.Rand, n, keyRange int) []KV {
	v := make([]KV, n)
	for i := range v {
		v[i] = KV{Key: int64(rng.Intn(keyRange)), Val: int64(i)}
	}
	return v
}

func refSort(v []KV) []KV {
	out := append([]KV(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func equalKVs(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedPermutation reports whether got is key-sorted and holds exactly
// the same multiset as want. Mergers order equal keys by source
// alternation, not by value, so exact equality is too strict.
func sortedPermutation(got, want []KV) bool {
	if !IsSorted(got) {
		return false
	}
	return equalKVs(refSort(got), refSort(want))
}

func TestBitonicSortSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 16, 31, 32, 100} {
		v := randKVs(rng, n, 50)
		want := refSort(v)
		BitonicSort(v)
		if !equalKVs(v, want) {
			t.Fatalf("n=%d: got %v want %v", n, v, want)
		}
	}
}

func TestVCASKeepsTopN(t *testing.T) {
	in := []KV{{1, 0}, {4, 0}, {6, 0}, {9, 0}}
	top := []KV{{2, 0}, {3, 0}, {7, 0}, {8, 0}}
	evicted := VCAS(in, top)
	wantTop := []int64{6, 7, 8, 9}
	wantEv := []int64{1, 2, 3, 4}
	for i := range wantTop {
		if top[i].Key != wantTop[i] {
			t.Fatalf("top = %v", top)
		}
		if evicted[i].Key != wantEv[i] {
			t.Fatalf("evicted = %v", evicted)
		}
	}
}

func TestVCASMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	VCAS(make([]KV, 2), make([]KV, 3))
}

// Property: VCAS partitions the union into exact bottom/top halves, both
// sorted.
func TestQuickVCAS(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		in := refSort(randKVs(rng, n, 40))
		top := refSort(randKVs(rng, n, 40))
		union := refSort(append(append([]KV(nil), in...), top...))
		ev := VCAS(in, top)
		return equalKVs(ev, union[:n]) && equalKVs(top, union[n:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge2Alternation(t *testing.T) {
	// Equal keys must alternate sources so the intersection engine can
	// use look-ahead of one.
	a := NewSliceStream([]KV{{5, 1}, {5, 2}})
	b := NewSliceStream([]KV{{5, 10}, {5, 20}})
	m := NewMerge2(a, b)
	var srcs []bool
	for {
		_, fromA, ok := m.NextTagged()
		if !ok {
			break
		}
		srcs = append(srcs, fromA)
	}
	if len(srcs) != 4 {
		t.Fatalf("merged %d elements", len(srcs))
	}
	for i := 1; i < len(srcs); i++ {
		if srcs[i] == srcs[i-1] {
			t.Fatalf("sources did not alternate: %v", srcs)
		}
	}
	if m.Elems != 4 {
		t.Fatalf("Elems = %d", m.Elems)
	}
}

func TestMergeNAndDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var streams []Stream
	var all []KV
	for i := 0; i < 5; i++ {
		r := refSort(randKVs(rng, 20+i, 100))
		all = append(all, r...)
		streams = append(streams, NewSliceStream(r))
	}
	root, depth := MergeN(streams)
	if depth != 3 {
		t.Fatalf("depth = %d, want 3", depth)
	}
	got := Drain(root)
	if !IsSorted(got) {
		t.Fatal("MergeN output not sorted")
	}
	if len(got) != len(all) {
		t.Fatalf("len = %d, want %d", len(got), len(all))
	}
}

func TestMergeNEmpty(t *testing.T) {
	root, depth := MergeN(nil)
	if depth != 0 || len(Drain(root)) != 0 {
		t.Fatal("empty MergeN misbehaved")
	}
}

func TestStreamingSorterSmallConfig(t *testing.T) {
	cfg := Config{VecElems: 4, FanIn: 4, Layers: 3, ElemBytes: 8}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.RunElems() != 4*64 {
		t.Fatalf("RunElems = %d", cfg.RunElems())
	}
	s := NewStreaming(cfg)
	rng := rand.New(rand.NewSource(3))
	data := randKVs(rng, 1000, 1<<30)
	want := refSort(data)
	runs := s.SortRuns(append([]KV(nil), data...))
	// 1000 elems / 256-elem runs => 4 runs.
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs))
	}
	for i, r := range runs {
		if !IsSorted(r) {
			t.Fatalf("run %d not sorted", i)
		}
	}
	got := s.MergeRuns(runs)
	if !sortedPermutation(got, want) {
		t.Fatal("full sort mismatch")
	}
	st := s.Stats()
	if st.ElemsIn != 1000 || st.Runs != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SRAMBytes == 0 || st.DRAMBytes == 0 {
		t.Fatalf("traffic not accounted: %+v", st)
	}
}

func TestStreamingSorterWithinOneRun(t *testing.T) {
	s := NewStreaming(Config{VecElems: 8, FanIn: 8, Layers: 2, ElemBytes: 8})
	rng := rand.New(rand.NewSource(4))
	data := randKVs(rng, 512, 100) // exactly one run (8*8*8)
	want := refSort(data)
	got := s.Sort(append([]KV(nil), data...))
	if !sortedPermutation(got, want) {
		t.Fatal("sort mismatch")
	}
	if s.Stats().Runs != 1 {
		t.Fatalf("runs = %d", s.Stats().Runs)
	}
}

func TestStreamingSorterDefaults(t *testing.T) {
	s := NewStreaming(Config{})
	c := s.Config()
	if c.VecElems != 8 || c.FanIn != 256 || c.Layers != 3 || c.ElemBytes != 8 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.RunElems() != 8*256*256*256 {
		t.Fatalf("RunElems = %d", c.RunElems())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{VecElems: 0, FanIn: 2, Layers: 1, ElemBytes: 8},
		{VecElems: 4, FanIn: 1, Layers: 1, ElemBytes: 8},
		{VecElems: 4, FanIn: 2, Layers: 0, ElemBytes: 8},
		{VecElems: 4, FanIn: 2, Layers: 1, ElemBytes: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config validated", i)
		}
	}
}

// Property: Sort is a permutation-preserving total sort for arbitrary
// small configurations.
func TestQuickStreamingSort(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16) % 3000
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			VecElems:  rng.Intn(7) + 2,
			FanIn:     rng.Intn(6) + 2,
			Layers:    rng.Intn(3) + 1,
			ElemBytes: 8,
		}
		data := randKVs(rng, n, 200)
		want := refSort(data)
		got := NewStreaming(cfg).Sort(append([]KV(nil), data...))
		return sortedPermutation(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]KV{{1, 0}, {1, 5}, {2, 0}}) {
		t.Fatal("sorted reported unsorted")
	}
	if IsSorted([]KV{{2, 0}, {1, 0}}) {
		t.Fatal("unsorted reported sorted")
	}
}
