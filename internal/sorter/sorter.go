// Package sorter implements AQUOMAN's hardware sort building blocks
// (Sec. VI-C, Figs. 13–15): the pipelined bitonic vector sorter, the
// Vector Compare-And-Swap engine (Algorithm 1), the 2-to-1 vector merger
// with its scheduler and intersection-friendly alternation, N-to-1 merger
// trees (binary trees of 2-to-1 mergers), and the 1 GB-Block Streaming
// Sorter that cascades three 256-to-1 merger layers (64 B → 16 KB → 4 MB →
// 1 GB runs).
//
// Everything operates on key/value pairs: the key is the sort key and the
// value carries the RowID back-pointer used by AQUOMAN's join machinery
// (Sec. VI-D). The prototype's sorter configurations (uint32/uint64 and
// kv pairs, Table IV) differ only in datapath width, which the timing
// model accounts separately.
package sorter

// KV is one sort element: a key with its RowID (or other payload) value.
type KV struct {
	Key int64
	Val int64
}

// Less orders by key, breaking ties by value so sorts are deterministic.
func (a KV) Less(b KV) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Val < b.Val
}

// VecElems is the number of elements in one hardware sort vector. The
// prototype sorts 64-byte vectors on a 512-bit datapath: 8 kv<u32,u32>
// elements per vector.
const VecElems = 8

// DefaultFanIn is the merger-tree fan-in of each streaming-sorter layer.
const DefaultFanIn = 256

// BitonicSort sorts v in ascending order using a bitonic sorting network.
// len(v) is padded virtually to the next power of two (the hardware pads
// with +inf sentinels). It mirrors the pipelined bitonic sorter feeding
// the VCAS chain and the streaming sorter.
func BitonicSort(v []KV) {
	if len(v) < 2 {
		return
	}
	n := 1
	for n < len(v) {
		n <<= 1
	}
	// The network needs a power-of-two input; pad with +inf sentinels the
	// way the hardware pads short vectors.
	work := v
	if n != len(v) {
		work = make([]KV, n)
		copy(work, v)
		const inf = int64(^uint64(0) >> 1)
		for i := len(v); i < n; i++ {
			work[i] = KV{Key: inf, Val: inf}
		}
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				asc := i&k == 0
				if asc == work[l].Less(work[i]) {
					work[i], work[l] = work[l], work[i]
				}
			}
		}
	}
	if n != len(v) {
		copy(v, work)
	}
}

// VCAS is the Vector Compare-And-Swap engine: given inVec and topVec both
// sorted ascending and of equal length n, it keeps the largest n elements
// of the union in topVec (ascending) and returns the smallest n
// (ascending) as the evicted stream. Both slices are modified in place;
// the returned slice aliases inVec.
//
// The paper describes this as "n steps of compare-and-swap element-wise"
// (Algorithm 1); the element pairing that realizes it is the bitonic
// split — compare inVec[i] against topVec[n-1-i] — after which each half
// is a bitonic sequence holding exactly the correct multiset, re-sorted by
// the (pipelined, in hardware) normalization passes.
func VCAS(inVec, topVec []KV) []KV {
	if len(inVec) != len(topVec) {
		panic("sorter: VCAS length mismatch")
	}
	n := len(inVec)
	for i := 0; i < n; i++ {
		j := n - 1 - i
		if topVec[j].Less(inVec[i]) {
			inVec[i], topVec[j] = topVec[j], inVec[i]
		}
	}
	insertionSort(topVec)
	insertionSort(inVec)
	return inVec
}

func insertionSort(v []KV) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && x.Less(v[j]) {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// Stream is a pull source of sorted elements.
type Stream interface {
	// Next returns the next element, or ok == false at end of stream.
	Next() (KV, bool)
}

// SliceStream streams a slice.
type SliceStream struct {
	v []KV
	i int
}

// NewSliceStream returns a Stream over v.
func NewSliceStream(v []KV) *SliceStream { return &SliceStream{v: v} }

// Next implements Stream.
func (s *SliceStream) Next() (KV, bool) {
	if s.i >= len(s.v) {
		return KV{}, false
	}
	kv := s.v[s.i]
	s.i++
	return kv, true
}

// Merge2 is the 2-to-1 vector merger (Fig. 14): a scheduler picks the
// input whose head is smaller and feeds the VCAS engine. With duplicate
// keys it alternates sources, which lets the downstream intersection
// engine use a look-ahead of one (Sec. VI-C).
type Merge2 struct {
	a, b       Stream
	ha, hb     KV
	hasA, hasB bool
	// lastFromA tracks the alternation for equal keys.
	lastFromA bool
	// Elems counts merged elements for the timing model.
	Elems int64
}

// NewMerge2 returns a merger over two sorted streams.
func NewMerge2(a, b Stream) *Merge2 {
	m := &Merge2{a: a, b: b}
	m.ha, m.hasA = a.Next()
	m.hb, m.hasB = b.Next()
	return m
}

// Next implements Stream. Source reports whether the element came from the
// first stream via the FromA return.
func (m *Merge2) Next() (KV, bool) { kv, _, ok := m.NextTagged(); return kv, ok }

// NextTagged returns the next element plus its source stream.
func (m *Merge2) NextTagged() (kv KV, fromA bool, ok bool) {
	switch {
	case !m.hasA && !m.hasB:
		return KV{}, false, false
	case !m.hasB:
		fromA = true
	case !m.hasA:
		fromA = false
	case m.ha.Key == m.hb.Key:
		// Alternate sources on equal keys.
		fromA = !m.lastFromA
	case m.ha.Key < m.hb.Key:
		fromA = true
	default:
		fromA = false
	}
	if fromA {
		kv = m.ha
		m.ha, m.hasA = m.a.Next()
	} else {
		kv = m.hb
		m.hb, m.hasB = m.b.Next()
	}
	m.lastFromA = fromA
	m.Elems++
	return kv, fromA, true
}

// MergeN merges k sorted streams through a binary tree of 2-to-1 mergers
// (the paper's 256-to-1 merger is such a tree with context-sharing VCAS
// blocks per depth). It returns the root stream and the tree depth.
func MergeN(streams []Stream) (Stream, int) {
	if len(streams) == 0 {
		return NewSliceStream(nil), 0
	}
	depth := 0
	for len(streams) > 1 {
		var next []Stream
		for i := 0; i < len(streams); i += 2 {
			if i+1 < len(streams) {
				next = append(next, NewMerge2(streams[i], streams[i+1]))
			} else {
				next = append(next, streams[i])
			}
		}
		streams = next
		depth++
	}
	return streams[0], depth
}

// Drain collects a stream into a slice.
func Drain(s Stream) []KV {
	var out []KV
	for {
		kv, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, kv)
	}
}

// IsSorted reports whether v is ascending by key.
func IsSorted(v []KV) bool {
	for i := 1; i < len(v); i++ {
		if v[i].Key < v[i-1].Key {
			return false
		}
	}
	return true
}
