package sorter

import "fmt"

// Config sizes the 1 GB-Block Streaming Sorter (Fig. 15). The hardware
// instance sorts 64-byte vectors with a pipelined bitonic sorter and
// cascades three 256-to-1 merger layers, producing
// 8 × 256³ ≈ 134M-element (1 GB at 8 B/elem) sorted runs; the first two
// layers buffer in SRAM and the last in DRAM.
type Config struct {
	// VecElems is the bitonic sorter's vector size in elements.
	VecElems int
	// FanIn is each merger layer's fan-in.
	FanIn int
	// Layers is the number of merger layers.
	Layers int
	// ElemBytes is the element width for traffic accounting (8 for
	// kv<uint32,uint32>, 16 for kv<uint64,uint64>).
	ElemBytes int
}

// DefaultConfig is the hardware instance: 8-element vectors, three
// 256-to-1 layers, kv<uint32,uint32> elements.
func DefaultConfig() Config {
	return Config{VecElems: VecElems, FanIn: DefaultFanIn, Layers: 3, ElemBytes: 8}
}

// RunElems returns the sorted-run length in elements (the "1 GB block").
func (c Config) RunElems() int {
	n := c.VecElems
	for i := 0; i < c.Layers; i++ {
		n *= c.FanIn
	}
	return n
}

// Stats accumulates the sorter's data movement for the timing model.
type Stats struct {
	// ElemsIn is the number of elements streamed in.
	ElemsIn int64
	// SRAMBytes is traffic through the first Layers-1 merge layers
	// (on-chip buffers in the prototype).
	SRAMBytes int64
	// DRAMBytes is traffic through the final merge layer plus any
	// run-merging beyond one run (each element is read and written once
	// per pass).
	DRAMBytes int64
	// Runs is the number of sorted runs produced by the cascade.
	Runs int64
	// MergePasses counts multi-way merge invocations, split by buffer
	// tier — together with SRAMBytes/DRAMBytes they give the merge-layer
	// throughput per pass.
	SRAMMergePasses int64
	DRAMMergePasses int64
}

// StreamingSorter sorts unbounded streams into RunElems-sized sorted runs
// by reproducing the hardware cascade: bitonic-sort base vectors, then
// merge FanIn runs per layer through binary trees of 2-to-1 mergers.
type StreamingSorter struct {
	cfg   Config
	stats Stats
}

// NewStreaming returns a sorter with the given configuration; zero fields
// fall back to the hardware defaults.
func NewStreaming(cfg Config) *StreamingSorter {
	d := DefaultConfig()
	if cfg.VecElems <= 0 {
		cfg.VecElems = d.VecElems
	}
	if cfg.FanIn <= 1 {
		cfg.FanIn = d.FanIn
	}
	if cfg.Layers <= 0 {
		cfg.Layers = d.Layers
	}
	if cfg.ElemBytes <= 0 {
		cfg.ElemBytes = d.ElemBytes
	}
	return &StreamingSorter{cfg: cfg}
}

// Config returns the active configuration.
func (s *StreamingSorter) Config() Config { return s.cfg }

// Stats returns the accumulated data-movement counters.
func (s *StreamingSorter) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *StreamingSorter) ResetStats() { s.stats = Stats{} }

// SortRuns streams data through the cascade and returns the sorted runs
// in input order. data is consumed (sorted in place segment-wise).
func (s *StreamingSorter) SortRuns(data []KV) [][]KV {
	s.stats.ElemsIn += int64(len(data))
	// Layer 0: bitonic-sort base vectors.
	runs := make([][]KV, 0, (len(data)+s.cfg.VecElems-1)/s.cfg.VecElems)
	for base := 0; base < len(data); base += s.cfg.VecElems {
		end := base + s.cfg.VecElems
		if end > len(data) {
			end = len(data)
		}
		v := data[base:end]
		BitonicSort(v)
		runs = append(runs, v)
	}
	// Merge layers.
	for layer := 1; layer <= s.cfg.Layers; layer++ {
		if len(runs) <= 1 {
			break
		}
		var next [][]KV
		for g := 0; g < len(runs); g += s.cfg.FanIn {
			e := g + s.cfg.FanIn
			if e > len(runs) {
				e = len(runs)
			}
			merged := s.mergeGroup(runs[g:e], layer)
			next = append(next, merged)
		}
		runs = next
	}
	s.stats.Runs += int64(len(runs))
	return runs
}

func (s *StreamingSorter) mergeGroup(group [][]KV, layer int) []KV {
	if len(group) == 1 {
		return group[0]
	}
	streams := make([]Stream, len(group))
	total := 0
	for i, r := range group {
		streams[i] = NewSliceStream(r)
		total += len(r)
	}
	root, _ := MergeN(streams)
	out := make([]KV, 0, total)
	for {
		kv, ok := root.Next()
		if !ok {
			break
		}
		out = append(out, kv)
	}
	bytes := int64(total) * int64(s.cfg.ElemBytes)
	if layer >= s.cfg.Layers {
		s.stats.DRAMBytes += 2 * bytes // read + write through DDR4
		s.stats.DRAMMergePasses++
	} else {
		s.stats.SRAMBytes += 2 * bytes
		s.stats.SRAMMergePasses++
	}
	return out
}

// Sort fully sorts data. Within one run it is the pure cascade; beyond
// one run it folds extra merge passes through DRAM at half streaming rate
// (the paper: "it can sort 256GB by folding the last 256-to-1 merging
// step", each fold costing one extra DRAM round trip per element).
func (s *StreamingSorter) Sort(data []KV) []KV {
	runs := s.SortRuns(data)
	return s.MergeRuns(runs)
}

// MergeRuns merges pre-sorted runs into one sorted stream, accounting the
// extra DRAM traffic of the folded merge passes.
func (s *StreamingSorter) MergeRuns(runs [][]KV) []KV {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	for len(runs) > 1 {
		var next [][]KV
		for g := 0; g < len(runs); g += s.cfg.FanIn {
			e := g + s.cfg.FanIn
			if e > len(runs) {
				e = len(runs)
			}
			next = append(next, s.mergeGroup(runs[g:e], s.cfg.Layers))
		}
		runs = next
	}
	return runs[0]
}

// Validate sanity-checks a configuration.
func (c Config) Validate() error {
	if c.VecElems < 1 || c.FanIn < 2 || c.Layers < 1 || c.ElemBytes < 1 {
		return fmt.Errorf("sorter: invalid config %+v", c)
	}
	return nil
}
