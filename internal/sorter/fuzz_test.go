package sorter

import (
	"encoding/binary"
	"sort"
	"testing"
)

// decodeKVs turns fuzz bytes into key/value pairs (4-byte key, 4-byte
// value, signed).
func decodeKVs(data []byte) []KV {
	var kvs []KV
	for i := 0; i+8 <= len(data) && len(kvs) < 1<<14; i += 8 {
		kvs = append(kvs, KV{
			Key: int64(int32(binary.LittleEndian.Uint32(data[i:]))),
			Val: int64(int32(binary.LittleEndian.Uint32(data[i+4:]))),
		})
	}
	return kvs
}

// multiset counts occurrences so permutation checks survive duplicates.
func multiset(v []KV) map[KV]int {
	m := make(map[KV]int, len(v))
	for _, kv := range v {
		m[kv]++
	}
	return m
}

func sameMultiset(a, b map[KV]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// keySorted reports non-decreasing key order — the contract of the merger
// tree, whose 2-to-1 mergers alternate on key ties (the
// intersection-friendly schedule) and therefore do not order ties by
// value the way the bitonic base sorter does.
func keySorted(v []KV) bool {
	for i := 1; i < len(v); i++ {
		if v[i].Key < v[i-1].Key {
			return false
		}
	}
	return true
}

// FuzzSorterMerge drives the streaming-sorter cascade (bitonic base
// vectors, merger-tree layers, folded run merging) with arbitrary
// key/value data and checks the invariants the join machinery relies on:
// every run and the merged output are key-ordered, the output is an exact
// permutation of the input, and the key sequence matches an independent
// reference sort.
func FuzzSorterMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0})
	// Two vectors' worth of descending keys.
	seed := make([]byte, 16*8)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(seed[i*8:], uint32(100-i))
		binary.LittleEndian.PutUint32(seed[i*8+4:], uint32(i))
	}
	f.Add(seed)
	// All-equal keys exercise the mergers' tie alternation.
	eq := make([]byte, 12*8)
	for i := 0; i < 12; i++ {
		binary.LittleEndian.PutUint32(eq[i*8:], 7)
		binary.LittleEndian.PutUint32(eq[i*8+4:], uint32(11-i))
	}
	f.Add(eq)
	// Negative keys (sign extension through the uint32 round trip).
	neg := make([]byte, 8*8)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(neg[i*8:], uint32(int32(-i*3)))
		binary.LittleEndian.PutUint32(neg[i*8+4:], uint32(i))
	}
	f.Add(neg)

	f.Fuzz(func(t *testing.T, data []byte) {
		input := decodeKVs(data)
		want := multiset(input)

		// Reference key order from an independent sort.
		refKeys := make([]int64, len(input))
		for i, kv := range input {
			refKeys[i] = kv.Key
		}
		sort.Slice(refKeys, func(i, j int) bool { return refKeys[i] < refKeys[j] })

		// The bitonic base sorter alone IS a total (key, value) order.
		base := append([]KV(nil), input...)
		if len(base) > VecElems {
			base = base[:VecElems]
		}
		ref := append([]KV(nil), base...)
		sort.Slice(ref, func(i, j int) bool { return ref[i].Less(ref[j]) })
		BitonicSort(base)
		for i := range base {
			if base[i] != ref[i] {
				t.Fatalf("BitonicSort differs from reference at %d: %v, want %v", i, base[i], ref[i])
			}
		}

		// A tiny config forces multiple runs and folded merge passes even
		// on small inputs.
		s := NewStreaming(Config{VecElems: 4, FanIn: 2, Layers: 2, ElemBytes: 8})
		runs := s.SortRuns(append([]KV(nil), input...))
		totalLen := 0
		for ri, run := range runs {
			totalLen += len(run)
			if !keySorted(run) {
				t.Fatalf("run %d has descending keys", ri)
			}
			if maxRun := s.Config().RunElems(); len(run) > maxRun {
				t.Fatalf("run %d has %d elements, config caps runs at %d", ri, len(run), maxRun)
			}
		}
		if totalLen != len(input) {
			t.Fatalf("runs hold %d elements, input had %d", totalLen, len(input))
		}

		out := s.MergeRuns(runs)
		if len(out) != len(input) {
			t.Fatalf("merged output has %d elements, want %d", len(out), len(input))
		}
		if !IsSorted(out) {
			t.Fatal("merged output keys not ascending")
		}
		for i := range out {
			if out[i].Key != refKeys[i] {
				t.Fatalf("key %d = %d, reference sort has %d", i, out[i].Key, refKeys[i])
			}
		}
		if !sameMultiset(multiset(out), want) {
			t.Fatal("output is not a permutation of the input")
		}

		// The one-shot Sort entry point upholds the same invariants.
		s2 := NewStreaming(Config{VecElems: 8, FanIn: 4, Layers: 1, ElemBytes: 8})
		out2 := s2.Sort(append([]KV(nil), input...))
		if !IsSorted(out2) || !sameMultiset(multiset(out2), want) {
			t.Fatal("Sort output unsorted or not a permutation")
		}
	})
}
