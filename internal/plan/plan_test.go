package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aquoman/internal/col"
	"aquoman/internal/flash"
	"aquoman/internal/systolic"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s := col.NewStore(flash.NewDevice())
	b := s.NewTable(col.Schema{Name: "t", Cols: []col.ColDef{
		{Name: "x", Typ: col.Int64},
		{Name: "y", Typ: col.Decimal},
		{Name: "d", Typ: col.Date},
		{Name: "mode", Typ: col.Dict},
		{Name: "note", Typ: col.Text},
	}})
	modes := []string{"AIR", "MAIL", "RAIL", "SHIP", "TRUCK"}
	for i := 0; i < 40; i++ {
		b.Append(int64(i), int64(i*100), col.DateValue(1995, 1, 1+i%28), modes[i%5], "n")
	}
	tab, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	var schema Schema
	for _, cd := range tab.Cols {
		f := Field{Name: cd.Name, Typ: cd.Typ}
		if cd.Typ.IsString() {
			f.Src = tab.MustColumn(cd.Name)
		}
		schema = append(schema, f)
	}
	return schema
}

func evalOn(t *testing.T, schema Schema, e Expr, row []int64) int64 {
	t.Helper()
	lowered, err := Lower(e, schema)
	if err != nil {
		t.Fatalf("Lower(%s): %v", e, err)
	}
	return systolic.EvalExpr(lowered, row)
}

func TestArithmeticLowering(t *testing.T) {
	schema := testSchema(t)
	row := []int64{10, 250, 0, 0, 0} // x=10, y=2.50
	cases := []struct {
		e    Expr
		want int64
	}{
		{Add(C("x"), I(5)), 15},
		{Sub(C("x"), I(5)), 5},
		{Mul(C("x"), I(3)), 30},
		{DivE(C("x"), I(3)), 3},
		{DecMul(C("y"), Dec("2.00")), 500}, // 2.50*2.00 = 5.00
		{EQ(C("x"), I(10)), 1},
		{NE(C("x"), I(10)), 0},
		{LT(C("x"), I(11)), 1},
		{LE(C("x"), I(10)), 1},
		{GT(C("x"), I(10)), 0},
		{GE(C("x"), I(10)), 1},
		{And(EQ(C("x"), I(10)), GT(C("y"), I(0))), 1},
		{Or(EQ(C("x"), I(99)), GT(C("y"), I(0))), 1},
		{Not{E: EQ(C("x"), I(10))}, 0},
		{Between(C("x"), I(5), I(15)), 1},
		{Between(C("x"), I(11), I(15)), 0},
		{Case{Cond: GT(C("x"), I(5)), Then: I(100), Else: I(200)}, 100},
		{Case{Cond: GT(C("x"), I(50)), Then: I(100), Else: I(200)}, 200},
		{InInts{E: C("x"), Vs: []int64{3, 10, 20}}, 1},
		{InInts{E: C("x"), Vs: []int64{3, 20}}, 0},
	}
	for _, c := range cases {
		if got := evalOn(t, schema, c.e, row); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestDecLiteral(t *testing.T) {
	cases := map[string]int64{
		"0.05": 5, "0.10": 10, "24": 2400, "300": 30000, "-1.25": -125,
		"0.2": 20, "1": 100,
	}
	for s, want := range cases {
		if got := Dec(s).(Int).V; got != want {
			t.Errorf("Dec(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestStringComparisons(t *testing.T) {
	schema := testSchema(t)
	// Dict order: AIR=0 MAIL=1 RAIL=2 SHIP=3 TRUCK=4.
	mkRow := func(mode int64) []int64 { return []int64{0, 0, 0, mode, 0} }
	cases := []struct {
		e    Expr
		mode int64
		want int64
	}{
		{EQ(C("mode"), S("MAIL")), 1, 1},
		{EQ(C("mode"), S("MAIL")), 2, 0},
		{NE(C("mode"), S("MAIL")), 2, 1},
		{EQ(C("mode"), S("ABSENT")), 1, 0},
		{NE(C("mode"), S("ABSENT")), 1, 1},
		{LT(C("mode"), S("RAIL")), 1, 1}, // MAIL < RAIL
		{LT(C("mode"), S("RAIL")), 3, 0},
		{GE(C("mode"), S("SHIP")), 4, 1},
		// Absent literal between RAIL and SHIP: "SEA".
		{LT(C("mode"), S("SEA")), 2, 1},
		{LT(C("mode"), S("SEA")), 3, 0},
		{GT(C("mode"), S("SEA")), 3, 1},
		{InStrs{Col: "mode", Vs: []string{"MAIL", "SHIP"}}, 3, 1},
		{InStrs{Col: "mode", Vs: []string{"MAIL", "SHIP"}}, 0, 0},
		{InStrs{Col: "mode", Vs: []string{"NONE"}}, 0, 0},
		{Like{Col: "mode", Pattern: "R%"}, 2, 1},
		{Like{Col: "mode", Pattern: "R%"}, 1, 0},
		{Like{Col: "mode", Pattern: "%AI%"}, 1, 1}, // MAIL, RAIL, AIR
		{Like{Col: "mode", Pattern: "%AI%"}, 3, 0},
		{Like{Col: "mode", Pattern: "%AI%", Negate: true}, 3, 1},
	}
	for _, c := range cases {
		if got := evalOn(t, schema, c.e, mkRow(c.mode)); got != c.want {
			t.Errorf("%s on mode=%d: got %d, want %d", c.e, c.mode, got, c.want)
		}
	}
}

func TestTextPredicatesReturnTextError(t *testing.T) {
	schema := testSchema(t)
	for _, e := range []Expr{
		Like{Col: "note", Pattern: "%x%"},
		SubstrCode{Col: "note", Start: 1, Len: 2},
		EQ(C("note"), S("n")),
	} {
		_, err := Lower(e, schema)
		if _, ok := err.(*TextError); !ok {
			t.Errorf("Lower(%s) err = %v, want TextError", e, err)
		}
	}
}

func TestYearOfAgainstTimePackage(t *testing.T) {
	schema := Schema{{Name: "d", Typ: col.Date}}
	lowered, err := Lower(YearOf{E: C("d")}, schema)
	if err != nil {
		t.Fatal(err)
	}
	// Every day from 1992 through 1999 must extract the right year.
	start := col.MustParseDate("1992-01-01")
	end := col.MustParseDate("1999-12-31")
	for d := start; d <= end; d++ {
		want := time.Unix(d*86400, 0).UTC().Year()
		if got := systolic.EvalExpr(lowered, []int64{d}); got != int64(want) {
			t.Fatalf("year(%s) = %d, want %d", col.DateString(d), got, want)
		}
	}
}

func TestPackUnpackString(t *testing.T) {
	for _, s := range []string{"13", "31", "ab", "zz"} {
		if UnpackString(PackString(s), len(s)) != s {
			t.Fatalf("pack/unpack %q", s)
		}
	}
}

// Property: membership lowering equals the naive set test for random
// value sets (including duplicates and contiguous runs).
func TestQuickMembership(t *testing.T) {
	schema := Schema{{Name: "v", Typ: col.Int64}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		vs := make([]int64, n)
		set := map[int64]bool{}
		for i := range vs {
			vs[i] = int64(rng.Intn(20))
			set[vs[i]] = true
		}
		lowered, err := Lower(InInts{E: C("v"), Vs: vs}, schema)
		if err != nil {
			return false
		}
		for x := int64(-2); x < 24; x++ {
			got := systolic.EvalExpr(lowered, []int64{x})
			want := int64(0)
			if set[x] {
				want = 1
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBindErrors(t *testing.T) {
	s := col.NewStore(flash.NewDevice())
	b := s.NewTable(col.Schema{Name: "t", Cols: []col.ColDef{{Name: "x", Typ: col.Int64}}})
	b.Append(int64(1))
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	bad := []Node{
		&Scan{Table: "missing", Cols: []string{"x"}},
		&Scan{Table: "t", Cols: []string{"nope"}},
		&Filter{Input: &Scan{Table: "t", Cols: []string{"x"}}, Pred: C("nope")},
		&Join{L: &Scan{Table: "t", Cols: []string{"x"}},
			R: &Scan{Table: "t", Cols: []string{"x"}}, LKeys: []string{"x"}, RKeys: []string{"x"}},
		&OrderBy{Input: &Scan{Table: "t", Cols: []string{"x"}},
			Keys: []OrderKey{{Name: "nope"}}},
		&Limit{Input: &Scan{Table: "t", Cols: []string{"x"}}, N: -1},
		&GroupBy{Input: &Scan{Table: "t", Cols: []string{"x"}}, Keys: []string{"nope"}},
	}
	for i, n := range bad {
		if err := Bind(n, s); err == nil {
			t.Errorf("case %d bound", i)
		}
	}
}

func TestBindSchemas(t *testing.T) {
	s := col.NewStore(flash.NewDevice())
	b := s.NewTable(col.Schema{Name: "t", Cols: []col.ColDef{
		{Name: "x", Typ: col.Int64}, {Name: "m", Typ: col.Dict}}})
	b.Append(int64(1), "a")
	if _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	g := &GroupBy{
		Input: &Scan{Table: "t", Cols: []string{"x", "m", RowIDCol}},
		Keys:  []string{"m"},
		Aggs:  []AggSpec{{Func: AggSum, Name: "sx", E: C("x"), Typ: col.Decimal}},
	}
	root := &Limit{N: 5, Input: &OrderBy{Input: g, Keys: []OrderKey{{Name: "sx"}}}}
	if err := Bind(root, s); err != nil {
		t.Fatal(err)
	}
	sc := root.Schema()
	if len(sc) != 2 || sc[0].Name != "m" || sc[1].Name != "sx" || sc[1].Typ != col.Decimal {
		t.Fatalf("schema = %v", sc)
	}
	if sc[0].Src == nil {
		t.Fatal("dict source not propagated through group-by")
	}
	if got := BaseTables(root); len(got) != 1 || got[0] != "t" {
		t.Fatalf("BaseTables = %v", got)
	}
}
