// Package plan defines the logical query algebra: relational operator
// trees over expression ASTs. Both execution paths consume it — the host
// engine (internal/engine, the MonetDB stand-in) and the AQUOMAN offload
// compiler (internal/compiler) — and both lower expressions to the same
// systolic integer semantics, so host and in-storage execution agree
// bit-for-bit.
package plan

import (
	"fmt"
	"strings"

	"aquoman/internal/col"
	"aquoman/internal/regexcc"
	"aquoman/internal/systolic"
)

// Field is one column of an operator's output schema. String-typed fields
// carry their originating storage column so dictionary codes and heap
// offsets can be decoded anywhere downstream.
type Field struct {
	Name string
	Typ  col.Type
	// Src is the storage column for Dict/Text fields (nil otherwise).
	Src *col.ColumnInfo
}

// Schema is an ordered field list.
type Schema []Field

// Index returns the position of the named field, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the named field.
func (s Schema) Field(name string) (Field, error) {
	if i := s.Index(name); i >= 0 {
		return s[i], nil
	}
	return Field{}, fmt.Errorf("plan: no field %q in schema %s", name, s)
}

func (s Schema) String() string {
	names := make([]string, len(s))
	for i, f := range s {
		names[i] = f.Name
	}
	return "(" + strings.Join(names, ", ") + ")"
}

// Expr is a scalar expression over a schema. Comparisons and boolean
// operators yield 0/1. All expressions lower to systolic.Expr; evaluation
// everywhere uses the lowered form.
type Expr interface {
	expr()
	String() string
}

// Col references a field by name.
type Col struct{ Name string }

// Int is an integer literal (also used for Date and ×100 Decimal
// literals via the helpers below).
type Int struct{ V int64 }

// Str is a string literal compared against Dict/Text columns.
type Str struct{ V string }

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // integer division
	// OpDecMul multiplies two ×100 decimals, rescaling the result
	// (a*b/100), matching SQL decimal semantics under truncation.
	OpDecMul
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAnd
	OpOr
)

func (o BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "*dec", "=", "<>", "<", "<=", ">", ">=", "and", "or"}[o]
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// InInts tests membership of E in a literal integer set.
type InInts struct {
	E  Expr
	Vs []int64
}

// InStrs tests membership of a string column in a literal string set.
type InStrs struct {
	Col string
	Vs  []string
}

// Like matches a string column against a SQL LIKE pattern.
type Like struct {
	Col     string
	Pattern string
	Negate  bool
}

// SubstrCode extracts bytes [Start, Start+Len) of a string column packed
// big-endian into an integer (SUBSTRING(c_phone, 1, 2) in q22; Start is
// 1-based as in SQL).
type SubstrCode struct {
	Col   string
	Start int
	Len   int
}

// YearOf extracts the calendar year of a Date expression
// (EXTRACT(YEAR FROM ...)).
type YearOf struct{ E Expr }

// Case selects Then where Cond is true, otherwise Else (SQL CASE WHEN).
type Case struct {
	Cond Expr
	Then Expr
	Else Expr
}

func (Col) expr()        {}
func (Int) expr()        {}
func (Str) expr()        {}
func (Bin) expr()        {}
func (Not) expr()        {}
func (InInts) expr()     {}
func (InStrs) expr()     {}
func (Like) expr()       {}
func (SubstrCode) expr() {}
func (YearOf) expr()     {}
func (Case) expr()       {}

func (e Col) String() string { return e.Name }
func (e Int) String() string { return fmt.Sprintf("%d", e.V) }
func (e Str) String() string { return fmt.Sprintf("%q", e.V) }
func (e Bin) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e Not) String() string { return fmt.Sprintf("not(%s)", e.E) }
func (e InInts) String() string {
	return fmt.Sprintf("%s in %v", e.E, e.Vs)
}
func (e InStrs) String() string { return fmt.Sprintf("%s in %q", e.Col, e.Vs) }
func (e Like) String() string {
	neg := ""
	if e.Negate {
		neg = " not"
	}
	return fmt.Sprintf("%s%s like %q", e.Col, neg, e.Pattern)
}
func (e SubstrCode) String() string {
	return fmt.Sprintf("substr(%s,%d,%d)", e.Col, e.Start, e.Len)
}
func (e YearOf) String() string { return fmt.Sprintf("year(%s)", e.E) }
func (e Case) String() string {
	return fmt.Sprintf("case when %s then %s else %s end", e.Cond, e.Then, e.Else)
}

// Convenience constructors used by the TPC-H query definitions.

// C references a column.
func C(name string) Expr { return Col{Name: name} }

// I is an integer literal.
func I(v int64) Expr { return Int{V: v} }

// S is a string literal.
func S(v string) Expr { return Str{V: v} }

// Date is a "YYYY-MM-DD" literal.
func Date(s string) Expr { return Int{V: col.MustParseDate(s)} }

// Dec is a decimal literal: Dec("0.05") == 5 at ×100 scale.
func Dec(s string) Expr {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	parts := strings.SplitN(s, ".", 2)
	var units, cents int64
	fmt.Sscanf(parts[0], "%d", &units)
	if len(parts) == 2 {
		frac := parts[1]
		for len(frac) < 2 {
			frac += "0"
		}
		fmt.Sscanf(frac[:2], "%d", &cents)
	}
	v := units*100 + cents
	if neg {
		v = -v
	}
	return Int{V: v}
}

func bin(op BinOp, l, r Expr) Expr { return Bin{Op: op, L: l, R: r} }

// Arithmetic and comparison helpers.
func Add(l, r Expr) Expr    { return bin(OpAdd, l, r) }
func Sub(l, r Expr) Expr    { return bin(OpSub, l, r) }
func Mul(l, r Expr) Expr    { return bin(OpMul, l, r) }
func DivE(l, r Expr) Expr   { return bin(OpDiv, l, r) }
func DecMul(l, r Expr) Expr { return bin(OpDecMul, l, r) }
func EQ(l, r Expr) Expr     { return bin(OpEQ, l, r) }
func NE(l, r Expr) Expr     { return bin(OpNE, l, r) }
func LT(l, r Expr) Expr     { return bin(OpLT, l, r) }
func LE(l, r Expr) Expr     { return bin(OpLE, l, r) }
func GT(l, r Expr) Expr     { return bin(OpGT, l, r) }
func GE(l, r Expr) Expr     { return bin(OpGE, l, r) }

// And/Or fold multiple conjuncts/disjuncts.
func And(es ...Expr) Expr { return fold(OpAnd, es) }
func Or(es ...Expr) Expr  { return fold(OpOr, es) }

func fold(op BinOp, es []Expr) Expr {
	if len(es) == 0 {
		return I(1)
	}
	e := es[0]
	for _, n := range es[1:] {
		e = bin(op, e, n)
	}
	return e
}

// Between is lo <= e AND e <= hi (SQL BETWEEN is inclusive).
func Between(e, lo, hi Expr) Expr { return And(GE(e, lo), LE(e, hi)) }

// PackString packs up to 8 bytes of s big-endian into an int64 (the
// SubstrCode encoding).
func PackString(s string) int64 {
	var v int64
	for i := 0; i < len(s) && i < 8; i++ {
		v = v<<8 | int64(s[i])
	}
	return v
}

// UnpackString reverses PackString for n bytes.
func UnpackString(v int64, n int) string {
	b := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return string(b)
}

// yearExpr lowers EXTRACT(YEAR) to integer arithmetic valid for
// 1901–2099: day 0 is 1970-01-01, 731 days after 1968-01-01, and in that
// window every 4th year is leap, so year = 1968 + 4*(d+731)/1461.
func yearExpr(d systolic.Expr) systolic.Expr {
	return systolic.Add(
		systolic.Div(systolic.Mul(systolic.Add(d, systolic.C(731)), systolic.C(4)), systolic.C(1461)),
		systolic.C(1968))
}

// Lower compiles e against schema into a systolic expression over the
// schema's column indices. String predicates resolve through the fields'
// dictionaries; Text-column predicates cannot lower (they need the regex
// accelerator or host evaluation) and return ErrNeedsText.
func Lower(e Expr, schema Schema) (systolic.Expr, error) {
	l := lowerer{schema: schema}
	return l.lower(e)
}

// ErrNeedsText marks expressions that touch Text (string-heap) content
// and therefore cannot become pure integer dataflow.
type TextError struct{ Col string }

func (e *TextError) Error() string {
	return fmt.Sprintf("plan: expression needs string-heap content of column %q", e.Col)
}

type lowerer struct {
	schema Schema
}

func (l *lowerer) colIndex(name string) (int, Field, error) {
	i := l.schema.Index(name)
	if i < 0 {
		return 0, Field{}, fmt.Errorf("plan: unknown column %q in %s", name, l.schema)
	}
	return i, l.schema[i], nil
}

func (l *lowerer) lower(e Expr) (systolic.Expr, error) {
	switch n := e.(type) {
	case Col:
		i, _, err := l.colIndex(n.Name)
		if err != nil {
			return nil, err
		}
		return systolic.In(i), nil
	case Int:
		return systolic.C(n.V), nil
	case Str:
		return nil, fmt.Errorf("plan: bare string literal %q outside comparison", n.V)
	case Bin:
		return l.lowerBin(n)
	case Not:
		inner, err := l.lower(n.E)
		if err != nil {
			return nil, err
		}
		return systolic.Sub(systolic.C(1), inner), nil
	case InInts:
		inner, err := l.lower(n.E)
		if err != nil {
			return nil, err
		}
		return lowerMembership(inner, n.Vs), nil
	case InStrs:
		i, f, err := l.colIndex(n.Col)
		if err != nil {
			return nil, err
		}
		if f.Typ != col.Dict || f.Src == nil {
			return nil, &TextError{Col: n.Col}
		}
		var codes []int64
		for _, s := range n.Vs {
			if c, ok := f.Src.Code(s); ok {
				codes = append(codes, c)
			}
		}
		if len(codes) == 0 {
			return systolic.C(0), nil
		}
		return lowerMembership(systolic.In(i), codes), nil
	case Like:
		return l.lowerLike(n)
	case SubstrCode:
		return nil, &TextError{Col: n.Col}
	case YearOf:
		inner, err := l.lower(n.E)
		if err != nil {
			return nil, err
		}
		return yearExpr(inner), nil
	case Case:
		cond, err := l.lower(n.Cond)
		if err != nil {
			return nil, err
		}
		th, err := l.lower(n.Then)
		if err != nil {
			return nil, err
		}
		el, err := l.lower(n.Else)
		if err != nil {
			return nil, err
		}
		// cond*then + (1-cond)*else
		return systolic.Add(systolic.Mul(cond, th),
			systolic.Mul(systolic.Sub(systolic.C(1), cond), el)), nil
	default:
		return nil, fmt.Errorf("plan: cannot lower %T", e)
	}
}

func (l *lowerer) lowerBin(n Bin) (systolic.Expr, error) {
	// String equality against a Dict column becomes a code comparison.
	if sl, ok := n.R.(Str); ok {
		cl, okc := n.L.(Col)
		if !okc {
			return nil, fmt.Errorf("plan: string comparison needs a column: %s", n)
		}
		i, f, err := l.colIndex(cl.Name)
		if err != nil {
			return nil, err
		}
		if f.Typ != col.Dict || f.Src == nil {
			return nil, &TextError{Col: cl.Name}
		}
		code, found := f.Src.Code(sl.V)
		switch n.Op {
		case OpEQ:
			if !found {
				return systolic.C(0), nil
			}
			return systolic.EQ(systolic.In(i), systolic.C(code)), nil
		case OpNE:
			if !found {
				return systolic.C(1), nil
			}
			return systolic.Sub(systolic.C(1), systolic.EQ(systolic.In(i), systolic.C(code))), nil
		default:
			// Ordered string comparisons work because codes are assigned
			// in lexicographic order. When the literal is absent from the
			// dictionary, lo is the first code whose string exceeds it,
			// so <= and < collapse to "< lo", and > and >= to ">= lo".
			if found {
				return l.cmpLowered(n.Op, systolic.In(i), systolic.C(code))
			}
			lo, _ := f.Src.CodeRangeForPrefix(sl.V)
			switch n.Op {
			case OpLT, OpLE:
				return systolic.LT(systolic.In(i), systolic.C(lo)), nil
			case OpGT, OpGE:
				return systolic.Sub(systolic.C(1),
					systolic.LT(systolic.In(i), systolic.C(lo))), nil
			default:
				return nil, fmt.Errorf("plan: bad string comparison %s", n.Op)
			}
		}
	}
	if _, ok := n.L.(Str); ok {
		// Normalize literal-first comparisons: a op b == b flip(op) a.
		return l.lowerBin(Bin{Op: flipCmp(n.Op), L: n.R, R: n.L})
	}
	lhs, err := l.lower(n.L)
	if err != nil {
		return nil, err
	}
	rhs, err := l.lower(n.R)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpAdd:
		return systolic.Add(lhs, rhs), nil
	case OpSub:
		return systolic.Sub(lhs, rhs), nil
	case OpMul:
		return systolic.Mul(lhs, rhs), nil
	case OpDiv:
		return systolic.Div(lhs, rhs), nil
	case OpDecMul:
		return systolic.Div(systolic.Mul(lhs, rhs), systolic.C(col.DecimalScale)), nil
	case OpAnd:
		return systolic.Mul(lhs, rhs), nil
	case OpOr:
		// a or b == a + b - a*b for 0/1 operands.
		return systolic.Sub(systolic.Add(lhs, rhs), systolic.Mul(lhs, rhs)), nil
	default:
		return l.cmpLowered(n.Op, lhs, rhs)
	}
}

func (l *lowerer) cmpLowered(op BinOp, lhs, rhs systolic.Expr) (systolic.Expr, error) {
	switch op {
	case OpEQ:
		return systolic.EQ(lhs, rhs), nil
	case OpNE:
		return systolic.Sub(systolic.C(1), systolic.EQ(lhs, rhs)), nil
	case OpLT:
		return systolic.LT(lhs, rhs), nil
	case OpGT:
		return systolic.GT(lhs, rhs), nil
	case OpLE:
		return systolic.Sub(systolic.C(1), systolic.GT(lhs, rhs)), nil
	case OpGE:
		return systolic.Sub(systolic.C(1), systolic.LT(lhs, rhs)), nil
	default:
		return nil, fmt.Errorf("plan: bad comparison op %s", op)
	}
}

func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLT:
		return OpGT
	case OpGT:
		return OpLT
	case OpLE:
		return OpGE
	case OpGE:
		return OpLE
	default:
		return op // EQ, NE symmetric
	}
}

func (l *lowerer) lowerLike(n Like) (systolic.Expr, error) {
	i, f, err := l.colIndex(n.Col)
	if err != nil {
		return nil, err
	}
	if f.Typ != col.Dict || f.Src == nil {
		return nil, &TextError{Col: n.Col}
	}
	pat := regexcc.Compile(n.Pattern)
	var e systolic.Expr
	if prefix, ok := pat.IsPrefix(); ok {
		lo, hi := f.Src.CodeRangeForPrefix(prefix)
		if lo >= hi {
			e = systolic.C(0)
		} else {
			// lo <= c < hi  ==  !(c < lo) * (c < hi)
			e = systolic.Mul(
				systolic.Sub(systolic.C(1), systolic.LT(systolic.In(i), systolic.C(lo))),
				systolic.LT(systolic.In(i), systolic.C(hi)))
		}
	} else {
		matches := pat.MatchDict(f.Src.Dict())
		var codes []int64
		for c, ok := range matches {
			if ok {
				codes = append(codes, int64(c))
			}
		}
		if len(codes) == 0 {
			e = systolic.C(0)
		} else {
			e = lowerMembership(systolic.In(i), codes)
		}
	}
	if n.Negate {
		e = systolic.Sub(systolic.C(1), e)
	}
	return e, nil
}

// lowerMembership builds an OR-of-equalities membership test, collapsing
// contiguous runs into range tests.
func lowerMembership(e systolic.Expr, vs []int64) systolic.Expr {
	sorted := append([]int64(nil), vs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// Deduplicate so the disjoint-term sum stays 0/1.
	dedup := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			dedup = append(dedup, v)
		}
	}
	sorted = dedup
	var terms []systolic.Expr
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] <= sorted[j]+1 {
			j++
		}
		if j-i >= 2 {
			lo, hi := sorted[i], sorted[j]
			terms = append(terms, systolic.Mul(
				systolic.Sub(systolic.C(1), systolic.LT(e, systolic.C(lo))),
				systolic.Sub(systolic.C(1), systolic.GT(e, systolic.C(hi)))))
		} else {
			for k := i; k <= j; k++ {
				terms = append(terms, systolic.EQ(e, systolic.C(sorted[k])))
			}
		}
		i = j + 1
	}
	out := terms[0]
	for _, t := range terms[1:] {
		// Disjoint terms: plain sum stays 0/1.
		out = systolic.Add(out, t)
	}
	return out
}
