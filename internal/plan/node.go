package plan

import (
	"fmt"

	"aquoman/internal/col"
)

// Node is a logical relational operator. Output schemas are computed
// bottom-up by Bind, which resolves names against the store's catalog.
type Node interface {
	node()
	// Schema returns the operator's output schema (valid after Bind).
	Schema() Schema
	// Inputs returns child operators.
	Inputs() []Node
}

// Scan reads named columns of a base table. The pseudo-column "@rowid"
// exposes the implicit RowID; "<fk>@rowid" columns expose materialized
// foreign-key join indices.
type Scan struct {
	Table string
	Cols  []string

	schema Schema
	// Tab is resolved by Bind.
	Tab *col.Table
}

// Filter keeps rows where Pred is nonzero.
type Filter struct {
	Input Node
	Pred  Expr
}

// NamedExpr is one projected output column. Typ documents the output type
// for display; zero value means "inherit/int64".
type NamedExpr struct {
	Name string
	E    Expr
	Typ  col.Type
}

// Project computes new columns.
type Project struct {
	Input Node
	Exprs []NamedExpr

	schema Schema
}

// JoinKind selects the join semantics.
type JoinKind int

const (
	// InnerJoin emits the concatenation of matching rows.
	InnerJoin JoinKind = iota
	// SemiJoin emits left rows with at least one match.
	SemiJoin
	// AntiJoin emits left rows with no match.
	AntiJoin
	// LeftMarkJoin emits one row per (left, match) pair plus unmatched
	// left rows, with an extra 0/1 column "@matched" (used for outer
	// counting as in q13).
	LeftMarkJoin
)

func (k JoinKind) String() string {
	return [...]string{"inner", "semi", "anti", "leftmark"}[k]
}

// Join is a multi-key equi-join with an optional extra predicate evaluated
// on the concatenated schema (for q21-style correlated inequalities).
type Join struct {
	Kind  JoinKind
	L, R  Node
	LKeys []string
	RKeys []string
	// Extra, if non-nil, must also hold for a pair to count as a match.
	Extra Expr

	schema Schema
}

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	AggSum AggFunc = iota
	AggMin
	AggMax
	AggCount // COUNT(*) when E == nil
	AggCountDistinct
	AggAvg
)

func (f AggFunc) String() string {
	return [...]string{"sum", "min", "max", "count", "count_distinct", "avg"}[f]
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Func AggFunc
	E    Expr // nil for COUNT(*)
	Name string
	Typ  col.Type
}

// GroupBy groups by key columns (empty Keys = single-group scalar
// aggregation) and computes aggregates.
type GroupBy struct {
	Input Node
	Keys  []string
	Aggs  []AggSpec

	schema Schema
}

// OrderKey is one sort key.
type OrderKey struct {
	Name string
	Desc bool
}

// OrderBy sorts rows.
type OrderBy struct {
	Input Node
	Keys  []OrderKey
}

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int
}

// Materialized is a subtree replaced by an already-computed result —
// the hand-off point between an offloaded AQUOMAN program and the
// residual host plan. Cols are filled in by the AQUOMAN runtime before
// the host engine executes the residual tree.
type Materialized struct {
	S    Schema
	Cols [][]int64
	// Label identifies the offload unit for traces.
	Label string
}

func (*Materialized) node()            {}
func (n *Materialized) Schema() Schema { return n.S }
func (n *Materialized) Inputs() []Node { return nil }

// ScalarJoin attaches the single value produced by Sub (one row, one
// column) to every row of Input as column Name — the decorrelated form of
// scalar subqueries (q11, q15, q22).
type ScalarJoin struct {
	Input Node
	Sub   Node
	Name  string

	schema Schema
}

func (*Scan) node()       {}
func (*Filter) node()     {}
func (*Project) node()    {}
func (*Join) node()       {}
func (*GroupBy) node()    {}
func (*OrderBy) node()    {}
func (*Limit) node()      {}
func (*ScalarJoin) node() {}

func (n *Scan) Schema() Schema    { return n.schema }
func (n *Filter) Schema() Schema  { return n.Input.Schema() }
func (n *Project) Schema() Schema { return n.schema }
func (n *Join) Schema() Schema    { return n.schema }
func (n *GroupBy) Schema() Schema { return n.schema }
func (n *OrderBy) Schema() Schema { return n.Input.Schema() }
func (n *Limit) Schema() Schema   { return n.Input.Schema() }
func (n *ScalarJoin) Schema() Schema {
	return n.schema
}

func (n *Scan) Inputs() []Node       { return nil }
func (n *Filter) Inputs() []Node     { return []Node{n.Input} }
func (n *Project) Inputs() []Node    { return []Node{n.Input} }
func (n *Join) Inputs() []Node       { return []Node{n.L, n.R} }
func (n *GroupBy) Inputs() []Node    { return []Node{n.Input} }
func (n *OrderBy) Inputs() []Node    { return []Node{n.Input} }
func (n *Limit) Inputs() []Node      { return []Node{n.Input} }
func (n *ScalarJoin) Inputs() []Node { return []Node{n.Input, n.Sub} }

// MatchedCol is the implicit mark column added by LeftMarkJoin.
const MatchedCol = "@matched"

// RowIDCol is the pseudo-column exposing a table's implicit row id.
const RowIDCol = "@rowid"

// Bind resolves the tree against the store catalog, computing schemas.
func Bind(n Node, store *col.Store) error {
	for _, in := range n.Inputs() {
		if err := Bind(in, store); err != nil {
			return err
		}
	}
	switch t := n.(type) {
	case *Scan:
		tab, err := store.Table(t.Table)
		if err != nil {
			return err
		}
		t.Tab = tab
		t.schema = nil
		for _, name := range t.Cols {
			if name == RowIDCol {
				t.schema = append(t.schema, Field{Name: RowIDCol, Typ: col.RowID})
				continue
			}
			ci, err := tab.Column(name)
			if err != nil {
				return err
			}
			f := Field{Name: name, Typ: ci.Def.Typ}
			if ci.Def.Typ.IsString() {
				f.Src = ci
			}
			t.schema = append(t.schema, f)
		}
	case *Filter:
		// Validate the predicate lowers (Text predicates are allowed at
		// execution time; only name errors are caught here).
		if _, err := Lower(t.Pred, t.Input.Schema()); err != nil {
			if _, ok := err.(*TextError); !ok {
				return err
			}
		}
	case *Project:
		t.schema = nil
		for _, ne := range t.Exprs {
			f := Field{Name: ne.Name, Typ: ne.Typ}
			// Column pass-throughs inherit type and dictionary.
			if c, ok := ne.E.(Col); ok {
				src, err := t.Input.Schema().Field(c.Name)
				if err != nil {
					return err
				}
				if f.Typ == col.Int64 || f.Typ == 0 {
					f.Typ = src.Typ
				}
				f.Src = src.Src
			}
			t.schema = append(t.schema, f)
		}
	case *Join:
		if len(t.LKeys) != len(t.RKeys) || len(t.LKeys) == 0 {
			return fmt.Errorf("plan: join needs matching key lists, got %v vs %v", t.LKeys, t.RKeys)
		}
		ls, rs := t.L.Schema(), t.R.Schema()
		for _, k := range t.LKeys {
			if ls.Index(k) < 0 {
				return fmt.Errorf("plan: left join key %q not in %s", k, ls)
			}
		}
		for _, k := range t.RKeys {
			if rs.Index(k) < 0 {
				return fmt.Errorf("plan: right join key %q not in %s", k, rs)
			}
		}
		switch t.Kind {
		case SemiJoin, AntiJoin:
			t.schema = ls
		case LeftMarkJoin:
			t.schema = append(append(Schema{}, ls...), rs...)
			t.schema = append(t.schema, Field{Name: MatchedCol, Typ: col.Bool})
		default:
			t.schema = append(append(Schema{}, ls...), rs...)
		}
		for i, f := range t.schema {
			for _, g := range t.schema[i+1:] {
				if f.Name == g.Name {
					return fmt.Errorf("plan: join output has duplicate column %q", f.Name)
				}
			}
		}
	case *GroupBy:
		in := t.Input.Schema()
		t.schema = nil
		for _, k := range t.Keys {
			f, err := in.Field(k)
			if err != nil {
				return err
			}
			t.schema = append(t.schema, f)
		}
		for _, a := range t.Aggs {
			typ := a.Typ
			if typ == 0 {
				typ = col.Int64
			}
			t.schema = append(t.schema, Field{Name: a.Name, Typ: typ})
		}
	case *OrderBy:
		in := t.Input.Schema()
		for _, k := range t.Keys {
			if in.Index(k.Name) < 0 {
				return fmt.Errorf("plan: order key %q not in %s", k.Name, in)
			}
		}
	case *Limit:
		if t.N < 0 {
			return fmt.Errorf("plan: negative limit %d", t.N)
		}
	case *Materialized:
		// Nothing to resolve; the schema is fixed by the producer.
	case *ScalarJoin:
		sub := t.Sub.Schema()
		if len(sub) != 1 {
			return fmt.Errorf("plan: scalar subquery must have one column, got %s", sub)
		}
		t.schema = append(append(Schema{}, t.Input.Schema()...),
			Field{Name: t.Name, Typ: sub[0].Typ})
	default:
		return fmt.Errorf("plan: unknown node %T", n)
	}
	return nil
}

// Walk visits the tree depth-first, children before parents.
func Walk(n Node, fn func(Node)) {
	for _, in := range n.Inputs() {
		Walk(in, fn)
	}
	fn(n)
}

// BaseTables returns the distinct base tables scanned by the tree.
func BaseTables(n Node) []string {
	seen := map[string]bool{}
	var out []string
	Walk(n, func(m Node) {
		if s, ok := m.(*Scan); ok && !seen[s.Table] {
			seen[s.Table] = true
			out = append(out, s.Table)
		}
	})
	return out
}
