// Package flash simulates the NAND flash device AQUOMAN is embedded in.
//
// The paper's prototype (BlueDBM) exposes a 1 TB open-channel flash array
// with 8 KB page access granularity, 2.4 GB/s read and 0.8 GB/s write
// bandwidth, and a flash-command queue of depth 128. Both the x86 host and
// AQUOMAN access NAND through a flash controller switch that arbitrates
// page reads, page writes, and block erases (Fig. 3).
//
// This package reproduces that device as an in-memory page store with exact
// byte-level content plus per-requester traffic accounting. The accounting
// (pages read sequentially vs. randomly, per requester) is what the timing
// model in internal/perf converts into simulated seconds, mirroring the
// paper's trace-based simulator.
//
// Reads are fallible: an optional FaultInjector (see internal/faults) can
// fail, stall, or permanently poison page reads, and the device absorbs
// transient failures with a budgeted exponential-backoff retry loop before
// surfacing an error to the read path. Backoff time is accounted (Stats
// StallNanos), not slept, so fault schedules replay deterministically.
package flash

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aquoman/internal/obs"
)

// Device geometry and rate constants from Sec. VII of the paper.
const (
	// PageSize is the flash page access granularity in bytes.
	PageSize = 8192
	// QueueDepth is the flash command queue depth; it sizes the Row-Mask
	// Vector circular buffer (Sec. VI: 128 in-flight pages => 32K 32-row
	// vectors of mask state).
	QueueDepth = 128
	// ReadBandwidth is the sustained read rate in bytes/second.
	ReadBandwidth = 2.4e9
	// WriteBandwidth is the sustained write rate in bytes/second.
	WriteBandwidth = 0.8e9
)

// Requester identifies which side of the controller switch issued an I/O.
type Requester int

const (
	// Host I/O arrives through the legacy OS stack (filesystem + block
	// device driver in Fig. 3).
	Host Requester = iota
	// Aquoman I/O is issued by the in-storage accelerator itself.
	Aquoman
	numRequesters
)

// NumRequesters is the number of controller-switch requesters (exported
// for per-requester accounting in other packages, e.g. internal/faults).
const NumRequesters = int(numRequesters)

func (r Requester) String() string {
	switch r {
	case Host:
		return "host"
	case Aquoman:
		return "aquoman"
	default:
		return fmt.Sprintf("requester(%d)", int(r))
	}
}

// FaultInjector decides the fate of individual page-read attempts. It is
// consulted once per touched page per attempt; returning a non-nil error
// fails the attempt, and a positive stall models a latency spike on a
// successful read. Implementations whose errors expose a
// `Transient() bool` method (internal/faults.Error does) participate in
// the device's retry loop; other errors fail immediately.
type FaultInjector interface {
	ReadFault(file string, page int64, who Requester, attempt int) (stall time.Duration, err error)
}

// PageCacher is the seam where a shared page cache (internal/sched's
// LRU PageCache) plugs in front of the device. When one is installed via
// SetPageCache, every File read is served page-wise through it: a cached
// page costs no device I/O — no traffic accounting, no fault-injector
// consultation, no read latency — while a miss calls read, which performs
// exactly one real device page read. Implementations must coalesce
// concurrent misses on the same page into a single read call and must not
// cache the result of a failed read.
type PageCacher interface {
	// GetPage returns the content of page `page` of the named file. On a
	// miss it calls read (exactly once per coalesced group of concurrent
	// misses) and caches the result only if read returned nil error. The
	// returned slice is shared — callers must copy, not mutate. ctx (which
	// may be nil) carries the requesting query's obs.Lifecycle so the cache
	// can attribute hit / coalesce-wait / device-read time; it is not used
	// for cancellation — fills complete so coalesced waiters are served.
	GetPage(ctx context.Context, file string, page int64, read func() ([]byte, error)) ([]byte, error)
	// InvalidatePages drops the cached pages [first, last] of file after
	// the underlying bytes changed.
	InvalidatePages(file string, first, last int64)
	// InvalidateFile drops every cached page of file (Create/Remove).
	InvalidateFile(file string)
}

// RetryPolicy bounds the device's page-read retry loop. A transient fault
// is retried up to Budget times with exponential backoff (BaseDelay
// doubled per attempt, capped at MaxDelay); backoff time is accounted in
// Stats.StallNanos rather than slept.
type RetryPolicy struct {
	// Budget is the maximum retries per page read (0 = fail on first error).
	Budget int
	// BaseDelay is the first backoff; it doubles each retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
}

// DefaultRetryPolicy mirrors firmware ECC retry behaviour: a handful of
// re-reads with microsecond-scale backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Budget: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: 10 * time.Millisecond}
}

// backoff returns the delay before retry number attempt (0-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// transienter is the marker interface retryable fault errors implement.
type transienter interface{ Transient() bool }

// isTransient reports whether err may clear on retry.
func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// Stats is a snapshot of traffic through the controller switch.
type Stats struct {
	// PagesRead counts 8 KB page reads per requester.
	PagesRead [numRequesters]int64
	// PagesReadRandom counts page reads that broke the requester's
	// sequential stream on a file (gathers by RowID land here).
	PagesReadRandom [numRequesters]int64
	// PagesWritten counts page-granular writes per requester.
	PagesWritten [numRequesters]int64
	// PagesWrittenRandom counts writes that broke the requester's
	// sequential write stream on a file — the write-amplification
	// counterpart of PagesReadRandom (in-place updates land here,
	// appends stay sequential).
	PagesWrittenRandom [numRequesters]int64

	// ReadFaults counts injected page-read failures observed (each failed
	// attempt, including ones later absorbed by a retry).
	ReadFaults [numRequesters]int64
	// ReadRetries counts retry attempts issued by the backoff loop.
	ReadRetries [numRequesters]int64
	// ReadsFailed counts page reads abandoned after exhausting the retry
	// budget or hitting a non-transient fault.
	ReadsFailed [numRequesters]int64
	// SlowReads counts reads that hit an injected latency spike.
	SlowReads [numRequesters]int64
	// StallNanos accumulates simulated stall time: injected read latency
	// plus retry backoff.
	StallNanos [numRequesters]int64
}

// BytesRead returns total bytes read by r.
func (s Stats) BytesRead(r Requester) int64 { return s.PagesRead[r] * PageSize }

// BytesWritten returns total bytes written by r.
func (s Stats) BytesWritten(r Requester) int64 { return s.PagesWritten[r] * PageSize }

// TotalPagesRead returns page reads summed over requesters.
func (s Stats) TotalPagesRead() int64 {
	var t int64
	for _, v := range s.PagesRead {
		t += v
	}
	return t
}

// TotalReadFaults returns injected read failures summed over requesters.
func (s Stats) TotalReadFaults() int64 {
	var t int64
	for _, v := range s.ReadFaults {
		t += v
	}
	return t
}

// TotalReadRetries returns retry attempts summed over requesters.
func (s Stats) TotalReadRetries() int64 {
	var t int64
	for _, v := range s.ReadRetries {
		t += v
	}
	return t
}

// Sub returns s - o, counter-wise (used to extract a per-query trace).
func (s Stats) Sub(o Stats) Stats {
	var r Stats
	for i := 0; i < int(numRequesters); i++ {
		r.PagesRead[i] = s.PagesRead[i] - o.PagesRead[i]
		r.PagesReadRandom[i] = s.PagesReadRandom[i] - o.PagesReadRandom[i]
		r.PagesWritten[i] = s.PagesWritten[i] - o.PagesWritten[i]
		r.PagesWrittenRandom[i] = s.PagesWrittenRandom[i] - o.PagesWrittenRandom[i]
		r.ReadFaults[i] = s.ReadFaults[i] - o.ReadFaults[i]
		r.ReadRetries[i] = s.ReadRetries[i] - o.ReadRetries[i]
		r.ReadsFailed[i] = s.ReadsFailed[i] - o.ReadsFailed[i]
		r.SlowReads[i] = s.SlowReads[i] - o.SlowReads[i]
		r.StallNanos[i] = s.StallNanos[i] - o.StallNanos[i]
	}
	return r
}

// Delta is Sub with before/after naming: d = after.Delta(before).
func (s Stats) Delta(before Stats) Stats { return s.Sub(before) }

// Device is a simulated flash drive holding named files. It is safe for
// concurrent use; the controller switch serializes command accounting.
type Device struct {
	mu        sync.Mutex
	files     map[string]*File
	stats     Stats
	fileStats map[string]*Stats

	// gens counts content mutations per file name: bumped on Create,
	// Remove, and every Append/WriteAt. Consumers that cache derived
	// results (the query result cache) bake the generation captured at
	// lookup into their keys, so a mutation strands every stale entry
	// instead of racing an explicit invalidation. Counters survive
	// Remove/Create cycles on the same name — a re-created file must not
	// resurrect generation numbers older entries were keyed under.
	gens map[string]uint64

	faults FaultInjector
	retry  RetryPolicy
	cache  PageCacher

	// readLatencyNs, when positive, is slept per device page read — an
	// opt-in wall-clock pacing of NAND read latency (tR) that makes
	// concurrency benchmarks overlap I/O the way a real device does.
	// Off (0) by default so tests and simulations stay deterministic.
	readLatencyNs atomic.Int64

	// metrics mirrors the traffic counters into an obs registry (nil
	// counters no-op, so the account path is branch-free when
	// observability is off).
	metrics struct {
		pagesRead          [numRequesters]*obs.Counter
		pagesReadRandom    [numRequesters]*obs.Counter
		pagesWritten       [numRequesters]*obs.Counter
		pagesWrittenRandom [numRequesters]*obs.Counter
		readFaults         [numRequesters]*obs.Counter
		readRetries        [numRequesters]*obs.Counter
		readsFailed        [numRequesters]*obs.Counter
		slowReads          [numRequesters]*obs.Counter
		stallNanos         [numRequesters]*obs.Counter
		files              *obs.Gauge
	}
}

// NewDevice returns an empty flash device with the default retry policy
// and no fault injector.
func NewDevice() *Device {
	return &Device{
		files:     make(map[string]*File),
		fileStats: make(map[string]*Stats),
		gens:      make(map[string]uint64),
		retry:     DefaultRetryPolicy(),
	}
}

// SetFaults plugs a fault injector into the device's read path (nil
// detaches it). Call with the device idle.
func (d *Device) SetFaults(fi FaultInjector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults = fi
}

// Faults returns the installed fault injector (nil when fault-free).
func (d *Device) Faults() FaultInjector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// SetPageCache installs a page cache in front of the device's read path
// (nil detaches it). Install with the device idle: pages already being
// read bypass the cache. Traffic accounting changes meaning under a
// cache — Stats counts only device reads (misses), which is exactly what
// the single-flight and offload models want.
func (d *Device) SetPageCache(c PageCacher) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache = c
}

// PageCache returns the installed page cache (nil when none).
func (d *Device) PageCache() PageCacher {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache
}

// SetReadLatency sets the wall-clock latency slept per device page read
// (0, the default, sleeps never). Cached page hits skip it — they never
// reach the device.
func (d *Device) SetReadLatency(perPage time.Duration) {
	d.readLatencyNs.Store(int64(perPage))
}

// ReadLatency returns the per-page read latency.
func (d *Device) ReadLatency() time.Duration {
	return time.Duration(d.readLatencyNs.Load())
}

// throttle sleeps the configured read latency for n device page reads.
func (d *Device) throttle(n int64) {
	_ = d.throttleCtx(nil, n)
}

// SetRetryPolicy replaces the page-read retry policy.
func (d *Device) SetRetryPolicy(p RetryPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.retry = p
}

// RetryPolicy returns the active page-read retry policy.
func (d *Device) RetryPolicy() RetryPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retry
}

// Observe mirrors the device's traffic counters into reg under the
// flash_* metric families, labeled per requester plus any extra
// alternating key/value labels (distrib clusters add device=N). Passing
// a nil registry detaches the device from metrics again.
func (d *Device) Observe(reg *obs.Registry, extraLabels ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for r := Requester(0); r < numRequesters; r++ {
		labels := append([]string{"requester", r.String()}, extraLabels...)
		if reg == nil {
			d.metrics.pagesRead[r] = nil
			d.metrics.pagesReadRandom[r] = nil
			d.metrics.pagesWritten[r] = nil
			d.metrics.pagesWrittenRandom[r] = nil
			d.metrics.readFaults[r] = nil
			d.metrics.readRetries[r] = nil
			d.metrics.readsFailed[r] = nil
			d.metrics.slowReads[r] = nil
			d.metrics.stallNanos[r] = nil
			continue
		}
		d.metrics.pagesRead[r] = reg.Counter("flash_pages_read_total", labels...)
		d.metrics.pagesReadRandom[r] = reg.Counter("flash_pages_read_random_total", labels...)
		d.metrics.pagesWritten[r] = reg.Counter("flash_pages_written_total", labels...)
		d.metrics.pagesWrittenRandom[r] = reg.Counter("flash_pages_written_random_total", labels...)
		d.metrics.readFaults[r] = reg.Counter("flash_read_faults_total", labels...)
		d.metrics.readRetries[r] = reg.Counter("flash_read_retries_total", labels...)
		d.metrics.readsFailed[r] = reg.Counter("flash_reads_failed_total", labels...)
		d.metrics.slowReads[r] = reg.Counter("flash_slow_reads_total", labels...)
		d.metrics.stallNanos[r] = reg.Counter("flash_stall_nanos_total", labels...)
	}
	if reg == nil {
		d.metrics.files = nil
	} else {
		d.metrics.files = reg.Gauge("flash_files", extraLabels...)
		d.metrics.files.Set(int64(len(d.files)))
	}
	if reg == nil {
		return
	}
	// Seed the counters with the traffic already accounted, so registry
	// deltas stay consistent with Stats().Sub for in-flight devices.
	for r := Requester(0); r < numRequesters; r++ {
		d.metrics.pagesRead[r].Add(d.stats.PagesRead[r] - d.metrics.pagesRead[r].Value())
		d.metrics.pagesReadRandom[r].Add(d.stats.PagesReadRandom[r] - d.metrics.pagesReadRandom[r].Value())
		d.metrics.pagesWritten[r].Add(d.stats.PagesWritten[r] - d.metrics.pagesWritten[r].Value())
		d.metrics.pagesWrittenRandom[r].Add(d.stats.PagesWrittenRandom[r] - d.metrics.pagesWrittenRandom[r].Value())
		d.metrics.readFaults[r].Add(d.stats.ReadFaults[r] - d.metrics.readFaults[r].Value())
		d.metrics.readRetries[r].Add(d.stats.ReadRetries[r] - d.metrics.readRetries[r].Value())
		d.metrics.readsFailed[r].Add(d.stats.ReadsFailed[r] - d.metrics.readsFailed[r].Value())
		d.metrics.slowReads[r].Add(d.stats.SlowReads[r] - d.metrics.slowReads[r].Value())
		d.metrics.stallNanos[r].Add(d.stats.StallNanos[r] - d.metrics.stallNanos[r].Value())
	}
}

// File is a byte-addressable flash-backed file. Content is stored exactly;
// reads and writes are accounted at page granularity.
type File struct {
	dev  *Device
	name string

	mu        sync.Mutex
	data      []byte
	lastRead  [numRequesters]int64 // next sequential page per requester, -1 if none
	lastWrite [numRequesters]int64 // next sequential write page per requester, -1 if none
}

// Create creates (or truncates) a file. Any stats previously attributed to
// a file of the same name are discarded — a re-created file starts with a
// clean per-file ledger.
func (d *Device) Create(name string) *File {
	d.mu.Lock()
	f := &File{dev: d, name: name}
	for i := range f.lastRead {
		f.lastRead[i] = -1
		f.lastWrite[i] = -1
	}
	d.files[name] = f
	delete(d.fileStats, name)
	d.gens[name]++
	d.metrics.files.Set(int64(len(d.files)))
	cache := d.cache
	d.mu.Unlock()
	if cache != nil {
		cache.InvalidateFile(name)
	}
	return f
}

// Open returns the named file.
func (d *Device) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("flash: open %s: no such file", name)
	}
	return f, nil
}

// Exists reports whether a file of that name exists.
func (d *Device) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Remove deletes a file and drops its per-file stats attribution, so a
// later file of the same name starts from zero counters. Removing a
// missing file is a no-op.
func (d *Device) Remove(name string) {
	d.mu.Lock()
	delete(d.files, name)
	delete(d.fileStats, name)
	d.gens[name]++
	d.metrics.files.Set(int64(len(d.files)))
	cache := d.cache
	d.mu.Unlock()
	if cache != nil {
		cache.InvalidateFile(name)
	}
}

// Generation returns the mutation counter for a file name: 0 until the
// file is first created, bumped by Create, Remove, and every write.
// Comparing generations captured at two points in time tells a caller
// whether the file's content could have changed in between.
func (d *Device) Generation(name string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gens[name]
}

// bumpGen records one content mutation of the named file.
func (d *Device) bumpGen(name string) {
	d.mu.Lock()
	d.gens[name]++
	d.mu.Unlock()
}

// Files returns the names of all files in deterministic order.
func (d *Device) Files() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the summed content size of all files.
func (d *Device) TotalBytes() int64 {
	d.mu.Lock()
	files := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	var t int64
	for _, f := range files {
		t += f.Size()
	}
	return t
}

// Stats returns a snapshot of the device traffic counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// FileStats returns the traffic attributed to the named file (zero for
// unknown files). Attribution follows the name: Remove/Create reset it.
func (d *Device) FileStats(name string) Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.fileStats[name]; ok {
		return *s
	}
	return Stats{}
}

// ResetStats zeroes the traffic counters (device-wide and per-file) and
// sequential-read state (used between experiments).
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.fileStats = make(map[string]*Stats)
	files := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	for _, f := range files {
		f.mu.Lock()
		for i := range f.lastRead {
			f.lastRead[i] = -1
			f.lastWrite[i] = -1
		}
		f.mu.Unlock()
	}
}

// fileStatsLocked returns the per-file ledger for name. Caller holds d.mu.
func (d *Device) fileStatsLocked(name string) *Stats {
	s, ok := d.fileStats[name]
	if !ok {
		s = &Stats{}
		d.fileStats[name] = s
	}
	return s
}

func (d *Device) account(file string, who Requester, pagesRead, readRandom, pagesWritten, writeRandom int64) {
	d.mu.Lock()
	d.stats.PagesRead[who] += pagesRead
	d.stats.PagesReadRandom[who] += readRandom
	d.stats.PagesWritten[who] += pagesWritten
	d.stats.PagesWrittenRandom[who] += writeRandom
	fs := d.fileStatsLocked(file)
	fs.PagesRead[who] += pagesRead
	fs.PagesReadRandom[who] += readRandom
	fs.PagesWritten[who] += pagesWritten
	fs.PagesWrittenRandom[who] += writeRandom
	// Counter handles are captured under the lock (Observe may rebind
	// them); the Adds themselves are atomic and happen outside it.
	pr, prr := d.metrics.pagesRead[who], d.metrics.pagesReadRandom[who]
	pw, pwr := d.metrics.pagesWritten[who], d.metrics.pagesWrittenRandom[who]
	d.mu.Unlock()
	if pagesRead > 0 {
		pr.Add(pagesRead)
	}
	if readRandom > 0 {
		prr.Add(readRandom)
	}
	if pagesWritten > 0 {
		pw.Add(pagesWritten)
	}
	if writeRandom > 0 {
		pwr.Add(writeRandom)
	}
}

// faultEvent classifies fault-path accounting updates.
type faultEvent int

const (
	evFault faultEvent = iota
	evRetry
	evFailed
	evSlow
)

func (d *Device) accountFault(file string, who Requester, ev faultEvent, stall time.Duration) {
	d.mu.Lock()
	fs := d.fileStatsLocked(file)
	var c *obs.Counter
	switch ev {
	case evFault:
		d.stats.ReadFaults[who]++
		fs.ReadFaults[who]++
		c = d.metrics.readFaults[who]
	case evRetry:
		d.stats.ReadRetries[who]++
		fs.ReadRetries[who]++
		c = d.metrics.readRetries[who]
	case evFailed:
		d.stats.ReadsFailed[who]++
		fs.ReadsFailed[who]++
		c = d.metrics.readsFailed[who]
	case evSlow:
		d.stats.SlowReads[who]++
		fs.SlowReads[who]++
		c = d.metrics.slowReads[who]
	}
	var sc *obs.Counter
	if stall > 0 {
		d.stats.StallNanos[who] += int64(stall)
		fs.StallNanos[who] += int64(stall)
		sc = d.metrics.stallNanos[who]
	}
	d.mu.Unlock()
	c.Inc()
	if stall > 0 {
		sc.Add(int64(stall))
	}
}

// checkRead passes every page of [first, last] through the fault injector,
// absorbing transient failures with the retry policy. It returns nil when
// all pages are readable; the returned error wraps the injector's typed
// fault error.
func (d *Device) checkRead(file string, first, last int64, who Requester) error {
	d.mu.Lock()
	inj := d.faults
	pol := d.retry
	d.mu.Unlock()
	if inj == nil {
		return nil
	}
	for page := first; page <= last; page++ {
		attempt := 0
		for {
			stall, err := inj.ReadFault(file, page, who, attempt)
			if stall > 0 {
				d.accountFault(file, who, evSlow, stall)
			}
			if err == nil {
				break
			}
			d.accountFault(file, who, evFault, 0)
			if !isTransient(err) || attempt >= pol.Budget {
				d.accountFault(file, who, evFailed, 0)
				return fmt.Errorf("flash: read %s page %d (attempt %d): %w", file, page, attempt+1, err)
			}
			d.accountFault(file, who, evRetry, pol.backoff(attempt))
			attempt++
		}
	}
	return nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file content size in bytes.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// NumPages returns the number of flash pages the file occupies.
func (f *File) NumPages() int64 {
	return (f.Size() + PageSize - 1) / PageSize
}

// accountWrite updates the requester's sequential write stream and
// returns the page count and random-seek count of a write of n bytes at
// off. Caller holds f.mu.
func (f *File) accountWrite(who Requester, off, n int64) (pages, random int64) {
	first, last := off/PageSize, (off+n-1)/PageSize
	pages = last - first + 1
	// Re-touching the page the stream last ended on (partial-page appends)
	// stays sequential; any other jump is one seek, mirroring the read
	// side's stream model.
	if f.lastWrite[who] >= 0 && (first > f.lastWrite[who] || first < f.lastWrite[who]-1) {
		random = 1
	}
	f.lastWrite[who] = last + 1
	return pages, random
}

// invalidateWritten drops any cached pages the byte range [off, off+n)
// overlaps. Called after the content mutation is visible, so a racing
// reader either sees the new bytes or has its stale cache fill rejected
// by the cache's generation check.
func (f *File) invalidateWritten(off, n int64) {
	// The generation bump happens unconditionally — result-cache
	// fingerprints depend on it even when no page cache is installed —
	// and, like the page-cache invalidation, only after the mutation is
	// visible, so entries keyed under the old generation are stranded
	// rather than refreshed with mixed content.
	f.dev.bumpGen(f.name)
	if cache := f.dev.PageCache(); cache != nil {
		cache.InvalidatePages(f.name, off/PageSize, (off+n-1)/PageSize)
	}
}

// Append writes p at the end of the file, accounted to requester who.
func (f *File) Append(p []byte, who Requester) {
	if len(p) == 0 {
		return
	}
	f.mu.Lock()
	off := int64(len(f.data))
	f.data = append(f.data, p...)
	pages, random := f.accountWrite(who, off, int64(len(p)))
	f.mu.Unlock()
	f.dev.account(f.name, who, 0, 0, pages, random)
	f.invalidateWritten(off, int64(len(p)))
}

// WriteAt writes p at offset off (extending the file as needed).
func (f *File) WriteAt(p []byte, off int64, who Requester) {
	if len(p) == 0 {
		return
	}
	f.mu.Lock()
	end := off + int64(len(p))
	if int64(len(f.data)) < end {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[off:end], p)
	pages, random := f.accountWrite(who, off, int64(len(p)))
	f.mu.Unlock()
	f.dev.account(f.name, who, 0, 0, pages, random)
	f.invalidateWritten(off, int64(len(p)))
}

// ReadAt fills p from offset off, accounting every touched page to who.
// It returns the number of bytes read; reading past EOF returns the
// available prefix. When a fault injector is installed, every touched page
// is checked first (with transient failures retried under the device's
// retry policy); a failed page fails the whole read with a wrapped
// faults-typed error and no bytes are delivered.
func (f *File) ReadAt(p []byte, off int64, who Requester) (int, error) {
	if len(p) == 0 || off < 0 {
		return 0, nil
	}
	if cache := f.dev.PageCache(); cache != nil {
		return f.readCached(cache, p, off, who)
	}
	return f.readDirect(nil, p, off, who)
}

// readDirect performs an uncached read. A non-nil cancellable ctx makes
// the latency throttle interruptible; the read itself (and its
// accounting) is already committed by then, so a cut-short throttle
// returns the bytes read alongside the context error.
func (f *File) readDirect(ctx context.Context, p []byte, off int64, who Requester) (int, error) {
	// Uncached reads hit the device directly: fault check, copy, and
	// simulated NAND latency are all device-read time. Attributed with an
	// explicit start stamp rather than a deferred Timer closure so the hot
	// read path stays allocation-free.
	lc := obs.LifecycleFrom(ctx)
	var lcStart time.Time
	if lc != nil {
		lcStart = time.Now()
		defer func() { lc.Add(obs.StateDeviceRead, time.Since(lcStart)) }()
	}
	f.mu.Lock()
	size := int64(len(f.data))
	f.mu.Unlock()
	if off < size {
		n := int64(len(p))
		if n > size-off {
			n = size - off
		}
		if err := f.dev.checkRead(f.name, off/PageSize, (off+n-1)/PageSize, who); err != nil {
			return 0, err
		}
	}
	f.mu.Lock()
	n := 0
	if off < int64(len(f.data)) {
		n = copy(p, f.data[off:])
	}
	var pages, random int64
	if n > 0 {
		first, last := off/PageSize, (off+int64(n)-1)/PageSize
		pages = last - first + 1
		if f.lastRead[who] >= 0 && first > f.lastRead[who] {
			// Jumped forward past the sequential stream: one seek.
			random = 1
		} else if f.lastRead[who] >= 0 && first < f.lastRead[who]-1 {
			// Jumped backward: one seek.
			random = 1
		}
		f.lastRead[who] = last + 1
	}
	f.mu.Unlock()
	if n > 0 {
		f.dev.account(f.name, who, pages, random, 0, 0)
		if err := f.dev.throttleCtx(ctx, pages); err != nil {
			return n, err
		}
	}
	return n, nil
}

// readCached serves the byte range page-wise through the installed cache.
// Hits cost no device I/O; each miss performs exactly one real device
// page read (fault check, accounting, latency) via devicePageRead.
func (f *File) readCached(cache PageCacher, p []byte, off int64, who Requester) (int, error) {
	f.mu.Lock()
	size := int64(len(f.data))
	f.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	n := int64(len(p))
	if n > size-off {
		n = size - off
	}
	total := 0
	for page := off / PageSize; page <= (off+n-1)/PageSize; page++ {
		data, err := cache.GetPage(nil, f.name, page, func() ([]byte, error) {
			return f.devicePageRead(page, who)
		})
		if err != nil {
			return 0, err
		}
		pageStart := page * PageSize
		lo := off - pageStart
		if lo < 0 {
			lo = 0
		}
		hi := off + n - pageStart
		if hi > int64(len(data)) {
			hi = int64(len(data))
		}
		if hi <= lo {
			continue
		}
		total += copy(p[pageStart+lo-off:], data[lo:hi])
	}
	return total, nil
}

// devicePageRead is the cache's miss path: one real page read with fault
// check, traffic accounting, and read latency. The returned slice is a
// private copy (the cache shares it with future hits).
func (f *File) devicePageRead(page int64, who Requester) ([]byte, error) {
	return f.devicePageReadCtx(nil, page, who)
}

// devicePageReadCtx is devicePageRead with an interruptible latency
// throttle. The page content is still returned (and cached) when only
// the throttle was cut short — a concurrent reader coalesced on the same
// miss must not lose the page to another query's cancellation.
func (f *File) devicePageReadCtx(ctx context.Context, page int64, who Requester) ([]byte, error) {
	if err := f.dev.checkRead(f.name, page, page, who); err != nil {
		return nil, err
	}
	f.mu.Lock()
	var data []byte
	if lo := page * PageSize; lo < int64(len(f.data)) {
		hi := lo + PageSize
		if hi > int64(len(f.data)) {
			hi = int64(len(f.data))
		}
		data = append([]byte(nil), f.data[lo:hi]...)
	}
	var random int64
	if f.lastRead[who] >= 0 && (page > f.lastRead[who] || page < f.lastRead[who]-1) {
		random = 1
	}
	f.lastRead[who] = page + 1
	f.mu.Unlock()
	f.dev.account(f.name, who, 1, random, 0, 0)
	_ = f.dev.throttleCtx(ctx, 1)
	return data, nil
}

// ReadPage reads one whole page (the last page may be short). It is the
// primitive AQUOMAN's Table Reader uses; page skipping simply avoids the
// call.
func (f *File) ReadPage(page int64, who Requester) ([]byte, error) {
	buf := make([]byte, PageSize)
	n, err := f.ReadAt(buf, page*PageSize, who)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// PagesSpanned reports how many pages the byte range [off, off+n) touches.
func PagesSpanned(off, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (off+n-1)/PageSize - off/PageSize + 1
}
