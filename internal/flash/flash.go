// Package flash simulates the NAND flash device AQUOMAN is embedded in.
//
// The paper's prototype (BlueDBM) exposes a 1 TB open-channel flash array
// with 8 KB page access granularity, 2.4 GB/s read and 0.8 GB/s write
// bandwidth, and a flash-command queue of depth 128. Both the x86 host and
// AQUOMAN access NAND through a flash controller switch that arbitrates
// page reads, page writes, and block erases (Fig. 3).
//
// This package reproduces that device as an in-memory page store with exact
// byte-level content plus per-requester traffic accounting. The accounting
// (pages read sequentially vs. randomly, per requester) is what the timing
// model in internal/perf converts into simulated seconds, mirroring the
// paper's trace-based simulator.
package flash

import (
	"fmt"
	"sort"
	"sync"

	"aquoman/internal/obs"
)

// Device geometry and rate constants from Sec. VII of the paper.
const (
	// PageSize is the flash page access granularity in bytes.
	PageSize = 8192
	// QueueDepth is the flash command queue depth; it sizes the Row-Mask
	// Vector circular buffer (Sec. VI: 128 in-flight pages => 32K 32-row
	// vectors of mask state).
	QueueDepth = 128
	// ReadBandwidth is the sustained read rate in bytes/second.
	ReadBandwidth = 2.4e9
	// WriteBandwidth is the sustained write rate in bytes/second.
	WriteBandwidth = 0.8e9
)

// Requester identifies which side of the controller switch issued an I/O.
type Requester int

const (
	// Host I/O arrives through the legacy OS stack (filesystem + block
	// device driver in Fig. 3).
	Host Requester = iota
	// Aquoman I/O is issued by the in-storage accelerator itself.
	Aquoman
	numRequesters
)

func (r Requester) String() string {
	switch r {
	case Host:
		return "host"
	case Aquoman:
		return "aquoman"
	default:
		return fmt.Sprintf("requester(%d)", int(r))
	}
}

// Stats is a snapshot of traffic through the controller switch.
type Stats struct {
	// PagesRead counts 8 KB page reads per requester.
	PagesRead [numRequesters]int64
	// PagesReadRandom counts page reads that broke the requester's
	// sequential stream on a file (gathers by RowID land here).
	PagesReadRandom [numRequesters]int64
	// PagesWritten counts page-granular writes per requester.
	PagesWritten [numRequesters]int64
	// PagesWrittenRandom counts writes that broke the requester's
	// sequential write stream on a file — the write-amplification
	// counterpart of PagesReadRandom (in-place updates land here,
	// appends stay sequential).
	PagesWrittenRandom [numRequesters]int64
}

// BytesRead returns total bytes read by r.
func (s Stats) BytesRead(r Requester) int64 { return s.PagesRead[r] * PageSize }

// BytesWritten returns total bytes written by r.
func (s Stats) BytesWritten(r Requester) int64 { return s.PagesWritten[r] * PageSize }

// TotalPagesRead returns page reads summed over requesters.
func (s Stats) TotalPagesRead() int64 {
	var t int64
	for _, v := range s.PagesRead {
		t += v
	}
	return t
}

// Sub returns s - o, counter-wise (used to extract a per-query trace).
func (s Stats) Sub(o Stats) Stats {
	var r Stats
	for i := 0; i < int(numRequesters); i++ {
		r.PagesRead[i] = s.PagesRead[i] - o.PagesRead[i]
		r.PagesReadRandom[i] = s.PagesReadRandom[i] - o.PagesReadRandom[i]
		r.PagesWritten[i] = s.PagesWritten[i] - o.PagesWritten[i]
		r.PagesWrittenRandom[i] = s.PagesWrittenRandom[i] - o.PagesWrittenRandom[i]
	}
	return r
}

// Delta is Sub with before/after naming: d = after.Delta(before).
func (s Stats) Delta(before Stats) Stats { return s.Sub(before) }

// Device is a simulated flash drive holding named files. It is safe for
// concurrent use; the controller switch serializes command accounting.
type Device struct {
	mu    sync.Mutex
	files map[string]*File
	stats Stats

	// metrics mirrors the traffic counters into an obs registry (nil
	// counters no-op, so the account path is branch-free when
	// observability is off).
	metrics struct {
		pagesRead          [numRequesters]*obs.Counter
		pagesReadRandom    [numRequesters]*obs.Counter
		pagesWritten       [numRequesters]*obs.Counter
		pagesWrittenRandom [numRequesters]*obs.Counter
		files              *obs.Gauge
	}
}

// NewDevice returns an empty flash device.
func NewDevice() *Device {
	return &Device{files: make(map[string]*File)}
}

// Observe mirrors the device's traffic counters into reg under the
// flash_* metric families, labeled per requester plus any extra
// alternating key/value labels (distrib clusters add device=N). Passing
// a nil registry detaches the device from metrics again.
func (d *Device) Observe(reg *obs.Registry, extraLabels ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for r := Requester(0); r < numRequesters; r++ {
		labels := append([]string{"requester", r.String()}, extraLabels...)
		if reg == nil {
			d.metrics.pagesRead[r] = nil
			d.metrics.pagesReadRandom[r] = nil
			d.metrics.pagesWritten[r] = nil
			d.metrics.pagesWrittenRandom[r] = nil
			continue
		}
		d.metrics.pagesRead[r] = reg.Counter("flash_pages_read_total", labels...)
		d.metrics.pagesReadRandom[r] = reg.Counter("flash_pages_read_random_total", labels...)
		d.metrics.pagesWritten[r] = reg.Counter("flash_pages_written_total", labels...)
		d.metrics.pagesWrittenRandom[r] = reg.Counter("flash_pages_written_random_total", labels...)
	}
	if reg == nil {
		d.metrics.files = nil
	} else {
		d.metrics.files = reg.Gauge("flash_files", extraLabels...)
		d.metrics.files.Set(int64(len(d.files)))
	}
	// Seed the counters with the traffic already accounted, so registry
	// deltas stay consistent with Stats().Sub for in-flight devices.
	for r := Requester(0); r < numRequesters; r++ {
		d.metrics.pagesRead[r].Add(d.stats.PagesRead[r] - d.metrics.pagesRead[r].Value())
		d.metrics.pagesReadRandom[r].Add(d.stats.PagesReadRandom[r] - d.metrics.pagesReadRandom[r].Value())
		d.metrics.pagesWritten[r].Add(d.stats.PagesWritten[r] - d.metrics.pagesWritten[r].Value())
		d.metrics.pagesWrittenRandom[r].Add(d.stats.PagesWrittenRandom[r] - d.metrics.pagesWrittenRandom[r].Value())
	}
}

// File is a byte-addressable flash-backed file. Content is stored exactly;
// reads and writes are accounted at page granularity.
type File struct {
	dev  *Device
	name string

	mu        sync.Mutex
	data      []byte
	lastRead  [numRequesters]int64 // next sequential page per requester, -1 if none
	lastWrite [numRequesters]int64 // next sequential write page per requester, -1 if none
}

// Create creates (or truncates) a file.
func (d *Device) Create(name string) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &File{dev: d, name: name}
	for i := range f.lastRead {
		f.lastRead[i] = -1
		f.lastWrite[i] = -1
	}
	d.files[name] = f
	d.metrics.files.Set(int64(len(d.files)))
	return f
}

// Open returns the named file.
func (d *Device) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("flash: open %s: no such file", name)
	}
	return f, nil
}

// Exists reports whether a file of that name exists.
func (d *Device) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Remove deletes a file. Removing a missing file is a no-op.
func (d *Device) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
	d.metrics.files.Set(int64(len(d.files)))
}

// Files returns the names of all files in deterministic order.
func (d *Device) Files() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the summed content size of all files.
func (d *Device) TotalBytes() int64 {
	d.mu.Lock()
	files := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	var t int64
	for _, f := range files {
		t += f.Size()
	}
	return t
}

// Stats returns a snapshot of the device traffic counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the traffic counters and sequential-read state (used
// between experiments).
func (d *Device) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	files := make([]*File, 0, len(d.files))
	for _, f := range d.files {
		files = append(files, f)
	}
	d.mu.Unlock()
	for _, f := range files {
		f.mu.Lock()
		for i := range f.lastRead {
			f.lastRead[i] = -1
			f.lastWrite[i] = -1
		}
		f.mu.Unlock()
	}
}

func (d *Device) account(who Requester, pagesRead, readRandom, pagesWritten, writeRandom int64) {
	d.mu.Lock()
	d.stats.PagesRead[who] += pagesRead
	d.stats.PagesReadRandom[who] += readRandom
	d.stats.PagesWritten[who] += pagesWritten
	d.stats.PagesWrittenRandom[who] += writeRandom
	// Counter handles are captured under the lock (Observe may rebind
	// them); the Adds themselves are atomic and happen outside it.
	pr, prr := d.metrics.pagesRead[who], d.metrics.pagesReadRandom[who]
	pw, pwr := d.metrics.pagesWritten[who], d.metrics.pagesWrittenRandom[who]
	d.mu.Unlock()
	if pagesRead > 0 {
		pr.Add(pagesRead)
	}
	if readRandom > 0 {
		prr.Add(readRandom)
	}
	if pagesWritten > 0 {
		pw.Add(pagesWritten)
	}
	if writeRandom > 0 {
		pwr.Add(writeRandom)
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file content size in bytes.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// NumPages returns the number of flash pages the file occupies.
func (f *File) NumPages() int64 {
	return (f.Size() + PageSize - 1) / PageSize
}

// accountWrite updates the requester's sequential write stream and
// returns the page count and random-seek count of a write of n bytes at
// off. Caller holds f.mu.
func (f *File) accountWrite(who Requester, off, n int64) (pages, random int64) {
	first, last := off/PageSize, (off+n-1)/PageSize
	pages = last - first + 1
	// Re-touching the page the stream last ended on (partial-page appends)
	// stays sequential; any other jump is one seek, mirroring the read
	// side's stream model.
	if f.lastWrite[who] >= 0 && (first > f.lastWrite[who] || first < f.lastWrite[who]-1) {
		random = 1
	}
	f.lastWrite[who] = last + 1
	return pages, random
}

// Append writes p at the end of the file, accounted to requester who.
func (f *File) Append(p []byte, who Requester) {
	if len(p) == 0 {
		return
	}
	f.mu.Lock()
	off := int64(len(f.data))
	f.data = append(f.data, p...)
	pages, random := f.accountWrite(who, off, int64(len(p)))
	f.mu.Unlock()
	f.dev.account(who, 0, 0, pages, random)
}

// WriteAt writes p at offset off (extending the file as needed).
func (f *File) WriteAt(p []byte, off int64, who Requester) {
	if len(p) == 0 {
		return
	}
	f.mu.Lock()
	end := off + int64(len(p))
	if int64(len(f.data)) < end {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[off:end], p)
	pages, random := f.accountWrite(who, off, int64(len(p)))
	f.mu.Unlock()
	f.dev.account(who, 0, 0, pages, random)
}

// ReadAt fills p from offset off, accounting every touched page to who.
// It returns the number of bytes read; reading past EOF returns the
// available prefix.
func (f *File) ReadAt(p []byte, off int64, who Requester) int {
	if len(p) == 0 || off < 0 {
		return 0
	}
	f.mu.Lock()
	n := 0
	if off < int64(len(f.data)) {
		n = copy(p, f.data[off:])
	}
	var pages, random int64
	if n > 0 {
		first, last := off/PageSize, (off+int64(n)-1)/PageSize
		pages = last - first + 1
		if f.lastRead[who] >= 0 && first > f.lastRead[who] {
			// Jumped forward past the sequential stream: one seek.
			random = 1
		} else if f.lastRead[who] >= 0 && first < f.lastRead[who]-1 {
			// Jumped backward: one seek.
			random = 1
		}
		f.lastRead[who] = last + 1
	}
	f.mu.Unlock()
	if n > 0 {
		f.dev.account(who, pages, random, 0, 0)
	}
	return n
}

// ReadPage reads one whole page (the last page may be short). It is the
// primitive AQUOMAN's Table Reader uses; page skipping simply avoids the
// call.
func (f *File) ReadPage(page int64, who Requester) []byte {
	buf := make([]byte, PageSize)
	n := f.ReadAt(buf, page*PageSize, who)
	return buf[:n]
}

// PagesSpanned reports how many pages the byte range [off, off+n) touches.
func PagesSpanned(off, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (off+n-1)/PageSize - off/PageSize + 1
}
