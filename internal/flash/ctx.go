package flash

import (
	"context"
	"time"

	"aquoman/internal/obs"
)

// ctxChunkPages bounds how many pages one cancellable bulk read issues
// between context checks: a cancelled reader stops consuming flash
// bandwidth within this many pages (512 KB) of the cancellation, and the
// chunk boundaries are page-aligned so the sequential-stream accounting
// is identical to an unchunked read.
const ctxChunkPages = 64

// cancellable reports whether ctx can ever be cancelled (a nil or
// Background context never is, so those reads skip the chunking).
func cancellable(ctx context.Context) bool {
	return ctx != nil && ctx.Done() != nil
}

// throttleCtx sleeps the configured read latency for n device page reads,
// returning early (with the context's error) when ctx is cancelled
// mid-sleep — a cancelled query stops paying, and holding, simulated NAND
// time.
func (d *Device) throttleCtx(ctx context.Context, n int64) error {
	lat := d.readLatencyNs.Load()
	if lat <= 0 || n <= 0 {
		return nil
	}
	dur := time.Duration(lat * n)
	if !cancellable(ctx) {
		time.Sleep(dur)
		return nil
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReadAtCtx is ReadAt with cooperative cancellation: the read fails with
// ctx's error before touching the device when ctx is already done, and a
// bulk read spanning many pages checks ctx at page-aligned chunk
// boundaries, so a cancelled requester stops issuing page reads within
// ctxChunkPages pages. Accounting (page counts, sequential streams) is
// identical to ReadAt for reads that complete.
func (f *File) ReadAtCtx(ctx context.Context, p []byte, off int64, who Requester) (int, error) {
	if len(p) == 0 || off < 0 {
		return 0, nil
	}
	// A context that can never cancel normally takes the plain path — but
	// one carrying a query lifecycle must stay on the ctx path so the cache
	// and device can attribute wait states to it.
	if !cancellable(ctx) && obs.LifecycleFrom(ctx) == nil {
		return f.ReadAt(p, off, who)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if cache := f.dev.PageCache(); cache != nil {
		return f.readCachedCtx(ctx, cache, p, off, who)
	}
	total := 0
	for len(p) > 0 {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		// End the chunk on a page boundary so a page spanning two chunks is
		// never accounted twice.
		end := (off/PageSize + ctxChunkPages) * PageSize
		chunk := end - off
		if chunk > int64(len(p)) {
			chunk = int64(len(p))
		}
		n, err := f.readDirect(ctx, p[:chunk], off, who)
		total += n
		if err != nil {
			return total, err
		}
		if int64(n) < chunk {
			break // EOF
		}
		off += chunk
		p = p[chunk:]
	}
	return total, nil
}

// ReadPageCtx is ReadPage with cooperative cancellation (see ReadAtCtx).
func (f *File) ReadPageCtx(ctx context.Context, page int64, who Requester) ([]byte, error) {
	buf := make([]byte, PageSize)
	n, err := f.ReadAtCtx(ctx, buf, page*PageSize, who)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// readCachedCtx serves the byte range page-wise through the cache,
// checking ctx before every page so cancellation lands on a page
// boundary.
func (f *File) readCachedCtx(ctx context.Context, cache PageCacher, p []byte, off int64, who Requester) (int, error) {
	f.mu.Lock()
	size := int64(len(f.data))
	f.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	n := int64(len(p))
	if n > size-off {
		n = size - off
	}
	total := 0
	for page := off / PageSize; page <= (off+n-1)/PageSize; page++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		data, err := cache.GetPage(ctx, f.name, page, func() ([]byte, error) {
			return f.devicePageReadCtx(ctx, page, who)
		})
		if err != nil {
			return total, err
		}
		pageStart := page * PageSize
		lo := off - pageStart
		if lo < 0 {
			lo = 0
		}
		hi := off + n - pageStart
		if hi > int64(len(data)) {
			hi = int64(len(data))
		}
		if hi <= lo {
			continue
		}
		total += copy(p[pageStart+lo-off:], data[lo:hi])
	}
	return total, nil
}
